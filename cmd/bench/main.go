// Command bench regenerates the repository's experiment tables — one per
// figure-level claim of "Primitives for Distributed Computing" (see
// DESIGN.md §3 for the index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	bench                      # run every experiment at full scale
//	bench -experiment fig1     # run one experiment
//	bench -scale 0.25          # shrink the workloads
//	bench -list                # list experiments
//	bench -csv                 # also emit tables as CSV
//	bench -json BENCH_E14.json # also record results as JSON
//	bench -compare BENCH_E14.json            # re-run and gate vs baseline
//	bench -compare BENCH_E14.json -candidate new.json  # offline compare
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
	"repro/internal/metrics"
)

// jsonTable and jsonResult are the recorded shape of one run — the
// BENCH_*.json files checked in next to EXPERIMENTS.md.
type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

type jsonResult struct {
	ID          string      `json:"id"`
	Paper       string      `json:"paper"`
	Description string      `json:"description"`
	Scale       float64     `json:"scale"`
	ElapsedMS   int64       `json:"elapsed_ms"`
	Tables      []jsonTable `json:"tables"`
	Notes       []string    `json:"notes"`
}

func toJSONTable(t *metrics.Table) jsonTable {
	out := jsonTable{Title: t.Title, Headers: t.Headers}
	for r := 0; r < t.Rows(); r++ {
		row := make([]string, len(t.Headers))
		for c := range row {
			row[c] = t.Cell(r, c)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

func main() {
	var (
		experiment = flag.String("experiment", "", "run only this experiment id (see -list)")
		scale      = flag.Float64("scale", 1.0, "workload scale factor")
		list       = flag.Bool("list", false, "list experiments and exit")
		csv        = flag.Bool("csv", false, "also print tables as CSV")
		jsonPath   = flag.String("json", "", "also record results as JSON to this file")
		compare    = flag.String("compare", "", "baseline JSON to gate against (exit 1 on regression)")
		candidate  = flag.String("candidate", "", "candidate JSON for -compare (default: re-run the baseline's experiments)")
		tolerance  = flag.Float64("tolerance", 0.15, "allowed fractional slowdown for -compare")
	)
	flag.Parse()

	if *compare != "" {
		os.Exit(runCompare(*compare, *candidate, *tolerance))
	}

	if *list {
		fmt.Println("Experiments (DESIGN.md §3):")
		for _, e := range exp.All() {
			fmt.Printf("  %-14s %-22s %s\n", e.ID, e.Paper, e.Description)
		}
		return
	}

	run := exp.All()
	if *experiment != "" {
		e, err := exp.ByID(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		run = []exp.Experiment{e}
	}

	var recorded []jsonResult
	for _, e := range run {
		fmt.Printf("\n### %s — %s\n### %s\n\n", e.ID, e.Paper, e.Description)
		start := time.Now()
		res, err := e.Run(exp.Scale(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		for _, tab := range res.Tables {
			tab.Render(os.Stdout)
			fmt.Println()
			if *csv {
				tab.CSV(os.Stdout)
				fmt.Println()
			}
		}
		for _, note := range res.Notes {
			fmt.Printf("  %s\n", note)
		}
		fmt.Printf("  (ran in %v)\n", elapsed.Round(time.Millisecond))
		if *jsonPath != "" {
			jr := jsonResult{
				ID: e.ID, Paper: e.Paper, Description: e.Description,
				Scale: *scale, ElapsedMS: elapsed.Milliseconds(), Notes: res.Notes,
			}
			for _, tab := range res.Tables {
				jr.Tables = append(jr.Tables, toJSONTable(tab))
			}
			recorded = append(recorded, jr)
		}
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(recorded, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding results: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("\nrecorded %d result(s) to %s\n", len(recorded), *jsonPath)
	}
}
