// Command bench regenerates the repository's experiment tables — one per
// figure-level claim of "Primitives for Distributed Computing" (see
// DESIGN.md §3 for the index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	bench                      # run every experiment at full scale
//	bench -experiment fig1     # run one experiment
//	bench -scale 0.25          # shrink the workloads
//	bench -list                # list experiments
//	bench -csv                 # also emit tables as CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "run only this experiment id (see -list)")
		scale      = flag.Float64("scale", 1.0, "workload scale factor")
		list       = flag.Bool("list", false, "list experiments and exit")
		csv        = flag.Bool("csv", false, "also print tables as CSV")
	)
	flag.Parse()

	if *list {
		fmt.Println("Experiments (DESIGN.md §3):")
		for _, e := range exp.All() {
			fmt.Printf("  %-14s %-22s %s\n", e.ID, e.Paper, e.Description)
		}
		return
	}

	run := exp.All()
	if *experiment != "" {
		e, err := exp.ByID(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		run = []exp.Experiment{e}
	}

	for _, e := range run {
		fmt.Printf("\n### %s — %s\n### %s\n\n", e.ID, e.Paper, e.Description)
		start := time.Now()
		res, err := e.Run(exp.Scale(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, tab := range res.Tables {
			tab.Render(os.Stdout)
			fmt.Println()
			if *csv {
				tab.CSV(os.Stdout)
				fmt.Println()
			}
		}
		for _, note := range res.Notes {
			fmt.Printf("  %s\n", note)
		}
		fmt.Printf("  (ran in %v)\n", time.Since(start).Round(time.Millisecond))
	}
}
