package main

import "testing"

// fixture builds a one-experiment recording with the given commit-mean
// cell, alongside non-duration cells that must never trip the gate.
func fixture(commitMean string) []jsonResult {
	return []jsonResult{{
		ID:    "replica",
		Scale: 1,
		Tables: []jsonTable{{
			Title:   "Replication arms",
			Headers: []string{"mode", "ok", "commit-mean", "failover"},
			Rows: [][]string{
				{"solo", "240", commitMean, "-"},
				{"triplex", "240", "9.416ms", "151.2ms"},
			},
		}},
	}}
}

func TestCompareDetectsRegression(t *testing.T) {
	base := fixture("10ms")
	cand := fixture("12ms") // +20% > 15% tolerance
	issues := compareResults(base, cand, 0.15)
	if len(issues) != 1 {
		t.Fatalf("issues = %v, want exactly one regression", issues)
	}
	if !issues[0].Regression {
		t.Fatalf("issue not flagged as regression: %v", issues[0])
	}
	wantKey := cellKey("replica", "Replication arms", "solo", "commit-mean")
	if issues[0].Key != wantKey {
		t.Fatalf("issue key = %q, want %q", issues[0].Key, wantKey)
	}
}

func TestCompareToleratesNoiseAndImprovement(t *testing.T) {
	base := fixture("10ms")
	for _, cell := range []string{"11ms", "10ms", "7ms", "1ms"} {
		if issues := compareResults(base, fixture(cell), 0.15); len(issues) != 0 {
			t.Fatalf("candidate %s flagged: %v", cell, issues)
		}
	}
}

func TestCompareCustomTolerance(t *testing.T) {
	base := fixture("10ms")
	cand := fixture("12ms")
	if issues := compareResults(base, cand, 0.25); len(issues) != 0 {
		t.Fatalf("+20%% flagged under 25%% tolerance: %v", issues)
	}
	if issues := compareResults(base, cand, 0.10); len(issues) != 1 {
		t.Fatalf("+20%% not flagged under 10%% tolerance: %v", issues)
	}
}

// A baseline metric the candidate no longer has — a renamed header, a
// dropped row, or a vanished experiment — must be reported, not skipped:
// a rename that silently disabled the gate would hide real regressions.
func TestCompareReportsMissingKeys(t *testing.T) {
	base := fixture("10ms")

	// Renaming the commit-mean header orphans that column in both rows;
	// the untouched failover column must still match.
	renamed := fixture("10ms")
	renamed[0].Tables[0].Headers[2] = "commit-avg"
	issues := compareResults(base, renamed, 0.15)
	if len(issues) != 2 {
		t.Fatalf("renamed header: issues = %v, want 2 missing", issues)
	}
	for _, i := range issues {
		if i.Regression {
			t.Fatalf("missing key misreported as regression: %v", i)
		}
	}

	// Renaming a row label (the arm name) orphans that row's durations.
	rerow := fixture("10ms")
	rerow[0].Tables[0].Rows[1][0] = "quintuplex"
	issues = compareResults(base, rerow, 0.15)
	if len(issues) != 2 { // triplex commit-mean + failover
		t.Fatalf("renamed row: issues = %v, want 2 missing", issues)
	}
}

func TestCompareReportsMissingExperiment(t *testing.T) {
	base := fixture("10ms")
	issues := compareResults(base, nil, 0.15)
	// Every duration cell in the baseline (solo commit-mean, triplex
	// commit-mean, triplex failover) is missing.
	if len(issues) != 3 {
		t.Fatalf("missing experiment: issues = %v, want 3", issues)
	}
	for _, i := range issues {
		if i.Regression {
			t.Fatalf("missing key misreported as regression: %v", i)
		}
	}
}

// A candidate cell that stopped being a duration (a refactor turned
// "9.4ms" into "9.4") is an issue too — the metric silently changed
// meaning.
func TestCompareReportsNonDurationCandidate(t *testing.T) {
	base := fixture("10ms")
	cand := fixture("10")
	issues := compareResults(base, cand, 0.15)
	if len(issues) != 1 {
		t.Fatalf("non-duration candidate: issues = %v, want 1", issues)
	}
}

// Non-duration cells (counts, "-" placeholders) carry no perf signal:
// changing them must not trip the gate.
func TestCompareIgnoresCountCells(t *testing.T) {
	base := fixture("10ms")
	cand := fixture("10ms")
	cand[0].Tables[0].Rows[0][1] = "9999" // ok-count changed wildly
	if issues := compareResults(base, cand, 0.15); len(issues) != 0 {
		t.Fatalf("count cell flagged: %v", issues)
	}
}

// The committed baseline compared against itself must be clean — this is
// the invariant the nightly job's zero-exit path rests on.
func TestCompareCommittedBaselineSelf(t *testing.T) {
	base, err := loadResults("../../BENCH_E14.json")
	if err != nil {
		t.Fatalf("loading committed baseline: %v", err)
	}
	if len(base) == 0 {
		t.Fatalf("committed baseline is empty")
	}
	if issues := compareResults(base, base, 0.15); len(issues) != 0 {
		t.Fatalf("self-compare not clean: %v", issues)
	}
}
