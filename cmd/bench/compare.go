// Baseline comparison: -compare re-checks current results against a
// committed BENCH_*.json and fails on timing regressions, so the nightly
// job catches a slowdown the same way it catches an invariant violation.
//
// Only duration-valued cells participate (commit-mean, failover, ...):
// they are the perf signal; counts and "-" placeholders are identity
// checked by key presence only. Every baseline key — experiment, table,
// row, column — must still exist in the candidate: a renamed or dropped
// metric is reported as a failure, never silently skipped.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
)

// compareIssue is one reason the comparison fails: a regressed duration
// or a baseline key the candidate no longer has.
type compareIssue struct {
	// Key locates the cell: experiment/table/row/column.
	Key string
	// Detail is the human-readable evidence.
	Detail string
	// Regression is true for a timing regression, false for a
	// missing/renamed key.
	Regression bool
}

func (i compareIssue) String() string {
	kind := "missing"
	if i.Regression {
		kind = "regression"
	}
	return fmt.Sprintf("%s: %s: %s", kind, i.Key, i.Detail)
}

// cellKey names one table cell across recordings: experiments are keyed
// by id, tables by title, rows by their first cell (the arm/mode label),
// columns by header name — stable across re-runs and row reordering.
func cellKey(id, table, row, col string) string {
	return fmt.Sprintf("%s/%q/%s/%s", id, table, row, col)
}

// indexResults flattens recordings into cell lookups by key.
func indexResults(results []jsonResult) map[string]string {
	cells := make(map[string]string)
	for _, r := range results {
		for _, t := range r.Tables {
			for _, row := range t.Rows {
				if len(row) == 0 {
					continue
				}
				for c, h := range t.Headers {
					if c >= len(row) {
						continue
					}
					cells[cellKey(r.ID, t.Title, row[0], h)] = row[c]
				}
			}
		}
	}
	return cells
}

// compareResults checks cand against base: every duration-valued
// baseline cell must exist in cand and not exceed base*(1+tol).
func compareResults(base, cand []jsonResult, tol float64) []compareIssue {
	candCells := indexResults(cand)
	var issues []compareIssue
	for _, br := range base {
		for _, bt := range br.Tables {
			for _, row := range bt.Rows {
				if len(row) == 0 {
					continue
				}
				for c, h := range bt.Headers {
					if c >= len(row) {
						continue
					}
					baseDur, err := time.ParseDuration(row[c])
					if err != nil || baseDur <= 0 {
						continue // counts and "-" placeholders carry no perf signal
					}
					key := cellKey(br.ID, bt.Title, row[0], h)
					candCell, ok := candCells[key]
					if !ok {
						issues = append(issues, compareIssue{
							Key:    key,
							Detail: "baseline metric absent from candidate (renamed or dropped)",
						})
						continue
					}
					candDur, err := time.ParseDuration(candCell)
					if err != nil {
						issues = append(issues, compareIssue{
							Key:    key,
							Detail: fmt.Sprintf("baseline is a duration, candidate %q is not", candCell),
						})
						continue
					}
					limit := time.Duration(float64(baseDur) * (1 + tol))
					if candDur > limit {
						issues = append(issues, compareIssue{
							Key: key,
							Detail: fmt.Sprintf("%v exceeds baseline %v by more than %.0f%% (limit %v)",
								candDur, baseDur, tol*100, limit),
							Regression: true,
						})
					}
				}
			}
		}
	}
	return issues
}

// loadResults reads a BENCH_*.json recording.
func loadResults(path string) ([]jsonResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []jsonResult
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return out, nil
}

// rerunBaseline re-runs exactly the experiments the baseline records, at
// the baseline's own scale, producing a candidate recording to compare.
// An experiment id the registry no longer knows is reported by the key
// comparison (its tables will be absent), not silently dropped here.
func rerunBaseline(base []jsonResult) []jsonResult {
	var out []jsonResult
	for _, br := range base {
		e, err := exp.ByID(br.ID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "baseline experiment %q: %v\n", br.ID, err)
			continue
		}
		fmt.Printf("re-running %s at scale %g ...\n", br.ID, br.Scale)
		start := time.Now()
		res, err := e.Run(exp.Scale(br.Scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", br.ID, err)
			continue
		}
		jr := jsonResult{
			ID: e.ID, Paper: e.Paper, Description: e.Description,
			Scale: br.Scale, ElapsedMS: time.Since(start).Milliseconds(),
			Notes: res.Notes,
		}
		for _, tab := range res.Tables {
			jr.Tables = append(jr.Tables, toJSONTable(tab))
		}
		out = append(out, jr)
	}
	return out
}

// runCompare implements -compare: exit 0 when every baseline duration is
// present and within tolerance, 1 on any regression or missing key.
func runCompare(basePath, candPath string, tol float64) int {
	base, err := loadResults(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loading baseline: %v\n", err)
		return 1
	}
	var cand []jsonResult
	if candPath != "" {
		if cand, err = loadResults(candPath); err != nil {
			fmt.Fprintf(os.Stderr, "loading candidate: %v\n", err)
			return 1
		}
	} else {
		cand = rerunBaseline(base)
	}
	issues := compareResults(base, cand, tol)
	if len(issues) == 0 {
		fmt.Printf("compare PASS: all baseline durations within %.0f%% of %s\n",
			tol*100, basePath)
		return 0
	}
	fmt.Printf("compare FAIL: %d issue(s) vs %s\n", len(issues), basePath)
	for _, i := range issues {
		fmt.Printf("  %s\n", i)
	}
	return 1
}
