// Command airline runs the paper's Airline Reservation System (Figure 2)
// end to end on a simulated multi-node network and narrates the full §3.5
// robustness story: a clerk transaction with deferred cancels and undo, a
// regional node crash with timeout and idempotent retry, and a UI node
// crash after which transactions are forgotten.
//
// Usage:
//
//	airline [-regions 3] [-flights 4] [-latency 2ms] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/airline"
	"repro/internal/guardian"
	"repro/internal/netsim"
)

func main() {
	var (
		regions = flag.Int("regions", 3, "regional nodes")
		flights = flag.Int("flights", 4, "flights per region")
		latency = flag.Duration("latency", 2*time.Millisecond, "one-way network latency")
		seed    = flag.Int64("seed", 1, "network randomness seed")
		trace   = flag.Int("trace", 0, "print the last N runtime events at exit (0 = off)")
	)
	flag.Parse()
	logf := log.New(os.Stdout, "", 0).Printf

	w := guardian.NewWorld(guardian.Config{
		Net: netsim.Config{Seed: *seed, BaseLatency: *latency},
	})
	var tracer *guardian.RingTracer
	if *trace > 0 {
		tracer = guardian.NewRingTracer(*trace)
		w.SetTracer(tracer)
	}
	if err := airline.RegisterDefs(w); err != nil {
		log.Fatal(err)
	}

	cfg := airline.SystemConfig{
		Capacity:   3,
		Org:        airline.OrgMonitor,
		DeadlineMS: 400,
		UINodes:    []string{"office"},
	}
	for r := 0; r < *regions; r++ {
		rc := airline.RegionConfig{Node: fmt.Sprintf("region%d", r)}
		for f := 0; f < *flights; f++ {
			rc.Flights = append(rc.Flights, int64(r**flights+f+1))
		}
		cfg.Regions = append(cfg.Regions, rc)
	}
	sys, err := airline.Deploy(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	logf("deployed %d regions × %d flights, UI at office, %v one-way latency\n",
		*regions, *flights, *latency)

	office, _ := w.Node("office")
	clerk, err := airline.NewClerk(office, "clerk")
	if err != nil {
		log.Fatal(err)
	}
	const timeout = 10 * time.Second

	step := func(what string, outcome string, err error) {
		if err != nil {
			logf("  %-46s -> error: %v", what, err)
			return
		}
		logf("  %-46s -> %s", what, outcome)
	}

	logf("\n--- a clerk transaction (Figure 5) ---")
	if err := clerk.Begin(sys.UIPorts["office"], "ms-plum", timeout); err != nil {
		log.Fatal(err)
	}
	out, err := clerk.Reserve(1, "1979-12-10", timeout)
	step(`reserve(flight 1, dec-10)`, out, err)
	out, err = clerk.Reserve(1, "1979-12-10", timeout)
	step(`reserve again (idempotent)`, out, err)
	lastFlight := int64(*regions * *flights) // a flight in the last region
	out, err = clerk.Reserve(lastFlight, "1979-12-11", timeout)
	step(fmt.Sprintf("reserve(flight %d, dec-11) cross-region", lastFlight), out, err)
	out, err = clerk.Cancel(1, "1979-12-10", timeout)
	step(`cancel(flight 1) — deferred to end`, out, err)
	undone, err := clerk.UndoLast(timeout)
	step(`undo_last (drops the pending cancel)`, undone, err)
	r, c, err := clerk.Done(timeout)
	step(fmt.Sprintf("done: %d reserves kept, %d cancels done", r, c), "trans_done", err)

	logf("\n--- regional node crash: timeout, then idempotent retry (§3.5) ---")
	if err := clerk.Begin(sys.UIPorts["office"], "mr-green", timeout); err != nil {
		log.Fatal(err)
	}
	region0, _ := w.Node("region0")
	region0.Crash()
	logf("  [region0 crashed]")
	out, err = clerk.Reserve(2, "1979-12-12", timeout)
	step(`reserve(flight 2) with region down`, out, err)
	if err := region0.Restart(); err != nil {
		log.Fatal(err)
	}
	logf("  [region0 restarted; flight guardians recovered from their logs]")
	out, err = clerk.Reserve(2, "1979-12-12", timeout)
	step(`retry reserve(flight 2)`, out, err)
	r, c, err = clerk.Done(timeout)
	step(fmt.Sprintf("done: %d reserves, %d cancels", r, c), "trans_done", err)

	logf("\n--- UI node crash: transactions are forgotten (§3.5) ---")
	clerk2, err := airline.NewClerk(office, "clerk2")
	if err != nil {
		log.Fatal(err)
	}
	if err := clerk2.Begin(sys.UIPorts["office"], "mrs-white", timeout); err != nil {
		log.Fatal(err)
	}
	out, err = clerk2.Reserve(3, "1979-12-13", timeout)
	step(`reserve(flight 3) before the crash`, out, err)
	office.Crash()
	if err := office.Restart(); err != nil {
		log.Fatal(err)
	}
	newUI, err := sys.RedeployUI("office", 400)
	if err != nil {
		log.Fatal(err)
	}
	logf("  [office crashed and restarted: old transactions forgotten]")
	clerk3, err := airline.NewClerk(office, "clerk3")
	if err != nil {
		log.Fatal(err)
	}
	if err := clerk3.Begin(newUI, "mrs-white", timeout); err != nil {
		log.Fatal(err)
	}
	out, err = clerk3.Reserve(3, "1979-12-13", timeout)
	step(`redo reserve(flight 3) in a fresh transaction`, out, err)
	r, c, err = clerk3.Done(timeout)
	step(fmt.Sprintf("done: %d reserves, %d cancels", r, c), "trans_done", err)

	st := w.Stats()
	net := w.Net().Stats()
	logf("\n--- runtime statistics ---")
	logf("  messages sent: %d   delivered to ports: %d   system failures sent: %d",
		st.MessagesSent.Load(), st.MessagesDelivered.Load(), st.FailuresSent.Load())
	logf("  network packets: %d sent, %d delivered, %d dropped-dead-node",
		net.Sent, net.Delivered, net.DroppedDst)
	logf("  guardians created: %d, recovered after crashes: %d",
		st.GuardiansCreated.Load(), st.GuardiansRecovered.Load())

	if tracer != nil {
		logf("\n--- last %d runtime events (of %d traced) ---", len(tracer.Events()), tracer.Total())
		for _, e := range tracer.Events() {
			logf("  %s", e)
		}
	}
}
