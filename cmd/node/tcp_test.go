package main

// The acceptance tests for the stream-transport tentpole. The first is
// the TCP mirror of the PR 3 cross-process UDP test: two OS processes
// exchange framed TCP traffic while both fault wrappers inject connection
// resets and half-open write stalls, and the exactly-once audit must hold
// across every reconnect — plus one account whose multi-megabyte name
// rides a single frame no datagram could carry. The second pins the
// ceiling TCP removes: the same oversized rep over cmd/node's UDP path
// never arrives.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// bigAccount is the -op token for an account whose name expands to 2 MiB —
// far beyond the 65507-byte absolute UDP datagram maximum, and ~1500× the
// 1400-byte default MTU.
const bigAccount = "B*2097152"

// startBankServer boots a branch process and scans its banner, returning
// the bound address and amo port plus the running process and scanner.
func startBankServer(t *testing.T, bin string, extra ...string) (*exec.Cmd, *bufio.Scanner, string, string) {
	t.Helper()
	srv := exec.Command(bin, append([]string{
		"-name", "branch", "-listen", "127.0.0.1:0", "-host", "bank",
	}, extra...)...)
	srvOut, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Process.Kill() })
	sc := bufio.NewScanner(srvOut)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var addr, amoPort string
	deadline := time.AfterFunc(10*time.Second, func() { _ = srv.Process.Kill() })
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "listening on "); ok {
			addr = rest
		}
		if rest, ok := strings.CutPrefix(line, "port amo_req_port "); ok {
			amoPort = rest
		}
		if line == "ready" {
			break
		}
	}
	deadline.Stop()
	if addr == "" || amoPort == "" {
		t.Fatalf("server banner incomplete: addr=%q amoPort=%q", addr, amoPort)
	}
	return srv, sc, addr, amoPort
}

func TestBankTransferAcrossProcessesOverResettingTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildNode(t)
	faults := []string{
		"-transport", "tcp",
		"-reset", "0.08", "-stall", "0.05", "-stalltime", "40ms", "-stats",
	}
	srv, sc, addr, amoPort := startBankServer(t, bin, append([]string{"-seed", "7"}, faults...)...)

	// The teller's ops: the PR 3 exactly-once workload, plus one account
	// whose 2 MiB name makes every request and reply carrying it a
	// single multi-megabyte frame.
	const transfers = 25
	ops := []string{
		"-op", "open alice", "-op", "open bob",
		"-op", "deposit alice 1000",
	}
	for i := 0; i < transfers; i++ {
		ops = append(ops, "-op", fmt.Sprintf("transfer alice bob %d", 1+i%7))
	}
	ops = append(ops,
		"-op", "open "+bigAccount,
		"-op", "deposit "+bigAccount+" 41",
		"-op", "balance "+bigAccount,
		"-op", "balance alice", "-op", "balance bob",
	)
	args := append([]string{
		"-name", "teller", "-peers", "branch=" + addr, "-call", amoPort, "-seed", "11",
		"-timeout", "500ms", "-retries", "60",
	}, faults...)
	cli := exec.Command(bin, append(args, ops...)...)
	cliBytes, err := cli.CombinedOutput()
	cliOut := string(cliBytes)
	if err != nil {
		t.Fatalf("client: %v\n%s", err, cliOut)
	}

	var moved int
	for i := 0; i < transfers; i++ {
		moved += 1 + i%7
	}
	for _, want := range []string{
		`op "open alice": ok`,
		`op "deposit alice 1000": ok`,
		`op "open ` + bigAccount + `": ok`,
		`op "deposit ` + bigAccount + ` 41": ok`,
		`op "balance ` + bigAccount + `": balance_is 41`,
		fmt.Sprintf(`op "balance alice": balance_is %d`, 1000-moved),
		fmt.Sprintf(`op "balance bob": balance_is %d`, moved),
	} {
		if !strings.Contains(cliOut, want) {
			t.Errorf("client output missing %q\n%s", want, truncated(cliOut))
		}
	}
	if strings.Count(cliOut, ": ok") != 5+transfers {
		t.Errorf("want %d ok replies\n%s", 5+transfers, truncated(cliOut))
	}

	// Stop the server and read its shutdown audit.
	if err := srv.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	var tail []string
	for sc.Scan() {
		tail = append(tail, sc.Text())
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("server exit: %v\n%s", err, strings.Join(tail, "\n"))
	}
	srvTail := strings.Join(tail, "\n")

	// Exactly-once across every reset and reconnect: two opens, one
	// deposit, the transfers, and the big account's open + deposit, each
	// applied once. Balances are reads and must not count.
	applies := regexp.MustCompile(`(?m)^applies (\d+)$`).FindStringSubmatch(srvTail)
	if applies == nil {
		t.Fatalf("server printed no applies line:\n%s", srvTail)
	}
	if want := fmt.Sprint(5 + transfers); applies[1] != want {
		t.Fatalf("server applies=%s, want %s (exactly-once violated)\n%s\n%s",
			applies[1], want, truncated(cliOut), srvTail)
	}

	// The run only means something if the stream faults actually fired:
	// the injectors must report hits, and the server's -stats connection
	// table must show the machine dialing, resetting, and reconnecting.
	injected := regexp.MustCompile(`injected sent=(\d+) lost=(\d+) duplicated=(\d+) delayed=(\d+) resets=(\d+) stalls=(\d+)`)
	var resets, stalls int
	for side, out := range map[string]string{"client": cliOut, "server": srvTail} {
		m := injected.FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("%s printed no injected-faults line:\n%s", side, truncated(out))
		}
		r, _ := strconv.Atoi(m[5])
		s, _ := strconv.Atoi(m[6])
		resets += r
		stalls += s
	}
	if resets == 0 {
		t.Error("no connection resets were injected on either side: the fault model idled")
	}
	if stalls == 0 {
		t.Error("no write stalls were injected on either side: the fault model idled")
	}
	if !strings.Contains(srvTail, "== tcp connections ==") {
		t.Errorf("server -stats printed no connection table:\n%s", srvTail)
	}
	connRow := regexp.MustCompile(`(?m)^\S+:\d+\s+\S+\s+(\d+)\s+(\d+)\s+(\d+)\s+\d+`)
	if m := connRow.FindStringSubmatch(srvTail); m == nil {
		t.Errorf("no per-peer counter row in server stats:\n%s", srvTail)
	}
	t.Logf("injected resets=%d stalls=%d\nserver tail:\n%s", resets, stalls, srvTail)
}

// TestUDPCannotCarryLargeRep pins the ceiling the stream transport
// removes: over cmd/node's UDP path the very same multi-megabyte rep
// never arrives — its fragments exceed what a datagram can carry, the
// transport refuses them, and the at-most-once caller times out.
func TestUDPCannotCarryLargeRep(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildNode(t)
	srv, _, addr, amoPort := startBankServer(t, bin, "-seed", "7")
	defer srv.Process.Kill()

	cli := exec.Command(bin,
		"-name", "teller", "-peers", "branch="+addr, "-call", amoPort,
		"-timeout", "150ms", "-retries", "3",
		"-op", "open alice", // small op: proves the path itself works
		"-op", "open "+bigAccount, // oversized: must never arrive
	)
	out, err := cli.CombinedOutput()
	if err == nil {
		t.Fatalf("client carried a %d-byte rep over UDP; the MTU ceiling is supposed to forbid that:\n%s",
			2<<20, truncated(string(out)))
	}
	if !strings.Contains(string(out), `op "open alice": ok`) {
		t.Errorf("small op should have succeeded before the big one failed:\n%s", truncated(string(out)))
	}
	if !strings.Contains(string(out), "open "+bigAccount) {
		t.Errorf("failure should name the oversized op:\n%s", truncated(string(out)))
	}
}

// truncated keeps failure dumps readable when output embeds megabyte
// account names.
func truncated(s string) string {
	if len(s) > 4096 {
		return s[:4096] + "... [truncated]"
	}
	return s
}
