package main

// The acceptance test for the real-transport tentpole: two separate OS
// processes — a branch server and a teller client — exchange actual UDP
// datagrams on loopback, both wrapped in a 20% loss + 20% duplication
// fault model, and every transfer the client's replies confirm is applied
// exactly once by the branch. The audit reads the server's shutdown
// "applies" line: it must equal the number of mutating operations the
// client issued, no matter how many datagrams the wrappers ate or cloned.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// buildNode compiles this package once per test binary invocation.
func buildNode(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "node")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/node")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

func TestBankTransferAcrossProcessesOverLossyUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildNode(t)
	faults := []string{"-loss", "0.2", "-dup", "0.2"}

	srv := exec.Command(bin, append([]string{
		"-name", "branch", "-listen", "127.0.0.1:0", "-host", "bank", "-seed", "7",
	}, faults...)...)
	srvOut, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// Read the server's banner: bound address, port names, ready marker.
	sc := bufio.NewScanner(srvOut)
	var addr, amoPort string
	deadline := time.AfterFunc(10*time.Second, func() { srv.Process.Kill() })
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "listening on "); ok {
			addr = rest
		}
		if rest, ok := strings.CutPrefix(line, "port amo_req_port "); ok {
			amoPort = rest
		}
		if line == "ready" {
			break
		}
	}
	deadline.Stop()
	if addr == "" || amoPort == "" {
		t.Fatalf("server banner incomplete: addr=%q amoPort=%q", addr, amoPort)
	}

	// The client is its own OS process with its own fault wrapper, so both
	// directions of every call cross a lossy, duplicating wire.
	const transfers = 25
	ops := []string{
		"-op", "open alice", "-op", "open bob",
		"-op", "deposit alice 1000",
	}
	for i := 0; i < transfers; i++ {
		ops = append(ops, "-op", fmt.Sprintf("transfer alice bob %d", 1+i%7))
	}
	ops = append(ops, "-op", "balance alice", "-op", "balance bob")
	args := append([]string{
		"-name", "teller", "-peers", "branch=" + addr, "-call", amoPort, "-seed", "11",
		"-timeout", "250ms", "-retries", "60",
	}, faults...)
	cli := exec.Command(bin, append(args, ops...)...)
	cliBytes, err := cli.CombinedOutput()
	cliOut := string(cliBytes)
	if err != nil {
		t.Fatalf("client: %v\n%s", err, cliOut)
	}

	// Every reply the client accepted must be the ok outcome, and the
	// final balances must reflect each transfer exactly once.
	var moved int
	for i := 0; i < transfers; i++ {
		moved += 1 + i%7
	}
	for _, want := range []string{
		`op "open alice": ok`,
		`op "deposit alice 1000": ok`,
		fmt.Sprintf(`op "balance alice": balance_is %d`, 1000-moved),
		fmt.Sprintf(`op "balance bob": balance_is %d`, moved),
	} {
		if !strings.Contains(cliOut, want) {
			t.Errorf("client output missing %q\n%s", want, cliOut)
		}
	}
	if strings.Count(cliOut, ": ok") != 3+transfers {
		t.Errorf("want %d ok replies\n%s", 3+transfers, cliOut)
	}

	// Stop the server and read its shutdown audit.
	if err := srv.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	var tail []string
	for sc.Scan() {
		tail = append(tail, sc.Text())
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("server exit: %v\n%s", err, strings.Join(tail, "\n"))
	}
	srvTail := strings.Join(tail, "\n")

	applies := regexp.MustCompile(`(?m)^applies (\d+)$`).FindStringSubmatch(srvTail)
	if applies == nil {
		t.Fatalf("server printed no applies line:\n%s", srvTail)
	}
	// open+open+deposit+transfers, each exactly once. More means a
	// duplicate got through the at-most-once layer; fewer means a
	// confirmed op never executed.
	if want := fmt.Sprint(3 + transfers); applies[1] != want {
		t.Fatalf("server applies=%s, want %s (exactly-once violated)\n%s\n%s",
			applies[1], want, cliOut, srvTail)
	}

	// The run is only meaningful if the fault injectors actually fired on
	// both sides.
	injected := regexp.MustCompile(`injected sent=(\d+) lost=(\d+) duplicated=(\d+)`)
	for side, out := range map[string]string{"client": cliOut, "server": srvTail} {
		m := injected.FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("%s printed no injected-faults line:\n%s", side, out)
		}
		if m[2] == "0" && m[3] == "0" {
			t.Errorf("%s injected no faults (sent=%s): loss/dup idle", side, m[1])
		}
	}
	t.Logf("client:\n%s\nserver tail:\n%s", cliOut, srvTail)
}
