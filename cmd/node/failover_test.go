package main

// The acceptance test for the replication tentpole: a three-member
// replica group of bank branches — each its own OS process over real UDP
// — loses its primary at each replication window (killed from inside by
// an injected -crash exit as abrupt as SIGKILL, or from outside by an
// actual kill -9), and a surviving follower must win the election, take
// the branch over from the shipped log, re-bind the well-known name, and
// serve the same clients with money conserved and every confirmed
// transfer applied exactly once.
//
// The windows:
//
//	before-ship   the batch is durable on the primary only; nothing has
//	              reached the network. The client never saw an ack, so
//	              the retry must apply fresh on the new leader.
//	after-ship    the batch is on the wire; the follower-fsync race is
//	              live. Either the new leader replays it or the retry
//	              applies it — never both.
//	after-quorum  a majority holds the batch; the reply died with the
//	              primary. The retry must hit the replicated dedup state
//	              and get the cached outcome, not a second execution.
//	sigkill       an external kill -9 between client batches: the control
//	              round exercising failover with no cooperation at all.
//
// Transfers move distinct powers of three, so the destination balance is
// a base-3 tally of exactly which transfers executed how many times (see
// crash_test.go).

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// freeUDPAddrs reserves n distinct loopback UDP addresses by binding and
// immediately releasing them. The window between release and the node
// process re-binding is a race in principle; on loopback in a test it is
// not worth more machinery.
func freeUDPAddrs(t *testing.T, n int) []string {
	t.Helper()
	conns := make([]net.PacketConn, n)
	addrs := make([]string, n)
	for i := range conns {
		c, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		addrs[i] = c.LocalAddr().String()
	}
	for _, c := range conns {
		c.Close()
	}
	return addrs
}

// nodeProc is one node process: its parsed banner and its lifecycle.
type nodeProc struct {
	t     *testing.T
	cmd   *exec.Cmd
	sc    *bufio.Scanner
	ports map[string]string // banner "port <label> <name>" lines

	waitOnce sync.Once
	waitErr  error
}

// startNode launches the binary and reads its banner through "ready".
func startNode(t *testing.T, bin string, args ...string) *nodeProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &nodeProc{t: t, cmd: cmd, sc: bufio.NewScanner(out), ports: make(map[string]string)}
	guard := time.AfterFunc(20*time.Second, func() { cmd.Process.Kill() })
	defer guard.Stop()
	for p.sc.Scan() {
		line := p.sc.Text()
		if rest, ok := strings.CutPrefix(line, "port "); ok {
			if label, name, ok := strings.Cut(rest, " "); ok {
				p.ports[label] = name
			}
		}
		if line == "ready" {
			return p
		}
	}
	p.kill()
	t.Fatalf("node died before ready (args %v)", args)
	return nil
}

// wait reaps the process exactly once.
func (p *nodeProc) wait() error {
	p.waitOnce.Do(func() { p.waitErr = p.cmd.Wait() })
	return p.waitErr
}

// kill is kill -9 plus reaping; killing an already-dead process is fine.
func (p *nodeProc) kill() {
	_ = p.cmd.Process.Kill()
	_ = p.wait()
}

// interrupt delivers SIGINT and returns the shutdown report tail.
func (p *nodeProc) interrupt() string {
	p.t.Helper()
	_ = p.cmd.Process.Signal(os.Interrupt)
	guard := time.AfterFunc(20*time.Second, func() { p.cmd.Process.Kill() })
	defer guard.Stop()
	var tail []string
	for p.sc.Scan() {
		tail = append(tail, p.sc.Text())
	}
	_ = p.wait()
	return strings.Join(tail, "\n")
}

// exitCode reaps the process (killing it if it outlives the timeout) and
// returns its exit code.
func (p *nodeProc) exitCode(timeout time.Duration) int {
	guard := time.AfterFunc(timeout, func() { p.cmd.Process.Kill() })
	defer guard.Stop()
	err := p.wait()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

var replLine = regexp.MustCompile(`repl leader=(\S+) term=(\d+) self=(\S+) shipped=(\d+) applied=(\d+) checkpoints=(\d+) fenced=(\d+) elections=(\d+) takeovers=(\d+)`)

func TestReplicaFailoverMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildNode(t)
	for _, window := range []string{"before-ship", "after-ship", "after-quorum", "sigkill"} {
		t.Run(window, func(t *testing.T) {
			runFailoverRound(t, bin, window)
		})
	}
}

func runFailoverRound(t *testing.T, bin, window string) {
	data := t.TempDir()
	names := []string{"ns", "m1", "m2", "m3"}
	addrs := freeUDPAddrs(t, len(names))
	var entries []string
	for i, nm := range names {
		entries = append(entries, nm+"="+addrs[i])
	}
	peers := strings.Join(entries, ",")

	ns := startNode(t, bin, "-name", "ns", "-listen", addrs[0], "-peers", peers, "-host", "nameserv")
	defer ns.kill()
	nsPort := ns.ports["name_service_port"]
	if nsPort == "" {
		t.Fatalf("name service printed no port: %v", ns.ports)
	}

	members := make(map[string]*nodeProc)
	for i, m := range []string{"m1", "m2", "m3"} {
		args := []string{"-name", m, "-listen", addrs[i+1], "-peers", peers,
			"-host", "bank", "-data", data, "-cpevery", "4",
			"-group", "bankgrp", "-members", "m1,m2,m3",
			"-service", "bank/main", "-ns", nsPort,
			"-hb", "25ms", "-threshold", "2"}
		if m == "m1" && window != "sigkill" {
			// The 5th replicated batch lands mid-run, with client calls in
			// flight — exactly where dying in this window hurts most.
			args = append(args, "-crash", window+":5")
		}
		members[m] = startNode(t, bin, args...)
	}
	defer func() {
		for _, p := range members {
			p.kill()
		}
	}()

	// teller runs one client process that resolves (and on every retry
	// re-resolves) the branch through the name service.
	teller := func(name, timeout string, retries int, ops []string) (string, error) {
		args := []string{"-name", name, "-peers", peers, "-ns", nsPort,
			"-resolve", "bank/main", "-timeout", timeout, "-retries", strconv.Itoa(retries)}
		for _, op := range ops {
			args = append(args, "-op", op)
		}
		out, err := exec.Command(bin, args...).CombinedOutput()
		return string(out), err
	}

	// Setup must fully confirm even if the injected crash lands here: the
	// retries ride the failover. (With one replicated batch per mutating
	// op the 5th firing is a transfer, but the invariants don't care.)
	out, err := teller("setup", "250ms", 80, []string{
		"open alice", "open bob", fmt.Sprintf("deposit alice %d", seedDeposit),
	})
	if err != nil || strings.Count(out, ": ok") != 3 {
		t.Fatalf("setup: %v\n%s", err, out)
	}

	confirmed := make(map[int]bool)
	issued := 0
	// stream issues count transfers and requires every one to confirm:
	// with re-resolution and generous retries, failover must be invisible
	// to the client beyond latency.
	stream := func(name string, count int) {
		t.Helper()
		var ops []string
		first := issued
		for i := 0; i < count; i++ {
			ops = append(ops, fmt.Sprintf("transfer alice bob %d", pow3(issued)))
			issued++
		}
		out, err := teller(name, "150ms", 80, ops)
		for i := first; i < issued; i++ {
			if strings.Contains(out, fmt.Sprintf("op \"transfer alice bob %d\": ok", pow3(i))) {
				confirmed[i] = true
			}
		}
		if err != nil || len(confirmed) != issued {
			t.Fatalf("%s: %d/%d transfers confirmed, err %v\n%s", name, len(confirmed), issued, err, out)
		}
	}

	if window == "sigkill" {
		stream("pre", 2)
		members["m1"].kill()
		stream("post", 4)
	} else {
		stream("stream", 6)
		// The stream outlived the crash, so m1 must be dead — of exactly
		// the injected exit, not anything else.
		if code := members["m1"].exitCode(10 * time.Second); code != 137 {
			t.Fatalf("m1 exit code %d, want 137 (injected crash at %s)", code, window)
		}
	}

	// The audit: a fresh client resolves the (re-bound) name and reads the
	// balances; conservation and the base-3 tally must hold on whatever
	// member now serves the branch.
	out, err = teller("verify", "250ms", 80, []string{"balance alice", "balance bob"})
	if err != nil {
		t.Fatalf("verify: %v\n%s", err, out)
	}
	checkInvariants(t, 0, balanceOf(t, out, "alice"), balanceOf(t, out, "bob"), confirmed, issued)

	// Shutdown reports from the survivors: exactly the takeover story —
	// a new leader that is not m1, serving the branch.
	leaders := 0
	takeovers := 0
	for _, m := range []string{"m2", "m3"} {
		tail := members[m].interrupt()
		g := replLine.FindStringSubmatch(tail)
		if g == nil {
			t.Fatalf("%s printed no repl line:\n%s", m, tail)
		}
		if g[1] == "m1" {
			t.Errorf("%s still believes dead m1 leads:\n%s", m, tail)
		}
		if g[1] == m && g[3] == "true" {
			leaders++
			if !strings.Contains(tail, "applies ") {
				t.Errorf("leader %s serves no branch (no applies line):\n%s", m, tail)
			}
		}
		n, _ := strconv.Atoi(g[9])
		takeovers += n
	}
	if leaders != 1 {
		t.Errorf("want exactly 1 surviving leader, got %d", leaders)
	}
	if takeovers == 0 {
		t.Error("no survivor counted a takeover")
	}
	t.Logf("window %s: %d/%d transfers confirmed", window, len(confirmed), issued)
}
