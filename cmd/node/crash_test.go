package main

// The acceptance test for the durable-storage tentpole: a bank branch
// running as its own OS process with a -data WAL is killed — by injected
// crashes parked at exact durability windows (before the batch fsync,
// after it, between checkpoint install and compaction) and by plain
// external SIGKILL — then restarted over the same directory, and must
// come back with money conserved and every client-confirmed transfer
// applied exactly once.
//
// Every transfer moves a distinct power of three, so the destination
// balance is a base-3 tally: digit i counts how many times transfer i
// executed. Any digit of 2 is a double-apply; a 0 digit on a confirmed
// transfer is a lost acknowledged effect. Unconfirmed transfers (the
// client died waiting) are legitimately 0 or 1 — at-most-once, not
// exactly-once, is the contract for unacknowledged work.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

const seedDeposit = 2_000_000_000

func pow3(i int) int64 {
	n := int64(1)
	for ; i > 0; i-- {
		n *= 3
	}
	return n
}

// branchProc is one server incarnation and its parsed startup banner.
type branchProc struct {
	cmd       *exec.Cmd
	addr      string
	amoPort   string
	recovered bool
	recovery  []string // "recovery <log> ..." report lines
}

// startBranch launches a bank server over data and reads its banner.
func startBranch(t *testing.T, bin, data string, extra ...string) *branchProc {
	t.Helper()
	args := []string{"-name", "branch", "-listen", "127.0.0.1:0", "-host", "bank",
		"-data", data, "-cpevery", "2"}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &branchProc{cmd: cmd}
	guard := time.AfterFunc(20*time.Second, func() { cmd.Process.Kill() })
	defer guard.Stop()
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "listening on "); ok {
			p.addr = rest
		}
		if strings.HasPrefix(line, "recovered ") {
			p.recovered = true
		}
		if strings.HasPrefix(line, "recovery ") {
			p.recovery = append(p.recovery, line)
		}
		if rest, ok := strings.CutPrefix(line, "port amo_req_port "); ok {
			p.amoPort = rest
		}
		if line == "ready" {
			return p
		}
	}
	p.killWait()
	t.Fatalf("branch died before ready (args %v)", args)
	return nil
}

// killWait is kill -9 plus reaping; killing an already-crashed process
// is fine.
func (p *branchProc) killWait() {
	_ = p.cmd.Process.Kill()
	_ = p.cmd.Wait()
}

// runTeller drives ops through a fresh client process. The error is the
// client's: expected whenever the server crashes mid-batch.
func runTeller(bin, addr, port, name, timeout string, retries int, ops []string) (string, error) {
	args := []string{"-name", name, "-peers", "branch=" + addr, "-call", port,
		"-timeout", timeout, "-retries", strconv.Itoa(retries)}
	for _, op := range ops {
		args = append(args, "-op", op)
	}
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

// balanceOf extracts one "balance_is" reply from client output.
func balanceOf(t *testing.T, out, acct string) int64 {
	t.Helper()
	marker := fmt.Sprintf("op \"balance %s\": balance_is ", acct)
	_, rest, ok := strings.Cut(out, marker)
	if !ok {
		t.Fatalf("no balance reply for %s in:\n%s", acct, out)
	}
	rest, _, _ = strings.Cut(rest, "\n")
	n, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
	if err != nil {
		t.Fatalf("bad balance for %s: %v", acct, err)
	}
	return n
}

// checkInvariants asserts conservation of money and the base-3 tally:
// no transfer applied twice, every confirmed transfer applied once.
func checkInvariants(t *testing.T, round int, alice, bob int64, confirmed map[int]bool, issued int) {
	t.Helper()
	if alice+bob != seedDeposit {
		t.Fatalf("round %d: alice=%d + bob=%d != %d: money not conserved", round, alice, bob, seedDeposit)
	}
	rem := bob
	for i := 0; i < issued; i++ {
		d := rem % 3
		rem /= 3
		if d > 1 {
			t.Fatalf("round %d: transfer %d applied %d times (double apply)", round, i, d)
		}
		if confirmed[i] && d != 1 {
			t.Fatalf("round %d: confirmed transfer %d applied %d times (lost acknowledged effect)", round, i, d)
		}
	}
	if rem != 0 {
		t.Fatalf("round %d: bob=%d holds money no issued transfer moved", round, bob)
	}
}

func TestBankSurvivesCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildNode(t)
	data := t.TempDir()
	confirmed := make(map[int]bool)

	// Setup incarnation: create the accounts and fund alice, then kill -9.
	srv := startBranch(t, bin, data)
	if srv.recovered {
		t.Fatal("fresh data dir claimed catalog recovery")
	}
	amoPort := srv.amoPort
	out, err := runTeller(bin, srv.addr, amoPort, "setup", "500ms", 20, []string{
		"open alice", "open bob", fmt.Sprintf("deposit alice %d", seedDeposit),
	})
	if err != nil || strings.Count(out, ": ok") != 3 {
		t.Fatalf("setup: %v\n%s", err, out)
	}
	srv.killWait()

	// verify brings up a clean incarnation, audits the invariants, and
	// returns its recovery-report lines.
	issued := 0
	verify := func(round int) []string {
		t.Helper()
		v := startBranch(t, bin, data)
		defer v.killWait()
		if !v.recovered {
			t.Fatalf("round %d: verify server did not recover the branch from the catalog", round)
		}
		if v.amoPort != amoPort {
			t.Fatalf("round %d: amo port drifted across restart: %s vs %s", round, v.amoPort, amoPort)
		}
		out, err := runTeller(bin, v.addr, amoPort, fmt.Sprintf("verify%d", round), "500ms", 20,
			[]string{"balance alice", "balance bob"})
		if err != nil {
			t.Fatalf("round %d: verify client: %v\n%s", round, err, out)
		}
		checkInvariants(t, round, balanceOf(t, out, "alice"), balanceOf(t, out, "bob"), confirmed, issued)
		return v.recovery
	}

	// The matrix: one round per crash window. Each round's server is told
	// to exit — as abruptly as SIGKILL — at an exact WAL crash point while
	// a batch of transfers is in flight; the empty spec is the control
	// round, killed externally after its batch completes.
	rounds := []string{"before-sync:4", "mid-checkpoint:1", "after-sync:3", ""}
	for r, crash := range rounds {
		var extra []string
		if crash != "" {
			extra = append(extra, "-crash", crash)
		}
		srv := startBranch(t, bin, data, extra...)
		if !srv.recovered {
			t.Fatalf("round %d: server did not recover the branch from the catalog", r)
		}
		if srv.amoPort != amoPort {
			t.Fatalf("round %d: amo port drifted across restart: %s vs %s", r, srv.amoPort, amoPort)
		}
		var ops []string
		first := issued
		for i := 0; i < 4; i++ {
			ops = append(ops, fmt.Sprintf("transfer alice bob %d", pow3(issued)))
			issued++
		}
		// The client dies with the server mid-batch in the crash rounds;
		// only the replies it actually received count as confirmed.
		out, _ := runTeller(bin, srv.addr, amoPort, fmt.Sprintf("teller%d", r), "150ms", 4, ops)
		for i := first; i < issued; i++ {
			if strings.Contains(out, fmt.Sprintf("op \"transfer alice bob %d\": ok", pow3(i))) {
				confirmed[i] = true
			}
		}
		srv.killWait()
		recovery := verify(r)
		if crash == "mid-checkpoint:1" {
			// Dying between checkpoint install and compaction leaves
			// records at or below the new watermark on disk; recovery must
			// skip them — and say so — rather than replay them under the
			// checkpoint.
			found := false
			for _, line := range recovery {
				if strings.Contains(line, "skipped=") && !strings.Contains(line, "skipped=0") {
					found = true
				}
			}
			if !found {
				t.Errorf("round %d: no skipped-records recovery report after mid-checkpoint crash:\n%s",
					r, strings.Join(recovery, "\n"))
			}
		}
	}

	// Torn tail: scribble a partial frame onto the branch log's active
	// segment — the residue a crash mid-write leaves. Recovery must
	// truncate and REPORT it, never silently replay it, and the surviving
	// state must be untouched.
	segs, err := filepath.Glob(filepath.Join(data, "branch", "bank_branch-2", "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no branch segments to tear: %v %v", segs, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn!")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recovery := verify(len(rounds))
	torn := false
	for _, line := range recovery {
		if strings.Contains(line, "bank_branch-2") && strings.Contains(line, "torn_tail=true") {
			torn = true
		}
	}
	if !torn {
		t.Errorf("no torn-tail recovery report after tearing the segment:\n%s", strings.Join(recovery, "\n"))
	}
	t.Logf("confirmed %d/%d transfers across %d crash rounds", len(confirmed), issued, len(rounds))
}
