// Command node boots one guardian-model node as its own OS process, joined
// to its peers by a real network — UDP datagrams by default, or framed
// persistent TCP connections with -transport tcp — the deployment shape
// the paper assumes (one node, one machine) instead of the in-process
// simulator the tests use. A node either hosts an application guardian
// (server mode) or drives at-most-once calls against one (client mode,
// -call).
//
// Two-terminal bank demo:
//
//	terminal 1:
//	  node -name branch -listen 127.0.0.1:9101 -host bank
//	terminal 2:
//	  node -name teller -peers branch=127.0.0.1:9101 \
//	       -call branch/2/2 \
//	       -op 'open alice' -op 'open bob' \
//	       -op 'deposit alice 1000' -op 'transfer alice bob 250' \
//	       -op 'balance alice' -op 'balance bob'
//
// The server prints its bound address and the global names of the hosted
// guardian's ports ("port <type> <node/guardian/port>"); the -call value
// is the amo port name printed in terminal 1. The -loss/-dup/-delay flags
// wrap the socket in the same fault model the simulator uses, so the §3.5
// at-most-once machinery can be watched surviving real packet abuse. With
// -transport tcp the stream fault flags -reset/-stall inject connection
// resets and half-open write stalls instead (loss and duplication are
// datagram faults; a stream would just repair them), and -stats prints
// the per-peer connection counters on shutdown.
//
// Beyond the two-terminal demo: -data makes the hosted guardian durable
// (WAL + recovery, DESIGN.md §11), -group replicates it across member
// processes with automatic failover (§12), and -shard makes it one member
// of a consistent-hash ring (§14) — bootstrapped, joined, and driven by
// the ring client mode (-ring, with -ringboot/-ringjoin/-ringleave, ops
// routed by account through an epoch-aware router, cross-shard transfers
// via a -host txncoord process). -crash POINT:N exits at exact durability,
// replication, or handoff windows for the crash-matrix tests. The README
// has a full multi-terminal walkthrough of each mode.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/airline"
	"repro/internal/amo"
	"repro/internal/bank"
	"repro/internal/durable"
	"repro/internal/guardian"
	"repro/internal/metrics"
	"repro/internal/nameserv"
	"repro/internal/replica"
	"repro/internal/ring"
	"repro/internal/sendprim"
	"repro/internal/tpc"
	"repro/internal/transport"
	"repro/internal/xrep"
)

// multiFlag collects repeated -op occurrences.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

type options struct {
	name   string
	listen string
	peers  map[transport.Addr]string
	host   string

	// transport shape
	trans string
	mtu   int
	pace  time.Duration
	recv  int
	stats bool

	// injected faults (both directions are outbound somewhere: run both
	// processes with the same flags to fault the full round trip)
	loss, dup     float64
	delay, jitter time.Duration
	reset, stall  float64
	stalltime     time.Duration
	seed          int64

	// durable storage
	data    string
	cpevery int
	crash   *crashSpec

	// replica group (server mode)
	group      string
	members    string
	memberList []string
	mode       string
	hb         time.Duration
	threshold  int
	service    string
	ns         string

	// airline host parameters
	flight, capacity int64
	org              string

	// consistent-hash ring: shard names the member a hosted bank branch
	// serves as; the ring* flags select the ring client mode.
	shard     string
	ringName  string
	ringBoot  string
	ringJoin  string
	ringLeave string
	coord     string

	// client mode
	call    string
	resolve string
	ops     multiFlag
	timeout time.Duration
	retries int
}

func parseFlags(args []string, stderr io.Writer) (*options, error) {
	o := &options{peers: make(map[transport.Addr]string)}
	fs := flag.NewFlagSet("node", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&o.name, "name", "", "this node's name (required)")
	fs.StringVar(&o.listen, "listen", "127.0.0.1:0", "address to bind (UDP socket or TCP listener)")
	peers := fs.String("peers", "", "comma-separated name=host:port routing entries")
	fs.StringVar(&o.host, "host", "", "guardian to host: bank, airline or nameserv (server mode)")
	fs.StringVar(&o.trans, "transport", "udp", "network transport: udp (datagrams) or tcp (framed persistent connections)")
	fs.IntVar(&o.mtu, "mtu", 0, "maximum datagram size, or with -transport tcp the maximum frame size (0 = transport default)")
	fs.BoolVar(&o.stats, "stats", false, "print per-peer connection counters on shutdown (tcp)")
	fs.DurationVar(&o.pace, "pace", 0, "minimum gap between datagrams to one peer")
	fs.IntVar(&o.recv, "recv", 0, "receive workers per socket (0 = default)")
	fs.StringVar(&o.data, "data", "", "directory for on-disk WAL storage (empty = volatile in-memory disk)")
	fs.IntVar(&o.cpevery, "cpevery", 0, "bank: checkpoint every N mutations (0 = never)")
	crash := fs.String("crash", "", "crash injection: POINT:N exits the process at the Nth firing of "+
		"a WAL crash point (before-sync, after-sync, mid-checkpoint; needs -data) or a replication "+
		"window (before-ship, after-ship, after-quorum; needs -group)")
	fs.StringVar(&o.group, "group", "", "replica group name: wrap this node's store for primary/backup "+
		"replication (needs -host, -data and -members)")
	fs.StringVar(&o.members, "members", "", "comma-separated member node names; the first is the initial primary")
	fs.StringVar(&o.mode, "mode", "quorum", "replication ack discipline: quorum or async")
	fs.DurationVar(&o.hb, "hb", 25*time.Millisecond, "replica heartbeat / shipping cadence")
	fs.IntVar(&o.threshold, "threshold", 2, "missed heartbeats before a follower stands for election")
	fs.StringVar(&o.service, "service", "", "well-known name the group's current leader binds at the name service")
	fs.StringVar(&o.ns, "ns", "", "name-service port as node/guardian/port")
	fs.Float64Var(&o.loss, "loss", 0, "injected outbound loss rate [0,1] (udp)")
	fs.Float64Var(&o.dup, "dup", 0, "injected outbound duplication rate [0,1] (udp)")
	fs.DurationVar(&o.delay, "delay", 0, "injected minimum outbound delay")
	fs.DurationVar(&o.jitter, "jitter", 0, "injected additional random delay")
	fs.Float64Var(&o.reset, "reset", 0, "injected connection reset rate per send [0,1] (tcp)")
	fs.Float64Var(&o.stall, "stall", 0, "injected write-stall rate per send [0,1] (tcp)")
	fs.DurationVar(&o.stalltime, "stalltime", 50*time.Millisecond, "duration of each injected write stall")
	fs.Int64Var(&o.seed, "seed", 1, "fault injection seed")
	fs.Int64Var(&o.flight, "flight", 12, "airline: flight number")
	fs.Int64Var(&o.capacity, "capacity", 100, "airline: seat capacity")
	fs.StringVar(&o.org, "org", airline.OrgMonitor, "airline: internal organization")
	fs.StringVar(&o.shard, "shard", "", "bank: serve as this ring member (shard mode; needs -host bank)")
	fs.StringVar(&o.ringName, "ring", "", "ring client mode: route -op operations through this consistent-hash ring (needs -ns)")
	fs.StringVar(&o.ringBoot, "ringboot", "", "bootstrap the ring's epoch-1 membership: 'name=NATIVE,AMO;name=NATIVE,AMO;...' (needs -ring)")
	fs.StringVar(&o.ringJoin, "ringjoin", "", "rebalance one member into the ring: 'name=NATIVE,AMO' (needs -ring)")
	fs.StringVar(&o.ringLeave, "ringleave", "", "rebalance one member out of the ring by name (needs -ring)")
	fs.StringVar(&o.coord, "coord", "", "two-phase-commit coordinator port for cross-shard transfers, as node/guardian/port")
	fs.StringVar(&o.call, "call", "", "client mode: target port as node/guardian/port")
	fs.StringVar(&o.resolve, "resolve", "", "client mode: resolve the target by well-known name "+
		"through the name service, re-resolving on every retry (needs -ns)")
	fs.Var(&o.ops, "op", "client mode: operation to run, e.g. 'transfer alice bob 25' (repeatable)")
	fs.DurationVar(&o.timeout, "timeout", 250*time.Millisecond, "client: per-attempt reply timeout")
	fs.IntVar(&o.retries, "retries", 40, "client: retransmissions before giving up")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.name == "" {
		return nil, fmt.Errorf("node: -name is required")
	}
	switch o.trans {
	case "udp":
		if o.reset > 0 || o.stall > 0 {
			return nil, fmt.Errorf("node: -reset/-stall are stream faults: they need -transport tcp")
		}
	case "tcp":
		if o.loss > 0 || o.dup > 0 {
			return nil, fmt.Errorf("node: -loss/-dup are datagram faults a stream would repair; use -reset/-stall with -transport tcp")
		}
	default:
		return nil, fmt.Errorf("node: bad -transport %q: want udp or tcp", o.trans)
	}
	if *crash != "" {
		spec, err := parseCrashSpec(*crash)
		if err != nil {
			return nil, err
		}
		switch {
		case spec.replication():
			if o.group == "" {
				return nil, fmt.Errorf("node: -crash %s needs -group", spec.point)
			}
		case spec.handoff():
			if o.shard == "" {
				return nil, fmt.Errorf("node: -crash %s needs -shard", spec.point)
			}
			if o.data == "" {
				return nil, fmt.Errorf("node: -crash %s needs -data", spec.point)
			}
		default:
			if o.data == "" {
				return nil, fmt.Errorf("node: -crash %s needs -data", spec.point)
			}
		}
		o.crash = spec
	}
	clientMode := o.call != "" || o.resolve != "" || o.ringName != ""
	if (o.host == "") == !clientMode {
		return nil, fmt.Errorf("node: exactly one of -host (server) or -call/-resolve/-ring (client) is required")
	}
	if (o.call != "" && o.resolve != "") || (o.ringName != "" && (o.call != "" || o.resolve != "")) {
		return nil, fmt.Errorf("node: -call, -resolve and -ring are mutually exclusive")
	}
	if o.shard != "" && o.host != "bank" {
		return nil, fmt.Errorf("node: -shard needs -host bank")
	}
	if o.shard != "" && o.group != "" {
		return nil, fmt.Errorf("node: -shard and -group are exclusive")
	}
	if o.ringName != "" && o.ns == "" {
		return nil, fmt.Errorf("node: -ring needs -ns")
	}
	if o.ringName == "" && (o.ringBoot != "" || o.ringJoin != "" || o.ringLeave != "") {
		return nil, fmt.Errorf("node: -ringboot/-ringjoin/-ringleave need -ring")
	}
	if o.resolve != "" && o.ns == "" {
		return nil, fmt.Errorf("node: -resolve needs -ns")
	}
	if o.group != "" {
		if o.host == "" {
			return nil, fmt.Errorf("node: -group is server-side: it needs -host")
		}
		if o.data == "" {
			return nil, fmt.Errorf("node: -group needs -data: replication acks promise durability")
		}
		for _, m := range strings.Split(o.members, ",") {
			if m = strings.TrimSpace(m); m != "" {
				o.memberList = append(o.memberList, m)
			}
		}
		if len(o.memberList) == 0 {
			return nil, fmt.Errorf("node: -group needs -members")
		}
		if o.service != "" && o.ns == "" {
			return nil, fmt.Errorf("node: -service needs -ns")
		}
		switch o.mode {
		case "quorum", "async":
		default:
			return nil, fmt.Errorf("node: bad -mode %q: want quorum or async", o.mode)
		}
	}
	for _, entry := range strings.Split(*peers, ",") {
		if entry = strings.TrimSpace(entry); entry == "" {
			continue
		}
		name, addr, ok := strings.Cut(entry, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("node: bad -peers entry %q: want name=host:port", entry)
		}
		o.peers[transport.Addr(name)] = addr
	}
	return o, nil
}

// crashSpec kills the process — os.Exit, as abrupt as SIGKILL from the
// store's point of view — at the Nth firing of one WAL crash point or
// replication window, so a test can park a real OS process exactly
// inside a durability or replication window.
type crashSpec struct {
	point string
	n     int64
	count atomic.Int64
}

func parseCrashSpec(s string) (*crashSpec, error) {
	point, nStr, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("node: bad -crash %q: want POINT:N", s)
	}
	switch point {
	case "before-sync", "after-sync", "mid-checkpoint",
		"before-ship", "after-ship", "after-quorum",
		"before-cut", "after-cut", "before-install", "after-install":
	default:
		return nil, fmt.Errorf("node: bad -crash point %q: want before-sync, after-sync, mid-checkpoint, "+
			"before-ship, after-ship, after-quorum, before-cut, after-cut, before-install or after-install", point)
	}
	n, err := strconv.ParseInt(nStr, 10, 64)
	if err != nil || n < 1 {
		return nil, fmt.Errorf("node: bad -crash count %q: want a positive integer", nStr)
	}
	return &crashSpec{point: point, n: n}, nil
}

// replication reports whether the crash point is a replication window
// (fired from replica.Hooks) rather than a WAL durability window.
func (c *crashSpec) replication() bool {
	switch c.point {
	case "before-ship", "after-ship", "after-quorum":
		return true
	}
	return false
}

// handoff reports whether the crash point is a shard-handoff window
// (fired from bank.ShardHooks).
func (c *crashSpec) handoff() bool {
	switch c.point {
	case "before-cut", "after-cut", "before-install", "after-install":
		return true
	}
	return false
}

// hook returns the WALHooks callback for one crash point.
func (c *crashSpec) hook(point string) func(string) {
	if c == nil || c.point != point {
		return nil
	}
	return func(log string) {
		if c.count.Add(1) == c.n {
			fmt.Fprintf(os.Stderr, "crash injected at %s %d (log %s)\n", point, c.n, log)
			os.Exit(137)
		}
	}
}

// hostDef maps -host to the guardian definition this node serves.
func hostDef(o *options) (def string, bootArgs []any, provides []*guardian.PortType, err error) {
	switch o.host {
	case "bank":
		def = bank.BranchDefName
		provides = bank.BranchDef().Provides
		if o.shard != "" {
			bootArgs = append(bootArgs, bank.ShardArg(o.shard))
		}
		if o.cpevery > 0 {
			bootArgs = append(bootArgs, o.cpevery)
		}
	case "airline":
		def = airline.FlightDefName
		provides = airline.FlightDef().Provides
		bootArgs = []any{o.flight, o.capacity, o.org, int64(0)}
	case "nameserv":
		def = nameserv.DefName
		provides = nameserv.Def().Provides
	case "txncoord":
		def = tpc.CoordinatorDefName
		provides = tpc.CoordinatorDef().Provides
	default:
		err = fmt.Errorf("node: unknown -host %q: want bank, airline, nameserv or txncoord", o.host)
	}
	return def, bootArgs, provides, err
}

// replicaConfig builds this member's view of its replica group.
func replicaConfig(o *options) (replica.Config, error) {
	def, bootArgs, _, err := hostDef(o)
	if err != nil {
		return replica.Config{}, err
	}
	mode := replica.ModeQuorum
	if o.mode == "async" {
		mode = replica.ModeAsync
	}
	cfg := replica.Config{
		Group:     o.group,
		Self:      o.name,
		Members:   o.memberList,
		Mode:      mode,
		Heartbeat: o.hb,
		Threshold: o.threshold,
		AppDef:    def,
		AppArgs:   bootArgs,
		Service:   o.service,
		// Both hosted applications put their at-most-once request port at
		// Provides index 1; that is the port a well-known name should
		// resolve to.
		ServicePort: 1,
		Hooks: replica.Hooks{
			BeforeShip:  o.crash.hook("before-ship"),
			AfterShip:   o.crash.hook("after-ship"),
			AfterQuorum: o.crash.hook("after-quorum"),
		},
	}
	if o.service != "" {
		ns, err := nameserv.ParsePort(o.ns)
		if err != nil {
			return replica.Config{}, err
		}
		cfg.NS = ns
	}
	return cfg, nil
}

// replicaSlot receives the replica.Store the store hook wraps around the
// serving member's WAL; it is filled in when AddNode opens the store.
type replicaSlot struct{ st *replica.Store }

// localAddresser is the slice of both real transports the banner and
// shutdown report need beyond Transport: where an attached name actually
// bound (UDP reads its socket back, TCP its shared listener).
type localAddresser interface {
	transport.Transport
	LocalAddr(a transport.Addr) string
}

// buildWorld assembles the transport stack and an empty world around it.
func buildWorld(o *options) (*guardian.World, localAddresser, *transport.Wrapper, *replicaSlot, error) {
	var base localAddresser
	cfg := guardian.Config{}
	switch o.trans {
	case "tcp":
		tcp, err := transport.NewTCP(transport.TCPConfig{
			Listen:   o.listen,
			Peers:    o.peers,
			MaxFrame: o.mtu,
			Seed:     o.seed,
		})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		base = tcp
		// Streams have no MTU: let the runtime ship a whole message as one
		// frame instead of fragment trains sized for ethernet datagrams.
		cfg.FragmentMTU = o.mtu
		if cfg.FragmentMTU == 0 {
			cfg.FragmentMTU = transport.DefaultTCPMaxFrame
		}
	default:
		o.peers[transport.Addr(o.name)] = o.listen
		udp, err := transport.NewUDP(transport.UDPConfig{
			Peers:       o.peers,
			MTU:         o.mtu,
			PaceMinGap:  o.pace,
			RecvWorkers: o.recv,
		})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		base = udp
	}
	var tr transport.Transport = base
	var wrap *transport.Wrapper
	if o.loss > 0 || o.dup > 0 || o.delay > 0 || o.jitter > 0 || o.reset > 0 || o.stall > 0 {
		wrap = transport.Wrap(base, transport.WrapperConfig{
			Seed:      o.seed,
			LossRate:  o.loss,
			DupRate:   o.dup,
			Delay:     o.delay,
			Jitter:    o.jitter,
			ResetRate: o.reset,
			StallRate: o.stall,
			StallFor:  o.stalltime,
		})
		tr = wrap
	}
	cfg.Transport = tr
	slot := &replicaSlot{}
	if o.data != "" {
		open := func(node string) (durable.Store, error) {
			return durable.OpenWAL(filepath.Join(o.data, node), durable.WALConfig{
				Hooks: durable.WALHooks{
					BeforeSync:    o.crash.hook("before-sync"),
					AfterSync:     o.crash.hook("after-sync"),
					MidCheckpoint: o.crash.hook("mid-checkpoint"),
				},
			})
		}
		cfg.Store = open
		if o.group != "" {
			rc, err := replicaConfig(o)
			if err != nil {
				base.Close()
				return nil, nil, nil, nil, err
			}
			cfg.Store = func(node string) (durable.Store, error) {
				inner, err := open(node)
				if err != nil || node != o.name {
					return inner, err
				}
				st, err := replica.NewStore(inner, rc)
				if err != nil {
					return nil, err
				}
				slot.st = st
				return st, nil
			}
		}
	}
	w := guardian.NewWorld(cfg)
	w.MustRegister(bank.BranchDef())
	w.MustRegister(airline.FlightDef())
	w.MustRegister(nameserv.Def())
	w.MustRegister(replica.Def())
	w.MustRegister(tpc.CoordinatorDef())
	return w, base, wrap, slot, nil
}

func serve(o *options, stdout io.Writer) error {
	if o.shard != "" {
		// Handoff crash windows fire from the branch's receive process; a
		// non-matching point leaves the hook nil (a no-op).
		bank.SetShardHooks(o.name, bank.ShardHooks{
			BeforeCut:     o.crash.hook("before-cut"),
			AfterCut:      o.crash.hook("after-cut"),
			BeforeInstall: o.crash.hook("before-install"),
			AfterInstall:  o.crash.hook("after-install"),
		})
	}
	w, base, wrap, slot, err := buildWorld(o)
	if err != nil {
		return err
	}
	defer w.Close()
	n, err := w.AddNode(o.name)
	if err != nil {
		return err
	}

	def, bootArgs, provides, err := hostDef(o)
	if err != nil {
		return err
	}

	// find locates an already-live guardian by definition: on a -data
	// restart the node's catalog re-created it (same id, same port names),
	// so booting a second one would split the state.
	find := func(def string) *guardian.Guardian {
		for _, id := range n.Guardians() {
			if g, ok := n.GuardianByID(id); ok && g.DefName() == def {
				return g
			}
		}
		return nil
	}

	if o.group != "" && find(replica.DefName) == nil {
		// The replicator must be the FIRST guardian bootstrapped on every
		// member, so its port carries the a-priori name replica.PortAt.
		if _, err := n.Bootstrap(replica.DefName); err != nil {
			return err
		}
	}

	var hosted *guardian.Guardian
	var ports []xrep.PortName
	if g := find(def); g != nil {
		hosted = g
		for _, p := range g.ProvidedPorts() {
			ports = append(ports, p.Name())
		}
	}
	recovered := hosted != nil
	switch {
	case recovered:
		if slot.st != nil {
			// A restarted initial primary re-adopts its recovered app so the
			// replicator can heartbeat its log and re-bind the service.
			slot.st.Adopt(n, &guardian.Created{GuardianID: hosted.ID(), Ports: ports})
		}
	case o.group == "" || o.memberList[0] == o.name:
		// Followers never bootstrap the application: the election winner
		// re-creates it from the shipped log via takeover.
		created, err := n.Bootstrap(def, bootArgs...)
		if err != nil {
			return err
		}
		hosted, _ = n.GuardianByID(created.GuardianID)
		ports = created.Ports
		if slot.st != nil {
			slot.st.Adopt(n, created)
		}
	}

	fmt.Fprintf(stdout, "listening on %s\n", base.LocalAddr(transport.Addr(o.name)))
	if o.shard != "" {
		fmt.Fprintf(stdout, "shard member=%s\n", o.shard)
	}
	if recovered {
		fmt.Fprintf(stdout, "recovered %s guardian %d from catalog\n", def, hosted.ID())
	}
	if o.group != "" {
		role := "follower"
		if hosted != nil {
			role = "primary"
		}
		fmt.Fprintf(stdout, "replica group=%s role=%s members=%s mode=%s\n",
			o.group, role, strings.Join(o.memberList, ","), o.mode)
		fmt.Fprintf(stdout, "port replica_port %s\n", nameserv.FormatPort(replica.PortAt(o.name)))
	}
	// What open-time scanning of the durable store found: a torn tail is
	// the legitimate residue of a crash mid-write (truncated, not
	// replayed); skipped records are stale residue of a crash between
	// checkpoint install and compaction. Either is worth a line — silent
	// repair is how recovery bugs hide.
	if rep, ok := n.Store().(durable.Reporter); ok {
		for _, name := range n.Store().LogNames() {
			r, scanned := rep.Report(name)
			if !scanned || (!r.TornTail && r.Skipped == 0) {
				continue
			}
			fmt.Fprintf(stdout, "recovery %s records=%d skipped=%d torn_tail=%v torn_bytes=%d\n",
				name, r.Records, r.Skipped, r.TornTail, r.TornBytes)
		}
	}
	for i, p := range ports {
		label := fmt.Sprintf("port%d", i)
		if i < len(provides) {
			label = provides[i].Name()
		}
		fmt.Fprintf(stdout, "port %s %s\n", label, nameserv.FormatPort(p))
	}
	fmt.Fprintln(stdout, "ready")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Shutdown report: transport accounting, injected faults, and — for a
	// bank branch — the applies counter an exactly-once audit needs.
	if wrap != nil {
		wrap.Quiesce()
		fmt.Fprint(stdout, injectedLine(wrap))
	}
	st := base.Stats()
	fmt.Fprintf(stdout, "stats sent=%d delivered=%d dropped=%d bytes_sent=%d bytes_recv=%d\n",
		st.Sent, st.Delivered, st.Dropped, st.BytesSent, st.BytesRecv)
	if o.stats {
		printConnStats(stdout, st)
	}
	if slot.st != nil {
		leader, term, isSelf := slot.st.Leader()
		rs := slot.st.ReplStats()
		fmt.Fprintf(stdout, "repl leader=%s term=%d self=%v shipped=%d applied=%d checkpoints=%d "+
			"fenced=%d elections=%d takeovers=%d\n",
			leader, term, isSelf, rs.ShippedRecords, rs.AppliedRecords, rs.CheckpointsShipped,
			rs.FencedStale, rs.Elections, rs.Takeovers)
		// A follower that won an election serves an app guardian it never
		// bootstrapped; the audit must read that one.
		if g := slot.st.AppGuardian(); g != nil {
			hosted = g
		}
	}
	if o.host == "bank" && hosted != nil {
		if applies, err := bank.Applies(hosted); err == nil {
			fmt.Fprintf(stdout, "applies %d\n", applies)
		}
		if member, epoch, accts, ok := bank.ShardSnapshot(hosted); ok {
			var total int64
			for _, bal := range accts {
				total += bal
			}
			fmt.Fprintf(stdout, "shard member=%s epoch=%d accounts=%d total=%d\n",
				member, epoch, len(accts), total)
		}
	}
	return w.Close()
}

// injectedLine renders the fault-injection shutdown summary: the datagram
// fates first (the fields the PR 3 audits parse), then the stream fates.
func injectedLine(wrap *transport.Wrapper) string {
	ws := wrap.InjectedStats()
	return fmt.Sprintf("injected sent=%d lost=%d duplicated=%d delayed=%d resets=%d stalls=%d\n",
		ws.Sent, ws.Lost, ws.Duplicated, ws.Delayed, ws.Resets, ws.Stalls)
}

// printConnStats renders the per-peer connection counters through the
// same metrics tables the experiments print. Datagram transports have no
// connections; the table simply doesn't appear.
func printConnStats(w io.Writer, st transport.Stats) {
	if len(st.Conns) == 0 {
		return
	}
	peers := make([]string, 0, len(st.Conns))
	for a := range st.Conns {
		peers = append(peers, string(a))
	}
	sort.Strings(peers)
	tb := metrics.NewTable("tcp connections",
		"peer", "state", "dials", "resets", "reconnects", "hb_missed", "queue_drops")
	for _, p := range peers {
		cs := st.Conns[transport.Addr(p)]
		tb.AddRow(p, cs.State, cs.Dials, cs.Resets, cs.Reconnects, cs.HeartbeatsMissed, cs.QueueDrops)
	}
	tb.Render(w)
}

// parseOp turns "transfer alice bob 25" into a command plus typed args:
// integer-looking tokens travel as ints, everything else as strings —
// matching the positional vocabularies of the hosted guardians' amo ports.
// A token "BASE*N" with a non-numeric BASE expands to BASE repeated N
// times: argv caps a single argument far below the multi-megabyte
// payloads the stream transport exists to carry, so "open B*2097152"
// is how a flag names a two-megabyte account.
func parseOp(op string) (string, []any, error) {
	fields := strings.Fields(op)
	if len(fields) == 0 {
		return "", nil, fmt.Errorf("node: empty -op")
	}
	args := make([]any, 0, len(fields)-1)
	for _, f := range fields[1:] {
		if n, err := strconv.ParseInt(f, 10, 64); err == nil {
			args = append(args, n)
			continue
		}
		if base, nStr, ok := strings.Cut(f, "*"); ok && base != "" {
			if n, err := strconv.ParseInt(nStr, 10, 32); err == nil && n > 0 {
				args = append(args, strings.Repeat(base, int(n)))
				continue
			}
		}
		args = append(args, f)
	}
	return fields[0], args, nil
}

func client(o *options, stdout io.Writer) error {
	var target xrep.PortName
	if o.call != "" {
		var err error
		target, err = nameserv.ParsePort(o.call)
		if err != nil {
			return err
		}
		if _, ok := o.peers[transport.Addr(target.Node)]; !ok {
			return fmt.Errorf("node: no -peers route to target node %q", target.Node)
		}
	}
	w, base, wrap, _, err := buildWorld(o)
	if err != nil {
		return err
	}
	defer w.Close()
	n, err := w.AddNode(o.name)
	if err != nil {
		return err
	}
	_, proc, err := n.NewDriver("cli")
	if err != nil {
		return err
	}
	copts := amo.CallerOptions{
		Timeout: o.timeout,
		Retries: o.retries,
		Backoff: amo.BackoffPolicy{Base: o.timeout / 10, Jitter: 0.5},
	}
	if o.resolve != "" {
		nsPort, err := nameserv.ParsePort(o.ns)
		if err != nil {
			return err
		}
		if _, ok := o.peers[transport.Addr(nsPort.Node)]; !ok {
			return fmt.Errorf("node: no -peers route to name-service node %q", nsPort.Node)
		}
		nc, err := nameserv.NewClient(proc, nsPort)
		if err != nil {
			return err
		}
		lookup := func() (xrep.PortName, bool) {
			p, _, err := nc.Lookup(o.resolve, o.timeout)
			return p, err == nil
		}
		// Re-resolving before every retry is what lets one client session
		// follow the binding across a failover mid-conversation.
		copts.Resolve = lookup
		for i := 0; ; i++ {
			if p, ok := lookup(); ok {
				target = p
				break
			}
			if i >= o.retries {
				return fmt.Errorf("node: resolve %q: no binding after %d lookups", o.resolve, i+1)
			}
			time.Sleep(50 * time.Millisecond)
		}
		fmt.Fprintf(stdout, "resolved %s -> %s\n", o.resolve, nameserv.FormatPort(target))
	}
	caller, err := amo.NewCaller(proc, copts)
	if err != nil {
		return err
	}

	for _, op := range o.ops {
		cmd, args, err := parseOp(op)
		if err != nil {
			return err
		}
		r, err := caller.Call(target, cmd, args...)
		if err != nil {
			return fmt.Errorf("node: op %q: %w", op, err)
		}
		line := r.Command
		for _, a := range r.Args {
			line += fmt.Sprintf(" %v", a)
		}
		fmt.Fprintf(stdout, "op %q: %s\n", op, line)
	}
	if wrap != nil {
		wrap.Quiesce()
		fmt.Fprint(stdout, injectedLine(wrap))
	}
	if o.stats {
		printConnStats(stdout, base.Stats())
	}
	return nil
}

// parseRingMember turns "s1=node/g/p,node/g/p" into a ring member: the
// first port is the branch's native (migration) port, the second its
// at-most-once request port — the order the server banner prints them.
func parseRingMember(spec string) (ring.Member, error) {
	name, ports, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return ring.Member{}, fmt.Errorf("node: bad ring member %q: want name=NATIVE,AMO", spec)
	}
	nat, am, ok := strings.Cut(ports, ",")
	if !ok {
		return ring.Member{}, fmt.Errorf("node: bad ring member ports %q: want NATIVE,AMO", ports)
	}
	native, err := nameserv.ParsePort(strings.TrimSpace(nat))
	if err != nil {
		return ring.Member{}, err
	}
	amoPort, err := nameserv.ParsePort(strings.TrimSpace(am))
	if err != nil {
		return ring.Member{}, err
	}
	return ring.Member{Name: name, Native: native, Amo: amoPort}, nil
}

// ringClient drives a consistent-hash ring of shard branches: optional
// membership actions (bootstrap, join, leave) followed by -op operations
// routed by account hash, with cross-shard transfers riding 2PC through
// -coord.
func ringClient(o *options, stdout io.Writer) error {
	nsPort, err := nameserv.ParsePort(o.ns)
	if err != nil {
		return err
	}
	if _, ok := o.peers[transport.Addr(nsPort.Node)]; !ok {
		return fmt.Errorf("node: no -peers route to name-service node %q", nsPort.Node)
	}
	w, base, wrap, _, err := buildWorld(o)
	if err != nil {
		return err
	}
	defer w.Close()
	n, err := w.AddNode(o.name)
	if err != nil {
		return err
	}
	_, proc, err := n.NewDriver("ringcli")
	if err != nil {
		return err
	}
	nc, err := nameserv.NewClient(proc, nsPort)
	if err != nil {
		return err
	}
	ropts := bank.RebalanceOptions{
		NS:      nc,
		Timeout: o.timeout,
		Call: sendprim.CallOptions{
			Timeout: o.timeout,
			Retries: o.retries,
			Backoff: o.timeout / 10,
		},
	}

	if o.ringBoot != "" {
		var members []ring.Member
		for _, spec := range strings.Split(o.ringBoot, ";") {
			if spec = strings.TrimSpace(spec); spec == "" {
				continue
			}
			m, err := parseRingMember(spec)
			if err != nil {
				return err
			}
			members = append(members, m)
		}
		if err := bank.Bootstrap(proc, ring.New(o.ringName, 0, members...), ropts); err != nil {
			return fmt.Errorf("node: ring bootstrap: %w", err)
		}
		fmt.Fprintf(stdout, "ring %s bootstrapped with %d members\n", o.ringName, len(members))
	}
	if o.ringJoin != "" {
		m, err := parseRingMember(o.ringJoin)
		if err != nil {
			return err
		}
		next, err := bank.Join(proc, o.ringName, m, ropts)
		if err != nil {
			return fmt.Errorf("node: ring join %s: %w", m.Name, err)
		}
		fmt.Fprintf(stdout, "ring %s epoch %d committed (join %s)\n", o.ringName, next.Epoch, m.Name)
	}
	if o.ringLeave != "" {
		next, err := bank.Leave(proc, o.ringName, o.ringLeave, ropts)
		if err != nil {
			return fmt.Errorf("node: ring leave %s: %w", o.ringLeave, err)
		}
		fmt.Fprintf(stdout, "ring %s epoch %d committed (leave %s)\n", o.ringName, next.Epoch, o.ringLeave)
	}

	if len(o.ops) > 0 {
		rto := bank.RouterOptions{
			NS:       nc,
			RingName: o.ringName,
			Timeout:  o.timeout,
			Call: amo.CallerOptions{
				Timeout: o.timeout,
				Retries: o.retries,
				Backoff: amo.BackoffPolicy{Base: o.timeout / 10, Jitter: 0.5},
			},
		}
		if o.coord != "" {
			p, err := nameserv.ParsePort(o.coord)
			if err != nil {
				return err
			}
			if _, ok := o.peers[transport.Addr(p.Node)]; !ok {
				return fmt.Errorf("node: no -peers route to coordinator node %q", p.Node)
			}
			rto.Coordinator = p
		}
		rt, err := bank.NewRouter(proc, rto)
		if err != nil {
			return err
		}
		defer rt.Close()
		for _, op := range o.ops {
			cmd, args, err := parseOp(op)
			if err != nil {
				return err
			}
			if cmd == "transfer" {
				if len(args) != 3 {
					return fmt.Errorf("node: op %q: want transfer FROM TO AMOUNT", op)
				}
				from, _ := args[0].(string)
				to, _ := args[1].(string)
				amt, _ := args[2].(int64)
				out, err := rt.Transfer(from, to, amt)
				if err != nil {
					return fmt.Errorf("node: op %q: %w", op, err)
				}
				fmt.Fprintf(stdout, "op %q: %s\n", op, out)
				continue
			}
			if len(args) == 0 {
				return fmt.Errorf("node: op %q: ring ops name their account first", op)
			}
			acct, ok := args[0].(string)
			if !ok {
				return fmt.Errorf("node: op %q: account must be a name", op)
			}
			r, err := rt.Call(acct, cmd, args...)
			if err != nil {
				return fmt.Errorf("node: op %q: %w", op, err)
			}
			line := r.Command
			for _, a := range r.Args {
				line += fmt.Sprintf(" %v", a)
			}
			fmt.Fprintf(stdout, "op %q: %s\n", op, line)
		}
	}
	if wrap != nil {
		wrap.Quiesce()
		fmt.Fprint(stdout, injectedLine(wrap))
	}
	if o.stats {
		printConnStats(stdout, base.Stats())
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) int {
	o, err := parseFlags(args, stderr)
	if err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		fmt.Fprintln(stderr, err)
		return 2
	}
	switch {
	case o.host != "":
		err = serve(o, stdout)
	case o.ringName != "":
		err = ringClient(o, stdout)
	default:
		err = client(o, stdout)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }
