// Command node boots one guardian-model node as its own OS process, joined
// to its peers by real UDP datagrams — the deployment shape the paper
// assumes (one node, one machine) instead of the in-process simulator the
// tests use. A node either hosts an application guardian (server mode) or
// drives at-most-once calls against one (client mode, -call).
//
// Two-terminal bank demo:
//
//	terminal 1:
//	  node -name branch -listen 127.0.0.1:9101 -host bank
//	terminal 2:
//	  node -name teller -peers branch=127.0.0.1:9101 \
//	       -call branch/2/2 \
//	       -op 'open alice' -op 'open bob' \
//	       -op 'deposit alice 1000' -op 'transfer alice bob 250' \
//	       -op 'balance alice' -op 'balance bob'
//
// The server prints its bound address and the global names of the hosted
// guardian's ports ("port <type> <node/guardian/port>"); the -call value
// is the amo port name printed in terminal 1. The -loss/-dup/-delay flags
// wrap the socket in the same fault model the simulator uses, so the §3.5
// at-most-once machinery can be watched surviving real packet abuse.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/airline"
	"repro/internal/amo"
	"repro/internal/bank"
	"repro/internal/guardian"
	"repro/internal/nameserv"
	"repro/internal/transport"
)

// multiFlag collects repeated -op occurrences.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

type options struct {
	name   string
	listen string
	peers  map[transport.Addr]string
	host   string

	// transport shape
	mtu  int
	pace time.Duration
	recv int

	// injected faults (both directions are outbound somewhere: run both
	// processes with the same flags to fault the full round trip)
	loss, dup     float64
	delay, jitter time.Duration
	seed          int64

	// airline host parameters
	flight, capacity int64
	org              string

	// client mode
	call    string
	ops     multiFlag
	timeout time.Duration
	retries int
}

func parseFlags(args []string, stderr io.Writer) (*options, error) {
	o := &options{peers: make(map[transport.Addr]string)}
	fs := flag.NewFlagSet("node", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&o.name, "name", "", "this node's name (required)")
	fs.StringVar(&o.listen, "listen", "127.0.0.1:0", "UDP address to bind")
	peers := fs.String("peers", "", "comma-separated name=host:port routing entries")
	fs.StringVar(&o.host, "host", "", "guardian to host: bank, airline or nameserv (server mode)")
	fs.IntVar(&o.mtu, "mtu", 0, "maximum datagram size (0 = transport default)")
	fs.DurationVar(&o.pace, "pace", 0, "minimum gap between datagrams to one peer")
	fs.IntVar(&o.recv, "recv", 0, "receive workers per socket (0 = default)")
	fs.Float64Var(&o.loss, "loss", 0, "injected outbound loss rate [0,1]")
	fs.Float64Var(&o.dup, "dup", 0, "injected outbound duplication rate [0,1]")
	fs.DurationVar(&o.delay, "delay", 0, "injected minimum outbound delay")
	fs.DurationVar(&o.jitter, "jitter", 0, "injected additional random delay")
	fs.Int64Var(&o.seed, "seed", 1, "fault injection seed")
	fs.Int64Var(&o.flight, "flight", 12, "airline: flight number")
	fs.Int64Var(&o.capacity, "capacity", 100, "airline: seat capacity")
	fs.StringVar(&o.org, "org", airline.OrgMonitor, "airline: internal organization")
	fs.StringVar(&o.call, "call", "", "client mode: target port as node/guardian/port")
	fs.Var(&o.ops, "op", "client mode: operation to run, e.g. 'transfer alice bob 25' (repeatable)")
	fs.DurationVar(&o.timeout, "timeout", 250*time.Millisecond, "client: per-attempt reply timeout")
	fs.IntVar(&o.retries, "retries", 40, "client: retransmissions before giving up")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.name == "" {
		return nil, fmt.Errorf("node: -name is required")
	}
	if (o.host == "") == (o.call == "") {
		return nil, fmt.Errorf("node: exactly one of -host (server) or -call (client) is required")
	}
	for _, entry := range strings.Split(*peers, ",") {
		if entry = strings.TrimSpace(entry); entry == "" {
			continue
		}
		name, addr, ok := strings.Cut(entry, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("node: bad -peers entry %q: want name=host:port", entry)
		}
		o.peers[transport.Addr(name)] = addr
	}
	return o, nil
}

// buildWorld assembles the transport stack and an empty world around it.
func buildWorld(o *options) (*guardian.World, *transport.UDP, *transport.Wrapper, error) {
	o.peers[transport.Addr(o.name)] = o.listen
	udp, err := transport.NewUDP(transport.UDPConfig{
		Peers:       o.peers,
		MTU:         o.mtu,
		PaceMinGap:  o.pace,
		RecvWorkers: o.recv,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	var tr transport.Transport = udp
	var wrap *transport.Wrapper
	if o.loss > 0 || o.dup > 0 || o.delay > 0 || o.jitter > 0 {
		wrap = transport.Wrap(udp, transport.WrapperConfig{
			Seed:     o.seed,
			LossRate: o.loss,
			DupRate:  o.dup,
			Delay:    o.delay,
			Jitter:   o.jitter,
		})
		tr = wrap
	}
	w := guardian.NewWorld(guardian.Config{Transport: tr})
	w.MustRegister(bank.BranchDef())
	w.MustRegister(airline.FlightDef())
	w.MustRegister(nameserv.Def())
	return w, udp, wrap, nil
}

func serve(o *options, stdout io.Writer) error {
	w, udp, wrap, err := buildWorld(o)
	if err != nil {
		return err
	}
	defer w.Close()
	n, err := w.AddNode(o.name)
	if err != nil {
		return err
	}

	var def string
	var bootArgs []any
	switch o.host {
	case "bank":
		def = bank.BranchDefName
	case "airline":
		def = airline.FlightDefName
		bootArgs = []any{o.flight, o.capacity, o.org, int64(0)}
	case "nameserv":
		def = nameserv.DefName
	default:
		return fmt.Errorf("node: unknown -host %q: want bank, airline or nameserv", o.host)
	}
	created, err := n.Bootstrap(def, bootArgs...)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "listening on %s\n", udp.LocalAddr(transport.Addr(o.name)))
	var provides []*guardian.PortType
	switch o.host {
	case "bank":
		provides = bank.BranchDef().Provides
	case "airline":
		provides = airline.FlightDef().Provides
	case "nameserv":
		provides = nameserv.Def().Provides
	}
	for i, p := range created.Ports {
		label := fmt.Sprintf("port%d", i)
		if i < len(provides) {
			label = provides[i].Name()
		}
		fmt.Fprintf(stdout, "port %s %s\n", label, nameserv.FormatPort(p))
	}
	fmt.Fprintln(stdout, "ready")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Shutdown report: transport accounting, injected faults, and — for a
	// bank branch — the applies counter an exactly-once audit needs.
	if wrap != nil {
		wrap.Quiesce()
		ws := wrap.InjectedStats()
		fmt.Fprintf(stdout, "injected sent=%d lost=%d duplicated=%d delayed=%d\n",
			ws.Sent, ws.Lost, ws.Duplicated, ws.Delayed)
	}
	st := udp.Stats()
	fmt.Fprintf(stdout, "stats sent=%d delivered=%d dropped=%d bytes_sent=%d bytes_recv=%d\n",
		st.Sent, st.Delivered, st.Dropped, st.BytesSent, st.BytesRecv)
	if o.host == "bank" {
		if g, ok := n.GuardianByID(created.GuardianID); ok {
			if applies, err := bank.Applies(g); err == nil {
				fmt.Fprintf(stdout, "applies %d\n", applies)
			}
		}
	}
	return w.Close()
}

// parseOp turns "transfer alice bob 25" into a command plus typed args:
// integer-looking tokens travel as ints, everything else as strings —
// matching the positional vocabularies of the hosted guardians' amo ports.
func parseOp(op string) (string, []any, error) {
	fields := strings.Fields(op)
	if len(fields) == 0 {
		return "", nil, fmt.Errorf("node: empty -op")
	}
	args := make([]any, 0, len(fields)-1)
	for _, f := range fields[1:] {
		if n, err := strconv.ParseInt(f, 10, 64); err == nil {
			args = append(args, n)
		} else {
			args = append(args, f)
		}
	}
	return fields[0], args, nil
}

func client(o *options, stdout io.Writer) error {
	target, err := nameserv.ParsePort(o.call)
	if err != nil {
		return err
	}
	if _, ok := o.peers[transport.Addr(target.Node)]; !ok {
		return fmt.Errorf("node: no -peers route to target node %q", target.Node)
	}
	w, _, wrap, err := buildWorld(o)
	if err != nil {
		return err
	}
	defer w.Close()
	n, err := w.AddNode(o.name)
	if err != nil {
		return err
	}
	_, proc, err := n.NewDriver("cli")
	if err != nil {
		return err
	}
	caller, err := amo.NewCaller(proc, amo.CallerOptions{
		Timeout: o.timeout,
		Retries: o.retries,
		Backoff: amo.BackoffPolicy{Base: o.timeout / 10, Jitter: 0.5},
	})
	if err != nil {
		return err
	}

	for _, op := range o.ops {
		cmd, args, err := parseOp(op)
		if err != nil {
			return err
		}
		r, err := caller.Call(target, cmd, args...)
		if err != nil {
			return fmt.Errorf("node: op %q: %w", op, err)
		}
		line := r.Command
		for _, a := range r.Args {
			line += fmt.Sprintf(" %v", a)
		}
		fmt.Fprintf(stdout, "op %q: %s\n", op, line)
	}
	if wrap != nil {
		wrap.Quiesce()
		ws := wrap.InjectedStats()
		fmt.Fprintf(stdout, "injected sent=%d lost=%d duplicated=%d delayed=%d\n",
			ws.Sent, ws.Lost, ws.Duplicated, ws.Delayed)
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) int {
	o, err := parseFlags(args, stderr)
	if err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		fmt.Fprintln(stderr, err)
		return 2
	}
	if o.host != "" {
		err = serve(o, stdout)
	} else {
		err = client(o, stdout)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }
