package main

// The acceptance test for the consistent-hash ring tentpole: a 3-shard
// bank — every shard, the name service, and the 2PC coordinator its own
// OS process over real UDP — takes live traffic, then a fourth shard
// joins and the live rebalance is killed at every handoff window by an
// injected -crash exit:
//
//	before-cut      the source is about to durably seal the moving keys;
//	                nothing has shipped. The re-driven pull must restart
//	                the handoff from scratch.
//	after-cut       the keys are sealed at the source but the install
//	                never happened. The re-driven pull must re-offer the
//	                same cut, not lose the sealed accounts.
//	before-install  the destination dies with the snapshot in hand but
//	                nothing durable. Re-pull must re-ship.
//	after-install   the destination durably owns the keys but the ack and
//	                the epoch flip died with it. Re-driving must converge
//	                without applying the moved ops twice.
//
// After each kill the dead process restarts from its WAL and a second
// rebalance attempt must commit the next epoch. The audit then reads
// every account through the ring (exactly-once: balances unchanged by
// the crash) and sums the per-shard shutdown totals (conservation: no
// account lost or duplicated by the interrupted migration).

import (
	"fmt"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// runNode runs the binary to completion as a one-shot client process.
func runNode(bin string, args ...string) (string, error) {
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

var shardLine = regexp.MustCompile(`shard member=(\S+) epoch=(\d+) accounts=(\d+) total=(-?\d+)`)

func TestRingHandoffCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildNode(t)
	for _, window := range []string{"before-cut", "after-cut", "before-install", "after-install"} {
		t.Run(window, func(t *testing.T) {
			runRingHandoffRound(t, bin, window)
		})
	}
}

func runRingHandoffRound(t *testing.T, bin, window string) {
	data := t.TempDir()
	names := []string{"ns", "txc", "s1", "s2", "s3", "s4"}
	addrs := freeUDPAddrs(t, len(names))
	var entries []string
	for i, nm := range names {
		entries = append(entries, nm+"="+addrs[i])
	}
	peers := strings.Join(entries, ",")

	ns := startNode(t, bin, "-name", "ns", "-listen", addrs[0], "-peers", peers, "-host", "nameserv")
	defer ns.kill()
	nsPort := ns.ports["name_service_port"]
	if nsPort == "" {
		t.Fatalf("name service printed no port: %v", ns.ports)
	}
	txc := startNode(t, bin, "-name", "txc", "-listen", addrs[1], "-peers", peers,
		"-host", "txncoord", "-data", data)
	defer txc.kill()
	coordPort := txc.ports["tpc_coordinator_port"]
	if coordPort == "" {
		t.Fatalf("coordinator printed no port: %v", txc.ports)
	}

	// shardArgs builds one shard server's argv; crash is the injected
	// handoff crash spec ("" for none).
	shardArgs := func(i int, crash string) []string {
		name := names[i]
		args := []string{"-name", name, "-listen", addrs[i], "-peers", peers,
			"-host", "bank", "-shard", name, "-data", data, "-cpevery", "4"}
		if crash != "" {
			args = append(args, "-crash", crash+":1")
		}
		return args
	}
	// Cut windows fire on a handoff source (an original shard); install
	// windows fire on the destination (the joiner).
	victim := 2 // s1
	if strings.Contains(window, "install") {
		victim = 5 // s4
	}

	shards := make(map[string]*nodeProc)
	memberSpec := func(p *nodeProc, name string) string {
		native, amo := p.ports["bank_branch_port"], p.ports["amo_req_port"]
		if native == "" || amo == "" {
			t.Fatalf("shard %s banner incomplete: %v", name, p.ports)
		}
		return fmt.Sprintf("%s=%s,%s", name, native, amo)
	}
	var specs []string
	for i := 2; i <= 4; i++ {
		crash := ""
		if i == victim {
			crash = window
		}
		p := startNode(t, bin, shardArgs(i, crash)...)
		shards[names[i]] = p
		specs = append(specs, memberSpec(p, names[i]))
	}
	defer func() {
		for _, p := range shards {
			p.kill()
		}
	}()

	// ctl runs one ring client process; returns its combined output.
	ctl := func(name string, extra ...string) (string, error) {
		args := []string{"-name", name, "-peers", peers, "-ns", nsPort,
			"-ring", "accounts", "-coord", coordPort,
			"-timeout", "200ms", "-retries", "40"}
		out, err := runNode(bin, append(args, extra...)...)
		return out, err
	}

	out, err := ctl("boot", "-ringboot", strings.Join(specs, ";"))
	if err != nil || !strings.Contains(out, "bootstrapped with 3 members") {
		t.Fatalf("ring bootstrap: %v\n%s", err, out)
	}

	// Live traffic before the join: six accounts spread across the ring,
	// plus transfers (cross-shard pairs ride 2PC through txc).
	var setup []string
	total := int64(0)
	expect := map[string]int64{}
	for i := 1; i <= 6; i++ {
		a := fmt.Sprintf("acct%d", i)
		setup = append(setup, "-op", "open "+a, "-op", fmt.Sprintf("deposit %s %d", a, 100*i))
		expect[a] = int64(100 * i)
		total += int64(100 * i)
	}
	setup = append(setup,
		"-op", "transfer acct1 acct4 30",
		"-op", "transfer acct2 acct5 10")
	expect["acct1"] -= 30
	expect["acct4"] += 30
	expect["acct2"] -= 10
	expect["acct5"] += 10
	out, err = ctl("teller", setup...)
	if err != nil || strings.Count(out, ": ok") != 12+2 {
		t.Fatalf("setup traffic: %v\n%s", err, out)
	}

	// Start the joiner (the install-window victim carries its crash spec
	// from shardArgs above) and drive the rebalance into the crash.
	joiner := startNode(t, bin, shardArgs(5, map[bool]string{true: window}[victim == 5])...)
	shards["s4"] = joiner
	joinSpec := memberSpec(joiner, "s4")

	out, _ = ctl("join1", "-ringjoin", joinSpec)
	crashed := shards[names[victim]]
	if code := crashed.exitCode(30 * time.Second); code != 137 {
		t.Fatalf("%s exit code %d, want 137 (injected crash at %s)\njoin output:\n%s",
			names[victim], code, window, out)
	}

	// The dead shard restarts from its WAL — no crash spec this time —
	// and a second attempt must finish the interrupted epoch flip.
	shards[names[victim]] = startNode(t, bin, shardArgs(victim, "")...)
	out, err = ctl("join2", "-ringjoin", joinSpec)
	if err != nil || !strings.Contains(out, "epoch 2 committed (join s4)") {
		t.Fatalf("re-driven join: %v\n%s", err, out)
	}

	// Exactly-once: every balance read through the rebalanced ring must
	// equal the pre-crash ledger, and a post-recovery deposit must land.
	var audit []string
	for i := 1; i <= 6; i++ {
		audit = append(audit, "-op", fmt.Sprintf("balance acct%d", i))
	}
	audit = append(audit, "-op", "deposit acct1 5", "-op", "balance acct1")
	expect["acct1"] += 5
	total += 5
	out, err = ctl("audit", audit...)
	if err != nil {
		t.Fatalf("audit: %v\n%s", err, out)
	}
	for i := 1; i <= 6; i++ {
		a := fmt.Sprintf("acct%d", i)
		want := expect[a]
		if i == 1 {
			want -= 5 // first balance read precedes the extra deposit
		}
		if !strings.Contains(out, fmt.Sprintf("op \"balance %s\": balance_is %d", a, want)) {
			t.Errorf("balance %s != %d after %s recovery:\n%s", a, want, window, out)
		}
	}
	if !strings.Contains(out, fmt.Sprintf("op \"balance acct1\": balance_is %d", expect["acct1"])) {
		t.Errorf("post-recovery deposit lost:\n%s", out)
	}

	// Conservation: the per-shard shutdown snapshots must cover every
	// account exactly once and sum to the money put in.
	accounts, sum := 0, int64(0)
	for _, name := range []string{"s1", "s2", "s3", "s4"} {
		tail := shards[name].interrupt()
		g := shardLine.FindStringSubmatch(tail)
		if g == nil {
			t.Fatalf("%s printed no shard line:\n%s", name, tail)
		}
		if g[2] != "2" {
			t.Errorf("%s still serves epoch %s, want 2", name, g[2])
		}
		n, _ := strconv.Atoi(g[3])
		accounts += n
		v, _ := strconv.ParseInt(g[4], 10, 64)
		sum += v
	}
	if accounts != 6 {
		t.Errorf("shards hold %d accounts, want 6 (lost or duplicated by the %s handoff)", accounts, window)
	}
	if sum != total {
		t.Errorf("shards hold %d total, want %d (conservation broken by the %s handoff)", sum, total, window)
	}
	t.Logf("window %s: join re-driven, %d accounts, total %d", window, accounts, sum)
}
