// Command dst runs the deterministic simulation harness: a seeded fault
// schedule (drop/dup/reorder/partition/crash-restart, composite partition
// shapes, crash waves, storage-fault bursts) against the bank or airline
// workload — single-group or a sharded many-guardian topology — with
// invariant checkers for conservation of money, exactly-once application,
// no-overbooking, and recovery-equals-replay (see DESIGN.md §7, §13).
//
// Usage:
//
//	dst -seed 42                          # one bank run under the mixed profile
//	dst -seeds 100 -par 4                 # parallel sweep of seeds 1..100
//	dst -profile combined -shards 67 -replfactor 3 -cpevery 4  # 200-node run
//	dst -profile combined -ring 4,2,1     # consistent-hash ring, live join/leave rebalancing
//	dst -bug disable-dedup                # inject the control-arm bug
//	dst -reprofile repro.txt              # write failing repro lines to a file
//	dst -profiles                         # list fault profiles
//
// Exits 1 if any seed violates an invariant; failing runs are shrunk to a
// minimal fault schedule and printed with their reproduction line. Every
// flag a printed repro line mentions is accepted here, so a line copied
// from CI replays locally verbatim.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dst"
	"repro/internal/durable"
)

// parseRing turns "shards,joins,leaves" into a ring topology — the same
// triple Repro() prints for ring runs.
func parseRing(s string) (*dst.RingTopology, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return nil, fmt.Errorf("-ring wants shards,joins,leaves, got %q", s)
	}
	var topo dst.RingTopology
	for i, dst := range []*int{&topo.Shards, &topo.Joins, &topo.Leaves} {
		v, err := strconv.Atoi(parts[i])
		if err != nil {
			return nil, fmt.Errorf("bad ring count %q: %v", parts[i], err)
		}
		*dst = v
	}
	return &topo, nil
}

// parseStorage turns "syncfail,shortwrite,corrupttail" into a fault
// config — the same triple Repro() prints.
func parseStorage(s string) (*durable.WrapperConfig, error) {
	rates := strings.Split(s, ",")
	if len(rates) != 3 {
		return nil, fmt.Errorf("-storage wants syncfail,shortwrite,corrupttail, got %q", s)
	}
	var cfg durable.WrapperConfig
	for i, dst := range []*float64{&cfg.SyncFailRate, &cfg.ShortWriteRate, &cfg.CorruptTailRate} {
		v, err := strconv.ParseFloat(rates[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad storage rate %q: %v", rates[i], err)
		}
		*dst = v
	}
	return &cfg, nil
}

func main() {
	var (
		seed       = flag.Int64("seed", 1, "first (or only) seed")
		seeds      = flag.Int("seeds", 1, "number of consecutive seeds to sweep")
		par        = flag.Int("par", 1, "seeds run in parallel (each fully isolated)")
		workload   = flag.String("workload", "bank", "workload: bank or airline")
		profile    = flag.String("profile", "", "fault profile (default mixed; see -profiles)")
		horizon    = flag.Duration("horizon", 0, "override the profile's fault-placement window")
		clients    = flag.Int("clients", 0, "concurrent clients (default 3)")
		ops        = flag.Int("ops", 0, "operations per client (default 12)")
		bug        = flag.String("bug", "", "inject a known bug (disable-dedup) as a harness check")
		repl       = flag.Bool("repl", false, "run the replicated-guardian workload")
		shards     = flag.Int("shards", 0, "sharded topology: number of independent guardian groups")
		ringTopo   = flag.String("ring", "", "consistent-hash ring with live rebalancing: shards,joins,leaves")
		replfactor = flag.Int("replfactor", 0, "replicas per shard (0/1 plain, odd >=3 replicated)")
		cpevery    = flag.Int("cpevery", 0, "checkpoint the branch every N mutations")
		storage    = flag.String("storage", "", "storage fault rates: syncfail,shortwrite,corrupttail")
		reprofile  = flag.String("reprofile", "", "write failing repro lines to this file (CI artifact)")
		list       = flag.Bool("profiles", false, "list fault profiles and exit")
		verbose    = flag.Bool("v", false, "print every report, not only failures")
	)
	flag.Parse()

	if *list {
		fmt.Println("Fault profiles:")
		for _, p := range dst.Profiles() {
			fmt.Printf("  %-12s loss=%.2f dup=%.2f reorder=%.2f crashes=%d partitions=%d islands=%d waves=%d bursts=%d\n",
				p.Name, p.Loss, p.Dup, p.Reorder, p.Crashes, p.Partitions,
				p.Islands, p.Waves, p.StorageBursts)
		}
		return
	}

	opts := dst.Options{
		Workload:          *workload,
		Clients:           *clients,
		OpsPerClient:      *ops,
		Bug:               *bug,
		ReplicationFaults: *repl,
		CheckpointEvery:   *cpevery,
	}
	if *profile != "" {
		p, err := dst.ProfileByName(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts.Profile = p
	}
	if *horizon > 0 {
		opts.Profile.Horizon = *horizon
	}
	if *shards > 0 {
		opts.Topology = &dst.Topology{Shards: *shards, ReplFactor: *replfactor}
	}
	if *ringTopo != "" {
		topo, err := parseRing(*ringTopo)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts.Ring = topo
	}
	if *storage != "" {
		cfg, err := parseStorage(*storage)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts.StorageFaults = cfg
	}

	res := dst.Sweep(dst.SweepOptions{
		Opts:        opts,
		StartSeed:   *seed,
		Count:       *seeds,
		Parallelism: *par,
		Shrink:      true,
		Progress: func(done, total int, rep *dst.Report) {
			if rep.Failed() {
				fmt.Printf("[%d/%d] seed %-6d FAIL\n", done, total, rep.Seed)
			} else if *verbose {
				fmt.Print(rep.String())
			} else {
				fmt.Printf("[%d/%d] seed %-6d %-8s %-12s PASS (%d/%d ops acked, %d nodes, %v)\n",
					done, total, rep.Seed, opts.Workload, rep.Profile,
					rep.OpsAcked, rep.OpsIssued, rep.Nodes, rep.RealElapsed.Round(time.Millisecond))
			}
		},
	})

	fmt.Print(res.String())
	if !res.Failed() {
		return
	}
	if *reprofile != "" {
		lines := strings.Join(res.ReproLines(), "\n") + "\n"
		if err := os.WriteFile(*reprofile, []byte(lines), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *reprofile, err)
		} else {
			fmt.Fprintf(os.Stderr, "wrote %d repro line(s) to %s\n", len(res.ReproLines()), *reprofile)
		}
	}
	fmt.Fprintf(os.Stderr, "dst: %d of %d seeds violated an invariant\n", len(res.Failures()), *seeds)
	os.Exit(1)
}
