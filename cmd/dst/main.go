// Command dst runs the deterministic simulation harness: a seeded fault
// schedule (drop/dup/reorder/partition/crash-restart) against the bank or
// airline workload, with invariant checkers for conservation of money,
// exactly-once application, no-overbooking, and recovery-equals-replay
// (see DESIGN.md §7).
//
// Usage:
//
//	dst -seed 42                          # one bank run under the mixed profile
//	dst -seeds 100 -workload airline      # sweep seeds 1..100
//	dst -profile crashy -clients 5        # pick a fault profile
//	dst -bug disable-dedup                # inject the control-arm bug
//	dst -profiles                         # list fault profiles
//
// Exits 1 if any run violates an invariant; failing runs are shrunk to a
// minimal fault schedule and printed with their reproduction line.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dst"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "first (or only) seed")
		seeds    = flag.Int("seeds", 1, "number of consecutive seeds to sweep")
		workload = flag.String("workload", "bank", "workload: bank or airline")
		profile  = flag.String("profile", "", "fault profile (default mixed; see -profiles)")
		clients  = flag.Int("clients", 0, "concurrent clients (default 3)")
		ops      = flag.Int("ops", 0, "operations per client (default 12)")
		bug      = flag.String("bug", "", "inject a known bug (disable-dedup) as a harness check")
		list     = flag.Bool("profiles", false, "list fault profiles and exit")
		verbose  = flag.Bool("v", false, "print every report, not only failures")
	)
	flag.Parse()

	if *list {
		fmt.Println("Fault profiles:")
		for _, p := range dst.Profiles() {
			fmt.Printf("  %-12s loss=%.2f dup=%.2f reorder=%.2f crashes=%d partitions=%d\n",
				p.Name, p.Loss, p.Dup, p.Reorder, p.Crashes, p.Partitions)
		}
		return
	}

	opts := dst.Options{
		Workload:     *workload,
		Clients:      *clients,
		OpsPerClient: *ops,
		Bug:          *bug,
	}
	if *profile != "" {
		p, err := dst.ProfileByName(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts.Profile = p
	}

	failed := 0
	for s := *seed; s < *seed+int64(*seeds); s++ {
		opts.Seed = s
		rep := dst.Run(opts)
		if rep.Failed() {
			failed++
			rep = dst.Shrink(opts, rep, 0)
			fmt.Print(rep.String())
		} else if *verbose {
			fmt.Print(rep.String())
		} else {
			fmt.Printf("seed %-6d %-8s %-12s PASS (%d/%d ops acked, %d retries)\n",
				s, opts.Workload, rep.Profile, rep.OpsAcked, rep.OpsIssued, rep.Retries)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "dst: %d of %d seeds violated an invariant\n", failed, *seeds)
		os.Exit(1)
	}
}
