// Command guardianlint checks the repository against the linguistic
// invariants of Liskov's guardian model (SOSP 1979) that Go will not
// enforce for us: no object addresses in messages (transmissible), no
// storage shared across guardians (confinement), complete and consistent
// encode/decode pairs for every external rep (xreppair), and receive
// statements that own a failure or timeout arm (recvhygiene).
//
// Two modes share the passes:
//
//	guardianlint [packages]      standalone: analyze the packages (default
//	                             ./...) in one process, including the
//	                             whole-program xreppair directions and a
//	                             staleness report for //lint:allow
//	                             directives; exit 1 on findings.
//
//	go vet -vettool=$(which guardianlint) ./...
//	                             vet driver: cmd/go invokes the binary per
//	                             package with a config file; diagnostics
//	                             integrate with vet's output and cache.
//
// Findings are suppressed by a `//lint:allow <pass> <reason>` comment on
// the flagged line or the line above; the reason is mandatory and unused
// directives are themselves reported (standalone mode only, which sees
// every direction of every pass).
package main

import (
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/passes/confinement"
	"repro/internal/analysis/passes/recvhygiene"
	"repro/internal/analysis/passes/transmissible"
	"repro/internal/analysis/passes/xreppair"
	"repro/internal/analysis/unit"
)

var analyzers = []*analysis.Analyzer{
	transmissible.Analyzer,
	confinement.Analyzer,
	xreppair.Analyzer,
	recvhygiene.Analyzer,
}

func main() {
	args := os.Args[1:]

	// The go vet -vettool protocol probes with flag queries, then hands a
	// single JSON config file per package.
	if len(args) == 1 {
		switch {
		case args[0] == "-flags":
			unit.PrintFlags(os.Stdout)
			return
		case strings.HasPrefix(args[0], "-V"):
			unit.PrintVersion(os.Stdout, "guardianlint")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(unit.Run(args[0], analyzers))
		}
	}
	for _, a := range args {
		if a == "-h" || a == "-help" || a == "--help" {
			usage()
			return
		}
	}
	os.Exit(standalone(args))
}

func usage() {
	fmt.Println("usage: guardianlint [packages]")
	fmt.Println()
	fmt.Println("Analyzes the given Go packages (default ./...) against the guardian")
	fmt.Println("model's invariants. Also usable as go vet -vettool=guardianlint.")
	fmt.Println()
	fmt.Println("Passes:")
	for _, a := range analyzers {
		fmt.Printf("  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("Suppress a finding with `//lint:allow <pass> <reason>` on the flagged")
	fmt.Println("line or the line above it.")
}

// standalone analyzes patterns in one process: every target package through
// every pass, then the whole-program xreppair directions, then the allow
// staleness report.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, order, err := load.List(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "guardianlint: %v\n", err)
		return 1
	}
	for _, id := range order {
		if p := pkgs[id]; p.Error != nil && !p.DepOnly {
			fmt.Fprintf(os.Stderr, "guardianlint: %s: %s\n", id, p.Error.Err)
			return 1
		}
	}

	// One file set across all units so whole-program positions resolve; one
	// export map since go list already built every dependency.
	fset := token.NewFileSet()
	exports := load.PackageFiles(pkgs)
	prog := analysis.NewProgram()
	var findings []unit.Finding
	var allows []*analysis.Allow
	for _, p := range load.Targets(pkgs, order) {
		u, err := load.CheckListed(fset, p, exports)
		if err != nil {
			fmt.Fprintf(os.Stderr, "guardianlint: %v\n", err)
			return 1
		}
		ua := analysis.CollectAllows(fset, u.Files)
		findings = append(findings, unit.Analyze(u, analyzers, prog, ua)...)
		allows = append(allows, ua...)
	}

	// Whole-program directions, filtered through the full allow inventory.
	for _, d := range xreppair.Finish(prog) {
		suppressed := false
		for _, al := range allows {
			if al.Suppresses(fset, xreppair.Analyzer.Name, d.Pos) {
				al.Used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			findings = append(findings, unit.Finding{Diagnostic: d, Pass: xreppair.Analyzer.Name})
		}
	}

	// Allow hygiene: a used directive must say why; an unused one is stale.
	findings = append(findings, unit.ReasonlessAllows(allows)...)
	for _, al := range allows {
		if !al.Used {
			findings = append(findings, unit.Finding{
				Diagnostic: analysis.Diagnostic{Pos: al.Pos,
					Message: fmt.Sprintf("//lint:allow %s suppresses nothing — remove the stale directive", al.Pass)},
				Pass: "lint",
			})
		}
	}

	sort.SliceStable(findings, func(i, j int) bool {
		pi, pj := fset.Position(findings[i].Pos), fset.Position(findings[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	for _, f := range findings {
		fmt.Printf("%s: %s [%s]\n", fset.Position(f.Pos), f.Message, f.Pass)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
