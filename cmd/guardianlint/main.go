// Command guardianlint checks the repository against the linguistic
// invariants of Liskov's guardian model (SOSP 1979) that Go will not
// enforce for us: no object addresses in messages (transmissible), no
// storage shared across guardians (confinement), complete and consistent
// encode/decode pairs for every external rep (xreppair), receive
// statements that own a failure or timeout arm (recvhygiene), no blocking
// operations or ordering cycles under held mutexes (lockorder), replies
// dominated by the Sync that makes the acknowledged mutation durable
// (ackorder), and no internal routing vocabulary escaping to clients
// (replyleak).
//
// Two modes share the passes:
//
//	guardianlint [-json] [-allowlist] [packages]
//	                             standalone: analyze the packages (default
//	                             ./...) in one process, including the
//	                             whole-program directions (xreppair's
//	                             registry check, lockorder/ackorder's
//	                             cross-package composition) and a staleness
//	                             report for //lint:allow directives; exit 1
//	                             on findings.
//
//	go vet -vettool=$(which guardianlint) ./...
//	                             vet driver: cmd/go invokes the binary per
//	                             package with a config file; diagnostics
//	                             integrate with vet's output and cache. The
//	                             whole-program directions degrade to their
//	                             per-package scope.
//
// -json replaces the human output with machine-readable diagnostics
// (file/line/col/pass/message/suppressed), suppressed findings included so
// CI can annotate what the allow inventory is holding down. -allowlist
// prints every //lint:allow directive with its justification and whether
// it is active, instead of findings.
//
// Findings are suppressed by a `//lint:allow <pass> <reason>` comment on
// the flagged line or the line above; the reason is mandatory and unused
// directives are themselves reported (standalone mode only, which sees
// every direction of every pass).
package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/passes/ackorder"
	"repro/internal/analysis/passes/confinement"
	"repro/internal/analysis/passes/lockorder"
	"repro/internal/analysis/passes/recvhygiene"
	"repro/internal/analysis/passes/replyleak"
	"repro/internal/analysis/passes/transmissible"
	"repro/internal/analysis/passes/xreppair"
	"repro/internal/analysis/unit"
)

var analyzers = []*analysis.Analyzer{
	transmissible.Analyzer,
	confinement.Analyzer,
	xreppair.Analyzer,
	recvhygiene.Analyzer,
	lockorder.Analyzer,
	ackorder.Analyzer,
	replyleak.Analyzer,
}

func main() {
	args := os.Args[1:]

	// The go vet -vettool protocol probes with flag queries, then hands a
	// single JSON config file per package.
	if len(args) == 1 {
		switch {
		case args[0] == "-flags":
			unit.PrintFlags(os.Stdout)
			return
		case strings.HasPrefix(args[0], "-V"):
			unit.PrintVersion(os.Stdout, "guardianlint")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(unit.Run(args[0], analyzers))
		}
	}

	var opts options
	var patterns []string
	for _, a := range args {
		switch a {
		case "-h", "-help", "--help":
			usage()
			return
		case "-json", "--json":
			opts.jsonOut = true
		case "-allowlist", "--allowlist":
			opts.allowlist = true
		default:
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(os.Stderr, "guardianlint: unknown flag %s\n", a)
				os.Exit(1)
			}
			patterns = append(patterns, a)
		}
	}
	os.Exit(standalone(patterns, opts))
}

// options are the standalone mode's output switches.
type options struct {
	jsonOut   bool
	allowlist bool
}

func usage() {
	fmt.Println("usage: guardianlint [-json] [-allowlist] [packages]")
	fmt.Println()
	fmt.Println("Analyzes the given Go packages (default ./...) against the guardian")
	fmt.Println("model's invariants. Also usable as go vet -vettool=guardianlint.")
	fmt.Println()
	fmt.Println("  -json       machine-readable diagnostics, suppressed findings included")
	fmt.Println("  -allowlist  report every //lint:allow directive with its justification")
	fmt.Println()
	fmt.Println("Passes:")
	for _, a := range analyzers {
		fmt.Printf("  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("Suppress a finding with `//lint:allow <pass> <reason>` on the flagged")
	fmt.Println("line or the line above it.")
}

// jsonFinding is one -json record.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Pass       string `json:"pass"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// standalone analyzes patterns in one process: every target package through
// every pass, then each pass's whole-program Finish direction, then the
// allow staleness report.
func standalone(patterns []string, opts options) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, order, err := load.List(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "guardianlint: %v\n", err)
		return 1
	}
	for _, id := range order {
		if p := pkgs[id]; p.Error != nil && !p.DepOnly {
			fmt.Fprintf(os.Stderr, "guardianlint: %s: %s\n", id, p.Error.Err)
			return 1
		}
	}

	// One file set across all units so whole-program positions resolve; one
	// export map since go list already built every dependency.
	fset := token.NewFileSet()
	exports := load.PackageFiles(pkgs)
	prog := analysis.NewProgram()
	var findings, suppressed []unit.Finding
	var allows []*analysis.Allow
	for _, p := range load.Targets(pkgs, order) {
		u, err := load.CheckListed(fset, p, exports)
		if err != nil {
			fmt.Fprintf(os.Stderr, "guardianlint: %v\n", err)
			return 1
		}
		ua := analysis.CollectAllows(fset, u.Files)
		out, sup := unit.Analyze(u, analyzers, prog, ua)
		findings = append(findings, out...)
		suppressed = append(suppressed, sup...)
		allows = append(allows, ua...)
	}

	// Whole-program directions, filtered through the full allow inventory.
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		for _, d := range a.Finish(prog) {
			f := unit.Finding{Diagnostic: d, Pass: a.Name}
			wasAllowed := false
			for _, al := range allows {
				if al.Suppresses(fset, a.Name, d.Pos) {
					al.Used = true
					wasAllowed = true
					break
				}
			}
			if wasAllowed {
				suppressed = append(suppressed, f)
			} else {
				findings = append(findings, f)
			}
		}
	}

	if opts.allowlist {
		return reportAllows(fset, allows, opts)
	}

	// Allow hygiene: a used directive must say why; an unused one is stale.
	findings = append(findings, unit.ReasonlessAllows(allows)...)
	for _, al := range allows {
		if !al.Used {
			findings = append(findings, unit.Finding{
				Diagnostic: analysis.Diagnostic{Pos: al.Pos,
					Message: fmt.Sprintf("//lint:allow %s suppresses nothing — remove the stale directive", al.Pass)},
				Pass: "lint",
			})
		}
	}

	byPos := func(fs []unit.Finding) func(i, j int) bool {
		return func(i, j int) bool {
			pi, pj := fset.Position(fs[i].Pos), fset.Position(fs[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return pi.Column < pj.Column
		}
	}
	sort.SliceStable(findings, byPos(findings))
	sort.SliceStable(suppressed, byPos(suppressed))

	if opts.jsonOut {
		recs := make([]jsonFinding, 0, len(findings)+len(suppressed))
		add := func(fs []unit.Finding, sup bool) {
			for _, f := range fs {
				p := fset.Position(f.Pos)
				recs = append(recs, jsonFinding{
					File: p.Filename, Line: p.Line, Col: p.Column,
					Pass: f.Pass, Message: f.Message, Suppressed: sup,
				})
			}
		}
		add(findings, false)
		add(suppressed, true)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			fmt.Fprintf(os.Stderr, "guardianlint: %v\n", err)
			return 1
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s: %s [%s]\n", fset.Position(f.Pos), f.Message, f.Pass)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// reportAllows prints the suppression inventory: every directive, its
// justification, and whether anything still hides behind it.
func reportAllows(fset *token.FileSet, allows []*analysis.Allow, opts options) int {
	sort.SliceStable(allows, func(i, j int) bool {
		pi, pj := fset.Position(allows[i].Pos), fset.Position(allows[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	if opts.jsonOut {
		type rec struct {
			File   string `json:"file"`
			Line   int    `json:"line"`
			Pass   string `json:"pass"`
			Reason string `json:"reason"`
			Active bool   `json:"active"`
		}
		recs := make([]rec, 0, len(allows))
		for _, al := range allows {
			p := fset.Position(al.Pos)
			recs = append(recs, rec{File: p.Filename, Line: p.Line, Pass: al.Pass, Reason: al.Reason, Active: al.Used})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			fmt.Fprintf(os.Stderr, "guardianlint: %v\n", err)
			return 1
		}
		return 0
	}
	for _, al := range allows {
		p := fset.Position(al.Pos)
		state := "active"
		if !al.Used {
			state = "stale"
		}
		reason := al.Reason
		if reason == "" {
			reason = "(no justification)"
		}
		fmt.Printf("%s:%d: allow %s [%s] — %s\n", p.Filename, p.Line, al.Pass, state, reason)
	}
	fmt.Printf("%d suppression(s)\n", len(allows))
	return 0
}
