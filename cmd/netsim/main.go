// Command netsim exercises the network substrate on its own: it pushes a
// stream of datagrams through a configurable fault model and prints the
// delivery statistics, so the assumptions under every experiment (§1.1 of
// the paper: best-effort, unordered, no shared memory) can be inspected
// directly.
//
// Usage:
//
//	netsim -packets 10000 -loss 0.1 -dup 0.01 -corrupt 0.005 -latency 1ms -jitter 4ms
package main

import (
	"flag"
	"fmt"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/vtime"
)

func main() {
	var (
		packets = flag.Int("packets", 10_000, "datagrams to send")
		loss    = flag.Float64("loss", 0.1, "loss rate")
		dup     = flag.Float64("dup", 0.01, "duplication rate")
		corrupt = flag.Float64("corrupt", 0.005, "corruption rate")
		reorder = flag.Float64("reorder", 0.2, "reorder rate")
		latency = flag.Duration("latency", time.Millisecond, "base one-way latency")
		jitter  = flag.Duration("jitter", 4*time.Millisecond, "max extra jitter")
		seed    = flag.Int64("seed", 42, "fault schedule seed")
	)
	flag.Parse()

	net := netsim.New(vtime.NewReal(), netsim.Config{
		Seed:         *seed,
		BaseLatency:  *latency,
		Jitter:       *jitter,
		LossRate:     *loss,
		DupRate:      *dup,
		CorruptRate:  *corrupt,
		ReorderRate:  *reorder,
		ReorderDelay: *jitter,
	})

	var mu sync.Mutex
	received, inOrderViolations := 0, 0
	last := -1
	net.Attach("sender", func(netsim.Addr, []byte) {})
	net.Attach("receiver", func(_ netsim.Addr, p []byte) {
		mu.Lock()
		defer mu.Unlock()
		received++
		seq := int(p[0]) | int(p[1])<<8 | int(p[2])<<16
		if seq < last {
			inOrderViolations++
		}
		last = seq
	})

	start := time.Now()
	for i := 0; i < *packets; i++ {
		payload := []byte{byte(i), byte(i >> 8), byte(i >> 16), 0xAB}
		if err := net.Send("sender", "receiver", payload); err != nil {
			fmt.Println("send error:", err)
			return
		}
	}
	net.Quiesce()
	elapsed := time.Since(start)

	st := net.Stats()
	fmt.Printf("sent       %8d datagrams in %v (%.0f/s)\n", st.Sent, elapsed.Round(time.Millisecond),
		float64(st.Sent)/elapsed.Seconds())
	fmt.Printf("delivered  %8d (%.2f%% — includes duplicates)\n", st.Delivered,
		100*float64(st.Delivered)/float64(st.Sent))
	fmt.Printf("lost       %8d (%.2f%%, configured %.2f%%)\n", st.Lost,
		100*float64(st.Lost)/float64(st.Sent), 100**loss)
	fmt.Printf("duplicated %8d\n", st.Duplicated)
	fmt.Printf("corrupted  %8d (bit flips survive to the wire layer's checksums)\n", st.Corrupted)
	fmt.Printf("reordered  %8d marked; %d arrival-order inversions observed\n", st.Reordered, inOrderViolations)
	fmt.Printf("bytes      %8d\n", st.BytesSent)
	_ = received
}
