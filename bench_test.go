// Benchmarks — one per reproduced table/figure (see DESIGN.md §3). Each
// benchmark measures the per-operation cost of the code path its
// experiment sweeps; `go run ./cmd/bench` regenerates the full tables.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/airline"
	"repro/internal/amo"
	"repro/internal/bank"
	"repro/internal/durable"
	"repro/internal/exp"
	"repro/internal/guardian"
	"repro/internal/netsim"
	"repro/internal/sendprim"
	"repro/internal/tpc"
	"repro/internal/transport"
	"repro/internal/vtime"
	"repro/internal/wire"
	"repro/internal/xrep"
)

const benchTimeout = 30 * time.Second

// --- E1 / Figure 1: flight guardian organizations ---

func benchFig1(b *testing.B, org string, dates int) {
	w := guardian.NewWorld(guardian.Config{})
	if err := airline.RegisterDefs(w); err != nil {
		b.Fatal(err)
	}
	sys, err := airline.Deploy(w, airline.SystemConfig{
		Regions:    []airline.RegionConfig{{Node: "hub", Flights: []int64{1}}},
		Capacity:   1 << 30,
		Org:        org,
		WorkCostUS: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	cli := w.MustAddNode("cli")
	port := sys.Directory[1]

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		a, err := airline.NewAgent(cli, "a")
		if err != nil {
			b.Error(err)
			return
		}
		i := 0
		for pb.Next() {
			i++
			date := fmt.Sprintf("d%02d", i%dates)
			if _, err := a.Request(port, "reserve", 1, fmt.Sprintf("p%d", i), date, benchTimeout); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkFig1OrganizationsSequential(b *testing.B) { benchFig1(b, airline.OrgSequential, 16) }
func BenchmarkFig1OrganizationsSerializer(b *testing.B) { benchFig1(b, airline.OrgSerializer, 16) }
func BenchmarkFig1OrganizationsMonitor(b *testing.B)    { benchFig1(b, airline.OrgMonitor, 16) }
func BenchmarkFig1SingleDateContention(b *testing.B)    { benchFig1(b, airline.OrgMonitor, 1) }

// --- E2 / Figure 2: central vs regional ---

func benchFig2(b *testing.B, layout string) {
	w := guardian.NewWorld(guardian.Config{
		Net: netsim.Config{BaseLatency: 200 * time.Microsecond},
	})
	if err := airline.RegisterDefs(w); err != nil {
		b.Fatal(err)
	}
	cfg := airline.SystemConfig{Capacity: 1 << 30, Org: airline.OrgMonitor}
	switch layout {
	case "central":
		cfg.Regions = []airline.RegionConfig{{Node: "central", Flights: []int64{1, 2, 3, 4}}}
	case "regional":
		cfg.Regions = []airline.RegionConfig{
			{Node: "r0", Flights: []int64{1, 2}},
			{Node: "r1", Flights: []int64{3, 4}},
		}
	case "relay":
		cfg.RelayReplies = true
		cfg.Regions = []airline.RegionConfig{
			{Node: "r0", Flights: []int64{1, 2}},
			{Node: "r1", Flights: []int64{3, 4}},
		}
	}
	sys, err := airline.Deploy(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	// The agent sits at the node owning flight 1 when regional (local
	// access), or at a separate office when central.
	var agentNode *guardian.Node
	if layout == "central" {
		agentNode = w.MustAddNode("office")
	} else {
		agentNode, _ = w.Node("r0")
	}
	a, err := airline.NewAgent(agentNode, "a")
	if err != nil {
		b.Fatal(err)
	}
	port := sys.Directory[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Request(port, "reserve", 1, fmt.Sprintf("p%d", i), "d1", benchTimeout); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2RegionalCentral(b *testing.B) { benchFig2(b, "central") }
func BenchmarkFig2RegionalLocal(b *testing.B)   { benchFig2(b, "regional") }
func BenchmarkFig2RegionalRelayed(b *testing.B) { benchFig2(b, "relay") }

// --- E3 / Figure 3: guardian creation ---

func BenchmarkFig3CreationLocal(b *testing.B) {
	w := guardian.NewWorld(guardian.Config{})
	w.MustRegister(&guardian.GuardianDef{TypeName: "t", Init: func(ctx *guardian.Ctx) {}})
	n := w.MustAddNode("n")
	g, _, err := n.NewDriver("creator")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Create("t"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3CreationRemote(b *testing.B) {
	w := guardian.NewWorld(guardian.Config{})
	w.MustRegister(&guardian.GuardianDef{TypeName: "t", Init: func(ctx *guardian.Ctx) {}})
	w.MustAddNode("target")
	src := w.MustAddNode("src")
	g, drv, err := src.NewDriver("creator")
	if err != nil {
		b.Fatal(err)
	}
	reply := g.MustNewPort(guardian.CreatedReplyType, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := drv.SendCheckedReplyTo(guardian.PrimordialType, guardian.PrimordialPort("target"),
			reply.Name(), "create", "t", xrep.Seq{}); err != nil {
			b.Fatal(err)
		}
		m, st := drv.Receive(benchTimeout, reply)
		if st != guardian.RecvOK || m.Command != "created" {
			b.Fatalf("create failed: %v", st)
		}
	}
}

// --- E4 / §3: the three send primitives ---

func benchPrimitive(b *testing.B, prim string) {
	w := guardian.NewWorld(guardian.Config{})
	pt := guardian.NewPortType("bench_port").
		Msg("work", xrep.KindString).
		Replies("work", "done").
		Msg("work_sync", xrep.KindString, xrep.KindRec)
	w.MustRegister(&guardian.GuardianDef{
		TypeName: "worker",
		Provides: []*guardian.PortType{pt},
		Init: func(ctx *guardian.Ctx) {
			//lint:allow recvhygiene benchmark drives a lossless local world; the bench deadline bounds any hang
			guardian.NewReceiver(ctx.Ports[0]).
				When("work", func(pr *guardian.Process, m *guardian.Message) {
					if !m.ReplyTo.IsZero() {
						_ = pr.Send(m.ReplyTo, "done", m.Str(0))
					}
				}).
				When("work_sync", func(pr *guardian.Process, m *guardian.Message) {
					_ = sendprim.Acknowledge(pr, m)
				}).
				Loop(ctx.Proc, nil)
		},
	})
	srv := w.MustAddNode("srv")
	created, err := srv.Bootstrap("worker")
	if err != nil {
		b.Fatal(err)
	}
	cli := w.MustAddNode("cli")
	g, drv, err := cli.NewDriver("d")
	if err != nil {
		b.Fatal(err)
	}
	done := guardian.NewPortType("done_port").Msg("done", xrep.KindString)
	reply := g.MustNewPort(done, 8)
	port := created.Ports[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch prim {
		case "no-wait":
			if err := drv.SendReplyTo(port, reply.Name(), "work", "x"); err != nil {
				b.Fatal(err)
			}
			if m, st := drv.Receive(benchTimeout, reply); st != guardian.RecvOK || m.Command != "done" {
				b.Fatal(st)
			}
		case "sync":
			if err := sendprim.SyncSend(drv, port, benchTimeout, "work_sync", "x"); err != nil {
				b.Fatal(err)
			}
		case "call":
			if _, err := sendprim.Call(drv, port, done,
				sendprim.CallOptions{Timeout: benchTimeout}, "work", "x"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE4PrimitivesNoWait(b *testing.B)     { benchPrimitive(b, "no-wait") }
func BenchmarkE4PrimitivesSyncSend(b *testing.B)   { benchPrimitive(b, "sync") }
func BenchmarkE4PrimitivesRemoteCall(b *testing.B) { benchPrimitive(b, "call") }

// --- E5 / §3.4: message delivery path (wire + netsim + dispatch) ---

func BenchmarkE5DeliveryOneWay(b *testing.B) {
	w := guardian.NewWorld(guardian.Config{})
	pt := guardian.NewPortType("sink").Msg("data", xrep.KindInt)
	received := make(chan struct{}, 1024)
	w.MustRegister(&guardian.GuardianDef{
		TypeName:     "sink",
		Provides:     []*guardian.PortType{pt},
		PortCapacity: 4096,
		Init: func(ctx *guardian.Ctx) {
			//lint:allow recvhygiene benchmark drives a lossless local world; the bench deadline bounds any hang
			guardian.NewReceiver(ctx.Ports[0]).
				When("data", func(pr *guardian.Process, m *guardian.Message) {
					received <- struct{}{}
				}).
				Loop(ctx.Proc, nil)
		},
	})
	srv := w.MustAddNode("srv")
	created, err := srv.Bootstrap("sink")
	if err != nil {
		b.Fatal(err)
	}
	cli := w.MustAddNode("cli")
	_, drv, err := cli.NewDriver("d")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := drv.Send(created.Ports[0], "data", i); err != nil {
			b.Fatal(err)
		}
		<-received
	}
}

// --- E6 / Figure 5: one full clerk transaction ---

func BenchmarkE6Transactions(b *testing.B) {
	w := guardian.NewWorld(guardian.Config{})
	if err := airline.RegisterDefs(w); err != nil {
		b.Fatal(err)
	}
	sys, err := airline.Deploy(w, airline.SystemConfig{
		Regions:    []airline.RegionConfig{{Node: "region", Flights: []int64{1}}},
		UINodes:    []string{"office"},
		Capacity:   1 << 30,
		Org:        airline.OrgMonitor,
		DeadlineMS: 5000,
	})
	if err != nil {
		b.Fatal(err)
	}
	office, _ := w.Node("office")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clerk, err := airline.NewClerk(office, "c")
		if err != nil {
			b.Fatal(err)
		}
		if err := clerk.Begin(sys.UIPorts["office"], fmt.Sprintf("p%d", i), benchTimeout); err != nil {
			b.Fatal(err)
		}
		if _, err := clerk.Reserve(1, fmt.Sprintf("d%d", i%30), benchTimeout); err != nil {
			b.Fatal(err)
		}
		if _, _, err := clerk.Done(benchTimeout); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7 / §2.2: crash + recovery cycle ---

func BenchmarkE7Recovery(b *testing.B) {
	w := guardian.NewWorld(guardian.Config{})
	if err := w.Register(bank.BranchDef()); err != nil {
		b.Fatal(err)
	}
	srv := w.MustAddNode("srv")
	created, err := srv.Bootstrap(bank.BranchDefName)
	if err != nil {
		b.Fatal(err)
	}
	cli := w.MustAddNode("cli")
	g, drv, err := cli.NewDriver("d")
	if err != nil {
		b.Fatal(err)
	}
	reply := g.MustNewPort(bank.ClientReplyType, 8)
	call := func(cmd string, args ...any) *guardian.Message {
		if err := drv.SendReplyTo(created.Ports[0], reply.Name(), cmd, args...); err != nil {
			b.Fatal(err)
		}
		m, st := drv.Receive(benchTimeout, reply)
		if st != guardian.RecvOK {
			b.Fatal(st)
		}
		return m
	}
	call("open", "acct")
	for i := 0; i < 500; i++ {
		call("deposit", "acct", int64(1), fmt.Sprintf("op%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Crash()
		if err := srv.Restart(); err != nil {
			b.Fatal(err)
		}
		if m := call("balance", "acct"); m.Int(0) != 500 {
			b.Fatalf("recovered balance %d", m.Int(0))
		}
	}
}

// --- E8 / §3.3: abstract value transmission ---

func BenchmarkE8ExternalRepEncode(b *testing.B) {
	h := xrep.NewHashAssocMem()
	for i := 0; i < 1000; i++ {
		h.AddItem(fmt.Sprintf("key%06d", i), xrep.Int(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := xrep.Encode(h)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.MarshalValue(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8ExternalRepDecode(b *testing.B) {
	h := xrep.NewHashAssocMem()
	for i := 0; i < 1000; i++ {
		h.AddItem(fmt.Sprintf("key%06d", i), xrep.Int(i))
	}
	v, err := xrep.Encode(h)
	if err != nil {
		b.Fatal(err)
	}
	raw, err := wire.MarshalValue(v)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v2, err := wire.UnmarshalValue(raw)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := xrep.DecodeTreeAssocMem(v2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkWireFrameRoundTrip(b *testing.B) {
	f := &wire.Frame{
		Dest:    xrep.PortName{Node: "n", Guardian: 3, Port: 1},
		SrcNode: "m",
		Command: "reserve",
		Args:    xrep.Seq{xrep.Int(22), xrep.Str("p-100432"), xrep.Str("1979-12-10")},
		ReplyTo: xrep.PortName{Node: "m", Guardian: 9, Port: 2},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := f.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.UnmarshalFrame(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetsimSend(b *testing.B) {
	net := netsim.New(vtime.NewReal(), netsim.Config{})
	done := make(chan struct{}, 1024)
	net.Attach("a", func(netsim.Addr, []byte) {})
	net.Attach("b", func(netsim.Addr, []byte) { done <- struct{}{} })
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Send("a", "b", payload); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}

// --- experiment harness smoke (ensures cmd/bench paths stay green) ---

func BenchmarkExperimentHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunE8ExternalRep(exp.E8Defaults, exp.Scale(0.05)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9 / extension: two-phase commit per-transaction cost ---

func BenchmarkE9TwoPhaseCommit(b *testing.B) {
	w := guardian.NewWorld(guardian.Config{})
	w.MustRegister(tpc.CoordinatorDef())
	w.MustRegister(tpc.NewParticipantDef("bench_participant", func() tpc.Resource {
		return tpc.NewSlotResource(map[string]int64{"unit": 1 << 40})
	}))
	coordNode := w.MustAddNode("coord")
	created, err := coordNode.Bootstrap(tpc.CoordinatorDefName, int64(2000), int64(2))
	if err != nil {
		b.Fatal(err)
	}
	parts := make(xrep.Seq, 3)
	for i := range parts {
		pn := w.MustAddNode(fmt.Sprintf("p%d", i))
		pc, err := pn.Bootstrap("bench_participant")
		if err != nil {
			b.Fatal(err)
		}
		parts[i] = xrep.Seq{pc.Ports[0], tpc.SlotOp("unit", 1)}
	}
	cli := w.MustAddNode("cli")
	g, drv, err := cli.NewDriver("c")
	if err != nil {
		b.Fatal(err)
	}
	reply := g.MustNewPort(tpc.ClientReplyType, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txid := fmt.Sprintf("tx%d", i)
		if err := drv.SendReplyTo(created.Ports[0], reply.Name(), "begin", txid, parts); err != nil {
			b.Fatal(err)
		}
		m, st := drv.Receive(benchTimeout, reply)
		if st != guardian.RecvOK || m.Command != tpc.OutcomeCommitted {
			b.Fatalf("tx %s: %v %v", txid, st, m)
		}
	}
}

// --- E10 / extension: at-most-once call overhead ---

// BenchmarkE10AtMostOnceCall measures the per-call cost of the session
// layer itself — envelope, request id, dedup lookup, cached-reply
// bookkeeping — on a clean network, so the difference from a bare
// request/response round trip is the price of exactly-once.
func BenchmarkE10AtMostOnceCall(b *testing.B) {
	w := guardian.NewWorld(guardian.Config{})
	w.MustRegister(bank.BranchDef())
	branch := w.MustAddNode("branch")
	created, err := branch.Bootstrap(bank.BranchDefName)
	if err != nil {
		b.Fatal(err)
	}
	cli := w.MustAddNode("cli")
	_, drv, err := cli.NewDriver("teller")
	if err != nil {
		b.Fatal(err)
	}
	caller, err := amo.NewCaller(drv, amo.CallerOptions{Timeout: benchTimeout})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := caller.Call(created.Ports[1], "open", "acct"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := caller.Call(created.Ports[1], "deposit", "acct", int64(1))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Command != bank.OutcomeOK {
			b.Fatalf("deposit: %s", rep.Command)
		}
	}
}

// --- E12 / transport: simulator adapter vs real UDP loopback ---

// BenchmarkTransportLoopback measures one full guardian-level round trip —
// no-wait send out, sink delivery, acknowledgment back — over the three
// Transport implementations: the in-memory simulator adapter every test
// uses, real UDP sockets through the kernel's loopback, and framed
// persistent TCP connections (two transports, two listeners — a stream
// has distinct endpoints by construction). The gaps are the cost of
// actual datagrams (syscalls, copies, scheduling) and of stream framing
// relative to the simulator's direct dispatch; EXPERIMENTS.md E12/E17
// record them.
func BenchmarkTransportLoopback(b *testing.B) {
	echoDef := func() *guardian.GuardianDef {
		pt := guardian.NewPortType("echo").
			Msg("ping", xrep.KindInt, xrep.KindPortName).
			Replies("ping", "pong")
		return &guardian.GuardianDef{
			TypeName:     "echo",
			Provides:     []*guardian.PortType{pt},
			PortCapacity: 1024,
			Init: func(ctx *guardian.Ctx) {
				//lint:allow recvhygiene benchmark drives a lossless local world; the bench deadline bounds any hang
				guardian.NewReceiver(ctx.Ports[0]).
					When("ping", func(pr *guardian.Process, m *guardian.Message) {
						_ = pr.Send(m.Port(1), "pong", m.Int(0))
					}).
					Loop(ctx.Proc, nil)
			},
		}
	}
	// run drives the round trips with the server node on wSrv and the
	// driver on wCli — the same world for the transports that carry both
	// endpoints on one instance, two worlds over two sockets for TCP.
	run := func(b *testing.B, wSrv, wCli *guardian.World) {
		wSrv.MustRegister(echoDef())
		srv := wSrv.MustAddNode("srv")
		created, err := srv.Bootstrap("echo")
		if err != nil {
			b.Fatal(err)
		}
		cli := wCli.MustAddNode("cli")
		g, drv, err := cli.NewDriver("d")
		if err != nil {
			b.Fatal(err)
		}
		reply, err := g.NewPort(guardian.NewPortType("pong_port").Msg("pong", xrep.KindInt), 64)
		if err != nil {
			b.Fatal(err)
		}
		roundTrip := func(i int) {
			if err := drv.Send(created.Ports[0], "ping", i, reply.Name()); err != nil {
				b.Fatal(err)
			}
			if _, st := drv.Receive(benchTimeout, reply); st != guardian.RecvOK {
				b.Fatalf("round trip %d: receive status %v", i, st)
			}
		}
		// One warmup round trip keeps connection dialing (TCP) and route
		// learning out of the measured loop: the steady state is what the
		// arms are being compared on.
		roundTrip(-1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			roundTrip(i)
		}
	}

	b.Run("netsim", func(b *testing.B) {
		w := guardian.NewWorld(guardian.Config{
			Transport: transport.NewSim(netsim.New(vtime.NewReal(), netsim.Config{})),
		})
		defer w.Close()
		run(b, w, w)
	})
	b.Run("udp", func(b *testing.B) {
		udp, err := transport.NewUDP(transport.UDPConfig{
			Peers: map[transport.Addr]string{
				"srv": "127.0.0.1:0",
				"cli": "127.0.0.1:0",
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		w := guardian.NewWorld(guardian.Config{Transport: udp})
		defer w.Close()
		run(b, w, w)
	})
	b.Run("tcp", func(b *testing.B) {
		srvTr, err := transport.NewTCP(transport.TCPConfig{Listen: "127.0.0.1:0"})
		if err != nil {
			b.Fatal(err)
		}
		cliTr, err := transport.NewTCP(transport.TCPConfig{Listen: "127.0.0.1:0"})
		if err != nil {
			b.Fatal(err)
		}
		if err := cliTr.SetPeer("srv", srvTr.ListenAddr()); err != nil {
			b.Fatal(err)
		}
		wSrv := guardian.NewWorld(guardian.Config{Transport: srvTr})
		defer wSrv.Close()
		wCli := guardian.NewWorld(guardian.Config{Transport: cliTr})
		defer wCli.Close()
		run(b, wSrv, wCli)
	})
}

// --- E13 / durable: group commit vs naive log-then-ack ---

// benchE13 measures concurrent AppendSync throughput on a real on-disk
// WAL. With group commit (the default) concurrent committers coalesce
// into one fsync per batch; the control arm forces one serialized fsync
// per call — the naive log-then-ack discipline. The reported fsyncs/op
// is the coalescing factor's inverse: well below 1.0 under concurrency
// for group commit, exactly 1.0 for the naive arm.
func benchE13(b *testing.B, noGroup bool) {
	store, err := durable.OpenWAL(b.TempDir(), durable.WALConfig{NoGroupCommit: noGroup})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	log, err := store.OpenLog("bench")
	if err != nil {
		b.Fatal(err)
	}
	rec := make([]byte, 128)
	// Force many concurrent committers even on a single-CPU runner:
	// coalescing only happens when callers pile up behind an in-flight
	// fsync, and fsync parks the goroutine, not the CPU.
	b.SetParallelism(8 * runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			log.AppendSync(rec)
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(store.SyncCount())/float64(b.N), "fsyncs/op")
}

func BenchmarkE13GroupCommit(b *testing.B) { benchE13(b, false) }
func BenchmarkE13NaiveSync(b *testing.B)   { benchE13(b, true) }
