// Office example: division guardians guarding documents, with sealed
// tokens (§2.1) as the only external names for stored objects and the
// document value crossing divisions via its external rep (§3.3).
//
// Run with: go run ./examples/office
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/guardian"
	"repro/internal/office"
	"repro/internal/xrep"
)

const timeout = 10 * time.Second

func main() {
	w := guardian.NewWorld(guardian.Config{})
	if err := w.Register(office.DivisionDef()); err != nil {
		log.Fatal(err)
	}
	sales := w.MustAddNode("sales")
	legal := w.MustAddNode("legal")
	desk := w.MustAddNode("desk")
	cs, err := sales.Bootstrap(office.DivisionDefName)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := legal.Bootstrap(office.DivisionDefName)
	if err != nil {
		log.Fatal(err)
	}
	salesPort, legalPort := cs.Ports[0], cl.Ports[0]

	g, user, err := desk.NewDriver("author")
	if err != nil {
		log.Fatal(err)
	}
	reply := g.MustNewPort(office.ClientReplyType, 16)
	call := func(port xrep.PortName, cmd string, args ...any) *guardian.Message {
		if err := user.SendReplyTo(port, reply.Name(), cmd, args...); err != nil {
			log.Fatal(err)
		}
		m, st := user.Receive(timeout, reply)
		if st != guardian.RecvOK {
			log.Fatalf("%s: %v", cmd, st)
		}
		return m
	}

	fmt.Println("create a contract at the sales division:")
	m := call(salesPort, "create_doc", "acme contract", "v1: we sell, they pay")
	tok := m.Token(0)
	fmt.Printf("  create_doc -> %s (token sealed by guardian %d)\n", m.Command, tok.Issuer)

	m = call(salesPort, "edit_doc", tok, "v2: we sell more, they pay more")
	fmt.Printf("  edit_doc   -> %s (revision %d)\n", m.Command, m.Int(0))

	fmt.Println("\nthe token means nothing to another division:")
	m = call(legalPort, "read_doc", tok)
	fmt.Printf("  legal read_doc(sales token) -> %s\n", m.Command)

	fmt.Println("\nforward the document to legal (value crosses via external rep):")
	if err := user.SendReplyTo(salesPort, reply.Name(), "send_doc", tok, legalPort); err != nil {
		log.Fatal(err)
	}
	var legalTok xrep.Token
	for i := 0; i < 2; i++ {
		m, st := user.Receive(timeout, reply)
		if st != guardian.RecvOK {
			log.Fatal(st)
		}
		switch m.Command {
		case "doc_token":
			legalTok = m.Token(0)
			fmt.Printf("  legal issued its own token (from %s)\n", m.SrcNode)
		case "forwarded":
			fmt.Println("  sales confirmed forwarding")
		}
	}

	call(legalPort, "edit_doc", legalTok, "v2 + redlines")
	salesDoc, _ := office.DecodeDocument(call(salesPort, "read_doc", tok).Args[0])
	legalDoc, _ := office.DecodeDocument(call(legalPort, "read_doc", legalTok).Args[0])
	fmt.Printf("\nindependent copies after legal's edit:\n  sales: %q rev %d\n  legal: %q rev %d\n",
		salesDoc.(office.Document).Body, salesDoc.(office.Document).Revision,
		legalDoc.(office.Document).Body, legalDoc.(office.Document).Revision)

	fmt.Println("\narchive at sales; the old token now dangles:")
	fmt.Printf("  archive_doc -> %s\n", call(salesPort, "archive_doc", tok).Command)
	fmt.Printf("  read_doc    -> %s (the system never promised the object survives)\n",
		call(salesPort, "read_doc", tok).Command)
}
