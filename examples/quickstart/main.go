// Quickstart: two guardians on two nodes exchange typed messages through
// ports — the smallest complete program against the public API.
//
// It builds a world, registers a greeter guardian definition, creates an
// instance on node "alpha", and drives it from node "beta" with the
// no-wait send and a receive with timeout.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

// The greeter's port type: greet(name) replies (greeting(text)).
var greeterPort = repro.NewPortType("greeter_port").
	Msg("greet", repro.KindString).
	Replies("greet", "greeting")

// The client's reply port type.
var replyPort = repro.NewPortType("greeting_reply_port").
	Msg("greeting", repro.KindString)

func main() {
	// A world is a whole distributed program; the zero config gives a
	// perfectly reliable, instant network (turn on faults via
	// repro.Config{Net: repro.NetConfig{...}}).
	w := repro.NewWorld(repro.Config{})

	// Guardian definitions live in a world-wide library, like CLU's
	// compilation library of guardian headers.
	w.MustRegister(&repro.GuardianDef{
		TypeName: "greeter",
		Provides: []*repro.PortType{greeterPort},
		Init: func(ctx *repro.Ctx) {
			// The guardian's initial process: a receive loop. The arms are
			// checked against the port type at construction time — an
			// undeclared command is a panic, the library's stand-in for
			// the paper's compile-time checking.
			repro.NewReceiver(ctx.Ports[0]).
				When("greet", func(pr *repro.Process, m *repro.Message) {
					if !m.ReplyTo.IsZero() {
						_ = pr.Send(m.ReplyTo, "greeting", "hello, "+m.Str(0)+"!")
					}
				}).
				// The implicit failure arm (§3.4): if a message naming this
				// port as its replyto is thrown away, the system's failure
				// report lands here. Note it instead of dropping it silently.
				WhenFailure(func(_ *repro.Process, text string, _ *repro.Message) {
					log.Printf("greeter: failure report: %s", text)
				}).
				Loop(ctx.Proc, nil)
		},
	})

	// Two autonomous nodes joined by the network.
	alpha := w.MustAddNode("alpha")
	beta := w.MustAddNode("beta")

	// Create a greeter at alpha. Bootstrap acts as the node owner (the
	// primordial guardian); guardians can also be created remotely with a
	// create message to repro.PrimordialPort("alpha").
	created, err := alpha.Bootstrap("greeter")
	if err != nil {
		log.Fatal(err)
	}
	greeter := created.Ports[0] // a global port name — sendable in messages

	// Drive from beta: a driver guardian stands in for a human user.
	g, client, err := beta.NewDriver("client")
	if err != nil {
		log.Fatal(err)
	}
	reply := g.MustNewPort(replyPort, 8)

	// The no-wait send: returns as soon as the message is constructed.
	if err := client.SendReplyTo(greeter, reply.Name(), "greet", "world"); err != nil {
		log.Fatal(err)
	}

	// The receive statement: wait for the response or time out.
	m, st := client.Receive(2*time.Second, reply)
	switch st {
	case repro.RecvOK:
		fmt.Println("received:", m.Str(0))
	case repro.RecvTimeout:
		fmt.Println("timed out — with a reliable network this should not happen")
	default:
		fmt.Println("guardian killed")
	}
}
