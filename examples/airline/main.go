// Airline example: the paper's running example (§2.3, §3.5, Figures 1-5)
// as a complete program — a two-region distributed reservation database, a
// clerk transaction with deferred cancels and undo, and a crash/recovery
// pass showing permanence of effect.
//
// Run with: go run ./examples/airline
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/airline"
	"repro/internal/guardian"
	"repro/internal/netsim"
)

const timeout = 10 * time.Second

func main() {
	w := guardian.NewWorld(guardian.Config{
		Net: netsim.Config{BaseLatency: time.Millisecond},
	})
	if err := airline.RegisterDefs(w); err != nil {
		log.Fatal(err)
	}

	// Figure 2: regions east and west, each guarding its flights; a user
	// interface guardian at the office node holding the full directory.
	sys, err := airline.Deploy(w, airline.SystemConfig{
		Regions: []airline.RegionConfig{
			{Node: "east", Flights: []int64{101, 102}},
			{Node: "west", Flights: []int64{201, 202}},
		},
		UINodes:    []string{"office"},
		Capacity:   2,
		Org:        airline.OrgSerializer, // Figure 1b
		DeadlineMS: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	office, _ := w.Node("office")

	// A clerk conversation (Figure 5): reserves are immediate, cancels
	// deferred, history undoable.
	clerk, err := airline.NewClerk(office, "clerk")
	if err != nil {
		log.Fatal(err)
	}
	if err := clerk.Begin(sys.UIPorts["office"], "passenger-42", timeout); err != nil {
		log.Fatal(err)
	}
	show := func(what, outcome string) { fmt.Printf("  %-40s -> %s\n", what, outcome) }

	fmt.Println("transaction for passenger-42:")
	out, _ := clerk.Reserve(101, "1979-12-24", timeout)
	show("reserve 101 dec-24 (east)", out)
	out, _ = clerk.Reserve(201, "1979-12-24", timeout)
	show("reserve 201 dec-24 (west)", out)
	out, _ = clerk.Cancel(101, "1979-12-24", timeout)
	show("cancel 101 (deferred)", out)
	undone, _ := clerk.UndoLast(timeout)
	show("undo_last", "undid "+undone)
	r, c, err := clerk.Done(timeout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  transaction done: %d reservations kept, %d cancels performed\n\n", r, c)

	// Fill flight 101 and show the waitlist.
	agent, err := airline.NewAgent(office, "walk-up")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("filling flight 101 dec-24 (capacity 2; passenger-42 holds one seat):")
	for _, pid := range []string{"passenger-7", "passenger-8"} {
		out, _ := agent.Request(sys.Directory[101], "reserve", 101, pid, "1979-12-24", timeout)
		show("reserve for "+pid, out)
	}

	// Crash the east region and recover: the seats survive (§2.2).
	east, _ := w.Node("east")
	east.Crash()
	if err := east.Restart(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter east crash + recovery (flight guardians replayed their logs):")
	out, _ = agent.Request(sys.Directory[101], "reserve", 101, "passenger-7", "1979-12-24", timeout)
	show("passenger-7's seat", out) // pre_reserved: still held
	out, _ = agent.Request(sys.Directory[101], "cancel", 101, "passenger-42", "1979-12-24", timeout)
	show("cancel passenger-42", out)
	// The cancel freed a seat; the oldest waitlisted passenger-8 was
	// promoted into it, so a repeat reserve reports pre_reserved.
	out, _ = agent.Request(sys.Directory[101], "reserve", 101, "passenger-8", "1979-12-24", timeout)
	show("passenger-8 (promoted from waitlist)", out)

	// Administrative functions (§2.3): usage statistics via the region.
	m, err := agent.Admin(sys.RegionPorts["east"], "usage", timeout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\neast region usage_info: %v\n", m.Args[0])
}
