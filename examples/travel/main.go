// Travel example: atomic booking across autonomous guardians with the
// two-phase commit protocol built on the no-wait send (internal/tpc) —
// the "recoverable atomic transactions" class of protocols the paper says
// its primitive must be able to express (§3).
//
// A trip needs a seat from the airline's inventory guardian AND a room
// from the hotel's inventory guardian, on different nodes owned by
// different organizations. Either both are booked or neither is.
//
// Run with: go run ./examples/travel
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/guardian"
	"repro/internal/netsim"
	"repro/internal/tpc"
	"repro/internal/xrep"
)

const timeout = 15 * time.Second

func main() {
	w := guardian.NewWorld(guardian.Config{
		Net: netsim.Config{Seed: 3, BaseLatency: time.Millisecond},
	})
	w.MustRegister(tpc.CoordinatorDef())
	w.MustRegister(tpc.NewParticipantDef("airline_inventory", func() tpc.Resource {
		return tpc.NewSlotResource(map[string]int64{"flight-22-dec-10": 2})
	}))
	w.MustRegister(tpc.NewParticipantDef("hotel_inventory", func() tpc.Resource {
		return tpc.NewSlotResource(map[string]int64{"room-dec-10": 1})
	}))

	agencyNode := w.MustAddNode("travel-agency")
	airlineNode := w.MustAddNode("airline")
	hotelNode := w.MustAddNode("hotel")

	coord, err := agencyNode.Bootstrap(tpc.CoordinatorDefName, int64(1000), int64(3))
	if err != nil {
		log.Fatal(err)
	}
	air, err := airlineNode.Bootstrap("airline_inventory")
	if err != nil {
		log.Fatal(err)
	}
	hotel, err := hotelNode.Bootstrap("hotel_inventory")
	if err != nil {
		log.Fatal(err)
	}

	deskNode := w.MustAddNode("desk")
	g, client, err := deskNode.NewDriver("agent")
	if err != nil {
		log.Fatal(err)
	}
	reply := g.MustNewPort(tpc.ClientReplyType, 8)

	book := func(txid string) string {
		ops := xrep.Seq{
			xrep.Seq{air.Ports[0], tpc.SlotOp("flight-22-dec-10", 1)},
			xrep.Seq{hotel.Ports[0], tpc.SlotOp("room-dec-10", 1)},
		}
		if err := client.SendReplyTo(coord.Ports[0], reply.Name(), "begin", txid, ops); err != nil {
			log.Fatal(err)
		}
		for {
			m, st := client.Receive(timeout, reply)
			if st != guardian.RecvOK {
				log.Fatalf("%s: %v", txid, st)
			}
			if m.Str(0) == txid {
				return m.Command
			}
		}
	}
	// resource polls until the guardian's Init/Recover process has
	// installed its state (guardian start-up is asynchronous).
	resource := func(n *guardian.Node, id uint64) *tpc.SlotResource {
		for i := 0; i < 200; i++ {
			if g, ok := n.GuardianByID(id); ok {
				if r, ok := tpc.ParticipantResource(g); ok && r != nil {
					return r.(*tpc.SlotResource)
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		log.Fatal("participant never initialized")
		return nil
	}
	inventory := func() (int64, int64) {
		return resource(airlineNode, air.GuardianID).Available("flight-22-dec-10"),
			resource(hotelNode, hotel.GuardianID).Available("room-dec-10")
	}

	seats, rooms := inventory()
	fmt.Printf("inventory: %d seats, %d rooms\n\n", seats, rooms)

	fmt.Printf("trip-1 (smith): %s\n", book("trip-1"))
	seats, rooms = inventory()
	fmt.Printf("  inventory now: %d seats, %d rooms\n\n", seats, rooms)

	// The hotel is out of rooms, so the second trip must leave the
	// remaining seat untouched — all or nothing.
	fmt.Printf("trip-2 (jones): %s\n", book("trip-2"))
	seats, rooms = inventory()
	fmt.Printf("  inventory now: %d seats, %d rooms (seat NOT leaked to a roomless trip)\n\n", seats, rooms)

	// Crash the airline node and recover: the committed booking survives.
	airlineNode.Crash()
	if err := airlineNode.Restart(); err != nil {
		log.Fatal(err)
	}
	seats, rooms = inventory()
	fmt.Printf("after airline crash + recovery: %d seats, %d rooms (trip-1's seat still committed)\n", seats, rooms)

	// A duplicate begin for trip-1 (e.g. the agency retrying after a lost
	// reply) returns the recorded outcome without booking twice.
	fmt.Printf("replay trip-1: %s — inventory unchanged: ", book("trip-1"))
	seats, rooms = inventory()
	fmt.Printf("%d seats, %d rooms\n", seats, rooms)
}
