// Primitives example: the §3 comparison in miniature. One server guardian,
// one exchange pattern, driven three ways — no-wait send, synchronization
// send, remote transaction send — printing the messages each costs and how
// long the sender stayed blocked.
//
// Run with: go run ./examples/primitives
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

var serverPort = repro.NewPortType("server_port").
	Msg("work", repro.KindString).
	Replies("work", "done").
	Msg("work_sync", repro.KindString, repro.KindPortName, repro.KindPortName)

var doneReply = repro.NewPortType("done_port").
	Msg("done", repro.KindString)

func main() {
	// 5ms one-way latency so blocking differences are visible.
	w := repro.NewWorld(repro.Config{
		Net: repro.NetConfig{BaseLatency: 5 * time.Millisecond},
	})
	w.MustRegister(&repro.GuardianDef{
		TypeName: "server",
		Provides: []*repro.PortType{serverPort},
		Init: func(ctx *repro.Ctx) {
			repro.NewReceiver(ctx.Ports[0]).
				When("work", func(pr *repro.Process, m *repro.Message) {
					if !m.ReplyTo.IsZero() {
						_ = pr.Send(m.ReplyTo, "done", m.Str(0))
					}
				}).
				When("work_sync", func(pr *repro.Process, m *repro.Message) {
					// Synchronization-send discipline: acknowledge receipt
					// immediately, respond separately.
					_ = repro.Acknowledge(pr, m)
					_ = pr.Send(m.Port(1), "done", m.Str(0))
				}).
				WhenFailure(func(_ *repro.Process, text string, _ *repro.Message) {
					// §3.4: a discarded message named this port as its
					// replyto; the failure report lands here. Log and
					// continue — the sender's timeout owns the recovery.
					log.Printf("server: failure report: %s", text)
				}).
				Loop(ctx.Proc, nil)
		},
	})
	srv := w.MustAddNode("server-node")
	cli := w.MustAddNode("client-node")
	created, err := srv.Bootstrap("server")
	if err != nil {
		log.Fatal(err)
	}
	server := created.Ports[0]
	g, client, err := cli.NewDriver("client")
	if err != nil {
		log.Fatal(err)
	}
	resp := g.MustNewPort(doneReply, 8)
	stats := w.Stats()

	// Each exchange reports how long the sender was blocked inside the
	// send primitive itself (the wait for the response, common to all
	// three, is excluded where the primitive allows overlapping work).
	run := func(name string, exchange func() (time.Duration, error)) {
		w.Quiesce()
		before := stats.MessagesSent.Load()
		blocked, err := exchange()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		w.Quiesce()
		time.Sleep(2 * time.Millisecond)
		fmt.Printf("  %-22s %d messages, sender blocked in send %8v\n",
			name, stats.MessagesSent.Load()-before, blocked.Round(100*time.Microsecond))
	}

	fmt.Println("one request/response exchange, three primitives (5ms one-way latency):")

	// 1. No-wait send: returns immediately; the response is awaited
	// separately, so the send itself blocks ~0.
	run("no-wait send", func() (time.Duration, error) {
		start := time.Now()
		if err := client.SendReplyTo(server, resp.Name(), "work", "x"); err != nil {
			return 0, err
		}
		blocked := time.Since(start) // free to do other work from here on
		m, st := client.Receive(5*time.Second, resp)
		if st != repro.RecvOK || m.Command != "done" {
			return 0, fmt.Errorf("bad response %v", st)
		}
		return blocked, nil
	})

	// 2. Synchronization send: blocks until the server process removes
	// the message (~1 round trip), and the response costs a third message.
	run("synchronization send", func() (time.Duration, error) {
		start := time.Now()
		if err := repro.SyncSend(client, server, 5*time.Second, "work_sync", "x", resp.Name()); err != nil {
			return 0, err
		}
		blocked := time.Since(start) // blocked until receipt was confirmed
		m, st := client.Receive(5*time.Second, resp)
		if st != repro.RecvOK || m.Command != "done" {
			return 0, fmt.Errorf("bad response %v", st)
		}
		return blocked, nil
	})

	// 3. Remote transaction send: blocks for the full request/response;
	// two messages, like no-wait, but the sender cannot overlap work.
	run("remote transaction", func() (time.Duration, error) {
		start := time.Now()
		_, err := repro.Call(client, server, doneReply,
			repro.CallOptions{Timeout: 5 * time.Second}, "work", "x")
		return time.Since(start), err // blocked for the whole round trip
	})

	fmt.Println("\nthe paper's conclusion: the no-wait send matches every exchange pattern")
	fmt.Println("with the fewest messages and can implement the other two primitives —")
	fmt.Println("but not vice versa without extra messages (run cmd/bench -experiment")
	fmt.Println("primitives for the full three-pattern table).")
}
