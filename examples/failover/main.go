// Failover example: the service-infrastructure guardians working together.
// Two replicas of an echo service on different nodes register themselves
// with a name-service guardian; a watchdog guardian monitors both nodes;
// when the primary's node crashes, the operator rebinds the service name
// to the surviving replica and clients keep working — all of it built on
// the paper's primitives (typed ports, no-wait send, timeouts, recovery).
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/guardian"
	"repro/internal/nameserv"
	"repro/internal/watchdog"
	"repro/internal/xrep"
)

const timeout = 5 * time.Second

var echoType = guardian.NewPortType("echo_port").
	Msg("echo", xrep.KindString).
	Replies("echo", "echoed")

var echoReply = guardian.NewPortType("echo_reply_port").
	Msg("echoed", xrep.KindString)

func main() {
	w := guardian.NewWorld(guardian.Config{})
	w.MustRegister(nameserv.Def())
	w.MustRegister(watchdog.Def())
	w.MustRegister(&guardian.GuardianDef{
		TypeName: "echo",
		Provides: []*guardian.PortType{echoType},
		Init: func(ctx *guardian.Ctx) {
			who := "replica"
			if len(ctx.Args) == 1 {
				if s, ok := ctx.Args[0].(xrep.Str); ok {
					who = string(s)
				}
			}
			guardian.NewReceiver(ctx.Ports[0]).
				When("echo", func(pr *guardian.Process, m *guardian.Message) {
					if !m.ReplyTo.IsZero() {
						_ = pr.Send(m.ReplyTo, "echoed", m.Str(0)+" (from "+who+")")
					}
				}).
				WhenFailure(func(_ *guardian.Process, text string, _ *guardian.Message) {
					// §3.4: a discarded message named this port as its
					// replyto. Log it; clients retry on their own timeout.
					log.Printf("%s: failure report: %s", who, text)
				}).
				Loop(ctx.Proc, nil)
		},
	})

	// Infrastructure node: name service + watchdog.
	infra := w.MustAddNode("infra")
	ns, err := infra.Bootstrap(nameserv.DefName)
	if err != nil {
		log.Fatal(err)
	}
	wd, err := infra.Bootstrap(watchdog.DefName, int64(20), int64(2))
	if err != nil {
		log.Fatal(err)
	}

	// Two replicas on two nodes.
	nodeA := w.MustAddNode("node-a")
	repA, err := nodeA.Bootstrap("echo", "replica-A")
	if err != nil {
		log.Fatal(err)
	}
	nodeB := w.MustAddNode("node-b")
	repB, err := nodeB.Bootstrap("echo", "replica-B")
	if err != nil {
		log.Fatal(err)
	}

	// The operator: registers the primary, watches both nodes, subscribes
	// to liveness events, and rebinds on failure.
	opsNode := w.MustAddNode("ops")
	g, op, err := opsNode.NewDriver("operator")
	if err != nil {
		log.Fatal(err)
	}
	nsc, err := nameserv.NewClient(op, ns.Ports[0])
	if err != nil {
		log.Fatal(err)
	}
	if _, err := nsc.Register("echo-service", repA.Ports[0], timeout); err != nil {
		log.Fatal(err)
	}
	wdReply := g.MustNewPort(watchdog.ClientReplyType, 8)
	events := g.MustNewPort(watchdog.EventPortType, 32)
	wdCall := func(cmd string, args ...any) {
		if err := op.SendReplyTo(wd.Ports[0], wdReply.Name(), cmd, args...); err != nil {
			log.Fatal(err)
		}
		if _, st := op.Receive(timeout, wdReply); st != guardian.RecvOK {
			log.Fatalf("%s: %v", cmd, st)
		}
	}
	wdCall("watch", "node-a")
	wdCall("watch", "node-b")
	wdCall("subscribe", events.Name())

	// A client that always resolves the name before calling.
	cliNode := w.MustAddNode("client")
	cg, client, err := cliNode.NewDriver("user")
	if err != nil {
		log.Fatal(err)
	}
	cnsc, err := nameserv.NewClient(client, ns.Ports[0])
	if err != nil {
		log.Fatal(err)
	}
	reply := cg.MustNewPort(echoReply, 8)
	callService := func(msg string) string {
		port, _, err := cnsc.Lookup("echo-service", timeout)
		if err != nil {
			return "lookup failed: " + err.Error()
		}
		if err := client.SendReplyTo(port, reply.Name(), "echo", msg); err != nil {
			return "send failed"
		}
		m, st := client.Receive(time.Second, reply)
		if st != guardian.RecvOK {
			return "no answer (" + st.String() + ")"
		}
		if m.IsFailure() {
			return "failure: " + m.FailureText()
		}
		return m.Str(0)
	}

	fmt.Println("normal operation:")
	fmt.Println("  client ->", callService("hello"))

	fmt.Println("\nnode-a crashes:")
	nodeA.Crash()
	// The operator waits for the watchdog's down event, then fails over.
	for {
		m, st := op.Receive(timeout, events)
		if st != guardian.RecvOK {
			log.Fatal("no liveness event")
		}
		if m.Command == "node_down" && m.Str(0) == "node-a" {
			fmt.Println("  watchdog: node_down(node-a)")
			break
		}
	}
	if _, err := nsc.Register("echo-service", repB.Ports[0], timeout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  operator: rebound echo-service -> replica-B")
	fmt.Println("  client ->", callService("hello again"))

	fmt.Println("\nnode-a restarts (echo has no Recover, so A's replica is gone; B stays primary):")
	if err := nodeA.Restart(); err != nil {
		log.Fatal(err)
	}
	for {
		m, st := op.Receive(timeout, events)
		if st != guardian.RecvOK {
			break
		}
		if m.Command == "node_up" && m.Str(0) == "node-a" {
			fmt.Println("  watchdog: node_up(node-a)")
			break
		}
	}
	fmt.Println("  client ->", callService("still here?"))
}
