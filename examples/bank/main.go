// Bank example: branch guardians with durable, idempotent accounts and a
// cross-branch transfer whose response comes from a different guardian
// than the one that received the request — the second §3 exchange pattern.
//
// Run with: go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bank"
	"repro/internal/guardian"
	"repro/internal/netsim"
	"repro/internal/xrep"
)

const timeout = 10 * time.Second

func main() {
	w := guardian.NewWorld(guardian.Config{
		Net: netsim.Config{Seed: 2, BaseLatency: time.Millisecond},
	})
	if err := w.Register(bank.BranchDef()); err != nil {
		log.Fatal(err)
	}
	boston := w.MustAddNode("boston")
	chicago := w.MustAddNode("chicago")
	desk := w.MustAddNode("desk")

	cb, err := boston.Bootstrap(bank.BranchDefName)
	if err != nil {
		log.Fatal(err)
	}
	cc, err := chicago.Bootstrap(bank.BranchDefName)
	if err != nil {
		log.Fatal(err)
	}
	branchBoston, branchChicago := cb.Ports[0], cc.Ports[0]

	g, teller, err := desk.NewDriver("teller")
	if err != nil {
		log.Fatal(err)
	}
	reply := g.MustNewPort(bank.ClientReplyType, 16)
	call := func(port xrep.PortName, cmd string, args ...any) *guardian.Message {
		if err := teller.SendReplyTo(port, reply.Name(), cmd, args...); err != nil {
			log.Fatal(err)
		}
		m, st := teller.Receive(timeout, reply)
		if st != guardian.RecvOK {
			log.Fatalf("%s: %v", cmd, st)
		}
		return m
	}

	fmt.Println("opening accounts and depositing:")
	fmt.Printf("  open alice@boston        -> %s\n", call(branchBoston, "open", "alice").Command)
	fmt.Printf("  open bob@chicago         -> %s\n", call(branchChicago, "open", "bob").Command)
	fmt.Printf("  deposit 500 to alice     -> %s\n",
		call(branchBoston, "deposit", "alice", int64(500), "op-d1").Command)

	// The same deposit retried with the same op id applies once.
	fmt.Printf("  retry same deposit       -> %s (idempotent: applied once)\n",
		call(branchBoston, "deposit", "alice", int64(500), "op-d1").Command)
	fmt.Printf("  alice balance            -> %d\n", call(branchBoston, "balance", "alice").Int(0))

	fmt.Println("\ncross-branch transfer (reply comes from chicago, not boston):")
	m := call(branchBoston, "transfer_out", "alice", int64(200), "op-t1", branchChicago, "bob")
	fmt.Printf("  transfer 200 alice->bob  -> %s (reply SrcNode=%s)\n", m.Command, m.SrcNode)
	fmt.Printf("  alice balance            -> %d\n", call(branchBoston, "balance", "alice").Int(0))
	fmt.Printf("  bob balance              -> %d\n", call(branchChicago, "balance", "bob").Int(0))

	fmt.Println("\ncrash boston and recover (per-guardian log replay):")
	boston.Crash()
	if err := boston.Restart(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  alice balance            -> %d (permanence of effect)\n",
		call(branchBoston, "balance", "alice").Int(0))

	ma := call(branchBoston, "audit")
	mb := call(branchChicago, "audit")
	fmt.Printf("\naudit: boston %d accounts / %d total; chicago %d accounts / %d total; system total %d\n",
		ma.Int(0), ma.Int(1), mb.Int(0), mb.Int(1), ma.Int(1)+mb.Int(1))
}
