// Package repro is the public facade of this reproduction of Barbara
// Liskov's "Primitives for Distributed Computing" (SOSP 1979).
//
// The paper proposes two families of primitives for distributed programs:
//
//   - guardians (§2): the modular unit — an abstract node owning objects,
//     ports and processes, communicating with other guardians only by
//     messages, providing permanence of effect for the resource it guards;
//   - the no-wait send and receive-with-timeout (§3): typed messages sent
//     to globally named ports, best-effort delivery, system failure
//     messages, and user-controlled transmission of abstract values.
//
// This package re-exports the core API from the internal packages so that
// a downstream user needs a single import:
//
//	w := repro.NewWorld(repro.Config{})
//	n := w.MustAddNode("alpha")
//	pt := repro.NewPortType("echo_port").Msg("echo", repro.KindString)
//	w.MustRegister(&repro.GuardianDef{ ... })
//
// The examples/ directory holds complete programs; internal/exp holds the
// experiment harness that regenerates every figure-level claim of the
// paper (see DESIGN.md and EXPERIMENTS.md).
package repro

import (
	"repro/internal/amo"
	"repro/internal/dst"
	"repro/internal/durable"
	"repro/internal/guardian"
	"repro/internal/netsim"
	"repro/internal/replica"
	"repro/internal/sendprim"
	"repro/internal/transport"
	"repro/internal/vtime"
	"repro/internal/xrep"
)

// Core runtime types.
type (
	// World is a complete distributed program: nodes, network, library.
	World = guardian.World
	// Config configures a World.
	Config = guardian.Config
	// Node is a physical node hosting guardians.
	Node = guardian.Node
	// Guardian is the paper's modular unit.
	Guardian = guardian.Guardian
	// GuardianDef is a guardian definition registered in the library.
	GuardianDef = guardian.GuardianDef
	// Ctx is handed to a guardian's Init/Recover process.
	Ctx = guardian.Ctx
	// Process is the execution of a sequential program in a guardian.
	Process = guardian.Process
	// Port is a one-directional, buffered gateway into a guardian.
	Port = guardian.Port
	// PortType describes a port by the messages it accepts.
	PortType = guardian.PortType
	// Message is a received message.
	Message = guardian.Message
	// Receiver is the receive-statement builder.
	Receiver = guardian.Receiver
	// Created reports the result of guardian creation.
	Created = guardian.Created
	// ACL is the access-control helper of §2.3.
	ACL = guardian.ACL
	// Principal identifies a requester for access control.
	Principal = guardian.Principal
	// RecvStatus reports how a receive ended.
	RecvStatus = guardian.RecvStatus
	// Event is one traced runtime occurrence.
	Event = guardian.Event
	// Tracer consumes runtime events.
	Tracer = guardian.Tracer
	// RingTracer retains the most recent events.
	RingTracer = guardian.RingTracer

	// NetConfig is the network fault/delay model.
	NetConfig = netsim.Config
	// Clock abstracts time (real or simulated).
	Clock = vtime.Clock

	// Transport carries a world's packets between nodes.
	Transport = transport.Transport
	// TransportAddr is a node's transport-level name.
	TransportAddr = transport.Addr
	// TransportStats is a transport's delivery accounting.
	TransportStats = transport.Stats
	// UDPTransport carries packets over real UDP sockets.
	UDPTransport = transport.UDP
	// UDPConfig configures a UDPTransport.
	UDPConfig = transport.UDPConfig
	// SimTransport adapts the in-memory simulator to the Transport seam.
	SimTransport = transport.Sim
	// TCPTransport carries frames over persistent TCP connections.
	TCPTransport = transport.TCP
	// TCPConfig configures a TCPTransport.
	TCPConfig = transport.TCPConfig
	// TCPConnStats is one peer connection's state-machine accounting.
	TCPConnStats = transport.ConnStats
	// TCPDialer is the dial seam a TCPTransport uses (TLS-ready).
	TCPDialer = transport.Dialer
	// FaultWrapper injects loss/duplication/delay around any Transport —
	// and connection resets and write stalls around a stream transport.
	FaultWrapper = transport.Wrapper
	// FaultWrapperConfig is the injected fault model.
	FaultWrapperConfig = transport.WrapperConfig
	// FaultWrapperStats counts the faults a FaultWrapper injected.
	FaultWrapperStats = transport.WrapperStats

	// Store is a node's crash-surviving storage backend (§2.2).
	Store = durable.Store
	// DurableLog is one guardian's append-only recovery log.
	DurableLog = durable.Log
	// WAL is the on-disk write-ahead log that survives kill -9.
	WAL = durable.WAL
	// WALConfig tunes a WAL (segment size, group commit, crash hooks).
	WALConfig = durable.WALConfig
	// WALHooks expose the WAL's crash windows to fault injection.
	WALHooks = durable.WALHooks
	// SimStore adapts the in-memory simulated disk to the Store seam.
	SimStore = durable.Sim
	// StoreFaultWrapper injects seeded storage faults around any Store.
	StoreFaultWrapper = durable.Wrapper
	// StoreFaultConfig is the injected storage-fault model.
	StoreFaultConfig = durable.WrapperConfig
	// StoreFaultStats counts the storage faults a wrapper injected.
	StoreFaultStats = durable.WrapperStats
	// RecoveryReport describes what recovery found in one log.
	RecoveryReport = durable.RecoveryReport

	// Value is a node of the external representation model (§3.3).
	Value = xrep.Value
	// Seq is a sequence value of the external model.
	Seq = xrep.Seq
	// Int is an integer value of the external model.
	Int = xrep.Int
	// Str is a string value of the external model.
	Str = xrep.Str
	// Bool is a boolean value of the external model.
	Bool = xrep.Bool
	// PortName is the global name of a port.
	PortName = xrep.PortName
	// Token is a sealed capability (§2.1).
	Token = xrep.Token
	// Limits carries system-wide type invariants.
	Limits = xrep.Limits
	// Transmittable is the interface of transmittable abstract types.
	Transmittable = xrep.Transmittable
	// Registry holds a node's decode operations.
	Registry = xrep.Registry
	// CallOptions tunes a remote transaction send.
	CallOptions = sendprim.CallOptions

	// AMOCaller issues at-most-once calls over the no-wait send.
	AMOCaller = amo.Caller
	// AMOCallerOptions tunes an AMOCaller.
	AMOCallerOptions = amo.CallerOptions
	// AMOBackoff is the capped exponential backoff + jitter policy.
	AMOBackoff = amo.BackoffPolicy
	// AMODedup is the server-side duplicate filter with cached replies.
	AMODedup = amo.Dedup
	// AMODedupOptions tunes an AMODedup.
	AMODedupOptions = amo.DedupOptions
	// AMORequest is a deduplicated request handed to a handler.
	AMORequest = amo.Request
	// AMOReply is the decoded reply of an at-most-once call.
	AMOReply = amo.Reply
	// AMOHealth tracks watchdog liveness events as a circuit breaker.
	AMOHealth = amo.Health

	// ReplicaStore replicates a durable Store across a member group (§12).
	ReplicaStore = replica.Store
	// ReplicaConfig names the group, its members, and the ack mode.
	ReplicaConfig = replica.Config
	// ReplicaMode selects quorum-gated or asynchronous replication acks.
	ReplicaMode = replica.Mode
	// ReplicaStats counts shipped/applied records, elections, takeovers.
	ReplicaStats = replica.Stats
	// ReplicaHooks expose the replication windows to fault injection.
	ReplicaHooks = replica.Hooks

	// DSTOptions configures one deterministic simulation run.
	DSTOptions = dst.Options
	// DSTProfile is a named fault-injection profile.
	DSTProfile = dst.Profile
	// DSTReport is one run's verdict: violations, counters, schedule.
	DSTReport = dst.Report
	// DSTEvent is one scheduled fault (crash/restart/partition/heal).
	DSTEvent = dst.Event
	// DSTViolation is one invariant breach found by a checker.
	DSTViolation = dst.Violation
	// DSTTopology shapes a run as many independent guardian groups.
	DSTTopology = dst.Topology
	// DSTSweepOptions configures a parallel multi-seed sweep.
	DSTSweepOptions = dst.SweepOptions
	// DSTSweepResult aggregates a sweep's verdicts, timing, and repros.
	DSTSweepResult = dst.SweepResult
)

// Constructors and helpers.
var (
	// NewWorld creates an empty world.
	NewWorld = guardian.NewWorld
	// NewPortType starts a port type description.
	NewPortType = guardian.NewPortType
	// NewReceiver starts a receive statement over ports.
	NewReceiver = guardian.NewReceiver
	// NewACL returns an empty (deny-all) access control list.
	NewACL = guardian.NewACL
	// PrimordialPort names a node's primordial guardian port.
	PrimordialPort = guardian.PrimordialPort
	// NewRegistry returns an empty decode registry.
	NewRegistry = xrep.NewRegistry
	// Encode converts a Go value to the external value model.
	Encode = xrep.Encode
	// SyncSend is the synchronization send built on the no-wait send.
	SyncSend = sendprim.SyncSend
	// Call is the remote transaction send built on the no-wait send.
	Call = sendprim.Call
	// Acknowledge completes the receiving half of a synchronization send.
	Acknowledge = sendprim.Acknowledge
	// NewAMOCaller creates an at-most-once caller for a driver process.
	NewAMOCaller = amo.NewCaller
	// NewAMODedup creates a server-side at-most-once filter.
	NewAMODedup = amo.NewDedup
	// NewAMOHealth creates a watchdog-fed circuit breaker.
	NewAMOHealth = amo.NewHealth
	// AMOReqType is the port type a guardian provides to accept amo calls.
	AMOReqType = amo.ReqType
	// AMOErrTimeout: the retry budget was exhausted without a reply.
	AMOErrTimeout = amo.ErrTimeout
	// AMOErrCircuitOpen: the target node is reported down; failed fast.
	AMOErrCircuitOpen = amo.ErrCircuitOpen
	// AMOErrFailed: the runtime returned a failure message for the call.
	AMOErrFailed = amo.ErrFailed
	// AMOErrBusy: a Caller carries one call at a time.
	AMOErrBusy = amo.ErrBusy
	// OpenWAL opens (or recovers) an on-disk write-ahead log store.
	OpenWAL = durable.OpenWAL
	// NewSimStore adapts a simulated disk to the Store seam.
	NewSimStore = durable.NewSim
	// NewSimDiskStore builds the default simulated Store on a clock.
	NewSimDiskStore = durable.NewSimDisk
	// WrapStore composes a seeded storage-fault model around any Store.
	WrapStore = durable.Wrap
	// NewUDPTransport creates a real-socket transport for a world.
	NewUDPTransport = transport.NewUDP
	// NewTCPTransport creates a stream transport: framed persistent
	// connections with heartbeats, reconnect, and multiplexing.
	NewTCPTransport = transport.NewTCP
	// NewSimTransport adapts a simulator network to the Transport seam.
	NewSimTransport = transport.NewSim
	// WrapTransport composes a fault model around any transport.
	WrapTransport = transport.Wrap
	// NewRealClock returns the wall clock.
	NewRealClock = vtime.NewReal
	// NewSimClock returns a deterministic simulated clock.
	NewSimClock = vtime.NewSim
	// NewRingTracer creates a bounded event tracer.
	NewRingTracer = guardian.NewRingTracer
	// NewReplicaStore wraps a durable Store in primary/backup replication.
	NewReplicaStore = replica.NewStore
	// ReplicaDef is the replicator guardian every member bootstraps first.
	ReplicaDef = replica.Def
	// ReplicaPortAt names a member's replicator control port a priori.
	ReplicaPortAt = replica.PortAt
	// DSTRun executes one seeded simulation and checks its invariants.
	DSTRun = dst.Run
	// DSTSchedule derives the fault schedule a seed will execute.
	DSTSchedule = dst.Schedule
	// DSTShrink minimizes a failing run's fault schedule.
	DSTShrink = dst.Shrink
	// DSTProfiles lists the built-in fault profiles.
	DSTProfiles = dst.Profiles
	// DSTProfileByName resolves a fault profile by name.
	DSTProfileByName = dst.ProfileByName
	// DSTSweep runs many seeds in parallel, each fully isolated.
	DSTSweep = dst.Sweep
	// DSTCombinedProfile composes network, crash, and storage faults.
	DSTCombinedProfile = dst.CombinedProfile
	// DSTForkHealProfile forces a replication fork and its heal window.
	DSTForkHealProfile = dst.ForkHealProfile
)

// Receive statuses.
const (
	// RecvOK: a message was removed from a port.
	RecvOK = guardian.RecvOK
	// RecvTimeout: the timeout arm was selected.
	RecvTimeout = guardian.RecvTimeout
	// RecvKilled: the guardian died while waiting.
	RecvKilled = guardian.RecvKilled
	// Infinite waits forever in Receive.
	Infinite = guardian.Infinite
	// FailureCommand is the implicit system failure message.
	FailureCommand = guardian.FailureCommand
	// AMOReqCommand is the envelope command of at-most-once requests.
	AMOReqCommand = amo.ReqCommand
	// DSTBugDisableDedup injects the known dedup-off bug as a harness check.
	DSTBugDisableDedup = dst.BugDisableDedup
	// AnyKind is the wildcard argument kind in message specs.
	AnyKind = guardian.AnyKind
	// ReplicaModeQuorum gates each ack on majority durability.
	ReplicaModeQuorum = replica.ModeQuorum
	// ReplicaModeAsync ships replication behind local acks.
	ReplicaModeAsync = replica.ModeAsync
	// ReplicaDefName is the replicator guardian every member bootstraps.
	ReplicaDefName = replica.DefName
	// DefaultTCPMaxFrame is a TCPTransport's default frame-size bound.
	DefaultTCPMaxFrame = transport.DefaultTCPMaxFrame
)

// Value kinds for port type declarations.
const (
	KindNull     = xrep.KindNull
	KindBool     = xrep.KindBool
	KindInt      = xrep.KindInt
	KindReal     = xrep.KindReal
	KindString   = xrep.KindString
	KindBytes    = xrep.KindBytes
	KindSeq      = xrep.KindSeq
	KindRec      = xrep.KindRec
	KindPortName = xrep.KindPortName
	KindToken    = xrep.KindToken
)
