package repro_test

import (
	"fmt"
	"time"

	"repro"
)

// Example shows the complete shape of a program built on the paper's
// primitives: a guardian definition in the library, an instance created at
// a node, and a driver exchanging typed messages with it.
func Example() {
	w := repro.NewWorld(repro.Config{})

	greeter := repro.NewPortType("greeter_port").
		Msg("greet", repro.KindString).
		Replies("greet", "greeting")

	w.MustRegister(&repro.GuardianDef{
		TypeName: "greeter",
		Provides: []*repro.PortType{greeter},
		Init: func(ctx *repro.Ctx) {
			repro.NewReceiver(ctx.Ports[0]).
				When("greet", func(pr *repro.Process, m *repro.Message) {
					if !m.ReplyTo.IsZero() {
						_ = pr.Send(m.ReplyTo, "greeting", "hello, "+m.Str(0))
					}
				}).
				// The receive statement's implicit failure arm (§3.4):
				// discarded messages naming this port as replyto report
				// here. Dropping them is a decision, not an accident.
				WhenFailure(func(_ *repro.Process, _ string, _ *repro.Message) {}).
				Loop(ctx.Proc, nil)
		},
	})

	alpha := w.MustAddNode("alpha")
	created, err := alpha.Bootstrap("greeter")
	if err != nil {
		fmt.Println(err)
		return
	}

	beta := w.MustAddNode("beta")
	g, client, err := beta.NewDriver("client")
	if err != nil {
		fmt.Println(err)
		return
	}
	reply := g.MustNewPort(repro.NewPortType("r").Msg("greeting", repro.KindString), 8)
	_ = client.SendReplyTo(created.Ports[0], reply.Name(), "greet", "world")
	if m, st := client.Receive(5*time.Second, reply); st == repro.RecvOK {
		fmt.Println(m.Str(0))
	}
	// Output: hello, world
}

// ExampleGuardian_Seal shows tokens: sealed capabilities only the issuing
// guardian can interpret.
func ExampleGuardian_Seal() {
	w := repro.NewWorld(repro.Config{})
	n := w.MustAddNode("n")
	issuer, _, err := n.NewDriver("issuer")
	if err != nil {
		fmt.Println(err)
		return
	}
	other, _, err := n.NewDriver("other")
	if err != nil {
		fmt.Println(err)
		return
	}

	token := issuer.Seal([]byte("row 4, seat 2"))
	if _, err := other.Unseal(token); err != nil {
		fmt.Println("other guardian: cannot unseal")
	}
	body, _ := issuer.Unseal(token)
	fmt.Printf("issuer: %s\n", body)
	// Output:
	// other guardian: cannot unseal
	// issuer: row 4, seat 2
}

// ExampleNode_Crash shows the crash/recovery lifecycle: a guardian with a
// Recover process keeps its durable state and its port names.
func ExampleNode_Crash() {
	w := repro.NewWorld(repro.Config{})
	pt := repro.NewPortType("kv").
		Msg("put", repro.KindString).
		Msg("get").Replies("get", "value")

	main := func(ctx *repro.Ctx) {
		log := ctx.G.Log()
		last := ""
		if ctx.Recovering {
			_, recs, _ := log.Recover()
			for _, r := range recs {
				last = string(r.Data)
			}
		}
		repro.NewReceiver(ctx.Ports[0]).
			When("put", func(pr *repro.Process, m *repro.Message) {
				log.AppendSync([]byte(m.Str(0))) // log-then-done: permanence
				last = m.Str(0)
			}).
			When("get", func(pr *repro.Process, m *repro.Message) {
				if !m.ReplyTo.IsZero() {
					_ = pr.Send(m.ReplyTo, "value", last)
				}
			}).
			// §3.4 failure arm: the store's state is already permanent, so
			// a failure report needs no compensation.
			WhenFailure(func(_ *repro.Process, _ string, _ *repro.Message) {}).
			Loop(ctx.Proc, nil)
	}
	w.MustRegister(&repro.GuardianDef{
		TypeName: "kv", Provides: []*repro.PortType{pt},
		Init: main, Recover: main,
	})
	srv := w.MustAddNode("srv")
	created, err := srv.Bootstrap("kv")
	if err != nil {
		fmt.Println(err)
		return
	}
	cli := w.MustAddNode("cli")
	g, drv, err := cli.NewDriver("d")
	if err != nil {
		fmt.Println(err)
		return
	}
	reply := g.MustNewPort(repro.NewPortType("r").Msg("value", repro.KindString), 4)

	_ = drv.Send(created.Ports[0], "put", "durable!")
	// Wait for the put to land before crashing.
	for {
		_ = drv.SendReplyTo(created.Ports[0], reply.Name(), "get")
		if m, st := drv.Receive(time.Second, reply); st == repro.RecvOK && m.Str(0) == "durable!" {
			break
		}
	}
	srv.Crash()
	if err := srv.Restart(); err != nil {
		fmt.Println(err)
		return
	}
	_ = drv.SendReplyTo(created.Ports[0], reply.Name(), "get")
	if m, st := drv.Receive(5*time.Second, reply); st == repro.RecvOK {
		fmt.Println("after recovery:", m.Str(0))
	}
	// Output: after recovery: durable!
}
