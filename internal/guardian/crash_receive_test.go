package guardian

import (
	"testing"
	"time"

	"repro/internal/wire"
	"repro/internal/xrep"
)

// crashLedgerState is the recovered guardian's view of its log.
type crashLedgerState struct {
	replayed int
	values   map[int64]bool
}

// TestCrashDuringReceive kills a guardian mid-dispatch — after the
// handler has forced its record to the log but before it replies — and
// asserts that recovery observes a consistent stable-log prefix:
//
//   - every operation acked before the crash is in the durable log,
//     exactly once (log-then-ack: an ack proves durability);
//   - the operation in flight at the crash, already synced, is present
//     and simply unacked (a durable-but-unacked tail is legal);
//   - operations still queued at the port when the node died are gone
//     entirely — volatile queue loss never corrupts the log;
//   - record sequence numbers are strictly increasing (no torn or
//     reordered tail).
func TestCrashDuringReceive(t *testing.T) {
	const (
		ackedOps  = 100 // fully acknowledged before the crash
		crashOp   = 100 // the op held mid-dispatch when the node dies
		queuedLo  = 101 // queued-behind ops wiped with the port
		queuedHi  = 103
		liveOp    = 200 // post-restart liveness probe
		holdPause = 500 * time.Millisecond
	)
	putType := NewPortType("ledger_port").Msg("put", xrep.KindInt)
	ackType := NewPortType("ledger_ack_port").Msg("ack", xrep.KindInt)

	entered := make(chan struct{}) // closed once crashOp's record is durable
	w := NewWorld(Config{})
	ledgerMain := func(ctx *Ctx) {
		st := &crashLedgerState{values: make(map[int64]bool)}
		log := ctx.G.Log()
		if ctx.Recovering {
			_, recs, _ := log.Recover()
			st.replayed = len(recs)
			for _, r := range recs {
				if v, err := wire.UnmarshalValue(r.Data); err == nil {
					if n, ok := v.(xrep.Int); ok {
						st.values[int64(n)] = true
					}
				}
			}
		}
		ctx.G.SetState(st)
		//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
		NewReceiver(ctx.Ports[0]).
			When("put", func(pr *Process, m *Message) {
				v := m.Int(0)
				data, err := wire.MarshalValue(xrep.Int(v))
				if err != nil {
					t.Errorf("marshal: %v", err)
					return
				}
				log.AppendSync(data) // log-then-ack
				st.values[v] = true
				if v == crashOp {
					close(entered)
					// Hold here, mid-dispatch; the test crashes the node
					// now. Pause returns false when the kill lands.
					if !pr.Pause(holdPause) {
						return
					}
				}
				if !m.ReplyTo.IsZero() {
					_ = pr.Send(m.ReplyTo, "ack", v)
				}
			}).
			Loop(ctx.Proc, nil)
	}
	w.MustRegister(&GuardianDef{
		TypeName:     "crash_ledger",
		Provides:     []*PortType{putType},
		PortCapacity: 1024,
		Init:         ledgerMain,
		Recover:      ledgerMain,
	})
	srv := w.MustAddNode("srv")
	cli := w.MustAddNode("cli")
	created, err := srv.Bootstrap("crash_ledger")
	if err != nil {
		t.Fatal(err)
	}
	g, drv, err := cli.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	reply, err := g.NewPort(ackType, 1024)
	if err != nil {
		t.Fatal(err)
	}
	put := func(v int64) {
		if err := drv.SendReplyTo(created.Ports[0], reply.Name(), "put", v); err != nil {
			t.Fatalf("put %d: %v", v, err)
		}
	}
	awaitAck := func(v int64) {
		t.Helper()
		m, st := drv.Receive(5*time.Second, reply)
		if st != RecvOK || m.Command != "ack" || m.Int(0) != v {
			t.Fatalf("awaiting ack %d: status %v, message %+v", v, st, m)
		}
	}

	// Phase 1: a fully acknowledged prefix.
	for v := int64(0); v < ackedOps; v++ {
		put(v)
		awaitAck(v)
	}

	// Phase 2: crash mid-dispatch. The handler closes entered after the
	// crash op's record is synced, then holds; ops queued behind it die
	// with the port queue.
	put(crashOp)
	<-entered
	for v := int64(queuedLo); v <= queuedHi; v++ {
		put(v)
	}
	time.Sleep(10 * time.Millisecond) // let the queued sends land in the port
	srv.Crash()

	// No ack may arrive for the held or queued ops.
	if m, st := drv.Receive(20*time.Millisecond, reply); st == RecvOK && !m.IsFailure() {
		t.Fatalf("received ack %d for an op that must be unacked", m.Int(0))
	}

	// Phase 3: restart and synchronize on a live round-trip; its ack
	// proves the recovery replay has completed.
	if err := srv.Restart(); err != nil {
		t.Fatal(err)
	}
	put(liveOp)
	awaitAck(liveOp)

	g2, ok := srv.GuardianByID(created.GuardianID)
	if !ok {
		t.Fatalf("guardian %d not recovered", created.GuardianID)
	}
	st, ok := g2.State().(*crashLedgerState)
	if !ok {
		t.Fatalf("recovered state has wrong type %T", g2.State())
	}
	// The recovery replay saw exactly the consistent prefix: the acked
	// ops plus the synced-but-unacked crash op. liveOp was handled after
	// recovery, so it is in values but not in the replayed count.
	if st.replayed != ackedOps+1 {
		t.Fatalf("recovery replayed %d records, want %d (acked prefix + crash op)",
			st.replayed, ackedOps+1)
	}
	for v := int64(0); v <= crashOp; v++ {
		if !st.values[v] {
			t.Fatalf("acked/synced op %d missing after recovery", v)
		}
	}
	for v := int64(queuedLo); v <= queuedHi; v++ {
		if st.values[v] {
			t.Fatalf("queued op %d survived the crash; port queues must be volatile", v)
		}
	}

	// The durable log itself: strictly increasing sequence numbers and no
	// duplicated values — {0..crashOp} ∪ {liveOp}, exactly once each.
	_, recs, _ := g2.Log().Recover()
	if len(recs) != ackedOps+2 {
		t.Fatalf("durable log has %d records, want %d", len(recs), ackedOps+2)
	}
	seen := make(map[int64]int)
	var lastSeq uint64
	for i, r := range recs {
		if i > 0 && r.Seq <= lastSeq {
			t.Fatalf("log sequence not strictly increasing: %d after %d", r.Seq, lastSeq)
		}
		lastSeq = r.Seq
		v, err := wire.UnmarshalValue(r.Data)
		if err != nil {
			t.Fatalf("record %d: %v", r.Seq, err)
		}
		seen[int64(v.(xrep.Int))]++
	}
	for v := int64(0); v <= crashOp; v++ {
		if seen[v] != 1 {
			t.Fatalf("value %d appears %d times in the durable log, want 1", v, seen[v])
		}
	}
	if seen[liveOp] != 1 {
		t.Fatalf("post-restart op %d appears %d times, want 1", liveOp, seen[liveOp])
	}
}
