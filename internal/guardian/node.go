package guardian

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/stable"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/xrep"
)

// Node is a physical node of the underlying distributed system: one or
// more processors (goroutines), memory (guardian state), a crash-surviving
// disk, and a network attachment. Guardians exist entirely at a single
// node for their whole lifetime (§2.1).
type Node struct {
	world *World
	name  string
	store durable.Store
	reg   *xrep.Registry

	msgID atomic.Uint64

	mu        sync.Mutex
	alive     bool
	epoch     uint64
	guardians map[uint64]*Guardian
	nextGID   uint64
	// meta is the node's system catalog: enough information to re-create
	// recoverable guardians after a crash. It models catalog records kept
	// in stable storage, so it survives Crash.
	meta       map[uint64]*guardianMeta
	primordial *Guardian

	// allowCreate is the node's autonomy policy (§1.1): the owner decides
	// which remote principals may create which guardians here. Nil allows
	// everything.
	allowCreate func(srcNode string, srcGuardian uint64, defName string) bool

	reasm     *wire.Reassembler
	lastSweep time.Time
	sweepMu   sync.Mutex
}

// guardianMeta is the catalog record for one guardian.
type guardianMeta struct {
	id      uint64
	defName string
	args    xrep.Seq
	portIDs []uint64
	// logName, when non-empty, overrides the guardian's log name. A
	// guardian taking over a replicated peer's state opens the log the
	// old primary wrote (shipped here record by record) instead of the
	// "<type>-<id>" log its own fresh id would name.
	logName string
}

func newNode(w *World, name string) (*Node, error) {
	var store durable.Store
	if w.cfg.Store != nil {
		s, err := w.cfg.Store(name)
		if err != nil {
			return nil, fmt.Errorf("guardian: opening storage for node %s: %w", name, err)
		}
		store = s
	}
	if store == nil {
		store = durable.NewSim(stable.NewDisk(w.clock, stable.DiskConfig{}))
	}
	return &Node{
		world:     w,
		name:      name,
		store:     store,
		reg:       xrep.NewRegistry(),
		guardians: make(map[uint64]*Guardian),
		meta:      make(map[uint64]*guardianMeta),
		reasm:     wire.NewReassembler(),
	}, nil
}

// Name returns the node's network address.
func (n *Node) Name() string { return n.name }

// World returns the world this node belongs to.
func (n *Node) World() *World { return n.world }

// Store returns the node's crash-surviving storage backend.
func (n *Node) Store() durable.Store { return n.store }

// Disk unwraps the node's storage to the simulated disk, for tests and
// experiments that reach past the seam (fault schedules, direct log
// inspection). It is nil when the node runs on a non-simulated backend
// (e.g. an on-disk WAL); such nodes are inspected through Store.
func (n *Node) Disk() *stable.Disk {
	if s, ok := n.store.(interface{ Disk() *stable.Disk }); ok {
		return s.Disk()
	}
	return nil
}

// Registry returns the node's decode registry for abstract types. Nodes
// may register different representations of the same type (§3.3).
func (n *Node) Registry() *xrep.Registry { return n.reg }

// Alive reports whether the node is up.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// SetCreatePolicy installs the autonomy policy consulted when a remote
// create request arrives at the primordial guardian.
func (n *Node) SetCreatePolicy(f func(srcNode string, srcGuardian uint64, defName string) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.allowCreate = f
}

// start brings the node up for the first time in this process. Attaching
// can fail on a real transport (e.g. the configured UDP port is taken), in
// which case the node never comes up. On a persistent store "first time"
// is relative to the process only: the catalog on disk is replayed so
// guardians created by a previous incarnation recover — the cross-process
// analog of Restart.
func (n *Node) start() error {
	n.mu.Lock()
	n.alive = true
	n.epoch++
	n.mu.Unlock()
	if err := n.world.tr.Attach(transport.Addr(n.name), n.handlePacket); err != nil {
		n.mu.Lock()
		n.alive = false
		n.mu.Unlock()
		return err
	}
	n.spawnPrimordial()
	if n.store.Persistent() {
		if err := n.recoverCatalog(); err != nil {
			n.Crash()
			return fmt.Errorf("guardian: recovering node %s from its catalog: %w", n.name, err)
		}
	}
	return nil
}

// Crash simulates a node failure: every guardian's processes are killed,
// all volatile state (port queues, guardian objects) is lost, and the node
// detaches from the transport — on the simulator its traffic is discarded
// at delivery; on UDP its socket closes and the kernel discards instead.
// The disk survives.
func (n *Node) Crash() {
	n.world.tr.Detach(transport.Addr(n.name))
	n.mu.Lock()
	if !n.alive {
		n.mu.Unlock()
		return
	}
	n.alive = false
	n.world.trace(EvCrash, n.name, "node crashed (%d guardians lost)", len(n.guardians))
	gs := make([]*Guardian, 0, len(n.guardians))
	for _, g := range n.guardians {
		gs = append(gs, g)
	}
	n.guardians = make(map[uint64]*Guardian)
	n.primordial = nil
	n.mu.Unlock()
	for _, g := range gs {
		g.kill()
	}
	n.store.Crash()
}

// Restart brings a crashed node back up. The primordial guardian is
// re-created, and every guardian whose definition provides a Recover
// process is re-created with its original identity and port names; its
// Recover process then interprets the guardian's recovery data (§2.2).
// Guardians without Recover are forgotten, like the paper's transaction
// processes (§3.5).
func (n *Node) Restart() error {
	n.mu.Lock()
	if n.alive {
		n.mu.Unlock()
		return fmt.Errorf("guardian: node %s is already up", n.name)
	}
	n.alive = true
	n.epoch++
	metas := make([]*guardianMeta, 0, len(n.meta))
	for _, m := range n.meta {
		metas = append(metas, m)
	}
	n.mu.Unlock()

	if err := n.world.tr.Attach(transport.Addr(n.name), n.handlePacket); err != nil {
		n.mu.Lock()
		n.alive = false
		n.mu.Unlock()
		return fmt.Errorf("guardian: reattaching node %s: %w", n.name, err)
	}
	n.spawnPrimordial()
	n.world.trace(EvRestart, n.name, "node restarted")

	for _, m := range metas {
		def, err := n.world.lookupDef(m.defName)
		if err != nil {
			// Definition vanished from the library; forget the guardian.
			n.mu.Lock()
			delete(n.meta, m.id)
			n.mu.Unlock()
			continue
		}
		if def.Recover == nil {
			n.mu.Lock()
			delete(n.meta, m.id)
			n.mu.Unlock()
			continue
		}
		if _, err := n.instantiate(def, m.args, m, true); err != nil {
			return fmt.Errorf("guardian: recovering %s/%d: %w", m.defName, m.id, err)
		}
		n.world.stats.GuardiansRecovered.Add(1)
		n.world.trace(EvRecover, n.name, "recovered %s (guardian %d)", m.defName, m.id)
	}
	return nil
}

// Guardians returns the ids of the guardians currently running at the
// node, in no particular order.
func (n *Node) Guardians() []uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]uint64, 0, len(n.guardians))
	for id := range n.guardians {
		out = append(out, id)
	}
	return out
}

// guardianByID returns the running guardian with the given id.
func (n *Node) guardianByID(id uint64) (*Guardian, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, ok := n.guardians[id]
	return g, ok
}

// GuardianByID returns the running guardian with the given id. It is an
// owner-side facility: only software already resident at the node can
// reach it, so it does not breach the guardians' isolation from remote
// parties.
func (n *Node) GuardianByID(id uint64) (*Guardian, bool) {
	return n.guardianByID(id)
}

// instantiate creates (or on recovery, re-creates) a guardian from def.
// meta is nil for fresh creation.
func (n *Node) instantiate(def *GuardianDef, args xrep.Seq, meta *guardianMeta, recovering bool) (*Guardian, error) {
	n.mu.Lock()
	if !n.alive {
		n.mu.Unlock()
		return nil, ErrNodeDown
	}
	var id uint64
	if meta != nil {
		id = meta.id
	} else {
		n.nextGID++
		id = n.nextGID
	}
	g := &Guardian{
		id:     id,
		def:    def,
		node:   n,
		epoch:  n.epoch,
		killCh: make(chan struct{}),
		ports:  make(map[uint64]*Port),
	}
	if meta != nil {
		g.logName = meta.logName
	}
	capacity := def.PortCapacity
	if capacity == 0 {
		capacity = n.world.cfg.DefaultPortCapacity
	}
	ports := make([]*Port, len(def.Provides))
	var portIDs []uint64
	for i, pt := range def.Provides {
		var pid uint64
		if meta != nil {
			pid = meta.portIDs[i]
			if pid >= g.nextPortID {
				g.nextPortID = pid
			}
		} else {
			g.nextPortID++
			pid = g.nextPortID
		}
		p := &Port{
			name:     xrep.PortName{Node: n.name, Guardian: id, Port: pid},
			ptype:    pt,
			guardian: g,
			capacity: capacity,
		}
		g.ports[pid] = p
		ports[i] = p
		portIDs = append(portIDs, pid)
	}
	g.providedIDs = portIDs
	n.guardians[id] = g
	fresh := meta == nil
	if fresh {
		meta = &guardianMeta{id: id, defName: def.TypeName, args: args, portIDs: portIDs}
		n.meta[id] = meta
	}
	n.mu.Unlock()

	// Creation must reach stable storage before the guardian's Init runs:
	// if the guardian took effect (sent messages, acknowledged calls) and
	// the process then died with the catalog record still volatile,
	// recovery would have no idea the guardian ever existed.
	if fresh && n.store.Persistent() {
		n.catalogCreate(meta)
	}

	n.world.stats.GuardiansCreated.Add(1)
	if !recovering {
		n.world.trace(EvCreate, n.name, "created %s (guardian %d)", def.TypeName, id)
	}
	ctx := &Ctx{G: g, Ports: ports, Args: args, Recovering: recovering}
	entry := def.Init
	procName := "main"
	if recovering {
		entry = def.Recover
		procName = "recover"
	}
	g.Spawn(procName, func(p *Process) {
		ctx.Proc = p
		entry(ctx)
	})
	return g, nil
}

// Takeover re-creates a replicated guardian from a peer's shipped log: a
// fresh guardian of defName is created under a NEW identity (ids are
// never reused, and the old primary's id belongs to its node), but its
// recovery log is logName — the log the old primary wrote, replicated
// into this node's store record by record. The definition's Recover
// process runs exactly as after a crash, so the guardian resumes from
// the last state the replication stream confirmed. Like Bootstrap it is
// an owner-side action and bypasses the create policy.
func (n *Node) Takeover(defName, logName string, args ...any) (*Created, error) {
	def, err := n.world.lookupDef(defName)
	if err != nil {
		return nil, err
	}
	if def.Recover == nil {
		return nil, fmt.Errorf("guardian: takeover of %s: definition has no Recover process", defName)
	}
	enc, err := xrep.EncodeAll(args...)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if !n.alive {
		n.mu.Unlock()
		return nil, ErrNodeDown
	}
	n.nextGID++
	id := n.nextGID
	portIDs := make([]uint64, len(def.Provides))
	for i := range portIDs {
		portIDs[i] = uint64(i + 1)
	}
	m := &guardianMeta{id: id, defName: defName, args: enc, portIDs: portIDs, logName: logName}
	n.meta[id] = m
	n.mu.Unlock()
	if n.store.Persistent() {
		n.catalogCreate(m)
	}
	g, err := n.instantiate(def, enc, m, true)
	if err != nil {
		return nil, err
	}
	created := &Created{GuardianID: g.id}
	g.mu.Lock()
	for _, pid := range portIDs {
		created.Ports = append(created.Ports, g.ports[pid].name)
	}
	g.mu.Unlock()
	n.world.trace(EvRecover, n.name, "takeover: %s (guardian %d) resumes log %q", defName, id, logName)
	return created, nil
}

// handlePacket is the node's network attachment: reassemble, verify,
// dispatch. Runs on the transport's delivery (or socket receive-loop)
// goroutines. from is the transport-level source — the logical node name
// on the simulator, an observed "ip:port" on UDP — used only to key
// fragment reassembly; everything else comes from the frame.
func (n *Node) handlePacket(from transport.Addr, payload []byte) {
	if !n.Alive() {
		return
	}
	now := n.world.clock.Now()
	n.sweepMu.Lock()
	if now.Sub(n.lastSweep) > n.world.cfg.ReassemblyAge {
		n.lastSweep = now
		n.reasm.Sweep(now, n.world.cfg.ReassemblyAge)
	}
	n.sweepMu.Unlock()

	frameBytes, err := n.reasm.Add(string(from), payload, now)
	if err != nil {
		n.world.stats.DiscardBadFrame.Add(1)
		return
	}
	if frameBytes == nil {
		return // waiting for more fragments
	}
	f, err := wire.UnmarshalFrame(frameBytes)
	if err != nil {
		n.world.stats.DiscardBadFrame.Add(1)
		return
	}
	// A verified frame names its sender; teach the transport where that
	// name was observed so replies route without static configuration.
	n.world.tr.Learn(transport.Addr(f.SrcNode), from)
	n.dispatchFrame(f)
}

// dispatchFrame routes a complete, verified frame to its target port,
// producing the §3.4 failure replies when the message must be thrown away.
func (n *Node) dispatchFrame(f *wire.Frame) {
	st := &n.world.stats
	g, ok := n.guardianByID(f.Dest.Guardian)
	if !ok {
		st.DiscardNoGuardian.Add(1)
		n.world.trace(EvDiscard, n.name, "%s(..) from %s: no guardian %d", f.Command, f.SrcNode, f.Dest.Guardian)
		n.failureReply(f, "target guardian doesn't exist")
		return
	}
	g.mu.Lock()
	p, ok := g.ports[f.Dest.Port]
	g.mu.Unlock()
	if !ok {
		st.DiscardNoPort.Add(1)
		n.world.trace(EvDiscard, n.name, "%s(..) from %s: no port %d on guardian %d", f.Command, f.SrcNode, f.Dest.Port, f.Dest.Guardian)
		n.failureReply(f, "target port doesn't exist")
		return
	}
	if err := p.ptype.check(f.Command, f.Args); err != nil {
		st.DiscardBadType.Add(1)
		n.world.trace(EvDiscard, n.name, "%s(..) from %s: type mismatch", f.Command, f.SrcNode)
		n.failureReply(f, "message rejected: "+err.Error())
		return
	}
	m := &Message{
		Command:     f.Command,
		Args:        f.Args,
		ReplyTo:     f.ReplyTo,
		SrcNode:     f.SrcNode,
		SrcGuardian: f.SrcGuardian,
		Via:         p,
	}
	if !p.deliver(m) {
		st.DiscardPortFull.Add(1)
		n.world.trace(EvDiscard, n.name, "%s(..) from %s: port %d full", f.Command, f.SrcNode, f.Dest.Port)
		n.failureReply(f, "no room for message at target port")
		return
	}
	st.MessagesDelivered.Add(1)
	n.world.trace(EvDeliver, n.name, "%s(..) from %s/%d to guardian %d port %d",
		f.Command, f.SrcNode, f.SrcGuardian, f.Dest.Guardian, f.Dest.Port)
}

// failureReply sends the system failure message to a discarded message's
// replyto port, if it had one. Failure messages themselves never generate
// further failures, so no loops arise.
func (n *Node) failureReply(f *wire.Frame, text string) {
	if f.ReplyTo.IsZero() || f.Command == FailureCommand {
		return
	}
	n.world.stats.FailuresSent.Add(1)
	n.world.trace(EvFailure, n.name, "failure(%q) to %s", text, f.ReplyTo.Node)
	reply := &wire.Frame{
		Dest:        f.ReplyTo,
		SrcNode:     n.name,
		SrcGuardian: 0, // the system
		MsgID:       n.msgID.Add(1),
		Command:     FailureCommand,
		Args:        xrep.Seq{xrep.Str(text)},
	}
	n.routeFrame(reply)
}

// routeFrame marshals, fragments and transmits a frame toward its
// destination node. Local destinations bypass the network but keep the
// marshal/unmarshal round trip, preserving value-copy semantics while
// making intra-node communication cheap (§2.1).
func (n *Node) routeFrame(f *wire.Frame) error {
	raw, err := f.Marshal()
	if err != nil {
		return err
	}
	if f.Dest.Node == n.name {
		if !n.Alive() {
			return ErrNodeDown
		}
		go func() {
			f2, err := wire.UnmarshalFrame(raw)
			if err != nil {
				n.world.stats.DiscardBadFrame.Add(1)
				return
			}
			if !n.Alive() {
				return
			}
			n.dispatchFrame(f2)
		}()
		return nil
	}
	pkts, err := wire.Fragment(f.MsgID, raw, n.world.cfg.FragmentMTU)
	if err != nil {
		return err
	}
	for _, pkt := range pkts {
		// Best-effort: transport errors below MTU level mean the node is
		// detached; the message is simply lost, as the paper allows.
		if err := n.world.tr.Send(transport.Addr(n.name), transport.Addr(f.Dest.Node), pkt); err != nil {
			return nil
		}
	}
	return nil
}
