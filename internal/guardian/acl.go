package guardian

import "sync"

// ACL is the "access control list mechanism" the paper's airline guardian
// uses to check "that the requester has the right to request the access"
// (§2.3). Principals are (node, guardian-id) pairs — the provenance the
// runtime stamps on every message.
type ACL struct {
	mu sync.RWMutex
	// rules maps command -> allowed principals. The zero-value principal
	// with AnyPrincipal set allows everyone.
	rules  map[string]map[Principal]bool
	anyCmd map[string]bool // commands open to all principals
}

// Principal identifies a requester.
type Principal struct {
	Node     string
	Guardian uint64
}

// PrincipalOf extracts the requesting principal from a message.
func PrincipalOf(m *Message) Principal {
	return Principal{Node: m.SrcNode, Guardian: m.SrcGuardian}
}

// NewACL returns an empty ACL (which denies everything).
func NewACL() *ACL {
	return &ACL{
		rules:  make(map[string]map[Principal]bool),
		anyCmd: make(map[string]bool),
	}
}

// Allow grants principal the right to issue command.
func (a *ACL) Allow(p Principal, command string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.rules[command]
	if !ok {
		m = make(map[Principal]bool)
		a.rules[command] = m
	}
	m[p] = true
}

// AllowAll opens command to every principal.
func (a *ACL) AllowAll(command string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.anyCmd[command] = true
}

// Revoke removes principal's right to command.
func (a *ACL) Revoke(p Principal, command string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if m, ok := a.rules[command]; ok {
		delete(m, p)
	}
}

// Permits reports whether principal may issue command.
func (a *ACL) Permits(p Principal, command string) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.anyCmd[command] {
		return true
	}
	return a.rules[command][p]
}

// PermitsMessage checks the message's stamped principal against its
// command.
func (a *ACL) PermitsMessage(m *Message) bool {
	return a.Permits(PrincipalOf(m), m.Command)
}
