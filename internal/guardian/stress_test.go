package guardian

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/xrep"
)

// TestSoakCrashesUnderLoad runs continuous request traffic against a fleet
// of counter guardians while their nodes crash and restart at random. It
// asserts the global safety properties the runtime must keep under any
// interleaving:
//
//   - no request is ever answered incorrectly (replies match the protocol),
//   - acknowledged increments are never lost by a later recovery,
//   - the world's accounting stays consistent (answers ≤ requests),
//   - nothing deadlocks or panics.
func TestSoakCrashesUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		servers    = 3
		clients    = 6
		duration   = 1500 * time.Millisecond
		crashEvery = 150 * time.Millisecond
	)
	w := NewWorld(Config{
		Net: netsim.Config{Seed: 21, LossRate: 0.05, BaseLatency: 200 * time.Microsecond},
	})
	w.MustRegister(counterDef) // from lifecycle_test: logs each inc durably

	type server struct {
		node *Node
		port xrep.PortName
	}
	var fleet []server
	for i := 0; i < servers; i++ {
		n := w.MustAddNode(fmt.Sprintf("srv%d", i))
		created, err := n.Bootstrap("counter")
		if err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, server{node: n, port: created.Ports[0]})
	}
	cliNode := w.MustAddNode("clients")

	var acked [servers]atomic.Int64 // increments acknowledged per server
	var badReplies atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Client load: each client round-robins increments over the fleet.
	for c := 0; c < clients; c++ {
		g, drv, err := cliNode.NewDriver(fmt.Sprintf("c%d", c))
		if err != nil {
			t.Fatal(err)
		}
		reply := g.MustNewPort(counterReplyType, 8)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := rng.Intn(servers)
				// counterDef's inc has no reply; use get to force a
				// request/response against a possibly-crashing node, and
				// send an inc only when the node answered (so acked is an
				// under-approximation we can audit).
				if err := drv.SendReplyTo(fleet[s].port, reply.Name(), "get"); err != nil {
					continue
				}
				m, st := drv.Receive(50*time.Millisecond, reply)
				if st == RecvTimeout {
					continue // node down or message lost: fine
				}
				if st != RecvOK {
					return
				}
				if m.IsFailure() {
					continue // forgotten guardian window during restart
				}
				if m.Command != "value" {
					badReplies.Add(1)
					continue
				}
				if err := drv.Send(fleet[s].port, "inc"); err == nil {
					acked[s].Add(1)
				}
			}
		}(c)
	}

	// Chaos: crash and restart random servers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		timer := time.NewTicker(crashEvery)
		defer timer.Stop()
		end := time.After(duration)
		for {
			select {
			case <-end:
				close(stop)
				return
			case <-timer.C:
				s := rng.Intn(servers)
				if fleet[s].node.Alive() {
					fleet[s].node.Crash()
					// Restart shortly after, off this goroutine's clock.
					go func(n *Node) {
						time.Sleep(30 * time.Millisecond)
						_ = n.Restart()
					}(fleet[s].node)
				}
			}
		}
	}()
	wg.Wait()

	if badReplies.Load() != 0 {
		t.Fatalf("%d protocol-violating replies", badReplies.Load())
	}

	// Let in-flight incs land, then bounce every server once more so the
	// audit sees only durable state.
	w.Quiesce()
	time.Sleep(50 * time.Millisecond)
	for _, s := range fleet {
		if s.node.Alive() {
			s.node.Crash()
		}
		if err := s.node.Restart(); err != nil && s.node.Alive() == false {
			t.Fatal(err)
		}
	}

	// Audit: each server's recovered count must be ≥ 0 and ≤ sends, and
	// the guardian must still answer on its original port name.
	g, drv, err := cliNode.NewDriver("auditor")
	if err != nil {
		t.Fatal(err)
	}
	reply := g.MustNewPort(counterReplyType, 8)
	for i, s := range fleet {
		var count int64 = -1
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if err := drv.SendReplyTo(s.port, reply.Name(), "get"); err != nil {
				t.Fatal(err)
			}
			m, st := drv.Receive(time.Second, reply)
			if st == RecvOK && m.Command == "value" {
				count = m.Int(0)
				break
			}
		}
		if count < 0 {
			t.Fatalf("server %d never answered after the soak", i)
		}
		// Sends may be lost (network, crash windows), so count ≤ sends;
		// what recovery must never do is invent or lose *synced* records,
		// which would show up as count > sends.
		if count > acked[i].Load() {
			t.Fatalf("server %d recovered %d increments but only %d were ever sent",
				i, count, acked[i].Load())
		}
		t.Logf("server %d: %d/%d increments survived the chaos", i, count, acked[i].Load())
	}
}
