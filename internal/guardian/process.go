package guardian

import (
	"time"

	"repro/internal/wire"
	"repro/internal/xrep"
)

// Process is the execution of a sequential program within a guardian.
// Processes are anonymous providers of activity: messages are never
// addressed to them, only to their guardian's ports.
type Process struct {
	g    *Guardian
	name string
}

// Guardian returns the process's guardian.
func (pr *Process) Guardian() *Guardian { return pr.g }

// Name returns the process's debug name.
func (pr *Process) Name() string { return pr.name }

// Killed returns the guardian's kill channel.
func (pr *Process) Killed() <-chan struct{} { return pr.g.killCh }

// Infinite is the Receive timeout meaning "wait forever".
const Infinite time.Duration = -1

// RecvStatus reports how a Receive ended.
type RecvStatus int

// Receive outcomes.
const (
	// RecvOK: a message was removed from one of the ports.
	RecvOK RecvStatus = iota
	// RecvTimeout: the timeout arm was selected.
	RecvTimeout
	// RecvKilled: the guardian died while waiting.
	RecvKilled
)

// String returns the status name.
func (s RecvStatus) String() string {
	switch s {
	case RecvOK:
		return "ok"
	case RecvTimeout:
		return "timeout"
	case RecvKilled:
		return "killed"
	default:
		return "unknown"
	}
}

// Send is the no-wait send (§3): the arguments are encoded left to right,
// the message is constructed, and transmission begins; the sender
// continues as soon as future actions cannot affect the transmitted
// values. Only local problems are reported — an encode exception, a
// violated system-wide type bound, or a dead sending guardian. Delivery
// itself is best-effort and unordered.
func (pr *Process) Send(to xrep.PortName, command string, args ...any) error {
	return pr.send(to, xrep.PortName{}, nil, command, args...)
}

// SendReplyTo is Send with a replyto port, "used to convey where to send a
// response if one is required". The reply port may belong to a different
// guardian than the sending process.
func (pr *Process) SendReplyTo(to xrep.PortName, replyTo xrep.PortName, command string, args ...any) error {
	return pr.send(to, replyTo, nil, command, args...)
}

// SendChecked is Send with the sender-side half of compile-time message
// checking: the caller names the destination's port type (from the
// library), and the command and argument kinds are verified before the
// message leaves. This is the library-level analog of CLU's compile-time
// check against guardian headers.
func (pr *Process) SendChecked(pt *PortType, to xrep.PortName, command string, args ...any) error {
	return pr.send(to, xrep.PortName{}, pt, command, args...)
}

// SendCheckedReplyTo combines SendChecked and SendReplyTo.
func (pr *Process) SendCheckedReplyTo(pt *PortType, to, replyTo xrep.PortName, command string, args ...any) error {
	return pr.send(to, replyTo, pt, command, args...)
}

func (pr *Process) send(to, replyTo xrep.PortName, pt *PortType, command string, args ...any) error {
	if !pr.g.Alive() {
		return ErrKilled
	}
	// §3.4 step 1: encode arguments left to right; an encode exception
	// terminates the send.
	enc, err := xrep.EncodeAll(args...)
	if err != nil {
		return err
	}
	limits := pr.g.node.world.cfg.Limits
	if err := limits.Validate(enc); err != nil {
		return err
	}
	if pt != nil {
		if err := pt.check(command, enc); err != nil {
			return err
		}
	}
	f := &wire.Frame{
		Dest:        to,
		SrcNode:     pr.g.node.name,
		SrcGuardian: pr.g.id,
		MsgID:       pr.g.node.msgID.Add(1),
		Command:     command,
		Args:        enc,
		ReplyTo:     replyTo,
	}
	// §3.4 steps 2 and 3: construct the message and transmit. The process
	// continues once the frame is built; delivery is the system's
	// best-effort job.
	if err := pr.g.node.routeFrame(f); err != nil {
		return err
	}
	pr.g.node.world.stats.MessagesSent.Add(1)
	pr.g.node.world.trace(EvSend, pr.g.node.name, "%s(..) guardian %d -> %s/%d/%d",
		command, pr.g.id, to.Node, to.Guardian, to.Port)
	return nil
}

// Receive implements the paper's receive statement's selection rule: if
// messages have already arrived at ports in the list, one is removed, with
// earlier ports given priority; otherwise the process waits for an arrival
// or times out, whichever happens first.
//
// timeout Infinite waits forever; timeout 0 polls. A RecvKilled status
// means the guardian died while the process waited.
func (pr *Process) Receive(timeout time.Duration, ports ...*Port) (*Message, RecvStatus) {
	for _, p := range ports {
		if p.guardian != pr.g {
			panic("guardian: receive on another guardian's port")
		}
	}
	if !pr.g.Alive() {
		return nil, RecvKilled
	}
	// Fast path: a queued message on the highest-priority nonempty port.
	for _, p := range ports {
		if m := p.tryDequeue(); m != nil {
			return m, RecvOK
		}
	}
	if timeout == 0 {
		return nil, RecvTimeout
	}

	w := &waiter{ch: make(chan *Message, 1)}
	for _, p := range ports {
		p.addWaiter(w)
	}
	defer func() {
		for _, p := range ports {
			p.removeWaiter(w)
		}
	}()
	// Re-scan after registering: a message delivered between the fast-path
	// scan and addWaiter saw no waiters and went to the buffer, where it
	// would sit for the full timeout while this process sleeps. Claiming
	// our own waiter closes the window; if a deliver claimed it first, the
	// select below completes immediately from w.ch.
	for _, p := range ports {
		if m := p.claimQueued(w); m != nil {
			return m, RecvOK
		}
	}

	var timeoutC <-chan time.Time
	if timeout > 0 {
		t := pr.g.node.world.clock.NewTimer(timeout)
		defer t.Stop()
		timeoutC = t.C()
	}

	select {
	case m := <-w.ch:
		return m, RecvOK
	case <-timeoutC:
		if w.claimed.CompareAndSwap(false, true) {
			return nil, RecvTimeout
		}
		// A port won the race just as the timer fired; take the message.
		return <-w.ch, RecvOK
	case <-pr.g.killCh:
		if w.claimed.CompareAndSwap(false, true) {
			return nil, RecvKilled
		}
		return <-w.ch, RecvOK
	}
}

// Pause sleeps on the world clock, returning early (false) if the
// guardian is killed.
func (pr *Process) Pause(d time.Duration) bool {
	t := pr.g.node.world.clock.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C():
		return true
	case <-pr.g.killCh:
		return false
	}
}
