package guardian

import (
	"testing"
	"time"

	"repro/internal/xrep"
)

func TestTokenSealUnseal(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	g, _, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	tok := g.Seal([]byte("flight-22-row-4"))
	body, err := g.Unseal(tok)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "flight-22-row-4" {
		t.Fatalf("unsealed %q", body)
	}
}

func TestTokenOnlyIssuerUnseals(t *testing.T) {
	_, a, b := newWorld(t, Config{})
	g1, _, err := a.NewDriver("d1")
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := b.NewDriver("d2")
	if err != nil {
		t.Fatal(err)
	}
	tok := g1.Seal([]byte("secret"))
	if _, err := g2.Unseal(tok); err == nil {
		t.Fatal("non-issuer unsealed a token")
	}
}

func TestTokenTamperDetected(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	g, _, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	tok := g.Seal([]byte("object-17"))
	tok.Body[0] ^= 0xFF
	if _, err := g.Unseal(tok); err == nil {
		t.Fatal("tampered token unsealed")
	}
	tok2 := g.Seal([]byte("object-17"))
	tok2.Seal[3] ^= 0x01
	if _, err := g.Unseal(tok2); err == nil {
		t.Fatal("token with forged seal unsealed")
	}
}

func TestTokenForgedIssuerRejected(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	g1, _, err := a.NewDriver("d1")
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := a.NewDriver("d2")
	if err != nil {
		t.Fatal(err)
	}
	tok := g1.Seal([]byte("x"))
	tok.Issuer = g2.ID() // claim another issuer
	if _, err := g2.Unseal(tok); err == nil {
		t.Fatal("token with forged issuer id unsealed")
	}
}

func TestTokenSurvivesRoundTripThroughMessage(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	// tokensvc seals a name and returns the token; presenting the token
	// back retrieves the name.
	svcType := NewPortType("tok_port").
		Msg("make", xrep.KindString).Replies("make", "token").
		Msg("open", xrep.KindToken).Replies("open", "opened", FailureCommand)
	cliType := NewPortType("tok_cli_port").
		Msg("token", xrep.KindToken).
		Msg("opened", xrep.KindString)
	w.MustRegister(&GuardianDef{
		TypeName: "tokensvc",
		Provides: []*PortType{svcType},
		Init: func(ctx *Ctx) {
			//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
			NewReceiver(ctx.Ports[0]).
				When("make", func(pr *Process, m *Message) {
					tok := ctx.G.Seal([]byte(m.Str(0)))
					_ = pr.Send(m.ReplyTo, "token", tok)
				}).
				When("open", func(pr *Process, m *Message) {
					body, err := ctx.G.Unseal(m.Token(0))
					if err != nil {
						_ = pr.Send(m.ReplyTo, FailureCommand, "bad token")
						return
					}
					_ = pr.Send(m.ReplyTo, "opened", string(body))
				}).
				Loop(ctx.Proc, nil)
		},
	})
	created, err := a.Bootstrap("tokensvc")
	if err != nil {
		t.Fatal(err)
	}
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	reply := drv.Guardian().MustNewPort(cliType, 4)
	if err := drv.SendReplyTo(created.Ports[0], reply.Name(), "make", "doc-9"); err != nil {
		t.Fatal(err)
	}
	m, st := drv.Receive(2*time.Second, reply)
	if st != RecvOK || m.Command != "token" {
		t.Fatalf("make: %v %v", st, m)
	}
	tok := m.Token(0)
	// The holder cannot unseal it...
	if _, err := drv.Guardian().Unseal(tok); err == nil {
		t.Fatal("holder unsealed a foreign token")
	}
	// ...but presenting it back to the issuer works.
	if err := drv.SendReplyTo(created.Ports[0], reply.Name(), "open", tok); err != nil {
		t.Fatal(err)
	}
	m, st = drv.Receive(2*time.Second, reply)
	if st != RecvOK || m.Command != "opened" || m.Str(0) != "doc-9" {
		t.Fatalf("open: %v %v", st, m)
	}
}

func TestACLDenyByDefault(t *testing.T) {
	acl := NewACL()
	p := Principal{Node: "n", Guardian: 2}
	if acl.Permits(p, "reserve") {
		t.Fatal("empty ACL permitted a request")
	}
}

func TestACLAllowRevoke(t *testing.T) {
	acl := NewACL()
	p := Principal{Node: "n", Guardian: 2}
	acl.Allow(p, "reserve")
	if !acl.Permits(p, "reserve") {
		t.Fatal("allowed principal denied")
	}
	if acl.Permits(p, "list_passengers") {
		t.Fatal("grant leaked to another command")
	}
	if acl.Permits(Principal{Node: "n", Guardian: 3}, "reserve") {
		t.Fatal("grant leaked to another principal")
	}
	acl.Revoke(p, "reserve")
	if acl.Permits(p, "reserve") {
		t.Fatal("revoked principal still permitted")
	}
}

func TestACLAllowAll(t *testing.T) {
	acl := NewACL()
	acl.AllowAll("reserve")
	if !acl.Permits(Principal{Node: "any", Guardian: 77}, "reserve") {
		t.Fatal("AllowAll did not permit")
	}
}

func TestACLPermitsMessage(t *testing.T) {
	acl := NewACL()
	acl.Allow(Principal{Node: "beta", Guardian: 4}, "cancel")
	m := &Message{Command: "cancel", SrcNode: "beta", SrcGuardian: 4}
	if !acl.PermitsMessage(m) {
		t.Fatal("message from allowed principal denied")
	}
	m.SrcGuardian = 5
	if acl.PermitsMessage(m) {
		t.Fatal("message from other principal permitted")
	}
}

func TestReceiverWhenUnknownCommandPanics(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	g, _, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	p := g.MustNewPort(echoReplyType, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("When for undeclared command did not panic")
		}
	}()
	//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
	NewReceiver(p).When("undeclared", func(*Process, *Message) {})
}

func TestReceiverMissingArmPanicsAtRun(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	g, drv, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	p := g.MustNewPort(echoType, 4) // declares echo and shutdown
	//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
	r := NewReceiver(p).When("echo", func(*Process, *Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("receive with uncovered command did not panic")
		}
	}()
	r.RunOnce(drv)
}

func TestReceiverDuplicateArmPanics(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	g, _, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	p := g.MustNewPort(echoReplyType, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate arm did not panic")
		}
	}()
	//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
	NewReceiver(p).
		When("echoed", func(*Process, *Message) {}).
		When("echoed", func(*Process, *Message) {})
}

func TestReceiverFailureArm(t *testing.T) {
	w, _, b := newWorld(t, Config{})
	_ = w
	g, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	reply := g.MustNewPort(echoReplyType, 4)
	ghost := xrep.PortName{Node: "alpha", Guardian: 99, Port: 9}
	if err := drv.SendReplyTo(ghost, reply.Name(), "echoed", "x"); err != nil {
		t.Fatal(err)
	}
	gotFailure := ""
	NewReceiver(reply).
		When("echoed", func(*Process, *Message) { t.Error("echoed arm ran") }).
		WhenFailure(func(pr *Process, text string, m *Message) { gotFailure = text }).
		WhenTimeout(2*time.Second, func(*Process) { t.Error("timed out") }).
		RunOnce(drv)
	if gotFailure == "" {
		t.Fatal("failure arm did not run")
	}
}

func TestReceiverTimeoutArm(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	g, drv, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	p := g.MustNewPort(echoReplyType, 4)
	timedOut := false
	st := NewReceiver(p).
		When("echoed", func(*Process, *Message) {}).
		WhenTimeout(20*time.Millisecond, func(*Process) { timedOut = true }).
		RunOnce(drv)
	if st != RecvTimeout || !timedOut {
		t.Fatalf("status %v, timedOut %v", st, timedOut)
	}
}

func TestReceiverLoopStops(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	g, drv, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	p := g.MustNewPort(echoReplyType, 4)
	n := 0
	NewReceiver(p).
		When("echoed", func(*Process, *Message) {}).
		WhenTimeout(time.Millisecond, func(*Process) { n++ }).
		Loop(drv, func() bool { return n >= 3 })
	if n != 3 {
		t.Fatalf("loop ran %d times", n)
	}
}

func TestPortTypeValidation(t *testing.T) {
	pt := NewPortType("p").Msg("a", xrep.KindInt)
	if _, ok := pt.Spec("a"); !ok {
		t.Fatal("declared message missing")
	}
	if _, ok := pt.Spec(FailureCommand); !ok {
		t.Fatal("implicit failure message missing")
	}
	if _, ok := pt.Spec("zzz"); ok {
		t.Fatal("undeclared message present")
	}
	cmds := pt.Commands()
	if len(cmds) != 1 || cmds[0] != "a" {
		t.Fatalf("Commands = %v", cmds)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate Msg did not panic")
			}
		}()
		pt.Msg("a")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("declaring failure did not panic")
			}
		}()
		NewPortType("q").Msg(FailureCommand)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Replies for undeclared message did not panic")
			}
		}()
		NewPortType("r").Replies("ghost", "x")
	}()
}

func TestAnyKindWildcard(t *testing.T) {
	pt := NewPortType("p").Msg("put", xrep.KindString, AnyKind)
	if err := pt.check("put", xrep.Seq{xrep.Str("k"), xrep.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := pt.check("put", xrep.Seq{xrep.Str("k"), xrep.Rec{Name: "t", Fields: xrep.Seq{}}}); err != nil {
		t.Fatal(err)
	}
	if err := pt.check("put", xrep.Seq{xrep.Int(1), xrep.Int(2)}); err == nil {
		t.Fatal("non-wildcard position unchecked")
	}
}
