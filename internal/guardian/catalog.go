package guardian

import (
	"fmt"

	"repro/internal/durable"
	"repro/internal/wire"
	"repro/internal/xrep"
)

// The durable catalog. A node's in-memory meta map is enough to re-create
// recoverable guardians across a simulated Crash/Restart, because the
// process — and with it the map — survives. A node on persistent storage
// must also survive death of the OS process itself, so the same catalog
// records are additionally written to a well-known log in the node's
// store: one record per creation, a tombstone per self-destruct. Node
// startup replays this log and re-instantiates every surviving guardian
// whose definition provides a Recover process, exactly as Restart does
// from memory.

// catalogLogName is the reserved log holding the node's catalog. The
// leading underscore keeps it clear of guardian logs, which are always
// named "<type>-<id>".
const catalogLogName = "_catalog"

// Catalog record names.
const (
	catalogCreateRec  = "catalog/create"
	catalogDestroyRec = "catalog/destroy"
)

// catalogLog opens the node's catalog log. Failure is fail-stop: a node
// that cannot read its own catalog must not run, or guardians it promised
// to recover would silently vanish.
func (n *Node) catalogLog() durable.Log {
	l, err := n.store.OpenLog(catalogLogName)
	if err != nil {
		panic(fmt.Errorf("guardian: opening catalog of node %s: %w", n.name, err))
	}
	return l
}

// catalogCreate persists one guardian's catalog record, forcing it to
// disk before returning — creation must be durable before the guardian's
// first process runs.
func (n *Node) catalogCreate(m *guardianMeta) {
	ports := make(xrep.Seq, len(m.portIDs))
	for i, pid := range m.portIDs {
		ports[i] = xrep.Int(pid)
	}
	args := m.args
	if args == nil {
		args = xrep.Seq{}
	}
	fields := xrep.Seq{xrep.Int(m.id), xrep.Str(m.defName), args, ports}
	// The log-name override is a fifth, optional field: older catalogs
	// (and guardians without one) stay four-field records.
	if m.logName != "" {
		fields = append(fields, xrep.Str(m.logName))
	}
	rec := xrep.Rec{Name: catalogCreateRec, Fields: fields}
	buf, err := wire.MarshalValue(rec)
	if err != nil {
		panic(fmt.Errorf("guardian: marshal catalog record: %w", err))
	}
	n.catalogLog().AppendSync(buf)
}

// catalogDestroy persists a tombstone: the guardian is gone for good and
// must not be recovered by any future incarnation of the node.
func (n *Node) catalogDestroy(id uint64) {
	rec := xrep.Rec{Name: catalogDestroyRec, Fields: xrep.Seq{xrep.Int(id)}}
	buf, err := wire.MarshalValue(rec)
	if err != nil {
		panic(fmt.Errorf("guardian: marshal catalog tombstone: %w", err))
	}
	n.catalogLog().AppendSync(buf)
}

// recoverCatalog replays the node's on-disk catalog after process death,
// re-creating recoverable guardians with their original identities and
// port names. Mirrors Restart, with the log standing in for the meta map.
// Guardians whose definition has vanished from the library or provides no
// Recover process are forgotten, like the paper's transaction processes
// (§3.5). Corruption anywhere — in the catalog itself or in a surviving
// guardian's own log — refuses startup rather than recovering wrongly.
func (n *Node) recoverCatalog() error {
	log, err := n.store.OpenLog(catalogLogName)
	if err != nil {
		return fmt.Errorf("opening catalog: %w", err)
	}
	_, recs, err := log.Recover()
	if err != nil && err != durable.ErrNoCheckpoint {
		return fmt.Errorf("reading catalog: %w", err)
	}

	metas := make(map[uint64]*guardianMeta)
	var order []uint64
	var maxID uint64
	for _, r := range recs {
		v, err := wire.UnmarshalValue(r.Data)
		if err != nil {
			return fmt.Errorf("catalog record %d: %w", r.Seq, err)
		}
		rec, ok := v.(xrep.Rec)
		if !ok {
			return fmt.Errorf("catalog record %d: not a record", r.Seq)
		}
		switch rec.Name {
		case catalogCreateRec:
			m, err := parseCatalogCreate(rec)
			if err != nil {
				return fmt.Errorf("catalog record %d: %w", r.Seq, err)
			}
			if _, dup := metas[m.id]; !dup {
				order = append(order, m.id)
			}
			metas[m.id] = m
			if m.id > maxID {
				maxID = m.id
			}
		case catalogDestroyRec:
			if len(rec.Fields) != 1 {
				return fmt.Errorf("catalog record %d: malformed tombstone", r.Seq)
			}
			id, ok := rec.Fields[0].(xrep.Int)
			if !ok {
				return fmt.Errorf("catalog record %d: malformed tombstone", r.Seq)
			}
			delete(metas, uint64(id))
		default:
			return fmt.Errorf("catalog record %d: unknown kind %q", r.Seq, rec.Name)
		}
	}

	// Ids are never reused, even across process death: a port name minted
	// before the crash must not come to denote a different guardian after.
	n.mu.Lock()
	if n.nextGID < maxID {
		n.nextGID = maxID
	}
	n.mu.Unlock()

	for _, id := range order {
		m, ok := metas[id]
		if !ok {
			continue // destroyed
		}
		def, err := n.world.lookupDef(m.defName)
		if err != nil || def.Recover == nil {
			continue // forgotten, as Restart forgets it
		}
		// The guardian's own log must open cleanly before its Recover
		// process runs: interior corruption there means its recovery data
		// cannot be trusted, and the node refuses to start rather than
		// resurrect a guardian with silently missing effects.
		logName := m.logName
		if logName == "" {
			logName = guardianLogName(m.defName, m.id)
		}
		if _, err := n.store.OpenLog(logName); err != nil {
			return fmt.Errorf("opening log of %s/%d: %w", m.defName, m.id, err)
		}
		n.mu.Lock()
		n.meta[id] = m
		n.mu.Unlock()
		if _, err := n.instantiate(def, m.args, m, true); err != nil {
			return fmt.Errorf("recovering %s/%d: %w", m.defName, id, err)
		}
		n.world.stats.GuardiansRecovered.Add(1)
		n.world.trace(EvRecover, n.name, "recovered %s (guardian %d) from the catalog", m.defName, id)
	}
	return nil
}

// parseCatalogCreate decodes one creation record.
func parseCatalogCreate(rec xrep.Rec) (*guardianMeta, error) {
	if len(rec.Fields) != 4 && len(rec.Fields) != 5 {
		return nil, fmt.Errorf("malformed creation record")
	}
	id, ok0 := rec.Fields[0].(xrep.Int)
	defName, ok1 := rec.Fields[1].(xrep.Str)
	args, ok2 := rec.Fields[2].(xrep.Seq)
	ports, ok3 := rec.Fields[3].(xrep.Seq)
	if !ok0 || !ok1 || !ok2 || !ok3 {
		return nil, fmt.Errorf("malformed creation record")
	}
	m := &guardianMeta{id: uint64(id), defName: string(defName), args: args}
	if len(rec.Fields) == 5 {
		logName, ok := rec.Fields[4].(xrep.Str)
		if !ok {
			return nil, fmt.Errorf("malformed creation record")
		}
		m.logName = string(logName)
	}
	for _, p := range ports {
		pid, ok := p.(xrep.Int)
		if !ok {
			return nil, fmt.Errorf("malformed creation record")
		}
		m.portIDs = append(m.portIDs, uint64(pid))
	}
	return m, nil
}
