package guardian

import (
	"testing"
	"time"

	"repro/internal/xrep"
)

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Clock == nil {
		t.Fatal("no default clock")
	}
	if cfg.DefaultPortCapacity != 64 {
		t.Fatalf("DefaultPortCapacity = %d", cfg.DefaultPortCapacity)
	}
	if cfg.FragmentMTU != 16*1024 {
		t.Fatalf("FragmentMTU = %d", cfg.FragmentMTU)
	}
	if cfg.ReassemblyAge != 30*time.Second {
		t.Fatalf("ReassemblyAge = %v", cfg.ReassemblyAge)
	}
	if cfg.Limits != xrep.DefaultLimits {
		t.Fatalf("Limits = %+v", cfg.Limits)
	}
}

func TestWorldAccessors(t *testing.T) {
	w := NewWorld(Config{Limits: xrep.Paper24BitLimits})
	if w.Clock() == nil || w.Net() == nil || w.Stats() == nil {
		t.Fatal("nil accessor")
	}
	if w.Limits() != xrep.Paper24BitLimits {
		t.Fatal("Limits not propagated")
	}
}

func TestNodeAccessors(t *testing.T) {
	w := NewWorld(Config{})
	n := w.MustAddNode("n")
	if n.Name() != "n" || n.World() != w {
		t.Fatal("identity accessors")
	}
	if n.Disk() == nil || n.Registry() == nil {
		t.Fatal("nil substrate accessors")
	}
	if !n.Alive() {
		t.Fatal("fresh node not alive")
	}
	if n.PrimordialPort() != (xrep.PortName{Node: "n", Guardian: 1, Port: 1}) {
		t.Fatalf("PrimordialPort = %v", n.PrimordialPort())
	}
}

func TestCreateOnDeadNodeFails(t *testing.T) {
	w := NewWorld(Config{})
	registerEcho(t, w)
	n := w.MustAddNode("n")
	g, _, err := n.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	n.Crash()
	if _, err := g.Create("echo"); err == nil {
		t.Fatal("Create on a crashed node succeeded")
	}
	if _, err := n.Bootstrap("echo"); err == nil {
		t.Fatal("Bootstrap on a crashed node succeeded")
	}
	if _, _, err := n.NewDriver("late"); err == nil {
		t.Fatal("NewDriver on a crashed node succeeded")
	}
}

func TestReceiveNoPortsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewReceiver with no ports did not panic")
		}
	}()
	//lint:allow recvhygiene construction-panic test: the receiver never runs
	NewReceiver()
}

func TestPauseReturnsFalseOnKill(t *testing.T) {
	w := NewWorld(Config{})
	n := w.MustAddNode("n")
	g, drv, err := n.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 1)
	go func() { done <- drv.Pause(time.Hour) }()
	time.Sleep(5 * time.Millisecond)
	g.SelfDestruct()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Pause survived the kill")
		}
	case <-time.After(time.Second):
		t.Fatal("Pause never returned after kill")
	}
}

func TestGuardianIdentityAccessors(t *testing.T) {
	w := NewWorld(Config{})
	registerEcho(t, w)
	n := w.MustAddNode("n")
	created, err := n.Bootstrap("echo")
	if err != nil {
		t.Fatal(err)
	}
	g, ok := n.GuardianByID(created.GuardianID)
	if !ok {
		t.Fatal("GuardianByID")
	}
	if g.ID() != created.GuardianID || g.Node() != n || g.DefName() != "echo" {
		t.Fatal("identity accessors")
	}
	pp := g.ProvidedPorts()
	if len(pp) != 1 || pp[0].Name() != created.Ports[0] {
		t.Fatalf("ProvidedPorts = %v", pp)
	}
	if pp[0].Type() != echoType || pp[0].Guardian() != g {
		t.Fatal("port accessors")
	}
	if pp[0].Capacity() != 64 {
		t.Fatalf("Capacity = %d", pp[0].Capacity())
	}
	ids := n.Guardians()
	found := false
	for _, id := range ids {
		if id == created.GuardianID {
			found = true
		}
	}
	if !found {
		t.Fatalf("Guardians() = %v missing %d", ids, created.GuardianID)
	}
}

func TestPortAccounting(t *testing.T) {
	w := NewWorld(Config{})
	n := w.MustAddNode("n")
	g, drv, err := n.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	p := g.MustNewPort(NewPortType("t").Msg("x"), 2)
	for i := 0; i < 5; i++ {
		if err := drv.Send(p.Name(), "x"); err != nil {
			t.Fatal(err)
		}
	}
	w.Quiesce()
	deadline := time.Now().Add(time.Second)
	for p.Enqueued()+p.Discarded() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.Enqueued() != 2 || p.Discarded() != 3 {
		t.Fatalf("Enqueued=%d Discarded=%d, want 2/3", p.Enqueued(), p.Discarded())
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestRemovePortThenSendDrawsFailure(t *testing.T) {
	w := NewWorld(Config{})
	n := w.MustAddNode("n")
	g, drv, err := n.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	victim := g.MustNewPort(NewPortType("v").Msg("x"), 4)
	reply := g.MustNewPort(echoReplyType, 4)
	g.RemovePort(victim)
	if err := drv.SendReplyTo(victim.Name(), reply.Name(), "x"); err != nil {
		t.Fatal(err)
	}
	m, st := drv.Receive(2*time.Second, reply)
	if st != RecvOK || !m.IsFailure() {
		t.Fatalf("removed port: %v %v", st, m)
	}
}

func TestSetStateVisibleAcrossGoroutines(t *testing.T) {
	w := NewWorld(Config{})
	n := w.MustAddNode("n")
	g, _, err := n.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	if g.State() != nil {
		t.Fatal("fresh guardian has state")
	}
	done := make(chan any, 1)
	g.SetState(42)
	go func() { done <- g.State() }()
	if v := <-done; v != 42 {
		t.Fatalf("State = %v", v)
	}
}
