package guardian

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"repro/internal/durable"
	"repro/internal/xrep"
)

// GuardianDef is a guardian definition — the analog of the paper's
// `guardian_def` form. Definitions are registered in the world-wide
// library; instances are created from them at particular nodes.
type GuardianDef struct {
	// TypeName names the definition in the library.
	TypeName string
	// Provides lists the port types an instance provides at creation; the
	// names of the created ports are made known to the creating process
	// (§3.2).
	Provides []*PortType
	// PortCapacity overrides the world default buffer space for the
	// provided ports. Zero means the world default.
	PortCapacity int
	// Init is the sequential program run (in a fresh process) when an
	// instance is created.
	Init func(ctx *Ctx)
	// Recover, when non-nil, is the recovery process started after a node
	// crash to interpret the guardian's recovery data (§2.2). Guardians
	// with nil Recover are forgotten by a crash.
	Recover func(ctx *Ctx)
}

// Ctx is handed to a guardian's Init or Recover process.
type Ctx struct {
	// G is the new guardian.
	G *Guardian
	// Proc is the initial process.
	Proc *Process
	// Ports are the provided ports, in Provides order.
	Ports []*Port
	// Args are the creation arguments.
	Args xrep.Seq
	// Recovering is true when this is the recovery process after a crash.
	Recovering bool
}

// Guardian is the paper's modular unit: it owns objects (State), ports,
// and processes, and is the abstract analog of a physical node. A guardian
// lives at exactly one node for its entire lifetime.
type Guardian struct {
	id    uint64
	def   *GuardianDef
	node  *Node
	epoch uint64
	// logName, when non-empty, overrides the log Log() opens — set by
	// Node.Takeover so a replica's new primary resumes the old primary's
	// shipped log instead of an empty one named by its fresh id.
	logName string

	killOnce sync.Once
	killCh   chan struct{}

	mu          sync.Mutex
	ports       map[uint64]*Port
	providedIDs []uint64
	nextPortID  uint64
	nextProcID  uint64
	destroyed   bool

	// state holds the guardian's objects; see SetState/State. Only this
	// guardian's processes may touch the contents (they coordinate via
	// csync); the runtime never lets a state address leave the guardian —
	// messages carry values and tokens only.
	state any

	procs sync.WaitGroup
}

// ID returns the guardian's node-unique id.
func (g *Guardian) ID() uint64 { return g.id }

// SetState installs the guardian's objects, normally once from Init or
// Recover. The pointer itself is synchronized so owner-side inspectors at
// the same node can read it safely; the pointed-to objects remain the
// guardian's own business.
func (g *Guardian) SetState(v any) {
	g.mu.Lock()
	g.state = v
	g.mu.Unlock()
}

// State returns the guardian's objects as installed by SetState.
func (g *Guardian) State() any {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.state
}

// Node returns the node the guardian lives at.
func (g *Guardian) Node() *Node { return g.node }

// DefName returns the name of the guardian's definition.
func (g *Guardian) DefName() string {
	if g.def == nil {
		return ""
	}
	return g.def.TypeName
}

// Killed returns a channel closed when the guardian dies (node crash or
// self-destruct). Long-running processes select on it.
func (g *Guardian) Killed() <-chan struct{} { return g.killCh }

// Alive reports whether the guardian is still running.
func (g *Guardian) Alive() bool {
	select {
	case <-g.killCh:
		return false
	default:
		return true
	}
}

// kill tears the guardian down: processes are signalled, ports closed.
func (g *Guardian) kill() {
	g.killOnce.Do(func() { close(g.killCh) })
	g.mu.Lock()
	ports := make([]*Port, 0, len(g.ports))
	for _, p := range g.ports {
		ports = append(ports, p)
	}
	g.destroyed = true
	g.mu.Unlock()
	for _, p := range ports {
		p.close()
	}
}

// SelfDestruct removes the guardian from its node permanently: its
// processes are killed, its ports closed, and its catalog record deleted
// (it will not be recovered after a crash).
func (g *Guardian) SelfDestruct() {
	g.node.mu.Lock()
	delete(g.node.guardians, g.id)
	delete(g.node.meta, g.id)
	g.node.mu.Unlock()
	if g.node.store.Persistent() {
		g.node.catalogDestroy(g.id)
	}
	g.kill()
}

// ProvidedPorts returns the ports created from the definition's Provides
// list, in declaration order.
func (g *Guardian) ProvidedPorts() []*Port {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Port, 0, len(g.providedIDs))
	for _, id := range g.providedIDs {
		if p, ok := g.ports[id]; ok {
			out = append(out, p)
		}
	}
	return out
}

// NewPort creates an additional port on the guardian (beyond those
// provided at creation), e.g. a private reply port for one transaction.
// capacity zero means the guardian/world default.
func (g *Guardian) NewPort(pt *PortType, capacity int) (*Port, error) {
	if capacity == 0 {
		capacity = g.def.PortCapacity
	}
	if capacity == 0 {
		capacity = g.node.world.cfg.DefaultPortCapacity
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.destroyed {
		return nil, ErrKilled
	}
	g.nextPortID++
	pid := g.nextPortID
	p := &Port{
		name:     xrep.PortName{Node: g.node.name, Guardian: g.id, Port: pid},
		ptype:    pt,
		guardian: g,
		capacity: capacity,
	}
	g.ports[pid] = p
	return p, nil
}

// MustNewPort is NewPort that panics on error.
func (g *Guardian) MustNewPort(pt *PortType, capacity int) *Port {
	p, err := g.NewPort(pt, capacity)
	if err != nil {
		panic(err)
	}
	return p
}

// RemovePort deletes a port; later messages to its name are discarded
// with "target port doesn't exist" failures.
func (g *Guardian) RemovePort(p *Port) {
	g.mu.Lock()
	delete(g.ports, p.name.Port)
	g.mu.Unlock()
	p.close()
}

// Spawn starts a new process (goroutine) in the guardian. Processes
// share the guardian's objects and communicate with other guardians only
// via ports.
func (g *Guardian) Spawn(name string, fn func(p *Process)) *Process {
	g.mu.Lock()
	g.nextProcID++
	id := g.nextProcID
	g.mu.Unlock()
	pr := &Process{g: g, name: fmt.Sprintf("%s/%d", name, id)}
	g.procs.Add(1)
	go func() {
		defer g.procs.Done()
		fn(pr)
	}()
	return pr
}

// Create creates a new guardian at this guardian's node — the only node
// where it can create one (§2.1: a guardian "must have been created by (a
// process in) a guardian at that node"). It returns the created guardian's
// provided port names.
func (g *Guardian) Create(defName string, args ...any) (*Created, error) {
	if !g.Alive() {
		return nil, ErrKilled
	}
	def, err := g.node.world.lookupDef(defName)
	if err != nil {
		return nil, err
	}
	enc, err := xrep.EncodeAll(args...)
	if err != nil {
		return nil, err
	}
	if err := g.node.world.cfg.Limits.Validate(enc); err != nil {
		return nil, err
	}
	ng, err := g.node.instantiate(def, enc, nil, false)
	if err != nil {
		return nil, err
	}
	created := &Created{GuardianID: ng.id}
	ng.mu.Lock()
	for _, pid := range g.node.metaPortIDs(ng.id) {
		created.Ports = append(created.Ports, ng.ports[pid].name)
	}
	ng.mu.Unlock()
	return created, nil
}

// Created reports the result of guardian creation.
type Created struct {
	GuardianID uint64
	// Ports holds the provided ports' global names, in Provides order.
	Ports []xrep.PortName
}

// metaPortIDs returns the provided-port ids recorded for guardian id.
func (n *Node) metaPortIDs(id uint64) []uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m, ok := n.meta[id]; ok {
		return m.portIDs
	}
	return nil
}

// Log returns the guardian's named log on its node's stable storage — the
// place it records recovery data for permanence of effect. On the default
// simulated backend opening cannot fail; on a real backend a failure to
// open (corrupt storage) is fail-stop, because a guardian running without
// its recovery data would silently forget acknowledged effects.
func (g *Guardian) Log() durable.Log {
	name := g.logName
	if name == "" {
		name = guardianLogName(g.def.TypeName, g.id)
	}
	l, err := g.node.store.OpenLog(name)
	if err != nil {
		if !g.Alive() {
			// A straggling process of a killed guardian raced a store
			// shutdown. Its writes were volatile the moment the guardian
			// died, so an inert log that discards them is the correct —
			// and deliberately NOT fail-stop — answer.
			return durable.Null()
		}
		panic(fmt.Errorf("guardian: opening log %q for %s/%d: %w", name, g.def.TypeName, g.id, err))
	}
	return l
}

// LogName returns the name of the log Log() opens.
func (g *Guardian) LogName() string {
	if g.logName != "" {
		return g.logName
	}
	return guardianLogName(g.def.TypeName, g.id)
}

// guardianLogName names a guardian's log in its node's store.
func guardianLogName(defName string, id uint64) string {
	return fmt.Sprintf("%s-%d", defName, id)
}

// --- Tokens: sealed capabilities (§2.1) ---

// ErrBadToken is returned when unsealing a token this guardian did not
// issue (or whose seal fails verification).
var ErrBadToken = errors.New("guardian: token not sealed by this guardian")

// secret derives the guardian's sealing key. It is deterministic in the
// guardian's identity so that tokens issued before a crash still unseal
// after recovery; a production system would keep a random key in stable
// storage, with identical observable behavior.
func (g *Guardian) secret() []byte {
	h := sha256.New()
	fmt.Fprintf(h, "guardian-seal|%s|%d", g.node.name, g.id)
	return h.Sum(nil)
}

// Seal wraps body in a token only this guardian can unseal. The token is
// an external name for an object; holding it gives no access — it must be
// sent back to the issuing guardian, which alone interprets it. The system
// makes no guarantee that the named object continues to exist.
func (g *Guardian) Seal(body []byte) xrep.Token {
	mac := hmac.New(sha256.New, g.secret())
	mac.Write(body)
	b := make([]byte, len(body))
	copy(b, body)
	return xrep.Token{Issuer: g.id, Body: b, Seal: mac.Sum(nil)}
}

// Unseal verifies and opens a token issued by this guardian.
func (g *Guardian) Unseal(t xrep.Token) ([]byte, error) {
	if t.Issuer != g.id {
		return nil, ErrBadToken
	}
	mac := hmac.New(sha256.New, g.secret())
	mac.Write(t.Body)
	if !hmac.Equal(mac.Sum(nil), t.Seal) {
		return nil, ErrBadToken
	}
	out := make([]byte, len(t.Body))
	copy(out, t.Body)
	return out, nil
}
