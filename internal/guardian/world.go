package guardian

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/vtime"
	"repro/internal/xrep"
)

// Config configures a World.
type Config struct {
	// Clock drives all timeouts and the network. Nil means the wall clock.
	Clock vtime.Clock
	// Net is the fault/delay model of the simulated network built when no
	// Transport is supplied.
	Net netsim.Config
	// Transport, when non-nil, carries the world's packets instead of a
	// simulator built from Net — e.g. a transport.UDP for nodes running
	// as separate OS processes, or a transport.Wrapper injecting faults
	// around one. The world takes ownership: Close shuts it down.
	Transport transport.Transport
	// Store, when non-nil, builds each node's stable storage — e.g.
	// durable.OpenWAL for a node that must survive process death, or a
	// durable.Wrapper injecting storage faults. Nil (or a factory
	// returning a nil Store for some node) means a fresh simulated disk
	// per node, as always. The world takes ownership:
	// Close closes every node's store. When the store reports
	// Persistent(), node startup replays the on-disk catalog, recovering
	// guardians created by a previous OS process.
	Store func(node string) (durable.Store, error)
	// Limits are the system-wide type invariants enforced at send time.
	// The zero value means DefaultLimits.
	Limits xrep.Limits
	// DefaultPortCapacity is the buffer space of ports created without an
	// explicit capacity. Zero means 64.
	DefaultPortCapacity int
	// FragmentMTU is the maximum packet size handed to the network; larger
	// frames are split and reassembled. Zero means 16 KiB.
	FragmentMTU int
	// ReassemblyAge evicts partial messages older than this. Zero means
	// 30 s.
	ReassemblyAge time.Duration
	// Tuning holds the world-wide liveness knobs (heartbeat intervals,
	// failure thresholds, retry backoff caps) that infrastructure
	// guardians consult when they are created without explicit values.
	// DST shrinks them deterministically; real deployments keep the
	// defaults. Zero fields take their documented defaults.
	Tuning Tuning
}

// Tuning is the world-wide set of liveness knobs. Infrastructure that
// probes, retries or elects (watchdog, amo, replica) reads these instead
// of package constants, so a simulation can shrink every timescale at
// once from one place.
type Tuning struct {
	// HeartbeatInterval is the default probe/heartbeat period. Zero
	// means 100ms.
	HeartbeatInterval time.Duration
	// FailureThreshold is how many consecutive missed heartbeats declare
	// a peer dead. Zero means 2.
	FailureThreshold int
	// BackoffCap bounds grown retry backoffs when the caller sets none.
	// Zero means 32× the base backoff.
	BackoffCap time.Duration
}

func (t Tuning) withDefaults() Tuning {
	if t.HeartbeatInterval <= 0 {
		t.HeartbeatInterval = 100 * time.Millisecond
	}
	if t.FailureThreshold <= 0 {
		t.FailureThreshold = 2
	}
	return t
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = vtime.NewReal()
	}
	if c.Limits == (xrep.Limits{}) {
		c.Limits = xrep.DefaultLimits
	}
	if c.DefaultPortCapacity == 0 {
		c.DefaultPortCapacity = 64
	}
	if c.FragmentMTU == 0 {
		c.FragmentMTU = 16 * 1024
	}
	if c.ReassemblyAge == 0 {
		c.ReassemblyAge = 30 * time.Second
	}
	c.Tuning = c.Tuning.withDefaults()
	return c
}

// Stats counts runtime events across the world. The discard counters
// correspond one-to-one to the §3.4 reasons a message is thrown away.
type Stats struct {
	MessagesSent       atomic.Int64 // send commands that accepted a message
	MessagesDelivered  atomic.Int64 // messages enqueued at (or handed to) a port
	DiscardNoNode      atomic.Int64 // destination node dead or unknown (network drop)
	DiscardNoGuardian  atomic.Int64 // "the guardian doesn't exist"
	DiscardNoPort      atomic.Int64 // "the port doesn't exist"
	DiscardPortFull    atomic.Int64 // "no room for the message"
	DiscardBadType     atomic.Int64 // command/argument mismatch with the port type
	DiscardBadFrame    atomic.Int64 // checksum or format failure
	FailuresSent       atomic.Int64 // system failure(...) replies generated
	GuardiansCreated   atomic.Int64
	GuardiansRecovered atomic.Int64
}

// World is a complete distributed program: nodes, the network joining
// them, and the library of guardian definitions shared by every node (the
// analog of the CLU library that makes separate compile-time checking
// possible).
type World struct {
	cfg   Config
	clock vtime.Clock
	tr    transport.Transport
	// sim is the simulator network when the transport is (or wraps) one;
	// nil for worlds on a real transport.
	sim *netsim.Network

	mu    sync.Mutex
	nodes map[string]*Node
	defs  map[string]*GuardianDef

	tracer atomic.Pointer[tracerBox]
	stats  Stats
}

// World-level errors.
var (
	ErrNodeExists  = errors.New("guardian: node already exists")
	ErrNoSuchNode  = errors.New("guardian: no such node")
	ErrNoSuchDef   = errors.New("guardian: no such guardian definition")
	ErrNodeDown    = errors.New("guardian: node is down")
	ErrKilled      = errors.New("guardian: guardian destroyed")
	ErrNotResident = errors.New("guardian: creator must reside at the target node")
	ErrDefExists   = errors.New("guardian: definition already registered")
)

// NewWorld creates an empty world.
func NewWorld(cfg Config) *World {
	cfg = cfg.withDefaults()
	w := &World{
		cfg:   cfg,
		clock: cfg.Clock,
		nodes: make(map[string]*Node),
		defs:  make(map[string]*GuardianDef),
	}
	if cfg.Transport != nil {
		w.tr = cfg.Transport
	} else {
		w.tr = transport.NewSim(netsim.New(cfg.Clock, cfg.Net))
	}
	if src, ok := w.tr.(interface{ Network() *netsim.Network }); ok {
		w.sim = src.Network()
	}
	return w
}

// Clock returns the world's clock.
func (w *World) Clock() vtime.Clock { return w.clock }

// Net exposes the simulator network for fault injection in tests and
// experiments. It is nil when the world runs on a non-simulated transport
// (e.g. UDP); fault-inject such worlds through a transport.Wrapper.
func (w *World) Net() *netsim.Network { return w.sim }

// Transport returns the transport carrying the world's packets.
func (w *World) Transport() transport.Transport { return w.tr }

// Stats returns the world's runtime counters.
func (w *World) Stats() *Stats { return &w.stats }

// Limits returns the system-wide type invariants.
func (w *World) Limits() xrep.Limits { return w.cfg.Limits }

// Tuning returns the world's liveness knobs (defaults already applied).
func (w *World) Tuning() Tuning { return w.cfg.Tuning }

// Register adds a guardian definition to the world-wide library. All
// nodes create guardians from this shared library, mirroring separate
// compilation "in the context of a library containing descriptions of
// guardian headers".
func (w *World) Register(def *GuardianDef) error {
	if def.TypeName == "" {
		return errors.New("guardian: definition needs a type name")
	}
	if def.Init == nil {
		return fmt.Errorf("guardian: definition %s needs an Init", def.TypeName)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.defs[def.TypeName]; dup {
		return fmt.Errorf("%w: %s", ErrDefExists, def.TypeName)
	}
	w.defs[def.TypeName] = def
	return nil
}

// MustRegister is Register that panics on error, for static setup code.
func (w *World) MustRegister(def *GuardianDef) {
	if err := w.Register(def); err != nil {
		panic(err)
	}
}

func (w *World) lookupDef(name string) (*GuardianDef, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	def, ok := w.defs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchDef, name)
	}
	return def, nil
}

// AddNode brings up a new node with the given address. Each node comes
// into existence with a primordial guardian (§2.1).
func (w *World) AddNode(name string) (*Node, error) {
	w.mu.Lock()
	if _, dup := w.nodes[name]; dup {
		w.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNodeExists, name)
	}
	w.mu.Unlock()
	n, err := newNode(w, name)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	if _, dup := w.nodes[name]; dup {
		w.mu.Unlock()
		n.store.Close()
		return nil, fmt.Errorf("%w: %s", ErrNodeExists, name)
	}
	w.nodes[name] = n
	w.mu.Unlock()
	if err := n.start(); err != nil {
		w.mu.Lock()
		delete(w.nodes, name)
		w.mu.Unlock()
		n.store.Close()
		return nil, fmt.Errorf("guardian: starting node %s: %w", name, err)
	}
	return n, nil
}

// MustAddNode is AddNode that panics on error.
func (w *World) MustAddNode(name string) *Node {
	n, err := w.AddNode(name)
	if err != nil {
		panic(err)
	}
	return n
}

// Node returns the named node.
func (w *World) Node(name string) (*Node, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, ok := w.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchNode, name)
	}
	return n, nil
}

// Nodes returns all node names, sorted.
func (w *World) Nodes() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	names := make([]string, 0, len(w.nodes))
	for n := range w.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Quiesce waits for all in-flight network packets to land, where the
// transport can know that (the simulator can; a real network returns
// immediately). Tests call it before asserting on delivery counts.
func (w *World) Quiesce() { w.tr.Quiesce() }

// Close shuts the world down, modeling the death of the hosting process:
// the transport closes first (every node detaches, receive loops drain,
// further sends are discarded), then every guardian is killed, then each
// node's store closes — so nothing that matters can touch a closed log,
// and any straggling process that does is provably writing volatile
// state. Worlds on the default simulator and in-memory disks never need
// this; worlds on real sockets or on-disk WALs should Close to release
// them.
func (w *World) Close() error {
	err := w.tr.Close()
	w.mu.Lock()
	nodes := make([]*Node, 0, len(w.nodes))
	for _, n := range w.nodes {
		nodes = append(nodes, n)
	}
	w.mu.Unlock()
	for _, n := range nodes {
		n.mu.Lock()
		n.alive = false
		gs := make([]*Guardian, 0, len(n.guardians))
		for _, g := range n.guardians {
			gs = append(gs, g)
		}
		n.guardians = make(map[uint64]*Guardian)
		n.primordial = nil
		n.mu.Unlock()
		for _, g := range gs {
			g.kill()
		}
	}
	for _, n := range nodes {
		if cerr := n.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
