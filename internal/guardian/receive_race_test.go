package guardian

import (
	"sync"
	"testing"
	"time"

	"repro/internal/xrep"
)

// TestReceiveNoMissedWakeup pins the fix for a lost-wakeup race in
// Receive: a message delivered between the fast-path queue scan and
// waiter registration used to land in the buffer unseen, leaving the
// receiver to sleep out its whole timeout with the message sitting there.
// The race window is a few instructions wide, so this hammers tight
// send/receive round trips from both sides; before the post-registration
// re-scan, it tripped well within 200k iterations (and the transport
// loopback benchmark hit it reliably). A short timeout keeps the failure
// mode cheap: any RecvTimeout here while a message is en route is the bug.
func TestReceiveNoMissedWakeup(t *testing.T) {
	w := NewWorld(Config{})
	pt := NewPortType("echo").
		Msg("ping", xrep.KindInt, xrep.KindPortName).
		Replies("ping", "pong")
	w.MustRegister(&GuardianDef{
		TypeName: "echo",
		Provides: []*PortType{pt},
		Init: func(ctx *Ctx) {
			//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
			NewReceiver(ctx.Ports[0]).
				When("ping", func(pr *Process, m *Message) {
					_ = pr.Send(m.Port(1), "pong", m.Int(0))
				}).
				Loop(ctx.Proc, nil)
		},
	})
	srv := w.MustAddNode("srv")
	created, err := srv.Bootstrap("echo")
	if err != nil {
		t.Fatal(err)
	}
	cli := w.MustAddNode("cli")

	iters := 60000
	if testing.Short() {
		iters = 5000
	}
	const workers = 4
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		g, drv, err := cli.NewDriver("d")
		if err != nil {
			t.Fatal(err)
		}
		reply, err := g.NewPort(NewPortType("pong_port").Msg("pong", xrep.KindInt), 64)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(drv *Process, reply *Port) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				if err := drv.Send(created.Ports[0], "ping", j, reply.Name()); err != nil {
					t.Errorf("send %d: %v", j, err)
					return
				}
				m, st := drv.Receive(5*time.Second, reply)
				if st != RecvOK {
					t.Errorf("round trip %d: status %v (missed wakeup?)", j, st)
					return
				}
				if got := m.Int(0); got != int64(j) {
					t.Errorf("round trip %d: pong %d", j, got)
					return
				}
			}
		}(drv, reply)
	}
	wg.Wait()
}
