package guardian

import (
	"fmt"
	"time"
)

// Receiver is the library analog of the paper's receive statement:
//
//	receive on <port list>
//	   when C1(args) [replyto p]: S1
//	   ...
//	   when failure (x: string): Sfailure
//	   when timeout <exp>: Stimeout
//	end
//
// Arms are declared with When; the construction-time checks mirror the
// compile-time checks the paper requires — an arm's command must exist on
// some listed port ("such a line must exist; this can be checked at
// compile time"), and at Run every command the ports can deliver must have
// an arm.
type Receiver struct {
	ports        []*Port
	arms         map[string]func(*Process, *Message)
	interceptors []interceptor
	onFailure    func(*Process, string, *Message)
	timeout      time.Duration
	onTimeout    func(*Process)
	checked      bool
}

// interceptor is a receive-loop hook: a filter offered messages before arm
// dispatch. commands lists the command identifiers the hook owns; those
// commands are exempt from arm-coverage checking.
type interceptor struct {
	hook     func(*Process, *Message) bool
	commands map[string]struct{}
}

// NewReceiver starts a receive statement over the given ports, listed in
// priority order.
func NewReceiver(ports ...*Port) *Receiver {
	if len(ports) == 0 {
		panic("guardian: receive needs at least one port")
	}
	return &Receiver{
		ports:   ports,
		arms:    make(map[string]func(*Process, *Message)),
		timeout: Infinite,
	}
}

// When adds an arm for a command. The command must be declared by at least
// one listed port type; a violation panics at construction, the runtime
// stand-in for a compile error.
func (r *Receiver) When(command string, body func(pr *Process, m *Message)) *Receiver {
	if command == FailureCommand {
		panic("guardian: use WhenFailure for the implicit failure arm")
	}
	found := false
	for _, p := range r.ports {
		if _, ok := p.ptype.Spec(command); ok {
			found = true
			break
		}
	}
	if !found {
		panic(fmt.Sprintf("guardian: no listed port declares message %q", command))
	}
	if _, dup := r.arms[command]; dup {
		panic(fmt.Sprintf("guardian: duplicate arm for %q", command))
	}
	r.arms[command] = body
	return r
}

// Intercept installs a receive-loop hook: before arm dispatch, each
// non-failure message whose command is in commands is offered to hook,
// which returns true to consume it. Hooks run in installation order.
//
// The listed commands become the hook's responsibility: they are exempt
// from the arm-coverage check, and a message the hook declines (returns
// false for) falls through to an arm if one exists, or is quietly thrown
// away — the §3.4 license to discard. This is how a session layer (e.g. an
// at-most-once filter) wraps a guardian's receive loop without the
// guardian's own arms knowing about it.
//
// Every listed command must be declared by some listed port, the same
// construction-time check When performs.
func (r *Receiver) Intercept(hook func(pr *Process, m *Message) bool, commands ...string) *Receiver {
	if len(commands) == 0 {
		panic("guardian: Intercept needs at least one command")
	}
	owned := make(map[string]struct{}, len(commands))
	for _, command := range commands {
		if command == FailureCommand {
			panic("guardian: use WhenFailure for the implicit failure arm")
		}
		found := false
		for _, p := range r.ports {
			if _, ok := p.ptype.Spec(command); ok {
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("guardian: no listed port declares message %q", command))
		}
		owned[command] = struct{}{}
	}
	r.interceptors = append(r.interceptors, interceptor{hook: hook, commands: owned})
	return r
}

// WhenFailure adds the arm for the implicit system failure message.
func (r *Receiver) WhenFailure(body func(pr *Process, text string, m *Message)) *Receiver {
	r.onFailure = body
	return r
}

// WhenTimeout sets the timeout expression and its arm.
func (r *Receiver) WhenTimeout(d time.Duration, body func(pr *Process)) *Receiver {
	r.timeout = d
	r.onTimeout = body
	return r
}

// check verifies arm coverage: every command deliverable by the listed
// ports has an arm. Runs once, at first Run.
func (r *Receiver) check() {
	if r.checked {
		return
	}
	for _, p := range r.ports {
		for _, cmd := range p.ptype.Commands() {
			if _, ok := r.arms[cmd]; ok {
				continue
			}
			if r.intercepted(cmd) {
				continue
			}
			panic(fmt.Sprintf("guardian: port type %s delivers %q but receive has no arm for it",
				p.ptype.Name(), cmd))
		}
	}
	r.checked = true
}

// intercepted reports whether any installed hook owns the command.
func (r *Receiver) intercepted(command string) bool {
	for _, ic := range r.interceptors {
		if _, ok := ic.commands[command]; ok {
			return true
		}
	}
	return false
}

// RunOnce executes the receive statement once on behalf of pr: one message
// is removed and its arm executed, or the timeout arm runs. It returns the
// receive status.
func (r *Receiver) RunOnce(pr *Process) RecvStatus {
	r.check()
	m, st := pr.Receive(r.timeout, r.ports...)
	switch st {
	case RecvOK:
		if m.IsFailure() {
			if r.onFailure != nil {
				r.onFailure(pr, m.FailureText(), m)
			}
			return st
		}
		for _, ic := range r.interceptors {
			if _, owned := ic.commands[m.Command]; owned && ic.hook(pr, m) {
				return st
			}
		}
		arm, ok := r.arms[m.Command]
		if !ok {
			if r.intercepted(m.Command) {
				// Offered to its hook, declined, no arm: throw it away.
				return st
			}
			// Unreachable given check() plus runtime type checking; keep a
			// loud failure rather than a silent drop.
			panic(fmt.Sprintf("guardian: no arm for delivered command %q", m.Command))
		}
		arm(pr, m)
	case RecvTimeout:
		if r.onTimeout != nil {
			r.onTimeout(pr)
		}
	case RecvKilled:
		// Caller observes the status and unwinds.
	}
	return st
}

// Loop runs the receive statement until the guardian is killed or stop
// returns true. A nil stop loops until death.
func (r *Receiver) Loop(pr *Process, stop func() bool) {
	for {
		if stop != nil && stop() {
			return
		}
		if st := r.RunOnce(pr); st == RecvKilled {
			return
		}
	}
}
