package guardian

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/vtime"
	"repro/internal/xrep"
)

// deployCollector builds a world whose "srv" node hosts a guardian that
// counts arriving data(Int) messages on a channel.
func deployCollector(t *testing.T, cfg Config) (*World, xrep.PortName, chan int64) {
	t.Helper()
	w := NewWorld(cfg)
	seen := make(chan int64, 4096)
	w.MustRegister(&GuardianDef{
		TypeName:     "collector",
		Provides:     []*PortType{NewPortType("c").Msg("data", xrep.KindInt)},
		PortCapacity: 4096,
		Init: func(ctx *Ctx) {
			//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
			NewReceiver(ctx.Ports[0]).
				When("data", func(pr *Process, m *Message) { seen <- m.Int(0) }).
				Loop(ctx.Proc, nil)
		},
	})
	srv := w.MustAddNode("srv")
	created, err := srv.Bootstrap("collector")
	if err != nil {
		t.Fatal(err)
	}
	return w, created.Ports[0], seen
}

func drain(seen chan int64, settle time.Duration) []int64 {
	var out []int64
	for {
		select {
		case v := <-seen:
			out = append(out, v)
		case <-time.After(settle):
			return out
		}
	}
}

func TestCorruptedMessagesNeverReachPorts(t *testing.T) {
	// Every network corruption must be caught by the wire checksums: the
	// message is thrown away (best-effort loss), never delivered mangled.
	w, port, seen := deployCollector(t, Config{
		Net: netsim.Config{Seed: 9, CorruptRate: 0.3},
	})
	cli := w.MustAddNode("cli")
	_, drv, err := cli.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	const total = 300
	for i := 0; i < total; i++ {
		if err := drv.Send(port, "data", i); err != nil {
			t.Fatal(err)
		}
	}
	w.Quiesce()
	got := drain(seen, 50*time.Millisecond)
	if len(got) == total {
		t.Fatal("no corruption observed; fault injection inert")
	}
	// Every delivered value must be one that was actually sent, intact.
	for _, v := range got {
		if v < 0 || v >= total {
			t.Fatalf("mangled value %d delivered", v)
		}
	}
	st := w.Stats()
	corrupted := w.Net().Stats().Corrupted
	if st.DiscardBadFrame.Load() != corrupted {
		t.Fatalf("BadFrame discards (%d) != corrupted packets (%d)",
			st.DiscardBadFrame.Load(), corrupted)
	}
	if int64(len(got))+corrupted != total {
		t.Fatalf("delivered(%d) + corrupted(%d) != sent(%d)", len(got), corrupted, total)
	}
}

func TestDuplicatedMessagesDeliveredOnce(t *testing.T) {
	// The network duplicates packets; the reassembly layer's completed-id
	// memory keeps the message from being delivered twice.
	w, port, seen := deployCollector(t, Config{
		Net: netsim.Config{Seed: 4, DupRate: 1.0},
	})
	cli := w.MustAddNode("cli")
	_, drv, err := cli.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	const total = 100
	for i := 0; i < total; i++ {
		if err := drv.Send(port, "data", i); err != nil {
			t.Fatal(err)
		}
	}
	w.Quiesce()
	got := drain(seen, 50*time.Millisecond)
	if len(got) != total {
		t.Fatalf("delivered %d messages with DupRate=1, want exactly %d", len(got), total)
	}
	counts := map[int64]int{}
	for _, v := range got {
		counts[v]++
		if counts[v] > 1 {
			t.Fatalf("message %d delivered twice", v)
		}
	}
}

func TestPartialFragmentsEvicted(t *testing.T) {
	// A fragmented message that loses packets must not pin reassembly
	// state forever: the sweep abandons it after ReassemblyAge.
	w, port, seen := deployCollector(t, Config{
		FragmentMTU:   256,
		ReassemblyAge: 50 * time.Millisecond,
		Net:           netsim.Config{Seed: 2, LossRate: 0.5},
	})
	cli := w.MustAddNode("cli")
	_, drv, err := cli.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	// Big messages: ~8 fragments each, so at 50% loss nearly every message
	// loses at least one fragment and strands a partial assembly.
	big := xrep.Seq{xrep.Int(1), xrep.Bytes(make([]byte, 1500))}
	bigPort := NewPortType("b").Msg("blob", xrep.KindInt, xrep.KindBytes)
	w.MustRegister(&GuardianDef{
		TypeName: "blobsink",
		Provides: []*PortType{bigPort},
		Init: func(ctx *Ctx) {
			//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
			NewReceiver(ctx.Ports[0]).
				When("blob", func(pr *Process, m *Message) { seen <- m.Int(0) }).
				Loop(ctx.Proc, nil)
		},
	})
	srv, _ := w.Node("srv")
	created, err := srv.Bootstrap("blobsink")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := drv.Send(created.Ports[0], "blob", big[0], big[1]); err != nil {
			t.Fatal(err)
		}
	}
	w.Quiesce()
	// Keep traffic flowing so the lazy sweep runs after the age passes.
	time.Sleep(80 * time.Millisecond)
	for i := 0; i < 5; i++ {
		if err := drv.Send(port, "data", 0); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	w.Quiesce()
	if n := srv.reasm.Pending(); n > 5 {
		t.Fatalf("%d partial messages still pinned after sweep age", n)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	w, port, seen := deployCollector(t, Config{})
	cli := w.MustAddNode("cli")
	_, drv, err := cli.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	w.Net().Partition([]netsim.Addr{"srv"}, []netsim.Addr{"cli"})
	for i := 0; i < 5; i++ {
		if err := drv.Send(port, "data", i); err != nil {
			t.Fatal(err)
		}
	}
	w.Quiesce()
	if got := drain(seen, 30*time.Millisecond); len(got) != 0 {
		t.Fatalf("%d messages crossed the partition", len(got))
	}
	w.Net().Heal()
	for i := 5; i < 10; i++ {
		if err := drv.Send(port, "data", i); err != nil {
			t.Fatal(err)
		}
	}
	w.Quiesce()
	if got := drain(seen, 50*time.Millisecond); len(got) != 5 {
		t.Fatalf("after heal delivered %d, want 5 (partitioned messages stay lost)", len(got))
	}
}

func TestReceiveTimeoutOnSimulatedClock(t *testing.T) {
	// Timeout semantics are exact under the simulated clock: the arm
	// fires at the deadline, not a nanosecond of wall time earlier.
	clock := vtime.NewSim(time.Unix(0, 0))
	w := NewWorld(Config{Clock: clock})
	n := w.MustAddNode("n")
	g, drv, err := n.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	p := g.MustNewPort(NewPortType("t").Msg("x"), 4)
	done := make(chan RecvStatus, 1)
	go func() {
		_, st := drv.Receive(10*time.Second, p)
		done <- st
	}()
	for clock.PendingTimers() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	clock.Advance(9 * time.Second)
	select {
	case st := <-done:
		t.Fatalf("receive ended with %v before its simulated deadline", st)
	case <-time.After(20 * time.Millisecond):
	}
	clock.Advance(time.Second)
	select {
	case st := <-done:
		if st != RecvTimeout {
			t.Fatalf("status %v, want timeout", st)
		}
	case <-time.After(time.Second):
		t.Fatal("receive never timed out after Advance past deadline")
	}
}

func TestReceiveWakesOnArrivalUnderSimClock(t *testing.T) {
	clock := vtime.NewSim(time.Unix(0, 0))
	w := NewWorld(Config{Clock: clock})
	n := w.MustAddNode("n")
	g, drv, err := n.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	p := g.MustNewPort(NewPortType("t").Msg("x", xrep.KindInt), 4)
	done := make(chan *Message, 1)
	go func() {
		m, _ := drv.Receive(time.Hour, p)
		done <- m
	}()
	for clock.PendingTimers() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	// Local send: delivery needs no simulated time to pass.
	if err := drv.Send(p.Name(), "x", 42); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-done:
		if m.Int(0) != 42 {
			t.Fatalf("got %v", m.Args)
		}
	case <-time.After(time.Second):
		t.Fatal("arrival did not wake the receiver under the simulated clock")
	}
}
