package guardian

import (
	"sync"
	"sync/atomic"

	"repro/internal/xrep"
)

// Port is a one-directional gateway into a guardian (§3.2). Ports are the
// only entities with global names; messages are queued in bounded buffer
// space, and only processes within the owning guardian can receive from a
// port.
type Port struct {
	name     xrep.PortName
	ptype    *PortType
	guardian *Guardian
	capacity int

	mu      sync.Mutex
	queue   []*Message
	waiters []*waiter
	closed  bool

	// accounting
	enqueued  atomic.Int64
	discarded atomic.Int64
}

// waiter is one blocked Receive. The first port to deliver claims it.
type waiter struct {
	ch      chan *Message
	claimed atomic.Bool
}

// Name returns the port's global name, which may be sent in messages.
func (p *Port) Name() xrep.PortName { return p.name }

// Type returns the port's type descriptor.
func (p *Port) Type() *PortType { return p.ptype }

// Guardian returns the owning guardian.
func (p *Port) Guardian() *Guardian { return p.guardian }

// Len reports the number of queued messages.
func (p *Port) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Capacity returns the port's buffer space.
func (p *Port) Capacity() int { return p.capacity }

// Enqueued reports how many messages have been accepted by this port.
func (p *Port) Enqueued() int64 { return p.enqueued.Load() }

// Discarded reports how many messages were thrown away because the buffer
// was full.
func (p *Port) Discarded() int64 { return p.discarded.Load() }

// deliver hands a message to a blocked receiver or queues it. It reports
// false when the port's buffer space is exhausted (the message is then
// thrown away, and the runtime sends a failure reply if one was asked
// for).
func (p *Port) deliver(m *Message) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	// Hand to the oldest waiter that has not been claimed by another port
	// or by its timeout.
	for len(p.waiters) > 0 {
		w := p.waiters[0]
		p.waiters = p.waiters[1:]
		if w.claimed.CompareAndSwap(false, true) {
			p.mu.Unlock()
			w.ch <- m
			p.enqueued.Add(1)
			return true
		}
	}
	if len(p.queue) >= p.capacity {
		p.mu.Unlock()
		p.discarded.Add(1)
		return false
	}
	p.queue = append(p.queue, m)
	p.mu.Unlock()
	p.enqueued.Add(1)
	return true
}

// claimQueued atomically claims w and pops the oldest queued message.
// It returns nil if the queue is empty or w was already claimed — in the
// latter case a deliver has handed (or is handing) a message to w.ch.
func (p *Port) claimQueued(w *waiter) *Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return nil
	}
	if !w.claimed.CompareAndSwap(false, true) {
		return nil
	}
	m := p.queue[0]
	p.queue = p.queue[1:]
	return m
}

// tryDequeue pops the oldest queued message, if any.
func (p *Port) tryDequeue() *Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return nil
	}
	m := p.queue[0]
	p.queue = p.queue[1:]
	return m
}

// addWaiter registers a blocked receiver.
func (p *Port) addWaiter(w *waiter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.waiters = append(p.waiters, w)
}

// removeWaiter drops w from the wait list (after a timeout or a win on
// another port). Claimed waiters are also purged lazily by deliver.
func (p *Port) removeWaiter(w *waiter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, x := range p.waiters {
		if x == w {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			return
		}
	}
}

// close marks the port dead (guardian crash or self-destruct); queued
// messages are dropped — they were volatile state.
func (p *Port) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.queue = nil
	p.waiters = nil
}
