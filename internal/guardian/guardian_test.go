package guardian

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/xrep"
)

// newWorld builds a two-node world with instant, reliable delivery.
func newWorld(t *testing.T, cfg Config) (*World, *Node, *Node) {
	t.Helper()
	w := NewWorld(cfg)
	a := w.MustAddNode("alpha")
	b := w.MustAddNode("beta")
	return w, a, b
}

// echoType is a simple service port: echo(string) replies (echoed(string)).
var echoType = NewPortType("echo_port").
	Msg("echo", xrep.KindString).
	Replies("echo", "echoed").
	Msg("shutdown")

// echoReplyType receives echo responses.
var echoReplyType = NewPortType("echo_reply_port").
	Msg("echoed", xrep.KindString)

// echoDef is a guardian that echoes requests back to their reply port.
var echoDef = &GuardianDef{
	TypeName: "echo",
	Provides: []*PortType{echoType},
	Init: func(ctx *Ctx) {
		//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
		NewReceiver(ctx.Ports[0]).
			When("echo", func(pr *Process, m *Message) {
				if !m.ReplyTo.IsZero() {
					_ = pr.Send(m.ReplyTo, "echoed", m.Str(0))
				}
			}).
			When("shutdown", func(pr *Process, m *Message) {
				ctx.G.SelfDestruct()
			}).
			Loop(ctx.Proc, nil)
	},
}

func registerEcho(t *testing.T, w *World) {
	t.Helper()
	if err := w.Register(echoDef); err != nil && err.Error() == "" {
		t.Fatal(err)
	}
}

func TestSendReceiveRoundTrip(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	registerEcho(t, w)
	created, err := a.Bootstrap("echo")
	if err != nil {
		t.Fatal(err)
	}
	echoPort := created.Ports[0]

	_, drv, err := b.NewDriver("clerk")
	if err != nil {
		t.Fatal(err)
	}
	reply := drv.Guardian().MustNewPort(echoReplyType, 8)
	if err := drv.SendReplyTo(echoPort, reply.Name(), "echo", "hello"); err != nil {
		t.Fatal(err)
	}
	m, st := drv.Receive(2*time.Second, reply)
	if st != RecvOK {
		t.Fatalf("receive status = %v", st)
	}
	if m.Command != "echoed" || m.Str(0) != "hello" {
		t.Fatalf("got %s(%v)", m.Command, m.Args)
	}
	if m.SrcNode != "alpha" {
		t.Fatalf("reply SrcNode = %q, want alpha", m.SrcNode)
	}
}

func TestIntraNodeMessaging(t *testing.T) {
	w, a, _ := newWorld(t, Config{Net: netsim.Config{BaseLatency: time.Hour}})
	registerEcho(t, w)
	// With an hour of network latency, only the local bypass can answer
	// quickly: intra-node communication must not touch the network.
	created, err := a.Bootstrap("echo")
	if err != nil {
		t.Fatal(err)
	}
	_, drv, err := a.NewDriver("local")
	if err != nil {
		t.Fatal(err)
	}
	reply := drv.Guardian().MustNewPort(echoReplyType, 8)
	if err := drv.SendReplyTo(created.Ports[0], reply.Name(), "echo", "fast"); err != nil {
		t.Fatal(err)
	}
	m, st := drv.Receive(2*time.Second, reply)
	if st != RecvOK || m.Str(0) != "fast" {
		t.Fatalf("intra-node echo: status %v", st)
	}
	if sent := w.Net().Stats().Sent; sent != 0 {
		t.Fatalf("intra-node message used the network (%d packets)", sent)
	}
}

func TestSendEncodeErrorTerminatesSend(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	_, drv, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	to := xrep.PortName{Node: "beta", Guardian: 5, Port: 1}
	//lint:allow transmissible deliberate violation: the test asserts the runtime rejects a channel in a message
	if err := drv.Send(to, "cmd", make(chan int)); err == nil {
		t.Fatal("send of untransmittable value succeeded")
	}
}

func TestSendEnforcesSystemLimits(t *testing.T) {
	w := NewWorld(Config{Limits: xrep.Paper24BitLimits})
	a := w.MustAddNode("a")
	_, drv, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	to := xrep.PortName{Node: "a", Guardian: 99, Port: 1}
	if err := drv.Send(to, "cmd", 1<<30); err == nil {
		t.Fatal("int wider than the 24-bit system standard left the node")
	}
	if err := drv.Send(to, "cmd", 1<<20); err != nil {
		t.Fatalf("legal 24-bit int rejected: %v", err)
	}
}

func TestSendCheckedCatchesMismatchAtSender(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	registerEcho(t, w)
	created, err := a.Bootstrap("echo")
	if err != nil {
		t.Fatal(err)
	}
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	// Wrong command.
	if err := drv.SendChecked(echoType, created.Ports[0], "nonsense"); err == nil {
		t.Fatal("checked send of undeclared command succeeded")
	}
	// Wrong arg kind.
	if err := drv.SendChecked(echoType, created.Ports[0], "echo", 42); err == nil {
		t.Fatal("checked send with wrong arg kind succeeded")
	}
	// Wrong arity.
	if err := drv.SendChecked(echoType, created.Ports[0], "echo", "a", "b"); err == nil {
		t.Fatal("checked send with wrong arity succeeded")
	}
	// Correct.
	if err := drv.SendChecked(echoType, created.Ports[0], "echo", "ok"); err != nil {
		t.Fatalf("legal checked send failed: %v", err)
	}
}

func TestReceiverTypeMismatchDiscardedWithFailure(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	registerEcho(t, w)
	created, err := a.Bootstrap("echo")
	if err != nil {
		t.Fatal(err)
	}
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	reply := drv.Guardian().MustNewPort(echoReplyType, 8)
	// Unchecked send with a bad argument kind: the receiving node rejects
	// it and reports a failure to the reply port.
	if err := drv.SendReplyTo(created.Ports[0], reply.Name(), "echo", 99); err != nil {
		t.Fatal(err)
	}
	m, st := drv.Receive(2*time.Second, reply)
	if st != RecvOK {
		t.Fatalf("status %v, want failure message", st)
	}
	if !m.IsFailure() {
		t.Fatalf("got %s, want failure", m.Command)
	}
	if w.Stats().DiscardBadType.Load() != 1 {
		t.Fatalf("DiscardBadType = %d", w.Stats().DiscardBadType.Load())
	}
}

func TestFailureWhenGuardianDoesNotExist(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	_ = a
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	reply := drv.Guardian().MustNewPort(echoReplyType, 8)
	ghost := xrep.PortName{Node: "alpha", Guardian: 424242, Port: 7}
	if err := drv.SendReplyTo(ghost, reply.Name(), "echoed", "x"); err != nil {
		t.Fatal(err)
	}
	m, st := drv.Receive(2*time.Second, reply)
	if st != RecvOK || !m.IsFailure() {
		t.Fatalf("want failure message, got %v/%v", st, m)
	}
	if m.FailureText() == "" {
		t.Fatal("failure text empty")
	}
	if w.Stats().DiscardNoGuardian.Load() != 1 {
		t.Fatalf("DiscardNoGuardian = %d", w.Stats().DiscardNoGuardian.Load())
	}
}

func TestFailureWhenPortDoesNotExist(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	registerEcho(t, w)
	created, err := a.Bootstrap("echo")
	if err != nil {
		t.Fatal(err)
	}
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	reply := drv.Guardian().MustNewPort(echoReplyType, 8)
	bad := created.Ports[0]
	bad.Port = 999
	if err := drv.SendReplyTo(bad, reply.Name(), "echo", "x"); err != nil {
		t.Fatal(err)
	}
	m, st := drv.Receive(2*time.Second, reply)
	if st != RecvOK || !m.IsFailure() {
		t.Fatalf("want failure, got %v", st)
	}
	if w.Stats().DiscardNoPort.Load() != 1 {
		t.Fatalf("DiscardNoPort = %d", w.Stats().DiscardNoPort.Load())
	}
}

func TestNoFailureWithoutReplyTo(t *testing.T) {
	w, _, b := newWorld(t, Config{})
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	ghost := xrep.PortName{Node: "alpha", Guardian: 424242, Port: 7}
	if err := drv.Send(ghost, "echoed", "x"); err != nil {
		t.Fatal(err)
	}
	w.Quiesce()
	time.Sleep(10 * time.Millisecond)
	if got := w.Stats().FailuresSent.Load(); got != 0 {
		t.Fatalf("FailuresSent = %d for replyless message", got)
	}
}

func TestPortFullDiscardsWithFailure(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	// sinkDef never receives, so its port fills up.
	sinkType := NewPortType("sink_port").Msg("drop", xrep.KindInt)
	w.MustRegister(&GuardianDef{
		TypeName:     "sink",
		Provides:     []*PortType{sinkType},
		PortCapacity: 4,
		Init:         func(ctx *Ctx) { <-ctx.G.Killed() },
	})
	created, err := a.Bootstrap("sink")
	if err != nil {
		t.Fatal(err)
	}
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	reply := drv.Guardian().MustNewPort(echoReplyType, 32)
	for i := 0; i < 10; i++ {
		if err := drv.SendReplyTo(created.Ports[0], reply.Name(), "drop", i); err != nil {
			t.Fatal(err)
		}
	}
	w.Quiesce()
	time.Sleep(20 * time.Millisecond)
	st := w.Stats()
	if st.DiscardPortFull.Load() != 6 {
		t.Fatalf("DiscardPortFull = %d, want 6 (cap 4 of 10)", st.DiscardPortFull.Load())
	}
	// Each discard produced a failure to the reply port.
	failures := 0
	for {
		m, s := drv.Receive(100*time.Millisecond, reply)
		if s != RecvOK {
			break
		}
		if m.IsFailure() {
			failures++
		}
	}
	if failures != 6 {
		t.Fatalf("received %d failure replies, want 6", failures)
	}
}

func TestReceiveTimeout(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	_, drv, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	p := drv.Guardian().MustNewPort(echoReplyType, 8)
	start := time.Now()
	m, st := drv.Receive(30*time.Millisecond, p)
	if st != RecvTimeout || m != nil {
		t.Fatalf("got %v/%v, want timeout", st, m)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("timed out after only %v", el)
	}
}

func TestReceivePollWithZeroTimeout(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	_, drv, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	p := drv.Guardian().MustNewPort(echoReplyType, 8)
	if _, st := drv.Receive(0, p); st != RecvTimeout {
		t.Fatalf("poll on empty port = %v", st)
	}
}

func TestReceivePortPriority(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	g, drv, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	hi := g.MustNewPort(NewPortType("hi").Msg("h", xrep.KindInt), 8)
	lo := g.MustNewPort(NewPortType("lo").Msg("l", xrep.KindInt), 8)
	// Queue on both; the first-listed port must win.
	if err := drv.Send(lo.Name(), "l", 1); err != nil {
		t.Fatal(err)
	}
	if err := drv.Send(hi.Name(), "h", 2); err != nil {
		t.Fatal(err)
	}
	// Local sends are async; wait for both to arrive.
	deadline := time.Now().Add(time.Second)
	for (hi.Len() == 0 || lo.Len() == 0) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	m, st := drv.Receive(time.Second, hi, lo)
	if st != RecvOK || m.Command != "h" {
		t.Fatalf("priority receive got %v, want h from hi port", m)
	}
}

func TestReceiveOnForeignPortPanics(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	g1, drv1, err := a.NewDriver("d1")
	if err != nil {
		t.Fatal(err)
	}
	_ = g1
	g2, _, err := a.NewDriver("d2")
	if err != nil {
		t.Fatal(err)
	}
	foreign := g2.MustNewPort(echoReplyType, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("receive on another guardian's port did not panic")
		}
	}()
	drv1.Receive(time.Millisecond, foreign)
}

func TestMessagesBetweenNodesUseNetwork(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	registerEcho(t, w)
	created, err := a.Bootstrap("echo")
	if err != nil {
		t.Fatal(err)
	}
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	reply := drv.Guardian().MustNewPort(echoReplyType, 8)
	if err := drv.SendReplyTo(created.Ports[0], reply.Name(), "echo", "net"); err != nil {
		t.Fatal(err)
	}
	if m, st := drv.Receive(2*time.Second, reply); st != RecvOK || m.Str(0) != "net" {
		t.Fatalf("echo over network failed: %v", st)
	}
	if w.Net().Stats().Sent < 2 {
		t.Fatal("cross-node messages did not traverse the network")
	}
}

func TestLargeMessageFragmentsAndReassembles(t *testing.T) {
	w, a, b := newWorld(t, Config{FragmentMTU: 512})
	registerEcho(t, w)
	created, err := a.Bootstrap("echo")
	if err != nil {
		t.Fatal(err)
	}
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	reply := drv.Guardian().MustNewPort(echoReplyType, 8)
	big := string(make([]byte, 20_000))
	if err := drv.SendReplyTo(created.Ports[0], reply.Name(), "echo", big); err != nil {
		t.Fatal(err)
	}
	m, st := drv.Receive(5*time.Second, reply)
	if st != RecvOK {
		t.Fatalf("status %v", st)
	}
	if len(m.Str(0)) != 20_000 {
		t.Fatalf("echoed %d bytes, want 20000", len(m.Str(0)))
	}
	if w.Net().Stats().Sent < 40 {
		t.Fatalf("expected ≥40 packets for fragmented round trip, got %d", w.Net().Stats().Sent)
	}
}

func TestGuardianStatePrivate(t *testing.T) {
	// Port names are the only global names: a guardian's objects are
	// reachable from outside only via messages. This test verifies the
	// runtime refuses to encode raw Go pointers/structs in messages, which
	// is how the "no addresses in messages" restriction manifests here.
	_, a, _ := newWorld(t, Config{})
	_, drv, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	type obj struct{ n int }
	o := &obj{1}
	to := xrep.PortName{Node: "alpha", Guardian: 3, Port: 1}
	//lint:allow transmissible deliberate violation: the test asserts the runtime rejects a pointer in a message
	if err := drv.Send(to, "x", o); err == nil {
		t.Fatal("raw object address crossed a guardian boundary")
	}
}

func TestSelfDestruct(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	registerEcho(t, w)
	created, err := a.Bootstrap("echo")
	if err != nil {
		t.Fatal(err)
	}
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.Send(created.Ports[0], "shutdown"); err != nil {
		t.Fatal(err)
	}
	// After self-destruct, messages to the old port draw a failure.
	reply := drv.Guardian().MustNewPort(echoReplyType, 8)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := drv.SendReplyTo(created.Ports[0], reply.Name(), "echo", "anyone?"); err != nil {
			t.Fatal(err)
		}
		m, st := drv.Receive(time.Second, reply)
		if st == RecvOK && m.IsFailure() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("self-destructed guardian still answering")
		}
	}
}

func TestCreateLocalOnly(t *testing.T) {
	w, a, _ := newWorld(t, Config{})
	registerEcho(t, w)
	g, _, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	created, err := g.Create("echo")
	if err != nil {
		t.Fatal(err)
	}
	// The new guardian must live at the creator's node.
	if created.Ports[0].Node != "alpha" {
		t.Fatalf("guardian created at %q, want alpha", created.Ports[0].Node)
	}
}

func TestCreateUnknownDef(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	g, _, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Create("no-such-def"); err == nil {
		t.Fatal("creation from unknown definition succeeded")
	}
}

func TestWorldRegisterValidation(t *testing.T) {
	w := NewWorld(Config{})
	if err := w.Register(&GuardianDef{}); err == nil {
		t.Fatal("nameless definition accepted")
	}
	if err := w.Register(&GuardianDef{TypeName: "x"}); err == nil {
		t.Fatal("Init-less definition accepted")
	}
	def := &GuardianDef{TypeName: "x", Init: func(*Ctx) {}}
	if err := w.Register(def); err != nil {
		t.Fatal(err)
	}
	if err := w.Register(def); err == nil {
		t.Fatal("duplicate definition accepted")
	}
}

func TestAddNodeDuplicate(t *testing.T) {
	w := NewWorld(Config{})
	w.MustAddNode("n")
	if _, err := w.AddNode("n"); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := w.Node("n"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Node("ghost"); err == nil {
		t.Fatal("lookup of unknown node succeeded")
	}
	nodes := w.Nodes()
	if len(nodes) != 1 || nodes[0] != "n" {
		t.Fatalf("Nodes() = %v", nodes)
	}
}
