package guardian

import (
	"fmt"

	"repro/internal/xrep"
)

// Message is a received message: the command identifier, the decoded
// argument values (left to right), the optional reply port, and provenance
// stamped by the runtime.
type Message struct {
	// Command is the command identifier.
	Command string
	// Args are the argument values in order.
	Args xrep.Seq
	// ReplyTo is the reply port carried by the message; zero when absent.
	ReplyTo xrep.PortName
	// SrcNode is the sending node's address.
	SrcNode string
	// SrcGuardian is the sending guardian's id on SrcNode, usable as an
	// access-control principal.
	SrcGuardian uint64
	// Via is the local port the message arrived on.
	Via *Port
}

// IsFailure reports whether this is the implicit system failure message.
func (m *Message) IsFailure() bool { return m.Command == FailureCommand }

// FailureText returns the string argument of a failure message, or "".
func (m *Message) FailureText() string {
	if !m.IsFailure() || len(m.Args) != 1 {
		return ""
	}
	if s, ok := m.Args[0].(xrep.Str); ok {
		return string(s)
	}
	return ""
}

// Arg returns the i-th argument or an error when out of range.
func (m *Message) Arg(i int) (xrep.Value, error) {
	if i < 0 || i >= len(m.Args) {
		return nil, fmt.Errorf("guardian: %s has %d args, asked for %d", m.Command, len(m.Args), i)
	}
	return m.Args[i], nil
}

// Int returns argument i as an integer; it panics on a kind mismatch,
// which can only happen if the port type declared the wrong kind — a
// programming error, since the runtime already type-checked the message.
func (m *Message) Int(i int) int64 {
	v, err := m.Arg(i)
	if err != nil {
		panic(err)
	}
	n, ok := v.(xrep.Int)
	if !ok {
		panic(fmt.Sprintf("guardian: %s arg %d is %s, not int", m.Command, i, v.Kind()))
	}
	return int64(n)
}

// Str returns argument i as a string; it panics on a kind mismatch.
func (m *Message) Str(i int) string {
	v, err := m.Arg(i)
	if err != nil {
		panic(err)
	}
	s, ok := v.(xrep.Str)
	if !ok {
		panic(fmt.Sprintf("guardian: %s arg %d is %s, not string", m.Command, i, v.Kind()))
	}
	return string(s)
}

// Bool returns argument i as a boolean; it panics on a kind mismatch.
func (m *Message) Bool(i int) bool {
	v, err := m.Arg(i)
	if err != nil {
		panic(err)
	}
	b, ok := v.(xrep.Bool)
	if !ok {
		panic(fmt.Sprintf("guardian: %s arg %d is %s, not bool", m.Command, i, v.Kind()))
	}
	return bool(b)
}

// Real returns argument i as a real; it panics on a kind mismatch.
func (m *Message) Real(i int) float64 {
	v, err := m.Arg(i)
	if err != nil {
		panic(err)
	}
	r, ok := v.(xrep.Real)
	if !ok {
		panic(fmt.Sprintf("guardian: %s arg %d is %s, not real", m.Command, i, v.Kind()))
	}
	return float64(r)
}

// Port returns argument i as a port name; it panics on a kind mismatch.
func (m *Message) Port(i int) xrep.PortName {
	v, err := m.Arg(i)
	if err != nil {
		panic(err)
	}
	p, ok := v.(xrep.PortName)
	if !ok {
		panic(fmt.Sprintf("guardian: %s arg %d is %s, not portname", m.Command, i, v.Kind()))
	}
	return p
}

// Token returns argument i as a token; it panics on a kind mismatch.
func (m *Message) Token(i int) xrep.Token {
	v, err := m.Arg(i)
	if err != nil {
		panic(err)
	}
	t, ok := v.(xrep.Token)
	if !ok {
		panic(fmt.Sprintf("guardian: %s arg %d is %s, not token", m.Command, i, v.Kind()))
	}
	return t
}

// Decode maps argument i — an abstract-type record — back to this node's
// internal representation using the node's registry (the decode half of
// §3.3). It is the per-argument version of the paper's "objects in the
// message are decoded left to right".
func (m *Message) Decode(i int) (any, error) {
	v, err := m.Arg(i)
	if err != nil {
		return nil, err
	}
	if m.Via == nil {
		return nil, fmt.Errorf("guardian: message has no receiving port")
	}
	return m.Via.guardian.node.Registry().Decode(v)
}
