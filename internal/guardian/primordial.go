package guardian

import (
	"repro/internal/xrep"
)

// Each node comes into existence with a primordial guardian (§2.1), which
// can — among other things — create guardians at its node in response to
// messages arriving from guardians at other nodes. This restriction on
// creation preserves the autonomy of physical nodes: processing moves to a
// node only with the consent of software already resident there.

// Well-known identity of every node's primordial guardian.
const (
	primordialGuardianID = 1
	primordialPortID     = 1
)

// PrimordialType describes the primordial guardian's port: remote
// guardians request creation with create(def_name, args) and liveness
// probes with ping().
var PrimordialType = NewPortType("primordial_port").
	Msg("create", xrep.KindString, xrep.KindSeq).
	Replies("create", "created", FailureCommand).
	Msg("ping").
	Replies("ping", "pong")

// CreatedReplyType describes a port able to receive the primordial
// guardian's responses; requesters make such ports to collect results.
var CreatedReplyType = NewPortType("primordial_reply_port").
	Msg("created", xrep.KindSeq).
	Msg("pong")

// PrimordialPort returns the well-known port name of a node's primordial
// guardian.
func PrimordialPort(nodeName string) xrep.PortName {
	return xrep.PortName{Node: nodeName, Guardian: primordialGuardianID, Port: primordialPortID}
}

// PrimordialPort returns this node's primordial port name.
func (n *Node) PrimordialPort() xrep.PortName {
	return PrimordialPort(n.name)
}

var primordialDef = &GuardianDef{
	TypeName: "_primordial",
	Provides: []*PortType{PrimordialType},
	Init:     primordialMain,
}

// spawnPrimordial creates the node's primordial guardian with its fixed,
// well-known identity. Called at node start and again at every restart.
func (n *Node) spawnPrimordial() {
	meta := &guardianMeta{
		id:      primordialGuardianID,
		defName: primordialDef.TypeName,
		portIDs: []uint64{primordialPortID},
	}
	g, err := n.instantiate(primordialDef, nil, meta, false)
	if err != nil {
		panic("guardian: cannot spawn primordial: " + err.Error())
	}
	n.mu.Lock()
	n.primordial = g
	if n.nextGID < primordialGuardianID {
		n.nextGID = primordialGuardianID
	}
	n.mu.Unlock()
}

// primordialMain services create and ping requests until the node dies.
func primordialMain(ctx *Ctx) {
	n := ctx.G.node
	NewReceiver(ctx.Ports[0]).
		When("create", func(pr *Process, m *Message) {
			defName := m.Str(0)
			args, _ := m.Args[1].(xrep.Seq)
			reply := func(ok bool, payload xrep.Value, text string) {
				if m.ReplyTo.IsZero() {
					return
				}
				if ok {
					_ = pr.Send(m.ReplyTo, "created", payload)
				} else {
					_ = pr.Send(m.ReplyTo, FailureCommand, text)
				}
			}
			n.mu.Lock()
			policy := n.allowCreate
			n.mu.Unlock()
			if policy != nil && !policy(m.SrcNode, m.SrcGuardian, defName) {
				reply(false, nil, "creation not permitted by node owner")
				return
			}
			anyArgs := make([]any, len(args))
			for i, a := range args {
				anyArgs[i] = a
			}
			created, err := ctx.G.Create(defName, anyArgs...)
			if err != nil {
				reply(false, nil, "creation failed: "+err.Error())
				return
			}
			ports := make(xrep.Seq, len(created.Ports))
			for i, p := range created.Ports {
				ports[i] = p
			}
			reply(true, ports, "")
		}).
		When("ping", func(pr *Process, m *Message) {
			if !m.ReplyTo.IsZero() {
				_ = pr.Send(m.ReplyTo, "pong")
			}
		}).
		WhenFailure(func(_ *Process, _ string, _ *Message) {
			// §3.4 failure arm: a discarded message named the primordial
			// port as its replyto. Creation already happened (or didn't);
			// the creator's own timeout covers the lost answer.
		}).
		Loop(ctx.Proc, nil)
}

// Bootstrap creates a guardian at this node directly, acting as the node
// owner (it runs inside the primordial guardian). It is how the first
// application guardian gets onto a node; everything after that can use
// guardian-to-guardian creation or remote create requests.
//
// Note the asymmetry with remote creation: Bootstrap bypasses the
// allowCreate policy exactly because it is the owner's own action.
func (n *Node) Bootstrap(defName string, args ...any) (*Created, error) {
	n.mu.Lock()
	p := n.primordial
	n.mu.Unlock()
	if p == nil {
		return nil, ErrNodeDown
	}
	// Creation arguments: Create re-encodes, so pass through as-is.
	return p.Create(defName, args...)
}
