// Package guardian implements the paper's primary contribution: guardians
// (§2) — the modular unit of distributed programs — and the no-wait
// send / receive-with-timeout communication primitives (§3).
//
// A World models the whole distributed program: a set of Nodes joined by a
// simulated network. Each Node hosts Guardians; each Guardian owns objects
// (its state), Ports (the only globally named entities), and Processes
// (goroutines). Processes of one guardian share its objects; processes of
// different guardians communicate only by sending typed messages to ports.
package guardian

import (
	"fmt"
	"sort"

	"repro/internal/xrep"
)

// AnyKind is a wildcard in message specs: the argument may be any value
// kind. Used for arguments whose type is an abstract (user-defined) type
// record or genuinely polymorphic.
const AnyKind = xrep.Kind(0xFF)

// FailureCommand is "automatically and implicitly associated with each
// port type" (§3.4): the system sends failure(string) messages to convey
// transmission problems or non-existence of the target port or guardian.
const FailureCommand = "failure"

// MsgSpec describes one message a port accepts: the kinds of its arguments
// (in order) and, as documentation mirroring the paper's `replies` clause,
// the command identifiers of expected responses.
type MsgSpec struct {
	Args    []xrep.Kind
	Replies []string
}

// PortType describes a port by the messages that can be sent to it (§3.2).
// Port types live in the world-wide library, enabling the library-level
// analog of compile-time checking of all message passing.
type PortType struct {
	name string
	msgs map[string]MsgSpec
}

// NewPortType starts a port type description with the given type name.
func NewPortType(name string) *PortType {
	return &PortType{name: name, msgs: make(map[string]MsgSpec)}
}

// Msg adds a message with the given command identifier and argument kinds.
// It returns the port type for chaining. Re-declaring a command or
// declaring the implicit failure command panics: port types are static
// declarations, so a conflict is a programming error.
func (pt *PortType) Msg(command string, argKinds ...xrep.Kind) *PortType {
	if command == FailureCommand {
		panic("guardian: failure is implicitly part of every port type")
	}
	if _, dup := pt.msgs[command]; dup {
		panic(fmt.Sprintf("guardian: duplicate message %q on port type %s", command, pt.name))
	}
	pt.msgs[command] = MsgSpec{Args: argKinds}
	return pt
}

// Replies documents the expected response commands of the most specific
// message semantics: it attaches to the command named first. The paper
// pairs each request with its expected responses; Replies records that
// pairing for tooling and doc purposes.
func (pt *PortType) Replies(command string, replies ...string) *PortType {
	spec, ok := pt.msgs[command]
	if !ok {
		panic(fmt.Sprintf("guardian: Replies for undeclared message %q", command))
	}
	spec.Replies = replies
	pt.msgs[command] = spec
	return pt
}

// Name returns the port type's name.
func (pt *PortType) Name() string { return pt.name }

// Commands returns the declared command identifiers, sorted.
func (pt *PortType) Commands() []string {
	out := make([]string, 0, len(pt.msgs))
	for c := range pt.msgs {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Spec returns the message spec for a command and whether it exists. The
// implicit failure message is reported for every port type.
func (pt *PortType) Spec(command string) (MsgSpec, bool) {
	if command == FailureCommand {
		return MsgSpec{Args: []xrep.Kind{xrep.KindString}}, true
	}
	spec, ok := pt.msgs[command]
	return spec, ok
}

// check validates a command and argument list against the port type. It
// is the runtime half of the paper's compile-time message checking; the
// sender-side half runs when the sender names the port type in Send.
func (pt *PortType) check(command string, args xrep.Seq) error {
	spec, ok := pt.Spec(command)
	if !ok {
		return fmt.Errorf("guardian: port type %s has no message %q", pt.name, command)
	}
	if len(args) != len(spec.Args) {
		return fmt.Errorf("guardian: %s(%s) takes %d args, got %d",
			pt.name, command, len(spec.Args), len(args))
	}
	for i, k := range spec.Args {
		if k == AnyKind {
			continue
		}
		if args[i] == nil {
			return fmt.Errorf("guardian: %s(%s) arg %d is nil", pt.name, command, i)
		}
		if args[i].Kind() != k {
			return fmt.Errorf("guardian: %s(%s) arg %d is %s, want %s",
				pt.name, command, i, args[i].Kind(), k)
		}
	}
	return nil
}
