package guardian

import (
	"testing"
	"time"

	"repro/internal/xrep"
)

// requestCreate sends a create request to node's primordial guardian and
// returns the reply message.
func requestCreate(t *testing.T, drv *Process, node string, defName string, args xrep.Seq) (*Message, RecvStatus) {
	t.Helper()
	reply := drv.Guardian().MustNewPort(CreatedReplyType, 4)
	defer drv.Guardian().RemovePort(reply)
	if args == nil {
		args = xrep.Seq{}
	}
	if err := drv.SendCheckedReplyTo(PrimordialType, PrimordialPort(node), reply.Name(),
		"create", defName, args); err != nil {
		t.Fatal(err)
	}
	return drv.Receive(2*time.Second, reply)
}

func TestRemoteCreateViaPrimordial(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	registerEcho(t, w)
	_ = a
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	m, st := requestCreate(t, drv, "alpha", "echo", nil)
	if st != RecvOK {
		t.Fatalf("status %v", st)
	}
	if m.Command != "created" {
		t.Fatalf("reply %s(%v)", m.Command, m.Args)
	}
	ports, ok := m.Args[0].(xrep.Seq)
	if !ok || len(ports) != 1 {
		t.Fatalf("created ports = %v", m.Args[0])
	}
	echoPort, ok := ports[0].(xrep.PortName)
	if !ok || echoPort.Node != "alpha" {
		t.Fatalf("created port %v, want one on alpha", ports[0])
	}
	// The created guardian works.
	reply := drv.Guardian().MustNewPort(echoReplyType, 4)
	if err := drv.SendReplyTo(echoPort, reply.Name(), "echo", "hi"); err != nil {
		t.Fatal(err)
	}
	if m, st := drv.Receive(2*time.Second, reply); st != RecvOK || m.Str(0) != "hi" {
		t.Fatalf("remote-created echo failed: %v", st)
	}
}

func TestRemoteCreateUnknownDefFails(t *testing.T) {
	_, _, b := newWorld(t, Config{})
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	m, st := requestCreate(t, drv, "alpha", "mystery", nil)
	if st != RecvOK || !m.IsFailure() {
		t.Fatalf("want failure, got %v %v", st, m)
	}
}

func TestAutonomyPolicyDeniesCreation(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	registerEcho(t, w)
	// The alpha owner permits no remote creations at all.
	a.SetCreatePolicy(func(srcNode string, srcGuardian uint64, defName string) bool {
		return false
	})
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	m, st := requestCreate(t, drv, "alpha", "echo", nil)
	if st != RecvOK || !m.IsFailure() {
		t.Fatalf("denied creation should fail, got %v %v", st, m)
	}
	if m.FailureText() != "creation not permitted by node owner" {
		t.Fatalf("failure text %q", m.FailureText())
	}
	// Local (owner) creation is unaffected by the remote policy.
	if _, err := a.Bootstrap("echo"); err != nil {
		t.Fatalf("owner's own creation blocked: %v", err)
	}
}

func TestAutonomyPolicySelective(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	registerEcho(t, w)
	w.MustRegister(&GuardianDef{
		TypeName: "other",
		Init:     func(ctx *Ctx) {},
	})
	a.SetCreatePolicy(func(srcNode string, srcGuardian uint64, defName string) bool {
		return defName == "echo" && srcNode == "beta"
	})
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	if m, st := requestCreate(t, drv, "alpha", "echo", nil); st != RecvOK || m.Command != "created" {
		t.Fatalf("permitted creation failed: %v", m)
	}
	if m, st := requestCreate(t, drv, "alpha", "other", nil); st != RecvOK || !m.IsFailure() {
		t.Fatalf("unpermitted def created: %v", m)
	}
}

func TestPrimordialPing(t *testing.T) {
	_, _, b := newWorld(t, Config{})
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	reply := drv.Guardian().MustNewPort(CreatedReplyType, 4)
	if err := drv.SendCheckedReplyTo(PrimordialType, PrimordialPort("alpha"), reply.Name(), "ping"); err != nil {
		t.Fatal(err)
	}
	m, st := drv.Receive(2*time.Second, reply)
	if st != RecvOK || m.Command != "pong" {
		t.Fatalf("ping got %v/%v", st, m)
	}
}

func TestPrimordialSurvivesRestartAtSameName(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	registerEcho(t, w)
	a.Crash()
	if err := a.Restart(); err != nil {
		t.Fatal(err)
	}
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	m, st := requestCreate(t, drv, "alpha", "echo", nil)
	if st != RecvOK || m.Command != "created" {
		t.Fatalf("primordial not reachable after restart: %v %v", st, m)
	}
}

func TestPrimordialCreateWithArgs(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	_ = a
	argPort := NewPortType("arg_port").Msg("get").Replies("get", "value")
	w.MustRegister(&GuardianDef{
		TypeName: "greeter",
		Provides: []*PortType{argPort},
		Init: func(ctx *Ctx) {
			greeting := "none"
			if len(ctx.Args) == 1 {
				if s, ok := ctx.Args[0].(xrep.Str); ok {
					greeting = string(s)
				}
			}
			//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
			NewReceiver(ctx.Ports[0]).
				When("get", func(pr *Process, m *Message) {
					if !m.ReplyTo.IsZero() {
						_ = pr.Send(m.ReplyTo, "value", greeting)
					}
				}).
				Loop(ctx.Proc, nil)
		},
	})
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	m, st := requestCreate(t, drv, "alpha", "greeter", xrep.Seq{xrep.Str("hello from beta")})
	if st != RecvOK || m.Command != "created" {
		t.Fatalf("create failed: %v %v", st, m)
	}
	ports := m.Args[0].(xrep.Seq)
	valReply := drv.Guardian().MustNewPort(NewPortType("vr").Msg("value", xrep.KindString), 4)
	if err := drv.SendReplyTo(ports[0].(xrep.PortName), valReply.Name(), "get"); err != nil {
		t.Fatal(err)
	}
	vm, st := drv.Receive(2*time.Second, valReply)
	if st != RecvOK || vm.Str(0) != "hello from beta" {
		t.Fatalf("creation args lost: %v", vm)
	}
}
