package guardian

import (
	"encoding/binary"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xrep"
)

// counterType: a guardian keeping a persistent counter. inc() bumps and
// logs; get() replyto reports the value.
var counterPortType = NewPortType("counter_port").
	Msg("inc").
	Msg("get").
	Replies("get", "value")

var counterReplyType = NewPortType("counter_reply_port").
	Msg("value", xrep.KindInt)

// counterDef logs each increment durably before treating it as done, and
// recovers the count by replaying its log — the §2.2 recipe.
var counterDef = &GuardianDef{
	TypeName: "counter",
	Provides: []*PortType{counterPortType},
	Init:     counterMain,
	Recover:  counterMain,
}

func counterMain(ctx *Ctx) {
	log := ctx.G.Log()
	var count int64
	if ctx.Recovering {
		_, recs, _ := log.Recover()
		count = int64(len(recs))
	}
	//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
	NewReceiver(ctx.Ports[0]).
		When("inc", func(pr *Process, m *Message) {
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], uint64(count+1))
			log.AppendSync(buf[:])
			count++
		}).
		When("get", func(pr *Process, m *Message) {
			if !m.ReplyTo.IsZero() {
				_ = pr.Send(m.ReplyTo, "value", count)
			}
		}).
		Loop(ctx.Proc, nil)
}

func counterValue(t *testing.T, drv *Process, port xrep.PortName) (int64, bool) {
	t.Helper()
	reply := drv.Guardian().MustNewPort(counterReplyType, 4)
	defer drv.Guardian().RemovePort(reply)
	if err := drv.SendReplyTo(port, reply.Name(), "get"); err != nil {
		t.Fatal(err)
	}
	m, st := drv.Receive(2*time.Second, reply)
	if st != RecvOK {
		return 0, false
	}
	if m.IsFailure() {
		return 0, false
	}
	return m.Int(0), true
}

func TestCrashKillsGuardiansAndDropsVolatileState(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	w.MustRegister(counterDef)
	created, err := a.Bootstrap("counter")
	if err != nil {
		t.Fatal(err)
	}
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	port := created.Ports[0]
	if v, ok := counterValue(t, drv, port); !ok || v != 0 {
		t.Fatalf("initial value %d/%v", v, ok)
	}
	a.Crash()
	if a.Alive() {
		t.Fatal("node alive after crash")
	}
	// Messages to a dead node vanish; a get times out.
	if _, ok := counterValue(t, drv, port); ok {
		t.Fatal("dead node answered")
	}
}

func TestRecoverRestoresLoggedState(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	w.MustRegister(counterDef)
	created, err := a.Bootstrap("counter")
	if err != nil {
		t.Fatal(err)
	}
	port := created.Ports[0]
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := drv.Send(port, "inc"); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until all five increments are durable.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, ok := counterValue(t, drv, port); ok && v == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("increments never applied")
		}
	}
	a.Crash()
	if err := a.Restart(); err != nil {
		t.Fatal(err)
	}
	// Same port name answers after recovery: identity is preserved.
	v, ok := counterValue(t, drv, port)
	if !ok {
		t.Fatal("recovered guardian not answering on its old port name")
	}
	if v != 5 {
		t.Fatalf("recovered count = %d, want 5 (permanence of effect)", v)
	}
	if w.Stats().GuardiansRecovered.Load() != 1 {
		t.Fatalf("GuardiansRecovered = %d", w.Stats().GuardiansRecovered.Load())
	}
}

func TestNonRecoverableGuardianForgotten(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	registerEcho(t, w) // echoDef has no Recover
	created, err := a.Bootstrap("echo")
	if err != nil {
		t.Fatal(err)
	}
	a.Crash()
	if err := a.Restart(); err != nil {
		t.Fatal(err)
	}
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	reply := drv.Guardian().MustNewPort(echoReplyType, 8)
	if err := drv.SendReplyTo(created.Ports[0], reply.Name(), "echo", "x"); err != nil {
		t.Fatal(err)
	}
	m, st := drv.Receive(2*time.Second, reply)
	if st != RecvOK || !m.IsFailure() {
		t.Fatalf("forgotten guardian should draw failure, got %v", st)
	}
}

func TestRestartWhileUpFails(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	if err := a.Restart(); err == nil {
		t.Fatal("Restart on a live node succeeded")
	}
}

func TestCrashIsIdempotent(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	a.Crash()
	a.Crash() // must not panic
	if err := a.Restart(); err != nil {
		t.Fatal(err)
	}
	if !a.Alive() {
		t.Fatal("node not alive after restart")
	}
}

func TestProcessesObserveKill(t *testing.T) {
	w, a, _ := newWorld(t, Config{})
	var observed atomic.Bool
	w.MustRegister(&GuardianDef{
		TypeName: "watcher",
		Init: func(ctx *Ctx) {
			<-ctx.G.Killed()
			observed.Store(true)
		},
	})
	if _, err := a.Bootstrap("watcher"); err != nil {
		t.Fatal(err)
	}
	a.Crash()
	deadline := time.Now().Add(time.Second)
	for !observed.Load() {
		if time.Now().After(deadline) {
			t.Fatal("process never observed the kill")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReceiveReturnsKilledOnCrash(t *testing.T) {
	w, a, _ := newWorld(t, Config{})
	status := make(chan RecvStatus, 1)
	w.MustRegister(&GuardianDef{
		TypeName: "blocked",
		Provides: []*PortType{NewPortType("bp").Msg("never")},
		Init: func(ctx *Ctx) {
			//lint:allow recvhygiene the blocked receive is the subject: the test asserts Crash unblocks it with RecvKilled
			_, st := ctx.Proc.Receive(Infinite, ctx.Ports[0])
			status <- st
		},
	})
	if _, err := a.Bootstrap("blocked"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	a.Crash()
	select {
	case st := <-status:
		if st != RecvKilled {
			t.Fatalf("blocked receive ended with %v, want killed", st)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked receive never unwound after crash")
	}
}

func TestSendFromDeadGuardianFails(t *testing.T) {
	_, a, _ := newWorld(t, Config{})
	g, drv, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	g.SelfDestruct()
	to := xrep.PortName{Node: "beta", Guardian: 1, Port: 1}
	if err := drv.Send(to, "ping"); err != ErrKilled {
		t.Fatalf("send from destroyed guardian = %v, want ErrKilled", err)
	}
}

func TestPortQueueLostAtCrash(t *testing.T) {
	// Messages queued but not received are volatile: after crash+recover
	// the counter reflects only logged increments, not queued ones.
	w, a, b := newWorld(t, Config{})
	// slowCounter waits before consuming so messages pile up.
	slow := &GuardianDef{
		TypeName: "slow_counter",
		Provides: []*PortType{counterPortType},
		Init: func(ctx *Ctx) {
			<-ctx.G.Killed() // never consume
		},
		Recover: counterMain,
	}
	w.MustRegister(slow)
	created, err := a.Bootstrap("slow_counter")
	if err != nil {
		t.Fatal(err)
	}
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := drv.Send(created.Ports[0], "inc"); err != nil {
			t.Fatal(err)
		}
	}
	w.Quiesce()
	time.Sleep(20 * time.Millisecond)
	a.Crash()
	if err := a.Restart(); err != nil {
		t.Fatal(err)
	}
	v, ok := counterValue(t, drv, created.Ports[0])
	if !ok {
		t.Fatal("recovered guardian not answering")
	}
	if v != 0 {
		t.Fatalf("recovered count = %d, want 0 (queued messages are volatile)", v)
	}
}

func TestGuardianIDsNotReusedAfterRestart(t *testing.T) {
	w, a, _ := newWorld(t, Config{})
	registerEcho(t, w)
	c1, err := a.Bootstrap("echo")
	if err != nil {
		t.Fatal(err)
	}
	a.Crash()
	if err := a.Restart(); err != nil {
		t.Fatal(err)
	}
	c2, err := a.Bootstrap("echo")
	if err != nil {
		t.Fatal(err)
	}
	if c2.GuardianID == c1.GuardianID {
		t.Fatalf("guardian id %d reused after restart", c1.GuardianID)
	}
}
