package guardian

import (
	"testing"
	"time"

	"repro/internal/xrep"
)

var interceptPT = NewPortType("intercept_test_port").
	Msg("session", xrep.KindString).
	Msg("app", xrep.KindString)

// TestInterceptConsumesOwnedCommands: a hook owning "session" sees those
// messages before arm dispatch, and its commands need no arm.
func TestInterceptConsumesOwnedCommands(t *testing.T) {
	w := NewWorld(Config{})
	n := w.MustAddNode("n")
	sessions := make(chan string, 8)
	apps := make(chan string, 8)
	w.MustRegister(&GuardianDef{
		TypeName: "interceptee",
		Provides: []*PortType{interceptPT},
		Init: func(ctx *Ctx) {
			//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
			NewReceiver(ctx.Ports[0]).
				Intercept(func(pr *Process, m *Message) bool {
					sessions <- m.Str(0)
					return true
				}, "session").
				When("app", func(pr *Process, m *Message) {
					apps <- m.Str(0)
				}).
				Loop(ctx.Proc, nil)
		},
	})
	created, err := n.Bootstrap("interceptee")
	if err != nil {
		t.Fatal(err)
	}
	_, drv, err := n.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.Send(created.Ports[0], "session", "s1"); err != nil {
		t.Fatal(err)
	}
	if err := drv.Send(created.Ports[0], "app", "a1"); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-sessions:
		if got != "s1" {
			t.Fatalf("hook saw %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hook never ran")
	}
	select {
	case got := <-apps:
		if got != "a1" {
			t.Fatalf("arm saw %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("arm never ran")
	}
}

// TestInterceptDeclinedFallsThrough: a hook that returns false hands the
// message to the arm; without an arm the message is quietly discarded.
func TestInterceptDeclinedFallsThrough(t *testing.T) {
	w := NewWorld(Config{})
	n := w.MustAddNode("n")
	arm := make(chan string, 8)
	w.MustRegister(&GuardianDef{
		TypeName: "decliner",
		Provides: []*PortType{interceptPT},
		Init: func(ctx *Ctx) {
			//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
			NewReceiver(ctx.Ports[0]).
				Intercept(func(pr *Process, m *Message) bool {
					return m.Str(0) == "mine"
				}, "session", "app").
				When("app", func(pr *Process, m *Message) {
					arm <- m.Str(0)
				}).
				Loop(ctx.Proc, nil)
		},
	})
	created, err := n.Bootstrap("decliner")
	if err != nil {
		t.Fatal(err)
	}
	_, drv, err := n.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	// Declined "session" has no arm: discarded without a panic.
	if err := drv.Send(created.Ports[0], "session", "notmine"); err != nil {
		t.Fatal(err)
	}
	// Declined "app" reaches the arm.
	if err := drv.Send(created.Ports[0], "app", "notmine"); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-arm:
		if got != "notmine" {
			t.Fatalf("arm saw %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("declined message never reached the arm")
	}
}

// TestInterceptRejectsUndeclaredCommand: owning a command no listed port
// declares is a construction-time error, matching When.
func TestInterceptRejectsUndeclaredCommand(t *testing.T) {
	w := NewWorld(Config{})
	n := w.MustAddNode("n")
	g, _, err := n.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	p := g.MustNewPort(interceptPT, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Intercept accepted an undeclared command")
		}
	}()
	//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
	NewReceiver(p).Intercept(func(*Process, *Message) bool { return true }, "nope")
}
