package guardian

import (
	"testing"

	"repro/internal/xrep"
)

func sampleMessage() *Message {
	return &Message{
		Command: "mix",
		Args: xrep.Seq{
			xrep.Int(7),
			xrep.Str("s"),
			xrep.Bool(true),
			xrep.Real(2.5),
			xrep.PortName{Node: "n", Guardian: 1, Port: 2},
			xrep.Token{Issuer: 3, Body: []byte{1}},
		},
		SrcNode:     "src",
		SrcGuardian: 9,
	}
}

func TestMessageAccessors(t *testing.T) {
	m := sampleMessage()
	if m.Int(0) != 7 {
		t.Fatal("Int")
	}
	if m.Str(1) != "s" {
		t.Fatal("Str")
	}
	if !m.Bool(2) {
		t.Fatal("Bool")
	}
	if m.Real(3) != 2.5 {
		t.Fatal("Real")
	}
	if m.Port(4).Guardian != 1 {
		t.Fatal("Port")
	}
	if m.Token(5).Issuer != 3 {
		t.Fatal("Token")
	}
}

func TestMessageAccessorKindMismatchPanics(t *testing.T) {
	m := sampleMessage()
	cases := []func(){
		func() { m.Int(1) },
		func() { m.Str(0) },
		func() { m.Bool(0) },
		func() { m.Real(0) },
		func() { m.Port(0) },
		func() { m.Token(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: kind mismatch did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMessageArgOutOfRange(t *testing.T) {
	m := sampleMessage()
	if _, err := m.Arg(99); err == nil {
		t.Fatal("out-of-range Arg succeeded")
	}
	if _, err := m.Arg(-1); err == nil {
		t.Fatal("negative Arg succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Int did not panic")
		}
	}()
	m.Int(99)
}

func TestMessageFailureHelpers(t *testing.T) {
	f := &Message{Command: FailureCommand, Args: xrep.Seq{xrep.Str("boom")}}
	if !f.IsFailure() || f.FailureText() != "boom" {
		t.Fatalf("failure helpers: %v %q", f.IsFailure(), f.FailureText())
	}
	n := &Message{Command: "ok"}
	if n.IsFailure() || n.FailureText() != "" {
		t.Fatal("non-failure misclassified")
	}
	malformed := &Message{Command: FailureCommand, Args: xrep.Seq{xrep.Int(1)}}
	if malformed.FailureText() != "" {
		t.Fatal("malformed failure text")
	}
}

func TestMessageDecodeViaNodeRegistry(t *testing.T) {
	w, a, _ := newWorld(t, Config{})
	_ = w
	a.Registry().Register(xrep.ComplexTypeName, xrep.DecodeRectComplex)
	g, _, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	p := g.MustNewPort(NewPortType("t").Msg("c", xrep.KindRec), 4)
	m := &Message{
		Command: "c",
		Args:    xrep.Seq{xrep.MustEncode(xrep.RectComplex{Re: 1, Im: 2})},
		Via:     p,
	}
	v, err := m.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	if v.(xrep.RectComplex) != (xrep.RectComplex{Re: 1, Im: 2}) {
		t.Fatalf("decoded %v", v)
	}
	// Decode without a receiving port fails cleanly.
	orphan := &Message{Command: "c", Args: xrep.Seq{xrep.Int(1)}}
	if _, err := orphan.Decode(0); err == nil {
		t.Fatal("Decode without Via succeeded")
	}
}

func TestRecvStatusStrings(t *testing.T) {
	if RecvOK.String() != "ok" || RecvTimeout.String() != "timeout" ||
		RecvKilled.String() != "killed" || RecvStatus(99).String() != "unknown" {
		t.Fatal("status strings")
	}
}

func TestConcurrentReceiversShareOnePort(t *testing.T) {
	// Several processes of one guardian may all receive on the same port;
	// each message is removed exactly once.
	w, a, _ := newWorld(t, Config{})
	_ = w
	g, drv, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	p := g.MustNewPort(NewPortType("work").Msg("job", xrep.KindInt), 256)
	const workers, jobs = 4, 100
	got := make(chan int64, jobs)
	for i := 0; i < workers; i++ {
		g.Spawn("w", func(pr *Process) {
			for {
				//lint:allow recvhygiene workers drain a same-guardian port until killed; the kill is the exit path under test
				m, st := pr.Receive(Infinite, p)
				if st != RecvOK {
					return
				}
				got <- m.Int(0)
			}
		})
	}
	for i := 0; i < jobs; i++ {
		if err := drv.Send(p.Name(), "job", i); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[int64]bool)
	for i := 0; i < jobs; i++ {
		v := <-got
		if seen[v] {
			t.Fatalf("job %d delivered twice", v)
		}
		seen[v] = true
	}
	g.SelfDestruct() // unblocks the workers
}

func TestSendChecksPortTypeOfFailureArm(t *testing.T) {
	// The implicit failure message is sendable to any port without
	// declaring it.
	w, a, _ := newWorld(t, Config{})
	_ = w
	g, drv, err := a.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	p := g.MustNewPort(NewPortType("t").Msg("x"), 4)
	if err := drv.SendChecked(p.Type(), p.Name(), FailureCommand, "synthetic"); err != nil {
		t.Fatalf("checked send of failure rejected: %v", err)
	}
}
