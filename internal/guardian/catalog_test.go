package guardian

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/durable"
)

// walConfig builds a world config whose nodes keep their storage in
// per-node WALs under root — so a second world over the same root is a
// new OS process recovering the first one's state.
func walConfig(root string, segSize int) Config {
	return Config{Store: func(node string) (durable.Store, error) {
		return durable.OpenWAL(filepath.Join(root, node), durable.WALConfig{SegmentSize: segSize})
	}}
}

// TestCatalogRecoversGuardianAcrossProcessDeath is the cross-process
// analog of TestRecoverRestoresLoggedState: the first world plays the
// incarnation that dies (Close stands in for kill -9 — nothing volatile
// is carried over), the second recovers purely from the on-disk catalog
// and the guardian's own log.
func TestCatalogRecoversGuardianAcrossProcessDeath(t *testing.T) {
	root := t.TempDir()

	w1 := NewWorld(walConfig(root, 0))
	w1.MustRegister(counterDef)
	a1 := w1.MustAddNode("alpha")
	b1 := w1.MustAddNode("beta")
	if a1.Disk() != nil {
		t.Fatal("WAL-backed node claims a simulated disk")
	}
	created, err := a1.Bootstrap("counter")
	if err != nil {
		t.Fatal(err)
	}
	port := created.Ports[0]
	_, drv1, err := b1.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := drv1.Send(port, "inc"); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, ok := counterValue(t, drv1, port); ok && v == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("increments never applied")
		}
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := NewWorld(walConfig(root, 0))
	w2.MustRegister(counterDef)
	a2 := w2.MustAddNode("alpha")
	b2 := w2.MustAddNode("beta")
	defer w2.Close()
	if got := w2.Stats().GuardiansRecovered.Load(); got != 1 {
		t.Fatalf("GuardiansRecovered = %d, want 1", got)
	}
	if _, ok := a2.GuardianByID(created.GuardianID); !ok {
		t.Fatalf("guardian %d not resurrected", created.GuardianID)
	}
	_, drv2, err := b2.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	// The SAME port name answers in the new process: identity survives.
	v, ok := counterValue(t, drv2, port)
	if !ok {
		t.Fatal("recovered guardian not answering on its old port name")
	}
	if v != 5 {
		t.Fatalf("recovered count = %d, want 5 (permanence of effect)", v)
	}
}

// TestCatalogTombstoneStopsRecovery: a self-destructed guardian must not
// come back in the next process.
func TestCatalogTombstoneStopsRecovery(t *testing.T) {
	root := t.TempDir()

	w1 := NewWorld(walConfig(root, 0))
	w1.MustRegister(counterDef)
	a1 := w1.MustAddNode("alpha")
	created, err := a1.Bootstrap("counter")
	if err != nil {
		t.Fatal(err)
	}
	g, ok := a1.GuardianByID(created.GuardianID)
	if !ok {
		t.Fatal("created guardian not found")
	}
	g.SelfDestruct()
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := NewWorld(walConfig(root, 0))
	w2.MustRegister(counterDef)
	a2 := w2.MustAddNode("alpha")
	defer w2.Close()
	if got := w2.Stats().GuardiansRecovered.Load(); got != 0 {
		t.Fatalf("GuardiansRecovered = %d, want 0", got)
	}
	if _, ok := a2.GuardianByID(created.GuardianID); ok {
		t.Fatal("self-destructed guardian resurrected")
	}
	// Its id is still burned: the next creation picks a fresh one.
	c2, err := a2.Bootstrap("counter")
	if err != nil {
		t.Fatal(err)
	}
	if c2.GuardianID <= created.GuardianID {
		t.Fatalf("guardian id %d reused across process death (had %d)", c2.GuardianID, created.GuardianID)
	}
}

// TestCatalogForgetsNonRecoverableGuardians mirrors
// TestNonRecoverableGuardianForgotten across process death.
func TestCatalogForgetsNonRecoverableGuardians(t *testing.T) {
	root := t.TempDir()

	w1 := NewWorld(walConfig(root, 0))
	registerEcho(t, w1)
	a1 := w1.MustAddNode("alpha")
	if _, err := a1.Bootstrap("echo"); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := NewWorld(walConfig(root, 0))
	registerEcho(t, w2)
	w2.MustAddNode("alpha")
	defer w2.Close()
	if got := w2.Stats().GuardiansRecovered.Load(); got != 0 {
		t.Fatalf("GuardiansRecovered = %d, want 0 (echo has no Recover)", got)
	}
}

// TestCatalogRefusesCorruptGuardianLog: interior damage in a recovered
// guardian's log is not a legal crash residue; the node must refuse to
// start rather than run the guardian against recovery data with silent
// holes in it.
func TestCatalogRefusesCorruptGuardianLog(t *testing.T) {
	root := t.TempDir()

	// Tiny segments so the counter's log spans several files and damage
	// can land in a NON-final segment (final-segment damage is torn-tail
	// residue and is legitimately truncated instead).
	w1 := NewWorld(walConfig(root, 32))
	w1.MustRegister(counterDef)
	a1 := w1.MustAddNode("alpha")
	b1 := w1.MustAddNode("beta")
	created, err := a1.Bootstrap("counter")
	if err != nil {
		t.Fatal(err)
	}
	_, drv1, err := b1.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := drv1.Send(created.Ports[0], "inc"); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, ok := counterValue(t, drv1, created.Ports[0]); ok && v == 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("increments never applied")
		}
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte in the counter log's FIRST segment.
	logDir := filepath.Join(root, "alpha", "counter-2")
	segs, err := filepath.Glob(filepath.Join(logDir, "wal-*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >=2 segments in %s, got %v (%v)", logDir, segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := NewWorld(walConfig(root, 32))
	w2.MustRegister(counterDef)
	if _, err := w2.AddNode("alpha"); err == nil {
		t.Fatal("node started over a corrupt guardian log")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("refusal should name the corruption, got: %v", err)
	}
}
