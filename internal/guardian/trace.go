package guardian

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one runtime occurrence: a message milestone or a lifecycle
// transition. Tracing exists because a distributed program's behavior is
// an interleaving of many guardians; when something goes wrong the
// question is always "what happened, in what order, on which node".
type Event struct {
	// Time is the world clock reading.
	Time time.Time
	// Kind is one of the Ev* constants.
	Kind string
	// Node is where the event was observed.
	Node string
	// Detail is a human-readable summary (command, destination, reason).
	Detail string
}

// Event kinds.
const (
	EvSend    = "send"    // a send command accepted a message
	EvDeliver = "deliver" // a message reached its target port
	EvDiscard = "discard" // a message was thrown away (reason in Detail)
	EvFailure = "failure" // the system generated a failure reply
	EvCreate  = "create"  // a guardian was created
	EvRecover = "recover" // a guardian was re-created by recovery
	EvCrash   = "crash"   // a node crashed
	EvRestart = "restart" // a node restarted
)

// Tracer consumes events. Implementations must be safe for concurrent
// use and must not block: events are emitted from hot paths.
type Tracer interface {
	Trace(Event)
}

// SetTracer installs (or with nil removes) the world's tracer.
func (w *World) SetTracer(t Tracer) {
	if t == nil {
		w.tracer.Store((*tracerBox)(nil))
		return
	}
	w.tracer.Store(&tracerBox{t})
}

// tracerBox wraps the interface so an atomic.Pointer can hold it.
type tracerBox struct{ t Tracer }

// trace emits an event if a tracer is installed. The fast path is one
// atomic load.
func (w *World) trace(kind, node, format string, args ...any) {
	box := w.tracer.Load()
	if box == nil || box.t == nil {
		return
	}
	box.t.Trace(Event{
		Time:   w.clock.Now(),
		Kind:   kind,
		Node:   node,
		Detail: fmt.Sprintf(format, args...),
	})
}

// RingTracer keeps the most recent events in a fixed-size ring.
type RingTracer struct {
	mu     sync.Mutex
	events []Event
	next   int
	filled bool
	count  atomic.Int64
}

// NewRingTracer creates a ring holding up to n events.
func NewRingTracer(n int) *RingTracer {
	if n < 1 {
		n = 1
	}
	return &RingTracer{events: make([]Event, n)}
}

// Trace implements Tracer.
func (r *RingTracer) Trace(e Event) {
	r.count.Add(1)
	r.mu.Lock()
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *RingTracer) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Total reports how many events were ever traced (including evicted).
func (r *RingTracer) Total() int64 { return r.count.Load() }

// String renders one event as a log line.
func (e Event) String() string {
	return fmt.Sprintf("%s %-8s %-10s %s",
		e.Time.Format("15:04:05.000000"), e.Kind, e.Node, e.Detail)
}
