package guardian

// This file provides driver guardians: anonymous guardians whose processes
// are driven by the caller's own goroutine. They stand in for the human
// users at a node (the paper's reservation clerks and administrators talk
// to the system through exactly such an interface guardian) and are the
// natural entry point for tests, examples and command-line tools.

var driverDef = &GuardianDef{
	TypeName: "_driver",
	Init:     func(*Ctx) {},
	// No Recover: drivers are forgotten by a crash, like the paper's
	// transaction processes.
}

// NewDriver creates a driver guardian at the node and returns it together
// with an externally-driven process handle. The caller's goroutine plays
// the process: it may Send, Receive and create ports through the handle.
func (n *Node) NewDriver(name string) (*Guardian, *Process, error) {
	g, err := n.instantiate(driverDef, nil, nil, false)
	if err != nil {
		return nil, nil, err
	}
	return g, g.ExternalProcess(name), nil
}

// ExternalProcess returns a process handle executed by the caller's own
// goroutine rather than one spawned by the guardian. The handle obeys all
// normal process rules (it dies with the guardian and may only receive on
// the guardian's own ports).
func (g *Guardian) ExternalProcess(name string) *Process {
	g.mu.Lock()
	g.nextProcID++
	id := g.nextProcID
	g.mu.Unlock()
	return &Process{g: g, name: name + "/ext" + itoa(id)}
}

// itoa avoids pulling strconv into the hot path for a debug label.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
