package guardian

import (
	"strings"
	"testing"
	"time"
)

func TestTracerRecordsMessageLifecycle(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	registerEcho(t, w)
	tr := NewRingTracer(256)
	w.SetTracer(tr)
	created, err := a.Bootstrap("echo")
	if err != nil {
		t.Fatal(err)
	}
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	reply := drv.Guardian().MustNewPort(echoReplyType, 8)
	if err := drv.SendReplyTo(created.Ports[0], reply.Name(), "echo", "traced"); err != nil {
		t.Fatal(err)
	}
	if m, st := drv.Receive(2*time.Second, reply); st != RecvOK || m.Str(0) != "traced" {
		t.Fatal("echo failed")
	}
	w.Quiesce()
	time.Sleep(10 * time.Millisecond)

	kinds := map[string]int{}
	for _, e := range tr.Events() {
		kinds[e.Kind]++
	}
	if kinds[EvCreate] == 0 {
		t.Error("no create events")
	}
	if kinds[EvSend] < 2 {
		t.Errorf("send events = %d, want ≥2 (request + reply)", kinds[EvSend])
	}
	if kinds[EvDeliver] < 2 {
		t.Errorf("deliver events = %d, want ≥2", kinds[EvDeliver])
	}
	if tr.Total() < 4 {
		t.Errorf("Total = %d", tr.Total())
	}
}

func TestTracerRecordsCrashRecoveryAndDiscards(t *testing.T) {
	w, a, b := newWorld(t, Config{})
	w.MustRegister(counterDef)
	tr := NewRingTracer(256)
	w.SetTracer(tr)
	created, err := a.Bootstrap("counter")
	if err != nil {
		t.Fatal(err)
	}
	a.Crash()
	if err := a.Restart(); err != nil {
		t.Fatal(err)
	}
	// A send to a forgotten port id draws a discard event.
	_, drv, err := b.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	bad := created.Ports[0]
	bad.Guardian = 9999
	reply := drv.Guardian().MustNewPort(echoReplyType, 8)
	if err := drv.SendReplyTo(bad, reply.Name(), "inc"); err != nil {
		t.Fatal(err)
	}
	if m, st := drv.Receive(2*time.Second, reply); st != RecvOK || !m.IsFailure() {
		t.Fatal("expected failure")
	}
	kinds := map[string]int{}
	var discardDetail string
	for _, e := range tr.Events() {
		kinds[e.Kind]++
		if e.Kind == EvDiscard {
			discardDetail = e.Detail
		}
	}
	for _, k := range []string{EvCrash, EvRestart, EvRecover, EvDiscard, EvFailure} {
		if kinds[k] == 0 {
			t.Errorf("no %s events: %v", k, kinds)
		}
	}
	if !strings.Contains(discardDetail, "no guardian") {
		t.Errorf("discard detail = %q", discardDetail)
	}
}

func TestRingTracerEviction(t *testing.T) {
	tr := NewRingTracer(3)
	for i := 0; i < 5; i++ {
		tr.Trace(Event{Kind: EvSend, Detail: string(rune('a' + i))})
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].Detail != "c" || evs[2].Detail != "e" {
		t.Fatalf("ring order wrong: %v", evs)
	}
	if tr.Total() != 5 {
		t.Fatalf("Total = %d", tr.Total())
	}
}

func TestRingTracerPartialAndString(t *testing.T) {
	tr := NewRingTracer(10)
	tr.Trace(Event{Time: time.Unix(0, 0), Kind: EvSend, Node: "n", Detail: "x"})
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("len = %d", len(evs))
	}
	s := evs[0].String()
	if !strings.Contains(s, "send") || !strings.Contains(s, "n") {
		t.Fatalf("String = %q", s)
	}
}

func TestSetTracerNilDisables(t *testing.T) {
	w, a, _ := newWorld(t, Config{})
	tr := NewRingTracer(16)
	w.SetTracer(tr)
	w.SetTracer(nil)
	if _, _, err := a.NewDriver("d"); err != nil {
		t.Fatal(err)
	}
	if tr.Total() != 0 {
		t.Fatalf("disabled tracer received %d events", tr.Total())
	}
}
