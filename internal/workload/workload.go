// Package workload provides the deterministic request generators used by
// the experiment harness: date-skew distributions (uniform, zipf, single),
// passenger id streams, and request mixes.
package workload

import (
	"fmt"
	"math/rand"
)

// Skew names a date-skew distribution.
type Skew string

// Supported skews.
const (
	// SkewUniform spreads requests evenly over the date range.
	SkewUniform Skew = "uniform"
	// SkewZipf concentrates requests on a few hot dates (s=1.3).
	SkewZipf Skew = "zipf"
	// SkewSingle targets every request at one date — the worst case for
	// the concurrent organizations of Figure 1.
	SkewSingle Skew = "single"
)

// DateGen draws dates from a fixed range under a skew.
type DateGen struct {
	rng   *rand.Rand
	zipf  *rand.Zipf
	skew  Skew
	dates []string
}

// NewDateGen builds a generator over nDates dates.
func NewDateGen(seed int64, skew Skew, nDates int) *DateGen {
	if nDates < 1 {
		nDates = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := &DateGen{rng: rng, skew: skew, dates: make([]string, nDates)}
	for i := range g.dates {
		g.dates[i] = fmt.Sprintf("1979-12-%02d", i+1)
	}
	if skew == SkewZipf {
		g.zipf = rand.NewZipf(rng, 1.3, 1.0, uint64(nDates-1))
	}
	return g
}

// Next draws the next date.
func (g *DateGen) Next() string {
	switch g.skew {
	case SkewSingle:
		return g.dates[0]
	case SkewZipf:
		return g.dates[g.zipf.Uint64()]
	default:
		return g.dates[g.rng.Intn(len(g.dates))]
	}
}

// Dates returns the full date range.
func (g *DateGen) Dates() []string { return g.dates }

// PassengerGen produces unique passenger ids.
type PassengerGen struct {
	prefix string
	n      int
}

// NewPassengerGen builds a generator with a stream prefix (so concurrent
// generators never collide).
func NewPassengerGen(prefix string) *PassengerGen {
	return &PassengerGen{prefix: prefix}
}

// Next returns a fresh passenger id.
func (g *PassengerGen) Next() string {
	g.n++
	return fmt.Sprintf("%s-%06d", g.prefix, g.n)
}

// Mix is a reserve/cancel request mix.
type Mix struct {
	rng *rand.Rand
	// CancelFrac in [0,1] is the fraction of cancels.
	CancelFrac float64
}

// NewMix builds a request-mix chooser.
func NewMix(seed int64, cancelFrac float64) *Mix {
	return &Mix{rng: rand.New(rand.NewSource(seed)), CancelFrac: cancelFrac}
}

// Next returns "cancel" with probability CancelFrac, else "reserve".
func (m *Mix) Next() string {
	if m.rng.Float64() < m.CancelFrac {
		return "cancel"
	}
	return "reserve"
}

// FlightGen draws flight numbers uniformly from [1, nFlights].
type FlightGen struct {
	rng *rand.Rand
	n   int64
}

// NewFlightGen builds a flight chooser.
func NewFlightGen(seed int64, nFlights int64) *FlightGen {
	if nFlights < 1 {
		nFlights = 1
	}
	return &FlightGen{rng: rand.New(rand.NewSource(seed)), n: nFlights}
}

// Next draws a flight number.
func (g *FlightGen) Next() int64 { return g.rng.Int63n(g.n) + 1 }
