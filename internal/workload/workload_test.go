package workload

import (
	"testing"
)

func TestDateGenUniformCoversRange(t *testing.T) {
	g := NewDateGen(1, SkewUniform, 10)
	seen := make(map[string]int)
	for i := 0; i < 10_000; i++ {
		seen[g.Next()]++
	}
	if len(seen) != 10 {
		t.Fatalf("uniform hit %d of 10 dates", len(seen))
	}
	for d, n := range seen {
		if n < 500 || n > 1500 {
			t.Fatalf("date %s drawn %d times of 10000; not uniform", d, n)
		}
	}
}

func TestDateGenSingle(t *testing.T) {
	g := NewDateGen(1, SkewSingle, 10)
	for i := 0; i < 100; i++ {
		if g.Next() != g.Dates()[0] {
			t.Fatal("single skew drew a second date")
		}
	}
}

func TestDateGenZipfSkewed(t *testing.T) {
	g := NewDateGen(1, SkewZipf, 20)
	seen := make(map[string]int)
	for i := 0; i < 10_000; i++ {
		seen[g.Next()]++
	}
	hot := seen[g.Dates()[0]]
	if hot < 3000 {
		t.Fatalf("zipf hottest date drew only %d of 10000", hot)
	}
	// The hottest date must dominate the uniform share (500) decisively.
	if hot < 5*10_000/20 {
		t.Fatalf("zipf not skewed: hottest %d", hot)
	}
}

func TestDateGenDeterministic(t *testing.T) {
	a, b := NewDateGen(7, SkewZipf, 12), NewDateGen(7, SkewZipf, 12)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDateGenDegenerate(t *testing.T) {
	g := NewDateGen(1, SkewUniform, 0)
	if g.Next() == "" {
		t.Fatal("zero-date generator returned empty date")
	}
}

func TestPassengerGenUnique(t *testing.T) {
	g := NewPassengerGen("x")
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := g.Next()
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
	other := NewPassengerGen("y")
	if other.Next() == "x-000001" {
		t.Fatal("prefixes collide")
	}
}

func TestMixFractions(t *testing.T) {
	m := NewMix(3, 0.25)
	cancels := 0
	for i := 0; i < 10_000; i++ {
		if m.Next() == "cancel" {
			cancels++
		}
	}
	if cancels < 2000 || cancels > 3000 {
		t.Fatalf("cancel fraction = %d/10000, want ~2500", cancels)
	}
	all := NewMix(3, 0)
	for i := 0; i < 100; i++ {
		if all.Next() != "reserve" {
			t.Fatal("zero cancel fraction produced a cancel")
		}
	}
}

func TestFlightGenRange(t *testing.T) {
	g := NewFlightGen(5, 8)
	seen := make(map[int64]bool)
	for i := 0; i < 5000; i++ {
		f := g.Next()
		if f < 1 || f > 8 {
			t.Fatalf("flight %d out of range", f)
		}
		seen[f] = true
	}
	if len(seen) != 8 {
		t.Fatalf("drew %d of 8 flights", len(seen))
	}
	if NewFlightGen(1, 0).Next() != 1 {
		t.Fatal("degenerate flight gen")
	}
}
