package workload_test

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestAccountGenDeterministic(t *testing.T) {
	a := workload.NewAccountGen(7, workload.SkewZipf, 1_000_000)
	b := workload.NewAccountGen(7, workload.SkewZipf, 1_000_000)
	for i := 0; i < 1000; i++ {
		if ga, gb := a.Next(), b.Next(); ga != gb {
			t.Fatalf("draw %d diverged: %s vs %s", i, ga, gb)
		}
	}
}

func TestAccountGenKeyspace(t *testing.T) {
	g := workload.NewAccountGen(1, workload.SkewUniform, 50)
	if g.Size() != 50 {
		t.Fatalf("size %d", g.Size())
	}
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		id := g.Next()
		if !strings.HasPrefix(id, "a") || len(id) != 9 {
			t.Fatalf("malformed id %q", id)
		}
		seen[id] = true
	}
	if len(seen) != 50 {
		t.Fatalf("uniform draws over 50 accounts touched %d", len(seen))
	}
	if workload.AccountID(3) != "a00000003" {
		t.Fatalf("AccountID(3) = %q", workload.AccountID(3))
	}
}

func TestAccountGenSkewShapes(t *testing.T) {
	single := workload.NewAccountGen(2, workload.SkewSingle, 1000)
	for i := 0; i < 100; i++ {
		if single.Next() != workload.AccountID(0) {
			t.Fatal("single skew drew a second account")
		}
	}
	// Zipf concentrates: the hottest account of a million-key zipf draw
	// must absorb far more than the uniform 1/n share.
	zipf := workload.NewAccountGen(3, workload.SkewZipf, 1_000_000)
	counts := map[string]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[zipf.Next()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < draws/100 {
		t.Fatalf("zipf hottest account got only %d of %d draws", max, draws)
	}
}

func TestBankMixFractions(t *testing.T) {
	m := workload.NewBankMix(11, 0.5, 0.3)
	counts := map[string]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[m.Next()]++
	}
	check := func(op string, frac float64) {
		got := float64(counts[op]) / draws
		if got < frac-0.05 || got > frac+0.05 {
			t.Fatalf("%s fraction %.3f, want ~%.2f", op, got, frac)
		}
	}
	check(workload.OpDeposit, 0.5)
	check(workload.OpWithdraw, 0.3)
	check(workload.OpTransfer, 0.2)
	for i := 0; i < 200; i++ {
		if a := m.Amount(50); a < 1 || a > 50 {
			t.Fatalf("amount %d out of [1,50]", a)
		}
	}
	if m.Amount(0) != 1 {
		t.Fatal("degenerate max must clamp to 1")
	}
}
