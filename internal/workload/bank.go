package workload

import (
	"fmt"
	"math/rand"
)

// AccountGen draws account ids from an n-account keyspace under a skew,
// without materializing the keyspace: ids are derived from the drawn
// index, so a million-account generator costs the same as a ten-account
// one. Zipf concentrates traffic on a hot subset (s=1.2) — the shape that
// stresses one shard of a ring while the rest idle; uniform spreads it,
// the shape that exercises placement breadth.
type AccountGen struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	skew Skew
	n    int
}

// NewAccountGen builds a generator over an n-account keyspace.
// SkewSingle pins every draw to one account (pure contention).
func NewAccountGen(seed int64, skew Skew, n int) *AccountGen {
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := &AccountGen{rng: rng, skew: skew, n: n}
	if skew == SkewZipf && n > 1 {
		g.zipf = rand.NewZipf(rng, 1.2, 1.0, uint64(n-1))
	}
	return g
}

// Next draws the next account id.
func (g *AccountGen) Next() string {
	var i uint64
	switch {
	case g.skew == SkewSingle:
		i = 0
	case g.zipf != nil:
		i = g.zipf.Uint64()
	default:
		i = uint64(g.rng.Intn(g.n))
	}
	return AccountID(i)
}

// Size is the keyspace size.
func (g *AccountGen) Size() int { return g.n }

// AccountID names the i-th account of the keyspace. The fixed width keeps
// ids collision-free up to 10^8 accounts.
func AccountID(i uint64) string { return fmt.Sprintf("a%08d", i) }

// Bank operation kinds drawn by BankMix.
const (
	OpDeposit  = "deposit"
	OpWithdraw = "withdraw"
	OpTransfer = "transfer"
)

// BankMix chooses among deposit, withdraw, and transfer with fixed
// fractions (transfer takes the remainder).
type BankMix struct {
	rng             *rand.Rand
	depFrac, wdFrac float64
}

// NewBankMix builds a mix chooser; depositFrac + withdrawFrac must be
// <= 1, the rest are transfers.
func NewBankMix(seed int64, depositFrac, withdrawFrac float64) *BankMix {
	return &BankMix{
		rng:     rand.New(rand.NewSource(seed)),
		depFrac: depositFrac,
		wdFrac:  withdrawFrac,
	}
}

// Next draws the next operation kind.
func (m *BankMix) Next() string {
	f := m.rng.Float64()
	switch {
	case f < m.depFrac:
		return OpDeposit
	case f < m.depFrac+m.wdFrac:
		return OpWithdraw
	default:
		return OpTransfer
	}
}

// Amount draws an operation amount in [1, max].
func (m *BankMix) Amount(max int64) int64 {
	if max < 1 {
		return 1
	}
	return 1 + m.rng.Int63n(max)
}
