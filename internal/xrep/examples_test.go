package xrep

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// --- Complex numbers: the paper's first §3.3 example ---

func TestComplexRectToPolarAcrossNodes(t *testing.T) {
	// Node A uses rectangular internally, node B polar. A encodes, B
	// decodes; the abstract value survives.
	nodeB := NewRegistry()
	nodeB.Register(ComplexTypeName, DecodePolarComplex)

	v := MustEncode(RectComplex{Re: 3, Im: 4})
	got, err := nodeB.Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	p := got.(PolarComplex)
	if math.Abs(p.R-5) > 1e-12 {
		t.Fatalf("magnitude = %v, want 5", p.R)
	}
	if math.Abs(p.Theta-math.Atan2(4, 3)) > 1e-12 {
		t.Fatalf("angle = %v", p.Theta)
	}
}

func TestComplexPolarToRectAcrossNodes(t *testing.T) {
	nodeA := NewRegistry()
	nodeA.Register(ComplexTypeName, DecodeRectComplex)

	v := MustEncode(PolarComplex{R: 2, Theta: math.Pi / 2})
	got, err := nodeA.Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	r := got.(RectComplex)
	if math.Abs(r.Re) > 1e-12 || math.Abs(r.Im-2) > 1e-12 {
		t.Fatalf("rect = %+v, want (0, 2)", r)
	}
}

func TestComplexRoundTripProperty(t *testing.T) {
	// rect → external → polar → external → rect preserves the value.
	reg := NewRegistry()
	reg.Register(ComplexTypeName, DecodePolarComplex)
	regRect := NewRegistry()
	regRect.Register(ComplexTypeName, DecodeRectComplex)
	f := func(re, im float64) bool {
		if math.IsNaN(re) || math.IsNaN(im) || math.IsInf(re, 0) || math.IsInf(im, 0) {
			return true
		}
		// Keep magnitudes moderate to avoid float blowup in the property.
		re = math.Mod(re, 1e6)
		im = math.Mod(im, 1e6)
		orig := RectComplex{Re: re, Im: im}
		v1 := MustEncode(orig)
		mid, err := reg.Decode(v1)
		if err != nil {
			return false
		}
		v2 := MustEncode(mid.(PolarComplex))
		back, err := regRect.Decode(v2)
		if err != nil {
			return false
		}
		b := back.(RectComplex)
		scale := math.Max(1, math.Hypot(re, im))
		return math.Abs(b.Re-re)/scale < 1e-9 && math.Abs(b.Im-im)/scale < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPolarEncodeRejectsNaN(t *testing.T) {
	// Encode may raise an exception, terminating the send (§3.4 step 1).
	if _, err := (PolarComplex{R: math.NaN(), Theta: 0}).EncodeX(); err == nil {
		t.Fatal("NaN polar encoded successfully")
	}
	if _, err := Encode(PolarComplex{R: math.NaN(), Theta: 0}); err == nil {
		t.Fatal("Encode did not propagate the encode exception")
	}
}

func TestComplexDecodeRejectsMalformed(t *testing.T) {
	bad := []Value{
		Int(1),
		Rec{Name: "other", Fields: Seq{Real(1), Real(2)}},
		Rec{Name: ComplexTypeName, Fields: Seq{Real(1)}},
		Rec{Name: ComplexTypeName, Fields: Seq{Str("x"), Real(2)}},
	}
	for _, v := range bad {
		if _, err := DecodeRectComplex(v); err == nil {
			t.Errorf("DecodeRectComplex accepted %v", v)
		}
		if _, err := DecodePolarComplex(v); err == nil {
			t.Errorf("DecodePolarComplex accepted %v", v)
		}
	}
}

// --- Associative memory: the paper's second §3.3 example ---

func fill(m AssocMem, n int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		m.AddItem(fmt.Sprintf("key%04d", r.Intn(n*4)), Int(i))
	}
}

func TestAssocMemHashBasics(t *testing.T) {
	h := NewHashAssocMem()
	if n := h.Len(); n != 0 {
		t.Fatalf("new memory not empty: %d", n)
	}
	h.AddItem("a", Int(1))
	h.AddItem("b", Int(2))
	h.AddItem("a", Int(3)) // replace
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	v, ok := h.GetItem("a")
	if !ok || !Equal(v, Int(3)) {
		t.Fatalf("GetItem(a) = %v, %v", v, ok)
	}
	if _, ok := h.GetItem("zzz"); ok {
		t.Fatal("GetItem of absent key reported present")
	}
}

func TestAssocMemTreeBasics(t *testing.T) {
	tr := NewTreeAssocMem()
	keys := []string{"m", "c", "t", "a", "e", "z", "m"}
	for i, k := range keys {
		tr.AddItem(k, Int(i))
	}
	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6 (one duplicate key)", tr.Len())
	}
	v, ok := tr.GetItem("m")
	if !ok || !Equal(v, Int(6)) {
		t.Fatalf("GetItem(m) = %v, %v; duplicate insert must replace", v, ok)
	}
	got := tr.Keys()
	want := []string{"a", "c", "e", "m", "t", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
}

func TestAssocMemHashToTreeAcrossNodes(t *testing.T) {
	// The paper's scenario verbatim: encode on node A (hash) builds a
	// sequence of key/item pairs; decode on node B constructs a tree.
	h := NewHashAssocMem()
	h.AddItem("boston", Str("BOS"))
	h.AddItem("chicago", Str("ORD"))
	h.AddItem("atlanta", Str("ATL"))

	nodeB := NewRegistry()
	nodeB.Register(AssocMemTypeName, DecodeTreeAssocMem)

	v := MustEncode(h)
	got, err := nodeB.Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	tr := got.(*TreeAssocMem)
	if tr.Len() != 3 {
		t.Fatalf("tree Len = %d, want 3", tr.Len())
	}
	for k, want := range map[string]string{"boston": "BOS", "chicago": "ORD", "atlanta": "ATL"} {
		item, ok := tr.GetItem(k)
		if !ok || !Equal(item, Str(want)) {
			t.Fatalf("GetItem(%s) = %v, %v", k, item, ok)
		}
	}
}

func TestAssocMemTreeToHashAcrossNodes(t *testing.T) {
	tr := NewTreeAssocMem()
	fill(tr, 100, 1)
	nodeA := NewRegistry()
	nodeA.Register(AssocMemTypeName, DecodeHashAssocMem)
	v := MustEncode(tr)
	got, err := nodeA.Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	h := got.(*HashAssocMem)
	if h.Len() != tr.Len() {
		t.Fatalf("hash Len = %d, tree Len = %d", h.Len(), tr.Len())
	}
	for _, k := range tr.Keys() {
		want, _ := tr.GetItem(k)
		gotV, ok := h.GetItem(k)
		if !ok || !Equal(gotV, want) {
			t.Fatalf("item %s lost in transit", k)
		}
	}
}

func TestAssocMemExternalRepCanonical(t *testing.T) {
	// Hash and tree holding the same pairs must produce identical external
	// reps: the single external rep is part of the type's fixed meaning.
	h := NewHashAssocMem()
	tr := NewTreeAssocMem()
	pairs := map[string]Value{"k1": Int(1), "k9": Str("x"), "k5": Bool(true)}
	for k, v := range pairs {
		h.AddItem(k, v)
		tr.AddItem(k, v)
	}
	vh, err := h.EncodeX()
	if err != nil {
		t.Fatal(err)
	}
	vt, err := tr.EncodeX()
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(vh, vt) {
		t.Fatalf("external reps differ:\nhash: %v\ntree: %v", vh, vt)
	}
}

func TestAssocMemRoundTripProperty(t *testing.T) {
	// Any hash memory survives hash → external → tree → external → hash.
	for seed := int64(0); seed < 30; seed++ {
		h := NewHashAssocMem()
		fill(h, 50, seed)
		v1 := MustEncode(h)
		mid, err := DecodeTreeAssocMem(v1)
		if err != nil {
			t.Fatal(err)
		}
		v2 := MustEncode(mid.(*TreeAssocMem))
		if !Equal(v1, v2) {
			t.Fatalf("seed %d: external rep changed across representations", seed)
		}
		back, err := DecodeHashAssocMem(v2)
		if err != nil {
			t.Fatal(err)
		}
		hb := back.(*HashAssocMem)
		if hb.Len() != h.Len() {
			t.Fatalf("seed %d: Len %d → %d", seed, h.Len(), hb.Len())
		}
	}
}

func TestAssocMemTreeDecodeBalanced(t *testing.T) {
	// Decoding a sorted external rep must not build a degenerate chain:
	// lookups on a 4096-item decode should touch ≤ ~13 nodes. We probe via
	// depth measurement.
	h := NewHashAssocMem()
	for i := 0; i < 4096; i++ {
		h.AddItem(fmt.Sprintf("k%08d", i), Int(i))
	}
	v := MustEncode(h)
	got, err := DecodeTreeAssocMem(v)
	if err != nil {
		t.Fatal(err)
	}
	tr := got.(*TreeAssocMem)
	var depth func(*treeNode) int
	depth = func(n *treeNode) int {
		if n == nil {
			return 0
		}
		l, r := depth(n.left), depth(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	if d := depth(tr.root); d > 14 {
		t.Fatalf("decoded tree depth = %d for 4096 items, want balanced (≤14)", d)
	}
}

func TestAssocMemDecodeRejectsMalformed(t *testing.T) {
	bad := []Value{
		Str("no"),
		Rec{Name: "other"},
		Rec{Name: AssocMemTypeName, Fields: Seq{Int(1)}},
		Rec{Name: AssocMemTypeName, Fields: Seq{Seq{Int(1), Int(2)}}}, // key not string
		Rec{Name: AssocMemTypeName, Fields: Seq{Seq{Str("k")}}},       // not a pair
	}
	for _, v := range bad {
		if _, err := DecodeHashAssocMem(v); err == nil {
			t.Errorf("DecodeHashAssocMem accepted %v", v)
		}
		if _, err := DecodeTreeAssocMem(v); err == nil {
			t.Errorf("DecodeTreeAssocMem accepted %v", v)
		}
	}
}

// forbiddenType demonstrates §3.3 reason 4: "for some types it may be
// desirable to forbid sending the abstract values in messages" — the type
// provides an encode operation that always refuses.
type forbiddenType struct{}

//lint:allow xreppair deliberately unsendable (§3.3 reason 4): encode always refuses, so no decode can exist
func (forbiddenType) XTypeName() string { return "unsendable" }
func (forbiddenType) EncodeX() (Value, error) {
	return nil, fmt.Errorf("unsendable: values of this type may not be transmitted")
}

func TestForbiddenTypeNeverLeavesNode(t *testing.T) {
	if _, err := Encode(forbiddenType{}); err == nil {
		t.Fatal("forbidden abstract value encoded")
	}
	if _, err := EncodeAll(1, forbiddenType{}, 2); err == nil {
		t.Fatal("forbidden value slipped through EncodeAll")
	}
}
