package xrep

import (
	"strings"
	"testing"
)

func TestValueDebugStrings(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null{}, "null"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(-42), "-42"},
		{Real(2.5), "2.5"},
		{Str("hi"), `"hi"`},
		{Bytes{1, 2, 3}, "bytes[3]"},
		{Seq{}, "[]"},
		{Rec{Name: "flight", Fields: Seq{Int(22)}}, "flight[22]"},
		{PortName{Node: "n", Guardian: 3, Port: 7}, "port(n/3/7)"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%T.String() = %q, want %q", c.v, got, c.want)
		}
	}
	if got := (Token{Issuer: 5, Body: []byte("abc")}).String(); !strings.Contains(got, "issuer=5") {
		t.Errorf("Token.String() = %q", got)
	}
}

func TestSizeEstimates(t *testing.T) {
	// Size is an estimate for buffer accounting; it must be positive and
	// grow with content.
	small := Size(Str("a"))
	big := Size(Str(strings.Repeat("a", 100)))
	if small <= 0 || big <= small {
		t.Fatalf("Size: small=%d big=%d", small, big)
	}
	if Size(nil) <= 0 {
		t.Fatal("Size(nil)")
	}
	nested := Size(Seq{Rec{Name: "r", Fields: Seq{Int(1), Bytes{1, 2}}}, Token{Body: []byte{1}}})
	if nested <= 0 {
		t.Fatal("Size(nested)")
	}
	if Size(PortName{Node: "n"}) <= 0 {
		t.Fatal("Size(PortName)")
	}
}
