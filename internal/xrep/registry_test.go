package xrep

import (
	"reflect"
	"testing"
)

func TestRegistryRangeOrderAndEarlyStop(t *testing.T) {
	r := NewRegistry()
	mk := func(tag string) DecodeFunc {
		return func(Value) (any, error) { return tag, nil }
	}
	//lint:allow xreppair registry-mechanics test: synthetic names, not wire types
	r.Register("c", mk("c"))
	//lint:allow xreppair registry-mechanics test: synthetic names, not wire types
	r.Register("a", mk("a"))
	//lint:allow xreppair registry-mechanics test: synthetic names, not wire types
	r.Register("b", mk("b"))

	var names []string
	r.Range(func(name string, dec DecodeFunc) bool {
		got, err := dec(Null{})
		if err != nil || got != name {
			t.Fatalf("decoder for %q returned %v, %v", name, got, err)
		}
		names = append(names, name)
		return true
	})
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("Range order = %v, want %v", names, want)
	}

	names = names[:0]
	r.Range(func(name string, _ DecodeFunc) bool {
		names = append(names, name)
		return len(names) < 2
	})
	if want := []string{"a", "b"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("early-stop Range visited %v, want %v", names, want)
	}
}

func TestRegistryRangeReentrant(t *testing.T) {
	r := NewRegistry()
	//lint:allow xreppair registry-mechanics test: synthetic names, not wire types
	r.Register("seed", func(Value) (any, error) { return nil, nil })
	r.Range(func(name string, _ DecodeFunc) bool {
		// Iteration works over a snapshot: mutating mid-range must not
		// deadlock or affect this walk.
		//lint:allow xreppair registry-mechanics test: runtime-built name exercises snapshot iteration
		r.Register("late-"+name, func(Value) (any, error) { return nil, nil })
		return true
	})
	if !r.Has("late-seed") {
		t.Fatal("re-entrant Register during Range was lost")
	}
	var n int
	r.Range(func(string, DecodeFunc) bool { n++; return true })
	if n != 2 {
		t.Fatalf("registry holds %d types, want 2", n)
	}
}
