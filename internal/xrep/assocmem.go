package xrep

import (
	"errors"
	"fmt"
	"sort"
)

// This file reproduces the paper's second worked example of abstract-value
// transmission (§3.3): an associative memory type with add_item and
// get_item operations, where "on node A the representation makes use of a
// hash table, while on node B the representation uses a tree. A possible
// external rep might be a sequence of items with associated keys."
//
// Both implementations satisfy AssocMem; encode on the hash node builds the
// key/item sequence from the hash table, and decode on the tree node
// constructs a tree representation from that sequence.

// AssocMemTypeName is the system-wide name of the associative-memory type.
const AssocMemTypeName = "assoc_mem"

// AssocMem is the abstract associative-memory type: lookup of items on the
// basis of a key.
type AssocMem interface {
	Transmittable
	// AddItem adds a key/item pair, replacing any existing item for key.
	AddItem(key string, item Value)
	// GetItem retrieves the item associated with a key.
	GetItem(key string) (Value, bool)
	// Len reports the number of pairs held.
	Len() int
	// Keys returns all keys in ascending order.
	Keys() []string
}

// HashAssocMem is the hash-table internal representation (node A in the
// paper's example). Go's map is the hash table.
type HashAssocMem struct {
	m map[string]Value
}

// NewHashAssocMem returns an empty hash-table associative memory.
func NewHashAssocMem() *HashAssocMem {
	return &HashAssocMem{m: make(map[string]Value)}
}

// AddItem implements AssocMem.
func (h *HashAssocMem) AddItem(key string, item Value) { h.m[key] = item }

// GetItem implements AssocMem.
func (h *HashAssocMem) GetItem(key string) (Value, bool) {
	v, ok := h.m[key]
	return v, ok
}

// Len implements AssocMem.
func (h *HashAssocMem) Len() int { return len(h.m) }

// Keys implements AssocMem.
func (h *HashAssocMem) Keys() []string {
	ks := make([]string, 0, len(h.m))
	for k := range h.m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// XTypeName implements Transmittable.
func (h *HashAssocMem) XTypeName() string { return AssocMemTypeName }

// EncodeX implements Transmittable: it builds the external rep — a
// sequence of key/item pairs — from the hash-table representation. Pairs
// are emitted in key order so the external rep is canonical.
func (h *HashAssocMem) EncodeX() (Value, error) {
	out := make(Seq, 0, len(h.m))
	for _, k := range h.Keys() {
		out = append(out, Seq{Str(k), h.m[k]})
	}
	return out, nil
}

// treeNode is a node of the unbalanced binary search tree used by the tree
// representation. (An AVL or red-black tree would serve equally; the point
// of the example is representation diversity, not balance.)
type treeNode struct {
	key         string
	item        Value
	left, right *treeNode
}

// TreeAssocMem is the binary-search-tree internal representation (node B in
// the paper's example) of the same abstract type.
type TreeAssocMem struct {
	root *treeNode
	n    int
}

// NewTreeAssocMem returns an empty tree associative memory.
func NewTreeAssocMem() *TreeAssocMem { return &TreeAssocMem{} }

// AddItem implements AssocMem.
func (t *TreeAssocMem) AddItem(key string, item Value) {
	node := &t.root
	for *node != nil {
		switch {
		case key < (*node).key:
			node = &(*node).left
		case key > (*node).key:
			node = &(*node).right
		default:
			(*node).item = item
			return
		}
	}
	*node = &treeNode{key: key, item: item}
	t.n++
}

// GetItem implements AssocMem.
func (t *TreeAssocMem) GetItem(key string) (Value, bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.item, true
		}
	}
	return nil, false
}

// Len implements AssocMem.
func (t *TreeAssocMem) Len() int { return t.n }

// Keys implements AssocMem.
func (t *TreeAssocMem) Keys() []string {
	ks := make([]string, 0, t.n)
	var walk func(*treeNode)
	walk = func(n *treeNode) {
		if n == nil {
			return
		}
		walk(n.left)
		ks = append(ks, n.key)
		walk(n.right)
	}
	walk(t.root)
	return ks
}

// XTypeName implements Transmittable.
func (t *TreeAssocMem) XTypeName() string { return AssocMemTypeName }

// EncodeX implements Transmittable: an in-order walk yields the canonical
// key-ordered external rep.
func (t *TreeAssocMem) EncodeX() (Value, error) {
	out := make(Seq, 0, t.n)
	var walk func(*treeNode) error
	walk = func(n *treeNode) error {
		if n == nil {
			return nil
		}
		if err := walk(n.left); err != nil {
			return err
		}
		out = append(out, Seq{Str(n.key), n.item})
		return walk(n.right)
	}
	if err := walk(t.root); err != nil {
		return nil, err
	}
	return out, nil
}

// assocPairs extracts the key/item pairs from an associative-memory
// external rep.
func assocPairs(v Value) ([]struct {
	key  string
	item Value
}, error) {
	rec, ok := v.(Rec)
	if !ok || rec.Name != AssocMemTypeName {
		return nil, fmt.Errorf("assoc_mem: cannot decode %s", v)
	}
	out := make([]struct {
		key  string
		item Value
	}, 0, len(rec.Fields))
	for i, f := range rec.Fields {
		pair, ok := f.(Seq)
		if !ok || len(pair) != 2 {
			return nil, fmt.Errorf("assoc_mem: field %d is not a key/item pair", i)
		}
		k, ok := pair[0].(Str)
		if !ok {
			return nil, errors.New("assoc_mem: pair key is not a string")
		}
		out = append(out, struct {
			key  string
			item Value
		}{string(k), pair[1]})
	}
	return out, nil
}

// DecodeHashAssocMem is the decode operation for nodes using the hash
// representation.
func DecodeHashAssocMem(v Value) (any, error) {
	pairs, err := assocPairs(v)
	if err != nil {
		return nil, err
	}
	h := NewHashAssocMem()
	for _, p := range pairs {
		h.AddItem(p.key, p.item)
	}
	return h, nil
}

// DecodeTreeAssocMem is the decode operation for nodes using the tree
// representation: it "construct[s] a tree representation from such a
// sequence." Insertion from the key-ordered external rep would produce a
// degenerate chain, so the decoder builds a balanced tree from the sorted
// pairs directly.
func DecodeTreeAssocMem(v Value) (any, error) {
	pairs, err := assocPairs(v)
	if err != nil {
		return nil, err
	}
	t := NewTreeAssocMem()
	var build func(lo, hi int) *treeNode
	build = func(lo, hi int) *treeNode {
		if lo >= hi {
			return nil
		}
		mid := (lo + hi) / 2
		return &treeNode{
			key:   pairs[mid].key,
			item:  pairs[mid].item,
			left:  build(lo, mid),
			right: build(mid+1, hi),
		}
	}
	t.root = build(0, len(pairs))
	t.n = len(pairs)
	return t, nil
}
