package xrep

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int", KindReal: "real",
		KindString: "string", KindBytes: "bytes", KindSeq: "seq", KindRec: "rec",
		KindPortName: "portname", KindToken: "token", Kind(200): "kind(200)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		want Kind
	}{
		{Null{}, KindNull},
		{Bool(true), KindBool},
		{Int(7), KindInt},
		{Real(3.5), KindReal},
		{Str("x"), KindString},
		{Bytes{1}, KindBytes},
		{Seq{Int(1)}, KindSeq},
		{Rec{Name: "t"}, KindRec},
		{PortName{Node: "n"}, KindPortName},
		{Token{Issuer: 1}, KindToken},
	}
	for _, c := range cases {
		if got := c.v.Kind(); got != c.want {
			t.Errorf("%v.Kind() = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestSeqString(t *testing.T) {
	s := Seq{Int(1), Str("a"), nil}
	if got := s.String(); got != `[1, "a", <nil>]` {
		t.Errorf("Seq.String() = %q", got)
	}
}

func TestPortNameIsZero(t *testing.T) {
	if !(PortName{}).IsZero() {
		t.Error("zero PortName.IsZero() = false")
	}
	if (PortName{Node: "n"}).IsZero() {
		t.Error("nonzero PortName.IsZero() = true")
	}
}

func TestEqualBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Real(1), false},
		{Str("a"), Str("a"), true},
		{Bytes{1, 2}, Bytes{1, 2}, true},
		{Bytes{1, 2}, Bytes{1, 3}, false},
		{Null{}, Null{}, true},
		{nil, nil, true},
		{Int(1), nil, false},
		{Seq{Int(1), Str("x")}, Seq{Int(1), Str("x")}, true},
		{Seq{Int(1)}, Seq{Int(1), Int(2)}, false},
		{Rec{Name: "t", Fields: Seq{Int(1)}}, Rec{Name: "t", Fields: Seq{Int(1)}}, true},
		{Rec{Name: "t"}, Rec{Name: "u"}, false},
		{PortName{Node: "n", Guardian: 1, Port: 2}, PortName{Node: "n", Guardian: 1, Port: 2}, true},
		{Token{Issuer: 1, Body: []byte{1}, Seal: []byte{2}}, Token{Issuer: 1, Body: []byte{1}, Seal: []byte{2}}, true},
		{Token{Issuer: 1, Body: []byte{1}}, Token{Issuer: 2, Body: []byte{1}}, false},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// genValue builds a random value tree of bounded depth for property tests.
func genValue(r *rand.Rand, depth int) Value {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return Int(r.Int63n(1000) - 500)
		case 1:
			return Str(strings.Repeat("x", r.Intn(8)))
		case 2:
			return Bool(r.Intn(2) == 0)
		case 3:
			return Real(r.Float64())
		default:
			return Null{}
		}
	}
	switch r.Intn(7) {
	case 0:
		n := r.Intn(4)
		s := make(Seq, n)
		for i := range s {
			s[i] = genValue(r, depth-1)
		}
		return s
	case 1:
		n := r.Intn(3)
		f := make(Seq, n)
		for i := range f {
			f[i] = genValue(r, depth-1)
		}
		return Rec{Name: "t" + string(rune('a'+r.Intn(3))), Fields: f}
	default:
		return genValue(r, 0)
	}
}

func TestEqualReflexiveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		v := genValue(r, 3)
		if !Equal(v, v) {
			t.Fatalf("Equal(v, v) = false for %v", v)
		}
	}
}

func TestEqualSymmetricProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b := genValue(r, 3), genValue(r, 3)
		if Equal(a, b) != Equal(b, a) {
			t.Fatalf("Equal not symmetric for %v / %v", a, b)
		}
	}
}

func TestSizePositiveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		v := genValue(r, 3)
		if Size(v) <= 0 {
			t.Fatalf("Size(%v) = %d, want > 0", v, Size(v))
		}
	}
}

func TestLimitsIntRange(t *testing.T) {
	l := Limits{IntBits: 24}
	min, max := l.IntRange()
	if min != -8388608 || max != 8388607 {
		t.Fatalf("24-bit range = [%d, %d], want [-8388608, 8388607]", min, max)
	}
	if err := l.CheckInt(8388607); err != nil {
		t.Errorf("max legal int rejected: %v", err)
	}
	if err := l.CheckInt(8388608); err == nil {
		t.Error("out-of-range int accepted")
	}
	if err := l.CheckInt(-8388608); err != nil {
		t.Errorf("min legal int rejected: %v", err)
	}
	if err := l.CheckInt(-8388609); err == nil {
		t.Error("out-of-range negative int accepted")
	}
}

func TestLimitsFullWidthDefault(t *testing.T) {
	var l Limits
	min, max := l.IntRange()
	if min != -1<<63 || max != 1<<63-1 {
		t.Fatalf("default range = [%d, %d], want full int64", min, max)
	}
}

func TestPaper24BitLimitsMatchExample(t *testing.T) {
	// "If 24 bit integers were the system standard, then all nodes must
	// support them" — an int legal under 24 bits passes, a wider one fails.
	if err := Paper24BitLimits.Validate(Int(1 << 20)); err != nil {
		t.Errorf("2^20 rejected under 24-bit standard: %v", err)
	}
	if err := Paper24BitLimits.Validate(Int(1 << 30)); err == nil {
		t.Error("2^30 accepted under 24-bit standard")
	}
}

func TestLimitsValidateRecursive(t *testing.T) {
	l := Limits{IntBits: 8}
	bad := Seq{Int(1), Rec{Name: "t", Fields: Seq{Int(300)}}}
	if err := l.Validate(bad); err == nil {
		t.Error("nested out-of-range int accepted")
	}
	good := Seq{Int(1), Rec{Name: "t", Fields: Seq{Int(100)}}}
	if err := l.Validate(good); err != nil {
		t.Errorf("legal nested value rejected: %v", err)
	}
}

func TestLimitsStringAndSeqBounds(t *testing.T) {
	l := Limits{MaxStringLen: 3, MaxSeqLen: 2}
	if err := l.Validate(Str("abcd")); err == nil {
		t.Error("overlong string accepted")
	}
	if err := l.Validate(Bytes{1, 2, 3, 4}); err == nil {
		t.Error("overlong bytes accepted")
	}
	if err := l.Validate(Seq{Int(1), Int(2), Int(3)}); err == nil {
		t.Error("overlong seq accepted")
	}
	if err := l.Validate(Seq{Str("abc"), Int(1)}); err != nil {
		t.Errorf("legal value rejected: %v", err)
	}
}

func TestLimitsDepthBound(t *testing.T) {
	l := Limits{MaxDepth: 3}
	v := Value(Int(1))
	for i := 0; i < 10; i++ {
		v = Seq{v}
	}
	if err := l.Validate(v); err == nil {
		t.Error("over-deep value accepted")
	}
	if err := l.Validate(Seq{Seq{Int(1)}}); err != nil {
		t.Errorf("legal depth rejected: %v", err)
	}
}

func TestLimitsNilAndEmptyRec(t *testing.T) {
	var l Limits
	if err := l.Validate(nil); err == nil {
		t.Error("nil value accepted")
	}
	if err := l.Validate(Rec{}); err == nil {
		t.Error("record with empty type name accepted")
	}
	if err := l.Validate(Seq{nil}); err == nil {
		t.Error("seq containing nil accepted")
	}
}

func TestLimitsValidateNeverPanicsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	l := Limits{IntBits: 16, MaxStringLen: 6, MaxSeqLen: 3, MaxDepth: 5}
	for i := 0; i < 1000; i++ {
		_ = l.Validate(genValue(r, 4))
	}
}

func TestCheckIntQuickAgreesWithRange(t *testing.T) {
	l := Limits{IntBits: 20}
	min, max := l.IntRange()
	f := func(v int64) bool {
		err := l.CheckInt(v)
		inRange := v >= min && v <= max
		return (err == nil) == inRange
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeBuiltins(t *testing.T) {
	cases := []struct {
		in   any
		want Value
	}{
		{nil, Null{}},
		{true, Bool(true)},
		{42, Int(42)},
		{int8(-1), Int(-1)},
		{int64(9), Int(9)},
		{uint16(65535), Int(65535)},
		{3.5, Real(3.5)},
		{float32(2), Real(2)},
		{"hi", Str("hi")},
		{[]byte{1, 2}, Bytes{1, 2}},
		{[]any{1, "a"}, Seq{Int(1), Str("a")}},
		{Int(5), Int(5)}, // Values pass through
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Errorf("Encode(%v): %v", c.in, err)
			continue
		}
		if !Equal(got, c.want) {
			t.Errorf("Encode(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestEncodeCopiesBytes(t *testing.T) {
	src := []byte{1, 2, 3}
	v, err := Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 99
	if v.(Bytes)[0] != 1 {
		t.Fatal("Encode aliased the caller's byte slice")
	}
}

func TestEncodeRejectsUntransmittable(t *testing.T) {
	type opaque struct{ ch chan int }
	if _, err := Encode(opaque{}); err == nil {
		t.Fatal("Encode accepted an untransmittable type")
	}
	//lint:allow transmissible deliberate violation: asserts Encode rejects uint64
	if _, err := Encode(uint64(1)); err == nil {
		t.Fatal("Encode accepted uint64 (cannot bound-check against int64 model)")
	}
}

func TestEncodeAllOrder(t *testing.T) {
	seq, err := EncodeAll(1, "two", 3.0)
	if err != nil {
		t.Fatal(err)
	}
	want := Seq{Int(1), Str("two"), Real(3)}
	if !Equal(seq, want) {
		t.Fatalf("EncodeAll = %v, want %v", seq, want)
	}
}

func TestEncodeAllStopsAtFirstError(t *testing.T) {
	//lint:allow transmissible deliberate violation: asserts EncodeAll rejects a channel
	_, err := EncodeAll(1, make(chan int), 3)
	if err == nil {
		t.Fatal("EncodeAll accepted an untransmittable arg")
	}
	if !strings.Contains(err.Error(), "arg 1") {
		t.Fatalf("error %q does not identify the failing argument", err)
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustEncode did not panic on untransmittable value")
		}
	}()
	//lint:allow transmissible deliberate violation: asserts MustEncode panics on a channel
	MustEncode(make(chan int))
}

func TestRegistryRegisterDecode(t *testing.T) {
	r := NewRegistry()
	if r.Has("complex") {
		t.Fatal("empty registry claims to have complex")
	}
	r.Register(ComplexTypeName, DecodeRectComplex)
	if !r.Has("complex") {
		t.Fatal("registered type not found")
	}
	v := MustEncode(RectComplex{Re: 1, Im: 2})
	got, err := r.Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	if got != (RectComplex{Re: 1, Im: 2}) {
		t.Fatalf("round trip = %v", got)
	}
}

func TestRegistryUnknownType(t *testing.T) {
	r := NewRegistry()
	_, err := r.Decode(Rec{Name: "mystery", Fields: Seq{}})
	if err == nil {
		t.Fatal("Decode of unregistered type succeeded")
	}
	if _, err := r.Decode(Int(1)); err == nil {
		t.Fatal("Decode of non-record succeeded")
	}
}

func TestRegistryTypesSorted(t *testing.T) {
	r := NewRegistry()
	//lint:allow xreppair synthetic sort key for a registry-ordering test, not a wire type
	r.Register("zeta", DecodeRectComplex)
	//lint:allow xreppair synthetic sort key for a registry-ordering test, not a wire type
	r.Register("alpha", DecodeRectComplex)
	got := r.Types()
	if !reflect.DeepEqual(got, []string{"alpha", "zeta"}) {
		t.Fatalf("Types() = %v", got)
	}
}
