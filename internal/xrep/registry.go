package xrep

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Transmittable is the interface of a transmittable abstract type (§3.3):
// an implementation provides encode, mapping its internal representation to
// the external rep. Encode does not construct messages; it merely builds an
// in-computer value suitable for sending — message construction is the
// system's job.
//
// Encode may fail (the paper allows encode to raise an exception, which
// terminates the send); a failing encode aborts the send command.
type Transmittable interface {
	// XTypeName returns the system-wide name of the abstract type. The
	// name, together with the external rep layout, is part of the type's
	// fixed meaning across all nodes.
	XTypeName() string
	// EncodeX maps the internal representation to the external rep.
	EncodeX() (Value, error)
}

// DecodeFunc is the decode operation of a transmittable type: it maps the
// external rep into (this node's) internal representation. Different nodes
// may register different DecodeFuncs for the same type name — that is the
// point: hash-table and tree implementations of one associative-memory type
// interoperate through the shared external rep.
type DecodeFunc func(Value) (any, error)

// Registry holds the decode operations known at one node. Each node of a
// distributed program owns one registry; registering different
// implementations at different nodes models per-node representations.
type Registry struct {
	mu       sync.RWMutex
	decoders map[string]DecodeFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{decoders: make(map[string]DecodeFunc)}
}

// Registry errors.
var (
	ErrUnknownType = errors.New("xrep: no decode operation registered for type")
	ErrNotRec      = errors.New("xrep: value is not an abstract-type record")
)

// Register installs the decode operation for a type name, replacing any
// previous registration (a node may switch representations).
func (r *Registry) Register(name string, dec DecodeFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.decoders[name] = dec
}

// Has reports whether a decoder is registered for name.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.decoders[name]
	return ok
}

// Types returns the sorted names of all registered types.
func (r *Registry) Types() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.decoders))
	for n := range r.decoders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Range calls fn for each registered type in sorted name order, stopping
// early when fn returns false. It iterates over a snapshot taken under the
// lock, so fn may itself call back into the registry (including Register).
// Tooling iterates registrations this way — e.g. to audit a node's decode
// coverage against the encoders the program declares.
func (r *Registry) Range(fn func(name string, dec DecodeFunc) bool) {
	r.mu.RLock()
	names := make([]string, 0, len(r.decoders))
	for n := range r.decoders {
		names = append(names, n)
	}
	decs := make(map[string]DecodeFunc, len(names))
	for _, n := range names {
		decs[n] = r.decoders[n]
	}
	r.mu.RUnlock()
	sort.Strings(names)
	for _, n := range names {
		if !fn(n, decs[n]) {
			return
		}
	}
}

// Decode maps an external-rep record back to this node's internal
// representation using the registered decode operation.
func (r *Registry) Decode(v Value) (any, error) {
	rec, ok := v.(Rec)
	if !ok {
		return nil, fmt.Errorf("%w (got %s)", ErrNotRec, v.Kind())
	}
	r.mu.RLock()
	dec, ok := r.decoders[rec.Name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownType, rec.Name)
	}
	return dec(v)
}

// Encode converts a Go value into the external value model. Built-in Go
// types map directly (the system "can build and decompose messages
// consisting of objects of built-in types"); values implementing
// Transmittable are encoded via their own encode operation and wrapped in a
// Rec carrying their type name. Values that are already external-rep Values
// pass through unchanged.
func Encode(x any) (Value, error) {
	switch v := x.(type) {
	case nil:
		return Null{}, nil
	case Value:
		return v, nil
	case bool:
		return Bool(v), nil
	case int:
		return Int(v), nil
	case int8:
		return Int(v), nil
	case int16:
		return Int(v), nil
	case int32:
		return Int(v), nil
	case int64:
		return Int(v), nil
	case uint8:
		return Int(v), nil
	case uint16:
		return Int(v), nil
	case uint32:
		return Int(v), nil
	case float32:
		return Real(v), nil
	case float64:
		return Real(v), nil
	case string:
		return Str(v), nil
	case []byte:
		b := make([]byte, len(v))
		copy(b, v)
		return Bytes(b), nil
	case []any:
		seq := make(Seq, len(v))
		for i, e := range v {
			ev, err := Encode(e)
			if err != nil {
				return nil, fmt.Errorf("seq[%d]: %w", i, err)
			}
			seq[i] = ev
		}
		return seq, nil
	case Transmittable:
		inner, err := v.EncodeX()
		if err != nil {
			return nil, fmt.Errorf("encode %s: %w", v.XTypeName(), err)
		}
		fields, ok := inner.(Seq)
		if !ok {
			fields = Seq{inner}
		}
		return Rec{Name: v.XTypeName(), Fields: fields}, nil
	default:
		return nil, fmt.Errorf("xrep: type %T is not transmittable", x)
	}
}

// MustEncode is Encode for values known statically to be transmittable; it
// panics on error and is intended for literals in tests and examples.
func MustEncode(x any) Value {
	v, err := Encode(x)
	if err != nil {
		panic(err)
	}
	return v
}

// EncodeAll encodes a slice of Go values left to right, exactly the
// argument-encoding order §3.4 specifies for the send command.
func EncodeAll(xs ...any) (Seq, error) {
	out := make(Seq, len(xs))
	for i, x := range xs {
		v, err := Encode(x)
		if err != nil {
			return nil, fmt.Errorf("arg %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
