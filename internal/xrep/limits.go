package xrep

import (
	"errors"
	"fmt"
)

// Limits captures the system-wide type invariants of §3.3: "the meaning of
// a type must be fixed and invariant over all the nodes". A node with a
// wider native representation must still reject values outside the
// system-wide bounds, "otherwise it might be impossible to send an integer
// value in a message because it was too big."
type Limits struct {
	// IntBits is the width of the system-wide signed integer type. Zero
	// means the full 64 bits.
	IntBits int
	// MaxStringLen bounds string and byte values. Zero means unbounded.
	MaxStringLen int
	// MaxSeqLen bounds sequence lengths. Zero means unbounded.
	MaxSeqLen int
	// MaxDepth bounds value-tree nesting. Zero means a default of 64;
	// negative disables the check.
	MaxDepth int
}

// DefaultLimits is the system-wide standard used when a configuration does
// not override it: full 64-bit integers and a generous nesting bound.
var DefaultLimits = Limits{MaxDepth: 64}

// Paper24BitLimits reproduces the paper's worked example: a system standard
// of 24-bit integers that every node must enforce regardless of its native
// word size.
var Paper24BitLimits = Limits{IntBits: 24, MaxDepth: 64}

// Validation errors.
var (
	ErrIntRange  = errors.New("xrep: integer outside system-wide bounds")
	ErrTooLong   = errors.New("xrep: value exceeds system-wide length bound")
	ErrTooDeep   = errors.New("xrep: value exceeds system-wide nesting bound")
	ErrNilValue  = errors.New("xrep: nil value")
	ErrEmptyName = errors.New("xrep: record with empty type name")
)

// IntRange returns the inclusive legal range of the system integer type.
func (l Limits) IntRange() (min, max int64) {
	bits := l.IntBits
	if bits <= 0 || bits >= 64 {
		return -1 << 63, 1<<63 - 1
	}
	return -1 << (bits - 1), 1<<(bits-1) - 1
}

// CheckInt validates a single integer against the system-wide bound.
func (l Limits) CheckInt(v int64) error {
	min, max := l.IntRange()
	if v < min || v > max {
		return fmt.Errorf("%w: %d not in [%d, %d]", ErrIntRange, v, min, max)
	}
	return nil
}

// Validate walks a value tree and checks every system-wide invariant. It is
// called by the message layer at encode time, so a violating value can
// never leave its node.
func (l Limits) Validate(v Value) error {
	maxDepth := l.MaxDepth
	if maxDepth == 0 {
		maxDepth = 64
	}
	return l.validate(v, 0, maxDepth)
}

func (l Limits) validate(v Value, depth, maxDepth int) error {
	if v == nil {
		return ErrNilValue
	}
	if maxDepth > 0 && depth > maxDepth {
		return fmt.Errorf("%w: depth %d", ErrTooDeep, depth)
	}
	switch x := v.(type) {
	case Null, Bool, Real, PortName:
		return nil
	case Int:
		return l.CheckInt(int64(x))
	case Str:
		if l.MaxStringLen > 0 && len(x) > l.MaxStringLen {
			return fmt.Errorf("%w: string of %d bytes", ErrTooLong, len(x))
		}
		return nil
	case Bytes:
		if l.MaxStringLen > 0 && len(x) > l.MaxStringLen {
			return fmt.Errorf("%w: bytes of %d", ErrTooLong, len(x))
		}
		return nil
	case Token:
		if l.MaxStringLen > 0 && len(x.Body) > l.MaxStringLen {
			return fmt.Errorf("%w: token body of %d bytes", ErrTooLong, len(x.Body))
		}
		return nil
	case Seq:
		if l.MaxSeqLen > 0 && len(x) > l.MaxSeqLen {
			return fmt.Errorf("%w: sequence of %d", ErrTooLong, len(x))
		}
		for i, e := range x {
			if err := l.validate(e, depth+1, maxDepth); err != nil {
				return fmt.Errorf("seq[%d]: %w", i, err)
			}
		}
		return nil
	case Rec:
		if x.Name == "" {
			return ErrEmptyName
		}
		for i, f := range x.Fields {
			if err := l.validate(f, depth+1, maxDepth); err != nil {
				return fmt.Errorf("%s.field[%d]: %w", x.Name, i, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("xrep: unknown value type %T", v)
	}
}
