package xrep

import (
	"errors"
	"fmt"
	"math"
)

// This file reproduces the paper's first worked example of abstract-value
// transmission (§3.3): complex numbers, "where on one node the
// representation might be real/imaginary coordinates, while on another
// polar coordinates might be used; the external rep might be the
// real/imaginary coordinates."

// ComplexTypeName is the system-wide name of the complex-number type.
const ComplexTypeName = "complex"

// RectComplex is the rectangular (real/imaginary) internal representation.
type RectComplex struct {
	Re, Im float64
}

// XTypeName implements Transmittable.
func (RectComplex) XTypeName() string { return ComplexTypeName }

// EncodeX implements Transmittable. The external rep is real/imaginary
// coordinates, so the rectangular implementation encodes trivially.
func (c RectComplex) EncodeX() (Value, error) {
	return Seq{Real(c.Re), Real(c.Im)}, nil
}

// PolarComplex is the polar (magnitude/angle) internal representation of
// the same abstract type.
type PolarComplex struct {
	R, Theta float64
}

// XTypeName implements Transmittable.
func (PolarComplex) XTypeName() string { return ComplexTypeName }

// EncodeX implements Transmittable: polar converts to the shared
// rectangular external rep.
func (c PolarComplex) EncodeX() (Value, error) {
	if math.IsNaN(c.R) || math.IsNaN(c.Theta) {
		return nil, errors.New("complex: NaN coordinate is not transmittable")
	}
	return Seq{Real(c.R * math.Cos(c.Theta)), Real(c.R * math.Sin(c.Theta))}, nil
}

// complexFields extracts and checks the two external-rep coordinates.
func complexFields(v Value) (re, im float64, err error) {
	rec, ok := v.(Rec)
	if !ok || rec.Name != ComplexTypeName {
		return 0, 0, fmt.Errorf("complex: cannot decode %s", v)
	}
	if len(rec.Fields) != 2 {
		return 0, 0, fmt.Errorf("complex: external rep has %d fields, want 2", len(rec.Fields))
	}
	reV, ok1 := rec.Fields[0].(Real)
	imV, ok2 := rec.Fields[1].(Real)
	if !ok1 || !ok2 {
		return 0, 0, errors.New("complex: external rep fields are not reals")
	}
	return float64(reV), float64(imV), nil
}

// DecodeRectComplex is the decode operation for nodes using the
// rectangular representation.
func DecodeRectComplex(v Value) (any, error) {
	re, im, err := complexFields(v)
	if err != nil {
		return nil, err
	}
	return RectComplex{Re: re, Im: im}, nil
}

// DecodePolarComplex is the decode operation for nodes using the polar
// representation.
func DecodePolarComplex(v Value) (any, error) {
	re, im, err := complexFields(v)
	if err != nil {
		return nil, err
	}
	return PolarComplex{R: math.Hypot(re, im), Theta: math.Atan2(im, re)}, nil
}
