// Package xrep implements the paper's external representation system
// (§3.3): every value that crosses guardian boundaries is expressed in a
// small, system-wide value model. Built-in types map directly; each
// transmittable abstract (user-defined) type supplies encode/decode
// operations between its internal representation and an external rep built
// from these values.
//
// The meaning of a type is "fixed and invariant over all the nodes": the
// Limits type captures system-wide invariants such as the legal integer
// range (the paper's 24-bit example), which every node enforces at encode
// time so that a value legal on one node is legal on all.
package xrep

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the value model.
type Kind uint8

// The kinds of the external value model.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindReal
	KindString
	KindBytes
	KindSeq
	KindRec
	KindPortName
	KindToken
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindReal:
		return "real"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindSeq:
		return "seq"
	case KindRec:
		return "rec"
	case KindPortName:
		return "portname"
	case KindToken:
		return "token"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a node in the external representation tree.
type Value interface {
	Kind() Kind
	// String renders a debug form; it is not the wire format.
	String() string
}

// Null is the unit value, used for messages with no arguments.
type Null struct{}

// Kind implements Value.
func (Null) Kind() Kind { return KindNull }

// String implements Value.
func (Null) String() string { return "null" }

// Bool is a boolean value.
type Bool bool

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }

// String implements Value.
func (b Bool) String() string { return strconv.FormatBool(bool(b)) }

// Int is an integer value. The system-wide legal range is narrower than
// int64 when Limits.IntBits is set (the paper's 24-bit discussion); Limits
// enforcement happens at message-construction time.
type Int int64

// Kind implements Value.
func (Int) Kind() Kind { return KindInt }

// String implements Value.
func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

// Real is a floating-point value.
type Real float64

// Kind implements Value.
func (Real) Kind() Kind { return KindReal }

// String implements Value.
func (r Real) String() string { return strconv.FormatFloat(float64(r), 'g', -1, 64) }

// Str is a string value.
type Str string

// Kind implements Value.
func (Str) Kind() Kind { return KindString }

// String implements Value.
func (s Str) String() string { return strconv.Quote(string(s)) }

// Bytes is an opaque byte-string value.
type Bytes []byte

// Kind implements Value.
func (Bytes) Kind() Kind { return KindBytes }

// String implements Value.
func (b Bytes) String() string { return fmt.Sprintf("bytes[%d]", len(b)) }

// Seq is an ordered sequence of values.
type Seq []Value

// Kind implements Value.
func (Seq) Kind() Kind { return KindSeq }

// String implements Value.
func (s Seq) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		if v == nil {
			b.WriteString("<nil>")
			continue
		}
		b.WriteString(v.String())
	}
	b.WriteByte(']')
	return b.String()
}

// Rec is the external rep of a user-defined type: the type's system-wide
// name plus the field values of its external representation. The name is
// what lets the receiving node pick the right decode operation, even when
// its internal representation differs from the sender's.
type Rec struct {
	Name   string
	Fields Seq
}

// Kind implements Value.
func (Rec) Kind() Kind { return KindRec }

// String implements Value.
func (r Rec) String() string { return r.Name + r.Fields.String() }

// PortName is the global name of a port (§3.2): ports are the only
// entities with global names, and port names may themselves be sent in
// messages. The coordinates are opaque at this layer; the guardian runtime
// interprets them.
type PortName struct {
	Node     string
	Guardian uint64
	Port     uint64
}

// Kind implements Value.
func (PortName) Kind() Kind { return KindPortName }

// String implements Value.
func (p PortName) String() string {
	return fmt.Sprintf("port(%s/%d/%d)", p.Node, p.Guardian, p.Port)
}

// IsZero reports whether p is the absent port name.
func (p PortName) IsZero() bool { return p == PortName{} }

// Token is a sealed capability (§2.1): an external name for an object that
// can be unsealed only by the guardian that created it. Seal is an
// authenticator over Body under the issuing guardian's secret; Body is
// meaningful only to the issuer.
type Token struct {
	Issuer uint64 // issuing guardian's id
	Body   []byte
	Seal   []byte
}

// Kind implements Value.
func (Token) Kind() Kind { return KindToken }

// String implements Value.
func (t Token) String() string {
	return fmt.Sprintf("token(issuer=%d, %d bytes)", t.Issuer, len(t.Body))
}
