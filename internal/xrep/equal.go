package xrep

import "bytes"

// Equal reports deep structural equality of two external-rep values.
// Values of different kinds are never equal.
func Equal(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.Kind() != b.Kind() {
		return false
	}
	switch x := a.(type) {
	case Null:
		return true
	case Bool:
		return x == b.(Bool)
	case Int:
		return x == b.(Int)
	case Real:
		return x == b.(Real)
	case Str:
		return x == b.(Str)
	case Bytes:
		return bytes.Equal(x, b.(Bytes))
	case PortName:
		return x == b.(PortName)
	case Token:
		y := b.(Token)
		return x.Issuer == y.Issuer && bytes.Equal(x.Body, y.Body) && bytes.Equal(x.Seal, y.Seal)
	case Seq:
		y := b.(Seq)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	case Rec:
		y := b.(Rec)
		return x.Name == y.Name && Equal(x.Fields, y.Fields)
	default:
		return false
	}
}

// Size estimates the in-memory footprint of a value tree in bytes. The wire
// layer reports exact encoded sizes; this estimate is used by port
// buffer accounting.
func Size(v Value) int {
	switch x := v.(type) {
	case nil, Null:
		return 1
	case Bool:
		return 1
	case Int, Real:
		return 8
	case Str:
		return 4 + len(x)
	case Bytes:
		return 4 + len(x)
	case PortName:
		return 20 + len(x.Node)
	case Token:
		return 12 + len(x.Body) + len(x.Seal)
	case Seq:
		n := 4
		for _, e := range x {
			n += Size(e)
		}
		return n
	case Rec:
		return 4 + len(x.Name) + Size(x.Fields)
	default:
		return 8
	}
}
