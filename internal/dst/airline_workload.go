package dst

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/airline"
	"repro/internal/amo"
	"repro/internal/guardian"
	"repro/internal/sendprim"
)

// flightNo and flightCapacity shape the airline workload: a small capacity
// against many reserve attempts keeps the seat table full and the
// waitlist-promotion path hot — the regime where an overbooking bug would
// show.
const (
	flightNo       = 7
	flightCapacity = 3
)

var flightDates = []string{"jul4", "jul5", "jul6"}

// airlineWorkload drives reserve/cancel traffic against one flight
// guardian through its at-most-once port and audits the seat data:
//
//	no-overbooking: Reserved ≤ capacity on every date, always — the
//	                §2.3 correctness property the three organizations of
//	                Figure 1 exist to protect
//	recovery:       seat data after crash+restart == before (reserve and
//	                cancel are logged before the reply leaves)
type airlineWorkload struct {
	opts    Options
	w       *guardian.World
	created *guardian.Created
	met     *amo.Metrics

	mu        sync.Mutex
	opsIssued int64
	opsAcked  int64
	opsFailed int64
}

func newAirlineWorkload(opts Options) *airlineWorkload {
	return &airlineWorkload{opts: opts, met: &amo.Metrics{}}
}

func (a *airlineWorkload) crashNodes() []string { return []string{serverNode} }
func (a *airlineWorkload) allNodes() []string   { return []string{serverNode, clientsNode} }
func (a *airlineWorkload) killNodes() []string  { return nil }

func (a *airlineWorkload) setup(w *guardian.World) error {
	a.w = w
	w.MustRegister(airline.FlightDef())
	srv := w.MustAddNode(serverNode)
	w.MustAddNode(clientsNode)
	created, err := srv.Bootstrap(airline.FlightDefName,
		int64(flightNo), int64(flightCapacity), airline.OrgSequential, int64(0))
	if err != nil {
		return err
	}
	a.created = created
	return nil
}

func (a *airlineWorkload) client(i int, crng *rand.Rand) {
	node, err := a.w.Node(clientsNode)
	if err != nil {
		return
	}
	_, pr, err := node.NewDriver(fmt.Sprintf("airline-client-%d", i))
	if err != nil {
		return
	}
	caller, err := amo.NewCaller(pr, amo.CallerOptions{
		Timeout: a.opts.AttemptTimeout,
		Retries: a.opts.Retries,
		Backoff: amo.BackoffPolicy{Base: 2 * time.Millisecond, Jitter: 0.5},
		Seed:    crng.Int63(),
		Metrics: a.met,
	})
	if err != nil {
		return
	}
	defer caller.Close()
	amoPort := a.created.Ports[1]

	passengers := []string{
		fmt.Sprintf("p%d-0", i), fmt.Sprintf("p%d-1", i), fmt.Sprintf("p%d-2", i),
	}
	for op := 0; op < a.opts.OpsPerClient; op++ {
		pace(pr, crng, a.opts)
		cmd := "reserve"
		if crng.Intn(10) < 4 {
			cmd = "cancel"
		}
		pid := passengers[crng.Intn(len(passengers))]
		date := flightDates[crng.Intn(len(flightDates))]
		a.note(func() { a.opsIssued++ })
		if _, err := caller.Call(amoPort, cmd, int64(flightNo), pid, date); err != nil {
			a.note(func() { a.opsFailed++ })
			continue
		}
		a.note(func() { a.opsAcked++ })
	}
}

func (a *airlineWorkload) note(f func()) {
	a.mu.Lock()
	f()
	a.mu.Unlock()
}

// ping performs a synchronizing list_passengers call: the reply proves the
// flight's receiver loop is running, which in turn proves any recovery
// replay has completed — only then is it safe to read the guardian's state
// directly.
func (a *airlineWorkload) ping(pr *guardian.Process) error {
	_, err := sendprim.Call(pr, a.created.Ports[0], airline.ClientReplyType,
		sendprim.CallOptions{
			Timeout: a.opts.AttemptTimeout,
			Retries: 20,
			Backoff: 2 * time.Millisecond,
		}, "list_passengers", int64(flightNo), flightDates[0])
	return err
}

func (a *airlineWorkload) check(w *guardian.World, rep *Report, crashed bool) {
	a.mu.Lock()
	rep.OpsIssued, rep.OpsAcked, rep.OpsFailed = a.opsIssued, a.opsAcked, a.opsFailed
	a.mu.Unlock()
	rep.Retries = a.met.Retries.Load()

	node, err := w.Node(serverNode)
	if err != nil {
		rep.addViolation("recovery", "server node missing: %v", err)
		return
	}
	if !node.Alive() {
		if err := node.Restart(); err != nil {
			rep.addViolation("recovery", "restart failed: %v", err)
			return
		}
	}
	cnode, err := w.Node(clientsNode)
	if err != nil {
		rep.addViolation("recovery", "clients node missing: %v", err)
		return
	}
	_, pr, err := cnode.NewDriver("airline-checker")
	if err != nil {
		rep.addViolation("recovery", "checker driver: %v", err)
		return
	}
	if err := a.ping(pr); err != nil {
		rep.addViolation("recovery", "flight unreachable after run: %v", err)
		return
	}
	g, ok := node.GuardianByID(a.created.GuardianID)
	if !ok {
		rep.addViolation("recovery", "flight guardian %d missing after run", a.created.GuardianID)
		return
	}
	pre, ok := airline.SnapshotAllDates(g)
	capacity, _ := airline.FlightCapacity(g)
	if !ok {
		rep.addViolation("recovery", "guardian %d is not a flight", a.created.GuardianID)
		return
	}
	for date, snap := range pre {
		if snap.Reserved > capacity {
			rep.addViolation("no-overbooking",
				"date %s has %d reserved seats for capacity %d", date, snap.Reserved, capacity)
		}
	}

	// Recovery: the flight logs every completed reserve/cancel before
	// replying, so a crash+restart must reproduce the same seat data.
	node.Crash()
	if err := node.Restart(); err != nil {
		rep.addViolation("recovery", "final restart: %v", err)
		return
	}
	if err := a.ping(pr); err != nil {
		rep.addViolation("recovery", "flight unreachable after final restart: %v", err)
		return
	}
	g2, ok := node.GuardianByID(a.created.GuardianID)
	if !ok {
		rep.addViolation("recovery", "flight guardian %d not recovered", a.created.GuardianID)
		return
	}
	post, ok := airline.SnapshotAllDates(g2)
	if !ok {
		rep.addViolation("recovery", "post-restart snapshot failed")
		return
	}
	if len(pre) != len(post) {
		rep.addViolation("recovery", "dates %d before crash, %d after", len(pre), len(post))
		return
	}
	for date, snap := range pre {
		if post[date] != snap {
			rep.addViolation("recovery",
				"date %s: pre-crash %+v != post-restart %+v", date, snap, post[date])
		}
	}
}
