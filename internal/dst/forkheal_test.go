package dst

import "testing"

// TestForkHealLifecycle drives the replication layer's quarantine→heal
// lifecycle from a schedule instead of a hand-built unit test: the fork
// window partitions the initial primary TOGETHER with the clients away
// from its group's majority, so client traffic keeps landing on the old
// primary — locally durable appends that never reach quorum — while the
// majority elects past it. On heal the deposed member detects the fork,
// quarantines itself, and (because the branch checkpoints every 2 ops)
// heals by wholesale checkpoint supersession from the new leader. The
// verdict is asserted from the run's replication counters; the usual
// invariant checkers must stay green throughout — a healed member's
// forked records must never surface as acknowledged state.
func TestForkHealLifecycle(t *testing.T) {
	rep := Run(Options{
		Seed:              1,
		Profile:           ForkHealProfile(),
		ReplicationFaults: true,
		CheckpointEvery:   2,
	})
	if rep.Failed() {
		t.Fatalf("fork-heal run failed:\n%s", rep)
	}
	if rep.Repl.ForksDetected == 0 {
		t.Fatalf("fork window forced no fork:\n%s", rep)
	}
	if rep.Repl.Heals == 0 {
		t.Fatalf("quarantined member never healed:\n%s", rep)
	}
	if rep.Repl.CheckpointsShipped == 0 {
		t.Fatalf("no checkpoint shipped — heal cannot have superseded the fork:\n%s", rep)
	}
	if rep.Repl.Takeovers == 0 {
		t.Fatalf("majority never took over the branch:\n%s", rep)
	}
}

// TestForkWithoutCheckpointsStaysQuarantined is the negative control:
// the same fork without a checkpointing branch leaves the deposed member
// quarantined forever — its forked tail can never log-match and no
// superseding checkpoint exists to replace it. Safety must still hold;
// permanence of the quarantine is the documented availability cost.
func TestForkWithoutCheckpointsStaysQuarantined(t *testing.T) {
	rep := Run(Options{
		Seed:              1,
		Profile:           ForkHealProfile(),
		ReplicationFaults: true,
	})
	if rep.Failed() {
		t.Fatalf("fork run failed:\n%s", rep)
	}
	if rep.Repl.ForksDetected == 0 {
		t.Fatalf("fork window forced no fork:\n%s", rep)
	}
	if rep.Repl.Heals != 0 {
		t.Fatalf("member healed without any checkpoint to supersede the fork:\n%s", rep)
	}
}
