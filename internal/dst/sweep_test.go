package dst

import (
	"strings"
	"testing"

	"repro/internal/durable"
)

// TestSweepAggregates: a small parallel sweep returns one report per
// seed, in seed order, and aggregates the verdict.
func TestSweepAggregates(t *testing.T) {
	res := Sweep(SweepOptions{
		Opts: Options{
			Profile:      QuietProfile(),
			Clients:      2,
			OpsPerClient: 4,
		},
		StartSeed:   1,
		Count:       4,
		Parallelism: 4,
	})
	if len(res.Reports) != 4 {
		t.Fatalf("got %d reports, want 4", len(res.Reports))
	}
	for i, r := range res.Reports {
		if r.Seed != int64(i+1) {
			t.Fatalf("report %d has seed %d, want %d (seed order)", i, r.Seed, i+1)
		}
	}
	if res.Failed() {
		t.Fatalf("quiet sweep failed:\n%s", res)
	}
	if got := res.String(); !strings.Contains(got, "sweep PASS seeds=4") {
		t.Fatalf("sweep summary missing verdict line:\n%s", got)
	}
}

// TestSweepExplicitSeeds: an explicit seed list overrides the range.
func TestSweepExplicitSeeds(t *testing.T) {
	res := Sweep(SweepOptions{
		Opts:  Options{Profile: QuietProfile(), Clients: 1, OpsPerClient: 2},
		Seeds: []int64{42, 7},
	})
	if len(res.Reports) != 2 || res.Reports[0].Seed != 42 || res.Reports[1].Seed != 7 {
		t.Fatalf("explicit seeds not honored: %+v", res.Reports)
	}
}

// TestSweepCatchesInjectedBug: the control arm — a sweep over the
// dedup-disabled branch under a duplicating network must convict, and
// every failure must carry a usable repro line.
func TestSweepCatchesInjectedBug(t *testing.T) {
	res := Sweep(SweepOptions{
		Opts: Options{
			Profile: MixedProfile(),
			Bug:     BugDisableDedup,
		},
		StartSeed:   1,
		Count:       3,
		Parallelism: 3,
		Shrink:      true,
	})
	if !res.Failed() {
		t.Fatalf("sweep over disable-dedup found no violation")
	}
	lines := res.ReproLines()
	if len(lines) != len(res.Failures()) {
		t.Fatalf("%d repro lines for %d failures", len(lines), len(res.Failures()))
	}
	for _, l := range lines {
		if !strings.Contains(l, "-bug disable-dedup") || !strings.Contains(l, "-profile mixed") {
			t.Fatalf("repro line missing flags: %q", l)
		}
	}
	// The dedup violation reproduces without any fault window (the lossy
	// network alone duplicates), so the minimizer must strip the
	// schedule down.
	for _, r := range res.Failures() {
		if len(r.Schedule) > 0 && !r.Shrunk {
			t.Fatalf("failing seed %d kept %d events without shrinking", r.Seed, len(r.Schedule))
		}
	}
}

// TestSweepProgress: the progress callback sees every completion with a
// monotonically increasing done count.
func TestSweepProgress(t *testing.T) {
	var dones []int
	Sweep(SweepOptions{
		Opts:        Options{Profile: QuietProfile(), Clients: 1, OpsPerClient: 2},
		Count:       3,
		Parallelism: 2,
		Progress: func(done, total int, rep *Report) {
			if total != 3 || rep == nil {
				t.Errorf("progress(done=%d, total=%d, rep=%v)", done, total, rep)
			}
			dones = append(dones, done)
		},
	})
	if len(dones) != 3 {
		t.Fatalf("progress called %d times, want 3", len(dones))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done sequence %v not monotone", dones)
		}
	}
}

// TestScaleSweep is the acceptance gate for the scale tentpole: a
// 202-node world — 67 shards, each behind a three-member quorum group —
// under the combined profile (network loss/dup/reorder, crash windows, a
// rolling 201-node crash wave, an island, an asymmetric link cut, a ring
// cut, a storage burst) with storage faults and checkpointing branches,
// swept over multiple seeds, must hold every per-shard invariant; and a
// single-seed re-run must reproduce the sweep's run exactly.
//
// ~75s per seed on one core; push CI skips it (-skip TestScaleSweep),
// the nightly job runs it.
func TestScaleSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("202-node sweep skipped in -short mode")
	}
	opts := Options{
		Profile:         CombinedProfile(),
		Topology:        &Topology{Shards: 67, ReplFactor: 3},
		Clients:         4,
		OpsPerClient:    6,
		CheckpointEvery: 4,
		StorageFaults:   &durable.WrapperConfig{SyncFailRate: 0.001},
	}
	res := Sweep(SweepOptions{Opts: opts, StartSeed: 1, Count: 2})
	if res.Failed() {
		t.Fatalf("scale sweep failed:\n%s", res)
	}
	for _, r := range res.Reports {
		if r.Nodes < 200 {
			t.Fatalf("seed %d simulated %d nodes, want >= 200", r.Seed, r.Nodes)
		}
		if r.OpsAcked == 0 {
			t.Fatalf("seed %d acked no operations:\n%s", r.Seed, r)
		}
	}

	// Deterministic re-run: one seed, alone, out of the sweep context,
	// must regenerate the identical schedule and verdict.
	swept := res.Reports[0]
	opts.Seed = swept.Seed
	again := Run(opts)
	if again.Failed() != swept.Failed() {
		t.Fatalf("re-run verdict differs: %v vs %v", again.Failed(), swept.Failed())
	}
	if len(again.Schedule) != len(swept.Schedule) {
		t.Fatalf("re-run schedule length %d != swept %d", len(again.Schedule), len(swept.Schedule))
	}
	for i := range again.Schedule {
		if again.Schedule[i].String() != swept.Schedule[i].String() {
			t.Fatalf("re-run schedule diverges at %d: %s vs %s",
				i, again.Schedule[i], swept.Schedule[i])
		}
	}
}
