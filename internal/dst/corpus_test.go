package dst

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/durable"
)

// parseCorpusLine builds the Options for one seeds.txt entry:
//
//	<seed> <workload> <profile> [repl] [cpevery=N] [shards=N]
//	[replfactor=N] [storage=syncfail,shortwrite,corrupttail]
func parseCorpusLine(line string) (Options, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Options{}, fmt.Errorf("want at least seed, workload, profile: %q", line)
	}
	seed, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Options{}, fmt.Errorf("bad seed %q: %v", fields[0], err)
	}
	profile, err := ProfileByName(fields[2])
	if err != nil {
		return Options{}, err
	}
	opts := Options{Seed: seed, Workload: fields[1], Profile: profile}
	var topo Topology
	for _, f := range fields[3:] {
		key, val, _ := strings.Cut(f, "=")
		switch key {
		case "repl":
			opts.ReplicationFaults = true
		case "cpevery":
			if opts.CheckpointEvery, err = strconv.Atoi(val); err != nil {
				return Options{}, fmt.Errorf("bad cpevery %q: %v", val, err)
			}
		case "shards":
			if topo.Shards, err = strconv.Atoi(val); err != nil {
				return Options{}, fmt.Errorf("bad shards %q: %v", val, err)
			}
		case "replfactor":
			if topo.ReplFactor, err = strconv.Atoi(val); err != nil {
				return Options{}, fmt.Errorf("bad replfactor %q: %v", val, err)
			}
		case "storage":
			rates := strings.Split(val, ",")
			if len(rates) != 3 {
				return Options{}, fmt.Errorf("storage wants 3 rates, got %q", val)
			}
			var cfg durable.WrapperConfig
			for i, dst := range []*float64{&cfg.SyncFailRate, &cfg.ShortWriteRate, &cfg.CorruptTailRate} {
				if *dst, err = strconv.ParseFloat(rates[i], 64); err != nil {
					return Options{}, fmt.Errorf("bad storage rate %q: %v", rates[i], err)
				}
			}
			opts.StorageFaults = &cfg
		default:
			return Options{}, fmt.Errorf("unknown corpus flag %q", f)
		}
	}
	if topo.Shards > 0 {
		opts.Topology = &topo
	}
	return opts, nil
}

// TestSeedCorpus replays testdata/seeds.txt: every corpus entry runs to
// a green verdict, deterministically, on every commit. The corpus is the
// cheap standing sweep — seeds that once exercised failover, fork+heal,
// storage damage, and sharded topologies — so a regression in any of
// those paths trips here before the nightly multi-seed sweep sees it.
func TestSeedCorpus(t *testing.T) {
	f, err := os.Open("testdata/seeds.txt")
	if err != nil {
		t.Fatalf("seed corpus missing: %v", err)
	}
	defer f.Close()

	entries := 0
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entries++
		opts, err := parseCorpusLine(line)
		if err != nil {
			t.Fatalf("seeds.txt:%d: %v", lineNo, err)
		}
		name := fmt.Sprintf("%s/%s/seed=%d", opts.Workload, opts.Profile.Name, opts.Seed)
		t.Run(name, func(t *testing.T) {
			rep := Run(opts)
			if rep.Failed() {
				t.Fatalf("corpus seed regressed:\n%s", rep)
			}
			if rep.OpsAcked == 0 {
				t.Fatalf("corpus seed acked nothing:\n%s", rep)
			}
		})
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading corpus: %v", err)
	}
	if entries < 10 {
		t.Fatalf("corpus has only %d entries — the standing sweep has been gutted", entries)
	}
}
