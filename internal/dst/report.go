package dst

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/durable"
	"repro/internal/netsim"
	"repro/internal/replica"
)

// Violation is one invariant breach found by a checker.
type Violation struct {
	// Invariant names the checker: "conservation", "exactly-once",
	// "balance", "no-overbooking", "recovery", "setup".
	Invariant string
	// Detail is the human-readable evidence.
	Detail string
}

// Report is the outcome of one simulated run: identity (seed, workload,
// profile, bug), the fault schedule that ran, the violations found, and
// workload/network counters for the experiment tables.
type Report struct {
	Seed     int64
	Workload string
	Profile  string
	Bug      string
	// Nodes is the number of simulated nodes the workload's topology
	// placed in the world.
	Nodes    int
	Schedule []Event
	// Shrunk is true when Schedule was minimized after the original run
	// failed.
	Shrunk bool

	// opts is the exact (defaults-applied) configuration of the run,
	// kept for Repro.
	opts Options

	Violations []Violation

	// Workload counters: logical operations issued by clients, acked with
	// a definite outcome, and abandoned (timeout/failure — outcome
	// unknown).
	OpsIssued int64
	OpsAcked  int64
	OpsFailed int64
	// Retries counts re-send attempts beyond each call's first.
	Retries int64
	// Ring-workload counters (Options.Ring): membership flips that
	// committed and the final committed epoch.
	Rebalances int
	RingEpoch  int64

	Net netsim.Stats
	// Storage aggregates injected storage-fault counters across all
	// nodes; zero unless Options.StorageFaults was set.
	Storage durable.WrapperStats
	// Replicated marks a replica-group run (Options.ReplicationFaults);
	// Repl then aggregates the members' replication counters and Leader
	// names the member serving at the end of the run.
	Replicated     bool
	Repl           replica.Stats
	Leader         string
	VirtualElapsed time.Duration
	RealElapsed    time.Duration
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

func (r *Report) addViolation(invariant, format string, args ...any) {
	r.Violations = append(r.Violations,
		Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// String renders the report; for a failed run it is the full failure
// story: seed, violations, the (possibly minimized) schedule, and the
// command line that reproduces it.
func (r *Report) String() string {
	var b strings.Builder
	status := "PASS"
	if r.Failed() {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "dst %s seed=%d workload=%s profile=%s", status, r.Seed, r.Workload, r.Profile)
	if r.Bug != "" {
		fmt.Fprintf(&b, " bug=%s", r.Bug)
	}
	fmt.Fprintf(&b, "\n  ops: issued=%d acked=%d failed=%d retries=%d\n",
		r.OpsIssued, r.OpsAcked, r.OpsFailed, r.Retries)
	fmt.Fprintf(&b, "  net: sent=%d delivered=%d lost=%d dup=%d reordered=%d partition-dropped=%d\n",
		r.Net.Sent, r.Net.Delivered, r.Net.Lost, r.Net.Duplicated, r.Net.Reordered, r.Net.Partition)
	if r.Storage.Syncs > 0 {
		fmt.Fprintf(&b, "  storage: syncs=%d sync-failed=%d short-writes=%d corrupted-tails=%d records-dropped=%d\n",
			r.Storage.Syncs, r.Storage.SyncsFailed, r.Storage.ShortWrites,
			r.Storage.CorruptedTails, r.Storage.RecordsDropped)
	}
	if r.RingEpoch > 0 {
		fmt.Fprintf(&b, "  ring: epoch=%d rebalances=%d\n", r.RingEpoch, r.Rebalances)
	}
	if r.Replicated {
		fmt.Fprintf(&b, "  repl: leader=%s shipped=%d applied=%d checkpoints=%d fenced=%d elections=%d takeovers=%d forks=%d heals=%d\n",
			r.Leader, r.Repl.ShippedRecords, r.Repl.AppliedRecords, r.Repl.CheckpointsShipped,
			r.Repl.FencedStale, r.Repl.Elections, r.Repl.Takeovers,
			r.Repl.ForksDetected, r.Repl.Heals)
	}
	fmt.Fprintf(&b, "  time: %v virtual in %v real\n",
		r.VirtualElapsed.Round(time.Millisecond), r.RealElapsed.Round(time.Millisecond))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  VIOLATION %s: %s\n", v.Invariant, v.Detail)
	}
	if len(r.Schedule) > 0 {
		label := "schedule"
		if r.Shrunk {
			label = "schedule (minimized)"
		}
		fmt.Fprintf(&b, "  %s:\n", label)
		for _, ev := range r.Schedule {
			fmt.Fprintf(&b, "    %s\n", ev)
		}
	}
	if r.Failed() {
		fmt.Fprintf(&b, "  reproduce: %s\n", r.Repro())
	}
	return b.String()
}

// Repro returns the one-line command reproducing this run exactly: the
// same seed under the same (defaults-applied) configuration regenerates
// the same schedule, workload, and fate streams. Sweeps collect these
// lines for failed seeds; the nightly CI job uploads them as its
// failure artifact.
func (r *Report) Repro() string {
	var b strings.Builder
	fmt.Fprintf(&b, "go run ./cmd/dst -seed %d -workload %s -profile %s",
		r.Seed, r.Workload, r.Profile)
	o := r.opts
	if h := o.Profile.Horizon; h > 0 && profileHorizonDiffers(o.Profile) {
		fmt.Fprintf(&b, " -horizon %v", h)
	}
	if o.Clients > 0 {
		fmt.Fprintf(&b, " -clients %d", o.Clients)
	}
	if o.OpsPerClient > 0 {
		fmt.Fprintf(&b, " -ops %d", o.OpsPerClient)
	}
	if r.Bug != "" {
		fmt.Fprintf(&b, " -bug %s", r.Bug)
	}
	if o.ReplicationFaults {
		b.WriteString(" -repl")
	}
	if t := o.Topology; t != nil {
		fmt.Fprintf(&b, " -shards %d", t.Shards)
		if t.ReplFactor > 1 {
			fmt.Fprintf(&b, " -replfactor %d", t.ReplFactor)
		}
	}
	if rt := o.Ring; rt != nil {
		fmt.Fprintf(&b, " -ring %d,%d,%d", rt.Shards, rt.Joins, rt.Leaves)
	}
	if o.CheckpointEvery > 0 {
		fmt.Fprintf(&b, " -cpevery %d", o.CheckpointEvery)
	}
	if sf := o.StorageFaults; sf != nil {
		fmt.Fprintf(&b, " -storage %g,%g,%g",
			sf.SyncFailRate, sf.ShortWriteRate, sf.CorruptTailRate)
	}
	return b.String()
}

// profileHorizonDiffers reports whether p's horizon deviates from the
// stock profile of the same name (a -horizon flag override); custom
// profiles always report false — their horizon is part of the profile.
func profileHorizonDiffers(p Profile) bool {
	stock, err := ProfileByName(p.Name)
	if err != nil {
		return false
	}
	return stock.Horizon != p.Horizon
}
