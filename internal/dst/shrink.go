package dst

// Shrink minimizes a failing run's fault schedule: it greedily removes one
// fault window at a time (a crash with its paired restart, a partition
// with its heal — never half a window) and keeps each removal whose re-run
// still fails. The result is a new report for the minimized schedule, or
// the original report when nothing could be removed or it did not fail.
//
// Because RunWithSchedule derives network and workload streams from the
// seed exactly as Run does, each candidate re-run differs from the
// original in the removed events ONLY — so the surviving schedule is a
// true statement of which faults the violation needs.
//
// budget caps the number of re-runs; zero means one per fault window.
func Shrink(opts Options, rep *Report, budget int) *Report {
	return shrinkWith(RunWithSchedule, opts, rep, budget)
}

// shrinkWith is Shrink with the re-run function injected, so tests can
// drive the minimization loop against synthetic failure predicates
// without paying for real simulated runs.
func shrinkWith(run func(Options, []Event) *Report, opts Options, rep *Report, budget int) *Report {
	if !rep.Failed() || len(rep.Schedule) == 0 {
		return rep
	}
	pairs := pairOrder(rep.Schedule)
	if budget <= 0 {
		budget = len(pairs)
	}
	best := rep
	for _, pair := range pairs {
		if budget <= 0 {
			break
		}
		cand := withoutPair(best.Schedule, pair)
		if len(cand) == len(best.Schedule) {
			continue // pair already removed by an earlier pass
		}
		budget--
		if r := run(opts, cand); r.Failed() {
			r.Shrunk = true
			best = r
		}
	}
	return best
}

// pairOrder returns the distinct fault-window ids in schedule order.
func pairOrder(evs []Event) []int {
	seen := make(map[int]bool)
	var out []int
	for _, ev := range evs {
		if !seen[ev.Pair] {
			seen[ev.Pair] = true
			out = append(out, ev.Pair)
		}
	}
	return out
}

func withoutPair(evs []Event, pair int) []Event {
	out := make([]Event, 0, len(evs))
	for _, ev := range evs {
		if ev.Pair != pair {
			out = append(out, ev)
		}
	}
	return out
}
