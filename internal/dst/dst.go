// Package dst is a deterministic simulation testing harness for the
// guardian runtime: whole multi-node programs — the bank and airline
// applications, their at-most-once sessions, the lossy network, crashes
// and partitions — run to completion on a virtual clock, in milliseconds
// of real time, with every random decision derived from one master seed.
//
// The paper argues informally that its primitives survive "crashes of the
// physical nodes" and an unreliable network (§1.1, §3.4); this package
// turns that argument into a checked property. Each run derives, from the
// seed, (1) the network's fate decisions (loss, duplication, reordering —
// internal/netsim), (2) a fault schedule of node crash/restart and
// partition/heal windows placed in virtual time, and (3) the client
// workload. Invariant checkers then audit the surviving state:
// conservation of money and exactly-once application for the bank,
// no-overbooking for the airline, and a recovery checker asserting the
// post-crash state equals the stable-log replay.
//
// A failed run prints its seed, its fault schedule (minimized by Shrink),
// and the violated invariants; re-running the same seed regenerates the
// identical schedule and workload, so red runs reproduce with
//
//	go test ./internal/dst -run 'TestSeed$' -dst.seed=N [-dst.bug=...]
//
// What is and is not deterministic here — virtual time is driven by
// vtime.Sim.Drive, but goroutine interleaving within one virtual instant
// is the Go scheduler's — is discussed in DESIGN.md §7; the invariants are
// written to be schedule-independent, so a violation is a real bug
// regardless of interleaving.
package dst

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/guardian"
	"repro/internal/netsim"
	"repro/internal/stable"
	"repro/internal/vtime"
)

// Injectable bugs: each disables one protection the harness exists to
// audit, as a self-test that the checkers actually have teeth.
const (
	// BugDisableDedup runs the bank branch in its "raw" control-arm mode:
	// the at-most-once filter is removed, so duplicated or retried deposits
	// apply more than once and conservation of money breaks.
	BugDisableDedup = "disable-dedup"
)

// Profile bundles the fault intensity of a run: the network's standing
// fate rates plus how many crash and partition windows the schedule
// generator places inside the horizon.
type Profile struct {
	Name string

	// Network fate rates (netsim.Config).
	Loss    float64
	Dup     float64
	Reorder float64
	Latency time.Duration
	Jitter  time.Duration

	// Crashes is the number of crash→restart windows of the workload's
	// server node.
	Crashes int
	// Partitions is the number of partition→heal windows.
	Partitions int
	// Kills is the number of permanent node kills, placed over the
	// workload's kill-eligible nodes (the replica workload's initial
	// primary). A killed node is never restarted; only Options.
	// ReplicationFaults workloads survive one.
	Kills int
	// Isolations is the number of partition→heal windows that cut exactly
	// the first kill-eligible node off from the rest of the world — the
	// split-brain shape: the old primary keeps believing it leads while
	// the majority elects past it.
	Isolations int

	// The composite-fault vocabulary (see genSchedule for the shapes).
	// Islands is the number of island windows: a random minority group
	// (up to a third of the nodes) loses its uplink together.
	Islands int
	// Asymmetries is the number of one-way link-cut windows: one
	// direction of one link dies while the reverse keeps flowing.
	Asymmetries int
	// RingCuts is the number of ring-cut windows: the nodes as a cycle
	// lose two edges and split into two contiguous arcs.
	RingCuts int
	// Waves is the number of rolling crash waves: every crashable node
	// crashes once, staggered in a random order.
	Waves int
	// StorageBursts is the number of windows multiplying the injected
	// storage-fault rates (no-ops unless Options.StorageFaults is set).
	StorageBursts int
	// Forks is the number of fork windows: the initial primary is
	// partitioned together with the clients away from its group's
	// majority, so client appends fork its log while the majority
	// elects past it. Replicated workloads only.
	Forks int

	// Horizon is the virtual window fault events are placed in.
	Horizon time.Duration
}

func (p Profile) withDefaults() Profile {
	if p.Name == "" {
		p.Name = "custom"
	}
	if p.Latency == 0 {
		p.Latency = 500 * time.Microsecond
	}
	if p.Horizon == 0 {
		p.Horizon = 2 * time.Second
	}
	return p
}

// The stock profiles, in increasing order of hostility.
func QuietProfile() Profile {
	return Profile{Name: "quiet", Jitter: 200 * time.Microsecond}.withDefaults()
}
func LossyProfile() Profile {
	return Profile{Name: "lossy", Loss: 0.25, Dup: 0.25, Reorder: 0.20,
		Jitter: 300 * time.Microsecond}.withDefaults()
}
func PartitionedProfile() Profile {
	return Profile{Name: "partitioned", Loss: 0.05, Dup: 0.05,
		Jitter: 300 * time.Microsecond, Partitions: 2}.withDefaults()
}
func CrashyProfile() Profile {
	return Profile{Name: "crashy", Loss: 0.05, Dup: 0.05,
		Jitter: 300 * time.Microsecond, Crashes: 2, Partitions: 1}.withDefaults()
}

// MixedProfile is the default seed-sweep profile: every fault class at
// once, at moderate rates.
func MixedProfile() Profile {
	return Profile{Name: "mixed", Loss: 0.10, Dup: 0.10, Reorder: 0.10,
		Jitter: 300 * time.Microsecond, Crashes: 1, Partitions: 1}.withDefaults()
}

// ReplicaProfile is the failover gate: a lossy network plus one permanent
// kill of the initial primary mid-transfer. Only meaningful with
// Options.ReplicationFaults — a single-node workload cannot survive it.
func ReplicaProfile() Profile {
	return Profile{Name: "replica", Loss: 0.05, Dup: 0.05,
		Jitter: 300 * time.Microsecond, Kills: 1}.withDefaults()
}

// SplitBrainProfile isolates the initial primary behind a partition long
// enough for the majority to elect past it, then heals: the deposed
// primary's stale-term traffic must be fenced, not applied.
func SplitBrainProfile() Profile {
	return Profile{Name: "splitbrain", Loss: 0.05, Dup: 0.05,
		Jitter: 300 * time.Microsecond, Isolations: 1}.withDefaults()
}

// ForkHealProfile drives the quarantine→heal lifecycle: a fork window
// keeps client traffic flowing into the isolated primary while the
// majority elects past it, so the primary's log truly forks; after the
// heal the deposed member must quarantine itself and then heal via
// checkpoint supersession from the new leader. Meaningful with
// Options.ReplicationFaults and a checkpointing branch
// (Options.CheckpointEvery > 0). The longer horizon leaves room for the
// post-heal traffic that ships the superseding checkpoint.
func ForkHealProfile() Profile {
	return Profile{Name: "forkheal", Loss: 0.03, Dup: 0.03,
		Jitter: 300 * time.Microsecond, Forks: 1,
		Horizon: 4 * time.Second}.withDefaults()
}

// CombinedProfile is the scale-sweep profile: every fault class the
// vocabulary knows — loss/dup/reorder, crash and partition windows, an
// island, an asymmetric link cut, a ring cut, a rolling crash wave, and
// a storage burst — in one schedule, over a longer horizon. With
// Options.StorageFaults and a replicated topology it drives network,
// storage, and replication faults simultaneously.
func CombinedProfile() Profile {
	return Profile{Name: "combined", Loss: 0.05, Dup: 0.05, Reorder: 0.05,
		Jitter:  300 * time.Microsecond,
		Crashes: 1, Partitions: 1, Islands: 1, Asymmetries: 1,
		RingCuts: 1, Waves: 1, StorageBursts: 1,
		Horizon: 4 * time.Second}.withDefaults()
}

// Profiles returns the stock profiles.
func Profiles() []Profile {
	return []Profile{QuietProfile(), LossyProfile(), PartitionedProfile(),
		CrashyProfile(), MixedProfile(), ReplicaProfile(), SplitBrainProfile(),
		ForkHealProfile(), CombinedProfile()}
}

// ProfileByName resolves a stock profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("dst: unknown profile %q", name)
}

// Options configures one simulated run.
type Options struct {
	// Seed is the master seed; every random decision of the run derives
	// from it.
	Seed int64
	// Workload selects the application under test: "bank" (default) or
	// "airline".
	Workload string
	// Profile is the fault intensity. Zero value means MixedProfile.
	Profile Profile
	// Clients is the number of concurrent client sessions. Zero means 3.
	Clients int
	// OpsPerClient is the number of operations each client issues after
	// setup. Zero means 12.
	OpsPerClient int
	// Bug optionally disables a protection (see the Bug* constants), as a
	// harness self-test: the checkers must catch it.
	Bug string
	// ReplicationFaults replaces the bank workload's single server node
	// with a three-member quorum replica group (m1 initial primary) whose
	// service name clients re-resolve through a name service on the
	// clients node. Schedules may then contain EvKill (permanent primary
	// loss → failover must preserve acknowledged effects) and split-brain
	// isolation windows (stale-term traffic must be fenced). Bank-only.
	ReplicationFaults bool
	// Topology, when non-nil, replaces the workload's fixed node set with
	// a generated sharded topology: Shards bank branches, each on its own
	// node (ReplFactor ≤ 1) or behind its own quorum replica group
	// (ReplFactor ≥ 3), plus the shared clients node. Bank-only;
	// exclusive with ReplicationFaults and Bug.
	Topology *Topology
	// Ring, when non-nil, replaces the workload's fixed node set with a
	// consistent-hash ring of shard-mode bank branches behind a
	// nameserver-hosted membership view: client session 0 becomes the
	// rebalance driver (bootstrap, then live joins and leaves mid-run)
	// while the rest route traffic through bank.Router, with cross-shard
	// transfers on a 2PC coordinator node. Bank-only; exclusive with
	// Topology, ReplicationFaults, and Bug; needs Clients >= 2.
	Ring *RingTopology
	// CheckpointEvery, when positive, makes every bank branch checkpoint
	// its state each N mutating operations — exercising the
	// checkpoint-shipping and quarantine-heal paths of the replication
	// layer, and log compaction everywhere else.
	CheckpointEvery int
	// StorageFaults, when non-nil, injects storage faults under every
	// node: each node's simulated disk is wrapped in a durable.Wrapper
	// with the given rates. Each node's fate stream is seeded by
	// Seed^hash(node) — derived, not drawn from the master stream, so
	// enabling storage faults does not perturb the network or workload
	// streams of the same seed. A faulted node is fail-stopped before
	// the sync returns (no acknowledgment of unsynced state can escape)
	// and restarted a moment later, driving the recovery path through
	// the damage. The config's Seed and OnFault fields are owned by the
	// harness and overwritten.
	StorageFaults *durable.WrapperConfig
	// AttemptTimeout bounds each call attempt (virtual time). Zero means
	// 25ms.
	AttemptTimeout time.Duration
	// Retries is the per-call re-send budget. Zero means 8.
	Retries int
	// Settle is the real-time pacing window of vtime.Drive. Zero means the
	// driver's default.
	Settle time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workload == "" {
		o.Workload = "bank"
	}
	if o.Profile.Name == "" && o.Profile == (Profile{}) {
		o.Profile = MixedProfile()
	} else {
		o.Profile = o.Profile.withDefaults()
	}
	if o.Clients <= 0 {
		o.Clients = 3
	}
	if o.OpsPerClient <= 0 {
		o.OpsPerClient = 12
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 25 * time.Millisecond
	}
	if o.Retries <= 0 {
		o.Retries = 8
	}
	return o
}

// Schedule generates (without running) the fault schedule opts would run
// under — the deterministic function of (seed, profile, workload nodes)
// that makes reproduction possible.
func Schedule(opts Options) []Event {
	opts = opts.withDefaults()
	wl, err := newWorkload(opts)
	if err != nil {
		return nil
	}
	master := rand.New(rand.NewSource(opts.Seed))
	_ = master.Int63() // network seed draw; keep the stream aligned with run()
	schedRng := rand.New(rand.NewSource(master.Int63()))
	return genSchedule(schedRng, opts.Profile, wl.crashNodes(), wl.allNodes(), wl.killNodes())
}

// Run executes one simulated run: schedule generation, then
// RunWithSchedule.
func Run(opts Options) *Report {
	opts = opts.withDefaults()
	return RunWithSchedule(opts, Schedule(opts))
}

// RunWithSchedule executes one simulated run under an explicit fault
// schedule (the shrinker's entry point: same seed, fewer events). The
// network and workload streams still derive from opts.Seed exactly as in
// Run, so removing a schedule event is the ONLY difference between the
// two runs.
func RunWithSchedule(opts Options, schedule []Event) *Report {
	opts = opts.withDefaults()
	rep := &Report{
		Seed:       opts.Seed,
		Workload:   opts.Workload,
		Profile:    opts.Profile.Name,
		Bug:        opts.Bug,
		Replicated: opts.ReplicationFaults || (opts.Topology != nil && opts.Topology.ReplFactor > 1),
		Schedule:   schedule,
		opts:       opts,
	}
	wl, err := newWorkload(opts)
	if err != nil {
		rep.addViolation("setup", err.Error())
		return rep
	}
	rep.Nodes = len(wl.allNodes())

	master := rand.New(rand.NewSource(opts.Seed))
	netSeed := master.Int63()
	_ = master.Int63() // schedule seed (consumed by Schedule)
	workSeed := master.Int63()

	p := opts.Profile
	clock := vtime.NewSim(time.Unix(0, 0))
	cfg := guardian.Config{
		Clock: clock,
		Net: netsim.Config{
			Seed:        netSeed,
			BaseLatency: p.Latency,
			Jitter:      p.Jitter,
			LossRate:    p.Loss,
			DupRate:     p.Dup,
			ReorderRate: p.Reorder,
		},
	}

	// Storage fault injection: every node's simulated disk goes behind a
	// seeded durable.Wrapper. A fault fail-stops the node before its Sync
	// returns — no acknowledgment of unsynced state can escape — and a
	// restart a moment later forces recovery through the damage. The
	// per-node fate seed is derived (Seed^hash(node)), never drawn from
	// the master stream, so the network and workload streams of a seed
	// are identical with and without storage faults.
	var (
		w        *guardian.World
		storeMu  sync.Mutex
		wrappers = make(map[string]*durable.Wrapper)
	)
	sw, wrapsStores := wl.(storeWrapper)
	if opts.StorageFaults != nil || wrapsStores {
		cfg.Store = func(node string) (durable.Store, error) {
			var inner durable.Store = durable.NewSim(stable.NewDisk(clock, stable.DiskConfig{}))
			if sf := opts.StorageFaults; sf != nil {
				wcfg := *sf
				wcfg.Seed = opts.Seed ^ fnv64a(node)
				wcfg.OnFault = func(log, fault string) {
					n, err := w.Node(node)
					if err != nil || !n.Alive() {
						return
					}
					n.Crash()
					go func() {
						clock.Sleep(15 * time.Millisecond)
						if !n.Alive() {
							_ = n.Restart()
						}
					}()
				}
				wr := durable.Wrap(inner, wcfg)
				storeMu.Lock()
				wrappers[node] = wr
				storeMu.Unlock()
				inner = wr
			}
			if wrapsStores {
				return sw.wrapStore(node, inner)
			}
			return inner, nil
		}
	}
	w = guardian.NewWorld(cfg)

	start := clock.Now()
	realStart := time.Now()
	if err := wl.setup(w); err != nil {
		rep.addViolation("setup", err.Error())
		return rep
	}

	// Client sessions: each drives its own sequence of calls from its own
	// seed-derived stream.
	var clients sync.WaitGroup
	for i := 0; i < opts.Clients; i++ {
		i := i
		crng := rand.New(rand.NewSource(workSeed + 7919*int64(i)))
		clients.Add(1)
		go func() {
			defer clients.Done()
			wl.client(i, crng)
		}()
	}

	// Storage bursts scale every node's injected fault rates for a
	// window; a no-op when no wrapper exists (StorageFaults unset).
	setStorageScale := func(f float64) {
		storeMu.Lock()
		defer storeMu.Unlock()
		for _, wr := range wrappers {
			wr.SetFaultScale(f)
		}
	}

	// Fault executor: sleeps on the virtual clock to each event's offset
	// and applies it, so faults land at exactly their scheduled virtual
	// times relative to the workload's own timers. Kills are permanent:
	// a later EvRestart of a killed node (an overlapping crash window) is
	// suppressed, so "killed" really means never coming back.
	execDone := make(chan struct{})
	go func() {
		defer close(execDone)
		killed := make(map[string]bool)
		for _, ev := range schedule {
			if d := ev.At - clock.Since(start); d > 0 {
				clock.Sleep(d)
			}
			if ev.Kind == EvKill {
				killed[ev.Node] = true
			}
			if ev.Kind == EvRestart && killed[ev.Node] {
				continue
			}
			applyEvent(w, ev, setStorageScale)
		}
	}()

	crashed := false
	for _, ev := range schedule {
		if ev.Kind == EvCrash || ev.Kind == EvKill {
			crashed = true
		}
	}

	// The audit phase runs while the clock is still driven: the recovery
	// checker crashes and restarts the server once more, and recovery —
	// like the checker's own synchronizing calls — needs network timers to
	// fire.
	var done atomic.Bool
	go func() {
		defer done.Store(true)
		clients.Wait()
		<-execDone
		w.Quiesce()
		// Quiesce covers network deliveries; give same-node dispatch
		// goroutines a moment of real time too.
		time.Sleep(2 * time.Millisecond)
		rep.VirtualElapsed = clock.Since(start)
		rep.Net = w.Net().Stats()
		storeMu.Lock()
		for _, wr := range wrappers {
			s := wr.InjectedStats()
			rep.Storage.Syncs += s.Syncs
			rep.Storage.SyncsFailed += s.SyncsFailed
			rep.Storage.ShortWrites += s.ShortWrites
			rep.Storage.CorruptedTails += s.CorruptedTails
			rep.Storage.RecordsDropped += s.RecordsDropped
		}
		storeMu.Unlock()
		// A storage fault fail-stops its node outside the schedule; the
		// volatile-counter audits must treat that as a crash too.
		if rep.Storage.SyncsFailed+rep.Storage.ShortWrites+rep.Storage.CorruptedTails > 0 {
			crashed = true
		}
		wl.check(w, rep, crashed)
	}()
	clock.Drive(done.Load, vtime.DriveOptions{Settle: opts.Settle})
	rep.RealElapsed = time.Since(realStart)
	return rep
}

// fnv64a hashes a node name for its storage fate seed.
func fnv64a(s string) int64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return int64(h.Sum64())
}

// applyEvent performs one schedule event against the world. Crashing a
// dead node or restarting a live one (overlapping windows) is a no-op.
// setStorageScale applies a burst factor to every injected-fault wrapper.
func applyEvent(w *guardian.World, ev Event, setStorageScale func(float64)) {
	switch ev.Kind {
	case EvCrash, EvKill:
		if n, err := w.Node(ev.Node); err == nil && n.Alive() {
			n.Crash()
		}
	case EvRestart:
		if n, err := w.Node(ev.Node); err == nil && !n.Alive() {
			_ = n.Restart()
		}
	case EvPartition:
		groups := make([][]netsim.Addr, len(ev.Groups))
		for i, g := range ev.Groups {
			groups[i] = make([]netsim.Addr, len(g))
			for j, name := range g {
				groups[i][j] = netsim.Addr(name)
			}
		}
		w.Net().Partition(groups...)
	case EvHeal:
		w.Net().Heal()
	case EvCutLink:
		w.Net().CutDirected(netsim.Addr(ev.Node), netsim.Addr(ev.Peer))
	case EvRestoreLink:
		w.Net().RestoreDirected(netsim.Addr(ev.Node), netsim.Addr(ev.Peer))
	case EvStorageBurst:
		setStorageScale(ev.Factor)
	case EvStorageCalm:
		setStorageScale(1)
	}
}
