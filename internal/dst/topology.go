package dst

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/amo"
	"repro/internal/bank"
	"repro/internal/durable"
	"repro/internal/guardian"
	"repro/internal/nameserv"
	"repro/internal/replica"
	"repro/internal/sendprim"
	"repro/internal/stable"
	"repro/internal/xrep"
)

// Topology describes a generated sharded world: Shards independent bank
// branches, each on its own node (ReplFactor ≤ 1) or behind its own
// quorum replica group (ReplFactor ≥ 3, odd), plus the shared clients
// node. Shards=67 with ReplFactor=3 is the 200-node scale sweep: 201
// member nodes, one clients node, 67 replicated logs.
type Topology struct {
	// Shards is the number of independent bank branches.
	Shards int
	// ReplFactor is the number of members in each shard's replica group.
	// 0 or 1 places each branch on one plain node; an odd value ≥ 3
	// places it behind a quorum group whose members heartbeat, elect, and
	// ship logs exactly as the three-member replica workload does.
	ReplFactor int
}

func (t Topology) replicated() bool { return t.ReplFactor > 1 }

// shardsPerClient is how many shards each client session spreads its
// operations over (capped at Shards). A stride assignment keeps every
// client's shard set deterministic without consuming any random stream.
const shardsPerClient = 3

func shardGroup(i int) string   { return fmt.Sprintf("dst-s%d", i) }
func shardService(i int) string { return fmt.Sprintf("bank/s%d", i) }

// shardSums is one shard's conservation bookkeeping: the same
// acked/issued deposit and withdrawal bounds the single-branch workloads
// keep, but per branch — money never moves between shards.
type shardSums struct {
	issuedDep, ackedDep int64
	issuedWd, ackedWd   int64
}

// shardedWorkload is the bank workload scaled out: many branches, each
// its own guardian (and, replicated, its own quorum group with its own
// log, elections, and service name), all sharing one lossy network and
// one fault schedule. Every single-branch invariant holds per shard:
//
//	conservation:  Σ balances on shard i ∈ [ackedDep−issuedWd,
//	               issuedDep−ackedWd], bounds from shard i's ledger only.
//	balance:       exact expected balances per (client, shard) whose every
//	               call on that shard was acked.
//	recovery:      each branch's served state equals a replay of its own
//	               durable log (checkpoint-aware).
//	failover:      (replicated) each group ends with a live leader
//	               serving its branch.
type shardedWorkload struct {
	opts Options
	topo Topology
	w    *guardian.World
	met  *amo.Metrics

	// shardNodes[i] is shard i's node set; index 0 is the initial
	// primary (replicated) or the only node (plain).
	shardNodes  [][]string
	memberShard map[string]int
	nsPort      xrep.PortName

	// clientShards[c] are the shard indices client c operates on;
	// ledgers[c] is parallel to it.
	clientShards [][]int
	ledgers      [][]clientLedger

	created []*guardian.Created // per shard; plain mode only

	storesMu sync.Mutex
	stores   map[string]*replica.Store // member node → store; replicated only

	mu        sync.Mutex
	sums      []shardSums
	opsIssued int64
	opsAcked  int64
	opsFailed int64
}

func newShardedWorkload(opts Options) (*shardedWorkload, error) {
	t := *opts.Topology
	if t.Shards < 1 {
		return nil, fmt.Errorf("dst: topology needs at least 1 shard, got %d", t.Shards)
	}
	if t.replicated() && (t.ReplFactor < 3 || t.ReplFactor%2 == 0) {
		return nil, fmt.Errorf("dst: topology ReplFactor must be 0, 1, or an odd number >= 3, got %d", t.ReplFactor)
	}
	s := &shardedWorkload{
		opts:        opts,
		topo:        t,
		met:         &amo.Metrics{},
		memberShard: make(map[string]int),
		nsPort:      xrep.PortName{Node: clientsNode, Guardian: 2, Port: 1},
		created:     make([]*guardian.Created, t.Shards),
		stores:      make(map[string]*replica.Store),
		sums:        make([]shardSums, t.Shards),
	}
	for i := 0; i < t.Shards; i++ {
		var nodes []string
		if t.replicated() {
			for j := 0; j < t.ReplFactor; j++ {
				nodes = append(nodes, fmt.Sprintf("s%dm%d", i, j+1))
			}
		} else {
			nodes = []string{fmt.Sprintf("s%d", i)}
		}
		for _, n := range nodes {
			s.memberShard[n] = i
		}
		s.shardNodes = append(s.shardNodes, nodes)
	}
	per := shardsPerClient
	if per > t.Shards {
		per = t.Shards
	}
	for c := 0; c < opts.Clients; c++ {
		shards := make([]int, per)
		for k := range shards {
			shards[k] = (c*per + k) % t.Shards
		}
		s.clientShards = append(s.clientShards, shards)
		s.ledgers = append(s.ledgers, make([]clientLedger, per))
	}
	return s, nil
}

func (s *shardedWorkload) crashNodes() []string {
	var out []string
	for _, nodes := range s.shardNodes {
		out = append(out, nodes...)
	}
	return out
}

func (s *shardedWorkload) allNodes() []string {
	return append(s.crashNodes(), clientsNode)
}

// killNodes: replicated shards can lose their initial primary for good —
// the remaining majority elects past it; a plain shard cannot survive
// permanent node loss, so nothing is kill-eligible.
func (s *shardedWorkload) killNodes() []string {
	if !s.topo.replicated() {
		return nil
	}
	out := make([]string, len(s.shardNodes))
	for i, nodes := range s.shardNodes {
		out[i] = nodes[0]
	}
	return out
}

// wrapStore puts each member node's store behind its shard's replication
// layer; the clients node (and every node in plain mode) keeps its plain
// store.
func (s *shardedWorkload) wrapStore(node string, inner durable.Store) (durable.Store, error) {
	si, ok := s.memberShard[node]
	if !ok || !s.topo.replicated() {
		return inner, nil
	}
	st, err := replica.NewStore(inner, replica.Config{
		Group:       shardGroup(si),
		Self:        node,
		Members:     s.shardNodes[si],
		Mode:        replica.ModeQuorum,
		Heartbeat:   replHeartbeat,
		Threshold:   replThreshold,
		AppDef:      bank.BranchDefName,
		AppArgs:     branchArgs(s.opts),
		Service:     shardService(si),
		NS:          s.nsPort,
		ServicePort: 1,
	})
	if err != nil {
		return nil, err
	}
	s.storesMu.Lock()
	s.stores[node] = st
	s.storesMu.Unlock()
	return st, nil
}

func (s *shardedWorkload) store(node string) *replica.Store {
	s.storesMu.Lock()
	defer s.storesMu.Unlock()
	return s.stores[node]
}

func (s *shardedWorkload) setup(w *guardian.World) error {
	s.w = w
	w.MustRegister(bank.BranchDef())
	if s.topo.replicated() {
		w.MustRegister(replica.Def())
		w.MustRegister(nameserv.Def())
	}
	cl := w.MustAddNode(clientsNode)
	if s.topo.replicated() {
		if _, err := cl.Bootstrap(nameserv.DefName); err != nil {
			return err
		}
	}
	for i, nodes := range s.shardNodes {
		if s.topo.replicated() {
			// The replicator must be each member's FIRST guardian: its
			// port {node, 2, 1} is the a-priori address group members
			// reach each other at.
			for _, m := range nodes {
				n := w.MustAddNode(m)
				if _, err := n.Bootstrap(replica.DefName); err != nil {
					return err
				}
			}
			primary, err := w.Node(nodes[0])
			if err != nil {
				return err
			}
			created, err := primary.Bootstrap(bank.BranchDefName, branchArgs(s.opts)...)
			if err != nil {
				return err
			}
			s.store(nodes[0]).Adopt(primary, created)
		} else {
			n := w.MustAddNode(nodes[0])
			created, err := n.Bootstrap(bank.BranchDefName, branchArgs(s.opts)...)
			if err != nil {
				return err
			}
			s.created[i] = created
		}
	}
	return nil
}

// shardConn is one client's connection to one shard: the port to call
// and the at-most-once caller that calls it.
type shardConn struct {
	port   xrep.PortName
	caller *amo.Caller
}

// dial builds the connection to shard si: plain mode calls the branch's
// at-most-once port directly; replicated mode waits for the shard's
// service binding and re-resolves it on every retry, chasing failovers.
func (s *shardedWorkload) dial(pr *guardian.Process, ns *nameserv.Client, si int, crng *rand.Rand) *shardConn {
	var port xrep.PortName
	var resolve func() (xrep.PortName, bool)
	if s.topo.replicated() {
		svc := shardService(si)
		bound := false
		for try := 0; try < 200; try++ {
			if p, _, err := ns.Lookup(svc, s.opts.AttemptTimeout); err == nil {
				port, bound = p, true
				break
			}
			pr.Pause(5 * time.Millisecond)
		}
		if !bound {
			return nil
		}
		resolve = func() (xrep.PortName, bool) {
			p, _, err := ns.Lookup(svc, s.opts.AttemptTimeout)
			return p, err == nil
		}
	} else {
		port = s.created[si].Ports[1]
	}
	caller, err := amo.NewCaller(pr, amo.CallerOptions{
		Timeout: s.opts.AttemptTimeout,
		Retries: s.opts.Retries,
		Backoff: amo.BackoffPolicy{Base: 2 * time.Millisecond, Jitter: 0.5},
		Seed:    crng.Int63(),
		Metrics: s.met,
		Resolve: resolve,
	})
	if err != nil {
		return nil
	}
	return &shardConn{port: port, caller: caller}
}

func (s *shardedWorkload) client(i int, crng *rand.Rand) {
	shards := s.clientShards[i]
	node, err := s.w.Node(clientsNode)
	if err != nil {
		return
	}
	_, pr, err := node.NewDriver(fmt.Sprintf("shard-client-%d", i))
	if err != nil {
		return
	}
	var ns *nameserv.Client
	if s.topo.replicated() {
		if ns, err = nameserv.NewClient(pr, s.nsPort); err != nil {
			return
		}
	}

	// Connect to and fund every assigned shard. A shard that cannot be
	// dialed or funded is dropped from the ops loop with its ledger
	// marked uncertain — its conservation bounds stay sound either way.
	conns := make([]*shardConn, len(shards))
	for k, si := range shards {
		led := &s.ledgers[i][k]
		led.acctA, led.acctB = fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		led.certain = true
		conn := s.dial(pr, ns, si, crng)
		if conn == nil {
			led.certain = false
			continue
		}
		defer conn.caller.Close()

		open := func(acct string) bool {
			s.note(func() { s.opsIssued++ })
			rep, err := conn.caller.Call(conn.port, "open", acct)
			if err != nil || (rep.Command != bank.OutcomeOK && rep.Command != bank.OutcomeExists) {
				s.note(func() { s.opsFailed++ })
				led.certain = false
				return false
			}
			s.note(func() { s.opsAcked++ })
			return true
		}
		if !open(led.acctA) || !open(led.acctB) {
			continue
		}
		si := si
		s.note(func() { s.opsIssued++; s.sums[si].issuedDep += seedFunds })
		rep, err := conn.caller.Call(conn.port, "deposit", led.acctA, int64(seedFunds))
		if err != nil || rep.Command != bank.OutcomeOK {
			s.note(func() { s.opsFailed++ })
			led.certain = false
			continue
		}
		s.note(func() { s.opsAcked++; s.sums[si].ackedDep += seedFunds })
		led.funded = true
		led.expA = seedFunds
		conns[k] = conn
	}

	for op := 0; op < s.opts.OpsPerClient; op++ {
		pace(pr, crng, s.opts)
		// Every draw happens whether or not the chosen shard is usable,
		// so one dead shard does not shift the stream feeding the rest.
		k := crng.Intn(len(shards))
		si := shards[k]
		led := &s.ledgers[i][k]
		acct, exp := led.acctA, &led.expA
		if crng.Intn(2) == 1 {
			acct, exp = led.acctB, &led.expB
		}
		pick := crng.Intn(10)
		amt := 1 + crng.Int63n(9)
		conn := conns[k]
		if conn == nil {
			continue
		}
		switch {
		case pick < 4: // deposit
			s.note(func() { s.opsIssued++; s.sums[si].issuedDep += amt })
			rep, err := conn.caller.Call(conn.port, "deposit", acct, amt)
			if err != nil {
				s.note(func() { s.opsFailed++ })
				led.certain = false
				continue
			}
			s.note(func() { s.opsAcked++ })
			if rep.Command == bank.OutcomeOK {
				s.note(func() { s.sums[si].ackedDep += amt })
				*exp += amt
			}
		case pick < 7: // withdraw
			s.note(func() { s.opsIssued++; s.sums[si].issuedWd += amt })
			rep, err := conn.caller.Call(conn.port, "withdraw", acct, amt)
			if err != nil {
				s.note(func() { s.opsFailed++ })
				led.certain = false
				continue
			}
			s.note(func() { s.opsAcked++ })
			if rep.Command == bank.OutcomeOK {
				s.note(func() { s.sums[si].ackedWd += amt })
				*exp -= amt
			}
		default: // intra-branch transfer a→b
			s.note(func() { s.opsIssued++ })
			rep, err := conn.caller.Call(conn.port, "transfer", led.acctA, led.acctB, amt)
			if err != nil {
				s.note(func() { s.opsFailed++ })
				led.certain = false
				continue
			}
			s.note(func() { s.opsAcked++ })
			if rep.Command == bank.OutcomeOK {
				led.expA -= amt
				led.expB += amt
			}
		}
	}
}

func (s *shardedWorkload) note(f func()) {
	s.mu.Lock()
	f()
	s.mu.Unlock()
}

// findLeader returns shard si's live leading member with a serving
// branch, if any.
func (s *shardedWorkload) findLeader(w *guardian.World, si int) (string, *replica.Store) {
	for _, m := range s.shardNodes[si] {
		n, err := w.Node(m)
		if err != nil || !n.Alive() {
			continue
		}
		st := s.store(m)
		if st == nil {
			continue
		}
		if _, _, isSelf := st.Leader(); !isSelf {
			continue
		}
		if g := st.AppGuardian(); g == nil || !g.Alive() {
			continue
		}
		return m, st
	}
	return "", nil
}

// replStats folds every member's replication counters into the report.
func (s *shardedWorkload) replStats(rep *Report) {
	var sum replica.Stats
	s.storesMu.Lock()
	for _, st := range s.stores {
		st := st.ReplStats()
		sum.ShippedBatches += st.ShippedBatches
		sum.ShippedRecords += st.ShippedRecords
		sum.AppliedRecords += st.AppliedRecords
		sum.CheckpointsShipped += st.CheckpointsShipped
		sum.FencedStale += st.FencedStale
		sum.ForksDetected += st.ForksDetected
		sum.Heals += st.Heals
		sum.Elections += st.Elections
		sum.Takeovers += st.Takeovers
	}
	s.storesMu.Unlock()
	rep.Repl = sum
}

func (s *shardedWorkload) check(w *guardian.World, rep *Report, crashed bool) {
	s.mu.Lock()
	rep.OpsIssued, rep.OpsAcked, rep.OpsFailed = s.opsIssued, s.opsAcked, s.opsFailed
	sums := make([]shardSums, len(s.sums))
	copy(sums, s.sums)
	s.mu.Unlock()
	rep.Retries = s.met.Retries.Load()
	if s.topo.replicated() {
		defer s.replStats(rep)
	}

	clock := w.Clock()
	waitUntil := func(limit time.Duration, cond func() bool) bool {
		for waited := time.Duration(0); waited < limit; waited += 5 * time.Millisecond {
			if cond() {
				return true
			}
			clock.Sleep(5 * time.Millisecond)
		}
		return cond()
	}

	cnode, err := w.Node(clientsNode)
	if err != nil {
		rep.addViolation("setup", "clients node missing: %v", err)
		return
	}
	_, pr, err := cnode.NewDriver("shard-checker")
	if err != nil {
		rep.addViolation("setup", "checker driver: %v", err)
		return
	}
	ping := func(port xrep.PortName) error {
		_, err := sendprim.Call(pr, port, bank.ClientReplyType, sendprim.CallOptions{
			Timeout: s.opts.AttemptTimeout,
			Retries: 30,
			Backoff: 2 * time.Millisecond,
		}, "audit")
		return err
	}

	for si := range s.shardNodes {
		// Locate the shard's serving branch guardian.
		var g *guardian.Guardian
		if s.topo.replicated() {
			var leader string
			var lst *replica.Store
			if !waitUntil(3*time.Second, func() bool {
				leader, lst = s.findLeader(w, si)
				return lst != nil
			}) {
				// A group whose clean (undiverged) members no longer form
				// a majority cannot elect: quarantine is persistent until
				// a superseding checkpoint arrives, and shipping one needs
				// a leader. That is the documented availability cost of
				// fork quarantine — safety holds (a forked log's extra
				// records were never acknowledged as durable) — so a
				// clean-minority shard is unauditable, not in violation.
				clean := 0
				for _, m := range s.shardNodes[si] {
					if st := s.store(m); st != nil && !st.Diverged() {
						clean++
					}
				}
				if clean <= len(s.shardNodes[si])/2 {
					continue
				}
				rep.addViolation("failover",
					"shard %d: no live leader serving the branch (%d clean members)", si, clean)
				continue
			}
			if si == 0 {
				rep.Leader = leader
			}
			ports := lst.AppPorts()
			if len(ports) == 0 {
				rep.addViolation("failover", "shard %d: leader %s serves no ports", si, leader)
				continue
			}
			// The audit reply proves the branch's receiver loop is running
			// — any takeover replay completed — before state is read.
			if err := ping(ports[0]); err != nil {
				rep.addViolation("failover", "shard %d: leader branch unreachable: %v", si, err)
				continue
			}
			g = lst.AppGuardian()
		} else {
			n, err := w.Node(s.shardNodes[si][0])
			if err != nil {
				rep.addViolation("recovery", "shard %d: node missing: %v", si, err)
				continue
			}
			if !n.Alive() {
				if err := n.Restart(); err != nil {
					rep.addViolation("recovery", "shard %d: restart failed: %v", si, err)
					continue
				}
			}
			if err := ping(s.created[si].Ports[0]); err != nil {
				rep.addViolation("recovery", "shard %d: branch unreachable: %v", si, err)
				continue
			}
			var ok bool
			g, ok = n.GuardianByID(s.created[si].GuardianID)
			if !ok {
				rep.addViolation("recovery", "shard %d: branch guardian %d missing", si, s.created[si].GuardianID)
				continue
			}
		}

		accts, err := bank.Snapshot(g)
		if err != nil {
			rep.addViolation("recovery", "shard %d: snapshot: %v", si, err)
			continue
		}
		var total int64
		for _, bal := range accts {
			total += bal
		}
		lo := sums[si].ackedDep - sums[si].issuedWd
		hi := sums[si].issuedDep - sums[si].ackedWd
		if total < lo || total > hi {
			rep.addViolation("conservation",
				"shard %d: total balance %d outside [%d,%d] (acked/issued deposit and withdrawal bounds)",
				si, total, lo, hi)
		}

		// Exact balances per (client, shard) whose every call on this
		// shard was acked.
		for ci := range s.ledgers {
			for k, assigned := range s.clientShards[ci] {
				if assigned != si {
					continue
				}
				led := &s.ledgers[ci][k]
				if !led.funded || !led.certain {
					continue
				}
				if accts[led.acctA] != led.expA || accts[led.acctB] != led.expB {
					rep.addViolation("balance",
						"shard %d: client %d (all calls acked): got %s=%d %s=%d, want %d/%d",
						si, ci, led.acctA, accts[led.acctA], led.acctB, accts[led.acctB],
						led.expA, led.expB)
				}
			}
		}

		// Recovery-equals-replay: the served state is exactly what a
		// restart (or, replicated, a takeover) would reconstruct from
		// the durable log, checkpoint included.
		cp, recs, err := g.Log().Recover()
		if err != nil && !errors.Is(err, stable.ErrNoCheckpoint) {
			rep.addViolation("recovery", "shard %d: log recover: %v", si, err)
			continue
		}
		replay, err := bank.ReplayAccountsFrom(cp, recs)
		if err != nil {
			rep.addViolation("recovery", "shard %d: checkpoint decode: %v", si, err)
			continue
		}
		if !equalAccounts(accts, replay) {
			rep.addViolation("recovery", "shard %d: accounts %v != log replay %v", si, accts, replay)
		}
	}
}
