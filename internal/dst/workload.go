package dst

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/durable"
	"repro/internal/guardian"
)

// Node names shared by both workloads: one server node the schedule may
// crash, one client node that never crashes (so client sessions — the
// paper's "user" side — survive to observe outcomes).
const (
	serverNode  = "server"
	clientsNode = "clients"
)

// workload is one application under test. An instance is built per run
// and owns its ledgers; the run engine calls setup once, client
// concurrently per session, and check after the world quiesces.
type workload interface {
	// crashNodes are the nodes the schedule generator may crash.
	crashNodes() []string
	// allNodes are the partition-eligible nodes.
	allNodes() []string
	// killNodes are the nodes eligible for permanent kills (Profile.Kills)
	// and isolation windows (Profile.Isolations); empty for workloads that
	// cannot survive permanent node loss.
	killNodes() []string
	// setup registers definitions and bootstraps the server guardian.
	setup(w *guardian.World) error
	// client runs session i to completion, drawing every decision from
	// crng.
	client(i int, crng *rand.Rand)
	// check audits the final state; crashed tells it whether the schedule
	// contained crash events (some invariants are volatile-state-based and
	// only sound crash-free).
	check(w *guardian.World, rep *Report, crashed bool)
}

// storeWrapper is implemented by workloads that need to interpose on each
// node's durable store (the replica workload wraps member stores in a
// replica.Store). The run engine composes it under any storage-fault
// wrapper: sim disk → fault wrapper → workload wrapper.
type storeWrapper interface {
	wrapStore(node string, inner durable.Store) (durable.Store, error)
}

// pace spreads a client's operations across roughly three quarters of the
// profile horizon. Without it the whole workload drains in the first few
// hundred virtual milliseconds and the fault windows — placed between 10 %
// and 65 % of the horizon — fire into an idle network, testing nothing.
// The gap is drawn from the client's own stream, so it stays a
// deterministic function of the seed.
func pace(pr *guardian.Process, crng *rand.Rand, opts Options) {
	mean := opts.Profile.Horizon * 3 / 4 / time.Duration(opts.OpsPerClient+2)
	if mean <= 0 {
		return
	}
	pr.Pause(time.Duration(float64(mean) * (0.5 + crng.Float64())))
}

// branchArgs builds the bank branch bootstrap arguments implied by the
// run options: "raw" to disable dedup (the seeded bug), and a checkpoint
// interval when the run exercises checkpointing. Shared by every bank
// workload so the branch under test is configured identically whether it
// is bootstrapped directly, by a replica takeover, or per shard.
func branchArgs(opts Options) []any {
	var args []any
	if opts.Bug == BugDisableDedup {
		args = append(args, "raw")
	}
	if opts.CheckpointEvery > 0 {
		args = append(args, int64(opts.CheckpointEvery))
	}
	return args
}

func newWorkload(opts Options) (workload, error) {
	switch opts.Workload {
	case "bank":
		if opts.Ring != nil {
			if opts.Bug != "" {
				return nil, fmt.Errorf("dst: bug %q is single-node-only", opts.Bug)
			}
			if opts.ReplicationFaults || opts.Topology != nil {
				return nil, fmt.Errorf("dst: Ring is exclusive with Topology and ReplicationFaults")
			}
			return newRingWorkload(opts)
		}
		if opts.Topology != nil {
			if opts.Bug != "" {
				return nil, fmt.Errorf("dst: bug %q is single-node-only", opts.Bug)
			}
			if opts.ReplicationFaults {
				return nil, fmt.Errorf("dst: Topology and ReplicationFaults are exclusive (a topology replicates via ReplFactor)")
			}
			return newShardedWorkload(opts)
		}
		if opts.ReplicationFaults {
			if opts.Bug != "" {
				return nil, fmt.Errorf("dst: bug %q is single-node-only", opts.Bug)
			}
			return newBankReplicaWorkload(opts), nil
		}
		return newBankWorkload(opts), nil
	case "airline":
		if opts.Bug != "" {
			return nil, fmt.Errorf("dst: bug %q is bank-only", opts.Bug)
		}
		if opts.ReplicationFaults || opts.Topology != nil || opts.Ring != nil {
			return nil, fmt.Errorf("dst: replication faults, topologies, and rings are bank-only")
		}
		return newAirlineWorkload(opts), nil
	default:
		return nil, fmt.Errorf("dst: unknown workload %q", opts.Workload)
	}
}
