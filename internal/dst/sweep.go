package dst

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// SweepOptions configures a parallel seed sweep: the same run
// configuration executed once per seed, spread across worker goroutines.
// Every run is fully isolated — its own world, virtual clock, network,
// and seed-derived streams — so running seeds in parallel cannot change
// any seed's outcome, only the wall-clock of the sweep.
type SweepOptions struct {
	// Opts is the per-run configuration; its Seed field is overridden by
	// each swept seed.
	Opts Options
	// Seeds are the explicit seeds to run. When empty, the sweep runs
	// Count consecutive seeds starting at StartSeed (default 1).
	Seeds     []int64
	StartSeed int64
	Count     int
	// Parallelism is the number of concurrent runs; 0 means GOMAXPROCS.
	Parallelism int
	// Shrink minimizes each failing run's schedule before reporting it,
	// re-running within ShrinkBudget (0 = one re-run per fault window).
	Shrink       bool
	ShrinkBudget int
	// Progress, when set, is called after each seed completes (from the
	// finishing worker's goroutine, serialized by the sweep's lock).
	Progress func(done, total int, rep *Report)
}

// SweepResult aggregates a sweep's verdicts: every report in seed order,
// plus the timing the nightly job records.
type SweepResult struct {
	// Reports holds one report per swept seed, in seed order.
	Reports []*Report
	// Parallelism is the worker count actually used.
	Parallelism int
	// Elapsed is the sweep's wall-clock time.
	Elapsed time.Duration
}

// Failed reports whether any seed violated an invariant.
func (sr *SweepResult) Failed() bool { return len(sr.Failures()) > 0 }

// Failures returns the failing reports, in seed order.
func (sr *SweepResult) Failures() []*Report {
	var out []*Report
	for _, r := range sr.Reports {
		if r.Failed() {
			out = append(out, r)
		}
	}
	return out
}

// ReproLines returns one reproduction command line per failing seed —
// the artifact the nightly job uploads.
func (sr *SweepResult) ReproLines() []string {
	var out []string
	for _, r := range sr.Failures() {
		out = append(out, r.Repro())
	}
	return out
}

// String renders the sweep verdict with per-seed timing percentiles and
// throughput; failing seeds follow with their full failure stories.
func (sr *SweepResult) String() string {
	var b strings.Builder
	status := "PASS"
	if sr.Failed() {
		status = "FAIL"
	}
	n := len(sr.Reports)
	fmt.Fprintf(&b, "sweep %s seeds=%d", status, n)
	if n > 0 {
		r0 := sr.Reports[0]
		fmt.Fprintf(&b, " workload=%s profile=%s nodes=%d", r0.Workload, r0.Profile, r0.Nodes)
	}
	fmt.Fprintf(&b, " par=%d\n", sr.Parallelism)
	if n > 0 {
		reals := make([]time.Duration, n)
		for i, r := range sr.Reports {
			reals[i] = r.RealElapsed
		}
		sort.Slice(reals, func(i, j int) bool { return reals[i] < reals[j] })
		fmt.Fprintf(&b, "  per-seed real: min=%v median=%v max=%v\n",
			reals[0].Round(time.Millisecond), reals[n/2].Round(time.Millisecond),
			reals[n-1].Round(time.Millisecond))
		if sr.Elapsed > 0 {
			fmt.Fprintf(&b, "  wall: %v (%.1f seeds/min)\n",
				sr.Elapsed.Round(time.Millisecond),
				float64(n)/sr.Elapsed.Minutes())
		}
	}
	if fails := sr.Failures(); len(fails) > 0 {
		fmt.Fprintf(&b, "  %d failing seed(s):\n", len(fails))
		for _, r := range fails {
			for _, line := range strings.Split(strings.TrimRight(r.String(), "\n"), "\n") {
				fmt.Fprintf(&b, "  %s\n", line)
			}
		}
	}
	return b.String()
}

// Sweep runs one simulated run per seed across a pool of workers and
// aggregates the verdicts. Determinism is per seed, not per sweep: a
// failing seed's report (and minimized schedule) is reproduced exactly by
// re-running that seed alone, regardless of parallelism.
func Sweep(sw SweepOptions) *SweepResult {
	seeds := sw.Seeds
	if len(seeds) == 0 {
		start := sw.StartSeed
		if start == 0 {
			start = 1
		}
		count := sw.Count
		if count <= 0 {
			count = 1
		}
		for i := 0; i < count; i++ {
			seeds = append(seeds, start+int64(i))
		}
	}
	par := sw.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(seeds) {
		par = len(seeds)
	}

	reports := make([]*Report, len(seeds))
	idx := make(chan int)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	start := time.Now()
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				opts := sw.Opts
				opts.Seed = seeds[i]
				rep := Run(opts)
				if rep.Failed() && sw.Shrink {
					rep = Shrink(opts, rep, sw.ShrinkBudget)
				}
				reports[i] = rep
				if sw.Progress != nil {
					mu.Lock()
					done++
					sw.Progress(done, len(seeds), rep)
					mu.Unlock()
				}
			}
		}()
	}
	for i := range seeds {
		idx <- i
	}
	close(idx)
	wg.Wait()

	return &SweepResult{
		Reports:     reports,
		Parallelism: par,
		Elapsed:     time.Since(start),
	}
}
