package dst

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/amo"
	"repro/internal/bank"
	"repro/internal/guardian"
	"repro/internal/nameserv"
	"repro/internal/ring"
	"repro/internal/sendprim"
	"repro/internal/stable"
	"repro/internal/tpc"
	"repro/internal/xrep"
)

// RingTopology describes a consistent-hash bank: Shards initial members,
// each a shard-mode branch on its own node, plus Joins members that enter
// and Leaves members that drain MID-RUN — every membership change is a
// live rebalance (snapshot ship, tail catch-up, epoch flip) racing the
// fault schedule and the client traffic. A 2PC coordinator on its own
// crash-eligible node carries the cross-shard transfers.
type RingTopology struct {
	// Shards is the number of initial ring members. Zero means 3.
	Shards int
	// Joins is the number of members joined live during the run.
	Joins int
	// Leaves is the number of initial members drained live during the
	// run. Must leave at least one member on the ring.
	Leaves int
}

func (r RingTopology) withDefaults() RingTopology {
	if r.Shards <= 0 {
		r.Shards = 3
	}
	return r
}

const (
	ringName      = "dst-accounts"
	ringCoordNode = "txncoord"
)

func ringMemberNode(i int) string { return fmt.Sprintf("r%d", i) }
func ringJoinerNode(i int) string { return fmt.Sprintf("j%d", i) }

// ringSums is the cluster-wide conservation bookkeeping. Unlike the
// static topology, money here DOES move between shards — by migration and
// by cross-shard 2PC — so the bound is global: Σ all balances ∈
// [ackedDep−issuedWd, issuedDep−ackedWd]. Transfers conserve and never
// enter the bound.
type ringSums struct {
	issuedDep, ackedDep int64
	issuedWd, ackedWd   int64
}

// ringWorkload drives client traffic through bank.Router (ring-resolved
// at-most-once calls, 2PC fallback for split transfers) while session 0 —
// the rebalancer — grows and shrinks the ring underneath it. Invariants:
//
//	conservation:  global balance total within the acked/issued bounds —
//	               a migration that minted or dropped an account breaks it.
//	exactly-once:  exact balances for every client whose calls were all
//	               acked, across however many epoch flips re-routed them.
//	single-owner:  after the drain, every account lives on exactly the
//	               member the committed ring names, and every branch has
//	               adopted the committed epoch.
//	recovery:      every branch's served state equals a pure replay of
//	               its durable log (migration records included).
//	drain:         every durable 2PC decision reaches both legs (the
//	               coordinator's unsettled set empties after recovery).
type ringWorkload struct {
	opts Options
	topo RingTopology
	w    *guardian.World
	met  *amo.Metrics

	memberNodes []string // initial + joiners, in join order
	nsPort      xrep.PortName
	coordPort   xrep.PortName
	coordID     uint64
	created     map[string]*guardian.Created // branch per member node

	mu         sync.Mutex
	sums       ringSums
	ledgers    []clientLedger // traffic session i uses ledgers[i-1]
	pending    *ring.Ring     // staged epoch the rebalancer did not finish
	rebalances int
	ringEpoch  int64
	opsIssued  int64
	opsAcked   int64
	opsFailed  int64
}

func newRingWorkload(opts Options) (*ringWorkload, error) {
	t := opts.Ring.withDefaults()
	if t.Leaves >= t.Shards+t.Joins {
		return nil, fmt.Errorf("dst: ring of %d+%d members cannot survive %d leaves", t.Shards, t.Joins, t.Leaves)
	}
	if opts.Clients < 2 {
		return nil, fmt.Errorf("dst: ring workload needs >= 2 client sessions (session 0 is the rebalancer)")
	}
	s := &ringWorkload{
		opts:    opts,
		topo:    t,
		met:     &amo.Metrics{},
		created: make(map[string]*guardian.Created),
		ledgers: make([]clientLedger, opts.Clients-1),
	}
	for i := 0; i < t.Shards; i++ {
		s.memberNodes = append(s.memberNodes, ringMemberNode(i))
	}
	for i := 0; i < t.Joins; i++ {
		s.memberNodes = append(s.memberNodes, ringJoinerNode(i))
	}
	return s, nil
}

func (s *ringWorkload) crashNodes() []string {
	return append(append([]string{}, s.memberNodes...), ringCoordNode)
}

func (s *ringWorkload) allNodes() []string {
	return append(s.crashNodes(), clientsNode)
}

// killNodes: a plain shard cannot survive permanent loss of its node.
func (s *ringWorkload) killNodes() []string { return nil }

func (s *ringWorkload) setup(w *guardian.World) error {
	s.w = w
	w.MustRegister(bank.BranchDef())
	w.MustRegister(nameserv.Def())
	w.MustRegister(tpc.CoordinatorDef())

	// The nameserver lives on the never-crashed clients node: ring
	// membership must stay readable or no invariant is auditable. The
	// coordinator gets its own crash-eligible node — its recovery drain
	// is part of what the sweep exercises.
	cl := w.MustAddNode(clientsNode)
	nsCr, err := cl.Bootstrap(nameserv.DefName)
	if err != nil {
		return err
	}
	s.nsPort = nsCr.Ports[0]
	cn := w.MustAddNode(ringCoordNode)
	// Short vote windows and a deep settle budget: the horizon is seconds,
	// and undelivered decisions must drain before it ends or in recovery.
	coCr, err := cn.Bootstrap(tpc.CoordinatorDefName, int64(200), int64(8))
	if err != nil {
		return err
	}
	s.coordPort, s.coordID = coCr.Ports[0], coCr.GuardianID

	// Every member — joiners included — boots its branch now; a joiner
	// simply owns nothing until its join commits an epoch that names it.
	for _, node := range s.memberNodes {
		n := w.MustAddNode(node)
		args := append([]any{bank.ShardArg(node)}, branchArgs(s.opts)...)
		cr, err := n.Bootstrap(bank.BranchDefName, args...)
		if err != nil {
			return err
		}
		s.created[node] = cr
	}
	return nil
}

func (s *ringWorkload) member(node string) ring.Member {
	cr := s.created[node]
	return ring.Member{Name: node, Native: cr.Ports[0], Amo: cr.Ports[1]}
}

func (s *ringWorkload) note(f func()) {
	s.mu.Lock()
	f()
	s.mu.Unlock()
}

func (s *ringWorkload) rebalanceOpts(ns *nameserv.Client) bank.RebalanceOptions {
	return bank.RebalanceOptions{
		NS:      ns,
		Timeout: 250 * time.Millisecond,
		Call: sendprim.CallOptions{
			Timeout: 4 * s.opts.AttemptTimeout,
			Retries: s.opts.Retries,
			Backoff: 2 * time.Millisecond,
		},
		PollInterval: 20 * time.Millisecond,
		PollBudget:   300,
	}
}

// ringGetRetry wraps the single-attempt nameserv client: under
// simulation a same-node call can miss its virtual-clock timeout window,
// so a fetch that matters is retried.
func ringGetRetry(pr *guardian.Process, ns *nameserv.Client, timeout time.Duration, attempts int) (nameserv.RingState, error) {
	var rs nameserv.RingState
	var err error
	for i := 0; i < attempts; i++ {
		if rs, err = ns.RingGet(ringName, timeout); err == nil {
			return rs, nil
		}
		if !pr.Pause(5 * time.Millisecond) {
			return rs, err
		}
	}
	return rs, err
}

// client 0 is the rebalancer: it bootstraps epoch 1, then paces the
// joins and leaves across the horizon. Sessions >= 1 are bank traffic.
func (s *ringWorkload) client(i int, crng *rand.Rand) {
	node, err := s.w.Node(clientsNode)
	if err != nil {
		return
	}
	_, pr, err := node.NewDriver(fmt.Sprintf("ring-client-%d", i))
	if err != nil {
		return
	}
	ns, err := nameserv.NewClient(pr, s.nsPort)
	if err != nil {
		return
	}
	if i == 0 {
		s.rebalancer(pr, ns, crng)
		return
	}
	s.traffic(i, pr, ns, crng)
}

func (s *ringWorkload) rebalancer(pr *guardian.Process, ns *nameserv.Client, crng *rand.Rand) {
	ropts := s.rebalanceOpts(ns)
	initial := make([]ring.Member, s.topo.Shards)
	for i := range initial {
		initial[i] = s.member(ringMemberNode(i))
	}
	boot := ring.New(ringName, 0, initial...)
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		if err = bank.Bootstrap(pr, boot, ropts); err == nil {
			break
		}
		pr.Pause(10 * time.Millisecond)
	}
	if err != nil {
		// Traffic sessions will find no committed ring and mark their
		// ledgers uncertain; check() reports the dead cluster.
		return
	}
	s.note(func() { s.ringEpoch = 1 })

	// One membership change per step: joins first, then drains, spread
	// over the horizon so each rebalance races live traffic and whatever
	// fault windows the schedule placed there.
	type step struct {
		join bool
		node string
	}
	var steps []step
	for j := 0; j < s.topo.Joins; j++ {
		steps = append(steps, step{join: true, node: ringJoinerNode(j)})
	}
	for l := 0; l < s.topo.Leaves; l++ {
		steps = append(steps, step{join: false, node: ringMemberNode(l)})
	}
	gap := s.opts.Profile.Horizon * 3 / 4 / time.Duration(len(steps)+1)
	for _, st := range steps {
		if gap > 0 {
			pr.Pause(time.Duration(float64(gap) * (0.5 + crng.Float64())))
		}
		rs, err := ringGetRetry(pr, ns, ropts.Timeout, 8)
		if err != nil || rs.CommittedEpoch == 0 {
			return
		}
		old, err := ring.Unmarshal(rs.Committed)
		if err != nil {
			return
		}
		var next *ring.Ring
		if st.join {
			next, err = old.WithJoin(s.member(st.node))
		} else {
			next, err = old.WithLeave(st.node)
		}
		if err != nil {
			return
		}
		// Record the target BEFORE driving it: a rebalance the schedule
		// interrupts is re-driven to completion by check(), which is
		// exactly what a production driver would do after its crash.
		s.note(func() { s.pending = next })
		if err := bank.Rebalance(pr, next, ropts); err != nil {
			return
		}
		s.note(func() { s.pending = nil; s.rebalances++; s.ringEpoch = next.Epoch })
	}
}

func (s *ringWorkload) traffic(i int, pr *guardian.Process, ns *nameserv.Client, crng *rand.Rand) {
	led := &s.ledgers[i-1]
	led.acctA, led.acctB = fmt.Sprintf("rc%da", i), fmt.Sprintf("rc%db", i)
	led.certain = true

	// Wait out the bootstrap: no committed ring, no routing.
	ready := false
	for try := 0; try < 400 && !ready; try++ {
		if rs, err := ns.RingGet(ringName, s.opts.AttemptTimeout); err == nil && rs.CommittedEpoch > 0 {
			ready = true
			break
		}
		pr.Pause(5 * time.Millisecond)
	}
	if !ready {
		led.certain = false
		return
	}
	rt, err := bank.NewRouter(pr, bank.RouterOptions{
		NS:          ns,
		RingName:    ringName,
		Coordinator: s.coordPort,
		Call: amo.CallerOptions{
			Timeout: s.opts.AttemptTimeout,
			Retries: s.opts.Retries,
			Backoff: amo.BackoffPolicy{Base: 2 * time.Millisecond, Jitter: 0.5},
			Seed:    crng.Int63(),
			Metrics: s.met,
		},
	})
	if err != nil {
		led.certain = false
		return
	}
	defer rt.Close()

	open := func(acct string) bool {
		s.note(func() { s.opsIssued++ })
		rep, err := rt.Call(acct, "open", acct)
		if err != nil || (rep.Command != bank.OutcomeOK && rep.Command != bank.OutcomeExists) {
			s.note(func() { s.opsFailed++ })
			led.certain = false
			return false
		}
		s.note(func() { s.opsAcked++ })
		return true
	}
	if !open(led.acctA) || !open(led.acctB) {
		return
	}
	s.note(func() { s.opsIssued++; s.sums.issuedDep += seedFunds })
	rep, err := rt.Call(led.acctA, "deposit", led.acctA, int64(seedFunds))
	if err != nil || rep.Command != bank.OutcomeOK {
		s.note(func() { s.opsFailed++ })
		led.certain = false
		return
	}
	s.note(func() { s.opsAcked++; s.sums.ackedDep += seedFunds })
	led.funded = true
	led.expA = seedFunds

	for op := 0; op < s.opts.OpsPerClient; op++ {
		pace(pr, crng, s.opts)
		acct, exp := led.acctA, &led.expA
		if crng.Intn(2) == 1 {
			acct, exp = led.acctB, &led.expB
		}
		pick := crng.Intn(10)
		amt := 1 + crng.Int63n(9)
		switch {
		case pick < 4: // deposit
			s.note(func() { s.opsIssued++; s.sums.issuedDep += amt })
			rep, err := rt.Call(acct, "deposit", acct, amt)
			if err != nil {
				s.note(func() { s.opsFailed++ })
				led.certain = false
				continue
			}
			s.note(func() { s.opsAcked++ })
			if rep.Command == bank.OutcomeOK {
				s.note(func() { s.sums.ackedDep += amt })
				*exp += amt
			}
		case pick < 7: // withdraw
			s.note(func() { s.opsIssued++; s.sums.issuedWd += amt })
			rep, err := rt.Call(acct, "withdraw", acct, amt)
			if err != nil {
				s.note(func() { s.opsFailed++ })
				led.certain = false
				continue
			}
			s.note(func() { s.opsAcked++ })
			if rep.Command == bank.OutcomeOK {
				s.note(func() { s.sums.ackedWd += amt })
				*exp -= amt
			}
		default: // transfer a→b or b→a; split pairs ride 2PC inside Router
			from, to := led.acctA, led.acctB
			fexp, texp := &led.expA, &led.expB
			if crng.Intn(2) == 1 {
				from, to, fexp, texp = to, from, texp, fexp
			}
			s.note(func() { s.opsIssued++ })
			out, err := rt.Transfer(from, to, amt)
			if err != nil {
				s.note(func() { s.opsFailed++ })
				led.certain = false
				continue
			}
			s.note(func() { s.opsAcked++ })
			if out == bank.OutcomeOK {
				*fexp -= amt
				*texp += amt
			}
		}
	}
}

func (s *ringWorkload) check(w *guardian.World, rep *Report, crashed bool) {
	s.mu.Lock()
	rep.OpsIssued, rep.OpsAcked, rep.OpsFailed = s.opsIssued, s.opsAcked, s.opsFailed
	rep.Rebalances, rep.RingEpoch = s.rebalances, s.ringEpoch
	sums := s.sums
	pending := s.pending
	s.mu.Unlock()
	rep.Retries = s.met.Retries.Load()

	clock := w.Clock()
	waitUntil := func(limit time.Duration, cond func() bool) bool {
		for waited := time.Duration(0); waited < limit; waited += 5 * time.Millisecond {
			if cond() {
				return true
			}
			clock.Sleep(5 * time.Millisecond)
		}
		return cond()
	}

	// Bring every crashed node back and prove each branch serves.
	for _, node := range s.crashNodes() {
		n, err := w.Node(node)
		if err != nil {
			rep.addViolation("recovery", "node %s missing: %v", node, err)
			return
		}
		if !n.Alive() {
			if err := n.Restart(); err != nil {
				rep.addViolation("recovery", "restart %s: %v", node, err)
				return
			}
		}
	}
	cnode, err := w.Node(clientsNode)
	if err != nil {
		rep.addViolation("setup", "clients node missing: %v", err)
		return
	}
	_, pr, err := cnode.NewDriver("ring-checker")
	if err != nil {
		rep.addViolation("setup", "checker driver: %v", err)
		return
	}
	callOpts := sendprim.CallOptions{
		Timeout: s.opts.AttemptTimeout,
		Retries: 30,
		Backoff: 2 * time.Millisecond,
	}
	for _, node := range s.memberNodes {
		if _, err := sendprim.Call(pr, s.member(node).Native, bank.ClientReplyType, callOpts, "audit"); err != nil {
			rep.addViolation("recovery", "branch %s unreachable after restart: %v", node, err)
			return
		}
	}
	ns, err := nameserv.NewClient(pr, s.nsPort)
	if err != nil {
		rep.addViolation("setup", "nameserv client: %v", err)
		return
	}

	// Finish what the schedule interrupted: a rebalance is resumable from
	// its durable state (staged epoch, handoff records), so driving the
	// recorded target again must converge now that the network is healed.
	ropts := s.rebalanceOpts(ns)
	if pending != nil {
		var rerr error
		for attempt := 0; attempt < 3; attempt++ {
			if rerr = bank.Rebalance(pr, pending, ropts); rerr == nil {
				break
			}
		}
		if rerr != nil {
			rep.addViolation("rebalance", "epoch %d unfinishable after heal: %v", pending.Epoch, rerr)
			return
		}
		rep.Rebalances++
	}
	rs, err := ringGetRetry(pr, ns, ropts.Timeout, 40)
	if err != nil || rs.CommittedEpoch == 0 {
		rep.addViolation("rebalance", "no committed ring after run: %v", err)
		return
	}
	committed, err := ring.Unmarshal(rs.Committed)
	if err != nil {
		rep.addViolation("rebalance", "committed ring undecodable: %v", err)
		return
	}
	rep.RingEpoch = committed.Epoch

	// Converge adoption: a broadcast the schedule ate is regenerable.
	for _, node := range s.memberNodes {
		if _, err := sendprim.Call(pr, s.member(node).Native, bank.MigrateReplyType, callOpts,
			"ring_update", string(committed.Marshal())); err != nil {
			rep.addViolation("rebalance", "branch %s rejected ring broadcast: %v", node, err)
			return
		}
	}

	// Drain the coordinator: crash-restart it once more so recovery
	// re-drives every decided-but-unsettled transaction, then require the
	// unsettled set to empty — each decision reaching both legs.
	coordNode, err := w.Node(ringCoordNode)
	if err == nil {
		coordNode.Crash()
		if err := coordNode.Restart(); err != nil {
			rep.addViolation("drain", "coordinator restart: %v", err)
			return
		}
		drained := waitUntil(3*time.Second, func() bool {
			g, ok := coordNode.GuardianByID(s.coordID)
			if !ok {
				return false
			}
			unsettled, ok := tpc.CoordinatorUnsettled(g)
			return ok && len(unsettled) == 0
		})
		if !drained {
			g, _ := coordNode.GuardianByID(s.coordID)
			unsettled, _ := tpc.CoordinatorUnsettled(g)
			rep.addViolation("drain", "coordinator decisions never settled: %v", unsettled)
		}
	}

	// Single-owner-per-epoch and conservation, from the branches' own
	// state. The audit pings above ordered these reads after everything
	// each branch wrote.
	var accountNames []string
	for i := range s.ledgers {
		accountNames = append(accountNames, s.ledgers[i].acctA, s.ledgers[i].acctB)
	}
	memberSet := make(map[string]bool, len(committed.Members))
	for _, m := range committed.Members {
		memberSet[m.Name] = true
	}
	merged := make(map[string]int64)
	where := make(map[string]string)
	var total int64
	for _, node := range s.memberNodes {
		if _, err := sendprim.Call(pr, s.member(node).Native, bank.ClientReplyType, callOpts, "audit"); err != nil {
			rep.addViolation("recovery", "branch %s unreachable for audit: %v", node, err)
			return
		}
		n, _ := w.Node(node)
		g, ok := n.GuardianByID(s.created[node].GuardianID)
		if !ok {
			rep.addViolation("recovery", "branch %s guardian missing", node)
			continue
		}
		member, epoch, accts, ok := bank.ShardSnapshot(g)
		if !ok || member != node {
			rep.addViolation("single-owner", "branch %s is not in shard mode (member %q)", node, member)
			continue
		}
		if epoch != committed.Epoch {
			rep.addViolation("single-owner", "branch %s adopted epoch %d, committed is %d", node, epoch, committed.Epoch)
		}
		if !memberSet[node] && len(accts) > 0 {
			rep.addViolation("single-owner", "non-member %s still holds %d accounts", node, len(accts))
		}
		for a, bal := range accts {
			if prev, dup := where[a]; dup {
				rep.addViolation("single-owner", "account %s on both %s and %s", a, prev, node)
			}
			where[a] = node
			merged[a] = bal
			total += bal
		}

		// Recovery-equals-replay, migration records included.
		cp, recs, err := g.Log().Recover()
		if err != nil && !errors.Is(err, stable.ErrNoCheckpoint) {
			rep.addViolation("recovery", "branch %s log recover: %v", node, err)
			continue
		}
		replay, err := bank.ReplayAccountsFrom(cp, recs)
		if err != nil {
			rep.addViolation("recovery", "branch %s checkpoint decode: %v", node, err)
			continue
		}
		if !equalAccounts(accts, replay) {
			rep.addViolation("recovery", "branch %s accounts %v != log replay %v", node, accts, replay)
		}
	}
	for a, node := range where {
		owner, ok := committed.Owner(a)
		if !ok {
			rep.addViolation("single-owner", "committed ring owns nothing (account %s)", a)
			continue
		}
		if owner.Name != node {
			rep.addViolation("single-owner", "account %s on %s, epoch %d owns it to %s", a, node, committed.Epoch, owner.Name)
		}
	}

	lo := sums.ackedDep - sums.issuedWd
	hi := sums.issuedDep - sums.ackedWd
	if total < lo || total > hi {
		rep.addViolation("conservation",
			"cluster total %d outside [%d,%d] (acked/issued deposit and withdrawal bounds)", total, lo, hi)
	}

	// Exactly-once: exact balances for all-acked clients, across every
	// epoch flip their retries crossed.
	for i := range s.ledgers {
		led := &s.ledgers[i]
		if !led.funded || !led.certain {
			continue
		}
		if merged[led.acctA] != led.expA || merged[led.acctB] != led.expB {
			rep.addViolation("exactly-once",
				"client %d (all calls acked): got %s=%d %s=%d, want %d/%d",
				i+1, led.acctA, merged[led.acctA], led.acctB, merged[led.acctB], led.expA, led.expB)
		}
	}
}
