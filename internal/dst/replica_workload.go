package dst

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/amo"
	"repro/internal/bank"
	"repro/internal/durable"
	"repro/internal/guardian"
	"repro/internal/nameserv"
	"repro/internal/replica"
	"repro/internal/sendprim"
	"repro/internal/stable"
	"repro/internal/xrep"
)

// The replica workload's node set: a three-member quorum group (m1 the
// initial primary) plus the shared clients node, which also hosts the
// name service — the one piece of the world that must outlive any member.
var replMembers = []string{"m1", "m2", "m3"}

// replGroup is the group name; it doubles as the shared rebind key under
// which the service name is registered.
const (
	replGroup   = "dst-bank"
	replService = "bank/main"
	// replHeartbeat is deliberately small against the 2 s horizon so
	// failure detection (heartbeat × (threshold+1) ≈ 60 ms) and the
	// election resolve well inside a kill or isolation window.
	replHeartbeat = 20 * time.Millisecond
	replThreshold = 2
)

// bankReplicaWorkload is the bank workload rebuilt on the replication
// layer: the branch guardian lives on the current leader of a
// three-member quorum group, every client call goes through the
// at-most-once port resolved by name, and the caller re-resolves on
// retries — so a permanent kill of the primary (EvKill) is survivable:
// followers elect, the winner re-creates the branch from the shipped log
// and re-binds the service name, and the clients' retries land on it.
//
// The invariants are the single-node bank's, restated for failover:
//
//	conservation:  Σ balances on the LEADER ∈ [ackedDeposits−issuedWd,
//	               issuedDeposits−ackedWd] — an acknowledged effect
//	               required a quorum, so it must survive the primary's
//	               permanent death; a double-applied retry would push the
//	               total past the upper bound.
//	exactly-once:  exact expected balances for clients whose every call
//	               was acked (the dedup table rode the replicated log).
//	replication:   every live, undiverged member converges to the
//	               leader's durable position.
//	recovery:      the leader's state equals a pure replay of its log.
type bankReplicaWorkload struct {
	opts    Options
	w       *guardian.World
	met     *amo.Metrics
	ledgers []clientLedger
	nsPort  xrep.PortName

	storesMu sync.Mutex
	stores   map[string]*replica.Store

	mu           sync.Mutex
	issuedDepSum int64
	ackedDepSum  int64
	issuedWdSum  int64
	ackedWdSum   int64
	issuedAmo    int64
	ackedOKAmo   int64
	opsIssued    int64
	opsAcked     int64
	opsFailed    int64
}

func newBankReplicaWorkload(opts Options) *bankReplicaWorkload {
	return &bankReplicaWorkload{
		opts:    opts,
		met:     &amo.Metrics{},
		ledgers: make([]clientLedger, opts.Clients),
		stores:  make(map[string]*replica.Store),
		nsPort:  xrep.PortName{Node: clientsNode, Guardian: 2, Port: 1},
	}
}

func (b *bankReplicaWorkload) crashNodes() []string { return replMembers }
func (b *bankReplicaWorkload) allNodes() []string {
	return append(append([]string{}, replMembers...), clientsNode)
}

// killNodes: only the initial primary is kill-eligible, so every schedule
// leaves the two-member quorum {m2, m3} alive to elect past it.
func (b *bankReplicaWorkload) killNodes() []string { return replMembers[:1] }

// wrapStore puts each member's store behind the replication layer; the
// clients node keeps its plain store. Composes under storage faults: the
// replica layer sees the faulted disk, exactly as a deployment would.
func (b *bankReplicaWorkload) wrapStore(node string, inner durable.Store) (durable.Store, error) {
	member := false
	for _, m := range replMembers {
		if m == node {
			member = true
		}
	}
	if !member {
		return inner, nil
	}
	st, err := replica.NewStore(inner, replica.Config{
		Group:       replGroup,
		Self:        node,
		Members:     replMembers,
		Mode:        replica.ModeQuorum,
		Heartbeat:   replHeartbeat,
		Threshold:   replThreshold,
		AppDef:      bank.BranchDefName,
		AppArgs:     branchArgs(b.opts),
		Service:     replService,
		NS:          b.nsPort,
		ServicePort: 1,
	})
	if err != nil {
		return nil, err
	}
	b.storesMu.Lock()
	b.stores[node] = st
	b.storesMu.Unlock()
	return st, nil
}

func (b *bankReplicaWorkload) store(node string) *replica.Store {
	b.storesMu.Lock()
	defer b.storesMu.Unlock()
	return b.stores[node]
}

func (b *bankReplicaWorkload) setup(w *guardian.World) error {
	b.w = w
	w.MustRegister(replica.Def())
	w.MustRegister(bank.BranchDef())
	w.MustRegister(nameserv.Def())

	cl := w.MustAddNode(clientsNode)
	if _, err := cl.Bootstrap(nameserv.DefName); err != nil {
		return err
	}
	// The replicator must be each member's FIRST guardian: its port name
	// {node, 2, 1} is the a-priori address members reach each other at.
	for _, m := range replMembers {
		n := w.MustAddNode(m)
		if _, err := n.Bootstrap(replica.DefName); err != nil {
			return err
		}
	}
	primary, err := w.Node(replMembers[0])
	if err != nil {
		return err
	}
	created, err := primary.Bootstrap(bank.BranchDefName, branchArgs(b.opts)...)
	if err != nil {
		return err
	}
	b.store(replMembers[0]).Adopt(primary, created)
	return nil
}

func (b *bankReplicaWorkload) client(i int, crng *rand.Rand) {
	led := &b.ledgers[i]
	led.acctA, led.acctB = fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
	led.certain = true

	node, err := b.w.Node(clientsNode)
	if err != nil {
		return
	}
	_, pr, err := node.NewDriver(fmt.Sprintf("bank-repl-client-%d", i))
	if err != nil {
		return
	}
	ns, err := nameserv.NewClient(pr, b.nsPort)
	if err != nil {
		return
	}

	// The leader binds the service name once its branch is serving; wait
	// for the first binding, then let the caller's Resolve chase rebinds.
	var svc xrep.PortName
	bound := false
	for try := 0; try < 200; try++ {
		if p, _, err := ns.Lookup(replService, b.opts.AttemptTimeout); err == nil {
			svc, bound = p, true
			break
		}
		pr.Pause(5 * time.Millisecond)
	}
	if !bound {
		led.certain = false
		return
	}

	caller, err := amo.NewCaller(pr, amo.CallerOptions{
		Timeout: b.opts.AttemptTimeout,
		Retries: b.opts.Retries,
		Backoff: amo.BackoffPolicy{Base: 2 * time.Millisecond, Jitter: 0.5},
		Seed:    crng.Int63(),
		Metrics: b.met,
		Resolve: func() (xrep.PortName, bool) {
			p, _, err := ns.Lookup(replService, b.opts.AttemptTimeout)
			return p, err == nil
		},
	})
	if err != nil {
		return
	}
	defer caller.Close()

	// Everything — account setup included — goes through the at-most-once
	// port: a retry that crosses a failover must not double-apply, and
	// that is exactly what this workload exists to check.
	open := func(acct string) bool {
		b.note(func() { b.opsIssued++; b.issuedAmo++ })
		rep, err := caller.Call(svc, "open", acct)
		if err != nil || (rep.Command != bank.OutcomeOK && rep.Command != bank.OutcomeExists) {
			b.note(func() { b.opsFailed++ })
			led.certain = false
			return false
		}
		b.note(func() { b.opsAcked++ })
		if rep.Command == bank.OutcomeOK {
			b.note(func() { b.ackedOKAmo++ })
		}
		return true
	}
	if !open(led.acctA) || !open(led.acctB) {
		return
	}
	b.note(func() { b.opsIssued++; b.issuedAmo++; b.issuedDepSum += seedFunds })
	rep, err := caller.Call(svc, "deposit", led.acctA, int64(seedFunds))
	if err != nil || rep.Command != bank.OutcomeOK {
		b.note(func() { b.opsFailed++ })
		led.certain = false
		return
	}
	b.note(func() { b.opsAcked++; b.ackedDepSum += seedFunds; b.ackedOKAmo++ })
	led.funded = true
	led.expA = seedFunds

	for op := 0; op < b.opts.OpsPerClient; op++ {
		pace(pr, crng, b.opts)
		acct, exp := led.acctA, &led.expA
		if crng.Intn(2) == 1 {
			acct, exp = led.acctB, &led.expB
		}
		switch pick := crng.Intn(10); {
		case pick < 4: // deposit
			amt := 1 + crng.Int63n(9)
			b.note(func() { b.opsIssued++; b.issuedAmo++; b.issuedDepSum += amt })
			rep, err := caller.Call(svc, "deposit", acct, amt)
			if err != nil {
				b.note(func() { b.opsFailed++ })
				led.certain = false
				continue
			}
			b.note(func() { b.opsAcked++ })
			if rep.Command == bank.OutcomeOK {
				b.note(func() { b.ackedDepSum += amt; b.ackedOKAmo++ })
				*exp += amt
			}
		case pick < 7: // withdraw
			amt := 1 + crng.Int63n(5)
			b.note(func() { b.opsIssued++; b.issuedAmo++; b.issuedWdSum += amt })
			rep, err := caller.Call(svc, "withdraw", acct, amt)
			if err != nil {
				b.note(func() { b.opsFailed++ })
				led.certain = false
				continue
			}
			b.note(func() { b.opsAcked++ })
			if rep.Command == bank.OutcomeOK {
				b.note(func() { b.ackedWdSum += amt; b.ackedOKAmo++ })
				*exp -= amt
			}
		default: // intra-branch transfer a→b
			amt := 1 + crng.Int63n(7)
			b.note(func() { b.opsIssued++; b.issuedAmo++ })
			rep, err := caller.Call(svc, "transfer", led.acctA, led.acctB, amt)
			if err != nil {
				b.note(func() { b.opsFailed++ })
				led.certain = false
				continue
			}
			b.note(func() { b.opsAcked++ })
			if rep.Command == bank.OutcomeOK {
				b.note(func() { b.ackedOKAmo++ })
				led.expA -= amt
				led.expB += amt
			}
		}
	}
}

func (b *bankReplicaWorkload) note(f func()) {
	b.mu.Lock()
	f()
	b.mu.Unlock()
}

// findLeader returns the live member whose store believes it leads and
// whose branch guardian is serving.
func (b *bankReplicaWorkload) findLeader(w *guardian.World) (string, *replica.Store) {
	for _, m := range replMembers {
		n, err := w.Node(m)
		if err != nil || !n.Alive() {
			continue
		}
		st := b.store(m)
		if st == nil {
			continue
		}
		if _, _, isSelf := st.Leader(); !isSelf {
			continue
		}
		if g := st.AppGuardian(); g == nil || !g.Alive() {
			continue
		}
		return m, st
	}
	return "", nil
}

// replStats folds every member's replication counters into the report.
func (b *bankReplicaWorkload) replStats(rep *Report) {
	var sum replica.Stats
	for _, m := range replMembers {
		st := b.store(m)
		if st == nil {
			continue
		}
		s := st.ReplStats()
		sum.ShippedBatches += s.ShippedBatches
		sum.ShippedRecords += s.ShippedRecords
		sum.AppliedRecords += s.AppliedRecords
		sum.CheckpointsShipped += s.CheckpointsShipped
		sum.FencedStale += s.FencedStale
		sum.ForksDetected += s.ForksDetected
		sum.Heals += s.Heals
		sum.Elections += s.Elections
		sum.Takeovers += s.Takeovers
	}
	rep.Repl = sum
}

func (b *bankReplicaWorkload) check(w *guardian.World, rep *Report, crashed bool) {
	b.mu.Lock()
	rep.OpsIssued, rep.OpsAcked, rep.OpsFailed = b.opsIssued, b.opsAcked, b.opsFailed
	lo := b.ackedDepSum - b.issuedWdSum
	hi := b.issuedDepSum - b.ackedWdSum
	ackedOK, issuedAmo := b.ackedOKAmo, b.issuedAmo
	b.mu.Unlock()
	rep.Retries = b.met.Retries.Load()
	defer b.replStats(rep)

	clock := w.Clock()
	waitUntil := func(limit time.Duration, cond func() bool) bool {
		for waited := time.Duration(0); waited < limit; waited += 5 * time.Millisecond {
			if cond() {
				return true
			}
			clock.Sleep(5 * time.Millisecond)
		}
		return cond()
	}

	// Failover liveness: some live member must end up leading with a
	// serving branch — the schedule always leaves a quorum alive.
	var leader string
	var lst *replica.Store
	if !waitUntil(3*time.Second, func() bool {
		leader, lst = b.findLeader(w)
		return lst != nil
	}) {
		rep.addViolation("failover", "no live leader serving the branch after the run")
		return
	}
	rep.Leader = leader

	cnode, err := w.Node(clientsNode)
	if err != nil {
		rep.addViolation("failover", "clients node missing: %v", err)
		return
	}
	_, pr, err := cnode.NewDriver("bank-repl-checker")
	if err != nil {
		rep.addViolation("failover", "checker driver: %v", err)
		return
	}
	ports := lst.AppPorts()
	if len(ports) == 0 {
		rep.addViolation("failover", "leader %s serves no ports", leader)
		return
	}
	// The audit reply proves the branch's receiver loop is running — any
	// takeover replay has completed — before we read its state directly.
	if _, err := sendprim.Call(pr, ports[0], bank.ClientReplyType, sendprim.CallOptions{
		Timeout: b.opts.AttemptTimeout,
		Retries: 30,
		Backoff: 2 * time.Millisecond,
	}, "audit"); err != nil {
		rep.addViolation("failover", "leader branch unreachable: %v", err)
		return
	}

	g := lst.AppGuardian()
	accts, err := bank.Snapshot(g)
	if err != nil {
		rep.addViolation("failover", "leader snapshot: %v", err)
		return
	}
	var total int64
	for _, bal := range accts {
		total += bal
	}
	if total < lo || total > hi {
		rep.addViolation("conservation",
			"leader total balance %d outside [%d,%d] (acked/issued deposit and withdrawal bounds)",
			total, lo, hi)
	}

	// The execution-count audit needs the branch's volatile applies
	// counter to have seen every op: sound only when no node crashed and
	// no takeover re-created the branch mid-run.
	var takeovers int64
	for _, m := range replMembers {
		if st := b.store(m); st != nil {
			takeovers += st.ReplStats().Takeovers
		}
	}
	if !crashed && takeovers == 0 {
		applies, err := bank.Applies(g)
		if err != nil {
			rep.addViolation("exactly-once", "applies: %v", err)
		} else if applies < ackedOK || applies > issuedAmo {
			rep.addViolation("exactly-once",
				"branch executed %d ok ops, want between %d acked-ok and %d issued",
				applies, ackedOK, issuedAmo)
		}
	}

	// Exactly-once across failover, observed from the outside: a client
	// whose every call got a definite outcome must see exactly its
	// expected balances on the post-failover leader.
	for i := range b.ledgers {
		led := &b.ledgers[i]
		if !led.funded || !led.certain {
			continue
		}
		if accts[led.acctA] != led.expA || accts[led.acctB] != led.expB {
			rep.addViolation("exactly-once",
				"client %d (all calls acked): got %s=%d %s=%d, want %d/%d",
				i, led.acctA, accts[led.acctA], led.acctB, accts[led.acctB],
				led.expA, led.expB)
		}
	}

	// Replication liveness: every live member converges to (at least) the
	// leader's durable position. A deposed-and-diverged old primary may
	// sit numerically AHEAD on records the group never acknowledged —
	// that is the documented divergence limitation, not a stall — hence
	// ">=" and the Diverged() exemption.
	logName := g.LogName()
	leaderSeq := g.Log().LastDurableSeq()
	for _, m := range replMembers {
		if m == leader {
			continue
		}
		n, err := w.Node(m)
		if err != nil || !n.Alive() {
			continue
		}
		st := b.store(m)
		if st == nil || st.Diverged() {
			continue
		}
		if !waitUntil(3*time.Second, func() bool {
			l, err := st.Inner().OpenLog(logName)
			return err == nil && l.LastDurableSeq() >= leaderSeq
		}) {
			l, _ := st.Inner().OpenLog(logName)
			var at uint64
			if l != nil {
				at = l.LastDurableSeq()
			}
			rep.addViolation("replication",
				"member %s stalled at seq %d, leader %s is at %d", m, at, leader, leaderSeq)
		}
	}

	// Recovery-equals-replay on the leader: the state any future takeover
	// would reconstruct is exactly the state being served.
	cp, recs, err := g.Log().Recover()
	if err != nil && !errors.Is(err, stable.ErrNoCheckpoint) {
		rep.addViolation("recovery", "leader log recover: %v", err)
		return
	}
	replay, err := bank.ReplayAccountsFrom(cp, recs)
	if err != nil {
		rep.addViolation("recovery", "leader checkpoint decode: %v", err)
		return
	}
	if !equalAccounts(accts, replay) {
		rep.addViolation("recovery", "leader accounts %v != log replay %v", accts, replay)
	}
}
