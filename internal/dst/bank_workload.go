package dst

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/amo"
	"repro/internal/bank"
	"repro/internal/guardian"
	"repro/internal/sendprim"
	"repro/internal/stable"
)

// seedFunds is the initial deposit each client makes into its first
// account before issuing random operations.
const seedFunds = 1000

// clientLedger is one session's client-side model of its two accounts.
// Touched only by its own goroutine during the run, read by check after.
type clientLedger struct {
	acctA, acctB string
	expA, expB   int64
	// funded is true once the initial deposit was acked ok.
	funded bool
	// certain is true while every call the client made was acked — the
	// precondition for comparing exact balances. Any timeout or failure
	// leaves an op in may-or-may-not-have-applied limbo and clears it.
	certain bool
}

// bankWorkload drives deposits, withdrawals and intra-branch transfers
// against one branch guardian through its at-most-once port, and audits
// the surviving accounts.
//
// The invariants are chosen to be valid under ANY schedule and goroutine
// interleaving, exploiting the branch's log-then-reply discipline (an
// acked op is durable) and the amo layer's at-most-once promise (an
// issued op applies at most once):
//
//	conservation:  Σ balances ∈ [ackedDeposits−issuedWithdrawals,
//	                             issuedDeposits−ackedWithdrawals]
//	exactly-once:  ackedOK ≤ applies ≤ issuedAmoOps   (crash-free runs:
//	               the applies counter is volatile)
//	balance:       exact expected balances, for clients whose every call
//	               was acked
//	recovery:      state after crash+restart == state before == pure
//	               replay of the durable log (bank.ReplayAccounts)
type bankWorkload struct {
	opts    Options
	w       *guardian.World
	created *guardian.Created
	met     *amo.Metrics
	ledgers []clientLedger

	mu           sync.Mutex
	issuedDepSum int64 // all deposit amounts issued (funding included)
	ackedDepSum  int64 // deposit amounts acked ok
	issuedWdSum  int64 // all withdrawal amounts issued
	ackedWdSum   int64 // withdrawal amounts acked ok
	issuedAmo    int64 // mutating at-most-once calls issued
	ackedOKAmo   int64 // at-most-once calls acked with outcome ok
	opsIssued    int64
	opsAcked     int64
	opsFailed    int64
}

func newBankWorkload(opts Options) *bankWorkload {
	return &bankWorkload{
		opts:    opts,
		met:     &amo.Metrics{},
		ledgers: make([]clientLedger, opts.Clients),
	}
}

func (b *bankWorkload) crashNodes() []string { return []string{serverNode} }
func (b *bankWorkload) allNodes() []string   { return []string{serverNode, clientsNode} }
func (b *bankWorkload) killNodes() []string  { return nil }

func (b *bankWorkload) setup(w *guardian.World) error {
	b.w = w
	w.MustRegister(bank.BranchDef())
	srv := w.MustAddNode(serverNode)
	w.MustAddNode(clientsNode)
	created, err := srv.Bootstrap(bank.BranchDefName, branchArgs(b.opts)...)
	if err != nil {
		return err
	}
	b.created = created
	return nil
}

func (b *bankWorkload) client(i int, crng *rand.Rand) {
	led := &b.ledgers[i]
	led.acctA, led.acctB = fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
	led.certain = true

	node, err := b.w.Node(clientsNode)
	if err != nil {
		return
	}
	_, pr, err := node.NewDriver(fmt.Sprintf("bank-client-%d", i))
	if err != nil {
		return
	}
	native := b.created.Ports[0]
	amoPort := b.created.Ports[1]
	callOpts := sendprim.CallOptions{
		Timeout: b.opts.AttemptTimeout,
		Retries: b.opts.Retries,
		Backoff: 2 * time.Millisecond,
	}

	// Account setup and funding go through the branch's native idempotent
	// port: open re-sends answer account_exists, the funding deposit
	// carries an op_id.
	open := func(acct string) bool {
		b.note(func() { b.opsIssued++ })
		m, err := sendprim.Call(pr, native, bank.ClientReplyType, callOpts, "open", acct)
		if err != nil || (m.Command != bank.OutcomeOK && m.Command != bank.OutcomeExists) {
			b.note(func() { b.opsFailed++ })
			led.certain = false
			return false
		}
		b.note(func() { b.opsAcked++ })
		return true
	}
	if !open(led.acctA) || !open(led.acctB) {
		return
	}
	b.note(func() { b.opsIssued++; b.issuedDepSum += seedFunds })
	m, err := sendprim.Call(pr, native, bank.ClientReplyType, callOpts,
		"deposit", led.acctA, int64(seedFunds), fmt.Sprintf("fund-%d", i))
	if err != nil || m.Command != bank.OutcomeOK {
		b.note(func() { b.opsFailed++ })
		led.certain = false
		return
	}
	b.note(func() { b.opsAcked++; b.ackedDepSum += seedFunds })
	led.funded = true
	led.expA = seedFunds

	caller, err := amo.NewCaller(pr, amo.CallerOptions{
		Timeout: b.opts.AttemptTimeout,
		Retries: b.opts.Retries,
		Backoff: amo.BackoffPolicy{Base: 2 * time.Millisecond, Jitter: 0.5},
		Seed:    crng.Int63(),
		Metrics: b.met,
	})
	if err != nil {
		return
	}
	defer caller.Close()

	for op := 0; op < b.opts.OpsPerClient; op++ {
		pace(pr, crng, b.opts)
		acct, exp := led.acctA, &led.expA
		if crng.Intn(2) == 1 {
			acct, exp = led.acctB, &led.expB
		}
		switch pick := crng.Intn(10); {
		case pick < 4: // deposit
			amt := 1 + crng.Int63n(9)
			b.note(func() { b.opsIssued++; b.issuedAmo++; b.issuedDepSum += amt })
			rep, err := caller.Call(amoPort, "deposit", acct, amt)
			if err != nil {
				b.note(func() { b.opsFailed++ })
				led.certain = false
				continue
			}
			b.note(func() { b.opsAcked++ })
			if rep.Command == bank.OutcomeOK {
				b.note(func() { b.ackedDepSum += amt; b.ackedOKAmo++ })
				*exp += amt
			}
		case pick < 7: // withdraw
			amt := 1 + crng.Int63n(5)
			b.note(func() { b.opsIssued++; b.issuedAmo++; b.issuedWdSum += amt })
			rep, err := caller.Call(amoPort, "withdraw", acct, amt)
			if err != nil {
				b.note(func() { b.opsFailed++ })
				led.certain = false
				continue
			}
			b.note(func() { b.opsAcked++ })
			if rep.Command == bank.OutcomeOK {
				b.note(func() { b.ackedWdSum += amt; b.ackedOKAmo++ })
				*exp -= amt
			}
		default: // intra-branch transfer a→b
			amt := 1 + crng.Int63n(7)
			b.note(func() { b.opsIssued++; b.issuedAmo++ })
			rep, err := caller.Call(amoPort, "transfer", led.acctA, led.acctB, amt)
			if err != nil {
				b.note(func() { b.opsFailed++ })
				led.certain = false
				continue
			}
			b.note(func() { b.opsAcked++ })
			if rep.Command == bank.OutcomeOK {
				b.note(func() { b.ackedOKAmo++ })
				led.expA -= amt
				led.expB += amt
			}
		}
	}
}

func (b *bankWorkload) note(f func()) {
	b.mu.Lock()
	f()
	b.mu.Unlock()
}

// ping performs a synchronizing audit call: the reply proves the branch's
// receiver loop is running, which in turn proves any recovery replay has
// completed — only then is it safe to read the guardian's state directly.
func (b *bankWorkload) ping(pr *guardian.Process) error {
	_, err := sendprim.Call(pr, b.created.Ports[0], bank.ClientReplyType,
		sendprim.CallOptions{
			Timeout: b.opts.AttemptTimeout,
			Retries: 20,
			Backoff: 2 * time.Millisecond,
		}, "audit")
	return err
}

func (b *bankWorkload) check(w *guardian.World, rep *Report, crashed bool) {
	b.mu.Lock()
	rep.OpsIssued, rep.OpsAcked, rep.OpsFailed = b.opsIssued, b.opsAcked, b.opsFailed
	lo := b.ackedDepSum - b.issuedWdSum
	hi := b.issuedDepSum - b.ackedWdSum
	ackedOK, issuedAmo := b.ackedOKAmo, b.issuedAmo
	b.mu.Unlock()
	rep.Retries = b.met.Retries.Load()

	node, err := w.Node(serverNode)
	if err != nil {
		rep.addViolation("recovery", "server node missing: %v", err)
		return
	}
	if !node.Alive() {
		if err := node.Restart(); err != nil {
			rep.addViolation("recovery", "restart failed: %v", err)
			return
		}
	}
	cnode, err := w.Node(clientsNode)
	if err != nil {
		rep.addViolation("recovery", "clients node missing: %v", err)
		return
	}
	_, pr, err := cnode.NewDriver("bank-checker")
	if err != nil {
		rep.addViolation("recovery", "checker driver: %v", err)
		return
	}
	if err := b.ping(pr); err != nil {
		rep.addViolation("recovery", "branch unreachable after run: %v", err)
		return
	}
	g, ok := node.GuardianByID(b.created.GuardianID)
	if !ok {
		rep.addViolation("recovery", "branch guardian %d missing after run", b.created.GuardianID)
		return
	}
	accts, err := bank.Snapshot(g)
	if err != nil {
		rep.addViolation("recovery", "snapshot: %v", err)
		return
	}
	var total int64
	for _, bal := range accts {
		total += bal
	}
	if total < lo || total > hi {
		rep.addViolation("conservation",
			"total balance %d outside [%d,%d] (acked/issued deposit and withdrawal bounds)",
			total, lo, hi)
	}

	// The applies counter is volatile guardian state, so the execution
	// count audit is only sound on crash-free schedules.
	if !crashed {
		applies, err := bank.Applies(g)
		if err != nil {
			rep.addViolation("exactly-once", "applies: %v", err)
		} else if applies < ackedOK || applies > issuedAmo {
			rep.addViolation("exactly-once",
				"branch executed %d ok ops, want between %d acked-ok and %d issued",
				applies, ackedOK, issuedAmo)
		}
	}

	for i := range b.ledgers {
		led := &b.ledgers[i]
		if !led.funded || !led.certain {
			continue
		}
		if accts[led.acctA] != led.expA || accts[led.acctB] != led.expB {
			rep.addViolation("balance",
				"client %d (all calls acked): got %s=%d %s=%d, want %d/%d",
				i, led.acctA, accts[led.acctA], led.acctB, accts[led.acctB],
				led.expA, led.expB)
		}
	}

	// Recovery: crash the branch once more and require the restarted
	// state to equal both the pre-crash state and an independent pure
	// replay of the durable log.
	node.Crash()
	if err := node.Restart(); err != nil {
		rep.addViolation("recovery", "final restart: %v", err)
		return
	}
	if err := b.ping(pr); err != nil {
		rep.addViolation("recovery", "branch unreachable after final restart: %v", err)
		return
	}
	g2, ok := node.GuardianByID(b.created.GuardianID)
	if !ok {
		rep.addViolation("recovery", "branch guardian %d not recovered", b.created.GuardianID)
		return
	}
	post, err := bank.Snapshot(g2)
	if err != nil {
		rep.addViolation("recovery", "post-restart snapshot: %v", err)
		return
	}
	if !equalAccounts(post, accts) {
		rep.addViolation("recovery", "post-restart accounts %v != pre-crash %v", post, accts)
	}
	// ErrNoCheckpoint is the normal state of a branch log that has not
	// checkpointed yet; the records are still complete. When a checkpoint
	// exists (CheckpointEvery), the replay starts from it.
	cp, recs, err := g2.Log().Recover()
	if err != nil && !errors.Is(err, stable.ErrNoCheckpoint) {
		rep.addViolation("recovery", "log recover: %v", err)
		return
	}
	replay, err := bank.ReplayAccountsFrom(cp, recs)
	if err != nil {
		rep.addViolation("recovery", "checkpoint decode: %v", err)
		return
	}
	if !equalAccounts(post, replay) {
		rep.addViolation("recovery", "post-restart accounts %v != log replay %v", post, replay)
	}
}

func equalAccounts(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
