package dst

import (
	"flag"
	"testing"

	"repro/internal/durable"
)

// Reproduction flags: a failed run prints a -dst.seed=N command line;
// TestSeed re-runs exactly that run.
var (
	flagSeed     = flag.Int64("dst.seed", 0, "re-run one simulated run with this seed")
	flagWorkload = flag.String("dst.workload", "bank", "workload for -dst.seed runs")
	flagProfile  = flag.String("dst.profile", "mixed", "fault profile for -dst.seed runs")
	flagBug      = flag.String("dst.bug", "", "injected bug for -dst.seed runs")
	flagRepl     = flag.Bool("dst.repl", false, "run -dst.seed against the replica group (ReplicationFaults)")
)

// TestSeed replays a single seed, for reproducing a sweep failure:
//
//	go test ./internal/dst -run 'TestSeed$' -dst.seed=N
func TestSeed(t *testing.T) {
	if *flagSeed == 0 {
		t.Skip("no -dst.seed given")
	}
	profile, err := ProfileByName(*flagProfile)
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(Options{Seed: *flagSeed, Workload: *flagWorkload, Profile: profile,
		Bug: *flagBug, ReplicationFaults: *flagRepl})
	t.Logf("\n%s", rep)
	if rep.Failed() {
		t.Errorf("seed %d: %d invariant violations", rep.Seed, len(rep.Violations))
	}
}

// TestSeedSweep is the harness's steady-state gate (and the CI dst-smoke
// job): 25 seeds under the mixed profile — loss, duplication, reordering,
// one crash window, one partition window — alternating between the bank
// and airline workloads. Every invariant must hold on every seed; a
// failure prints the seed and its minimized schedule for replay.
func TestSeedSweep(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		workload := "bank"
		if seed%2 == 0 {
			workload = "airline"
		}
		opts := Options{Seed: seed, Workload: workload, Profile: MixedProfile()}
		rep := Run(opts)
		if rep.Failed() {
			rep = Shrink(opts, rep, 0)
			t.Errorf("sweep failure:\n%s", rep)
		}
	}
}

// TestScheduleDeterministic: the fault schedule is a pure function of
// (seed, profile, workload) — same seed, same events; different seed,
// different events.
func TestScheduleDeterministic(t *testing.T) {
	opts := Options{Seed: 42, Profile: CrashyProfile()}
	a, b := Schedule(opts), Schedule(opts)
	if !sameSchedule(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	if len(a) != 2*CrashyProfile().Crashes+2*CrashyProfile().Partitions {
		t.Fatalf("schedule has %d events, want %d", len(a), 2*CrashyProfile().Crashes+2*CrashyProfile().Partitions)
	}
	other := Schedule(Options{Seed: 43, Profile: CrashyProfile()})
	if sameSchedule(a, other) {
		t.Fatalf("seeds 42 and 43 produced the identical schedule %v", a)
	}
}

// TestSeedReproducible: re-running a seed replays the identical fault
// schedule and reaches the same verdict. (Operation counts may differ by
// goroutine scheduling; the schedule and the invariant verdict are the
// reproducible trace.)
func TestSeedReproducible(t *testing.T) {
	opts := Options{Seed: 7, Workload: "bank", Profile: MixedProfile()}
	a, b := Run(opts), Run(opts)
	if !sameSchedule(a.Schedule, b.Schedule) {
		t.Fatalf("re-run changed the schedule:\n%s\n%s", a, b)
	}
	if a.Failed() != b.Failed() {
		t.Fatalf("re-run changed the verdict:\n%s\n%s", a, b)
	}
}

// TestInjectedBugCaught is the harness's teeth test (ISSUE acceptance
// criterion): disabling the at-most-once filter on the bank branch must
// be caught by the sweep, and the printed seed must reproduce the same
// failing trace on re-run.
func TestInjectedBugCaught(t *testing.T) {
	var failing *Report
	var failOpts Options
	for seed := int64(1); seed <= 10; seed++ {
		// Lossy: heavy duplication, no crash windows, so both the
		// conservation and the execution-count audits are armed.
		opts := Options{Seed: seed, Workload: "bank", Profile: LossyProfile(), Bug: BugDisableDedup}
		if rep := Run(opts); rep.Failed() {
			failing, failOpts = rep, opts
			break
		}
	}
	if failing == nil {
		t.Fatal("disabled dedup was not caught on any of 10 seeds; the checkers have no teeth")
	}
	t.Logf("caught at seed %d:\n%s", failing.Seed, failing)

	// The printed seed must reproduce: identical schedule, same failure.
	again := Run(failOpts)
	if !again.Failed() {
		t.Fatalf("seed %d failed once but passed on re-run", failOpts.Seed)
	}
	if !sameSchedule(failing.Schedule, again.Schedule) {
		t.Fatalf("re-run of seed %d changed the schedule:\n%s\n%s", failOpts.Seed, failing, again)
	}
	if failing.Violations[0].Invariant != again.Violations[0].Invariant {
		t.Fatalf("re-run of seed %d changed the violation: %s vs %s",
			failOpts.Seed, failing.Violations[0].Invariant, again.Violations[0].Invariant)
	}
}

// TestShrinkMinimizes: shrinking a failing crashy run must keep it failing
// and never grow the schedule.
func TestShrinkMinimizes(t *testing.T) {
	var failing *Report
	var failOpts Options
	for seed := int64(1); seed <= 6; seed++ {
		opts := Options{Seed: seed, Workload: "bank", Profile: CrashyProfile(), Bug: BugDisableDedup}
		if rep := Run(opts); rep.Failed() {
			failing, failOpts = rep, opts
			break
		}
	}
	if failing == nil {
		t.Skip("no failing crashy seed in range; bug-catch is covered by TestInjectedBugCaught")
	}
	shrunk := Shrink(failOpts, failing, 0)
	if !shrunk.Failed() {
		t.Fatal("Shrink returned a passing report for a failing run")
	}
	if len(shrunk.Schedule) > len(failing.Schedule) {
		t.Fatalf("Shrink grew the schedule: %d -> %d events",
			len(failing.Schedule), len(shrunk.Schedule))
	}
	if len(shrunk.Schedule) < len(failing.Schedule) && !shrunk.Shrunk {
		t.Fatal("minimized report not marked Shrunk")
	}
}

// TestStorageFaults drives the bank through seeded storage damage:
// failed syncs, short writes, and corrupted tails, each fail-stopping
// the node and forcing recovery through the damaged log. The sweep must
// actually inject faults (otherwise the test is vacuous) and every
// invariant — conservation, exactly-once for acknowledged work, recovery
// equals replay — must hold on every seed.
func TestStorageFaults(t *testing.T) {
	injected := false
	for seed := int64(1); seed <= 8; seed++ {
		opts := Options{
			Seed:     seed,
			Workload: "bank",
			// Quiet network: failures come from the disk, not the wire,
			// so a violation here indicts the recovery path specifically.
			Profile: QuietProfile(),
			StorageFaults: &durable.WrapperConfig{
				SyncFailRate:    0.05,
				ShortWriteRate:  0.03,
				CorruptTailRate: 0.03,
			},
		}
		rep := Run(opts)
		if rep.Failed() {
			t.Errorf("storage-fault failure:\n%s", rep)
		}
		if rep.Storage.SyncsFailed+rep.Storage.ShortWrites+rep.Storage.CorruptedTails > 0 {
			injected = true
		}
	}
	if !injected {
		t.Fatal("no storage fault fired across 8 seeds; the wrapper is not wired in")
	}
}

// TestStorageFaultsReproducible: the storage fate streams derive from the
// master seed, so a storage-fault run replays to the same verdict, the
// same schedule, and the same injected-fault counters.
func TestStorageFaultsReproducible(t *testing.T) {
	opts := Options{
		Seed:     11,
		Workload: "bank",
		Profile:  QuietProfile(),
		StorageFaults: &durable.WrapperConfig{
			SyncFailRate:    0.08,
			ShortWriteRate:  0.04,
			CorruptTailRate: 0.04,
		},
	}
	a, b := Run(opts), Run(opts)
	if !sameSchedule(a.Schedule, b.Schedule) {
		t.Fatalf("re-run changed the schedule:\n%s\n%s", a, b)
	}
	if a.Failed() != b.Failed() {
		t.Fatalf("re-run changed the verdict:\n%s\n%s", a, b)
	}
	if a.Storage != b.Storage {
		t.Fatalf("re-run changed the injected-fault counters:\n%+v\n%+v", a.Storage, b.Storage)
	}
}

// TestReplicaPrimaryKill is the failover acceptance gate: under the
// replica profile every schedule permanently kills the initial primary
// mid-transfer, and every invariant — conservation, exactly-once for the
// clients whose retries crossed the failover, replication convergence,
// recovery-equals-replay — must hold on the elected successor. Each seed
// must actually drive a takeover, or the run proved nothing. A failure
// prints the -dst.seed=N [-dst.repl] line that replays it.
func TestReplicaPrimaryKill(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		opts := Options{Seed: seed, Workload: "bank",
			ReplicationFaults: true, Profile: ReplicaProfile()}
		rep := Run(opts)
		if rep.Failed() {
			rep = Shrink(opts, rep, 0)
			t.Errorf("replica sweep failure:\n%s", rep)
			continue
		}
		if rep.Repl.Takeovers == 0 {
			t.Errorf("seed %d: primary kill drove no takeover:\n%s", seed, rep)
		}
		if rep.Leader == replMembers[0] {
			t.Errorf("seed %d: killed primary %s still leads:\n%s", seed, rep.Leader, rep)
		}
	}
}

// TestReplicaSplitBrain isolates the primary behind a partition long
// enough for the majority to elect past it, then heals. The invariants
// must hold, and across the sweep the deposed primary's stale-term
// traffic must actually have been fenced — otherwise the schedule never
// created the split brain it claims to test.
func TestReplicaSplitBrain(t *testing.T) {
	var fenced, tookOver bool
	for seed := int64(1); seed <= 8; seed++ {
		opts := Options{Seed: seed, Workload: "bank",
			ReplicationFaults: true, Profile: SplitBrainProfile()}
		rep := Run(opts)
		if rep.Failed() {
			rep = Shrink(opts, rep, 0)
			t.Errorf("split-brain sweep failure:\n%s", rep)
			continue
		}
		if rep.Repl.FencedStale > 0 {
			fenced = true
		}
		if rep.Repl.Takeovers > 0 {
			tookOver = true
		}
	}
	if !tookOver {
		t.Error("no isolation window drove an election past the primary across 8 seeds")
	}
	if !fenced {
		t.Error("no stale-term message was fenced across 8 seeds; the split brain has no teeth")
	}
}

// TestReplicaReproducible: a replica run replays to the same schedule and
// verdict — the printed -dst.seed line is a faithful reproduction.
func TestReplicaReproducible(t *testing.T) {
	opts := Options{Seed: 3, Workload: "bank",
		ReplicationFaults: true, Profile: ReplicaProfile()}
	a, b := Run(opts), Run(opts)
	if !sameSchedule(a.Schedule, b.Schedule) {
		t.Fatalf("re-run changed the schedule:\n%s\n%s", a, b)
	}
	if a.Failed() != b.Failed() {
		t.Fatalf("re-run changed the verdict:\n%s\n%s", a, b)
	}
}

// TestReplicaMixedFaults runs the replica group under the generic mixed
// profile — member crash/restart windows and random partitions on top of
// a lossy network — as the steady-state replica sweep.
func TestReplicaMixedFaults(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		opts := Options{Seed: seed, Workload: "bank",
			ReplicationFaults: true, Profile: MixedProfile()}
		rep := Run(opts)
		if rep.Failed() {
			rep = Shrink(opts, rep, 0)
			t.Errorf("replica mixed sweep failure:\n%s", rep)
		}
	}
}

// TestWorkloadValidation: unknown workloads and misdirected bugs are
// reported, not silently ignored.
func TestWorkloadValidation(t *testing.T) {
	if rep := Run(Options{Seed: 1, Workload: "nope"}); !rep.Failed() {
		t.Fatal("unknown workload not reported")
	}
	if rep := Run(Options{Seed: 1, Workload: "airline", Bug: BugDisableDedup}); !rep.Failed() {
		t.Fatal("bank-only bug on airline workload not reported")
	}
}
