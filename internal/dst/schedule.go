package dst

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// EventKind classifies one fault-schedule event.
type EventKind int

// Fault-schedule event kinds.
const (
	// EvCrash kills a node: every guardian's processes die, volatile state
	// is lost, the disk survives (guardian.Node.Crash).
	EvCrash EventKind = iota
	// EvRestart brings a crashed node back; guardians with Recover are
	// re-created from the catalog and replay their stable logs.
	EvRestart
	// EvPartition splits the network into the event's groups.
	EvPartition
	// EvHeal removes any active partition.
	EvHeal
	// EvKill kills a node permanently: like EvCrash, but the node is never
	// restarted — the run engine suppresses any later EvRestart of it. This
	// is the replica workload's fault: permanent loss of the primary, which
	// only failover (not recovery) can survive.
	EvKill
)

// String returns the kind's schedule-trace name.
func (k EventKind) String() string {
	switch k {
	case EvCrash:
		return "crash"
	case EvRestart:
		return "restart"
	case EvPartition:
		return "partition"
	case EvHeal:
		return "heal"
	case EvKill:
		return "kill"
	default:
		return "unknown"
	}
}

// Event is one entry of a fault schedule: an action applied to the world
// at a virtual-time offset from the run's start. A schedule is a pure
// function of (seed, profile, node set), which is what makes a red run
// reproducible: re-running the seed replays exactly these events at
// exactly these virtual times.
type Event struct {
	// At is the virtual-time offset from the run's start.
	At time.Duration
	// Kind is the action.
	Kind EventKind
	// Node is the target of a crash/restart.
	Node string
	// Groups are the partition groups of an EvPartition.
	Groups [][]string
	// Pair links the two halves of a fault window (crash/restart,
	// partition/heal) so the shrinker removes whole windows, never leaving
	// a node down or a partition unhealed by accident.
	Pair int
}

// String renders one schedule line.
func (e Event) String() string {
	switch e.Kind {
	case EvCrash, EvRestart, EvKill:
		return fmt.Sprintf("@%-8v %s %s", e.At, e.Kind, e.Node)
	case EvPartition:
		parts := make([]string, len(e.Groups))
		for i, g := range e.Groups {
			parts[i] = "{" + strings.Join(g, ",") + "}"
		}
		return fmt.Sprintf("@%-8v partition %s", e.At, strings.Join(parts, " | "))
	default:
		return fmt.Sprintf("@%-8v heal", e.At)
	}
}

// sameSchedule reports whether two schedules are event-for-event equal —
// the reproducibility assertion a re-run of a printed seed must satisfy.
func sameSchedule(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}

// genSchedule derives the fault schedule from its own random stream:
// Crashes crash→restart windows over the crashable nodes, Partitions
// partition→heal windows over all nodes, Kills permanent kills of the
// killable nodes, and Isolations partition→heal windows that cut exactly
// the first killable node (the replica workload's initial primary) off
// from everyone else — the split-brain shape. All are placed inside the
// profile's horizon and sorted by offset. Windows may overlap;
// application order at equal times follows schedule order, and
// overlapping partitions resolve to last-writer-wins (Heal removes every
// active partition), matching netsim's semantics. New fault classes draw
// after the old ones, so profiles that use none of them generate the
// same schedules they always did.
func genSchedule(rng *rand.Rand, p Profile, crashable, all, killable []string) []Event {
	var evs []Event
	pair := 0
	h := p.Horizon
	for i := 0; i < p.Crashes && len(crashable) > 0; i++ {
		node := crashable[rng.Intn(len(crashable))]
		at := time.Duration(float64(h) * (0.10 + 0.55*rng.Float64()))
		down := time.Duration(float64(h) * (0.05 + 0.10*rng.Float64()))
		evs = append(evs,
			Event{At: at, Kind: EvCrash, Node: node, Pair: pair},
			Event{At: at + down, Kind: EvRestart, Node: node, Pair: pair})
		pair++
	}
	for i := 0; i < p.Partitions && len(all) > 1; i++ {
		perm := rng.Perm(len(all))
		cut := 1 + rng.Intn(len(all)-1)
		groups := [][]string{{}, {}}
		for j, idx := range perm {
			side := 0
			if j >= cut {
				side = 1
			}
			groups[side] = append(groups[side], all[idx])
		}
		for _, g := range groups {
			sort.Strings(g)
		}
		at := time.Duration(float64(h) * (0.10 + 0.55*rng.Float64()))
		dur := time.Duration(float64(h) * (0.05 + 0.15*rng.Float64()))
		evs = append(evs,
			Event{At: at, Kind: EvPartition, Groups: groups, Pair: pair},
			Event{At: at + dur, Kind: EvHeal, Pair: pair})
		pair++
	}
	// Kills land mid-horizon — after clients have in-flight work (the
	// "mid-transfer" window) and early enough that failover and the
	// retried calls complete inside the run.
	for i := 0; i < p.Kills && len(killable) > 0; i++ {
		node := killable[rng.Intn(len(killable))]
		at := time.Duration(float64(h) * (0.25 + 0.35*rng.Float64()))
		evs = append(evs, Event{At: at, Kind: EvKill, Node: node, Pair: pair})
		pair++
	}
	for i := 0; i < p.Isolations && len(killable) > 0 && len(all) > 1; i++ {
		iso := killable[0]
		groups := [][]string{{iso}, {}}
		for _, n := range all {
			if n != iso {
				groups[1] = append(groups[1], n)
			}
		}
		sort.Strings(groups[1])
		at := time.Duration(float64(h) * (0.20 + 0.25*rng.Float64()))
		dur := time.Duration(float64(h) * (0.15 + 0.15*rng.Float64()))
		evs = append(evs,
			Event{At: at, Kind: EvPartition, Groups: groups, Pair: pair},
			Event{At: at + dur, Kind: EvHeal, Pair: pair})
		pair++
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}
