package dst

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/netsim"
)

// EventKind classifies one fault-schedule event.
type EventKind int

// Fault-schedule event kinds.
const (
	// EvCrash kills a node: every guardian's processes die, volatile state
	// is lost, the disk survives (guardian.Node.Crash).
	EvCrash EventKind = iota
	// EvRestart brings a crashed node back; guardians with Recover are
	// re-created from the catalog and replay their stable logs.
	EvRestart
	// EvPartition splits the network into the event's groups.
	EvPartition
	// EvHeal removes any active partition.
	EvHeal
	// EvKill kills a node permanently: like EvCrash, but the node is never
	// restarted — the run engine suppresses any later EvRestart of it. This
	// is the replica workload's fault: permanent loss of the primary, which
	// only failover (not recovery) can survive.
	EvKill
	// EvCutLink severs the single directed link Node→Peer (the asymmetric
	// shape: Peer still reaches Node, Node never reaches Peer). Restored
	// by the paired EvRestoreLink; EvHeal does not touch directed cuts.
	EvCutLink
	// EvRestoreLink restores the directed link cut by its paired EvCutLink.
	EvRestoreLink
	// EvStorageBurst multiplies every node's injected storage-fault rates
	// by Factor until the paired EvStorageCalm — a cluster-wide window of
	// dying disks. A no-op unless Options.StorageFaults is set.
	EvStorageBurst
	// EvStorageCalm restores storage-fault rates to their standing values.
	EvStorageCalm
)

// String returns the kind's schedule-trace name.
func (k EventKind) String() string {
	switch k {
	case EvCrash:
		return "crash"
	case EvRestart:
		return "restart"
	case EvPartition:
		return "partition"
	case EvHeal:
		return "heal"
	case EvKill:
		return "kill"
	case EvCutLink:
		return "cut-link"
	case EvRestoreLink:
		return "restore-link"
	case EvStorageBurst:
		return "storage-burst"
	case EvStorageCalm:
		return "storage-calm"
	default:
		return "unknown"
	}
}

// Event is one entry of a fault schedule: an action applied to the world
// at a virtual-time offset from the run's start. A schedule is a pure
// function of (seed, profile, node set), which is what makes a red run
// reproducible: re-running the seed replays exactly these events at
// exactly these virtual times.
type Event struct {
	// At is the virtual-time offset from the run's start.
	At time.Duration
	// Kind is the action.
	Kind EventKind
	// Node is the target of a crash/restart, or the source of a directed
	// link cut.
	Node string
	// Peer is the destination of a directed link cut (EvCutLink,
	// EvRestoreLink).
	Peer string
	// Groups are the partition groups of an EvPartition.
	Groups [][]string
	// Factor is the fault-rate multiplier of an EvStorageBurst.
	Factor float64
	// Pair links the events of one fault window (crash/restart,
	// partition/heal, cut/restore, burst/calm — a rolling wave's whole
	// crash sequence shares one id) so the shrinker removes whole
	// windows, never leaving a node down or a partition unhealed by
	// accident.
	Pair int
}

// String renders one schedule line.
func (e Event) String() string {
	switch e.Kind {
	case EvCrash, EvRestart, EvKill:
		return fmt.Sprintf("@%-8v %s %s", e.At, e.Kind, e.Node)
	case EvPartition:
		parts := make([]string, len(e.Groups))
		for i, g := range e.Groups {
			parts[i] = "{" + strings.Join(g, ",") + "}"
		}
		return fmt.Sprintf("@%-8v partition %s", e.At, strings.Join(parts, " | "))
	case EvCutLink, EvRestoreLink:
		return fmt.Sprintf("@%-8v %s %s->%s", e.At, e.Kind, e.Node, e.Peer)
	case EvStorageBurst:
		return fmt.Sprintf("@%-8v storage-burst x%.1f", e.At, e.Factor)
	case EvStorageCalm:
		return fmt.Sprintf("@%-8v storage-calm", e.At)
	default:
		return fmt.Sprintf("@%-8v heal", e.At)
	}
}

// sameSchedule reports whether two schedules are event-for-event equal —
// the reproducibility assertion a re-run of a printed seed must satisfy.
func sameSchedule(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}

// genSchedule derives the fault schedule from its own random stream:
// Crashes crash→restart windows over the crashable nodes, Partitions
// partition→heal windows over all nodes, Kills permanent kills of the
// killable nodes, and Isolations partition→heal windows that cut exactly
// the first killable node (the replica workload's initial primary) off
// from everyone else — the split-brain shape. All are placed inside the
// profile's horizon and sorted by offset. Windows may overlap;
// application order at equal times follows schedule order, and
// overlapping partitions resolve to last-writer-wins (Heal removes every
// active partition), matching netsim's semantics. New fault classes draw
// after the old ones, so profiles that use none of them generate the
// same schedules they always did.
func genSchedule(rng *rand.Rand, p Profile, crashable, all, killable []string) []Event {
	var evs []Event
	pair := 0
	h := p.Horizon
	for i := 0; i < p.Crashes && len(crashable) > 0; i++ {
		node := crashable[rng.Intn(len(crashable))]
		at := time.Duration(float64(h) * (0.10 + 0.55*rng.Float64()))
		down := time.Duration(float64(h) * (0.05 + 0.10*rng.Float64()))
		evs = append(evs,
			Event{At: at, Kind: EvCrash, Node: node, Pair: pair},
			Event{At: at + down, Kind: EvRestart, Node: node, Pair: pair})
		pair++
	}
	for i := 0; i < p.Partitions && len(all) > 1; i++ {
		perm := rng.Perm(len(all))
		cut := 1 + rng.Intn(len(all)-1)
		groups := [][]string{{}, {}}
		for j, idx := range perm {
			side := 0
			if j >= cut {
				side = 1
			}
			groups[side] = append(groups[side], all[idx])
		}
		for _, g := range groups {
			sort.Strings(g)
		}
		at := time.Duration(float64(h) * (0.10 + 0.55*rng.Float64()))
		dur := time.Duration(float64(h) * (0.05 + 0.15*rng.Float64()))
		evs = append(evs,
			Event{At: at, Kind: EvPartition, Groups: groups, Pair: pair},
			Event{At: at + dur, Kind: EvHeal, Pair: pair})
		pair++
	}
	// Kills land mid-horizon — after clients have in-flight work (the
	// "mid-transfer" window) and early enough that failover and the
	// retried calls complete inside the run.
	for i := 0; i < p.Kills && len(killable) > 0; i++ {
		node := killable[rng.Intn(len(killable))]
		at := time.Duration(float64(h) * (0.25 + 0.35*rng.Float64()))
		evs = append(evs, Event{At: at, Kind: EvKill, Node: node, Pair: pair})
		pair++
	}
	for i := 0; i < p.Isolations && len(killable) > 0 && len(all) > 1; i++ {
		iso := killable[0]
		groups := [][]string{{iso}, {}}
		for _, n := range all {
			if n != iso {
				groups[1] = append(groups[1], n)
			}
		}
		sort.Strings(groups[1])
		at := time.Duration(float64(h) * (0.20 + 0.25*rng.Float64()))
		dur := time.Duration(float64(h) * (0.15 + 0.15*rng.Float64()))
		evs = append(evs,
			Event{At: at, Kind: EvPartition, Groups: groups, Pair: pair},
			Event{At: at + dur, Kind: EvHeal, Pair: pair})
		pair++
	}

	// The composite-fault vocabulary. Every class draws strictly after
	// the ones above, preserving the schedules of every seed recorded
	// before it existed (internal/dst/testdata/seeds.txt).

	// Islands: a random minority island (up to a third of the nodes,
	// its internal connectivity intact) loses its uplink — the
	// rack-partition shape.
	for i := 0; i < p.Islands && len(all) > 2; i++ {
		perm := rng.Perm(len(all))
		size := 1 + rng.Intn(max(1, len(all)/3))
		island := make([]string, size)
		for j := 0; j < size; j++ {
			island[j] = all[perm[j]]
		}
		sort.Strings(island)
		mainland := make([]string, 0, len(all)-size)
		for j := size; j < len(perm); j++ {
			mainland = append(mainland, all[perm[j]])
		}
		sort.Strings(mainland)
		at := time.Duration(float64(h) * (0.10 + 0.50*rng.Float64()))
		dur := time.Duration(float64(h) * (0.10 + 0.15*rng.Float64()))
		evs = append(evs,
			Event{At: at, Kind: EvPartition, Groups: [][]string{island, mainland}, Pair: pair},
			Event{At: at + dur, Kind: EvHeal, Pair: pair})
		pair++
	}

	// Asymmetric link cuts: one direction of one link dies while the
	// reverse keeps flowing — the shape a half-broken firewall rule
	// produces, which symmetric partitions can never generate.
	for i := 0; i < p.Asymmetries && len(all) > 1; i++ {
		from := all[rng.Intn(len(all))]
		to := from
		for to == from {
			to = all[rng.Intn(len(all))]
		}
		at := time.Duration(float64(h) * (0.10 + 0.50*rng.Float64()))
		dur := time.Duration(float64(h) * (0.10 + 0.20*rng.Float64()))
		evs = append(evs,
			Event{At: at, Kind: EvCutLink, Node: from, Peer: to, Pair: pair},
			Event{At: at + dur, Kind: EvRestoreLink, Node: from, Peer: to, Pair: pair})
		pair++
	}

	// Ring cuts: the nodes arranged as a cycle lose two edges, splitting
	// into two contiguous arcs — every node keeps live neighbors, yet the
	// system is partitioned.
	for i := 0; i < p.RingCuts && len(all) > 2; i++ {
		ci := rng.Intn(len(all))
		cj := ci
		for cj == ci {
			cj = rng.Intn(len(all))
		}
		arcs := ringCutStrings(all, ci, cj)
		for _, a := range arcs {
			sort.Strings(a)
		}
		at := time.Duration(float64(h) * (0.10 + 0.50*rng.Float64()))
		dur := time.Duration(float64(h) * (0.10 + 0.15*rng.Float64()))
		evs = append(evs,
			Event{At: at, Kind: EvPartition, Groups: arcs, Pair: pair},
			Event{At: at + dur, Kind: EvHeal, Pair: pair})
		pair++
	}

	// Rolling crash waves: every crashable node crashes once, in a
	// random order, staggered so a few are down at any moment — the
	// rolling-restart deployment shape. The whole wave is one shrink
	// window.
	for i := 0; i < p.Waves && len(crashable) > 0; i++ {
		start := time.Duration(float64(h) * (0.10 + 0.25*rng.Float64()))
		span := time.Duration(float64(h) * (0.25 + 0.20*rng.Float64()))
		step := span / time.Duration(len(crashable))
		down := 2 * step
		if minDown := time.Duration(float64(h) * 0.02); down < minDown {
			down = minDown
		}
		for _, idx := range rng.Perm(len(crashable)) {
			at := start + time.Duration(idx)*step
			evs = append(evs,
				Event{At: at, Kind: EvCrash, Node: crashable[idx], Pair: pair},
				Event{At: at + down, Kind: EvRestart, Node: crashable[idx], Pair: pair})
		}
		pair++
	}

	// Storage bursts: a window in which every node's injected
	// storage-fault rates are multiplied — disks cluster-wide going bad
	// at once. No-ops unless the run has Options.StorageFaults.
	for i := 0; i < p.StorageBursts; i++ {
		at := time.Duration(float64(h) * (0.10 + 0.50*rng.Float64()))
		dur := time.Duration(float64(h) * (0.10 + 0.10*rng.Float64()))
		factor := 4 + 6*rng.Float64()
		evs = append(evs,
			Event{At: at, Kind: EvStorageBurst, Factor: factor, Pair: pair},
			Event{At: at + dur, Kind: EvStorageCalm, Pair: pair})
		pair++
	}

	// Fork windows: the first kill-eligible node (the replica workload's
	// initial primary) is partitioned TOGETHER WITH the never-crashing
	// nodes (the clients and their name service) away from the rest of
	// its group. Client traffic keeps landing on the old primary, whose
	// appends become locally durable but can never reach a quorum, while
	// the majority elects past it — the recipe for a true fork, which the
	// quarantine/heal machinery must then detect and repair.
	for i := 0; i < p.Forks && len(killable) > 0 && len(all) > 2; i++ {
		iso := killable[0]
		crash := make(map[string]bool, len(crashable))
		for _, n := range crashable {
			crash[n] = true
		}
		primarySide := []string{iso}
		rest := []string{}
		for _, n := range all {
			if n == iso {
				continue
			}
			if crash[n] {
				rest = append(rest, n)
			} else {
				primarySide = append(primarySide, n)
			}
		}
		sort.Strings(primarySide)
		sort.Strings(rest)
		at := time.Duration(float64(h) * (0.15 + 0.15*rng.Float64()))
		dur := time.Duration(float64(h) * (0.20 + 0.10*rng.Float64()))
		evs = append(evs,
			Event{At: at, Kind: EvPartition, Groups: [][]string{primarySide, rest}, Pair: pair},
			Event{At: at + dur, Kind: EvHeal, Pair: pair})
		pair++
	}

	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// ringCutStrings applies netsim.RingCutGroups to node names: the cycle
// in slice order loses its edges after positions i and j, yielding two
// contiguous arcs.
func ringCutStrings(ring []string, i, j int) [][]string {
	addrs := make([]netsim.Addr, len(ring))
	for k, n := range ring {
		addrs[k] = netsim.Addr(n)
	}
	arcs := netsim.RingCutGroups(addrs, i, j)
	out := make([][]string, len(arcs))
	for k, arc := range arcs {
		out[k] = make([]string, len(arc))
		for l, a := range arc {
			out[k][l] = string(a)
		}
	}
	return out
}
