package dst

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// EventKind classifies one fault-schedule event.
type EventKind int

// Fault-schedule event kinds.
const (
	// EvCrash kills a node: every guardian's processes die, volatile state
	// is lost, the disk survives (guardian.Node.Crash).
	EvCrash EventKind = iota
	// EvRestart brings a crashed node back; guardians with Recover are
	// re-created from the catalog and replay their stable logs.
	EvRestart
	// EvPartition splits the network into the event's groups.
	EvPartition
	// EvHeal removes any active partition.
	EvHeal
)

// String returns the kind's schedule-trace name.
func (k EventKind) String() string {
	switch k {
	case EvCrash:
		return "crash"
	case EvRestart:
		return "restart"
	case EvPartition:
		return "partition"
	case EvHeal:
		return "heal"
	default:
		return "unknown"
	}
}

// Event is one entry of a fault schedule: an action applied to the world
// at a virtual-time offset from the run's start. A schedule is a pure
// function of (seed, profile, node set), which is what makes a red run
// reproducible: re-running the seed replays exactly these events at
// exactly these virtual times.
type Event struct {
	// At is the virtual-time offset from the run's start.
	At time.Duration
	// Kind is the action.
	Kind EventKind
	// Node is the target of a crash/restart.
	Node string
	// Groups are the partition groups of an EvPartition.
	Groups [][]string
	// Pair links the two halves of a fault window (crash/restart,
	// partition/heal) so the shrinker removes whole windows, never leaving
	// a node down or a partition unhealed by accident.
	Pair int
}

// String renders one schedule line.
func (e Event) String() string {
	switch e.Kind {
	case EvCrash, EvRestart:
		return fmt.Sprintf("@%-8v %s %s", e.At, e.Kind, e.Node)
	case EvPartition:
		parts := make([]string, len(e.Groups))
		for i, g := range e.Groups {
			parts[i] = "{" + strings.Join(g, ",") + "}"
		}
		return fmt.Sprintf("@%-8v partition %s", e.At, strings.Join(parts, " | "))
	default:
		return fmt.Sprintf("@%-8v heal", e.At)
	}
}

// sameSchedule reports whether two schedules are event-for-event equal —
// the reproducibility assertion a re-run of a printed seed must satisfy.
func sameSchedule(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}

// genSchedule derives the fault schedule from its own random stream:
// Crashes crash→restart windows over the crashable nodes and Partitions
// partition→heal windows over all nodes, placed inside the profile's
// horizon and sorted by offset. Windows may overlap; application order at
// equal times follows schedule order, and overlapping partitions resolve
// to last-writer-wins (Heal removes every active partition), matching
// netsim's semantics.
func genSchedule(rng *rand.Rand, p Profile, crashable, all []string) []Event {
	var evs []Event
	pair := 0
	h := p.Horizon
	for i := 0; i < p.Crashes && len(crashable) > 0; i++ {
		node := crashable[rng.Intn(len(crashable))]
		at := time.Duration(float64(h) * (0.10 + 0.55*rng.Float64()))
		down := time.Duration(float64(h) * (0.05 + 0.10*rng.Float64()))
		evs = append(evs,
			Event{At: at, Kind: EvCrash, Node: node, Pair: pair},
			Event{At: at + down, Kind: EvRestart, Node: node, Pair: pair})
		pair++
	}
	for i := 0; i < p.Partitions && len(all) > 1; i++ {
		perm := rng.Perm(len(all))
		cut := 1 + rng.Intn(len(all)-1)
		groups := [][]string{{}, {}}
		for j, idx := range perm {
			side := 0
			if j >= cut {
				side = 1
			}
			groups[side] = append(groups[side], all[idx])
		}
		for _, g := range groups {
			sort.Strings(g)
		}
		at := time.Duration(float64(h) * (0.10 + 0.55*rng.Float64()))
		dur := time.Duration(float64(h) * (0.05 + 0.15*rng.Float64()))
		evs = append(evs,
			Event{At: at, Kind: EvPartition, Groups: groups, Pair: pair},
			Event{At: at + dur, Kind: EvHeal, Pair: pair})
		pair++
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}
