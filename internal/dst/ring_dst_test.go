package dst

import (
	"strings"
	"testing"

	"repro/internal/durable"
)

// TestRingWorkloadSmoke: a three-shard ring joined by one member and
// drained of another, mid-run, under the mixed profile — conservation,
// exactly-once, single-owner-per-epoch, recovery-equals-replay, and the
// 2PC drain must all hold.
func TestRingWorkloadSmoke(t *testing.T) {
	rep := Run(Options{
		Seed:    7,
		Ring:    &RingTopology{Shards: 3, Joins: 1, Leaves: 1},
		Clients: 4,
	})
	if rep.Failed() {
		t.Fatalf("ring run failed:\n%s", rep)
	}
	if rep.Nodes != 6 {
		t.Fatalf("Nodes = %d, want 6 (3 shards + joiner + coordinator + clients)", rep.Nodes)
	}
	if rep.OpsAcked == 0 {
		t.Fatalf("no operations acked:\n%s", rep)
	}
	if rep.RingEpoch < 1 {
		t.Fatalf("ring never bootstrapped:\n%s", rep)
	}
}

// TestRingValidation rejects the configurations the workload cannot run.
func TestRingValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"too many leaves", Options{Ring: &RingTopology{Shards: 2, Leaves: 2}}},
		{"one client", Options{Ring: &RingTopology{Shards: 2}, Clients: 1}},
		{"with bug", Options{Ring: &RingTopology{Shards: 2}, Bug: BugDisableDedup}},
		{"with topology", Options{Ring: &RingTopology{Shards: 2}, Topology: &Topology{Shards: 2}}},
		{"with replication faults", Options{Ring: &RingTopology{Shards: 2}, ReplicationFaults: true}},
		{"airline", Options{Workload: "airline", Ring: &RingTopology{Shards: 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := newWorkload(tc.opts.withDefaults()); err == nil {
				t.Fatalf("newWorkload accepted invalid ring options")
			}
		})
	}
}

// TestRingScheduleDeterministic: the ring world's fault schedule is a pure
// function of (seed, profile, topology), so a failed sweep seed reproduces.
func TestRingScheduleDeterministic(t *testing.T) {
	opts := Options{
		Seed:    3,
		Profile: CombinedProfile(),
		Ring:    &RingTopology{Shards: 4, Joins: 2, Leaves: 1},
	}
	a := Schedule(opts)
	b := Schedule(opts)
	if len(a) == 0 {
		t.Fatalf("combined profile generated an empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("schedules diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestRingRepro: a ring run's one-line repro carries the ring shape.
func TestRingRepro(t *testing.T) {
	rep := Run(Options{
		Seed:         21,
		Profile:      QuietProfile(),
		Ring:         &RingTopology{Shards: 3, Joins: 1, Leaves: 1},
		Clients:      3,
		OpsPerClient: 4,
	})
	if rep.Failed() {
		t.Fatalf("quiet ring run failed:\n%s", rep)
	}
	if got := rep.Repro(); !strings.Contains(got, "-ring 3,1,1") {
		t.Fatalf("repro line %q does not carry the ring shape", got)
	}
}

// TestRingRebalanceSweep is the acceptance gate for the scale-out
// tentpole: a ring of four shards, two live joins and one live drain
// mid-run, under the combined profile (loss/dup/reorder, crash and
// partition windows, an island, an asymmetric cut, a ring cut, a rolling
// crash wave over every shard and the coordinator, a storage burst) with
// storage faults injected under every node — swept over >= 20 seeds.
// Every seed must hold conservation, exactly-once, single-owner-per-epoch,
// recovery-equals-replay, and the coordinator drain; a failed seed prints
// its one-line repro via the report.
//
// A couple of minutes on one core; push CI skips it (-short), the nightly
// job runs it.
func TestRingRebalanceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("ring rebalance sweep skipped in -short mode")
	}
	opts := Options{
		Profile:       CombinedProfile(),
		Ring:          &RingTopology{Shards: 4, Joins: 2, Leaves: 1},
		Clients:       4,
		OpsPerClient:  6,
		StorageFaults: &durable.WrapperConfig{SyncFailRate: 0.001},
	}
	res := Sweep(SweepOptions{Opts: opts, StartSeed: 1, Count: 20})
	if res.Failed() {
		t.Fatalf("ring rebalance sweep failed:\n%s", res)
	}
	rebalanced := 0
	for _, r := range res.Reports {
		if r.OpsAcked == 0 {
			t.Fatalf("seed %d acked no operations:\n%s", r.Seed, r)
		}
		if r.RingEpoch < 1 {
			t.Fatalf("seed %d never bootstrapped its ring:\n%s", r.Seed, r)
		}
		rebalanced += r.Rebalances
	}
	// Individual seeds may lose a membership step to an unlucky fault
	// window (the driver dies and check() only re-drives the staged
	// epoch), but across the sweep live rebalances must actually happen.
	if rebalanced < len(res.Reports) {
		t.Fatalf("only %d rebalances across %d seeds — the sweep is not exercising live handoff",
			rebalanced, len(res.Reports))
	}
}
