package dst

import (
	"testing"
	"time"
)

// Synthetic schedules for driving shrinkWith without real simulated
// runs: each window is a crash+restart pair sharing a Pair id.
func synthWindow(pair int, at time.Duration, node string) []Event {
	return []Event{
		{At: at, Kind: EvCrash, Node: node, Pair: pair},
		{At: at + 100*time.Millisecond, Kind: EvRestart, Node: node, Pair: pair},
	}
}

func synthSchedule(pairs ...int) []Event {
	var evs []Event
	for i, p := range pairs {
		evs = append(evs, synthWindow(p, time.Duration(i)*time.Second, "server")...)
	}
	return evs
}

func hasPair(evs []Event, pair int) bool {
	for _, ev := range evs {
		if ev.Pair == pair {
			return true
		}
	}
	return false
}

func failingReport(evs []Event) *Report {
	r := &Report{Schedule: evs}
	r.addViolation("synthetic", "injected")
	return r
}

func TestShrinkWith(t *testing.T) {
	cases := []struct {
		name string
		// fails decides whether a candidate schedule still violates.
		fails  func([]Event) bool
		pairs  []int
		budget int
		// wantPairs is the expected surviving pair set, in order.
		wantPairs  []int
		wantShrunk bool
		wantRuns   int
	}{
		{
			// The adversarial case: the violation needs windows 0 AND 2
			// together; window 1 is noise. Greedy removal must keep both
			// cooperating windows and drop only the noise.
			name:       "two cooperating windows",
			fails:      func(evs []Event) bool { return hasPair(evs, 0) && hasPair(evs, 2) },
			pairs:      []int{0, 1, 2},
			wantPairs:  []int{0, 2},
			wantShrunk: true,
			wantRuns:   3,
		},
		{
			// Already minimal: every window is necessary, so every
			// removal passes and the original report survives unshrunk.
			name: "already minimal",
			fails: func(evs []Event) bool {
				return hasPair(evs, 0) && hasPair(evs, 1) && hasPair(evs, 2)
			},
			pairs:      []int{0, 1, 2},
			wantPairs:  []int{0, 1, 2},
			wantShrunk: false,
			wantRuns:   3,
		},
		{
			// The violation needs no fault at all (a pure network bug):
			// everything is stripped.
			name:       "schedule-independent violation",
			fails:      func([]Event) bool { return true },
			pairs:      []int{0, 1, 2},
			wantPairs:  []int{},
			wantShrunk: true,
			wantRuns:   3,
		},
		{
			// Budget cap: two re-runs only reach the first two windows.
			name:       "budget caps re-runs",
			fails:      func([]Event) bool { return true },
			pairs:      []int{0, 1, 2, 3},
			budget:     2,
			wantPairs:  []int{2, 3},
			wantShrunk: true,
			wantRuns:   2,
		},
		{
			// Only the last window matters.
			name:       "single necessary window",
			fails:      func(evs []Event) bool { return hasPair(evs, 2) },
			pairs:      []int{0, 1, 2},
			wantPairs:  []int{2},
			wantShrunk: true,
			wantRuns:   3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runs := 0
			run := func(_ Options, cand []Event) *Report {
				runs++
				r := &Report{Schedule: cand}
				if tc.fails(cand) {
					r.addViolation("synthetic", "injected")
				}
				return r
			}
			orig := failingReport(synthSchedule(tc.pairs...))
			got := shrinkWith(run, Options{}, orig, tc.budget)

			if runs != tc.wantRuns {
				t.Errorf("re-runs = %d, want %d", runs, tc.wantRuns)
			}
			if got.Shrunk != tc.wantShrunk {
				t.Errorf("Shrunk = %v, want %v", got.Shrunk, tc.wantShrunk)
			}
			if !got.Failed() {
				t.Errorf("shrunk report no longer fails")
			}
			gotPairs := pairOrder(got.Schedule)
			if len(gotPairs) != len(tc.wantPairs) {
				t.Fatalf("surviving pairs %v, want %v", gotPairs, tc.wantPairs)
			}
			for i := range gotPairs {
				if gotPairs[i] != tc.wantPairs[i] {
					t.Fatalf("surviving pairs %v, want %v", gotPairs, tc.wantPairs)
				}
			}
			// Pair atomicity: every surviving window keeps both its
			// events — the shrinker never removes half a window.
			for _, p := range gotPairs {
				n := 0
				for _, ev := range got.Schedule {
					if ev.Pair == p {
						n++
					}
				}
				if n != 2 {
					t.Fatalf("pair %d has %d events, want 2 (atomic windows)", p, n)
				}
			}
		})
	}
}

// TestShrinkNoopOnPassOrEmpty: a passing report and an empty schedule
// are returned untouched without any re-run.
func TestShrinkNoopOnPassOrEmpty(t *testing.T) {
	runs := 0
	run := func(_ Options, cand []Event) *Report {
		runs++
		return failingReport(cand)
	}

	pass := &Report{Schedule: synthSchedule(0, 1)}
	if got := shrinkWith(run, Options{}, pass, 0); got != pass {
		t.Fatalf("passing report was not returned unchanged")
	}
	empty := failingReport(nil)
	if got := shrinkWith(run, Options{}, empty, 0); got != empty {
		t.Fatalf("empty-schedule report was not returned unchanged")
	}
	if runs != 0 {
		t.Fatalf("shrink re-ran %d times on no-op inputs", runs)
	}
}
