package dst

import (
	"testing"

	"repro/internal/durable"
)

// TestShardedPlainTopology runs a small sharded world — four plain
// branches plus the clients node — under the mixed profile and expects
// every per-shard invariant to hold.
func TestShardedPlainTopology(t *testing.T) {
	rep := Run(Options{
		Seed:     7,
		Workload: "bank",
		Topology: &Topology{Shards: 4},
		Clients:  4,
	})
	if rep.Failed() {
		t.Fatalf("sharded plain run failed:\n%s", rep)
	}
	if rep.Nodes != 5 {
		t.Fatalf("Nodes = %d, want 5 (4 shards + clients)", rep.Nodes)
	}
	if rep.Replicated {
		t.Fatalf("plain topology reported Replicated")
	}
	if rep.OpsAcked == 0 {
		t.Fatalf("no operations acked:\n%s", rep)
	}
}

// TestShardedReplicatedTopology runs three shards each behind its own
// three-member quorum group (10 nodes) with checkpointing branches and
// storage faults — the combined-fault stack at small scale.
func TestShardedReplicatedTopology(t *testing.T) {
	rep := Run(Options{
		Seed:            11,
		Workload:        "bank",
		Topology:        &Topology{Shards: 3, ReplFactor: 3},
		Clients:         3,
		CheckpointEvery: 4,
		StorageFaults: &durable.WrapperConfig{
			SyncFailRate: 0.002,
		},
	})
	if rep.Failed() {
		t.Fatalf("sharded replicated run failed:\n%s", rep)
	}
	if rep.Nodes != 10 {
		t.Fatalf("Nodes = %d, want 10 (3 shards x 3 members + clients)", rep.Nodes)
	}
	if !rep.Replicated {
		t.Fatalf("replicated topology not reported Replicated")
	}
	if rep.Repl.ShippedRecords == 0 {
		t.Fatalf("no records shipped between members:\n%s", rep)
	}
}

// TestTopologyValidation rejects the configurations the generator cannot
// build.
func TestTopologyValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"zero shards", Options{Topology: &Topology{Shards: 0}}},
		{"even repl factor", Options{Topology: &Topology{Shards: 2, ReplFactor: 2}}},
		{"with bug", Options{Topology: &Topology{Shards: 2}, Bug: BugDisableDedup}},
		{"with replication faults", Options{Topology: &Topology{Shards: 2}, ReplicationFaults: true}},
		{"airline", Options{Workload: "airline", Topology: &Topology{Shards: 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := newWorkload(tc.opts.withDefaults()); err == nil {
				t.Fatalf("newWorkload accepted invalid topology options")
			}
		})
	}
}

// TestTopologySchedulesDeterministic: the sharded world's schedule is a
// pure function of (seed, profile, topology), like every other workload's.
func TestTopologySchedulesDeterministic(t *testing.T) {
	opts := Options{
		Seed:     3,
		Profile:  CombinedProfile(),
		Topology: &Topology{Shards: 5, ReplFactor: 3},
	}
	a := Schedule(opts)
	b := Schedule(opts)
	if len(a) == 0 {
		t.Fatalf("combined profile generated an empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("schedules diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
	// A combined-profile schedule over a replicated topology must place
	// every fault class it promises.
	kinds := make(map[EventKind]int)
	for _, ev := range a {
		kinds[ev.Kind]++
	}
	for _, k := range []EventKind{EvCrash, EvPartition, EvCutLink, EvStorageBurst} {
		if kinds[k] == 0 {
			t.Fatalf("combined schedule has no %v events:\n%v", k, a)
		}
	}
	// The rolling wave crashes every crashable node once: 16 members from
	// the wave + 1 standalone crash window.
	if kinds[EvCrash] < 16 {
		t.Fatalf("rolling wave missing: only %d crashes", kinds[EvCrash])
	}
}

// elapsedBudget guards against the virtual clock stalling: the combined
// profile's 4 s horizon must complete, not hang.
func TestCombinedProfileSmallTopology(t *testing.T) {
	rep := Run(Options{
		Seed:            5,
		Profile:         CombinedProfile(),
		Topology:        &Topology{Shards: 3, ReplFactor: 3},
		Clients:         3,
		CheckpointEvery: 4,
	})
	if rep.Failed() {
		t.Fatalf("combined profile run failed:\n%s", rep)
	}
	// The run drains after the last scheduled fault, not at the full
	// horizon; the long-horizon placement must still have been driven.
	sched := rep.Schedule
	if last := sched[len(sched)-1].At; rep.VirtualElapsed < last {
		t.Fatalf("virtual clock stopped at %v, before the last scheduled fault at %v",
			rep.VirtualElapsed, last)
	}
}
