// Package office implements the third application domain the paper names
// ("office automation", §1.2): each division of an organization runs a
// division guardian that guards its documents. Documents are abstract
// values (title + revision + body) transmitted between divisions via their
// external rep; access to a stored document is granted through a sealed
// token (§2.1) — an external name only the issuing guardian can interpret,
// with no guarantee that the named object continues to exist.
package office

import (
	"encoding/binary"
	"fmt"

	"repro/internal/guardian"
	"repro/internal/xrep"
)

// DivisionDefName is the library name of the division guardian definition.
const DivisionDefName = "office_division"

// Outcome identifiers.
const (
	OutcomeBadToken = "bad_token"
	OutcomeNoDoc    = "no_document"
)

// Document is the transmittable document abstraction: the external rep is
// (title, revision, body), fixed system-wide; divisions may keep richer
// internal representations.
type Document struct {
	Title    string
	Revision int64
	Body     string
}

// DocTypeName is the system-wide name of the document type.
const DocTypeName = "office_document"

// XTypeName implements xrep.Transmittable.
func (d Document) XTypeName() string { return DocTypeName }

// EncodeX implements xrep.Transmittable.
func (d Document) EncodeX() (xrep.Value, error) {
	return xrep.Seq{xrep.Str(d.Title), xrep.Int(d.Revision), xrep.Str(d.Body)}, nil
}

// DecodeDocument is the decode operation for the document type.
func DecodeDocument(v xrep.Value) (any, error) {
	rec, ok := v.(xrep.Rec)
	if !ok || rec.Name != DocTypeName || len(rec.Fields) != 3 {
		return nil, fmt.Errorf("office: cannot decode document from %v", v)
	}
	title, ok1 := rec.Fields[0].(xrep.Str)
	rev, ok2 := rec.Fields[1].(xrep.Int)
	body, ok3 := rec.Fields[2].(xrep.Str)
	if !ok1 || !ok2 || !ok3 {
		return nil, fmt.Errorf("office: malformed document fields %v", rec.Fields)
	}
	return Document{Title: string(title), Revision: int64(rev), Body: string(body)}, nil
}

// DivisionPortType describes a division guardian's port.
var DivisionPortType = guardian.NewPortType("office_division_port").
	Msg("create_doc", xrep.KindString, xrep.KindString).
	Replies("create_doc", "doc_token").
	Msg("read_doc", xrep.KindToken).
	Replies("read_doc", "doc", OutcomeBadToken, OutcomeNoDoc).
	Msg("edit_doc", xrep.KindToken, xrep.KindString).
	Replies("edit_doc", "edited", OutcomeBadToken, OutcomeNoDoc).
	Msg("archive_doc", xrep.KindToken).
	Replies("archive_doc", "archived", OutcomeBadToken, OutcomeNoDoc).
	Msg("send_doc", xrep.KindToken, xrep.KindPortName).
	Replies("send_doc", "forwarded", OutcomeBadToken, OutcomeNoDoc).
	Msg("receive_doc", xrep.KindRec).
	Replies("receive_doc", "doc_token").
	Msg("count_docs").
	Replies("count_docs", "doc_count")

// ClientReplyType receives every division reply.
var ClientReplyType = guardian.NewPortType("office_client_port").
	Msg("doc_token", xrep.KindToken).
	Msg("doc", xrep.KindRec).
	Msg("edited", xrep.KindInt).
	Msg("archived").
	Msg("forwarded").
	Msg(OutcomeBadToken).
	Msg(OutcomeNoDoc).
	Msg("doc_count", xrep.KindInt)

// divisionState is the guardian's objects: stored documents keyed by a
// private id. The ids never leave the guardian except sealed in tokens —
// "an index into a private table of the guardian. Such information should
// not be transmitted in a message" unsealed (§3.3, reason 3).
type divisionState struct {
	nextID uint64
	docs   map[uint64]*Document
}

// DivisionDef returns the division guardian definition. Documents are
// volatile in this application (divisions re-author after a crash), so
// there is no Recover; the interesting durability story lives in the
// airline and bank applications.
func DivisionDef() *guardian.GuardianDef {
	return &guardian.GuardianDef{
		TypeName: DivisionDefName,
		Provides: []*guardian.PortType{DivisionPortType},
		Init:     divisionMain,
	}
}

func divisionMain(ctx *guardian.Ctx) {
	st := &divisionState{docs: make(map[uint64]*Document)}
	ctx.G.SetState(st)
	g := ctx.G
	// Register the document decode operation at this node.
	g.Node().Registry().Register(DocTypeName, DecodeDocument)

	tokenFor := func(id uint64) xrep.Token {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], id)
		return g.Seal(buf[:])
	}
	// docFromToken unseals and looks up; distinguishes forged tokens from
	// tokens whose document no longer exists.
	docFromToken := func(tok xrep.Token) (uint64, *Document, string) {
		body, err := g.Unseal(tok)
		if err != nil || len(body) != 8 {
			return 0, nil, OutcomeBadToken
		}
		id := binary.BigEndian.Uint64(body)
		doc, ok := st.docs[id]
		if !ok {
			return id, nil, OutcomeNoDoc
		}
		return id, doc, ""
	}
	reply := func(pr *guardian.Process, m *guardian.Message, cmd string, args ...any) {
		if !m.ReplyTo.IsZero() {
			_ = pr.Send(m.ReplyTo, cmd, args...)
		}
	}
	store := func(doc *Document) xrep.Token {
		st.nextID++
		st.docs[st.nextID] = doc
		return tokenFor(st.nextID)
	}

	guardian.NewReceiver(ctx.Ports[0]).
		When("create_doc", func(pr *guardian.Process, m *guardian.Message) {
			tok := store(&Document{Title: m.Str(0), Revision: 1, Body: m.Str(1)})
			reply(pr, m, "doc_token", tok)
		}).
		When("read_doc", func(pr *guardian.Process, m *guardian.Message) {
			_, doc, fail := docFromToken(m.Token(0))
			if fail != "" {
				reply(pr, m, fail)
				return
			}
			reply(pr, m, "doc", *doc)
		}).
		When("edit_doc", func(pr *guardian.Process, m *guardian.Message) {
			_, doc, fail := docFromToken(m.Token(0))
			if fail != "" {
				reply(pr, m, fail)
				return
			}
			doc.Body = m.Str(1)
			doc.Revision++
			reply(pr, m, "edited", doc.Revision)
		}).
		When("archive_doc", func(pr *guardian.Process, m *guardian.Message) {
			id, _, fail := docFromToken(m.Token(0))
			if fail != "" {
				reply(pr, m, fail)
				return
			}
			delete(st.docs, id)
			reply(pr, m, "archived")
		}).
		When("send_doc", func(pr *guardian.Process, m *guardian.Message) {
			// Inter-division service: the document's *value* crosses in
			// its external rep; the receiving division stores its own
			// copy and answers the original requester with its own token
			// (different-guardian response pattern).
			_, doc, fail := docFromToken(m.Token(0))
			if fail != "" {
				reply(pr, m, fail)
				return
			}
			_ = pr.SendReplyTo(m.Port(1), m.ReplyTo, "receive_doc", *doc)
			reply(pr, m, "forwarded")
		}).
		When("receive_doc", func(pr *guardian.Process, m *guardian.Message) {
			decoded, err := m.Decode(0)
			if err != nil {
				return // undecodable foreign value: drop
			}
			doc, ok := decoded.(Document)
			if !ok {
				return
			}
			tok := store(&doc)
			reply(pr, m, "doc_token", tok)
		}).
		When("count_docs", func(pr *guardian.Process, m *guardian.Message) {
			reply(pr, m, "doc_count", int64(len(st.docs)))
		}).
		WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
			// §3.4 failure arm: a discarded message named this port as its
			// replyto. Documents are keyed by sealed token, so a lost reply
			// costs the client one re-ask; drop the report.
		}).
		Loop(ctx.Proc, nil)
}
