package office

import (
	"testing"
	"time"

	"repro/internal/guardian"
	"repro/internal/xrep"
)

const testTimeout = 5 * time.Second

type client struct {
	proc  *guardian.Process
	reply *guardian.Port
}

func newClient(t *testing.T, n *guardian.Node) *client {
	t.Helper()
	g, proc, err := n.NewDriver("user")
	if err != nil {
		t.Fatal(err)
	}
	reply, err := g.NewPort(ClientReplyType, 16)
	if err != nil {
		t.Fatal(err)
	}
	return &client{proc: proc, reply: reply}
}

func (c *client) call(t *testing.T, port xrep.PortName, cmd string, args ...any) *guardian.Message {
	t.Helper()
	if err := c.proc.SendReplyTo(port, c.reply.Name(), cmd, args...); err != nil {
		t.Fatal(err)
	}
	m, st := c.proc.Receive(testTimeout, c.reply)
	if st != guardian.RecvOK {
		t.Fatalf("%s: status %v", cmd, st)
	}
	return m
}

func deployOffice(t *testing.T) (*guardian.World, xrep.PortName, xrep.PortName, *client) {
	t.Helper()
	w := guardian.NewWorld(guardian.Config{})
	if err := w.Register(DivisionDef()); err != nil {
		t.Fatal(err)
	}
	sales := w.MustAddNode("sales")
	legal := w.MustAddNode("legal")
	desk := w.MustAddNode("desk")
	cs, err := sales.Bootstrap(DivisionDefName)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := legal.Bootstrap(DivisionDefName)
	if err != nil {
		t.Fatal(err)
	}
	return w, cs.Ports[0], cl.Ports[0], newClient(t, desk)
}

func TestCreateReadEdit(t *testing.T) {
	_, sales, _, c := deployOffice(t)
	m := c.call(t, sales, "create_doc", "Q3 forecast", "draft v1")
	if m.Command != "doc_token" {
		t.Fatalf("create: %v", m.Command)
	}
	tok := m.Token(0)

	m = c.call(t, sales, "read_doc", tok)
	if m.Command != "doc" {
		t.Fatalf("read: %v", m.Command)
	}
	doc, err := DecodeDocument(m.Args[0])
	if err != nil {
		t.Fatal(err)
	}
	d := doc.(Document)
	if d.Title != "Q3 forecast" || d.Body != "draft v1" || d.Revision != 1 {
		t.Fatalf("doc = %+v", d)
	}

	if m = c.call(t, sales, "edit_doc", tok, "draft v2"); m.Command != "edited" || m.Int(0) != 2 {
		t.Fatalf("edit: %v %v", m.Command, m.Args)
	}
	m = c.call(t, sales, "read_doc", tok)
	d = mustDoc(t, m)
	if d.Body != "draft v2" || d.Revision != 2 {
		t.Fatalf("after edit: %+v", d)
	}
}

func mustDoc(t *testing.T, m *guardian.Message) Document {
	t.Helper()
	doc, err := DecodeDocument(m.Args[0])
	if err != nil {
		t.Fatal(err)
	}
	return doc.(Document)
}

func TestForeignTokenRejected(t *testing.T) {
	_, sales, legal, c := deployOffice(t)
	m := c.call(t, sales, "create_doc", "contract", "text")
	tok := m.Token(0)
	// The legal division cannot unseal a sales token.
	if m := c.call(t, legal, "read_doc", tok); m.Command != OutcomeBadToken {
		t.Fatalf("foreign token: %v", m.Command)
	}
}

func TestTamperedTokenRejected(t *testing.T) {
	_, sales, _, c := deployOffice(t)
	tok := c.call(t, sales, "create_doc", "x", "y").Token(0)
	tok.Body[3] ^= 0x40
	if m := c.call(t, sales, "read_doc", tok); m.Command != OutcomeBadToken {
		t.Fatalf("tampered token: %v", m.Command)
	}
}

func TestArchivedDocumentTokenDangles(t *testing.T) {
	// "The system makes no guarantee that the object named by the token
	// continues to exist": after archiving, the old token unseals fine but
	// the document is gone.
	_, sales, _, c := deployOffice(t)
	tok := c.call(t, sales, "create_doc", "memo", "body").Token(0)
	if m := c.call(t, sales, "archive_doc", tok); m.Command != "archived" {
		t.Fatalf("archive: %v", m.Command)
	}
	if m := c.call(t, sales, "read_doc", tok); m.Command != OutcomeNoDoc {
		t.Fatalf("dangling token: %v, want no_document", m.Command)
	}
	if m := c.call(t, sales, "archive_doc", tok); m.Command != OutcomeNoDoc {
		t.Fatalf("re-archive: %v", m.Command)
	}
}

func TestSendDocAcrossDivisions(t *testing.T) {
	_, sales, legal, c := deployOffice(t)
	tok := c.call(t, sales, "create_doc", "deal", "terms v1").Token(0)
	// Ask sales to forward to legal; the new token comes from legal
	// (different-guardian response), and sales also confirms forwarding.
	if err := c.proc.SendReplyTo(sales, c.reply.Name(), "send_doc", tok, legal); err != nil {
		t.Fatal(err)
	}
	var legalTok xrep.Token
	gotToken, gotForwarded := false, false
	for i := 0; i < 2; i++ {
		m, st := c.proc.Receive(testTimeout, c.reply)
		if st != guardian.RecvOK {
			t.Fatalf("status %v", st)
		}
		switch m.Command {
		case "doc_token":
			legalTok = m.Token(0)
			if m.SrcNode != "legal" {
				t.Fatalf("token from %s, want legal", m.SrcNode)
			}
			gotToken = true
		case "forwarded":
			gotForwarded = true
		default:
			t.Fatalf("unexpected %v", m.Command)
		}
	}
	if !gotToken || !gotForwarded {
		t.Fatalf("token %v forwarded %v", gotToken, gotForwarded)
	}
	// The copy is independent: editing at legal does not change sales'.
	c.call(t, legal, "edit_doc", legalTok, "terms v2 (redlined)")
	if d := mustDoc(t, c.call(t, sales, "read_doc", tok)); d.Body != "terms v1" {
		t.Fatalf("sales copy mutated: %+v", d)
	}
	if d := mustDoc(t, c.call(t, legal, "read_doc", legalTok)); d.Body != "terms v2 (redlined)" {
		t.Fatalf("legal copy wrong: %+v", d)
	}
	if m := c.call(t, legal, "count_docs"); m.Int(0) != 1 {
		t.Fatalf("legal holds %d docs", m.Int(0))
	}
}

func TestDocumentExternalRepRoundTrip(t *testing.T) {
	d := Document{Title: "t", Revision: 3, Body: "b"}
	v, err := xrep.Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDocument(v)
	if err != nil {
		t.Fatal(err)
	}
	if back.(Document) != d {
		t.Fatalf("round trip: %+v", back)
	}
	if _, err := DecodeDocument(xrep.Int(1)); err == nil {
		t.Fatal("decoded a non-document")
	}
	if _, err := DecodeDocument(xrep.Rec{Name: DocTypeName, Fields: xrep.Seq{xrep.Int(1)}}); err == nil {
		t.Fatal("decoded a malformed document")
	}
}
