package callgraph

import (
	"go/token"
	"strings"
	"testing"
)

// hand-built graphs exercise the closure independently of extraction.

func addFunc(g *Graph, key, owner string, events ...Event) *FuncSum {
	sum := &FuncSum{Key: key, Name: key[strings.LastIndex(key, ".")+1:], Pkg: "t", OwnerType: owner, Events: events}
	g.Funcs[key] = sum
	if owner != "" {
		name := key[strings.LastIndex(key, ".")+1:]
		g.Methods[name] = append(g.Methods[name], key)
		ms := g.TypeMethods[owner]
		if ms == nil {
			ms = make(map[string]bool)
			g.TypeMethods[owner] = ms
		}
		ms[name] = true
	}
	return sum
}

func TestReachTransitiveBlock(t *testing.T) {
	g := New()
	addFunc(g, "t.a", "", Event{Kind: KCall, Class: "t.b", Pos: 1})
	addFunc(g, "t.b", "", Event{Kind: KCall, Class: "t.c", Pos: 2})
	addFunc(g, "t.c", "", Event{Kind: KBlock, Detail: "guardian Process.Receive", Pos: 3})

	r := g.ReachOf("t.a")
	if r == nil || len(r.Blocks) != 1 {
		t.Fatalf("want 1 reachable block from t.a, got %+v", r)
	}
	for _, s := range r.Blocks {
		if s.Detail != "guardian Process.Receive" {
			t.Fatalf("wrong block: %+v", s)
		}
		chain := g.Chain("t.a", s)
		if chain != "a → b → c" {
			t.Fatalf("witness chain = %q", chain)
		}
	}
}

func TestReachRecursionTerminates(t *testing.T) {
	g := New()
	addFunc(g, "t.a", "", Event{Kind: KCall, Class: "t.b", Pos: 1}, Event{Kind: KAcquire, Class: "t.T.mu", Pos: 2})
	addFunc(g, "t.b", "", Event{Kind: KCall, Class: "t.a", Pos: 3}, Event{Kind: KBlock, Detail: "select with no default", Pos: 4})

	ra, rb := g.ReachOf("t.a"), g.ReachOf("t.b")
	if len(ra.Blocks) != 1 || len(rb.Blocks) != 1 {
		t.Fatalf("mutual recursion: blocks a=%d b=%d", len(ra.Blocks), len(rb.Blocks))
	}
	if _, ok := rb.Acquires["t.T.mu"]; !ok {
		t.Fatalf("b should reach a's acquire through recursion: %+v", rb.Acquires)
	}
}

func TestResolveCHAScreensByMethodSet(t *testing.T) {
	g := New()
	// Real implements both Append and Sync; Decoy has only Sync.
	addFunc(g, "t.(Real).Sync", "t.Real", Event{Kind: KBlock, Detail: "forced durable write", Pos: 1})
	addFunc(g, "t.(Real).Append", "t.Real")
	addFunc(g, "t.(Decoy).Sync", "t.Decoy")

	targets := g.Resolve(Event{Kind: KICall, Class: "Sync", IfaceMethods: []string{"Append", "Sync"}}, "t.caller")
	if len(targets) != 1 || targets[0] != "t.(Real).Sync" {
		t.Fatalf("CHA screening: got %v, want [t.(Real).Sync]", targets)
	}
	// Without screening, both qualify.
	targets = g.Resolve(Event{Kind: KICall, Class: "Sync", IfaceMethods: []string{"Sync"}}, "t.caller")
	if len(targets) != 2 {
		t.Fatalf("unscreened: got %v", targets)
	}
}

func TestReplyBeforeSyncComposition(t *testing.T) {
	g := New()
	// bad: append, reply, sync — the reply escapes before the forced write.
	addFunc(g, "t.bad", "",
		Event{Kind: KAppend, Detail: "Log.Append", Pos: 1},
		Event{Kind: KReply, Detail: "amo.SendReply", Pos: 2},
		Event{Kind: KSync, Detail: "Log.Sync", Pos: 3},
	)
	// good: append, sync, reply.
	addFunc(g, "t.good", "",
		Event{Kind: KAppend, Detail: "Log.Append", Pos: 4},
		Event{Kind: KSync, Detail: "Log.Sync", Pos: 5},
		Event{Kind: KReply, Detail: "amo.SendReply", Pos: 6},
	)
	// caller: the callee's sync covers the caller's earlier append.
	addFunc(g, "t.caller", "",
		Event{Kind: KAppend, Detail: "Log.Append", Pos: 7},
		Event{Kind: KCall, Class: "t.good", Pos: 8},
	)
	// dangling: append with no sync anywhere.
	addFunc(g, "t.dangling", "", Event{Kind: KAppend, Detail: "Log.Append", Pos: 9})

	if r := g.ReachOf("t.bad"); !r.ReplyBeforeSync {
		t.Fatalf("t.bad should flag reply-before-sync: %+v", r)
	}
	if r := g.ReachOf("t.good"); r.ReplyBeforeSync || r.EndsPending {
		t.Fatalf("t.good should be clean: %+v", r)
	}
	if r := g.ReachOf("t.caller"); r.EndsPending {
		t.Fatalf("t.caller's append is covered by callee sync: %+v", r)
	}
	if r := g.ReachOf("t.dangling"); !r.EndsPending {
		t.Fatalf("t.dangling should end pending: %+v", r)
	}
}

func TestSiteCapBounds(t *testing.T) {
	g := New()
	events := make([]Event, 0, maxSites*2)
	for i := 0; i < maxSites*2; i++ {
		events = append(events, Event{Kind: KBlock, Detail: "chansend", Pos: token.Pos(i + 1)})
	}
	addFunc(g, "t.big", "", events...)
	if r := g.ReachOf("t.big"); len(r.Blocks) > maxSites {
		t.Fatalf("site cap exceeded: %d", len(r.Blocks))
	}
}
