// Package callgraph grows the per-package AST framework into a
// whole-program one: it reduces every function the standalone driver sees
// to a summary of the events the interaction-safety passes care about —
// lock acquisitions and releases, blocking operations, durable-log appends
// and forced writes, client-visible reply sends, and calls — and composes
// the summaries over a CHA-style call graph so a pass can ask "what does
// this call transitively reach?" across package boundaries.
//
// The design trades precision for stdlib-only buildability, in the spirit
// of Minsky's law-governed interaction: the point is machinery OUTSIDE the
// components that enforces protocol obligations mechanically, not a proof.
// The approximations, all deliberate:
//
//   - Call edges are class-hierarchy style: a call through an interface
//     method resolves to every known concrete method of that name whose
//     owner also provides the rest of the interface's methods. No pointer
//     analysis, so unrelated same-shaped types over-approximate.
//   - Calls through function values (fields, params, locals) resolve only
//     for direct literal invocation; a stored handler is analyzed as its
//     own entry point instead of at its call sites.
//   - Event order inside one function is source order — path-insensitive —
//     with two refinements. A lock release on an exit path (immediately
//     followed by return/break/continue/goto/panic) does not clear the
//     fall-through held-set, so the ubiquitous `mu.Lock(); if bad {
//     mu.Unlock(); return }; work…` idiom keeps `work` inside the held
//     region — UNLESS the release sits in the same statement list as its
//     matching acquire, in which case there is no locked fall-through (the
//     terminator leaves the block the pair lives in) and the release is
//     final. And a function that releases a lock class before acquiring it
//     (the `flushAsLeader`-style ownership hand-off: entered with the mutex
//     held, returns with it released) does not export that acquisition to
//     callers — from the caller's perspective the lock changed hands, it
//     was not taken twice. A full CFG is deliberately out of scope.
//   - `go` statements sever the edge (the spawned body runs outside the
//     caller's locks, and is summarized as its own entry point); deferred
//     calls other than unlocks are dropped (their interleaving with
//     deferred unlocks is beyond source-order precision).
//
// Under the standalone driver every analyzed package records into one
// shared Graph (via analysis.Program) and whole-program queries see the
// union. Under go vet -vettool there is no shared run, so each pass builds
// a single-package Graph and degrades to intra-package composition.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Kind classifies one summarized event.
type Kind int

// Event kinds, in the order a pass usually switches over them.
const (
	// KAcquire is a mutex acquisition (Lock, RLock, TryLock, TryRLock).
	KAcquire Kind = iota
	// KRelease is a mutex release (Unlock, RUnlock).
	KRelease
	// KBlock is an operation that can block the goroutine indefinitely or
	// against I/O: a guardian receive or pause, an at-most-once call, a
	// synchronous call helper, a durable forced write, a channel operation
	// with no default, a WaitGroup wait.
	KBlock
	// KAppend is a volatile append to a log-like type: durable only after
	// the next KSync.
	KAppend
	// KSync is a forced write on a log-like type (Sync, AppendSync,
	// Checkpoint): everything appended before it is durable after it.
	KSync
	// KReply is a client-visible reply send: a guardian send whose
	// destination derives from a message's ReplyTo (or an idiomatically
	// named reply/client port), or amo.SendReply.
	KReply
	// KCall is a statically resolved call to a repro function or method.
	KCall
	// KICall is a call through an interface method, to be resolved
	// CHA-style against every known implementation.
	KICall
)

// Event is one summarized operation inside a function, in source order.
type Event struct {
	Kind Kind
	// Pos locates the operation.
	Pos token.Pos
	// Class carries the kind-specific key: the lock class for
	// KAcquire/KRelease, the callee key for KCall, the method name for
	// KICall, a stable short tag otherwise.
	Class string
	// Detail is the human phrasing used in diagnostics ("Process.Receive",
	// "channel send", "durable.Log.AppendSync", …).
	Detail string
	// Deferred marks an event inside a defer statement (only releases are
	// summarized deferred; a deferred unlock holds to function end).
	Deferred bool
	// Exits marks a release on an exit path: the statement (or its
	// enclosing block) is immediately followed by return, break, continue,
	// goto, or panic, so the fall-through code still holds the lock.
	Exits bool
	// TermEnd, for Exits releases, is the End position of the terminating
	// statement that follows: events positioned inside it (a call in the
	// return expression) run AFTER the release and are genuinely unlocked,
	// while events past it are the fall-through that still holds.
	TermEnd token.Pos
	// Block, for KAcquire/KRelease, identifies the statement list the lock
	// call sits in (the enclosing block or clause position). An Exits
	// release whose Block matches its acquire's is a straight-line pair —
	// the terminator leaves the block both live in, so nothing on the
	// fall-through still holds the lock.
	Block token.Pos
	// IfaceMethods, for KICall, is the called interface's full method-name
	// set, used to screen CHA candidates.
	IfaceMethods []string
	// SelfType, for a KICall of the form x.field.M(), keys the named type
	// of the base value x. CHA candidates owned by that type are excluded:
	// a value delegating through an interface-typed field back to its own
	// type is wrapping a DIFFERENT instance, and under per-type lock
	// classes the self-candidate only manufactures false re-entrancy.
	SelfType string
}

// FuncSum is one function's summary.
type FuncSum struct {
	// Key identifies the function: "pkg.Name", "pkg.(Recv).Name", or
	// "<enclosing>$<n>" for a function literal.
	Key string
	// Name is the display form used in diagnostic chains.
	Name string
	// Pkg is the defining package path.
	Pkg string
	// Pos is the function's position.
	Pos token.Pos
	// OwnerType, for methods, keys the receiver's named type ("pkg.Type").
	OwnerType string
	// Events are the function's summarized operations in source order.
	Events []Event
}

// Graph is the (whole-program or single-package) summary collection.
type Graph struct {
	// Funcs maps function key → summary.
	Funcs map[string]*FuncSum
	// Methods maps a method name to every function key declaring it.
	Methods map[string][]string
	// TypeMethods maps an OwnerType key to its declared method-name set.
	TypeMethods map[string]map[string]bool

	pkgs  map[*types.Package]bool
	reach map[string]*Reach
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		Funcs:       make(map[string]*FuncSum),
		Methods:     make(map[string][]string),
		TypeMethods: make(map[string]map[string]bool),
		pkgs:        make(map[*types.Package]bool),
	}
}

// graphKey is the analysis.Program fact key the shared graph lives under.
const graphKey = "callgraph.graph"

// Of returns the graph for this pass's run, recording the pass's package
// into it on first sight. With a Program (standalone mode) the graph is
// shared by every package and every pass of the run; without one (vet
// mode) the graph covers just this package.
//
// Files ending in _test.go are not summarized: tests hold locks across
// blocking calls and reply out of order on purpose (fault injection,
// deadline probes), and flagging them would bury the signal under an
// allowlist of intentional violations.
func Of(pass *analysis.Pass) *Graph {
	var g *Graph
	if pass.Program != nil {
		g = pass.Program.Fact(graphKey, func() any { return New() }).(*Graph)
	} else {
		g = New()
	}
	if !g.pkgs[pass.Pkg] {
		g.pkgs[pass.Pkg] = true
		g.reach = nil // new summaries invalidate memoized closures
		ex := &extractor{g: g, pkg: pass.Pkg, info: pass.TypesInfo}
		for _, f := range pass.Files {
			if name := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
				continue
			}
			ex.file(f)
		}
	}
	return g
}

// From returns the shared graph accumulated by a standalone run's Run
// phases, for use in an Analyzer.Finish hook. Nil when no package
// recorded (the analyzers were never run).
func From(prog *analysis.Program) *Graph {
	g, _ := prog.Fact(graphKey, func() any { return New() }).(*Graph)
	return g
}

// --- extraction ---

// extractor builds FuncSums for one package.
type extractor struct {
	g    *Graph
	pkg  *types.Package
	info *types.Info

	cur    *FuncSum
	litSeq map[string]int
	// skipComm holds the Comm statements of select clauses whose channel
	// operations are already covered (by the select's own KBlock, or by a
	// default clause making them non-blocking).
	skipComm map[ast.Stmt]bool
	// exitAfter maps call expressions whose enclosing statement is
	// immediately followed by a terminating statement (return, break,
	// continue, goto, panic) in the same block to that terminator's End.
	exitAfter map[*ast.CallExpr]token.Pos
	// stmtList maps every expression-statement call to the position of the
	// statement list (block or clause) it sits in, so acquire/release pairs
	// can be recognized as straight-line or nested.
	stmtList map[*ast.CallExpr]token.Pos
}

func (ex *extractor) file(f *ast.File) {
	ex.litSeq = make(map[string]int)
	ex.exitAfter = make(map[*ast.CallExpr]token.Pos)
	ex.stmtList = make(map[*ast.CallExpr]token.Pos)
	markExitCalls(f, ex.exitAfter, ex.stmtList)
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		sum := &FuncSum{
			Key:  ex.declKey(fd),
			Name: declName(fd),
			Pkg:  ex.pkg.Path(),
			Pos:  fd.Pos(),
		}
		if fd.Recv != nil {
			sum.OwnerType = ex.recvTypeKey(fd)
			if sum.OwnerType != "" {
				ms := ex.g.TypeMethods[sum.OwnerType]
				if ms == nil {
					ms = make(map[string]bool)
					ex.g.TypeMethods[sum.OwnerType] = ms
				}
				ms[fd.Name.Name] = true
				ex.g.Methods[fd.Name.Name] = append(ex.g.Methods[fd.Name.Name], sum.Key)
			}
		}
		ex.g.Funcs[sum.Key] = sum
		ex.walkFunc(sum, fd.Body)
	}
}

// walkFunc summarizes one function body into sum, creating separate
// summaries (and, for direct invocations, call edges) for nested literals.
func (ex *extractor) walkFunc(sum *FuncSum, body *ast.BlockStmt) {
	prev, prevSkip := ex.cur, ex.skipComm
	ex.cur, ex.skipComm = sum, make(map[ast.Stmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := &FuncSum{
				Key:  ex.litKey(sum.Key),
				Name: litName(sum.Name),
				Pkg:  sum.Pkg,
				Pos:  n.Pos(),
			}
			ex.g.Funcs[lit.Key] = lit
			ex.walkFunc(lit, n.Body)
			return false // the literal's events belong to lit, not sum
		case *ast.GoStmt:
			// The spawned call runs outside this function's locks; its
			// body (literal or named) is summarized as its own entry
			// point. Walk the call's arguments only.
			for _, a := range n.Call.Args {
				ast.Inspect(a, func(m ast.Node) bool { return ex.visit(m) })
			}
			if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
				l := &FuncSum{Key: ex.litKey(sum.Key), Name: litName(sum.Name), Pkg: sum.Pkg, Pos: lit.Pos()}
				ex.g.Funcs[l.Key] = l
				ex.walkFunc(l, lit.Body)
			}
			return false
		case *ast.DeferStmt:
			// Only deferred unlocks are summarized (held-to-end); other
			// deferred effects are beyond source-order precision.
			if cls, name, ok := ex.lockCall(n.Call); ok && (name == "Unlock" || name == "RUnlock") {
				ex.emit(Event{Kind: KRelease, Pos: n.Call.Pos(), Class: cls, Detail: name, Deferred: true})
			}
			for _, a := range n.Call.Args {
				ast.Inspect(a, func(m ast.Node) bool { return ex.visit(m) })
			}
			return false
		}
		return ex.visit(n)
	})
	ex.cur, ex.skipComm = prev, prevSkip
}

// visit summarizes one node in the current function; the return value
// follows ast.Inspect's contract.
func (ex *extractor) visit(n ast.Node) bool {
	switch n := n.(type) {
	case nil:
		return true
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range n.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			} else {
				ex.skipComm[cc.Comm] = true
			}
		}
		if !hasDefault {
			ex.emit(Event{Kind: KBlock, Pos: n.Pos(), Class: "select", Detail: "select with no default"})
		}
		return true
	case *ast.SendStmt:
		if !ex.inSkippedComm(n) {
			ex.emit(Event{Kind: KBlock, Pos: n.Pos(), Class: "chansend", Detail: "channel send with no default"})
		}
		return true
	case *ast.UnaryExpr:
		if n.Op == token.ARROW && !ex.inSkippedComm(n) {
			ex.emit(Event{Kind: KBlock, Pos: n.Pos(), Class: "chanrecv", Detail: "channel receive with no default"})
		}
		return true
	case *ast.CallExpr:
		ex.call(n)
		return true
	}
	return true
}

// inSkippedComm reports whether n is (part of) a select comm statement
// already covered by the select's own summary.
func (ex *extractor) inSkippedComm(n ast.Node) bool {
	for s := range ex.skipComm {
		if s.Pos() <= n.Pos() && n.End() <= s.End() {
			return true
		}
	}
	return false
}

func (ex *extractor) emit(e Event) {
	ex.cur.Events = append(ex.cur.Events, e)
}

// call classifies one call expression.
func (ex *extractor) call(call *ast.CallExpr) {
	// Direct literal invocation: (func(){…})() — edge to the literal,
	// which walkFunc will summarize when Inspect reaches it.
	if _, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		// The literal key it WILL get is the next sequence number; emitting
		// the call edge here and the summary at the FuncLit visit keeps
		// them aligned because Inspect reaches the FuncLit right after.
		ex.emit(Event{Kind: KCall, Pos: call.Pos(), Class: ex.peekLitKey(ex.cur.Key), Detail: "literal call"})
		return
	}

	if cls, name, ok := ex.lockCall(call); ok {
		switch name {
		case "Lock", "RLock", "TryLock", "TryRLock":
			ex.emit(Event{Kind: KAcquire, Pos: call.Pos(), Class: cls, Detail: name, Block: ex.stmtList[call]})
		case "Unlock", "RUnlock":
			end := ex.exitAfter[call]
			ex.emit(Event{Kind: KRelease, Pos: call.Pos(), Class: cls, Detail: name, Exits: end != 0, TermEnd: end, Block: ex.stmtList[call]})
		}
		return
	}

	obj := calleeObject(ex.info, call)
	fn, _ := obj.(*types.Func)
	if fn == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}

	// Known blocking operations, by API identity.
	if sig != nil && sig.Recv() != nil {
		recvName := namedOrIfaceName(sig.Recv().Type())
		switch {
		case pkgPath == "repro/internal/guardian" && recvName == "Process" && (fn.Name() == "Receive" || fn.Name() == "Pause"):
			ex.emit(Event{Kind: KBlock, Pos: call.Pos(), Class: "recv", Detail: "guardian Process." + fn.Name()})
			return
		case pkgPath == "repro/internal/amo" && recvName == "Caller" && fn.Name() == "Call":
			ex.emit(Event{Kind: KBlock, Pos: call.Pos(), Class: "amocall", Detail: "amo Caller.Call"})
			return
		case pkgPath == "sync" && fn.Name() == "Wait" && recvName == "WaitGroup":
			ex.emit(Event{Kind: KBlock, Pos: call.Pos(), Class: "wgwait", Detail: "sync.WaitGroup.Wait"})
			return
		}
		// Log-like receivers: Append is a volatile write, Sync/AppendSync/
		// Checkpoint are forced (blocking) writes. Recognized by shape
		// (Append alongside Sync/AppendSync) rather than import path, so
		// private log seams and golden-fixture logs count like durable.Log.
		if logLike(sig.Recv().Type()) {
			switch fn.Name() {
			case "Append":
				ex.emit(Event{Kind: KAppend, Pos: call.Pos(), Class: "append", Detail: recvName + ".Append"})
				return
			case "Sync", "AppendSync", "Checkpoint":
				ex.emit(Event{Kind: KSync, Pos: call.Pos(), Class: "sync", Detail: recvName + "." + fn.Name()})
				ex.emit(Event{Kind: KBlock, Pos: call.Pos(), Class: "sync", Detail: "forced durable write " + recvName + "." + fn.Name()})
				return
			}
		}
		// Client-visible reply sends on a guardian process.
		if pkgPath == "repro/internal/guardian" && recvName == "Process" {
			if idx, ok := sendDestIndex(fn.Name()); ok && idx < len(call.Args) {
				if isReplyDest(ex.info, call.Args[idx]) {
					ex.emit(Event{Kind: KReply, Pos: call.Pos(), Class: "reply", Detail: "Process." + fn.Name() + " to a reply port"})
					return
				}
			}
			// Other guardian sends are protocol traffic, not events.
			return
		}
	}
	if pkgPath == "repro/internal/amo" && sig != nil && sig.Recv() == nil && fn.Name() == "SendReply" {
		ex.emit(Event{Kind: KReply, Pos: call.Pos(), Class: "reply", Detail: "amo.SendReply"})
		return
	}
	if pkgPath == "repro/internal/sendprim" && sig != nil && sig.Recv() == nil && (fn.Name() == "Call" || fn.Name() == "SyncSend") {
		ex.emit(Event{Kind: KBlock, Pos: call.Pos(), Class: "syncsend", Detail: "sendprim." + fn.Name()})
		return
	}

	// Every remaining call gets an edge; resolution quietly fails for
	// functions never summarized (stdlib, unanalyzed packages), so the
	// edges cost nothing when the callee is out of scope.

	// Interface method call → CHA edge.
	if sig != nil && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			names := make([]string, 0, iface.NumMethods())
			for i := 0; i < iface.NumMethods(); i++ {
				names = append(names, iface.Method(i).Name())
			}
			ex.emit(Event{Kind: KICall, Pos: call.Pos(), Class: fn.Name(), Detail: "interface call " + fn.Name(), IfaceMethods: names, SelfType: ex.receiverBaseType(call)})
			return
		}
		recvName := namedOrIfaceName(sig.Recv().Type())
		if recvName != "" {
			ex.emit(Event{Kind: KCall, Pos: call.Pos(), Class: pkgPath + ".(" + recvName + ")." + fn.Name(), Detail: recvName + "." + fn.Name()})
			return
		}
	}
	ex.emit(Event{Kind: KCall, Pos: call.Pos(), Class: pkgPath + "." + fn.Name(), Detail: fn.Name()})
}

// lockCall reports whether call is a sync.Mutex/RWMutex method, returning
// the lock class and method name.
func (ex *extractor) lockCall(call *ast.CallExpr) (class, name string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, _ := ex.info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	recv := namedOrIfaceName(sig.Recv().Type())
	if recv != "Mutex" && recv != "RWMutex" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
		return ex.lockClass(sel.X), fn.Name(), true
	}
	return "", "", false
}

// lockClass names the mutex a lock method is invoked on. A field `x.mu`
// classes as "pkg.TypeOfX.mu" so every instance of a type shares one
// class; a package-level var classes as "pkg.var"; anything else falls
// back to the receiver expression's type or text.
func (ex *extractor) lockClass(x ast.Expr) string {
	x = unparen(x)
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if t := ex.info.Types[x.X].Type; t != nil {
			if owner := typeKey(t); owner != "" {
				return owner + "." + x.Sel.Name
			}
		}
		return exprString(x)
	case *ast.Ident:
		if obj := ex.info.Uses[x]; obj != nil {
			if obj.Parent() == ex.pkg.Scope() {
				return ex.pkg.Path() + "." + x.Name
			}
			owner := typeKey(obj.Type())
			switch owner {
			case "sync.Mutex", "sync.RWMutex", "":
				// A plain local/parameter mutex: class on the enclosing
				// function so same-named locals elsewhere never alias.
				return ex.cur.Key + ":" + x.Name
			}
			// A receiver or parameter whose type embeds the mutex
			// (r.Lock() through promotion): class on the TYPE, not the
			// variable name, so (r *T) and (rt *T) methods unify.
			return owner + ".Mutex"
		}
	}
	return exprString(x)
}

// markExitCalls records, for every call expression that forms an ExprStmt,
// the position of the statement list it sits in (into lists), and — when
// its next sibling terminates control flow (return, break, continue, goto,
// panic) — that terminator's End position (into exits).
func markExitCalls(f *ast.File, exits, lists map[*ast.CallExpr]token.Pos) {
	markList := func(id token.Pos, list []ast.Stmt) {
		for i := 0; i < len(list); i++ {
			es, ok := list[i].(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := unparen(es.X).(*ast.CallExpr)
			if !ok {
				continue
			}
			lists[call] = id
			if i+1 < len(list) && terminates(list[i+1]) {
				exits[call] = list[i+1].End()
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			markList(n.Pos(), n.List)
		case *ast.CaseClause:
			markList(n.Pos(), n.Body)
		case *ast.CommClause:
			markList(n.Pos(), n.Body)
		}
		return true
	})
}

// receiverBaseType keys the named type of the base value of a call of the
// form x.field.M() (possibly deeper selections): the type of x. It returns
// "" when the receiver is not reached through a field selection or the
// base is not a named non-interface type — forms for which "delegating
// back into its own type" has no meaning.
func (ex *extractor) receiverBaseType(call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recv, ok := unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "" // plain x.M(): x IS the interface value, no wrapping base
	}
	base := unparen(recv.X)
	for {
		s, ok := base.(*ast.SelectorExpr)
		if !ok {
			break
		}
		base = unparen(s.X)
	}
	t := ex.info.TypeOf(base)
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		return ""
	}
	return typeKey(t)
}

// terminates reports whether s unconditionally leaves the enclosing block.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// litName names a function literal after its outermost named encloser:
// a literal nested in another literal stays "<fn> literal" rather than
// stuttering a suffix per nesting level.
func litName(enclosing string) string {
	if strings.HasSuffix(enclosing, " literal") {
		return enclosing
	}
	return enclosing + " literal"
}

// litKey mints the next literal key under enclosing.
func (ex *extractor) litKey(enclosing string) string {
	ex.litSeq[enclosing]++
	return fmt.Sprintf("%s$%d", enclosing, ex.litSeq[enclosing])
}

// peekLitKey names the literal key the NEXT litKey call will mint.
func (ex *extractor) peekLitKey(enclosing string) string {
	return fmt.Sprintf("%s$%d", enclosing, ex.litSeq[enclosing]+1)
}

func (ex *extractor) declKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil {
		return ex.pkg.Path() + "." + fd.Name.Name
	}
	if k := ex.recvTypeKey(fd); k != "" {
		return ex.pkg.Path() + ".(" + k[strings.LastIndex(k, ".")+1:] + ")." + fd.Name.Name
	}
	return ex.pkg.Path() + ".(?)." + fd.Name.Name
}

// recvTypeKey returns "pkg.Type" for a method's receiver.
func (ex *extractor) recvTypeKey(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := ex.info.Types[fd.Recv.List[0].Type].Type
	if t == nil {
		if len(fd.Recv.List[0].Names) > 0 {
			if obj := ex.info.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
				t = obj.Type()
			}
		}
	}
	if t == nil {
		return ""
	}
	return typeKey(t)
}

// --- shared type helpers ---

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeObject resolves the object a call's function expression names.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// namedOrIfaceName returns t's named-type name through one pointer, or ""
// for anonymous types.
func namedOrIfaceName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// typeKey returns "pkgpath.Name" for t's named type through one pointer.
func typeKey(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// logLike reports whether t (named, pointer-to-named, or interface) offers
// the durable-log contract — an Append alongside a Sync or AppendSync —
// which is how the summaries recognize "this method call is the
// durability protocol" without import-path allowlists (tpc's private
// logAppender seam counts exactly like durable.Log).
func logLike(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		has := map[string]bool{}
		for i := 0; i < iface.NumMethods(); i++ {
			has[iface.Method(i).Name()] = true
		}
		return has["Append"] && (has["Sync"] || has["AppendSync"])
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(n))
	lookup := func(name string) bool {
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
		return false
	}
	return lookup("Append") && (lookup("Sync") || lookup("AppendSync"))
}

// sendDestIndex maps a guardian Process send method to the index of its
// destination argument.
func sendDestIndex(name string) (int, bool) {
	switch name {
	case "Send", "SendReplyTo":
		return 0, true
	case "SendChecked", "SendCheckedReplyTo":
		return 1, true
	}
	return 0, false
}

// replyIdents are the identifier names that, by repo idiom, carry a
// client's reply port.
var replyIdents = map[string]bool{"replyTo": true, "client": true, "caller": true, "reply": true}

// isReplyDest reports whether a send-destination expression derives from a
// message's ReplyTo or an idiomatically named reply port.
func isReplyDest(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name == "ReplyTo" {
				found = true
			}
		case *ast.Ident:
			if replyIdents[n.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// exprString renders a short expression for class names.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	case *ast.IndexExpr:
		return exprString(e.X) + "[…]"
	}
	return "expr"
}

// --- composition (whole-program closure) ---

// Site is one (description, position) a closure query can reach, with the
// immediate callee that provides it ("" when direct).
type Site struct {
	Detail string
	Pos    token.Pos
	Via    string
}

// Reach is the transitive effect closure of one function: every blocking
// operation and every lock acquisition its calls can reach, and the
// durability-ordering facts ackorder composes.
type Reach struct {
	// Blocks maps "detail@pos" → Site for reachable blocking operations.
	Blocks map[string]Site
	// Acquires maps lock class → Site for reachable acquisitions.
	Acquires map[string]Site
	// ReplyBeforeSync: some reply event fires before any sync event.
	ReplyBeforeSync bool
	// ReplyBeforeSyncSite is the offending reply (meaningful when
	// ReplyBeforeSync).
	ReplyBeforeSyncSite Site
	// EndsPending: leaves an append with no later sync.
	EndsPending bool
	// EndsPendingSite is the dangling append.
	EndsPendingSite Site
	// HasSync: contains any forced write.
	HasSync bool
	// HasReply: contains any reply event.
	HasReply bool
}

// maxSites bounds how many distinct blocking sites one function's closure
// retains — enough for any witness chain, bounded against pathological
// fan-out.
const maxSites = 64

// Resolve expands one event's call targets: a KCall to its single summary
// (if known), a KICall to every CHA candidate except `from` itself and any
// candidate owned by the call's SelfType — a method delegating through an
// interface to a field of its own type is wrapping a DIFFERENT instance
// (whose locks are different objects even though they share a class), so
// those candidates only manufacture false re-entrancy. Direct recursion
// still resolves through KCall.
func (g *Graph) Resolve(e Event, from string) []string {
	switch e.Kind {
	case KCall:
		if _, ok := g.Funcs[e.Class]; ok {
			return []string{e.Class}
		}
	case KICall:
		var out []string
		for _, key := range g.Methods[e.Class] {
			if key == from {
				continue
			}
			sum := g.Funcs[key]
			if sum == nil || sum.OwnerType == "" {
				continue
			}
			if e.SelfType != "" && sum.OwnerType == e.SelfType {
				continue
			}
			ms := g.TypeMethods[sum.OwnerType]
			ok := true
			for _, need := range e.IfaceMethods {
				if !ms[need] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, key)
			}
		}
		sort.Strings(out)
		return out
	}
	return nil
}

// LeadReleases lists the lock classes key releases before any acquire of
// the same class in its own (direct, non-deferred) events: the ownership
// hand-off shape, where a function is entered with a mutex held and
// returns with it released (wal's flushAsLeader, replica's
// finishResetLocked). A caller's held-scan clears these classes after the
// call — the callee gave the lock up on the caller's behalf.
func (g *Graph) LeadReleases(key string) []string {
	sum := g.Funcs[key]
	if sum == nil {
		return nil
	}
	acquired := make(map[string]bool)
	var out []string
	for _, e := range sum.Events {
		switch e.Kind {
		case KAcquire:
			acquired[e.Class] = true
		case KRelease:
			if !e.Deferred && !acquired[e.Class] {
				out = append(out, e.Class)
				acquired[e.Class] = true // report each class once
			}
		}
	}
	return out
}

// ReachOf returns fn's effect closure, computing the whole graph's
// fixpoint on first use. The fixpoint is context-insensitive (one summary
// per function regardless of call site) and monotone, so iteration to a
// fixed point terminates; recursion contributes whatever its first
// iteration exposes.
func (g *Graph) ReachOf(key string) *Reach {
	if g.reach == nil {
		g.computeReach()
	}
	return g.reach[key]
}

func (g *Graph) computeReach() {
	g.reach = make(map[string]*Reach, len(g.Funcs))
	keys := make([]string, 0, len(g.Funcs))
	for k := range g.Funcs {
		keys = append(keys, k)
		g.reach[k] = &Reach{Blocks: map[string]Site{}, Acquires: map[string]Site{}}
	}
	sort.Strings(keys)
	changed := true
	for rounds := 0; changed && rounds < 64; rounds++ {
		changed = false
		for _, k := range keys {
			if g.update(k) {
				changed = true
			}
		}
	}
}

// update recomputes one function's Reach from its events and its callees'
// current Reaches, reporting whether anything grew.
func (g *Graph) update(key string) bool {
	sum := g.Funcs[key]
	r := g.reach[key]
	changed := false
	addBlock := func(s Site) {
		id := s.Detail + "@" + fmt.Sprint(s.Pos)
		if _, ok := r.Blocks[id]; !ok && len(r.Blocks) < maxSites {
			r.Blocks[id] = s
			changed = true
		}
	}
	addAcq := func(class string, s Site) {
		if _, ok := r.Acquires[class]; !ok {
			r.Acquires[class] = s
			changed = true
		}
	}
	// The durability facts are recomputed from scratch each round — a
	// callee's sync discovered on a later round must be able to RETRACT an
	// earlier round's "ends pending" — while Blocks/Acquires only
	// accumulate. Callee HasSync facts grow monotonically, so the mixed
	// recomputation still reaches a fixed point.
	var (
		seenSync    = false
		pending     = false
		hasReply    = false
		replyBefore = false
		pendingSite Site
		replySite   Site
	)
	// Lock classes this function releases before (re-)acquiring: the
	// ownership hand-off shape. The later acquire re-takes a lock the
	// function gave up, so it is not exported as a new acquisition a caller
	// could deadlock against.
	released := make(map[string]bool)
	for _, e := range sum.Events {
		if e.Deferred {
			continue
		}
		switch e.Kind {
		case KBlock:
			addBlock(Site{Detail: e.Detail, Pos: e.Pos})
		case KRelease:
			released[e.Class] = true
		case KAcquire:
			if !released[e.Class] {
				addAcq(e.Class, Site{Detail: e.Detail, Pos: e.Pos})
			}
		case KAppend:
			pending = true
			pendingSite = Site{Detail: e.Detail, Pos: e.Pos}
		case KSync:
			seenSync, pending = true, false
		case KReply:
			hasReply = true
			if !seenSync && !replyBefore {
				replyBefore = true
				replySite = Site{Detail: e.Detail, Pos: e.Pos}
			}
		case KCall, KICall:
			for _, callee := range g.Resolve(e, sum.Key) {
				cr := g.reach[callee]
				if cr == nil {
					continue
				}
				for _, s := range cr.Blocks {
					addBlock(Site{Detail: s.Detail, Pos: s.Pos, Via: callee})
				}
				for class, s := range cr.Acquires {
					addAcq(class, Site{Detail: s.Detail, Pos: s.Pos, Via: callee})
				}
				if cr.HasReply {
					hasReply = true
				}
				if cr.ReplyBeforeSync && !seenSync && !replyBefore {
					replyBefore = true
					replySite = Site{Detail: cr.ReplyBeforeSyncSite.Detail, Pos: cr.ReplyBeforeSyncSite.Pos, Via: callee}
				}
				// EndsPending describes the callee's state at its return,
				// so it overrides the callee's internal syncs; a clean
				// callee with a sync covers the caller's earlier appends.
				if cr.HasSync {
					seenSync, pending = true, false
				}
				if cr.EndsPending {
					pending = true
					pendingSite = Site{Detail: cr.EndsPendingSite.Detail, Pos: cr.EndsPendingSite.Pos, Via: callee}
				}
			}
		}
	}
	if r.HasSync != seenSync || r.HasReply != hasReply || r.EndsPending != pending || r.ReplyBeforeSync != replyBefore {
		changed = true
	}
	r.HasSync, r.HasReply = seenSync, hasReply
	r.EndsPending, r.EndsPendingSite = pending, pendingSite
	r.ReplyBeforeSync, r.ReplyBeforeSyncSite = replyBefore, replySite
	return changed
}

// Chain renders a witness call chain from a function to a reached site,
// following Via links: "f → g → h".
func (g *Graph) Chain(from string, s Site) string {
	parts := []string{g.displayName(from)}
	cur := s
	for cur.Via != "" && len(parts) < 8 {
		parts = append(parts, g.displayName(cur.Via))
		next, ok := g.Funcs[cur.Via]
		if !ok {
			break
		}
		r := g.reach[next.Key]
		if r == nil {
			break
		}
		id := cur.Detail + "@" + fmt.Sprint(cur.Pos)
		nxt, ok := r.Blocks[id]
		if !ok {
			// May be an acquire chain.
			found := false
			for _, a := range r.Acquires {
				if a.Pos == cur.Pos {
					nxt, found = a, true
					break
				}
			}
			if !found {
				break
			}
		}
		if nxt.Via == "" || nxt.Via == cur.Via {
			break
		}
		cur = nxt
	}
	return strings.Join(parts, " → ")
}

func (g *Graph) displayName(key string) string {
	if sum, ok := g.Funcs[key]; ok && sum.Name != "" {
		return sum.Name
	}
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// declName renders a FuncDecl's display name.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + id.Name + ")." + fd.Name.Name
	}
	if ix, ok := t.(*ast.IndexExpr); ok {
		if id, ok := ix.X.(*ast.Ident); ok {
			return "(" + id.Name + ")." + fd.Name.Name
		}
	}
	return fd.Name.Name
}
