// Package analysis is a small static-analysis framework in the spirit of
// golang.org/x/tools/go/analysis, built on the standard library only (the
// toolchain in this environment has no module network access, so the
// x/tools dependency is reimplemented to the extent the guardian passes
// need it: analyzers, passes, diagnostics, and line-comment suppression).
//
// The framework exists to make the paper's *linguistic* guarantees
// mechanical again. Liskov's CLU-based design gets its safety from the
// compiler: object addresses can never appear in messages, guardians share
// no storage, and every abstract value crossing the wire has an external
// rep with both halves of the encode/decode pair. A library reproduction
// in Go enforces none of that statically — so the passes under
// passes/ re-erect those walls at vet time.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass: a name (used in diagnostic
// trailers and //lint:allow directives), documentation, and the Run
// function applied to each package.
type Analyzer struct {
	// Name identifies the pass; it must be a valid identifier.
	Name string
	// Doc is the pass's documentation, shown by guardianlint -help.
	Doc string
	// Run applies the pass to one package, reporting diagnostics through
	// pass.Report. The returned error aborts the whole run (reserved for
	// internal failures, not findings).
	Run func(*Pass) error
	// Finish, when non-nil, runs once after every package of a standalone
	// run has been analyzed, reporting the whole-program directions the
	// per-package Run only accumulated evidence for (into pass.Program).
	// Under go vet -vettool each package is its own process, Program is
	// nil, and Finish never runs — passes degrade to their per-package
	// directions.
	Finish func(*Program) []Diagnostic
}

// Pass carries one type-checked package to an Analyzer's Run function.
type Pass struct {
	// Analyzer is the pass being run.
	Analyzer *Analyzer
	// Fset maps positions for all parsed files.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver applies //lint:allow
	// suppression before printing.
	Report func(Diagnostic)
	// Program, when non-nil, is a whole-program accumulator shared by all
	// packages of one standalone run. Passes that need cross-package
	// evidence (xreppair's "encoder registered nowhere" direction) record
	// into it and a Finish hook reports after every package has run. Under
	// go vet -vettool each package is analyzed in its own process, so
	// Program is nil and whole-program directions are skipped.
	Program *Program
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message states it.
	Message string
}

// Program accumulates whole-program evidence across the packages of one
// standalone run. It is keyed loosely (string → any) so passes own their
// schema; see xreppair for the only current client.
type Program struct {
	facts map[string]any
}

// NewProgram returns an empty accumulator.
func NewProgram() *Program {
	return &Program{facts: make(map[string]any)}
}

// Fact returns the value stored under key, creating it with mk on first
// use. Single-goroutine use only: the standalone driver runs packages
// sequentially, mirroring go vet's per-package determinism.
func (pr *Program) Fact(key string, mk func() any) any {
	v, ok := pr.facts[key]
	if !ok {
		v = mk()
		pr.facts[key] = v
	}
	return v
}
