// Package guardianapi centralizes what the analysis passes know about the
// repro API surface: package paths, callee resolution (including the
// root-package facade, whose exported functions are variables aliasing the
// internal ones), and lookups for the xrep interfaces that define
// transmissibility.
package guardianapi

import (
	"go/ast"
	"go/types"
)

// Paths of the packages whose APIs the passes key on.
const (
	Facade   = "repro"
	Xrep     = "repro/internal/xrep"
	Guardian = "repro/internal/guardian"
	Sendprim = "repro/internal/sendprim"
	Amo      = "repro/internal/amo"
	Airline  = "repro/internal/airline"
)

// Callee resolves who a call invokes: the defining package path, the
// receiver's named type ("" for package-level functions and facade
// variables), and the function or variable name. All empty when the callee
// is not a simple named function, method, or package-level var.
func Callee(info *types.Info, call *ast.CallExpr) (pkg, recv, name string) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return "", "", ""
	}
	if obj == nil || obj.Pkg() == nil {
		return "", "", ""
	}
	switch o := obj.(type) {
	case *types.Func:
		if sig, ok := o.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv = namedName(sig.Recv().Type())
		}
		return o.Pkg().Path(), recv, o.Name()
	case *types.Var:
		// Facade-style function variables (repro.SyncSend = sendprim.SyncSend).
		return o.Pkg().Path(), "", o.Name()
	}
	return "", "", ""
}

// namedName returns the name of t's named type, through one pointer.
func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// FindPackage locates a package by path among root and its transitive
// imports (export data records the full import graph).
func FindPackage(root *types.Package, path string) *types.Package {
	if root == nil {
		return nil
	}
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == path {
			return p
		}
		for _, imp := range p.Imports() {
			if hit := walk(imp); hit != nil {
				return hit
			}
		}
		return nil
	}
	return walk(root)
}

// Iface returns the named interface type path.name reachable from root, or
// nil when the package is not in the import graph.
func Iface(root *types.Package, path, name string) *types.Interface {
	p := FindPackage(root, path)
	if p == nil {
		return nil
	}
	obj := p.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// IsNamed reports whether t (through one pointer) is the named type
// path.name.
func IsNamed(t types.Type, path, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}

// DeclaredIn reports whether t's named type is declared in pkg path (the
// xrep value model itself is exempt from structural scrutiny: its types
// are the external rep).
func DeclaredIn(t types.Type, path string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == path
}
