// Package b declares an encoder whose external rep no node can decode.
package b

import "repro/internal/xrep"

type orphan struct{ id int64 }

func (orphan) XTypeName() string { return "orphan" } // want `has an encoder but no node registers a decode`

func (o orphan) EncodeX() (xrep.Value, error) { return xrep.Int(o.id), nil }
