// Package c registers a decode for an external rep nothing produces.
package c

import "repro/internal/xrep"

func decodeGhost(v xrep.Value) (any, error) { return v, nil }

func install(r *xrep.Registry) {
	r.Register("ghost", decodeGhost) // want `no type's XTypeName produces it`
}
