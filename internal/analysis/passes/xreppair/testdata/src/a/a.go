// Package a is the golden input for xreppair's per-package checks.
package a

import "repro/internal/xrep"

// half declares only one side of the transmittable pair.
type half struct{} // want `declares XTypeName but not EncodeX`

func (half) XTypeName() string { return "half" }

// otherHalf declares only the encode operation.
type otherHalf struct{} // want `declares EncodeX but not XTypeName`

func (otherHalf) EncodeX() (xrep.Value, error) { return xrep.Str("o"), nil }

// roam computes its name at runtime: the name is part of the type's
// fixed system-wide meaning and must be constant.
type roam struct{ n string }

func (r roam) XTypeName() string { return r.n } // want `must return a single compile-time constant`

func (r roam) EncodeX() (xrep.Value, error) { return xrep.Str(r.n), nil }

// pair encodes two fields.
type pair struct{ a, b int64 }

func (pair) XTypeName() string { return "pair" }

func (p pair) EncodeX() (xrep.Value, error) {
	return xrep.Seq{xrep.Int(p.a), xrep.Int(p.b)}, nil
}

// decodePair expects three fields: the halves disagree.
func decodePair(v xrep.Value) (any, error) {
	rec, ok := v.(xrep.Rec)
	if !ok || len(rec.Fields) != 3 {
		return nil, nil
	}
	return pair{a: int64(rec.Fields[0].(xrep.Int))}, nil
}

func install(r *xrep.Registry) {
	r.Register("pair", decodePair) // want `decode for "pair" expects 3 external-rep fields but pair.EncodeX produces 2`
	r.Register("ghost", nil)       // want `installs no decode operation`
	name := "dyn"
	r.Register(name, decodePair) // want `must be a compile-time constant`
}
