package xreppair_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/xreppair"
)

func TestXreppair(t *testing.T) {
	analysistest.Run(t, xreppair.Analyzer, "a")
}

// TestXreppairWholeProgram exercises the standalone-only directions: every
// encoder needs a registered decode somewhere, every registration an
// encoder.
func TestXreppairWholeProgram(t *testing.T) {
	analysistest.RunWithFinish(t, xreppair.Analyzer, xreppair.Finish, "b", "c")
}
