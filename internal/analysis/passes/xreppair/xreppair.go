// Package xreppair enforces the two-sidedness of external representations
// (§3.3): an abstract type crosses the wire only because it has a fixed,
// system-wide external rep with an encode operation on the sending side
// and a decode operation registered at the receiving node. Half a pair is
// a latent runtime failure — an encoder whose output no node can decode,
// or a registered decoder for a type nothing produces.
//
// Per-package checks (run under go vet and standalone):
//
//   - a type declaring EncodeX without XTypeName, or vice versa: half an
//     xrep.Transmittable implementation that Go happily compiles and
//     xrep.Encode rejects at runtime;
//   - an XTypeName method whose result is not a compile-time constant —
//     the name is part of the type's fixed system-wide meaning;
//   - Registry.Register with a non-constant type name, or a nil decode
//     function;
//   - encode/decode arity disagreement: when a package both encodes a
//     type (EncodeX returning an xrep.Seq literal) and registers a decode
//     for the same name whose body checks len(rec.Fields) or indexes
//     rec.Fields, the two field counts must agree.
//
// Whole-program checks (standalone guardianlint only, where every package
// of the run is visible): every XTypeName value must be registered for
// decode somewhere, and every registered name must have an encoder. Under
// go vet each package is a separate process, so these directions are
// skipped there.
package xreppair

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/guardianapi"
)

// Analyzer is the pass.
var Analyzer = &analysis.Analyzer{
	Name:   "xreppair",
	Doc:    "flag incomplete or inconsistent encode/decode pairs for transmittable types",
	Run:    run,
	Finish: Finish,
}

// Index is the whole-program accumulator: which type names have encoders,
// and which have registered decoders.
type Index struct {
	// Encoders maps XTypeName values to the declaring method positions.
	Encoders map[string][]token.Pos
	// Registered maps Register'd names to the call positions.
	Registered map[string][]token.Pos
}

// indexOf returns the run-wide Index, creating it on first use.
func indexOf(prog *analysis.Program) *Index {
	return prog.Fact("xreppair.index", func() any {
		return &Index{Encoders: map[string][]token.Pos{}, Registered: map[string][]token.Pos{}}
	}).(*Index)
}

func run(pass *analysis.Pass) error {
	if guardianapi.FindPackage(pass.Pkg, guardianapi.Xrep) == nil && pass.Pkg.Path() != guardianapi.Xrep {
		return nil
	}

	// encoders: XTypeName constant value → encode arity (-1 unknown),
	// from this package's method declarations.
	encoderArity := make(map[string]int)
	encoderPos := make(map[string]token.Pos)
	typeNames := make(map[string]string) // XTypeName value → receiver type name

	// Pair half-check over declared types.
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		var hasName, hasEncode bool
		for i := 0; i < named.NumMethods(); i++ {
			switch named.Method(i).Name() {
			case "XTypeName":
				hasName = true
			case "EncodeX":
				hasEncode = true
			}
		}
		if hasName != hasEncode {
			missing, present := "EncodeX", "XTypeName"
			if hasEncode {
				missing, present = "XTypeName", "EncodeX"
			}
			pass.Reportf(tn.Pos(),
				"type %s declares %s but not %s — half an xrep.Transmittable implementation never crosses the wire",
				name, present, missing)
		}
	}

	// Walk method declarations: constant-ness of XTypeName, encode
	// arities from EncodeX bodies.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			switch fd.Name.Name {
			case "XTypeName":
				val, ok := soleConstantReturn(pass, fd)
				if !ok {
					pass.Reportf(fd.Name.Pos(),
						"XTypeName must return a single compile-time constant — the name is part of the type's fixed system-wide meaning")
					continue
				}
				typeNames[val] = recvTypeName(fd)
				if _, seen := encoderPos[val]; !seen {
					encoderPos[val] = fd.Name.Pos()
				}
				if prog := pass.Program; prog != nil {
					idx := indexOf(prog)
					idx.Encoders[val] = append(idx.Encoders[val], fd.Name.Pos())
				}
			case "EncodeX":
				arity := encodeArity(pass, fd)
				name := xTypeNameOfReceiver(pass, fd)
				if name == "" {
					continue
				}
				if prev, seen := encoderArity[name]; seen && prev != arity {
					encoderArity[name] = -1 // representations disagree? runtime Seq sizes differ per impl
				} else {
					encoderArity[name] = arity
				}
			}
		}
	}

	// Register call sites.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, recv, name := guardianapi.Callee(pass.TypesInfo, call)
			if pkg != guardianapi.Xrep || recv != "Registry" || name != "Register" || len(call.Args) != 2 {
				return true
			}
			tv := pass.TypesInfo.Types[call.Args[0]]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(call.Args[0].Pos(),
					"Register type name must be a compile-time constant — names are fixed system-wide (§3.3)")
				return true
			}
			typeName := constant.StringVal(tv.Value)
			if isNilExpr(pass, call.Args[1]) {
				pass.Reportf(call.Args[1].Pos(), "Register(%q, nil) installs no decode operation", typeName)
				return true
			}
			if prog := pass.Program; prog != nil {
				idx := indexOf(prog)
				idx.Registered[typeName] = append(idx.Registered[typeName], call.Pos())
			}
			// Arity agreement, when both halves are visible here.
			encA, okEnc := encoderArity[typeName]
			decA := decodeArity(pass, call.Args[1])
			if okEnc && encA > 0 && decA > 0 && encA != decA {
				pass.Reportf(call.Pos(),
					"decode for %q expects %d external-rep fields but %s.EncodeX produces %d — the external rep is part of the type's fixed meaning",
					typeName, decA, typeNames[typeName], encA)
			}
			return true
		})
	}
	return nil
}

// Finish reports the whole-program directions after every package of a
// standalone run has been indexed.
func Finish(prog *analysis.Program) []analysis.Diagnostic {
	idx := indexOf(prog)
	var out []analysis.Diagnostic
	names := make([]string, 0, len(idx.Encoders))
	for n := range idx.Encoders {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if len(idx.Registered[n]) == 0 {
			for _, pos := range idx.Encoders[n] {
				out = append(out, analysis.Diagnostic{Pos: pos,
					Message: "transmittable type \"" + n + "\" has an encoder but no node registers a decode for it — its messages are undecodable everywhere"})
			}
		}
	}
	names = names[:0]
	for n := range idx.Registered {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if len(idx.Encoders[n]) == 0 {
			for _, pos := range idx.Registered[n] {
				out = append(out, analysis.Diagnostic{Pos: pos,
					Message: "decode registered for \"" + n + "\" but no type's XTypeName produces it — nothing ever encodes this external rep"})
			}
		}
	}
	return out
}

// soleConstantReturn reports the constant value of fd's single-result
// returns; ok is false when any return is non-constant or values differ.
func soleConstantReturn(pass *analysis.Pass, fd *ast.FuncDecl) (string, bool) {
	val := ""
	ok := true
	seen := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet || len(ret.Results) != 1 {
			return true
		}
		tv := pass.TypesInfo.Types[ret.Results[0]]
		if tv.Value == nil || tv.Value.Kind() != constant.String {
			ok = false
			return true
		}
		v := constant.StringVal(tv.Value)
		if seen && v != val {
			ok = false
		}
		val, seen = v, true
		return true
	})
	return val, ok && seen
}

// recvTypeName names fd's receiver type.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// xTypeNameOfReceiver finds the XTypeName constant for fd's receiver type
// by looking the method up on the receiver's named type.
func xTypeNameOfReceiver(pass *analysis.Pass, fd *ast.FuncDecl) string {
	rn := recvTypeName(fd)
	if rn == "" {
		return ""
	}
	obj, ok := pass.Pkg.Scope().Lookup(rn).(*types.TypeName)
	if !ok {
		return ""
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return ""
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != "XTypeName" {
			continue
		}
		// Find the declaration and extract its constant.
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if md, ok := decl.(*ast.FuncDecl); ok && md.Body != nil &&
					md.Name.Name == "XTypeName" && recvTypeName(md) == rn {
					if v, ok := soleConstantReturn(pass, md); ok {
						return v
					}
				}
			}
		}
	}
	return ""
}

// encodeArity extracts the field count of the Seq literals fd returns, or
// -1 when it cannot be determined (non-literal returns, disagreeing
// lengths). A non-Seq single value encodes as one field (xrep.Encode
// wraps it).
func encodeArity(pass *analysis.Pass, fd *ast.FuncDecl) int {
	arity := 0
	known := true
	seen := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet || len(ret.Results) != 2 {
			return true
		}
		res := ast.Unparen(ret.Results[0])
		if id, ok := res.(*ast.Ident); ok && id.Name == "nil" {
			return true // error path
		}
		var a int
		if lit, ok := res.(*ast.CompositeLit); ok && isSeqType(pass.TypesInfo.Types[lit].Type) {
			a = len(lit.Elts)
		} else if t := pass.TypesInfo.Types[res].Type; t != nil && !isSeqType(t) {
			a = 1 // single value, wrapped into a one-field Seq by xrep.Encode
		} else {
			known = false
			return true
		}
		if seen && a != arity {
			known = false
		}
		arity, seen = a, true
		return true
	})
	if !known || !seen {
		return -1
	}
	return arity
}

// isSeqType reports whether t is xrep.Seq.
func isSeqType(t types.Type) bool {
	return t != nil && guardianapi.IsNamed(t, guardianapi.Xrep, "Seq")
}

// decodeArity inspects the registered decode function's body for the
// field count it expects: a len(x.Fields) comparison against a constant
// wins; failing that, one past the largest constant index into .Fields.
// Returns -1 when the body is not visible or gives no evidence.
func decodeArity(pass *analysis.Pass, fn ast.Expr) int {
	fd := decodeFuncDecl(pass, fn)
	if fd == nil || fd.Body == nil {
		return -1
	}
	lenCmp := -1
	maxIdx := -1
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if c := lenFieldsComparison(pass, n); c >= 0 && lenCmp < 0 {
				lenCmp = c
			}
		case *ast.IndexExpr:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && sel.Sel.Name == "Fields" {
				if tv := pass.TypesInfo.Types[n.Index]; tv.Value != nil && tv.Value.Kind() == constant.Int {
					if i, exact := constant.Int64Val(tv.Value); exact && int(i) > maxIdx {
						maxIdx = int(i)
					}
				}
			}
		}
		return true
	})
	if lenCmp >= 0 {
		return lenCmp
	}
	if maxIdx >= 0 {
		return maxIdx + 1
	}
	return -1
}

// decodeFuncDecl resolves the Register func argument to a same-package
// function declaration (identifier or func literal).
func decodeFuncDecl(pass *analysis.Pass, fn ast.Expr) *ast.FuncDecl {
	switch e := ast.Unparen(fn).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			return nil
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == e.Name &&
					pass.TypesInfo.Defs[fd.Name] == obj {
					return fd
				}
			}
		}
	case *ast.SelectorExpr:
		// Cross-package decode funcs have no visible body here.
		return nil
	}
	return nil
}

// lenFieldsComparison matches `len(x.Fields) OP const` (either side) and
// returns the constant for equality-style guards, -1 otherwise.
func lenFieldsComparison(pass *analysis.Pass, be *ast.BinaryExpr) int {
	if be.Op != token.NEQ && be.Op != token.EQL {
		return -1
	}
	lenSide, constSide := be.X, be.Y
	if !isLenFields(lenSide) {
		lenSide, constSide = be.Y, be.X
	}
	if !isLenFields(lenSide) {
		return -1
	}
	if tv := pass.TypesInfo.Types[constSide]; tv.Value != nil && tv.Value.Kind() == constant.Int {
		if i, exact := constant.Int64Val(tv.Value); exact && i >= 0 {
			return int(i)
		}
	}
	return -1
}

// isLenFields matches len(<expr>.Fields).
func isLenFields(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "len" {
		return false
	}
	sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Fields"
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}
