package transmissible_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/transmissible"
)

func TestTransmissible(t *testing.T) {
	analysistest.Run(t, transmissible.Analyzer, "a")
}
