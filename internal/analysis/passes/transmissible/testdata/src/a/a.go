// Package a is the golden input for the transmissible pass.
package a

import (
	"sync"
	"unsafe"

	"repro/internal/guardian"
	"repro/internal/xrep"
)

// coords is a complete transmittable pair: its encode operation governs
// what crosses the wire, so sending it is sanctioned.
type coords struct{ X, Y int64 }

func (coords) XTypeName() string { return "coords" }

func (c coords) EncodeX() (xrep.Value, error) {
	return xrep.Seq{xrep.Int(c.X), xrep.Int(c.Y)}, nil
}

// holder nests an address one field deep.
type holder struct {
	Label string
	Ref   *int
}

func send(pr *guardian.Process, g *guardian.Guardian, to xrep.PortName, tok xrep.Token) {
	v := 7
	_ = pr.Send(to, "ok", int64(1), "s", []byte{1}, 3.5, true)
	_ = pr.Send(to, "tok", tok)          // sealed token: possession gives no access
	_ = pr.Send(to, "abs", coords{1, 2}) // Transmittable: its encoder governs
	_ = pr.Send(to, "name", to)          // port names are xrep values

	_ = pr.Send(to, "ptr", &v)              // want `address-bearing value in message passed to Send: pointer \*int`
	_ = pr.Send(to, "ch", make(chan int))   // want `channel chan int`
	_ = pr.Send(to, "fn", func() {})        // want `code addresses cannot cross guardian boundaries`
	_ = pr.Send(to, "mp", map[string]int{}) // want `maps alias shared storage`
	_ = pr.Send(to, "mu", sync.Mutex{})     // want `sync.Mutex`
	_ = pr.Send(to, "u64", uint64(1))       // want `no external rep`
	_ = pr.Send(to, "nest", holder{})       // want `field Ref: pointer \*int`

	_ = pr.SendReplyTo(to, to, "r", &v) // want `pointer \*int`

	_, _ = g.Create("def", make(chan int)) // want `channel chan int`

	// Elements of a []any literal are checked individually.
	_ = pr.Send(to, "lit", []any{int64(1), make(chan int)}) // want `channel chan int`

	// A spread []any hides its elements; nothing to check statically.
	args := []any{int64(1)}
	_ = pr.Send(to, "spread", args...)

	//lint:allow transmissible golden: deliberate pointer smuggling under test
	_ = pr.Send(to, "allowed", &v)
}

func encode(v int) {
	_, _ = xrep.Encode(&v) // want `pointer \*int`
	_, _ = xrep.Encode(xrep.Int(3))
}

// wordBag launders addresses as integers: the classic unsafe escape the
// paper's invariant exists to forbid.
type wordBag struct {
	Tag   string
	Words []uintptr
}

func addresses(pr *guardian.Process, to xrep.PortName) {
	v := 7
	up := unsafe.Pointer(&v)
	_ = pr.Send(to, "up", up)                         // want `unsafe\.Pointer \(an object address\)`
	_ = pr.Send(to, "word", uintptr(42))              // want `uintptr \(an object address\)`
	_ = pr.Send(to, "words", []uintptr{1, 2})         // want `element of \[\]uintptr: uintptr \(an object address\)`
	_ = pr.Send(to, "ups", []unsafe.Pointer{up})      // want `element of \[\]unsafe\.Pointer: unsafe\.Pointer`
	_ = pr.Send(to, "bag", wordBag{})                 // want `field Words: element of \[\]uintptr: uintptr`
	_ = pr.Send(to, "lit", []any{"ok", uintptr(1)})   // want `uintptr \(an object address\)`
	_ = pr.SendReplyTo(to, to, "r", [2]uintptr{1, 2}) // want `element of \[2\]uintptr: uintptr`

	// Negative: a byte slice is raw data, not addresses, however
	// address-like its contents; sending it stays sanctioned.
	_ = pr.Send(to, "raw", []byte{0xde, 0xad})
}
