// Package transmissible enforces the paper's central linguistic
// guarantee: "object addresses can never appear in messages" (§2.1). In
// CLU this falls out of the type system — ports carry values of
// transmissible type only. In Go, any value fits through a `...any` send
// parameter and the violation surfaces (at best) as a runtime encode
// error, or (at worst, for a same-node xrep.Value wrapper around a
// pointer) as silently shared storage between guardians.
//
// The pass walks every argument reaching a send/encode sink — the
// guardian send family, guardian/bootstrap creation args, the sendprim
// and amo call layers, and xrep.Encode itself — and flags:
//
//   - address-bearing types: pointers, channels, funcs, maps, uintptr,
//     unsafe.Pointer, and anything in package sync, however deeply nested
//     in struct fields, arrays, or slices;
//   - types with no external rep: values xrep.Encode would reject at
//     runtime (uint64, []int, plain structs, ...), reported with a hint
//     to implement xrep.Transmittable.
//
// Sanctioned capabilities pass freely: xrep.Token (the paper's sealed
// token — "possession of a token gives no access"), every type of the
// xrep value model, any type implementing xrep.Transmittable (its encode
// operation governs what crosses the wire), and user types implementing
// xrep.Value with address-free structure. Other deliberate exceptions
// take a //lint:allow transmissible directive with a reason.
package transmissible

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/guardianapi"
)

// Analyzer is the pass.
var Analyzer = &analysis.Analyzer{
	Name: "transmissible",
	Doc:  "flag address-bearing or rep-less values passed into port sends and xrep encoding",
	Run:  run,
}

// sink is one API through which values enter messages. argStart is the
// index of the first payload argument.
type sink struct {
	pkg, recv, name string
	argStart        int
}

var sinks = []sink{
	{guardianapi.Guardian, "Process", "Send", 2},
	{guardianapi.Guardian, "Process", "SendReplyTo", 3},
	{guardianapi.Guardian, "Process", "SendChecked", 3},
	{guardianapi.Guardian, "Process", "SendCheckedReplyTo", 4},
	{guardianapi.Guardian, "Guardian", "Create", 1},
	{guardianapi.Guardian, "Node", "Bootstrap", 1},
	{guardianapi.Sendprim, "", "SyncSend", 4},
	{guardianapi.Sendprim, "", "Call", 5},
	{guardianapi.Amo, "Caller", "Call", 2},
	{guardianapi.Airline, "Agent", "Admin", 3},
	{guardianapi.Xrep, "", "Encode", 0},
	{guardianapi.Xrep, "", "MustEncode", 0},
	{guardianapi.Xrep, "", "EncodeAll", 0},
	// The root facade re-exports the call layers as function variables.
	{guardianapi.Facade, "", "SyncSend", 4},
	{guardianapi.Facade, "", "Call", 5},
	{guardianapi.Facade, "", "Encode", 0},
}

func run(pass *analysis.Pass) error {
	value := guardianapi.Iface(pass.Pkg, guardianapi.Xrep, "Value")
	transmittable := guardianapi.Iface(pass.Pkg, guardianapi.Xrep, "Transmittable")
	if value == nil || transmittable == nil {
		// The package does not reach xrep; nothing can enter a message.
		return nil
	}
	ck := &checker{pass: pass, value: value, transmittable: transmittable}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, recv, name := guardianapi.Callee(pass.TypesInfo, call)
			for _, s := range sinks {
				if s.pkg == pkg && s.recv == recv && s.name == name {
					ck.checkCall(call, s)
					break
				}
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass          *analysis.Pass
	value         *types.Interface
	transmittable *types.Interface
}

func (ck *checker) checkCall(call *ast.CallExpr, s sink) {
	if s.argStart >= len(call.Args) {
		return
	}
	for i, arg := range call.Args[s.argStart:] {
		t := ck.pass.TypesInfo.Types[arg].Type
		if t == nil {
			continue
		}
		// A []any literal shows its elements; check each one precisely
		// instead of passing the opaque interface slice through.
		if lit, ok := ast.Unparen(arg).(*ast.CompositeLit); ok && isAnySlice(t) {
			for _, el := range lit.Elts {
				if et := ck.pass.TypesInfo.Types[el].Type; et != nil {
					ck.report(el.Pos(), s, et)
				}
			}
			continue
		}
		// A spread `xs...` forwards a slice whose element type is what
		// crosses the wire.
		if call.Ellipsis.IsValid() && s.argStart+i == len(call.Args)-1 {
			if sl, ok := t.Underlying().(*types.Slice); ok {
				t = sl.Elem()
			}
		}
		ck.report(arg.Pos(), s, t)
	}
}

// report flags t at pos if it violates transmissibility.
func (ck *checker) report(pos token.Pos, s sink, t types.Type) {
	p := ck.classify(t, make(map[types.Type]bool), false)
	if p == nil {
		return
	}
	kind := "not transmissible"
	if p.hard {
		kind = "address-bearing value in message"
	}
	ck.pass.Reportf(pos, "%s passed to %s: %s", kind, s.name, p.detail)
}

func isAnySlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	iface, ok := sl.Elem().Underlying().(*types.Interface)
	return ok && iface.Empty()
}

// problem describes why a type must not enter a message.
type problem struct {
	// hard means address-bearing — the paper's invariant itself. Soft
	// problems are types xrep.Encode rejects at runtime (no external rep).
	hard   bool
	detail string
}

func hard(format string, args ...any) *problem {
	return &problem{hard: true, detail: fmt.Sprintf(format, args...)}
}

func soft(format string, args ...any) *problem {
	return &problem{detail: fmt.Sprintf(format, args...)}
}

// classify walks t's structure. valueImpl marks that we are inside a type
// implementing xrep.Value, where only address-bearing guts are an offense
// (the wire model itself is made of interfaces and slices).
func (ck *checker) classify(t types.Type, seen map[types.Type]bool, valueImpl bool) *problem {
	if seen[t] {
		return nil
	}
	seen[t] = true

	// Sanctioned carriers first: the xrep value model, sealed tokens
	// (xrep.Token is declared in xrep), and abstract types with their own
	// encode operation. For a Value implementor we still audit the guts
	// for addresses — a Kind() method on a pointer wrapper must not smuggle
	// shared storage across guardians.
	if guardianapi.DeclaredIn(t, guardianapi.Xrep) {
		return nil
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" {
			return hard("sync.%s (synchronization state must stay inside one guardian)", named.Obj().Name())
		}
	}
	if types.Implements(t, ck.transmittable) {
		return nil
	}
	if types.Implements(t, ck.value) {
		if p := ck.structural(t, seen, true); p != nil && p.hard {
			return p
		}
		return nil
	}
	return ck.structural(t, seen, valueImpl)
}

func (ck *checker) structural(t types.Type, seen map[types.Type]bool, valueImpl bool) *problem {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Bool, types.String, types.Int, types.Int8, types.Int16, types.Int32, types.Int64,
			types.Uint8, types.Uint16, types.Uint32, types.Float32, types.Float64,
			types.UntypedBool, types.UntypedInt, types.UntypedFloat, types.UntypedString,
			types.UntypedRune, types.UntypedNil:
			return nil
		case types.Uintptr:
			return hard("uintptr (an object address)")
		case types.UnsafePointer:
			return hard("unsafe.Pointer (an object address)")
		default:
			if !valueImpl {
				return soft("%s has no external rep (xrep.Encode rejects it)", t)
			}
			return nil
		}
	case *types.Pointer:
		return hard("pointer %s — object addresses can never appear in messages", t)
	case *types.Chan:
		return hard("channel %s — channels are in-computer plumbing, not transmissible values", t)
	case *types.Signature:
		return hard("func %s — code addresses cannot cross guardian boundaries", t)
	case *types.Map:
		return hard("map %s — maps alias shared storage", t)
	case *types.Interface:
		// Unknown dynamic content; the runtime model handles it.
		return nil
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Uint8 {
			return nil
		}
		if iface, ok := u.Elem().Underlying().(*types.Interface); ok && iface.Empty() {
			return nil
		}
		if p := ck.classify(u.Elem(), seen, valueImpl); p != nil {
			p.detail = fmt.Sprintf("element of %s: %s", t, p.detail)
			return p
		}
		if !valueImpl {
			return soft("%s has no external rep (only []byte, []any and xrep.Seq cross the wire)", t)
		}
		return nil
	case *types.Array:
		if p := ck.classify(u.Elem(), seen, valueImpl); p != nil {
			p.detail = fmt.Sprintf("element of %s: %s", t, p.detail)
			return p
		}
		if !valueImpl {
			return soft("%s has no external rep (xrep.Encode rejects arrays)", t)
		}
		return nil
	case *types.Struct:
		var first *problem
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if p := ck.classify(f.Type(), seen, valueImpl); p != nil {
				p.detail = fmt.Sprintf("field %s: %s", f.Name(), p.detail)
				if p.hard {
					return p
				}
				if first == nil {
					first = p
				}
			}
		}
		if !valueImpl {
			return soft("%s has no external rep (implement xrep.Transmittable or send its fields as values)", t)
		}
		return first
	default:
		if !valueImpl {
			return soft("%s has no external rep", t)
		}
		return nil
	}
}
