// Package a is the golden input for the confinement pass.
package a

import "repro/internal/guardian"

// cross spawns a process on g1 that touches g2's port: storage crossing
// the guardian wall without a message in sight.
func cross(g1, g2 *guardian.Guardian) {
	stolen := g2.MustNewPort(guardian.NewPortType("x").Msg("m"), 1)
	g1.Spawn("thief", func(pr *guardian.Process) { // want `captures stolen .* owned by a different guardian`
		_ = stolen.Len()
	})

	// Same-guardian capture, traced through a tuple assignment.
	own, err := g1.NewPort(guardian.NewPortType("y").Msg("m"), 1)
	if err != nil {
		return
	}
	g1.Spawn("worker", func(pr *guardian.Process) {
		_ = own.Len()
	})
}

// viaCtx roots the spawn receiver through a selector on the context.
func viaCtx(ctx *guardian.Ctx, alien *guardian.Process) {
	ctx.G.Spawn("helper", func(pr *guardian.Process) { // want `captures alien`
		alien.Pause(0)
	})
	mine := ctx.Proc
	ctx.G.Spawn("own", func(pr *guardian.Process) {
		mine.Pause(0)
	})
}

// leakyDef captures a live guardian in the definition body: the
// instantiated guardian would reach into whoever built the definition.
func leakyDef(outer *guardian.Guardian) *guardian.GuardianDef {
	return &guardian.GuardianDef{
		TypeName: "leaky",
		Init: func(ctx *guardian.Ctx) { // want `Init closure captures outer`
			_ = outer.Alive()
		},
	}
}

// cleanDef touches only the Ctx handed to each instance.
func cleanDef() *guardian.GuardianDef {
	return &guardian.GuardianDef{
		TypeName: "clean",
		Init: func(ctx *guardian.Ctx) {
			_ = ctx.G.Alive()
		},
		Recover: func(ctx *guardian.Ctx) {
			_ = ctx.Proc
		},
	}
}

// inspector shares deliberately and says why.
func inspector(g1, g2 *guardian.Guardian) {
	p := g2.MustNewPort(guardian.NewPortType("z").Msg("m"), 1)
	//lint:allow confinement golden: same-node inspector reads queue depth only
	g1.Spawn("inspect", func(pr *guardian.Process) {
		_ = p.Len()
	})
}
