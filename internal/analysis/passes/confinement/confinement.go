// Package confinement enforces the paper's storage-partition rule:
// "guardians do not share storage — all communication between guardians
// is via messages" (§2.1, §3.1). The runtime already panics when a
// process receives on another guardian's port, but Go closures make it
// easy to smuggle a reference across the wall silently: a goroutine
// spawned as guardian A's process that captures guardian B's ports,
// state, or context touches B's objects without a message in sight.
//
// Two shapes are checked:
//
//   - a closure passed to (*Guardian).Spawn whose free variables include
//     guardian-owned values (Ctx, Guardian, Port, Process, Receiver)
//     rooted in a *different* guardian than the Spawn receiver;
//   - a closure installed as a GuardianDef Init or Recover body that
//     captures any guardian-owned value at all — the definition is
//     instantiated later, for a guardian that does not exist yet, so
//     every captured guardian value necessarily belongs to someone else.
//
// Ownership is traced intraprocedurally: ctx.G, g.MustNewPort(...),
// pr.Guardian(), ports[0] and simple := chains all root back to the
// variable they were derived from. Two values with distinct roots are
// presumed to belong to distinct guardians; deliberate sharing (e.g. a
// same-node inspector) takes //lint:allow confinement with a reason.
package confinement

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/guardianapi"
)

// Analyzer is the pass.
var Analyzer = &analysis.Analyzer{
	Name: "confinement",
	Doc:  "flag guardian process closures capturing another guardian's storage",
	Run:  run,
}

// ownedTypes are the guardian-owned types whose capture is scrutinized.
// World and Node are deliberately absent: they model the physical node,
// which colocated guardians legitimately share.
var ownedTypes = map[string]bool{
	"Guardian": true, "Port": true, "Process": true, "Ctx": true, "Receiver": true,
}

func run(pass *analysis.Pass) error {
	if guardianapi.FindPackage(pass.Pkg, guardianapi.Guardian) == nil && pass.Pkg.Path() != guardianapi.Guardian {
		return nil
	}
	for _, f := range pass.Files {
		assigns := collectAssigns(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkSpawn(pass, n, assigns)
			case *ast.CompositeLit:
				checkDefLit(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSpawn handles g.Spawn("name", func(pr *Process) { ... }).
func checkSpawn(pass *analysis.Pass, call *ast.CallExpr, assigns map[*types.Var]ast.Expr) {
	pkg, recv, name := guardianapi.Callee(pass.TypesInfo, call)
	if pkg != guardianapi.Guardian || recv != "Guardian" || name != "Spawn" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recvRoot := rootOf(pass, sel.X, assigns, 0)
	if recvRoot == nil {
		return
	}
	for _, fv := range freeGuardianVars(pass, lit) {
		vRoot := rootObj(pass, fv, assigns)
		if vRoot == nil || vRoot == recvRoot {
			continue
		}
		pass.Reportf(lit.Pos(),
			"process closure spawned on %q captures %s (%s), owned by a different guardian — guardians share no storage",
			exprString(sel.X), fv.Name(), fv.Type())
	}
}

// checkDefLit handles GuardianDef{Init: func(ctx *Ctx){...}, Recover: ...}.
func checkDefLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.Types[lit].Type
	if t == nil || !guardianapi.IsNamed(t, guardianapi.Guardian, "GuardianDef") {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || (key.Name != "Init" && key.Name != "Recover") {
			continue
		}
		fl, ok := ast.Unparen(kv.Value).(*ast.FuncLit)
		if !ok {
			continue
		}
		for _, fv := range freeGuardianVars(pass, fl) {
			pass.Reportf(fl.Pos(),
				"%s closure captures %s (%s) from the enclosing scope — the instantiated guardian must own no storage but its own",
				key.Name, fv.Name(), fv.Type())
		}
	}
}

// freeGuardianVars returns the guardian-owned variables lit references but
// does not declare.
func freeGuardianVars(pass *analysis.Pass, lit *ast.FuncLit) []*types.Var {
	seen := make(map[*types.Var]bool)
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the closure (params, locals)
		}
		if !isOwned(v.Type()) {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// isOwned reports whether t (through one pointer) is a guardian-owned
// type.
func isOwned(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == guardianapi.Guardian && ownedTypes[obj.Name()]
}

// collectAssigns maps each singly-assigned variable in the file to its
// initializer, so ownership can be traced through g := ctx.G chains
// (variable objects are unique, so one file-wide map covers every scope).
func collectAssigns(pass *analysis.Pass, f *ast.File) map[*types.Var]ast.Expr {
	out := make(map[*types.Var]ast.Expr)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// v, err := g.NewPort(...) — a tuple assignment roots every
			// left-hand variable in the single call expression.
			tuple := len(n.Rhs) == 1 && len(n.Lhs) > 1
			if len(n.Lhs) != len(n.Rhs) && !tuple {
				return true
			}
			for i, lhs := range n.Lhs {
				if tuple {
					i = 0
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := pass.TypesInfo.Defs[id].(*types.Var)
				if !ok {
					if v, ok = pass.TypesInfo.Uses[id].(*types.Var); !ok {
						continue
					}
				}
				if _, dup := out[v]; dup {
					out[v] = nil // reassigned: ownership ambiguous
				} else {
					out[v] = n.Rhs[i]
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, id := range n.Names {
				if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
					out[v] = n.Values[i]
				}
			}
		}
		return true
	})
	return out
}

const maxRootDepth = 32

// rootObj traces variable v to its ownership root.
func rootObj(pass *analysis.Pass, v *types.Var, assigns map[*types.Var]ast.Expr) types.Object {
	if init, ok := assigns[v]; ok && init != nil {
		if r := rootOf(pass, init, assigns, 0); r != nil {
			return r
		}
		return nil
	}
	return v
}

// rootOf traces an expression to the variable its guardian-owned value
// derives from: selectors, indexing, and method calls on guardian-owned
// receivers all preserve ownership. nil means the root is unknown.
func rootOf(pass *analysis.Pass, e ast.Expr, assigns map[*types.Var]ast.Expr, depth int) types.Object {
	if depth > maxRootDepth {
		return nil
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[e].(*types.Var)
		if !ok {
			if v, ok = pass.TypesInfo.Defs[e].(*types.Var); !ok {
				return nil
			}
		}
		if init, ok := assigns[v]; ok && init != nil {
			if r := rootOf(pass, init, assigns, depth+1); r != nil {
				return r
			}
		}
		return v
	case *ast.SelectorExpr:
		if xt := pass.TypesInfo.Types[e.X].Type; xt != nil && isOwned(xt) {
			return rootOf(pass, e.X, assigns, depth+1)
		}
		return nil
	case *ast.IndexExpr:
		return rootOf(pass, e.X, assigns, depth+1)
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if xt := pass.TypesInfo.Types[sel.X].Type; xt != nil && isOwned(xt) {
				return rootOf(pass, sel.X, assigns, depth+1)
			}
		}
		return nil
	case *ast.StarExpr:
		return rootOf(pass, e.X, assigns, depth+1)
	case *ast.UnaryExpr:
		return rootOf(pass, e.X, assigns, depth+1)
	}
	return nil
}

// exprString renders a short receiver expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	}
	return "guardian"
}
