package confinement_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/confinement"
)

func TestConfinement(t *testing.T) {
	analysistest.Run(t, confinement.Analyzer, "a")
}
