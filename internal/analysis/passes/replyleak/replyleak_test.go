package replyleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/replyleak"
)

func TestReplyLeak(t *testing.T) {
	analysistest.Run(t, replyleak.Analyzer, "a")
}
