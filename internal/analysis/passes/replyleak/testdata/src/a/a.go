// Package a holds the replyleak goldens: reserved routing outcomes and
// rep_* protocol vocabulary escaping to clients, unscreened Command
// passthroughs, and the screened variants that must stay silent.
package a

import (
	"repro/internal/amo"
	"repro/internal/guardian"
	"repro/internal/xrep"
)

// ForwardMoved forwards the reserved redirect outcome verbatim: the client
// gets "amo_moved" with no coordinates to follow.
func ForwardMoved(pr *guardian.Process, m *guardian.Message) {
	amo.SendReply(pr, m, amo.OutcomeMoved, nil) // want `internal routing outcome amo_moved must not be sent as a client reply`
}

// ForwardMovedProperly uses the redirect primitive.
func ForwardMovedProperly(pr *guardian.Process, m *guardian.Message) {
	amo.SendMoved(pr, m, xrep.PortName{Node: "n2"}, 7)
}

// Notice leaks replica protocol vocabulary to the caller's reply port.
func Notice(pr *guardian.Process, m *guardian.Message) {
	_ = pr.Send(m.ReplyTo, "rep_handoff") // want `internal protocol command "rep_handoff" escapes to a client reply port`
}

// NoticeInternal sends the same command to an internal peer: protocol
// traffic, not a reply.
func NoticeInternal(pr *guardian.Process, peer xrep.PortName) {
	_ = pr.Send(peer, "rep_handoff")
}

// Passthrough returns the raw outcome with no screen: a mid-rebalance
// amo_moved would become the final answer.
func Passthrough(r *amo.Reply) string {
	return r.Command // want `amo.Reply.Command returned without screening`
}

// Screened checks the reserved outcomes first, so the passthrough is
// deliberate.
func Screened(r *amo.Reply) (string, bool) {
	if r.Command == amo.OutcomeMoved || r.Command == amo.OutcomeSplit {
		return "", false
	}
	return r.Command, true
}

// Build promotes raw message data to a client-visible outcome without a
// screen.
func Build(m *guardian.Message) *amo.Reply {
	return &amo.Reply{Command: m.Command} // want `amo.Reply constructed from raw message data without screening`
}

// BuildScreened rejects the reserved outcomes before constructing.
func BuildScreened(m *guardian.Message) *amo.Reply {
	if m.Command == amo.OutcomeMoved || m.Command == amo.OutcomeSplit {
		return nil
	}
	return &amo.Reply{Command: m.Command}
}

// BuildFixed uses a fixed command constant: nothing dynamic to screen.
func BuildFixed() *amo.Reply {
	return &amo.Reply{Command: "ok"}
}

// Accepted documents a deliberate passthrough: the caller is itself
// routing infrastructure.
func Accepted(r *amo.Reply) string {
	//lint:allow replyleak consumed by the ring rebalancer, which handles amo_moved itself
	return r.Command
}
