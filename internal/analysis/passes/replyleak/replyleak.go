// Package replyleak keeps internal routing and replication vocabulary out
// of client-visible replies.
//
// The at-most-once layer reserves the amo_moved/amo_split outcomes for
// shard routing (a server answering "not mine anymore" mid-rebalance) and
// the replica runtime's rep_* commands are peer-to-peer protocol; both are
// meaningful only to infrastructure that knows how to retry or redirect.
// If one escapes as the FINAL reply — forwarded verbatim to a caller's
// reply port, or returned from a Reply without screening — the client sees
// a transient routing artifact as its answer, which is exactly the bug
// class the PR 8 review caught at the bank router (a rep_split surfacing
// as a transfer outcome).
//
// Four rules, all per-package (no call graph needed):
//
//	R1  amo.SendReply with a reserved outcome (amo_moved/amo_split)
//	    outside package amo — SendMoved exists so the redirect carries its
//	    coordinates; a bare forwarded outcome strands the client.
//	R2  a guardian send to a reply port whose command constant is rep_*
//	    (outside replica) or amo_* (outside amo): internal vocabulary on a
//	    client-facing port.
//	R3  returning Reply.Command from a function that never mentions
//	    OutcomeMoved/OutcomeSplit: a passthrough with no screen.
//	R4  constructing amo.Reply{Command: <dynamic>} in a function with no
//	    screen: raw message data promoted to a client-visible outcome.
//
// R3/R4 apply inside package amo too — the screening in Caller.Call is the
// compliant exemplar, not an exemption.
package replyleak

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/guardianapi"
)

// Analyzer is the replyleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "replyleak",
	Doc:  "keep internal routing constants (amo_moved/amo_split, rep_*) out of client-visible replies",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if name := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue // tests assert on protocol internals by design
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc applies the four rules inside one function declaration
// (nested literals count as part of it: a screen anywhere in the
// declaration covers the whole handler).
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	screened := mentionsOutcome(pass, fd)
	pkg := pass.Pkg.Path()

	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, pkg, n)
		case *ast.ReturnStmt:
			if screened {
				return true
			}
			for _, res := range n.Results {
				if sel, ok := res.(*ast.SelectorExpr); ok && sel.Sel.Name == "Command" && isAmoReply(pass, sel.X) {
					pass.Reportf(sel.Pos(), "amo.Reply.Command returned without screening amo_moved/amo_split (a routing outcome would become the final answer)")
				}
			}
		case *ast.CompositeLit:
			if screened {
				return true
			}
			if !isAmoReplyType(pass.TypesInfo.Types[n].Type) {
				return true
			}
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if id, ok := kv.Key.(*ast.Ident); !ok || id.Name != "Command" {
					continue
				}
				if pass.TypesInfo.Types[kv.Value].Value != nil {
					continue // a fixed command constant cannot smuggle routing vocabulary
				}
				pass.Reportf(kv.Value.Pos(), "amo.Reply constructed from raw message data without screening amo_moved/amo_split")
			}
		}
		return true
	})
}

// checkCall applies R1 and R2 to one call.
func checkCall(pass *analysis.Pass, pkg string, call *ast.CallExpr) {
	cpkg, recv, name := guardianapi.Callee(pass.TypesInfo, call)

	// R1: amo.SendReply with a reserved outcome, outside amo.
	if cpkg == guardianapi.Amo && recv == "" && name == "SendReply" && pkg != guardianapi.Amo {
		if len(call.Args) > 2 {
			if v, ok := constString(pass, call.Args[2]); ok && (v == "amo_moved" || v == "amo_split") {
				pass.Reportf(call.Args[2].Pos(), "internal routing outcome %s must not be sent as a client reply (use amo.SendMoved so the redirect carries its coordinates)", v)
			}
		}
		return
	}

	// R2: guardian send to a reply port with internal protocol vocabulary.
	if cpkg != guardianapi.Guardian || recv != "Process" {
		return
	}
	var destIdx, cmdIdx int
	switch name {
	case "Send":
		destIdx, cmdIdx = 0, 1
	case "SendReplyTo":
		destIdx, cmdIdx = 0, 2
	case "SendChecked":
		destIdx, cmdIdx = 1, 2
	case "SendCheckedReplyTo":
		destIdx, cmdIdx = 1, 3
	default:
		return
	}
	if cmdIdx >= len(call.Args) || !replyDest(call.Args[destIdx]) {
		return
	}
	v, ok := constString(pass, call.Args[cmdIdx])
	if !ok {
		return
	}
	switch {
	case strings.HasPrefix(v, "rep_") && pkg != "repro/internal/replica":
		pass.Reportf(call.Args[cmdIdx].Pos(), "internal protocol command %q escapes to a client reply port", v)
	case strings.HasPrefix(v, "amo_") && pkg != guardianapi.Amo:
		pass.Reportf(call.Args[cmdIdx].Pos(), "internal protocol command %q escapes to a client reply port", v)
	}
}

// mentionsOutcome reports whether fd anywhere names OutcomeMoved or
// OutcomeSplit (by constant identity or literal value) — the screening
// that makes a Command passthrough deliberate.
func mentionsOutcome(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			switch constant.StringVal(tv.Value) {
			case "amo_moved", "amo_split":
				found = true
			}
		}
		return !found
	})
	return found
}

// constString evaluates e as a compile-time string constant.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isAmoReply reports whether e's type is amo.Reply (or a pointer to it).
func isAmoReply(pass *analysis.Pass, e ast.Expr) bool {
	return isAmoReplyType(pass.TypesInfo.Types[e].Type)
}

func isAmoReplyType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Reply" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == guardianapi.Amo
}

// replyDest mirrors the callgraph package's reply-port recognition: the
// destination derives from a message's ReplyTo or an idiomatically named
// reply port.
func replyDest(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name == "ReplyTo" {
				found = true
			}
		case *ast.Ident:
			switch n.Name {
			case "replyTo", "client", "caller", "reply":
				found = true
			}
		}
		return !found
	})
	return found
}
