package lockorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.RunWithFinish(t, lockorder.Analyzer, lockorder.Finish, "a", "b")
}
