// Package b holds the lockorder goldens that exercise the real repro
// blocking surfaces: a guardian receive parked inside a critical section
// (the PR 3 lost-wakeup class) and an at-most-once call issued under a
// lock.
package b

import (
	"sync"
	"time"

	"repro/internal/amo"
	"repro/internal/guardian"
	"repro/internal/xrep"
)

// Server guards its table with a mutex and talks to a guardian process.
type Server struct {
	mu    sync.Mutex
	table map[string]int
}

// WaitLocked parks the handler inside the critical section: any peer that
// needs mu to produce the awaited message deadlocks us.
func (s *Server) WaitLocked(pr *guardian.Process) {
	s.mu.Lock()
	m, _ := pr.Receive(time.Second) // want `guardian Process.Receive while b.Server.mu is held`
	_ = m
	s.mu.Unlock()
}

// CallLocked issues a remote at-most-once call — unbounded network wait —
// under the lock, through a helper so the whole-program composition is
// what finds it.
func (s *Server) CallLocked(c *amo.Caller) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refresh(c)
}

func (s *Server) refresh(c *amo.Caller) {
	r, err := c.Call(xrep.PortName{Node: "peer"}, "get") // want `amo Caller.Call while b.Server.mu is held`
	_, _ = r, err
}

// WaitUnlocked releases before parking: no diagnostic.
func (s *Server) WaitUnlocked(pr *guardian.Process) {
	s.mu.Lock()
	s.table["x"] = 1
	s.mu.Unlock()
	_, _ = pr.Receive(time.Second)
}
