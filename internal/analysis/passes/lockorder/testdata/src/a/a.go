// Package a holds the lockorder goldens that need no repro imports: the
// seeded PR 7 shape (a forced durable write under the runtime mutex),
// channel operations in critical sections, re-entrant acquisition through
// a call chain, and a two-class ordering cycle.
package a

import "sync"

// Log mimics durable.Log's shape: Append alongside Sync/AppendSync makes
// it log-like to the summaries.
type Log struct{ n int }

func (l *Log) Append(b []byte) error     { l.n++; return nil }
func (l *Log) Sync() error               { return nil }
func (l *Log) AppendSync(b []byte) error { l.n++; return nil }

// Runtime mirrors the replica runtime: a mutex guarding state plus a term
// log.
type Runtime struct {
	mu    sync.Mutex
	dirty bool
	log   *Log
}

// Persist is the seeded PR 7 deadlock shape: the public method takes the
// lock and the locked helper issues the forced write. The diagnostic lands
// on the write itself.
func (r *Runtime) Persist() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.persistLocked()
}

func (r *Runtime) persistLocked() error {
	return r.log.AppendSync(nil) // want `forced durable write Log.AppendSync while a.Runtime.mu is held`
}

// Flush blocks directly under the lock.
func (r *Runtime) Flush() {
	r.mu.Lock()
	r.log.Sync() // want `forced durable write Log.Sync while a.Runtime.mu is held`
	r.mu.Unlock()
}

// FlushUnlocked releases before forcing: no diagnostic.
func (r *Runtime) FlushUnlocked() {
	r.mu.Lock()
	r.dirty = false
	r.mu.Unlock()
	_ = r.log.Sync()
}

// Guarded uses the early-out idiom: the unlock before return is an exit
// path, so the fall-through Sync still runs under the lock.
func (r *Runtime) Guarded(ok bool) {
	r.mu.Lock()
	if !ok {
		r.mu.Unlock()
		return
	}
	r.log.Sync() // want `forced durable write Log.Sync while a.Runtime.mu is held`
	r.mu.Unlock()
}

// Notify parks on an unbuffered send inside the critical section.
func (r *Runtime) Notify(ch chan int) {
	r.mu.Lock()
	ch <- 1 // want `channel send with no default while a.Runtime.mu is held`
	r.mu.Unlock()
}

// TryNotify is the non-blocking variant: no diagnostic.
func (r *Runtime) TryNotify(ch chan int) {
	r.mu.Lock()
	select {
	case ch <- 1:
	default:
	}
	r.mu.Unlock()
}

// Outer re-acquires through a helper: sync.Mutex is not re-entrant.
func (r *Runtime) Outer() {
	r.mu.Lock()
	r.inner()
	r.mu.Unlock()
}

func (r *Runtime) inner() {
	r.mu.Lock() // want `a.Runtime.mu acquired again while already held`
	r.dirty = true
	r.mu.Unlock()
}

// Accepted shows a justified suppression: the write under the lock is
// deliberate and documented, so the finding is held down and neither it
// nor the directive trips the goldens.
func (r *Runtime) Accepted() {
	r.mu.Lock()
	//lint:allow lockorder startup-only path; nothing else can contend for mu before serving begins
	r.log.AppendSync(nil)
	r.mu.Unlock()
}

// ErrorArm pairs lock and unlock in the SAME statement list before the
// return: a straight-line pair, not an early-out, so the code after the
// branch (reached only when the branch is not taken) runs unlocked. No
// diagnostic — this is the Node.start error-arm shape.
func (r *Runtime) ErrorArm(fail bool, ch chan int) {
	if fail {
		r.mu.Lock()
		r.dirty = false
		r.mu.Unlock()
		return
	}
	ch <- 1
	_ = r.log.Sync()
}

// FlushHandoff passes lock ownership into a helper that is entered locked
// and returns unlocked (wal's flushAsLeader shape): the helper's forced
// write runs unlocked and the caller's re-lock is not re-entrant. No
// diagnostic.
func (r *Runtime) FlushHandoff() {
	r.mu.Lock()
	r.flushLeader()
	r.mu.Lock()
	r.dirty = false
	r.mu.Unlock()
}

// flushLeader is entered with mu held and leaves with it released.
func (r *Runtime) flushLeader() {
	r.mu.Unlock()
	_ = r.log.Sync()
}

// Meter and Gauge wrap a common interface, each dispatching through an
// inner field. CHA winds Meter's closure through Gauge back into
// Meter.Len, but under per-type lock classes that is a different instance
// wrapped below — the self-wrapping shape. No diagnostic.
type Counter interface{ Len() int }

// Meter guards its reads.
type Meter struct {
	mu    sync.Mutex
	inner Counter
}

// Len reads through the wrapped counter.
func (m *Meter) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner.Len()
}

// Gauge is an unguarded pass-through wrapper.
type Gauge struct{ inner Counter }

// Len reads through the wrapped counter.
func (g *Gauge) Len() int { return g.inner.Len() }

// Left and Right take the two classes in opposite orders: a cycle.
type Left struct {
	mu sync.Mutex
	r  *Right
}

type Right struct {
	mu sync.Mutex
	l  *Left
}

func (a *Left) Both() {
	a.mu.Lock()
	a.r.mu.Lock() // want `lock-order cycle: a.Left.mu → a.Right.mu → a.Left.mu`
	a.r.mu.Unlock()
	a.mu.Unlock()
}

func (b *Right) Both() {
	b.mu.Lock()
	b.l.mu.Lock()
	b.l.mu.Unlock()
	b.mu.Unlock()
}
