// Package lockorder reports blocking operations reached while a mutex is
// held, re-entrant acquisitions, and lock-order cycles, composed over the
// whole-program call graph.
//
// The paper's guardians serialize through message queues and hold no locks
// across waits; the Go reproduction reintroduces mutexes for intra-guardian
// state, and with them the two deadlock shapes that have actually bitten
// this repo: a forced durable write issued while the runtime mutex was
// held (the PR 7 term-log persist re-entry) and a receive path parked
// inside a critical section (the PR 3 lost-wakeup class). Both reduce to
// the same query — "can anything that parks the goroutine run while a
// lock is held?" — which a per-function scan composed over callgraph
// summaries answers across package boundaries.
//
// Three directions:
//
//   - blocking-while-held: a KBlock event (guardian Receive/Pause, amo
//     Call, sendprim call, forced durable write, channel op with no
//     default, WaitGroup wait) fires, directly or through calls, inside a
//     held region. Reported at the blocking operation, so one
//     //lint:allow covers every caller of an accepted pattern.
//   - re-entrant acquisition: a held lock class is acquired again
//     (sync.Mutex self-deadlocks; for RWMutex the read/write upgrade is
//     just as fatal).
//   - lock-order cycle: the global acquired-while-holding edge set
//     contains a cycle, so two goroutines taking the classes in opposite
//     orders can deadlock even though each path alone looks fine.
//
// Held regions follow source order with three refinements that remove the
// false-positive shapes whole-repo triage actually produced:
//
//   - exit-path releases: an unlock immediately followed by return/break/
//     continue/panic is an early-out and does not end the fall-through
//     held region — unless it sits in the same statement list as its
//     acquire, where the terminator leaves the pair's own block and there
//     is no locked fall-through.
//   - lock hand-off: a direct callee that releases a class before
//     acquiring it (wal's flushAsLeader, entered locked and returning
//     unlocked) ends the caller's held region at the call.
//   - self-wrapping dispatch: a composed re-entrancy reached through
//     interface dispatch back into the caller's own type is dropped —
//     per-type lock classes cannot distinguish instances, and a type
//     wrapped below itself (Wrapper inside replica.Store inside Wrapper)
//     holds a different lock object.
//
// Under go vet -vettool the pass sees one package at a time and composes
// only intra-package calls; the standalone driver runs the whole-program
// Finish direction.
package lockorder

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name:   "lockorder",
	Doc:    "report blocking operations under held mutexes, re-entrant acquisitions, and lock-order cycles",
	Run:    run,
	Finish: Finish,
}

func run(pass *analysis.Pass) error {
	g := callgraph.Of(pass)
	if pass.Program == nil {
		// vet mode: no Finish will run; analyze the single-package graph now.
		for _, d := range analyze(g) {
			pass.Report(d)
		}
	}
	return nil
}

// Finish analyzes the whole-program graph accumulated by every package's
// run.
func Finish(prog *analysis.Program) []analysis.Diagnostic {
	return analyze(callgraph.From(prog))
}

// edge records one acquired-while-holding observation: to was acquired
// while from was held, witnessed at site (reached from function fn).
type edge struct {
	site callgraph.Site
	fn   string
}

func analyze(g *callgraph.Graph) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	seen := make(map[string]bool)
	report := func(key string, d analysis.Diagnostic) {
		if !seen[key] {
			seen[key] = true
			diags = append(diags, d)
		}
	}

	edges := make(map[string]map[string]edge)
	addEdge := func(from, to, fn string, s callgraph.Site) {
		m := edges[from]
		if m == nil {
			m = make(map[string]edge)
			edges[from] = m
		}
		if _, ok := m[to]; !ok {
			m[to] = edge{site: s, fn: fn}
		}
	}

	keys := make([]string, 0, len(g.Funcs))
	for k := range g.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, key := range keys {
		sum := g.Funcs[key]
		held := make(map[string]bool)
		// suspended[class] holds the End of a terminating statement that
		// follows an exit-path unlock: events inside it (a call in the
		// return expression) run after the release, events past it are the
		// fall-through that re-enters the held region.
		suspended := make(map[string]token.Pos)
		// acqBlock[class] remembers the statement list the live acquire sits
		// in: an exit-path release in the SAME list is a straight-line pair
		// (the terminator leaves the block both live in), not an early-out,
		// so it ends the held region for good.
		acqBlock := make(map[string]token.Pos)
		var heldOrder []string // deterministic iteration
		heldAt := func(class string, pos token.Pos) bool {
			if !held[class] {
				return false
			}
			if end, ok := suspended[class]; ok && pos < end {
				return false
			}
			return true
		}
		for _, e := range sum.Events {
			switch e.Kind {
			case callgraph.KAcquire:
				for _, h := range heldOrder {
					if !heldAt(h, e.Pos) {
						continue
					}
					addEdge(h, e.Class, key, callgraph.Site{Detail: e.Detail, Pos: e.Pos})
					if h == e.Class {
						report(fmt.Sprintf("reent:%s@%d", e.Class, e.Pos), analysis.Diagnostic{
							Pos:     e.Pos,
							Message: fmt.Sprintf("%s acquired again while already held (in %s)", e.Class, g.Funcs[key].Name),
						})
					}
				}
				if !held[e.Class] {
					held[e.Class] = true
					heldOrder = append(heldOrder, e.Class)
				}
				acqBlock[e.Class] = e.Block
				delete(suspended, e.Class)
			case callgraph.KRelease:
				if e.Deferred {
					continue // holds to function end
				}
				if e.Exits && (e.Block == 0 || e.Block != acqBlock[e.Class]) {
					// Early-out release in a block nested below its acquire:
					// unlocked inside the terminator that follows, still
					// held on the fall-through. (A same-block pair has no
					// locked fall-through — the terminator leaves the block
					// the pair lives in — and releases for good.)
					suspended[e.Class] = e.TermEnd
					continue
				}
				held[e.Class] = false
			case callgraph.KBlock:
				for _, h := range heldOrder {
					if !heldAt(h, e.Pos) {
						continue
					}
					report(fmt.Sprintf("block:%s@%d", h, e.Pos), analysis.Diagnostic{
						Pos:     e.Pos,
						Message: fmt.Sprintf("%s while %s is held (in %s)", e.Detail, h, sum.Name),
					})
				}
			case callgraph.KCall, callgraph.KICall:
				callees := g.Resolve(e, key)
				if anyHeldAt(heldOrder, heldAt, e.Pos) {
					for _, callee := range callees {
						r := g.ReachOf(callee)
						if r == nil {
							continue
						}
						// Classes the callee releases on the caller's behalf
						// (lock hand-off): its own events run with them
						// unlocked, so they don't constrain its blocks.
						lead := make(map[string]bool)
						for _, c := range g.LeadReleases(callee) {
							lead[c] = true
						}
						blocks := sortedSites(r.Blocks)
						for _, s := range blocks {
							for _, h := range heldOrder {
								if !heldAt(h, e.Pos) || lead[h] {
									continue
								}
								report(fmt.Sprintf("block:%s@%d", h, s.Pos), analysis.Diagnostic{
									Pos:     s.Pos,
									Message: fmt.Sprintf("%s while %s is held (path %s → %s)", s.Detail, h, sum.Name, g.Chain(callee, s)),
								})
							}
						}
						acqs := make([]string, 0, len(r.Acquires))
						for class := range r.Acquires {
							acqs = append(acqs, class)
						}
						sort.Strings(acqs)
						for _, class := range acqs {
							s := r.Acquires[class]
							for _, h := range heldOrder {
								if !heldAt(h, e.Pos) || lead[h] {
									continue
								}
								addEdge(h, class, key, s)
								if h != class {
									continue
								}
								if e.Kind == callgraph.KICall &&
									(sum.OwnerType != "" && strings.HasPrefix(class, sum.OwnerType+".") ||
										e.SelfType != "" && strings.HasPrefix(class, e.SelfType+".")) {
									// Interface dispatch whose CHA closure
									// winds back into the caller's own type
									// (or the type whose field it dispatches
									// through): under per-type lock classes
									// that is a different instance wrapped
									// somewhere below, not the held lock —
									// the self-wrapping false-positive shape.
									continue
								}
								report(fmt.Sprintf("reent:%s@%d", class, s.Pos), analysis.Diagnostic{
									Pos:     s.Pos,
									Message: fmt.Sprintf("%s acquired again while already held (path %s → %s)", class, sum.Name, g.Chain(callee, s)),
								})
							}
						}
					}
				}
				// A direct callee that releases a class before acquiring it
				// was handed the lock and returned without it: the caller's
				// held region for that class ends at the call.
				if e.Kind == callgraph.KCall && len(callees) == 1 {
					for _, class := range g.LeadReleases(callees[0]) {
						if held[class] {
							held[class] = false
							delete(suspended, class)
						}
					}
				}
			}
		}
	}

	diags = append(diags, cycles(edges, seen)...)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

func anyHeldAt(order []string, heldAt func(string, token.Pos) bool, pos token.Pos) bool {
	for _, h := range order {
		if heldAt(h, pos) {
			return true
		}
	}
	return false
}

func sortedSites(m map[string]callgraph.Site) []callgraph.Site {
	out := make([]callgraph.Site, 0, len(m))
	for _, s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// cycles reports each lock-order cycle of length ≥ 2 once (self-edges are
// the re-entrant direction, reported during the scan).
func cycles(edges map[string]map[string]edge, seen map[string]bool) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	froms := make([]string, 0, len(edges))
	for f := range edges {
		froms = append(froms, f)
	}
	sort.Strings(froms)
	for _, from := range froms {
		tos := make([]string, 0, len(edges[from]))
		for t := range edges[from] {
			tos = append(tos, t)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if to == from {
				continue
			}
			path := pathBetween(edges, to, from)
			if path == nil {
				continue
			}
			// Cycle: from → to → … → from (path already ends at from).
			// Canonical key is the sorted class set so each cycle reports
			// once, at the edge observed from the smallest head.
			classes := append([]string{from}, path...)
			canon := append([]string(nil), classes[:len(classes)-1]...)
			sort.Strings(canon)
			key := "cycle:" + strings.Join(canon, "|")
			if seen[key] {
				continue
			}
			seen[key] = true
			e := edges[from][to]
			diags = append(diags, analysis.Diagnostic{
				Pos:     e.site.Pos,
				Message: fmt.Sprintf("lock-order cycle: %s (this acquisition closes the cycle)", strings.Join(classes, " → ")),
			})
		}
	}
	return diags
}

// pathBetween returns the node sequence from→…→to (inclusive of both) if
// one exists, nil otherwise. Deterministic BFS over sorted neighbors.
func pathBetween(edges map[string]map[string]edge, from, to string) []string {
	parent := map[string]string{from: ""}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == to {
			var path []string
			for n := to; n != ""; n = parent[n] {
				path = append([]string{n}, path...)
			}
			return path
		}
		next := make([]string, 0, len(edges[cur]))
		for n := range edges[cur] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if _, ok := parent[n]; !ok {
				parent[n] = cur
				queue = append(queue, n)
			}
		}
	}
	return nil
}
