// Package d is the transaction/scale-era golden input for the
// recvhygiene pass: the two receive shapes the 2PC coordinator and the
// bank's workload-driven audit port use — a deadline-bounded raw Receive
// vote loop and the audit handler chain — checked armed as the real
// loops are and in the unbounded/armless forms they must never regress
// to.
package d

import (
	"time"

	"repro/internal/guardian"
)

// voteLoop mirrors tpc's coordinator vote collection: a raw Receive
// bounded by the round deadline, with kill and timeout statuses handled.
// No diagnostic — the finite timeout IS the §3.4 timeout arm, and the
// presumed-abort round logic owns the silence.
func voteLoop(pr *guardian.Process, votes *guardian.Port, deadline time.Time, clock interface{ Now() time.Time }) bool {
	for {
		remain := deadline.Sub(clock.Now())
		if remain <= 0 {
			return false
		}
		m, status := pr.Receive(remain, votes)
		if status == guardian.RecvKilled {
			return false
		}
		if status != guardian.RecvOK {
			return false
		}
		switch m.Command {
		case "vote_yes":
			return true
		case "vote_no", guardian.FailureCommand:
			return false
		}
	}
}

// voteLoopUnbounded is the regression shape: the same collection with an
// infinite wait and no failure inspection — a participant that died
// before voting parks the coordinator forever, and the presumed-abort
// deadline never arrives.
func voteLoopUnbounded(pr *guardian.Process, votes *guardian.Port) []string {
	var got []string
	for {
		m, status := pr.Receive(guardian.Infinite, votes) // want `Receive with an Infinite timeout and no failure handling`
		if status != guardian.RecvOK {
			return got
		}
		got = append(got, m.Str(0))
	}
}

// auditLoop mirrors the branch's workload-driven audit port: the audit
// probe replies with the account census, and the failure arm catches the
// reply bouncing off an auditor that gave up before the answer arrived.
func auditLoop(ctx *guardian.Ctx) {
	guardian.NewReceiver(ctx.Ports[0]).
		When("audit", func(pr *guardian.Process, m *guardian.Message) {
			_ = pr.Send(m.ReplyTo, "audit_info", int64(0), int64(0))
		}).
		WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
			// The auditor died mid-probe; the census answer is void.
		}).
		Loop(ctx.Proc, nil)
}

// auditLoopArmless is the regression shape: an audit port with no
// failure arm never learns its census reply bounced, and the workload's
// synchronizing audit ping retries forever against a branch that already
// answered.
func auditLoopArmless(ctx *guardian.Ctx) {
	guardian.NewReceiver(ctx.Ports[0]). // want `neither a failure arm`
						When("audit", func(pr *guardian.Process, m *guardian.Message) {
			_ = pr.Send(m.ReplyTo, "audit_info", int64(0), int64(0))
		}).
		Loop(ctx.Proc, nil)
}
