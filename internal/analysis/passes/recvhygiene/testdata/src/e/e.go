// Package e is the stream-transport-era golden input for the
// recvhygiene pass: the receive shapes a connection manager uses when a
// guardian supervises a peer link — the heartbeat ack wait whose finite
// timeout IS the miss detector, and the link-event loop whose timeout
// arm drives redial — checked in their armed forms and in the unbounded
// or armless forms they must never regress to.
package e

import (
	"time"

	"repro/internal/guardian"
)

// ackWait mirrors the heartbeat discipline of a connection state
// machine: wait at most one heartbeat interval for the linktest ack,
// count a timeout as a miss, and declare the link dead after threshold
// consecutive misses. No diagnostic — the finite timeout is the §3.4
// timeout arm, and the miss counter owns what silence means.
func ackWait(pr *guardian.Process, acks *guardian.Port, interval time.Duration, threshold int) bool {
	misses := 0
	for misses < threshold {
		m, status := pr.Receive(interval, acks)
		if status == guardian.RecvTimeout {
			misses++
			continue
		}
		if status != guardian.RecvOK || m.IsFailure() {
			return false
		}
		if m.Command == "linktest_ack" {
			return true
		}
	}
	return false
}

// ackWaitUnbounded is the regression shape: the same wait with an
// infinite timeout and no failure inspection. A peer that resets after
// the linktest leaves no ack to deliver, and the supervisor parks
// forever on a link it was supposed to pronounce dead.
func ackWaitUnbounded(pr *guardian.Process, acks *guardian.Port) bool {
	for {
		m, status := pr.Receive(guardian.Infinite, acks) // want `Receive with an Infinite timeout and no failure handling`
		if status != guardian.RecvOK {
			return false
		}
		if m.Str(0) == "linktest_ack" {
			return true
		}
	}
}

// linkEvents mirrors the connection manager's event loop: established
// and closed notifications arrive as messages, the timeout arm fires the
// idle check, and the failure arm catches a notification bouncing off a
// watcher that detached mid-teardown.
func linkEvents(ctx *guardian.Ctx, idleEvery time.Duration) {
	guardian.NewReceiver(ctx.Ports[0]).
		When("established", func(pr *guardian.Process, m *guardian.Message) {
			_ = pr.Send(m.ReplyTo, "watching")
		}).
		When("closed", func(pr *guardian.Process, m *guardian.Message) {
			_ = pr.Send(m.ReplyTo, "redialing")
		}).
		WhenTimeout(idleEvery, func(pr *guardian.Process) {
			// Idle check: tear down links whose data clock went stale.
		}).
		Loop(ctx.Proc, nil)
}

// linkEventsArmless is the regression shape: a manager with neither arm
// never runs its idle check — an unused link stays up forever — and
// never learns a notification bounced.
func linkEventsArmless(ctx *guardian.Ctx) {
	guardian.NewReceiver(ctx.Ports[0]). // want `neither a failure arm`
						When("established", func(pr *guardian.Process, m *guardian.Message) {
			_ = pr.Send(m.ReplyTo, "watching")
		}).
		Loop(ctx.Proc, nil)
}
