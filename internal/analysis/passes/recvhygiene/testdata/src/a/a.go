// Package a is the golden input for the recvhygiene pass.
package a

import (
	"time"

	"repro/internal/guardian"
)

func loops(ctx *guardian.Ctx) {
	// Neither arm: lost messages and failure reports go unseen.
	guardian.NewReceiver(ctx.Ports[0]). // want `neither a failure arm`
						When("m", func(pr *guardian.Process, m *guardian.Message) {}).
						Loop(ctx.Proc, nil)

	guardian.NewReceiver(ctx.Ports[0]).
		When("m", func(pr *guardian.Process, m *guardian.Message) {}).
		WhenFailure(func(pr *guardian.Process, text string, m *guardian.Message) {}).
		Loop(ctx.Proc, nil)

	guardian.NewReceiver(ctx.Ports[0]).
		When("m", func(pr *guardian.Process, m *guardian.Message) {}).
		WhenTimeout(time.Second, func(pr *guardian.Process) {}).
		Loop(ctx.Proc, nil)
}

func assigned(ctx *guardian.Ctx) {
	armless := guardian.NewReceiver(ctx.Ports[0]). // want `neither a failure arm`
							When("m", func(pr *guardian.Process, m *guardian.Message) {})
	armless.Loop(ctx.Proc, nil)

	// Arms added through the variable, chained on a call result.
	armed := guardian.NewReceiver(ctx.Ports[0]).
		When("m", func(pr *guardian.Process, m *guardian.Message) {})
	armed.WhenFailure(func(pr *guardian.Process, text string, m *guardian.Message) {}).
		WhenTimeout(time.Second, func(pr *guardian.Process) {})
	armed.Loop(ctx.Proc, nil)

	// The receiver escapes; arms may be added elsewhere.
	fugitive := guardian.NewReceiver(ctx.Ports[0])
	arm(fugitive)
	fugitive.Loop(ctx.Proc, nil)
}

func arm(r *guardian.Receiver) {
	r.WhenFailure(func(pr *guardian.Process, text string, m *guardian.Message) {})
}

func allowed(ctx *guardian.Ctx) {
	//lint:allow recvhygiene golden: lossless in-memory world drives this loop
	guardian.NewReceiver(ctx.Ports[0]).
		When("m", func(pr *guardian.Process, m *guardian.Message) {}).
		Loop(ctx.Proc, nil)
}

// block waits forever and never looks at failure: a lost message wedges
// the process for good.
func block(pr *guardian.Process, p *guardian.Port) {
	m, _ := pr.Receive(guardian.Infinite, p) // want `Infinite timeout and no failure handling`
	_ = m
}

// blockChecked waits forever but routes failure reports.
func blockChecked(pr *guardian.Process, p *guardian.Port) {
	m, st := pr.Receive(guardian.Infinite, p)
	if st == guardian.RecvOK && m.IsFailure() {
		return
	}
}

// bounded carries the timeout arm in the call itself.
func bounded(pr *guardian.Process, p *guardian.Port) {
	_, _ = pr.Receive(time.Second, p)
}
