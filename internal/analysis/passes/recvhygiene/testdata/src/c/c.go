// Package c is the ring-era golden input for the recvhygiene pass: the
// receive shapes the consistent-hash ring introduced — the nameserver's
// versioned ring-membership handlers and the shard branch's handoff
// protocol — checked in both the armed form the real loops use and the
// armless forms they must never regress to.
package c

import (
	"time"

	"repro/internal/bank"
	"repro/internal/guardian"
)

// membershipLoop mirrors the nameserver's ring-membership service: the
// propose/commit/get handlers with the §3.4 failure arm for replies
// bounced off a caller that died between asking and hearing.
func membershipLoop(ctx *guardian.Ctx) {
	nop := func(*guardian.Process, *guardian.Message) {}
	guardian.NewReceiver(ctx.Ports[0]).
		When("ring_propose", nop).
		When("ring_commit", nop).
		When("ring_get", nop).
		WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
			// A bounced reply means the proposer crashed; the staged epoch
			// stays for whoever re-drives it.
		}).
		Loop(ctx.Proc, nil)
}

// membershipLoopArmless is the regression shape: membership handlers
// with no failure arm drop the report that a ring reply bounced, and a
// rebalance driver waiting on that reply retries forever against a
// guardian that already answered.
func membershipLoopArmless(ctx *guardian.Ctx) {
	nop := func(*guardian.Process, *guardian.Message) {}
	guardian.NewReceiver(ctx.Ports[0]). // want `neither a failure arm`
						When("ring_propose", nop).
						When("ring_commit", nop).
						When("ring_get", nop).
						Loop(ctx.Proc, nil)
}

// handoffLoop mirrors the shard branch's migration port: pull, install,
// the snapshot stream, the cut handshake and the epoch broadcast, with
// the failure arm present for sends bounced off a peer that died inside
// its handoff window.
func handoffLoop(ctx *guardian.Ctx) {
	nop := func(*guardian.Process, *guardian.Message) {}
	guardian.NewReceiver(ctx.Ports[0]).
		When("handoff_pull", nop).
		When("handoff_install", nop).
		When("handoff_status", nop).
		When("ring_update", nop).
		When("seed", nop).
		WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
			// The rebalance driver polls handoff_status; a bounced reply is
			// its problem to re-ask, not ours to track.
		}).
		Loop(ctx.Proc, nil)
}

// snapshotPump is the destination's pull of the source's snapshot
// stream: timeout-armed, because a source that dies mid-stream must not
// wedge the destination's receive process forever.
func snapshotPump(ctx *guardian.Ctx) {
	reply, err := ctx.G.NewPort(bank.MigrateReplyType, 8)
	if err != nil {
		return
	}
	nop := func(*guardian.Process, *guardian.Message) {}
	guardian.NewReceiver(reply).
		When("snap_meta", nop).
		When("snap_part", nop).
		When("cut_done", nop).
		When("cut_busy", nop).
		WhenTimeout(250*time.Millisecond, func(pr *guardian.Process) {
			// Source went quiet mid-handoff: abandon this attempt; the
			// driver's re-issued pull starts a fresh one.
		}).
		Loop(ctx.Proc, nil)
}

// snapshotPumpArmless is the regression shape: a snapshot pull with
// neither arm waits forever on parts a crashed source will never send.
func snapshotPumpArmless(ctx *guardian.Ctx) {
	reply, err := ctx.G.NewPort(bank.MigrateReplyType, 8)
	if err != nil {
		return
	}
	nop := func(*guardian.Process, *guardian.Message) {}
	guardian.NewReceiver(reply). // want `neither a failure arm`
					When("snap_meta", nop).
					When("snap_part", nop).
					Loop(ctx.Proc, nil)
}

// installBlocked is the driver-side regression shape: waiting forever
// for a migrate ack a killed destination will never send, with no
// failure handling at all.
func installBlocked(pr *guardian.Process, dest guardian.Port) {
	m, _ := pr.Receive(guardian.Infinite, &dest) // want `Infinite timeout and no failure handling`
	_ = m
}
