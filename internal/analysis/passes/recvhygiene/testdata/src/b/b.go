// Package b is the replication-era golden input for the recvhygiene
// pass: the receive shapes the replica runtime introduced — a control
// port multiplexing the replication stream, the election protocol and
// name-service replies — checked in both the armed form the real
// receive loop uses and the armless forms it must never regress to.
package b

import (
	"time"

	"repro/internal/guardian"
	"repro/internal/nameserv"
	"repro/internal/replica"
)

// replicationLoop mirrors replica.Runtime.receiveLoop: one receiver over
// the control port plus the name-service reply port, every protocol
// message armed, and the §3.4 failure arm present for bounced sends to
// crashed members.
func replicationLoop(ctx *guardian.Ctx) {
	nsReply, err := ctx.G.NewPort(nameserv.ClientReplyType, 16)
	if err != nil {
		return
	}
	nop := func(*guardian.Process, *guardian.Message) {}
	guardian.NewReceiver(ctx.Ports[0], nsReply).
		When("rep_append", nop).
		When("rep_checkpoint", nop).
		When("rep_ack", nop).
		When("rep_heartbeat", nop).
		When("rep_fork", nop).
		When("rep_vote_req", nop).
		When("rep_vote", nop).
		When("rep_whois", nop).
		When(nameserv.OutcomeBound, nop).
		When(nameserv.OutcomeDenied, nop).
		WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
			// Heartbeat silence, not bounces, is the failure detector.
		}).
		Loop(ctx.Proc, nil)
}

// electionLoopArmless is the regression shape: an election receiver with
// no failure arm and no timeout arm silently drops the report that a
// vote request bounced off a dead member — and a candidate that never
// times out waits forever on votes that may never come.
func electionLoopArmless(ctx *guardian.Ctx) {
	nop := func(*guardian.Process, *guardian.Message) {}
	guardian.NewReceiver(ctx.Ports[0]). // want `neither a failure arm`
						When("rep_vote_req", nop).
						When("rep_vote", nop).
						Loop(ctx.Proc, nil)
}

// ackLoop is the follower-ack shape: no failure arm, but the timeout arm
// doubles as the heartbeat-silence election trigger, which satisfies the
// pass.
func ackLoop(ctx *guardian.Ctx) {
	nop := func(*guardian.Process, *guardian.Message) {}
	guardian.NewReceiver(ctx.Ports[0]).
		When("rep_append", nop).
		When("rep_ack", nop).
		WhenTimeout(75*time.Millisecond, func(pr *guardian.Process) {
			// Leader silence: stand for election.
		}).
		Loop(ctx.Proc, nil)
}

// whoisBlocked is the client-side regression shape: asking a member who
// leads, then waiting forever for an answer a crashed member will never
// send, with no failure handling at all.
func whoisBlocked(pr *guardian.Process, member string, reply *guardian.Port) {
	_ = pr.Send(replica.PortAt(member), "rep_whois", reply.Name())
	m, _ := pr.Receive(guardian.Infinite, reply) // want `Infinite timeout and no failure handling`
	_ = m
}

// whoisChecked waits forever but routes the failure report, so a bounced
// rep_whois is seen rather than swallowed.
func whoisChecked(pr *guardian.Process, member string, reply *guardian.Port) {
	_ = pr.Send(replica.PortAt(member), "rep_whois", reply.Name())
	m, st := pr.Receive(guardian.Infinite, reply)
	if st == guardian.RecvOK && m.IsFailure() {
		return
	}
}
