// Package recvhygiene enforces the receive statement's mandatory arms.
// The paper's receive construct (§3.4) carries two implicit lines beyond
// the command arms: `when failure (x: string)` — the system's report that
// a send could not be honored — and `when timeout <exp>` — the only
// defense a best-effort network offers against silent loss. A receive
// loop with neither arm waits forever on messages that may never come and
// throws failure reports away unseen.
//
// Two shapes are checked:
//
//   - a guardian.NewReceiver(...) builder chain on which neither
//     WhenFailure nor WhenTimeout is ever invoked before the receiver is
//     run (chains that escape the enclosing function are given the
//     benefit of the doubt);
//   - a direct (*Process).Receive call with the Infinite timeout in a
//     function that never inspects failure (IsFailure, FailureText, or
//     the message Command) — an unbounded wait with no loss handling.
//
// Receivers that genuinely want neither arm (e.g. a test driving a
// lossless in-memory world) take //lint:allow recvhygiene with a reason.
package recvhygiene

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/guardianapi"
)

// Analyzer is the pass.
var Analyzer = &analysis.Analyzer{
	Name: "recvhygiene",
	Doc:  "flag receive statements lacking both the failure arm and the timeout arm",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if guardianapi.FindPackage(pass.Pkg, guardianapi.Guardian) == nil && pass.Pkg.Path() != guardianapi.Guardian {
		return nil
	}
	for _, f := range pass.Files {
		parents := collectParents(f)
		fns := collectFuncs(f)
		handled := make(map[*ast.CallExpr]bool) // NewReceiver calls already covered by a longer chain
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if root, methods := chainOverNewReceiver(pass, call); root != nil {
				if !handled[root] {
					handled[root] = true
					checkChain(pass, root, call, methods, parents)
				}
				return true
			}
			checkInfiniteReceive(pass, call, fns)
			return true
		})
	}
	return nil
}

// chainOverNewReceiver decomposes call as NewReceiver(...).M1(...).M2(...)
// and returns the bottom NewReceiver call plus the chained method names,
// or nil when call is not such a chain.
func chainOverNewReceiver(pass *analysis.Pass, call *ast.CallExpr) (*ast.CallExpr, []string) {
	var methods []string
	for {
		pkg, _, name := guardianapi.Callee(pass.TypesInfo, call)
		if name == "NewReceiver" && (pkg == guardianapi.Guardian || pkg == guardianapi.Facade) {
			return call, methods
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil, nil
		}
		inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
		if !ok {
			return nil, nil
		}
		methods = append(methods, sel.Sel.Name)
		call = inner
	}
}

// checkChain inspects the maximal chain built over one NewReceiver call
// and everything later done with its value.
func checkChain(pass *analysis.Pass, root, outer *ast.CallExpr, methods []string, parents map[ast.Node]ast.Node) {
	have := make(map[string]bool, len(methods))
	for _, m := range methods {
		have[m] = true
	}

	// Where does the chain's value go?
	switch p := parents[outer].(type) {
	case *ast.ExprStmt:
		// Fully consumed here.
	case *ast.AssignStmt:
		// r := NewReceiver(...)... — collect later method calls on r, and
		// bail out if r escapes (arms may be added elsewhere).
		obj := assignedVar(pass, p, outer)
		if obj == nil {
			return
		}
		fn := enclosingFunc(parents, outer)
		if fn == nil {
			return
		}
		escaped := false
		ast.Inspect(fn, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != obj {
				return true
			}
			if sel, ok := parents[id].(*ast.SelectorExpr); ok && sel.X == id {
				if call, ok := parents[sel].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
					have[sel.Sel.Name] = true
					// r.When(...).WhenFailure(...): follow the chain built
					// on the call's result too.
					for {
						s2, ok := parents[call].(*ast.SelectorExpr)
						if !ok {
							break
						}
						c2, ok := parents[s2].(*ast.CallExpr)
						if !ok || ast.Unparen(c2.Fun) != s2 {
							break
						}
						have[s2.Sel.Name] = true
						call = c2
					}
					return true
				}
			}
			escaped = true
			return true
		})
		if escaped {
			return
		}
	default:
		// Passed along, returned, stored: arms may be added elsewhere.
		return
	}

	if have["WhenFailure"] || have["WhenTimeout"] {
		return
	}
	pass.Reportf(root.Pos(),
		"receive has neither a failure arm (WhenFailure) nor a timeout arm (WhenTimeout) — best-effort delivery needs one (§3.4)")
}

// assignedVar returns the variable the chain value is bound to, or nil for
// multi-assignments and non-identifier targets.
func assignedVar(pass *analysis.Pass, as *ast.AssignStmt, rhs ast.Expr) types.Object {
	for i, r := range as.Rhs {
		if r != rhs || i >= len(as.Lhs) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Uses[id]
		}
	}
	return nil
}

// checkInfiniteReceive flags pr.Receive(Infinite, ...) in functions with
// no failure handling at all.
func checkInfiniteReceive(pass *analysis.Pass, call *ast.CallExpr, fns []ast.Node) {
	pkg, recv, name := guardianapi.Callee(pass.TypesInfo, call)
	if pkg != guardianapi.Guardian || recv != "Process" || name != "Receive" || len(call.Args) == 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil {
		return
	}
	if v, exact := constantInt64(tv); !exact || v >= 0 {
		return // finite timeout (or poll); the timeout arm exists
	}
	fn := innermostFunc(fns, call.Pos())
	if fn == nil || handlesFailure(pass, fn) {
		return
	}
	pass.Reportf(call.Pos(),
		"Receive with an Infinite timeout and no failure handling in scope — a lost message blocks this process forever (§3.4)")
}

func constantInt64(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// handlesFailure reports whether fn inspects message failure in any
// accepted form.
func handlesFailure(pass *analysis.Pass, fn ast.Node) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			pkg, recv, name := guardianapi.Callee(pass.TypesInfo, n)
			if pkg == guardianapi.Guardian && recv == "Message" && (name == "IsFailure" || name == "FailureText") {
				found = true
			}
		case *ast.SelectorExpr:
			// m.Command comparisons, or the FailureCommand constant.
			if obj := pass.TypesInfo.Uses[n.Sel]; obj != nil && obj.Pkg() != nil {
				if obj.Pkg().Path() == guardianapi.Guardian && obj.Name() == "FailureCommand" {
					found = true
				}
			}
			if n.Sel.Name == "Command" {
				if t := pass.TypesInfo.Types[n.X].Type; t != nil && guardianapi.IsNamed(t, guardianapi.Guardian, "Message") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// --- small AST bookkeeping ---

// collectParents builds the child→parent map for one file.
func collectParents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// collectFuncs lists every function body node in the file.
func collectFuncs(f *ast.File) []ast.Node {
	var out []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			out = append(out, n)
		}
		return true
	})
	return out
}

// innermostFunc returns the smallest function node containing pos.
func innermostFunc(fns []ast.Node, pos token.Pos) ast.Node {
	var best ast.Node
	for _, fn := range fns {
		if fn.Pos() <= pos && pos < fn.End() {
			if best == nil || (fn.Pos() >= best.Pos() && fn.End() <= best.End()) {
				best = fn
			}
		}
	}
	return best
}

// enclosingFunc walks the parent map to the nearest function node.
func enclosingFunc(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return p
		}
	}
	return nil
}
