package recvhygiene_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/recvhygiene"
)

func TestRecvHygiene(t *testing.T) {
	analysistest.Run(t, recvhygiene.Analyzer, "a", "b", "c", "d", "e")
}
