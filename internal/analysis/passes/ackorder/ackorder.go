// Package ackorder enforces the durability-before-acknowledgement order on
// guardian handler paths: a reply that tells the client "done" must be
// dominated by the forced write that makes the mutation durable.
//
// This is the paper's §2.2 stability obligation made mechanical. Liskov's
// guardians promise that once a reply escapes the guardian, a crash-and-
// recover cannot unhappen the acknowledged effect; the repo's incident
// history (the PR 5 risk marker, the PR 6 quarantine window, the PR 8
// cut-before-install reply) is three variations of the same violation —
// an ack racing ahead of the Sync.
//
// The pass is path-insensitive BY DESIGN: it scans each function's
// summarized events in source order and composes callee facts over the
// call graph, so an error arm that skips the Sync and a happy path that
// replies early look the same — both put a reply between an append and
// the forced write that covers it. Precision comes from the event model,
// not a CFG: AppendSync counts as sync-only (the atomic log-then-ack
// primitive leaves nothing pending), and only sends whose destination
// derives from a message's ReplyTo (or amo.SendReply) count as replies,
// so internal protocol traffic does not trip it.
//
// Two directions:
//
//   - reply-before-sync: a reply fires, directly or through a callee,
//     while an append is still volatile.
//   - sync-skipped: a replying handler path ends with an append that no
//     reachable Sync ever forces — the arm acked and left the mutation
//     volatile forever.
//
// Under go vet -vettool the pass composes intra-package calls only; the
// standalone driver's Finish direction composes across packages.
package ackorder

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the ackorder pass.
var Analyzer = &analysis.Analyzer{
	Name:   "ackorder",
	Doc:    "require guardian replies to be dominated by the Sync that makes the acknowledged mutation durable",
	Run:    run,
	Finish: Finish,
}

func run(pass *analysis.Pass) error {
	g := callgraph.Of(pass)
	if pass.Program == nil {
		for _, d := range analyze(g) {
			pass.Report(d)
		}
	}
	return nil
}

// Finish analyzes the whole-program graph accumulated by every package's
// run.
func Finish(prog *analysis.Program) []analysis.Diagnostic {
	return analyze(callgraph.From(prog))
}

func analyze(g *callgraph.Graph) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	seen := make(map[string]bool)
	report := func(key string, d analysis.Diagnostic) {
		if !seen[key] {
			seen[key] = true
			diags = append(diags, d)
		}
	}

	keys := make([]string, 0, len(g.Funcs))
	for k := range g.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, key := range keys {
		sum := g.Funcs[key]
		var (
			pending  = false
			pendSite callgraph.Site
			hasReply = false
		)
		for _, e := range sum.Events {
			switch e.Kind {
			case callgraph.KAppend:
				pending = true
				pendSite = callgraph.Site{Detail: e.Detail, Pos: e.Pos}
			case callgraph.KSync:
				pending = false
			case callgraph.KReply:
				hasReply = true
				if pending {
					report(fmt.Sprintf("reply@%d", e.Pos), analysis.Diagnostic{
						Pos:     e.Pos,
						Message: fmt.Sprintf("reply (%s) sent before the pending %s is forced durable (in %s)", e.Detail, pendSite.Detail, sum.Name),
					})
				}
			case callgraph.KCall, callgraph.KICall:
				anySync, anyEndsPending := false, false
				for _, callee := range g.Resolve(e, key) {
					cr := g.ReachOf(callee)
					if cr == nil {
						continue
					}
					if cr.HasReply {
						hasReply = true
					}
					if pending && cr.ReplyBeforeSync {
						s := cr.ReplyBeforeSyncSite
						report(fmt.Sprintf("reply@%d", s.Pos), analysis.Diagnostic{
							Pos:     s.Pos,
							Message: fmt.Sprintf("reply (%s) sent before the pending %s is forced durable (path %s → %s)", s.Detail, pendSite.Detail, sum.Name, g.Chain(callee, s)),
						})
					}
					if cr.HasSync {
						anySync = true
					}
					if cr.EndsPending {
						anyEndsPending = true
						pendSite = callgraph.Site{Detail: cr.EndsPendingSite.Detail, Pos: cr.EndsPendingSite.Pos}
					}
				}
				// A callee that syncs covers the caller's earlier appends;
				// any callee that leaves its own append dangling re-opens
				// the window.
				if anySync {
					pending = false
				}
				if anyEndsPending {
					pending = true
				}
			}
		}
		if pending && hasReply {
			report(fmt.Sprintf("dangling@%d", pendSite.Pos), analysis.Diagnostic{
				Pos:     pendSite.Pos,
				Message: fmt.Sprintf("%s on a replying handler path is never forced durable (sync-skipped arm in %s)", pendSite.Detail, sum.Name),
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}
