// Package a holds the ackorder goldens: the PR 8 cut-before-install reply
// shape, the cross-function window, the sync-skipped arm, and the clean
// orderings that must stay silent.
package a

import (
	"repro/internal/amo"
	"repro/internal/guardian"
	"repro/internal/xrep"
)

// Wal mimics durable.Log's shape so the summaries treat it as the durable
// boundary.
type Wal struct{ n int }

func (w *Wal) Append(b []byte) error     { w.n++; return nil }
func (w *Wal) Sync() error               { return nil }
func (w *Wal) AppendSync(b []byte) error { w.n++; return nil }

// HandleCut is the seeded PR 8 shape: the handoff handler logs the cut
// record, acks the mover, and only then forces the log — a crash between
// ack and sync forgets an acknowledged cut.
func HandleCut(pr *guardian.Process, m *guardian.Message, w *Wal) {
	_ = w.Append([]byte("cut"))
	amo.SendReply(pr, m, "ok", nil) // want `reply \(amo.SendReply\) sent before the pending Wal.Append is forced durable`
	_ = w.Sync()
}

// HandleCutOrdered forces the write first: clean.
func HandleCutOrdered(pr *guardian.Process, m *guardian.Message, w *Wal) {
	_ = w.Append([]byte("cut"))
	_ = w.Sync()
	amo.SendReply(pr, m, "ok", nil)
}

// HandleCutAtomic uses the log-then-ack primitive, which leaves nothing
// pending: clean.
func HandleCutAtomic(pr *guardian.Process, m *guardian.Message, w *Wal) {
	_ = w.AppendSync([]byte("cut"))
	amo.SendReply(pr, m, "ok", nil)
}

// mutate is the helper that leaves the append pending for its caller.
func mutate(w *Wal) {
	_ = w.Append([]byte("op"))
}

// ack replies through a raw send to the message's reply port. On its own
// it is clean; reached from HandleSplit with an append pending, its send
// is the finding.
func ack(pr *guardian.Process, m *guardian.Message) {
	_ = pr.Send(m.ReplyTo, "done") // want `reply \(Process.Send to a reply port\) sent before the pending Wal.Append is forced durable`
}

// HandleSplit opens the window across two helpers: mutate leaves the
// append volatile and ack's send escapes before any sync.
func HandleSplit(pr *guardian.Process, m *guardian.Message, w *Wal) {
	mutate(w)
	ack(pr, m)
	_ = w.Sync()
}

// HandleSkipped acks first and then mutates without ever forcing the
// write: the sync-skipped arm.
func HandleSkipped(pr *guardian.Process, m *guardian.Message, w *Wal) {
	amo.SendReply(pr, m, "ok", nil)
	_ = w.Append([]byte("late")) // want `Wal.Append on a replying handler path is never forced durable`
}

// HandleInternal sends protocol traffic (not a reply port) while pending:
// internal forwarding is not an ack, so this stays silent.
func HandleInternal(pr *guardian.Process, m *guardian.Message, w *Wal, peer xrep.PortName) {
	_ = w.Append([]byte("op"))
	_ = pr.Send(peer, "replicate")
	_ = w.Sync()
}

// HandleAccepted documents a deliberate early ack: the effect is
// reconstructible from the peer, so the suppression is justified.
func HandleAccepted(pr *guardian.Process, m *guardian.Message, w *Wal) {
	_ = w.Append([]byte("hint"))
	//lint:allow ackorder hint record is advisory; recovery rebuilds it from the peer snapshot
	amo.SendReply(pr, m, "ok", nil)
	_ = w.Sync()
}
