package ackorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/ackorder"
)

func TestAckOrder(t *testing.T) {
	analysistest.RunWithFinish(t, ackorder.Analyzer, ackorder.Finish, "a")
}
