// Package load type-checks packages for the guardian analysis passes
// without golang.org/x/tools: it parses source with go/parser and resolves
// imports from compiler export data, the same inputs a go vet -vettool
// driver is handed. Two front ends feed it — the standalone `go list
// -export` driver (List) and the unitchecker config protocol (package
// unit) — both reducing to Check.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// Unit is one parsed, type-checked package ready for analysis.
type Unit struct {
	// ID is the build-system identifier (go list ImportPath, which for
	// test variants carries a " [pkg.test]" suffix).
	ID string
	// Fset maps the unit's positions.
	Fset *token.FileSet
	// Files are the parsed syntax trees, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds type-checker results.
	Info *types.Info
}

// Check parses filenames and type-checks them as package path, resolving
// imports through imp. It is the common trunk of both drivers.
func Check(fset *token.FileSet, id, path string, filenames []string, imp types.Importer) (*Unit, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", id, err)
	}
	return &Unit{ID: id, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// ExportImporter resolves imports from compiler export data. Source import
// paths are first translated through importMap (test variants of a package
// shadow the plain build), then looked up in packageFile, which maps the
// translated path to an export-data file.
func ExportImporter(fset *token.FileSet, importMap map[string]string, packageFile map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &unsafeAware{importer.ForCompiler(fset, "gc", lookup)}
}

// unsafeAware wraps the gc importer with the special case the export-data
// path cannot serve: package unsafe has no export file.
type unsafeAware struct{ imp types.Importer }

func (u *unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.imp.Import(path)
}

// ListPkg is the subset of `go list -json` output the driver consumes.
type ListPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

// List runs `go list -test -export -deps -json` over patterns in dir and
// returns every listed package keyed by ImportPath. Export data is built
// as a side effect, so the returned descriptors are ready for
// ExportImporter.
func List(dir string, patterns ...string) (map[string]*ListPkg, []string, error) {
	args := []string{"list", "-e", "-test", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly,ForTest,ImportMap,Incomplete,Error"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	pkgs := make(map[string]*ListPkg)
	var order []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs[p.ImportPath] = &p
		order = append(order, p.ImportPath)
	}
	return pkgs, order, nil
}

// Targets selects, from a List result, the units to analyze (everything
// that was matched by the patterns rather than pulled in as a dependency),
// mirroring go vet's choices: test variants replace their plain package
// (their file set is a superset), external test packages are analyzed in
// their own right, and generated .test mains are skipped.
func Targets(pkgs map[string]*ListPkg, order []string) []*ListPkg {
	// A variant "p [p.test]" supersedes plain p.
	superseded := make(map[string]bool)
	for _, id := range order {
		p := pkgs[id]
		if p.ForTest != "" && !p.DepOnly && !strings.HasSuffix(p.ImportPath, ".test") &&
			!strings.HasPrefix(p.ImportPath, p.ForTest+"_test ") {
			superseded[p.ForTest] = true
		}
	}
	var out []*ListPkg
	for _, id := range order {
		p := pkgs[id]
		switch {
		case p.DepOnly, p.Standard:
		case strings.HasSuffix(p.ImportPath, ".test"):
		case len(p.GoFiles) == 0:
		case p.ForTest == "" && superseded[p.ImportPath]:
		default:
			out = append(out, p)
		}
	}
	return out
}

// PackageFiles builds the path→export-file map for one unit's importer
// from the whole List result.
func PackageFiles(pkgs map[string]*ListPkg) map[string]string {
	m := make(map[string]string, len(pkgs))
	for id, p := range pkgs {
		if p.Export != "" {
			m[id] = p.Export
		}
	}
	return m
}

// CheckListed type-checks one go list package against the run's export
// map.
func CheckListed(fset *token.FileSet, p *ListPkg, packageFile map[string]string) (*Unit, error) {
	if len(p.CgoFiles) > 0 {
		return nil, fmt.Errorf("%s: cgo packages are not supported", p.ImportPath)
	}
	files := make([]string, 0, len(p.GoFiles))
	for _, f := range p.GoFiles {
		if !strings.HasPrefix(f, "/") {
			f = p.Dir + "/" + f
		}
		files = append(files, f)
	}
	// The type-checker wants the bare package path; strip a test-variant
	// suffix.
	path := p.ImportPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	imp := ExportImporter(fset, p.ImportMap, packageFile)
	return Check(fset, p.ImportPath, path, files, imp)
}
