package analysis_test

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// allowRe matches a //lint:allow directive anywhere in a line, capturing
// the pass name and whatever justification follows it. The pass must be
// an identifier, and a directive preceded by a quote is a string literal
// (allow.go's own allowPrefix), not a directive.
var allowRe = regexp.MustCompile(`("?)//lint:allow\s+([A-Za-z][A-Za-z0-9]*)\b[ \t]*(.*)$`)

// TestAllowsCarryJustifications walks every Go source file in the module
// and fails on any //lint:allow directive with no written reason. The
// standalone driver reports these too (unit.ReasonlessAllows), but only
// when it runs; this test makes the rule unskippable — a suppression is a
// reviewed decision, and the review lives in the justification text.
func TestAllowsCarryJustifications(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	var bad []string
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			// Golden fixtures deliberately include malformed directives the
			// framework's own tests assert on.
			if info.Name() == "testdata" || strings.HasPrefix(info.Name(), ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		for line := 1; sc.Scan(); line++ {
			m := allowRe.FindStringSubmatch(sc.Text())
			if m == nil || m[1] == `"` {
				continue
			}
			if strings.TrimSpace(m[3]) == "" {
				rel, _ := filepath.Rel(root, path)
				bad = append(bad, rel+":"+strconv.Itoa(line)+": //lint:allow "+m[2]+" has no justification")
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("walking module: %v", err)
	}
	for _, b := range bad {
		t.Error(b)
	}
}

// moduleRoot finds the directory holding go.mod, walking up from the
// test's working directory.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
