// Package analysistest runs an analyzer over golden packages under
// testdata/src and checks its diagnostics against // want comments, in the
// spirit of golang.org/x/tools/go/analysis/analysistest (reimplemented on
// the standard library; see package analysis for why).
//
// A golden file marks each expected finding on its own line:
//
//	pr.Send(dst, "put", &v) // want `address-bearing value in message`
//
// The comment holds one or more Go string literals, each a regexp that must
// match one diagnostic reported on that line. Diagnostics with no matching
// want, and wants with no matching diagnostic, fail the test. //lint:allow
// directives in golden files go through the same suppression filter as the
// real drivers, so the allowlist behavior is testable too.
//
// Golden packages import the real repro packages; imports resolve from
// export data produced by `go list -export -deps` at the module root. The
// testdata/src layout keeps the golden sources outside the module's own
// build graph.
package analysistest

import (
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/unit"
)

// Run analyzes each testdata/src/<pkg> with a and matches diagnostics
// against the // want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	RunWithFinish(t, a, nil, pkgs...)
}

// RunWithFinish additionally applies a whole-program finish hook after all
// pkgs have been analyzed (sharing one analysis.Program), merging its
// diagnostics into the same want matching. This is how xreppair's
// cross-package directions are golden-tested.
func RunWithFinish(t *testing.T, a *analysis.Analyzer, finish func(*analysis.Program) []analysis.Diagnostic, pkgs ...string) {
	t.Helper()
	exp, err := moduleExports()
	if err != nil {
		t.Fatalf("building export data: %v", err)
	}

	fset := token.NewFileSet()
	prog := analysis.NewProgram()
	var findings []unit.Finding
	var allAllows []*analysis.Allow
	var units []*load.Unit
	for _, pkg := range pkgs {
		dir := filepath.Join("testdata", "src", pkg)
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading golden package %s: %v", pkg, err)
		}
		var files []string
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
		if len(files) == 0 {
			t.Fatalf("golden package %s has no .go files", pkg)
		}
		imp := load.ExportImporter(fset, nil, exp)
		u, err := load.Check(fset, pkg, pkg, files, imp)
		if err != nil {
			t.Fatalf("typechecking golden package %s: %v", pkg, err)
		}
		units = append(units, u)
		allAllows = append(allAllows, analysis.CollectAllows(fset, u.Files)...)
		findings = append(findings, unit.RunAnalyzers(u, []*analysis.Analyzer{a}, prog)...)
	}
	if finish != nil {
		for _, d := range finish(prog) {
			suppressed := false
			for _, al := range allAllows {
				if al.Suppresses(fset, a.Name, d.Pos) {
					al.Used = true
					suppressed = true
					break
				}
			}
			if !suppressed {
				findings = append(findings, unit.Finding{Diagnostic: d, Pass: a.Name})
			}
		}
	}

	wants := collectWants(t, fset, units)
	match(t, fset, findings, wants)
}

// want is one expectation: a regexp that must match a diagnostic on line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// collectWants scans every golden file for // want comments.
func collectWants(t *testing.T, fset *token.FileSet, units []*load.Unit) []*want {
	t.Helper()
	var out []*want
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					if !strings.HasPrefix(text, "// want ") && !strings.HasPrefix(text, "//want ") {
						continue
					}
					rest := strings.TrimSpace(text[strings.Index(text, "want ")+len("want "):])
					pos := fset.Position(c.Pos())
					for _, lit := range stringLits(t, pos, rest) {
						re, err := regexp.Compile(lit)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, lit, err)
						}
						out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: lit})
					}
				}
			}
		}
	}
	return out
}

// stringLits parses a sequence of Go string literals from s.
func stringLits(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	var sc scanner.Scanner
	fs := token.NewFileSet()
	file := fs.AddFile("want", -1, len(s))
	sc.Init(file, []byte(s), nil, 0)
	for {
		_, tok, lit := sc.Scan()
		if tok == token.EOF || tok == token.SEMICOLON {
			break
		}
		if tok != token.STRING {
			t.Fatalf("%s: want comment must hold string literals, got %v", pos, tok)
		}
		v, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: bad string in want comment: %v", pos, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment holds no expectations", pos)
	}
	return out
}

// match pairs findings with wants one-to-one and reports the leftovers.
func match(t *testing.T, fset *token.FileSet, findings []unit.Finding, wants []*want) {
	t.Helper()
	for _, f := range findings {
		p := fset.Position(f.Pos)
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == p.Filename && w.line == p.Line && w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", p, f.Message, f.Pass)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

// moduleExports lists the whole module once per test process and returns
// the import-path → export-data map golden packages resolve against.
func moduleExports() (map[string]string, error) {
	exportsOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			exportsErr = err
			return
		}
		pkgs, _, err := load.List(root, "./...")
		if err != nil {
			exportsErr = err
			return
		}
		m := load.PackageFiles(pkgs)
		// Test variants carry " [pkg.test]" IDs; golden code imports the
		// plain paths, which List also emits, so no translation is needed.
		for id := range m {
			if i := strings.Index(id, " ["); i >= 0 {
				delete(m, id)
			}
		}
		exportsMap = m
	})
	return exportsMap, exportsErr
}

// moduleRoot walks up from the working directory to go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return dir, os.ErrNotExist
		}
		dir = parent
	}
}
