// Package unit implements the go vet -vettool driver protocol (the
// "unitchecker" protocol): cmd/go invokes the tool once per package with a
// JSON config file argument, and expects flag metadata, a version string,
// diagnostics on stderr, and a facts file written per package.
//
// The protocol, as spoken by cmd/go:
//
//	tool -flags             → JSON [{Name,Bool,Usage}...] flag metadata
//	tool -V=full            → one line of version output, used as cache key
//	tool path/to/vet.cfg    → analyze one package
//
// Diagnostics are printed "file:line:col: message [pass]" to stderr and
// the exit status is 2 when any finding survives suppression, matching
// x/tools unitchecker behavior so `go vet -vettool=guardianlint` fails the
// build exactly like vet itself.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Config is the JSON schema cmd/go writes for each package. Field names
// are fixed by the protocol.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintFlags emits the flag-metadata JSON the driver asks for first. The
// suite defines no tool-level flags.
func PrintFlags(w io.Writer) {
	fmt.Fprintln(w, "[]")
}

// PrintVersion emits the cache-key line for -V=full. The executable's own
// content hash is included so a rebuilt tool invalidates vet's cache.
func PrintVersion(w io.Writer, name string) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))[:16]
		}
	}
	fmt.Fprintf(w, "%s version dev buildID=%s\n", name, id)
}

// Run analyzes the single package described by cfgPath with the given
// passes and returns the process exit code.
func Run(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "guardianlint: %v\n", err)
		return 1
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "guardianlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver expects a facts file per package regardless; the suite
	// carries no cross-package facts under vet (whole-program directions
	// run only in standalone mode), so an empty one satisfies it.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0666); err != nil {
			fmt.Fprintf(os.Stderr, "guardianlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	imp := load.ExportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	u, err := load.Check(fset, cfg.ID, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "guardianlint: %v\n", err)
		return 1
	}

	diags := RunAnalyzers(u, analyzers, nil)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", u.Fset.Position(d.Pos), d.Message, d.Pass)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// Finding is a diagnostic with its originating pass attached.
type Finding struct {
	analysis.Diagnostic
	// Pass names the analyzer that reported it.
	Pass string
}

// RunAnalyzers applies every pass to one unit and filters the results
// through the unit's //lint:allow directives. Directives with an empty
// reason are themselves reported (an exemption from a paper invariant must
// say why). The shared prog is nil under vet (per-process packages);
// standalone callers pass one to enable whole-program directions.
func RunAnalyzers(u *load.Unit, analyzers []*analysis.Analyzer, prog *analysis.Program) []Finding {
	allows := analysis.CollectAllows(u.Fset, u.Files)
	out, _ := Analyze(u, analyzers, prog, allows)
	out = append(out, ReasonlessAllows(allows)...)
	return out
}

// Analyze applies every pass to one unit, suppressing findings through the
// given directives (marking the ones that fire as Used). Callers that need
// the allow inventory afterwards — the standalone driver's whole-program
// filtering and staleness report — use this instead of RunAnalyzers. The
// suppressed findings come back separately so machine-readable output can
// show what the allow inventory is holding down.
func Analyze(u *load.Unit, analyzers []*analysis.Analyzer, prog *analysis.Program, allows []*analysis.Allow) (out, suppressed []Finding) {
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			Program:   prog,
		}
		pass.Report = func(d analysis.Diagnostic) {
			for _, al := range allows {
				if al.Suppresses(u.Fset, a.Name, d.Pos) {
					al.Used = true
					suppressed = append(suppressed, Finding{Diagnostic: d, Pass: a.Name})
					return
				}
			}
			out = append(out, Finding{Diagnostic: d, Pass: a.Name})
		}
		if err := a.Run(pass); err != nil {
			out = append(out, Finding{
				Diagnostic: analysis.Diagnostic{Pos: token.NoPos, Message: fmt.Sprintf("internal error: %v", err)},
				Pass:       a.Name,
			})
		}
	}
	return out, suppressed
}

// ReasonlessAllows reports every used directive that carries no reason.
func ReasonlessAllows(allows []*analysis.Allow) []Finding {
	var out []Finding
	for _, al := range allows {
		if al.Used && al.Reason == "" {
			out = append(out, Finding{
				Diagnostic: analysis.Diagnostic{Pos: al.Pos, Message: fmt.Sprintf("//lint:allow %s needs a reason", al.Pass)},
				Pass:       "lint",
			})
		}
	}
	return out
}
