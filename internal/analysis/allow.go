package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Allow directives.
//
// A finding is intentionally suppressed by writing, on the flagged line or
// the line immediately above it:
//
//	//lint:allow <pass> <reason>
//
// The reason is mandatory — the paper's invariants are load-bearing, so an
// exemption must say why it is safe (e.g. "sealed capability, body is
// opaque bytes"). An allow directive with no reason is itself reported by
// the driver, and a directive that suppresses nothing is reported as
// stale, so the suppression inventory can't rot silently.
const allowPrefix = "//lint:allow "

// Allow is one parsed directive.
type Allow struct {
	// Pass names the analyzer being waived.
	Pass string
	// Reason is the justification text (may be empty; see Driver).
	Reason string
	// Pos is the directive's own position.
	Pos token.Pos
	// Line is the source line the directive occupies.
	Line int
	// Used is set by the driver when the directive suppresses a finding.
	Used bool
}

// CollectAllows parses every //lint:allow directive in the files.
func CollectAllows(fset *token.FileSet, files []*ast.File) []*Allow {
	var out []*Allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				pass, reason, _ := strings.Cut(rest, " ")
				out = append(out, &Allow{
					Pass:   pass,
					Reason: strings.TrimSpace(reason),
					Pos:    c.Pos(),
					Line:   fset.Position(c.Pos()).Line,
				})
			}
		}
	}
	return out
}

// Suppresses reports whether directive a waives a finding from pass at
// position pos: same file, same pass, and the directive sits on the
// finding's line or the line above it.
func (a *Allow) Suppresses(fset *token.FileSet, pass string, pos token.Pos) bool {
	if a.Pass != pass {
		return false
	}
	p := fset.Position(pos)
	ap := fset.Position(a.Pos)
	if p.Filename != ap.Filename {
		return false
	}
	return a.Line == p.Line || a.Line == p.Line-1
}
