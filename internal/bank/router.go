package bank

// Router is the client side of the sharded bank: it resolves accounts to
// shard guardians through the nameserver-hosted ring, issues single-shard
// operations over one at-most-once session, and falls back to a 2PC
// transaction (package tpc vocabulary, the branches' escrow arms) when a
// transfer's accounts live on different shards.
//
// Routing state is soft everywhere: the Router caches the committed ring
// and refreshes it when a call retries (the Caller's Resolve hook) or a
// shard answers with a moved redirect (followed inside the Caller itself,
// with the SAME request id, so exactly-once survives the re-route). A
// stale cache costs an extra hop, never a wrong effect.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/amo"
	"repro/internal/guardian"
	"repro/internal/nameserv"
	"repro/internal/ring"
	"repro/internal/sendprim"
	"repro/internal/tpc"
	"repro/internal/xrep"
)

// RouterOptions tunes a Router.
type RouterOptions struct {
	// NS resolves the ring. Required.
	NS *nameserv.Client
	// RingName is the ring served by the nameserver. Required.
	RingName string
	// Timeout bounds each nameserver interaction. Zero means 500ms.
	Timeout time.Duration
	// Call tunes the underlying at-most-once session. The Resolve hook is
	// owned by the Router and must be left nil.
	Call amo.CallerOptions
	// Coordinator, when non-zero, is the tpc coordinator port cross-shard
	// transfers run through. A zero port makes Transfer report
	// tpc.OutcomeAborted for split pairs.
	Coordinator xrep.PortName
}

// Router routes bank operations across a consistent-hash ring of shard
// branches.
type Router struct {
	pr     *guardian.Process
	opts   RouterOptions
	caller *amo.Caller

	mu   sync.Mutex
	ring *ring.Ring
	key  string // account the in-flight call resolves against
	txn  int64
}

// NewRouter builds a Router with one at-most-once session.
func NewRouter(pr *guardian.Process, opts RouterOptions) (*Router, error) {
	if opts.NS == nil || opts.RingName == "" {
		return nil, fmt.Errorf("bank: router needs a nameserver client and a ring name")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 500 * time.Millisecond
	}
	r := &Router{pr: pr, opts: opts}
	callOpts := opts.Call
	callOpts.Resolve = func() (xrep.PortName, bool) {
		// A retry means the cached placement did not answer: refetch the
		// committed ring and re-resolve the key the call is about.
		r.refresh()
		r.mu.Lock()
		rg, key := r.ring, r.key
		r.mu.Unlock()
		if rg == nil {
			return xrep.PortName{}, false
		}
		m, ok := rg.Owner(key)
		if !ok {
			return xrep.PortName{}, false
		}
		return m.Amo, true
	}
	caller, err := amo.NewCaller(pr, callOpts)
	if err != nil {
		return nil, err
	}
	r.caller = caller
	return r, nil
}

// Close retires the Router's session.
func (r *Router) Close() { r.caller.Close() }

// refresh refetches the committed ring; a failed fetch keeps the cache.
func (r *Router) refresh() {
	rs, err := r.opts.NS.RingGet(r.opts.RingName, r.opts.Timeout)
	if err != nil || rs.CommittedEpoch == 0 {
		return
	}
	rg, err := ring.Unmarshal(rs.Committed)
	if err != nil {
		return
	}
	r.mu.Lock()
	if r.ring == nil || rg.Epoch > r.ring.Epoch {
		r.ring = rg
	}
	r.mu.Unlock()
}

// owner resolves one account against the cached ring, fetching it first
// if the cache is cold.
func (r *Router) owner(key string) (ring.Member, error) {
	r.mu.Lock()
	rg := r.ring
	r.mu.Unlock()
	if rg == nil {
		r.refresh()
		r.mu.Lock()
		rg = r.ring
		r.mu.Unlock()
	}
	if rg == nil {
		return ring.Member{}, fmt.Errorf("bank: ring %q not committed yet", r.opts.RingName)
	}
	m, ok := rg.Owner(key)
	if !ok {
		return ring.Member{}, fmt.Errorf("bank: ring %q is empty", r.opts.RingName)
	}
	return m, nil
}

// Call issues one single-account operation (open, deposit, withdraw,
// balance) against the account's shard.
func (r *Router) Call(account, command string, args ...any) (*amo.Reply, error) {
	m, err := r.owner(account)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.key = account
	r.mu.Unlock()
	return r.caller.Call(m.Amo, command, args...)
}

// Transfer moves amount between two accounts: a single amo op when both
// live on one shard, a 2PC escrow transaction when they do not. The
// returned outcome is a bank outcome (OutcomeOK, OutcomeInsufficient,
// OutcomeNoAccount) or tpc.OutcomeAborted — for a failed cross-shard
// transaction, or for a transfer that kept landing in a migration's
// cut→commit window after every re-plan (retryable: the flip commits).
func (r *Router) Transfer(from, to string, amount int64) (string, error) {
	const attempts = 3
	var lastOutcome string
	for i := 0; i < attempts; i++ {
		mf, err := r.owner(from)
		if err != nil {
			return "", err
		}
		mt, err := r.owner(to)
		if err != nil {
			return "", err
		}
		if mf.Name == mt.Name {
			rep, err := r.Call(from, "transfer", from, to, amount)
			if err != nil {
				return "", err
			}
			if rep.Command != amo.OutcomeSplit {
				return rep.Command, nil
			}
			// The shard's ring is ahead of ours (a range was cut but the
			// epoch is not committed yet): wait a beat for the flip, then
			// refresh and re-plan. The raw split constant is routing
			// vocabulary, never a Transfer outcome — if every attempt lands
			// in the window, report the abort callers know how to retry.
			lastOutcome = tpc.OutcomeAborted
			if !r.pr.Pause(r.splitWait()) {
				return "", guardian.ErrKilled
			}
			r.refresh()
			continue
		}
		outcome, err := r.transferTPC(mf, mt, from, to, amount)
		if err != nil {
			return "", err
		}
		if outcome == tpc.OutcomeCommitted {
			return OutcomeOK, nil
		}
		// An abort may mean a stale plan (a participant no longer owns its
		// account); refresh and retry with fresh placement.
		lastOutcome = tpc.OutcomeAborted
		r.refresh()
	}
	return lastOutcome, nil
}

// splitWait is the pause before re-planning a transfer that hit the
// cut→commit window: long enough for a typical epoch flip to finish,
// scaled off the per-call timeout like everything else client-side.
func (r *Router) splitWait() time.Duration {
	timeout := r.opts.Call.Timeout
	if timeout <= 0 {
		timeout = 100 * time.Millisecond
	}
	return 2 * timeout
}

// transferTPC runs the cross-shard leg pair through the coordinator.
func (r *Router) transferTPC(mf, mt ring.Member, from, to string, amount int64) (string, error) {
	if r.opts.Coordinator.IsZero() {
		return tpc.OutcomeAborted, fmt.Errorf("bank: cross-shard transfer %s→%s needs a coordinator", from, to)
	}
	r.mu.Lock()
	r.txn++
	txid := fmt.Sprintf("%s/tx%d", r.caller.Client(), r.txn)
	r.mu.Unlock()
	ops := xrep.Seq{
		xrep.Seq{mf.Native, EscrowOp("debit", from, amount)},
		xrep.Seq{mt.Native, EscrowOp("credit", to, amount)},
	}
	timeout := r.opts.Call.Timeout
	if timeout <= 0 {
		timeout = 100 * time.Millisecond
	}
	m, err := sendprim.Call(r.pr, r.opts.Coordinator, tpc.ClientReplyType, sendprim.CallOptions{
		// The coordinator dedups begin by txid, so retrying is safe; its
		// vote phase can take several timeouts, hence the wide window.
		Timeout: 20 * timeout,
		Retries: 3,
		Backoff: timeout / 2,
	}, "begin", txid, ops)
	if err != nil {
		return "", err
	}
	return m.Command, nil
}
