package bank

// Shard mode: a branch guardian as one member of a consistent-hash ring
// (package ring), with live range migration. The branch keeps its whole
// vocabulary — at-most-once ops, native idempotent ops, audit — and gains:
//
//   - an ownership filter in front of the amo dedup hook: a request whose
//     key hashes to another member is answered with amo.OutcomeMoved (a
//     routing redirect carrying the owner's port and the ring epoch), and
//     a multi-key request whose keys no longer share an owner with
//     amo.OutcomeSplit (the Router re-issues it as a 2PC transaction);
//   - guardian-to-guardian handoff: the DESTINATION pulls a moving range
//     with a snapshot copy (migrate_snap/migrate_part), a tail catch-up
//     and atomic ownership cut at the source (migrate_cut), and a single
//     durable install at the destination (handoff_install) that carries
//     the account state AND the source's amo dedup snapshot, so
//     exactly-once survives the migration;
//   - escrow-style 2PC participation (prepare/commit/abort on the native
//     port, tpc vocabulary) for cross-shard transfers.
//
// Authority is presence-based: an account present in the table is served
// here, full stop; an absent account is resolved through the latest
// adopted ring. The source deletes a range's accounts in the same durable
// record that flips its ring (bank/moved_out), and the destination creates
// them in the record that flips its own (bank/install), so at every
// instant each account has exactly one serving owner. The window between
// cut and install — where both sides redirect — costs liveness (bounded by
// amo.MaxRedirects plus retry backoff), never safety.
//
// Every shard state change is a logged record folded through ONE
// deterministic function (shardCore.fold), used identically by the live
// arms, crash recovery, and the independent replay checker
// (ReplayAccountsFrom), so the recovery-equals-replay invariant extends to
// migrations.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/amo"
	"repro/internal/durable"
	"repro/internal/guardian"
	"repro/internal/ring"
	"repro/internal/sendprim"
	"repro/internal/wire"
	"repro/internal/xrep"
)

// Shard record names (stable-log and argument records).
const (
	shardArgRec = "bank/shard"
	ringRec     = "bank/ring"
	seedRec     = "bank/seed"
	movedOutRec = "bank/moved_out"
	installRec  = "bank/install"
	ackedRec    = "bank/acked"
	tpcRec      = "bank/tpc"
)

// ShardArg builds the creation argument that puts a branch in shard mode
// as the named ring member. Pass it to CreateGuardian alongside the usual
// branch arguments.
func ShardArg(member string) xrep.Rec {
	return xrep.Rec{Name: shardArgRec, Fields: xrep.Seq{xrep.Str(member)}}
}

// shardMember extracts a ShardArg's member name; ok is false for other
// argument values.
func shardMember(v xrep.Value) (string, bool) {
	rec, isRec := v.(xrep.Rec)
	if !isRec || rec.Name != shardArgRec || len(rec.Fields) != 1 {
		return "", false
	}
	name, isStr := rec.Fields[0].(xrep.Str)
	return string(name), isStr
}

// HandoffID names one range migration deterministically, so a driver
// retrying after any crash converges on the same handoff state.
func HandoffID(ringName string, epoch int64, from, to string) string {
	return fmt.Sprintf("%s/%d/%s>%s", ringName, epoch, from, to)
}

// MigrateReplyType receives the replies of the shard-control vocabulary:
// the rebalance driver's calls (ring_update, seed, handoff_pull,
// handoff_status, migrate_ack) and the destination puller's calls
// (migrate_snap, migrate_part, migrate_cut, handoff_stage,
// handoff_install).
var MigrateReplyType = guardian.NewPortType("bank_migrate_reply_port").
	Msg("ring_ok", xrep.KindInt).              // adopted epoch
	Msg("seeded", xrep.KindInt, xrep.KindInt). // created, total accounts
	Msg("pull_ok").
	Msg("pull_denied", xrep.KindString).
	Msg("handoff_state", xrep.KindString). // "installed" | "pulling" | "unknown"
	Msg("staged", xrep.KindInt).           // staged account count so far
	Msg("installed").
	Msg("install_denied", xrep.KindString).
	Msg("snap_meta", xrep.KindInt, xrep.KindInt).                  // generation, account count
	Msg("snap_part", xrep.KindInt, xrep.KindInt, xrep.KindSeq).    // next cursor, done flag, entries
	Msg("cut_done", xrep.KindInt, xrep.KindSeq, guardian.AnyKind). // generation echo, tail ops, dedup snapshot
	Msg("cut_busy").
	Msg("migrate_denied", xrep.KindString).
	Msg("ack_ok")

// ShardHooks are crash-window callbacks for the cross-process handoff
// demo: cmd/node registers hooks that exit the process at a chosen point,
// so a crash matrix can kill a guardian immediately before or after each
// durable handoff step. Hooks run on the guardian's receive process.
type ShardHooks struct {
	BeforeCut, AfterCut         func(hid string)
	BeforeInstall, AfterInstall func(hid string)
	// AfterPrepare runs after an escrow prepare is durable but before the
	// yes vote is sent — the window a coordinator-crash test uses to hold
	// a participant in its prepared state while the decision is made.
	AfterPrepare func(txid string)
}

var shardHooks = struct {
	mu sync.Mutex
	m  map[string]ShardHooks
}{m: make(map[string]ShardHooks)}

// SetShardHooks registers handoff crash-window hooks for every shard
// branch on the named node. Passing the zero value clears them.
func SetShardHooks(node string, h ShardHooks) {
	shardHooks.mu.Lock()
	defer shardHooks.mu.Unlock()
	shardHooks.m[node] = h
}

func hooksFor(node string) ShardHooks {
	shardHooks.mu.Lock()
	defer shardHooks.mu.Unlock()
	return shardHooks.m[node]
}

// shardTxn is one 2PC escrow transaction's state.
type shardTxn struct {
	phase  string // "prepared", "committed", "aborted"
	kind   string // "debit" or "credit"
	acct   string
	amount int64
}

// journalOp is one mutation captured for tail catch-up.
type journalOp struct {
	kind   string
	acct   string
	amount int64
}

// outboundHandoff is the source side of one range migration.
type outboundHandoff struct {
	hid  string
	dest string
	ring *ring.Ring // the pending ring the cut flips to
	blob []byte

	// Pre-cut copy state. Volatile by design: if the source crashes before
	// the cut, nothing moved, and the puller restarts from a fresh snap.
	gen    int64            // bumped per snap, so a puller detects a restarted copy
	copied map[string]int64 // balances frozen at snap time
	order  []string         // deterministic part order over copied
	tail   []journalOp      // mutations on the moving range since the snap

	// Post-cut state, durable via the bank/moved_out record. final is
	// retained until the driver's migrate_ack so an amnesiac destination
	// can re-pull the already-cut range. The cut re-keys gen: post-cut
	// pulls serve final (tail already folded in) under a FRESH generation,
	// while cutGen remembers the pre-cut generation whose staged pages
	// still owe the tail — migrate_cut ships cutTail only to that one, so
	// the tail can never be applied on top of balances that contain it.
	cut      bool
	cutGen   int64       // pre-cut generation entitled to cutTail (0 after recovery)
	cutTail  []journalOp // the tail merged at cut, retained to re-reply
	final    map[string]int64
	finalOrd []string
	acked    bool
}

// list returns the account order parts are served in.
func (o *outboundHandoff) list() []string {
	if o.cut {
		return o.finalOrd
	}
	return o.order
}

// balances returns the frozen map parts are served from.
func (o *outboundHandoff) balances() map[string]int64 {
	if o.cut {
		return o.final
	}
	return o.copied
}

// shardCore is the deterministic part of shard state: everything rebuilt
// by folding logged records, shared by the live runtime and the pure
// replay checker.
type shardCore struct {
	member    string
	ring      *ring.Ring
	txns      map[string]*shardTxn
	out       map[string]*outboundHandoff
	installed map[string]bool
}

func newShardCore(member string) *shardCore {
	return &shardCore{
		member:    member,
		txns:      make(map[string]*shardTxn),
		out:       make(map[string]*outboundHandoff),
		installed: make(map[string]bool),
	}
}

// owned reports whether this member serves key under the latest adopted
// ring. A branch that has not adopted any ring serves everything (the
// pre-ring bootstrap state).
func (c *shardCore) owned(key string) bool {
	if c.ring == nil {
		return true
	}
	m, ok := c.ring.Owner(key)
	return !ok || m.Name == c.member
}

// adopt switches to r if it is newer than the current ring.
func (c *shardCore) adopt(r *ring.Ring) {
	if r != nil && (c.ring == nil || r.Epoch > c.ring.Epoch) {
		c.ring = r
	}
}

// seedKey names account i of a seeded range.
func seedKey(prefix string, i int) string {
	return fmt.Sprintf("%s%07d", prefix, i)
}

// accountsSeq renders a balance map as a sorted (name, balance) sequence.
func accountsSeq(m map[string]int64) xrep.Seq {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make(xrep.Seq, 0, len(names))
	for _, n := range names {
		out = append(out, xrep.Seq{xrep.Str(n), xrep.Int(m[n])})
	}
	return out
}

// parseAccounts is accountsSeq's inverse.
func parseAccounts(v xrep.Value) (map[string]int64, []string, bool) {
	seq, ok := v.(xrep.Seq)
	if !ok {
		return nil, nil, false
	}
	m := make(map[string]int64, len(seq))
	order := make([]string, 0, len(seq))
	for _, ev := range seq {
		pair, ok := ev.(xrep.Seq)
		if !ok || len(pair) != 2 {
			return nil, nil, false
		}
		name, ok0 := pair[0].(xrep.Str)
		bal, ok1 := pair[1].(xrep.Int)
		if !ok0 || !ok1 {
			return nil, nil, false
		}
		m[string(name)] = int64(bal)
		order = append(order, string(name))
	}
	return m, order, true
}

// tailSeq renders journal ops for the wire and the log.
func tailSeq(ops []journalOp) xrep.Seq {
	out := make(xrep.Seq, 0, len(ops))
	for _, op := range ops {
		out = append(out, xrep.Seq{xrep.Str(op.kind), xrep.Str(op.acct), xrep.Int(op.amount)})
	}
	return out
}

// parseTail is tailSeq's inverse.
func parseTail(v xrep.Value) ([]journalOp, bool) {
	seq, ok := v.(xrep.Seq)
	if !ok {
		return nil, false
	}
	out := make([]journalOp, 0, len(seq))
	for _, ev := range seq {
		t, ok := ev.(xrep.Seq)
		if !ok || len(t) != 3 {
			return nil, false
		}
		kind, ok0 := t[0].(xrep.Str)
		acct, ok1 := t[1].(xrep.Str)
		amount, ok2 := t[2].(xrep.Int)
		if !ok0 || !ok1 || !ok2 {
			return nil, false
		}
		out = append(out, journalOp{kind: string(kind), acct: string(acct), amount: int64(amount)})
	}
	return out, true
}

// applyTailOp folds one journaled mutation into a bare balance map. The
// ops were validated when first executed, so the fold is unconditional.
func applyTailOp(m map[string]int64, op journalOp) {
	switch op.kind {
	case "open":
		if _, ok := m[op.acct]; !ok {
			m[op.acct] = 0
		}
	case "deposit", "transfer_in", "credit":
		m[op.acct] += op.amount
	case "withdraw", "transfer_out", "debit":
		m[op.acct] -= op.amount
	}
}

// checkpointField renders the shard core's durable state for the branch
// checkpoint: the adopted ring, installed handoff ids, retained post-cut
// handoffs, and escrow transactions — everything a recovery would rebuild
// by folding the compacted shard records. Pre-cut copy state is
// deliberately absent: it is volatile by design (a crash loses it and the
// puller re-snaps), so a checkpoint must capture no more than a recovery
// would restore. Maps are emitted in sorted order: same state, same bytes.
func (c *shardCore) checkpointField() xrep.Value {
	blob := ""
	if c.ring != nil {
		blob = string(c.ring.Marshal())
	}
	hids := make([]string, 0, len(c.installed))
	for hid := range c.installed {
		hids = append(hids, hid)
	}
	sort.Strings(hids)
	installed := make(xrep.Seq, 0, len(hids))
	for _, hid := range hids {
		installed = append(installed, xrep.Str(hid))
	}
	outIDs := make([]string, 0, len(c.out))
	for hid, o := range c.out {
		if o.cut {
			outIDs = append(outIDs, hid)
		}
	}
	sort.Strings(outIDs)
	outs := make(xrep.Seq, 0, len(outIDs))
	for _, hid := range outIDs {
		o := c.out[hid]
		acked := int64(0)
		if o.acked {
			acked = 1
		}
		outs = append(outs, xrep.Seq{
			xrep.Str(hid), xrep.Str(o.dest), xrep.Str(string(o.blob)),
			xrep.Int(acked), accountsSeq(o.final),
		})
	}
	txids := make([]string, 0, len(c.txns))
	for id := range c.txns {
		txids = append(txids, id)
	}
	sort.Strings(txids)
	txns := make(xrep.Seq, 0, len(txids))
	for _, id := range txids {
		t := c.txns[id]
		txns = append(txns, xrep.Seq{
			xrep.Str(id), xrep.Str(t.phase), xrep.Str(t.kind), xrep.Str(t.acct), xrep.Int(t.amount),
		})
	}
	return xrep.Seq{xrep.Str(blob), installed, outs, txns}
}

// restoreCheckpoint is checkpointField's inverse. It rebuilds the shard
// core — and the escrow holds, which are derived from prepared debits —
// and must run BEFORE any post-checkpoint record is folded on top, so
// tail records (an ack, a commit) find the state they refer to.
func (c *shardCore) restoreCheckpoint(st *branchState, v xrep.Value) error {
	seq, ok := v.(xrep.Seq)
	if !ok || len(seq) != 4 {
		return fmt.Errorf("malformed shard state")
	}
	blob, okB := seq[0].(xrep.Str)
	installed, okI := seq[1].(xrep.Seq)
	outs, okO := seq[2].(xrep.Seq)
	txns, okT := seq[3].(xrep.Seq)
	if !okB || !okI || !okO || !okT {
		return fmt.Errorf("malformed shard state")
	}
	if len(blob) > 0 {
		r, err := ring.Unmarshal([]byte(blob))
		if err != nil {
			return fmt.Errorf("shard state ring: %w", err)
		}
		c.adopt(r)
	}
	for _, hv := range installed {
		hid, ok := hv.(xrep.Str)
		if !ok {
			return fmt.Errorf("malformed installed handoff id")
		}
		c.installed[string(hid)] = true
	}
	for _, ov := range outs {
		e, ok := ov.(xrep.Seq)
		if !ok || len(e) != 5 {
			return fmt.Errorf("malformed outbound handoff")
		}
		hid, ok0 := e[0].(xrep.Str)
		dest, ok1 := e[1].(xrep.Str)
		rblob, ok2 := e[2].(xrep.Str)
		acked, ok3 := e[3].(xrep.Int)
		final, order, ok4 := parseAccounts(e[4])
		if !ok0 || !ok1 || !ok2 || !ok3 || !ok4 {
			return fmt.Errorf("malformed outbound handoff")
		}
		o := &outboundHandoff{
			hid: string(hid), dest: string(dest), blob: []byte(rblob),
			cut: true, final: final, finalOrd: order, acked: acked == 1,
		}
		if r, err := ring.Unmarshal([]byte(rblob)); err == nil {
			o.ring = r
		}
		if o.acked {
			o.final, o.finalOrd = nil, nil
		}
		c.out[string(hid)] = o
	}
	for _, tv := range txns {
		e, ok := tv.(xrep.Seq)
		if !ok || len(e) != 5 {
			return fmt.Errorf("malformed escrow txn")
		}
		txid, ok0 := e[0].(xrep.Str)
		phase, ok1 := e[1].(xrep.Str)
		kind, ok2 := e[2].(xrep.Str)
		acct, ok3 := e[3].(xrep.Str)
		amount, ok4 := e[4].(xrep.Int)
		if !ok0 || !ok1 || !ok2 || !ok3 || !ok4 {
			return fmt.Errorf("malformed escrow txn")
		}
		c.txns[string(txid)] = &shardTxn{
			phase: string(phase), kind: string(kind), acct: string(acct), amount: int64(amount),
		}
		if string(phase) == "prepared" && string(kind) == "debit" {
			st.hold(string(acct), int64(amount))
		}
	}
	return nil
}

// shardRecord marshals one shard log record.
func shardRecord(name string, fields xrep.Seq) []byte {
	b, err := wire.MarshalValue(xrep.Rec{Name: name, Fields: fields})
	if err != nil {
		panic(fmt.Errorf("bank: marshal %s: %v", name, err))
	}
	return b
}

// fold applies one shard record to the core and the branch state. It is
// the single source of truth for shard semantics: the live arms append
// the record and fold it; recovery and the replay checker fold the same
// records in log order. The returned value is an install record's dedup
// snapshot (nil otherwise) for the caller to merge; ok is false for
// records that are not shard records.
func (c *shardCore) fold(st *branchState, v xrep.Value) (dedupSnap xrep.Value, ok bool) {
	rec, isRec := v.(xrep.Rec)
	if !isRec {
		return nil, false
	}
	switch rec.Name {
	case ringRec:
		if len(rec.Fields) != 1 {
			return nil, true
		}
		blob, _ := rec.Fields[0].(xrep.Str)
		if r, err := ring.Unmarshal([]byte(blob)); err == nil {
			c.adopt(r)
		}
		return nil, true

	case seedRec:
		if len(rec.Fields) != 4 {
			return nil, true
		}
		prefix, _ := rec.Fields[0].(xrep.Str)
		n, _ := rec.Fields[1].(xrep.Int)
		amount, _ := rec.Fields[2].(xrep.Int)
		member, _ := rec.Fields[3].(xrep.Str)
		if c.member == "" {
			c.member = string(member)
		}
		for i := 0; i < int(n); i++ {
			key := seedKey(string(prefix), i)
			if !c.owned(key) {
				continue
			}
			if _, exists := st.accounts[key]; !exists {
				st.accounts[key] = int64(amount)
			}
		}
		return nil, true

	case movedOutRec:
		if len(rec.Fields) != 4 {
			return nil, true
		}
		hid, _ := rec.Fields[0].(xrep.Str)
		dest, _ := rec.Fields[1].(xrep.Str)
		blob, _ := rec.Fields[2].(xrep.Str)
		final, order, okA := parseAccounts(rec.Fields[3])
		if !okA {
			return nil, true
		}
		for _, name := range order {
			delete(st.accounts, name)
		}
		o := &outboundHandoff{
			hid: string(hid), dest: string(dest), blob: []byte(blob),
			cut: true, final: final, finalOrd: order,
		}
		if r, err := ring.Unmarshal([]byte(blob)); err == nil {
			o.ring = r
			c.adopt(r)
		}
		c.out[string(hid)] = o
		return nil, true

	case installRec:
		if len(rec.Fields) != 4 {
			return nil, true
		}
		hid, _ := rec.Fields[0].(xrep.Str)
		blob, _ := rec.Fields[1].(xrep.Str)
		accounts, _, okA := parseAccounts(rec.Fields[2])
		if !okA {
			return nil, true
		}
		for name, bal := range accounts {
			st.accounts[name] = bal
		}
		if r, err := ring.Unmarshal([]byte(blob)); err == nil {
			c.adopt(r)
		}
		c.installed[string(hid)] = true
		return rec.Fields[3], true

	case ackedRec:
		if len(rec.Fields) != 1 {
			return nil, true
		}
		hid, _ := rec.Fields[0].(xrep.Str)
		if o := c.out[string(hid)]; o != nil {
			o.acked = true
			o.final, o.finalOrd, o.cutTail = nil, nil, nil
		}
		return nil, true

	case tpcRec:
		if len(rec.Fields) != 5 {
			return nil, true
		}
		phase, _ := rec.Fields[0].(xrep.Str)
		txid, _ := rec.Fields[1].(xrep.Str)
		kind, _ := rec.Fields[2].(xrep.Str)
		acct, _ := rec.Fields[3].(xrep.Str)
		amount, _ := rec.Fields[4].(xrep.Int)
		switch string(phase) {
		case "prepared":
			c.txns[string(txid)] = &shardTxn{
				phase: "prepared", kind: string(kind), acct: string(acct), amount: int64(amount),
			}
			if string(kind) == "debit" {
				st.hold(string(acct), int64(amount))
			}
		case "committed":
			if t := c.txns[string(txid)]; t != nil && t.phase == "prepared" {
				t.phase = "committed"
				// Release the hold first, then apply, so the escrow never
				// double-counts against the balance.
				if t.kind == "debit" {
					st.hold(t.acct, -t.amount)
					st.accounts[t.acct] -= t.amount
				} else {
					st.accounts[t.acct] += t.amount
				}
			}
		case "aborted":
			if t := c.txns[string(txid)]; t != nil && t.phase == "prepared" {
				t.phase = "aborted"
				if t.kind == "debit" {
					st.hold(t.acct, -t.amount)
				}
			}
		}
		return nil, true
	}
	return nil, false
}

// shardRuntime is the live shard state: the deterministic core plus the
// volatile pull-side scaffolding and the guardian plumbing.
type shardRuntime struct {
	*shardCore
	st    *branchState
	log   durable.Log
	dedup *amo.Dedup
	g     *guardian.Guardian
	self  xrep.PortName // this branch's native port

	genCounter int64
	staging    map[string]map[string]int64 // hid → accounts staged so far
	pulling    map[string]bool
	recovSnaps []xrep.Value // install dedup snapshots collected during replay
}

func newShardRuntime(member string, st *branchState, log durable.Log, dedup *amo.Dedup, g *guardian.Guardian, self xrep.PortName) *shardRuntime {
	return &shardRuntime{
		shardCore: newShardCore(member),
		st:        st, log: log, dedup: dedup, g: g, self: self,
		staging: make(map[string]map[string]int64),
		pulling: make(map[string]bool),
	}
}

// replayData folds one recovered log record; ok is false for non-shard
// records (op records, dedup records), which the caller handles.
func (sh *shardRuntime) replayData(data []byte) bool {
	v, err := wire.UnmarshalValue(data)
	if err != nil {
		return false
	}
	snap, ok := sh.fold(sh.st, v)
	if ok && snap != nil {
		sh.recovSnaps = append(sh.recovSnaps, snap)
	}
	return ok
}

// afterRecover merges the dedup snapshots carried by replayed install
// records. It runs after dedup.Restore/Recover so the merge lands on the
// rebuilt table; merge order does not matter (an id present twice carries
// the same reply).
func (sh *shardRuntime) afterRecover() {
	if sh.dedup == nil {
		sh.recovSnaps = nil
		return
	}
	for _, snap := range sh.recovSnaps {
		if err := sh.dedup.MergeSnapshot(snap); err != nil {
			panic(fmt.Errorf("bank: shard %s: bad install dedup snapshot: %w", sh.member, err))
		}
	}
	sh.recovSnaps = nil
}

// appendAndFold logs one shard record durably and folds it into the live
// state — the live arms' single mutation path, guaranteeing recovery
// replays exactly what ran.
func (sh *shardRuntime) appendAndFold(name string, fields xrep.Seq) xrep.Value {
	rec := xrep.Rec{Name: name, Fields: fields}
	sh.log.AppendSync(shardRecord(name, fields))
	snap, _ := sh.fold(sh.st, rec)
	return snap
}

// journal captures one applied mutation into every active pre-cut
// outbound handoff whose destination owns the account — the tail the cut
// ships for catch-up. Cheap when no handoff is active.
func (sh *shardRuntime) journal(kind, acct string, amount int64) {
	for _, o := range sh.out {
		if o.cut || o.ring == nil {
			continue
		}
		if m, ok := o.ring.Owner(acct); ok && m.Name == o.dest {
			o.tail = append(o.tail, journalOp{kind: kind, acct: acct, amount: amount})
		}
	}
}

// ownershipHook is the amo-layer ring filter, installed BEFORE the dedup
// hook: a request whose keys live elsewhere is redirected (OutcomeMoved)
// or declared split (OutcomeSplit) without touching the dedup table — a
// redirect is derivable routing state, never an effect. Requests this
// hook declines fall through to the dedup hook and execute normally.
func (sh *shardRuntime) ownershipHook() func(pr *guardian.Process, m *guardian.Message) bool {
	return func(pr *guardian.Process, m *guardian.Message) bool {
		req, _ := amo.ParseRequest(m)
		var keys []string
		switch req.Command {
		case "open", "deposit", "withdraw", "balance":
			if len(req.Args) >= 1 {
				if s, ok := req.Args[0].(xrep.Str); ok {
					keys = []string{string(s)}
				}
			}
		case "transfer":
			if len(req.Args) >= 2 {
				s0, ok0 := req.Args[0].(xrep.Str)
				s1, ok1 := req.Args[1].(xrep.Str)
				if ok0 && ok1 {
					keys = []string{string(s0), string(s1)}
				}
			}
		}
		if len(keys) == 0 || sh.ring == nil {
			return false
		}
		// Presence is authority: a key present here is served here even if
		// the latest ring disagrees (its range has not been cut yet).
		owners := make([]ring.Member, 0, len(keys))
		for _, k := range keys {
			if _, present := sh.st.accounts[k]; present || sh.owned(k) {
				return false // at least one key is ours: serve locally
			}
			if m, ok := sh.ring.Owner(k); ok {
				owners = append(owners, m)
			}
		}
		if len(owners) != len(keys) {
			return false
		}
		for _, o := range owners[1:] {
			if o.Name != owners[0].Name {
				// Keys straddle shards: terminal, the Router re-issues the
				// op as a 2PC transaction. Not cached, not logged.
				//lint:allow replyleak the shard originates the split signal; the Router consumes amo_split and re-issues the op as 2PC, so it never reaches a client
				amo.SendReply(pr, m, amo.OutcomeSplit, nil)
				return true
			}
		}
		amo.SendMoved(pr, m, owners[0].Amo, sh.ring.Epoch)
		return true
	}
}

// Transfer "one key ours, one key theirs" handling: the hook above serves
// the request locally when ANY key is present or owned, which makes the
// local apply fail with no_account for the foreign key — a correct, safe
// outcome the Router also treats as a split signal. The strict split
// reply is only produced when every key is provably elsewhere.

func (sh *shardRuntime) hooks() ShardHooks { return hooksFor(sh.g.Node().Name()) }

// callOpts are the puller's per-step retry settings, scaled by the world
// tuning so DST runs shrink them with everything else.
func (sh *shardRuntime) callOpts() sendprim.CallOptions {
	hb := sh.g.Node().World().Tuning().HeartbeatInterval
	return sendprim.CallOptions{
		Timeout: 4 * hb,
		Retries: 8,
		Backoff: hb / 4,
	}
}

const partChunk = 64 // accounts per migrate_part reply

// installArms registers the shard-control vocabulary on the branch
// receiver. Every arm also answers in non-shard mode (sh carries the
// receiver closure even then via nil checks at the call sites in bank.go).
func (sh *shardRuntime) installArms(recv *guardian.Receiver) {
	reply := func(pr *guardian.Process, m *guardian.Message, cmd string, args ...any) {
		if !m.ReplyTo.IsZero() {
			_ = pr.Send(m.ReplyTo, cmd, args...)
		}
	}

	recv.
		When("ring_update", func(pr *guardian.Process, m *guardian.Message) {
			blob := m.Str(0)
			r, err := ring.Unmarshal([]byte(blob))
			if err != nil {
				reply(pr, m, "ring_ok", int64(0))
				return
			}
			if sh.ring == nil || r.Epoch > sh.ring.Epoch {
				sh.appendAndFold(ringRec, xrep.Seq{xrep.Str(blob)})
			}
			epoch := int64(0)
			if sh.ring != nil {
				epoch = sh.ring.Epoch
			}
			reply(pr, m, "ring_ok", epoch)
		}).
		When("seed", func(pr *guardian.Process, m *guardian.Message) {
			prefix, n, amount := m.Str(0), m.Int(1), m.Int(2)
			// If a pre-cut handoff is active, the tail must carry any
			// account this seed creates; find them before the fold.
			var createdKeys []string
			if sh.activePrecut() {
				for i := 0; i < int(n); i++ {
					key := seedKey(prefix, i)
					if _, exists := sh.st.accounts[key]; !exists && sh.owned(key) {
						createdKeys = append(createdKeys, key)
					}
				}
			}
			before := len(sh.st.accounts)
			sh.appendAndFold(seedRec, xrep.Seq{
				xrep.Str(prefix), xrep.Int(n), xrep.Int(amount), xrep.Str(sh.member),
			})
			created := len(sh.st.accounts) - before
			for _, key := range createdKeys {
				sh.journal("open", key, 0)
				sh.journal("deposit", key, amount)
			}
			reply(pr, m, "seeded", int64(created), int64(len(sh.st.accounts)))
		}).
		When("handoff_pull", func(pr *guardian.Process, m *guardian.Message) {
			hid, blob, src := m.Str(0), m.Str(1), m.Port(2)
			if sh.installed[hid] {
				reply(pr, m, "pull_ok")
				return
			}
			if _, err := ring.Unmarshal([]byte(blob)); err != nil {
				reply(pr, m, "pull_denied", "bad ring")
				return
			}
			if sh.pulling[hid] {
				reply(pr, m, "pull_ok")
				return
			}
			sh.pulling[hid] = true
			sh.spawnPuller(hid, blob, src)
			reply(pr, m, "pull_ok")
		}).
		When("handoff_status", func(pr *guardian.Process, m *guardian.Message) {
			hid := m.Str(0)
			state := "unknown"
			switch {
			case sh.installed[hid]:
				state = "installed"
			case sh.pulling[hid]:
				state = "pulling"
			}
			reply(pr, m, "handoff_state", state)
		}).
		When("handoff_fail", func(_ *guardian.Process, m *guardian.Message) {
			// The puller gave up; clear the marker so the driver's next
			// handoff_pull spawns a fresh one.
			delete(sh.pulling, m.Str(0))
		}).
		When("handoff_stage", func(pr *guardian.Process, m *guardian.Message) {
			hid := m.Str(0)
			entries, _, ok := parseAccounts(m.Args[1])
			if !ok {
				reply(pr, m, "staged", int64(0))
				return
			}
			stage := sh.staging[hid]
			if stage == nil {
				stage = make(map[string]int64)
				sh.staging[hid] = stage
			}
			for name, bal := range entries {
				stage[name] = bal
			}
			reply(pr, m, "staged", int64(len(stage)))
		}).
		When("handoff_install", func(pr *guardian.Process, m *guardian.Message) {
			hid, blob := m.Str(0), m.Str(1)
			if sh.installed[hid] {
				reply(pr, m, "installed")
				return
			}
			tail, okT := parseTail(m.Args[2])
			if !okT {
				reply(pr, m, "install_denied", "bad tail")
				return
			}
			dsnap, _ := m.Arg(3)
			final := make(map[string]int64, len(sh.staging[hid]))
			for name, bal := range sh.staging[hid] {
				final[name] = bal
			}
			for _, op := range tail {
				applyTailOp(final, op)
			}
			h := sh.hooks()
			if h.BeforeInstall != nil {
				h.BeforeInstall(hid)
			}
			snap := sh.appendAndFold(installRec, xrep.Seq{
				xrep.Str(hid), xrep.Str(blob), accountsSeq(final), dsnap,
			})
			if sh.dedup != nil && snap != nil {
				if err := sh.dedup.MergeSnapshot(snap); err != nil {
					panic(fmt.Errorf("bank: shard %s: handoff %s: bad dedup snapshot: %w", sh.member, hid, err))
				}
			}
			delete(sh.staging, hid)
			delete(sh.pulling, hid)
			if h.AfterInstall != nil {
				h.AfterInstall(hid)
			}
			reply(pr, m, "installed")
		}).
		When("migrate_snap", func(pr *guardian.Process, m *guardian.Message) {
			hid, blob, dest := m.Str(0), m.Str(1), m.Str(2)
			if o := sh.out[hid]; o != nil {
				if o.acked {
					reply(pr, m, "migrate_denied", "acked")
					return
				}
				if o.cut {
					reply(pr, m, "snap_meta", o.gen, int64(len(o.final)))
					return
				}
			}
			r, err := ring.Unmarshal([]byte(blob))
			if err != nil {
				reply(pr, m, "migrate_denied", "bad ring")
				return
			}
			if _, ok := r.Member(dest); !ok {
				reply(pr, m, "migrate_denied", "dest not a member")
				return
			}
			if sh.ring != nil && (r.Epoch < sh.ring.Epoch || r.Epoch > sh.ring.Epoch+1) {
				reply(pr, m, "migrate_denied", "stale epoch")
				return
			}
			sh.genCounter++
			o := &outboundHandoff{
				hid: hid, dest: dest, ring: r, blob: []byte(blob),
				gen: sh.genCounter, copied: make(map[string]int64),
			}
			for name, bal := range sh.st.accounts {
				if mem, ok := r.Owner(name); ok && mem.Name == dest {
					o.copied[name] = bal
					o.order = append(o.order, name)
				}
			}
			sort.Strings(o.order)
			sh.out[hid] = o
			reply(pr, m, "snap_meta", o.gen, int64(len(o.copied)))
		}).
		When("migrate_part", func(pr *guardian.Process, m *guardian.Message) {
			hid, gen, cursor := m.Str(0), m.Int(1), int(m.Int(2))
			o := sh.out[hid]
			if o == nil || o.acked {
				reply(pr, m, "migrate_denied", "no snap")
				return
			}
			if gen != o.gen {
				reply(pr, m, "migrate_denied", "snap restarted")
				return
			}
			list := o.list()
			if cursor < 0 || cursor > len(list) {
				reply(pr, m, "migrate_denied", "bad cursor")
				return
			}
			end := cursor + partChunk
			if end > len(list) {
				end = len(list)
			}
			chunk := make(map[string]int64, end-cursor)
			bals := o.balances()
			for _, name := range list[cursor:end] {
				chunk[name] = bals[name]
			}
			done := int64(0)
			if end == len(list) {
				done = 1
			}
			reply(pr, m, "snap_part", int64(end), done, accountsSeq(chunk))
		}).
		When("migrate_cut", func(pr *guardian.Process, m *guardian.Message) {
			hid, gen := m.Str(0), m.Int(1)
			o := sh.out[hid]
			if o == nil || o.acked {
				reply(pr, m, "migrate_denied", "no snap")
				return
			}
			dsnap := func() xrep.Value {
				if sh.dedup == nil {
					return xrep.Seq{}
				}
				return sh.dedup.Snapshot()
			}
			if o.cut {
				// The retained tail is owed ONLY to the puller that staged
				// pre-cut pages (cutGen): its balances lack the tail. A
				// post-cut puller staged pages from final — tail already
				// folded in — and must get an empty tail, or every account
				// mutated between snap and cut would be double-counted. Any
				// other generation (a dead puller's duplicate, a pre-recovery
				// puller) is denied so it re-pulls from the durable final.
				switch {
				case gen == o.cutGen && o.cutGen != 0:
					reply(pr, m, "cut_done", gen, tailSeq(o.cutTail), dsnap())
				case gen == o.gen:
					reply(pr, m, "cut_done", gen, xrep.Seq{}, dsnap())
				default:
					reply(pr, m, "migrate_denied", "snap restarted")
				}
				return
			}
			if gen != o.gen {
				// A stale cut request (a dead puller's duplicate arriving
				// after a newer snapshot) must not seal a copy it never
				// staged: the live puller would mix pre- and post-cut pages.
				reply(pr, m, "migrate_denied", "snap restarted")
				return
			}
			// Refuse the cut while 2PC escrow holds pin any moving account:
			// the coordinator settles acks by participant identity, so a
			// hold must resolve where it was prepared. The puller retries;
			// holds are short-lived by construction.
			for _, t := range sh.txns {
				if t.phase != "prepared" {
					continue
				}
				if mem, ok := o.ring.Owner(t.acct); ok && mem.Name == o.dest {
					reply(pr, m, "cut_busy")
					return
				}
			}
			final := make(map[string]int64, len(o.copied))
			for name, bal := range o.copied {
				final[name] = bal
			}
			tail := o.tail
			for _, op := range tail {
				applyTailOp(final, op)
			}
			h := sh.hooks()
			if h.BeforeCut != nil {
				h.BeforeCut(hid)
			}
			sh.appendAndFold(movedOutRec, xrep.Seq{
				xrep.Str(hid), xrep.Str(o.dest), xrep.Str(string(o.blob)), accountsSeq(final),
			})
			// fold replaced sh.out[hid] with the durable post-cut entry;
			// carry over the volatile bits the re-reply paths need. The
			// servable generation is re-keyed so a re-pull of final pages
			// can never match cutGen and receive the tail a second time.
			if no := sh.out[hid]; no != nil {
				sh.genCounter++
				no.gen = sh.genCounter
				no.cutGen = o.gen
				no.cutTail = tail
			}
			if h.AfterCut != nil {
				h.AfterCut(hid)
			}
			reply(pr, m, "cut_done", o.gen, tailSeq(tail), dsnap())
		}).
		When("migrate_ack", func(pr *guardian.Process, m *guardian.Message) {
			hid := m.Str(0)
			if o := sh.out[hid]; o != nil && o.cut && !o.acked {
				sh.appendAndFold(ackedRec, xrep.Seq{xrep.Str(hid)})
			}
			reply(pr, m, "ack_ok")
		}).
		// 2PC escrow participation (tpc vocabulary) for cross-shard
		// transfers: op is (kind "debit"|"credit", account, amount). A
		// debit prepare places a durable hold the balance checks subtract,
		// so a committed debit can never overdraw.
		When("prepare", func(pr *guardian.Process, m *guardian.Message) {
			txid := m.Str(0)
			if t := sh.txns[txid]; t != nil {
				switch t.phase {
				case "prepared", "committed":
					reply(pr, m, "vote_yes", txid)
				default:
					reply(pr, m, "vote_no", txid)
				}
				return
			}
			op, _ := m.Arg(1)
			kind, acct, amount, ok := parseEscrowOp(op)
			if !ok || amount <= 0 {
				reply(pr, m, "vote_no", txid)
				return
			}
			// Presence is authority: an absent account is either foreign
			// (the coordinator used a stale ring) or nonexistent — vote no
			// either way, and let the client re-plan against a fresh ring.
			bal, present := sh.st.accounts[acct]
			if !present {
				reply(pr, m, "vote_no", txid)
				return
			}
			if kind == "debit" && bal-sh.st.holds[acct] < amount {
				reply(pr, m, "vote_no", txid)
				return
			}
			// The refusal above is deliberately unlogged (presumed abort):
			// a re-prepare after a crash re-evaluates, which is safe before
			// any coordinator decision. The yes vote is a durable promise.
			sh.appendAndFold(tpcRec, xrep.Seq{
				xrep.Str("prepared"), xrep.Str(txid), xrep.Str(kind), xrep.Str(acct), xrep.Int(amount),
			})
			if h := sh.hooks().AfterPrepare; h != nil {
				h(txid)
			}
			reply(pr, m, "vote_yes", txid)
		}).
		When("commit", func(pr *guardian.Process, m *guardian.Message) {
			txid := m.Str(0)
			t := sh.txns[txid]
			switch {
			case t == nil:
				// A commit needs our yes vote; unknown means impossible
				// under 2PC. Ignore rather than invent an ack.
			case t.phase == "committed":
				reply(pr, m, "ack_commit", txid)
			case t.phase == "prepared":
				sh.appendAndFold(tpcRec, xrep.Seq{
					xrep.Str("committed"), xrep.Str(txid), xrep.Str(""), xrep.Str(""), xrep.Int(0),
				})
				if t.kind == "debit" {
					sh.journal("withdraw", t.acct, t.amount)
				} else {
					sh.journal("deposit", t.acct, t.amount)
				}
				reply(pr, m, "ack_commit", txid)
			}
		}).
		When("abort", func(pr *guardian.Process, m *guardian.Message) {
			txid := m.Str(0)
			t := sh.txns[txid]
			switch {
			case t == nil, t.phase == "aborted":
				reply(pr, m, "ack_abort", txid) // presumed abort
			case t.phase == "prepared":
				sh.appendAndFold(tpcRec, xrep.Seq{
					xrep.Str("aborted"), xrep.Str(txid), xrep.Str(""), xrep.Str(""), xrep.Int(0),
				})
				reply(pr, m, "ack_abort", txid)
			}
		})
}

// parseEscrowOp decodes a 2PC escrow operation value.
func parseEscrowOp(v xrep.Value) (kind, acct string, amount int64, ok bool) {
	seq, isSeq := v.(xrep.Seq)
	if !isSeq || len(seq) != 3 {
		return "", "", 0, false
	}
	k, ok0 := seq[0].(xrep.Str)
	a, ok1 := seq[1].(xrep.Str)
	n, ok2 := seq[2].(xrep.Int)
	if !ok0 || !ok1 || !ok2 || (string(k) != "debit" && string(k) != "credit") {
		return "", "", 0, false
	}
	return string(k), string(a), int64(n), true
}

// EscrowOp builds the tpc operation value a cross-shard transfer sends a
// branch participant: kind is "debit" or "credit".
func EscrowOp(kind, acct string, amount int64) xrep.Value {
	return xrep.Seq{xrep.Str(kind), xrep.Str(acct), xrep.Int(amount)}
}

// activePrecut reports whether any outbound handoff is mid-copy.
func (sh *shardRuntime) activePrecut() bool {
	for _, o := range sh.out {
		if !o.cut && !o.acked {
			return true
		}
	}
	return false
}

// spawnPuller starts the destination-side pull for one handoff. The
// puller drives the source with retried calls and funnels every state
// change back through the guardian's own receive loop (handoff_stage /
// handoff_install), preserving the single-writer discipline.
func (sh *shardRuntime) spawnPuller(hid, blob string, src xrep.PortName) {
	self := sh.self
	opts := sh.callOpts()
	member := sh.member
	sh.g.Spawn("handoff-pull", func(q *guardian.Process) {
		giveUp := func() {
			_ = q.Send(self, "handoff_fail", hid)
		}
		for round := 0; round < 8; round++ {
			sm, err := sendprim.Call(q, src, MigrateReplyType, opts, "migrate_snap", hid, blob, member)
			if err != nil || sm.Command != "snap_meta" {
				giveUp()
				return
			}
			gen := sm.Int(0)

			cursor := int64(0)
			restarted := false
			for {
				pm, err := sendprim.Call(q, src, MigrateReplyType, opts, "migrate_part", hid, gen, cursor)
				if err != nil {
					giveUp()
					return
				}
				if pm.Command != "snap_part" {
					restarted = true // source restarted the copy: re-snap
					break
				}
				next, done := pm.Int(0), pm.Int(1)
				entries := pm.Args[2]
				if _, err := sendprim.Call(q, self, MigrateReplyType, opts, "handoff_stage", hid, entries); err != nil {
					giveUp()
					return
				}
				cursor = next
				if done == 1 {
					break
				}
			}
			if restarted {
				continue
			}

			var cm *guardian.Message
			busy := 0
			for {
				cm, err = sendprim.Call(q, src, MigrateReplyType, opts, "migrate_cut", hid, gen)
				if err != nil {
					giveUp()
					return
				}
				if cm.Command != "cut_busy" {
					break
				}
				busy++
				if busy > 256 {
					giveUp()
					return
				}
				if !q.Pause(opts.Backoff + time.Millisecond) {
					return
				}
			}
			if cm.Command != "cut_done" {
				// Denied — our generation no longer matches the source's
				// servable snapshot (it restarted the copy, recovered, or
				// cut under another generation): re-pull from the top so the
				// staged pages and the tail come from one generation.
				continue
			}
			if cm.Int(0) != gen {
				// Defensive: a cut_done for a generation we did not request
				// can only be a stale duplicate; restage rather than trust it.
				continue
			}
			tail := cm.Args[1]
			dsnap, _ := cm.Arg(2)
			im, err := sendprim.Call(q, self, MigrateReplyType, opts, "handoff_install", hid, blob, tail, dsnap)
			if err != nil || im.Command != "installed" {
				giveUp()
				return
			}
			return
		}
		giveUp()
	})
}

// ShardSnapshot reports a shard branch's member name, adopted ring epoch,
// and account table — the owner-side facility DST invariant checkers use
// to assert single-owner-per-epoch after a drain.
func ShardSnapshot(g *guardian.Guardian) (member string, epoch int64, accounts map[string]int64, ok bool) {
	st, isBranch := g.State().(*branchState)
	if !isBranch || st.shard == nil {
		return "", 0, nil, false
	}
	sh := st.shard
	if sh.ring != nil {
		epoch = sh.ring.Epoch
	}
	out := make(map[string]int64, len(st.accounts))
	for k, v := range st.accounts {
		out[k] = v
	}
	return sh.member, epoch, out, true
}
