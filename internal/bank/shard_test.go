package bank_test

// Integration tests for the sharded bank: a consistent-hash ring of
// branch guardians behind the nameserver's membership service, with live
// rebalancing (join/leave) driven under client traffic. The invariants
// audited here are the same three the DST ring workload sweeps:
// conservation (no money minted or burned by a migration), exactly-once
// (every acked op applied exactly once, even when its retry crosses an
// epoch flip), and single-owner-per-epoch (each account served by exactly
// the shard the committed ring names).

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/amo"
	"repro/internal/bank"
	"repro/internal/guardian"
	"repro/internal/nameserv"
	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/sendprim"
	"repro/internal/tpc"
	"repro/internal/xrep"
)

const shardTestTimeout = 5 * time.Second

// shardCluster is a world with a nameserver, a 2PC coordinator, and a set
// of shard-mode branches, one per node so they can crash independently.
type shardCluster struct {
	t       *testing.T
	w       *guardian.World
	nsPort  xrep.PortName
	coord   xrep.PortName
	ringNm  string
	nodes   map[string]*guardian.Node
	created map[string]*guardian.Created
	members map[string]ring.Member
	drv     *guardian.Node
	drivers int
}

func deployShardCluster(t *testing.T, net netsim.Config, shards ...string) *shardCluster {
	t.Helper()
	w := guardian.NewWorld(guardian.Config{Net: net})
	t.Cleanup(func() { _ = w.Close() })
	w.MustRegister(bank.BranchDef())
	w.MustRegister(nameserv.Def())
	w.MustRegister(tpc.CoordinatorDef())

	reg := w.MustAddNode("registry")
	nsCr, err := reg.Bootstrap(nameserv.DefName)
	if err != nil {
		t.Fatal(err)
	}
	con := w.MustAddNode("coordinator")
	coCr, err := con.Bootstrap(tpc.CoordinatorDefName)
	if err != nil {
		t.Fatal(err)
	}
	c := &shardCluster{
		t: t, w: w,
		nsPort:  nsCr.Ports[0],
		coord:   coCr.Ports[0],
		ringNm:  "accounts",
		nodes:   map[string]*guardian.Node{"registry": reg, "coordinator": con},
		created: make(map[string]*guardian.Created),
		members: make(map[string]ring.Member),
	}
	for _, s := range shards {
		c.addShard(s)
	}
	c.drv = w.MustAddNode("drivers")
	return c
}

// addShard boots one shard-mode branch on its own node.
func (c *shardCluster) addShard(name string) ring.Member {
	c.t.Helper()
	n := c.w.MustAddNode(name)
	cr, err := n.Bootstrap(bank.BranchDefName, bank.ShardArg(name))
	if err != nil {
		c.t.Fatal(err)
	}
	m := ring.Member{Name: name, Native: cr.Ports[0], Amo: cr.Ports[1]}
	c.nodes[name] = n
	c.created[name] = cr
	c.members[name] = m
	return m
}

// driver makes a fresh client process with a nameserver handle.
func (c *shardCluster) driver() (*guardian.Process, *nameserv.Client) {
	c.t.Helper()
	c.drivers++
	_, pr, err := c.drv.NewDriver(fmt.Sprintf("drv-%d", c.drivers))
	if err != nil {
		c.t.Fatal(err)
	}
	ns, err := nameserv.NewClient(pr, c.nsPort)
	if err != nil {
		c.t.Fatal(err)
	}
	return pr, ns
}

// bootstrapRing commits epoch 1 over the named shards.
func (c *shardCluster) bootstrapRing(shards ...string) *ring.Ring {
	c.t.Helper()
	ms := make([]ring.Member, 0, len(shards))
	for _, s := range shards {
		ms = append(ms, c.members[s])
	}
	r := ring.New(c.ringNm, 0, ms...)
	pr, ns := c.driver()
	if err := bank.Bootstrap(pr, r, bank.RebalanceOptions{NS: ns}); err != nil {
		c.t.Fatal(err)
	}
	return r
}

// router builds one client-side Router with its own amo session.
func (c *shardCluster) router() *bank.Router {
	c.t.Helper()
	pr, ns := c.driver()
	rt, err := bank.NewRouter(pr, bank.RouterOptions{
		NS:          ns,
		RingName:    c.ringNm,
		Coordinator: c.coord,
		Call: amo.CallerOptions{
			Timeout: 50 * time.Millisecond,
			Retries: 40,
			Backoff: amo.BackoffPolicy{Base: 2 * time.Millisecond, Cap: 30 * time.Millisecond, Jitter: 0.5},
		},
	})
	if err != nil {
		c.t.Fatal(err)
	}
	return rt
}

// sync pings every shard's native port and returns only after each has
// answered — the receive establishes a happens-before edge with all state
// the shard wrote earlier, so the snapshots below are race-free.
func (c *shardCluster) sync(shards ...string) {
	c.t.Helper()
	pr, _ := c.driver()
	for _, s := range shards {
		_, err := sendprim.Call(pr, c.members[s].Native, bank.MigrateReplyType,
			sendprim.CallOptions{Timeout: 100 * time.Millisecond, Retries: 20, Backoff: 5 * time.Millisecond},
			"handoff_status", "sync-probe")
		if err != nil {
			c.t.Fatalf("sync %s: %v", s, err)
		}
	}
}

// snapshot reads one shard's member name, adopted epoch, and accounts.
func (c *shardCluster) snapshot(shard string) (int64, map[string]int64) {
	c.t.Helper()
	g, ok := c.nodes[shard].GuardianByID(c.created[shard].GuardianID)
	if !ok {
		c.t.Fatalf("shard %s guardian missing", shard)
	}
	member, epoch, accts, ok := bank.ShardSnapshot(g)
	if !ok || member != shard {
		c.t.Fatalf("shard %s snapshot: member=%q ok=%v", shard, member, ok)
	}
	return epoch, accts
}

// auditPlacement asserts single-owner-per-epoch: every shard has adopted
// exactly r.Epoch and every account lives on exactly the shard r names.
// It returns the cluster-wide balance total for conservation checks.
func (c *shardCluster) auditPlacement(r *ring.Ring, shards []string, accounts []string) int64 {
	c.t.Helper()
	c.sync(shards...)
	where := make(map[string]string)
	var total int64
	for _, s := range shards {
		epoch, accts := c.snapshot(s)
		if epoch != r.Epoch {
			c.t.Errorf("shard %s adopted epoch %d, committed ring is %d", s, epoch, r.Epoch)
		}
		for a, bal := range accts {
			if prev, dup := where[a]; dup {
				c.t.Errorf("account %s present on both %s and %s", a, prev, s)
			}
			where[a] = s
			total += bal
		}
	}
	for _, a := range accounts {
		owner, ok := r.Owner(a)
		if !ok {
			c.t.Fatalf("ring has no owner for %s", a)
		}
		if where[a] != owner.Name {
			c.t.Errorf("account %s on shard %q, ring epoch %d owns it to %q", a, where[a], r.Epoch, owner.Name)
		}
	}
	return total
}

// accountsOwnedBy generates keys until n of them hash to member.
func accountsOwnedBy(r *ring.Ring, member, prefix string, n int) []string {
	var out []string
	for i := 0; len(out) < n && i < 100000; i++ {
		k := fmt.Sprintf("%s-%04d", prefix, i)
		if m, ok := r.Owner(k); ok && m.Name == member {
			out = append(out, k)
		}
	}
	return out
}

// mustOK fails the test unless the reply outcome is ok.
func mustOK(t *testing.T, rep *amo.Reply, err error, what string) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	if rep.Command != bank.OutcomeOK {
		t.Fatalf("%s: outcome %s", what, rep.Command)
	}
}

// TestRingShardedOpsAndPlacement opens accounts through the Router and
// checks every one landed on — and is served by — the ring-assigned shard.
func TestRingShardedOpsAndPlacement(t *testing.T) {
	shards := []string{"s1", "s2", "s3"}
	c := deployShardCluster(t, netsim.Config{Seed: 1}, shards...)
	r := c.bootstrapRing(shards...)
	rt := c.router()
	defer rt.Close()

	var accounts []string
	var want int64
	for i := 0; i < 30; i++ {
		a := fmt.Sprintf("acct-%02d", i)
		accounts = append(accounts, a)
		rep, err := rt.Call(a, "open", a)
		mustOK(t, rep, err, "open "+a)
		amt := int64(10 * (i + 1))
		rep, err = rt.Call(a, "deposit", a, amt)
		mustOK(t, rep, err, "deposit "+a)
		want += amt
	}
	for i, a := range accounts {
		rep, err := rt.Call(a, "balance", a)
		if err != nil || rep.Command != "balance_is" || rep.Int(0) != int64(10*(i+1)) {
			t.Fatalf("balance %s: %v %v", a, rep, err)
		}
	}
	if total := c.auditPlacement(r, shards, accounts); total != want {
		t.Errorf("conservation: cluster total %d, deposited %d", total, want)
	}
	// Placement must spread: with 64 vnodes no shard should be empty.
	for _, s := range shards {
		if _, accts := c.snapshot(s); len(accts) == 0 {
			t.Errorf("shard %s owns no accounts out of %d", s, len(accounts))
		}
	}
}

// TestRingCrossShardTransfer routes a transfer whose accounts live on
// different shards through the 2PC escrow path, and a same-shard pair
// through the single amo op.
func TestRingCrossShardTransfer(t *testing.T) {
	shards := []string{"s1", "s2"}
	c := deployShardCluster(t, netsim.Config{Seed: 2}, shards...)
	r := c.bootstrapRing(shards...)
	rt := c.router()
	defer rt.Close()

	a := accountsOwnedBy(r, "s1", "x", 2)
	b := accountsOwnedBy(r, "s2", "y", 1)
	for _, acct := range []string{a[0], a[1], b[0]} {
		rep, err := rt.Call(acct, "open", acct)
		mustOK(t, rep, err, "open "+acct)
	}
	rep, err := rt.Call(a[0], "deposit", a[0], int64(500))
	mustOK(t, rep, err, "seed")

	// Cross-shard: coordinator-run escrow legs.
	out, err := rt.Transfer(a[0], b[0], 200)
	if err != nil || out != bank.OutcomeOK {
		t.Fatalf("cross-shard transfer: %q %v", out, err)
	}
	// Same-shard: one amo transfer.
	out, err = rt.Transfer(a[0], a[1], 100)
	if err != nil || out != bank.OutcomeOK {
		t.Fatalf("same-shard transfer: %q %v", out, err)
	}
	// Overdraw cross-shard: the debit participant votes no.
	out, err = rt.Transfer(a[0], b[0], 10_000)
	if err != nil || out != tpc.OutcomeAborted {
		t.Fatalf("overdraw should abort: %q %v", out, err)
	}

	for acct, want := range map[string]int64{a[0]: 200, a[1]: 100, b[0]: 200} {
		rep, err := rt.Call(acct, "balance", acct)
		if err != nil || rep.Command != "balance_is" || rep.Int(0) != want {
			t.Fatalf("balance %s: %v %v (want %d)", acct, rep, err, want)
		}
	}
	if total := c.auditPlacement(r, shards, []string{a[0], a[1], b[0]}); total != 500 {
		t.Errorf("conservation: total %d after transfers, want 500", total)
	}
}

// TestRingRebalanceJoinUnderTraffic grows a 3-shard ring to 4 while
// concurrent tellers keep depositing, then audits conservation,
// exactly-once, and single-owner-per-epoch against the tellers' ledgers.
func TestRingRebalanceJoinUnderTraffic(t *testing.T) {
	shards := []string{"s1", "s2", "s3"}
	c := deployShardCluster(t, netsim.Config{Seed: 3, BaseLatency: 100 * time.Microsecond}, shards...)
	r1 := c.bootstrapRing(shards...)

	const tellers = 4
	const perTeller = 6
	const seedBal = 1000

	setup := c.router()
	var accounts []string
	for i := 0; i < tellers*perTeller; i++ {
		a := fmt.Sprintf("acct-%03d", i)
		accounts = append(accounts, a)
		rep, err := setup.Call(a, "open", a)
		mustOK(t, rep, err, "open "+a)
		rep, err = setup.Call(a, "deposit", a, int64(seedBal))
		mustOK(t, rep, err, "seed "+a)
	}
	setup.Close()

	// Tellers hammer deposits while the ring grows underneath them.
	okDeposits := make([]map[string]int64, tellers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for ti := 0; ti < tellers; ti++ {
		rt := c.router()
		mine := accounts[ti*perTeller : (ti+1)*perTeller]
		okDeposits[ti] = make(map[string]int64)
		wg.Add(1)
		go func(ti int, rt *bank.Router, mine []string) {
			defer wg.Done()
			defer rt.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a := mine[i%len(mine)]
				rep, err := rt.Call(a, "deposit", a, int64(10))
				if err != nil {
					t.Errorf("teller %d: deposit %s: %v", ti, a, err)
					return
				}
				if rep.Command != bank.OutcomeOK {
					t.Errorf("teller %d: deposit %s: %s", ti, a, rep.Command)
					return
				}
				okDeposits[ti][a] += 10
			}
		}(ti, rt, mine)
	}

	// Let traffic establish, then join s4 live.
	time.Sleep(50 * time.Millisecond)
	m4 := c.addShard("s4")
	pr, ns := c.driver()
	r2, err := bank.Join(pr, c.ringNm, m4, bank.RebalanceOptions{NS: ns})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if r2.Epoch != r1.Epoch+1 {
		t.Fatalf("join produced epoch %d, want %d", r2.Epoch, r1.Epoch+1)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Exactly-once: each account's balance equals its seed plus exactly
	// the deposits its teller saw acked — a double-applied retry (e.g. one
	// re-routed across the epoch flip) or a lost op would both break this.
	shards = append(shards, "s4")
	audit := c.router()
	defer audit.Close()
	var want int64
	for ti := 0; ti < tellers; ti++ {
		for _, a := range accounts[ti*perTeller : (ti+1)*perTeller] {
			exp := int64(seedBal) + okDeposits[ti][a]
			want += exp
			rep, err := audit.Call(a, "balance", a)
			if err != nil || rep.Command != "balance_is" {
				t.Fatalf("balance %s: %v %v", a, rep, err)
			}
			if got := rep.Int(0); got != exp {
				t.Errorf("exactly-once: %s balance %d, ledger says %d", a, got, exp)
			}
		}
	}
	if total := c.auditPlacement(r2, shards, accounts); total != want {
		t.Errorf("conservation: cluster total %d, ledgers say %d", total, want)
	}
}

// TestRingLeaveDrainsShard removes a member and checks its whole range
// moved and the leaver serves only redirects afterwards.
func TestRingLeaveDrainsShard(t *testing.T) {
	shards := []string{"s1", "s2", "s3"}
	c := deployShardCluster(t, netsim.Config{Seed: 4}, shards...)
	r1 := c.bootstrapRing(shards...)
	rt := c.router()
	defer rt.Close()

	var accounts []string
	for i := 0; i < 24; i++ {
		a := fmt.Sprintf("acct-%03d", i)
		accounts = append(accounts, a)
		rep, err := rt.Call(a, "open", a)
		mustOK(t, rep, err, "open "+a)
		rep, err = rt.Call(a, "deposit", a, int64(100))
		mustOK(t, rep, err, "seed "+a)
	}

	pr, ns := c.driver()
	r2, err := bank.Leave(pr, c.ringNm, "s2", bank.RebalanceOptions{NS: ns})
	if err != nil {
		t.Fatalf("leave: %v", err)
	}
	if r2.Epoch != r1.Epoch+1 {
		t.Fatalf("leave produced epoch %d", r2.Epoch)
	}
	c.sync("s1", "s2", "s3")
	if _, accts := c.snapshot("s2"); len(accts) != 0 {
		t.Errorf("leaver still holds %d accounts: %v", len(accts), accts)
	}
	// The drained member still answers with redirects, so a stale client
	// that cached its port converges instead of erroring.
	if total := c.auditPlacement(r2, []string{"s1", "s3"}, accounts); total != 24*100 {
		t.Errorf("conservation: total %d after drain, want %d", total, 24*100)
	}
	for _, a := range accounts {
		rep, err := rt.Call(a, "balance", a)
		if err != nil || rep.Command != "balance_is" || rep.Int(0) != 100 {
			t.Fatalf("post-drain balance %s: %v %v", a, rep, err)
		}
	}
}

// TestRingMidCallMigrationNoDoubleApply is the epoch-flip retry audit:
// a call executes at the old owner, its reply is lost, the range
// migrates, and the retry — carrying the SAME request id — lands first on
// the old owner (which must redirect without executing) and then on the
// new owner (which must answer from the migrated dedup state without
// re-executing). The account must be credited exactly once.
func TestRingMidCallMigrationNoDoubleApply(t *testing.T) {
	shards := []string{"s1", "s2"}
	c := deployShardCluster(t, netsim.Config{Seed: 5}, shards...)
	r1 := c.bootstrapRing(shards...)

	acct := accountsOwnedBy(r1, "s1", "mig", 1)[0]
	rt := c.router()
	defer rt.Close()
	rep, err := rt.Call(acct, "open", acct)
	mustOK(t, rep, err, "open")

	// Hand-rolled amo envelope so the test controls the request id.
	g, pr, err := c.drv.NewDriver("mig-client")
	if err != nil {
		t.Fatal(err)
	}
	reply, err := g.NewPort(amo.ReplyType, 8)
	if err != nil {
		t.Fatal(err)
	}
	deposit := func(to xrep.PortName, seq int64) (string, xrep.Seq) {
		t.Helper()
		if err := pr.SendReplyTo(to, reply.Name(), amo.ReqCommand,
			"mig-session", seq, int64(0), "deposit", xrep.Seq{xrep.Str(acct), xrep.Int(100)}); err != nil {
			t.Fatal(err)
		}
		m, st := pr.Receive(shardTestTimeout, reply)
		if st != guardian.RecvOK {
			t.Fatalf("receive: %v", st)
		}
		if m.Int(0) != seq {
			t.Fatalf("seq echo %d, want %d", m.Int(0), seq)
		}
		return m.Str(1), m.Args[2].(xrep.Seq)
	}

	// 1. The call executes at the old owner; pretend the reply was lost.
	if out, _ := deposit(c.members["s1"].Amo, 1); out != bank.OutcomeOK {
		t.Fatalf("initial deposit: %s", out)
	}

	// 2. The range migrates: s1 leaves, everything moves to s2.
	pr2, ns := c.driver()
	r2, err := bank.Leave(pr2, c.ringNm, "s1", bank.RebalanceOptions{NS: ns})
	if err != nil {
		t.Fatalf("leave: %v", err)
	}

	// 3. The retry hits the old owner: a moved redirect naming the new
	// owner and its epoch — regenerable routing state, never an effect.
	out, args := deposit(c.members["s1"].Amo, 1)
	if out != amo.OutcomeMoved {
		t.Fatalf("retry at old owner: %s, want %s", out, amo.OutcomeMoved)
	}
	movedTo, ok := args[0].(xrep.PortName)
	if !ok || movedTo != c.members["s2"].Amo {
		t.Fatalf("redirect names %v, want s2's amo port", args[0])
	}
	if ep, ok := args[1].(xrep.Int); !ok || int64(ep) != r2.Epoch {
		t.Fatalf("redirect epoch %v, want %d", args[1], r2.Epoch)
	}

	// 4. Following the redirect must hit the dedup state that traveled
	// with the range: same cached outcome, no second execution.
	if out, _ := deposit(c.members["s2"].Amo, 1); out != bank.OutcomeOK {
		t.Fatalf("retry at new owner: %s", out)
	}
	rep, err = rt.Call(acct, "balance", acct)
	if err != nil || rep.Command != "balance_is" || rep.Int(0) != 100 {
		t.Fatalf("double-apply: balance %v %v, want exactly 100", rep, err)
	}

	// 5. The Caller path end to end: a session whose Resolve still pins
	// the OLD owner (a cached resolution across the epoch flip). The
	// moved redirect inside the Caller must override the stale resolve —
	// with the same request id — and the op must apply exactly once.
	stale, err := amo.NewCaller(pr2, amo.CallerOptions{
		Timeout: 50 * time.Millisecond,
		Retries: 20,
		Backoff: amo.BackoffPolicy{Base: 2 * time.Millisecond},
		Resolve: func() (xrep.PortName, bool) { return c.members["s1"].Amo, true },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	srep, err := stale.Call(c.members["s1"].Amo, "withdraw", acct, int64(30))
	if err != nil || srep.Command != bank.OutcomeOK {
		t.Fatalf("stale-resolve withdraw: %v %v", srep, err)
	}
	rep, err = rt.Call(acct, "balance", acct)
	if err != nil || rep.Int(0) != 70 {
		t.Fatalf("post-withdraw balance %v %v, want 70", rep, err)
	}
	c.auditPlacement(r2, []string{"s2"}, []string{acct})
}

// TestRingCoordinatorCrashBetweenPrepareAndCommit pins a cross-shard
// transfer in the 2PC danger window: both participants — on different
// shards — have voted yes and the decision is logged, but the commit
// never reaches the debit leg before the coordinator dies. Recovery must
// re-drive the decision and drain the prepared slot deterministically:
// the escrow hold releases, the debit applies exactly once, and the
// re-announced commit to the already-committed leg is a no-op.
func TestRingCoordinatorCrashBetweenPrepareAndCommit(t *testing.T) {
	shards := []string{"s1", "s2"}
	c := deployShardCluster(t, netsim.Config{Seed: 7}, shards...)
	r1 := c.bootstrapRing(shards...)
	rt := c.router()
	defer rt.Close()

	a := accountsOwnedBy(r1, "s1", "cr", 1)[0] // credit leg
	b := accountsOwnedBy(r1, "s2", "db", 1)[0] // debit leg, holds the escrow
	for _, acct := range []string{a, b} {
		rep, err := rt.Call(acct, "open", acct)
		mustOK(t, rep, err, "open "+acct)
	}
	rep, err := rt.Call(b, "deposit", b, int64(500))
	mustOK(t, rep, err, "seed")

	// Hold s2 in its prepared state: the hook fires after the durable
	// prepare, the test severs coordinator→s2 before letting the yes vote
	// out, so the decision can never reach this leg.
	prepared := make(chan string, 1)
	release := make(chan struct{})
	var once sync.Once
	bank.SetShardHooks("s2", bank.ShardHooks{AfterPrepare: func(txid string) {
		once.Do(func() {
			prepared <- txid
			<-release
		})
	}})
	defer bank.SetShardHooks("s2", bank.ShardHooks{})

	done := make(chan string, 1)
	go func() {
		out, err := rt.Transfer(b, a, 200)
		if err != nil {
			t.Errorf("transfer: %v", err)
		}
		done <- out
	}()
	select {
	case <-prepared:
		// Sever only the decision path: the yes vote (s2→coordinator)
		// still flows, the commit (coordinator→s2) cannot.
		c.w.Net().SetLink("coordinator", "s2", &netsim.Config{LossRate: 1.0})
		close(release)
	case <-time.After(shardTestTimeout):
		t.Fatal("debit leg never prepared")
	}

	out := <-done
	if t.Failed() {
		return
	}
	if out != bank.OutcomeOK {
		t.Fatalf("transfer outcome %q, want committed", out)
	}

	// The decision is durable at the coordinator and applied on the
	// credit leg, but s2 still holds the escrow: its balance is intact
	// and the hold blocks spending into the prepared amount.
	rep, err = rt.Call(b, "balance", b)
	if err != nil || rep.Int(0) != 500 {
		t.Fatalf("debit leg balance %v %v, want 500 (commit severed)", rep, err)
	}
	rep, err = rt.Call(b, "withdraw", b, int64(400))
	if err != nil || rep.Command != bank.OutcomeInsufficient {
		t.Fatalf("withdraw into the hold: %v %v, want insufficient", rep, err)
	}

	// Kill the coordinator in the window, heal the network, recover. Its
	// log shows tx decided but unsettled; recovery re-drives the commit.
	c.nodes["coordinator"].Crash()
	c.w.Net().SetLink("coordinator", "s2", nil)
	if err := c.nodes["coordinator"].Restart(); err != nil {
		t.Fatalf("coordinator restart: %v", err)
	}
	deadline := time.Now().Add(shardTestTimeout)
	for {
		rep, err = rt.Call(b, "balance", b)
		if err == nil && rep.Command == "balance_is" && rep.Int(0) == 300 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("debit leg never drained after recovery: %v %v", rep, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Hold fully released: the remaining balance is spendable to zero.
	rep, err = rt.Call(b, "withdraw", b, int64(300))
	mustOK(t, rep, err, "post-drain withdraw")
	// Re-announced commit on the already-committed credit leg was a
	// no-op: credited exactly once.
	rep, err = rt.Call(a, "balance", a)
	if err != nil || rep.Int(0) != 200 {
		t.Fatalf("credit leg %v %v, want exactly 200", rep, err)
	}
	if total := c.auditPlacement(r1, shards, []string{a, b}); total != 200 {
		t.Errorf("conservation: total %d, want 200", total)
	}
}

// movingAccounts generates keys owned by from under r1 that r2 hands to
// to — the witnesses of one planned move.
func movingAccounts(r1, r2 *ring.Ring, from, to, prefix string, n int) []string {
	var out []string
	for i := 0; len(out) < n && i < 100000; i++ {
		k := fmt.Sprintf("%s-%04d", prefix, i)
		o1, ok1 := r1.Owner(k)
		o2, ok2 := r2.Owner(k)
		if ok1 && ok2 && o1.Name == from && o2.Name == to {
			out = append(out, k)
		}
	}
	return out
}

// TestRingAmnesicRepullAfterCut pins the destination-crash-before-install
// window with a NON-EMPTY tail. The sequence, played puller-by-hand so the
// window is deterministic: a snapshot is staged under generation G, client
// traffic mutates the moving range (those ops ride the tail), the source
// cuts durably — and then the destination never installs (its staged pages
// and the received cut died with it). The re-driven pull serves pages from
// the source's durable final, which already has the tail folded in; the
// cut re-reply for that pull must carry an EMPTY tail, or every account
// mutated between snap and cut is double-counted.
func TestRingAmnesicRepullAfterCut(t *testing.T) {
	shards := []string{"s1", "s2"}
	c := deployShardCluster(t, netsim.Config{Seed: 8}, shards...)
	r1 := c.bootstrapRing(shards...)
	m3 := c.addShard("s3")
	r2, err := r1.WithJoin(m3)
	if err != nil {
		t.Fatal(err)
	}

	moving := movingAccounts(r1, r2, "s1", "s3", "mv", 3)
	staying := accountsOwnedBy(r1, "s2", "st", 2)
	if len(moving) < 3 || len(staying) < 2 {
		t.Fatalf("placement found %d moving / %d staying accounts", len(moving), len(staying))
	}
	all := append(append([]string{}, moving...), staying...)
	rt := c.router()
	defer rt.Close()
	for _, a := range all {
		rep, err := rt.Call(a, "open", a)
		mustOK(t, rep, err, "open "+a)
		rep, err = rt.Call(a, "deposit", a, int64(50))
		mustOK(t, rep, err, "seed "+a)
	}

	// Stage the snapshot, as the destination's puller would.
	hid := bank.HandoffID(c.ringNm, r2.Epoch, "s1", "s3")
	blob := string(r2.Marshal())
	pr, _ := c.driver()
	opts := sendprim.CallOptions{Timeout: 200 * time.Millisecond, Retries: 20, Backoff: 5 * time.Millisecond}
	src := c.members["s1"].Native
	sm, err := sendprim.Call(pr, src, bank.MigrateReplyType, opts, "migrate_snap", hid, blob, "s3")
	if err != nil || sm.Command != "snap_meta" {
		t.Fatalf("migrate_snap: %v %v", sm, err)
	}
	gen := sm.Int(0)

	// Concurrent traffic on the moving range: these land after the frozen
	// copy, so the cut must ship them as the tail.
	for _, a := range moving {
		rep, err := rt.Call(a, "deposit", a, int64(7))
		mustOK(t, rep, err, "tail deposit "+a)
	}

	cm, err := sendprim.Call(pr, src, bank.MigrateReplyType, opts, "migrate_cut", hid, gen)
	if err != nil || cm.Command != "cut_done" || cm.Int(0) != gen {
		t.Fatalf("migrate_cut: %v %v", cm, err)
	}
	if tail, ok := cm.Args[1].(xrep.Seq); !ok || len(tail) == 0 {
		t.Fatalf("setup: cut shipped an empty tail %v; the regression needs traffic between snap and cut", cm.Args[1])
	}

	// The install never happens — the destination is amnesiac. The
	// re-driven rebalance re-pulls the already-cut range; with the tail
	// folded into the durable final, it must be applied exactly once.
	pr2, ns := c.driver()
	if err := bank.Rebalance(pr2, r2, bank.RebalanceOptions{NS: ns}); err != nil {
		t.Fatalf("re-driven rebalance: %v", err)
	}
	for _, a := range moving {
		rep, err := rt.Call(a, "balance", a)
		if err != nil || rep.Command != "balance_is" {
			t.Fatalf("balance %s: %v %v", a, rep, err)
		}
		if got := rep.Int(0); got != 57 {
			t.Errorf("exactly-once: %s balance %d, want 57 (tail applied twice?)", a, got)
		}
	}
	want := int64(len(all)) * 50
	want += int64(len(moving)) * 7
	if total := c.auditPlacement(r2, []string{"s1", "s2", "s3"}, all); total != want {
		t.Errorf("conservation: cluster total %d, want %d", total, want)
	}
}

// TestRingTransferSplitWindowAborts parks a transfer in the cut→commit
// window: the source has durably cut a range toward the joiner (so it
// answers split for pairs straddling the pending epoch) while the
// committed ring the Router plans against still co-locates both accounts.
// Transfer must report the abort outcome its callers know to retry, never
// the raw amo_split routing constant.
func TestRingTransferSplitWindowAborts(t *testing.T) {
	shards := []string{"s1", "s2"}
	c := deployShardCluster(t, netsim.Config{Seed: 9}, shards...)
	r1 := c.bootstrapRing(shards...)
	m3 := c.addShard("s3")
	r2, err := r1.WithJoin(m3)
	if err != nil {
		t.Fatal(err)
	}
	stay := movingAccounts(r1, r2, "s1", "s1", "sw", 1)
	move := movingAccounts(r1, r2, "s1", "s3", "sw", 1)
	if len(stay) == 0 || len(move) == 0 {
		t.Fatalf("placement found no witness pair (stay=%d move=%d)", len(stay), len(move))
	}
	rt := c.router()
	defer rt.Close()
	for _, a := range []string{stay[0], move[0]} {
		rep, err := rt.Call(a, "open", a)
		mustOK(t, rep, err, "open "+a)
	}
	rep, err := rt.Call(stay[0], "deposit", stay[0], int64(100))
	mustOK(t, rep, err, "seed")

	// Cut the moving range by hand and stop: no install, no commit — the
	// window stays open for the whole Transfer below.
	hid := bank.HandoffID(c.ringNm, r2.Epoch, "s1", "s3")
	pr, _ := c.driver()
	opts := sendprim.CallOptions{Timeout: 200 * time.Millisecond, Retries: 20, Backoff: 5 * time.Millisecond}
	src := c.members["s1"].Native
	sm, err := sendprim.Call(pr, src, bank.MigrateReplyType, opts, "migrate_snap", hid, string(r2.Marshal()), "s3")
	if err != nil || sm.Command != "snap_meta" {
		t.Fatalf("migrate_snap: %v %v", sm, err)
	}
	cm, err := sendprim.Call(pr, src, bank.MigrateReplyType, opts, "migrate_cut", hid, sm.Int(0))
	if err != nil || cm.Command != "cut_done" {
		t.Fatalf("migrate_cut: %v %v", cm, err)
	}

	out, err := rt.Transfer(stay[0], move[0], 10)
	if err != nil {
		t.Fatalf("transfer in the split window: %v", err)
	}
	if out == amo.OutcomeSplit {
		t.Fatalf("Transfer leaked the raw %s routing constant", amo.OutcomeSplit)
	}
	if out != tpc.OutcomeAborted {
		t.Fatalf("split-window transfer outcome %q, want %q", out, tpc.OutcomeAborted)
	}
	// The window never closes in this test, so the money must not move.
	rep, err = rt.Call(stay[0], "balance", stay[0])
	if err != nil || rep.Int(0) != 100 {
		t.Fatalf("balance after aborted transfer: %v %v, want 100", rep, err)
	}
}

// TestRingSourceCrashAfterCut kills the handoff source right after its
// durable cut and lets it recover: the destination's puller sees the
// generation mismatch (the retained tail was volatile) and re-pulls the
// whole range from the durable moved_out record, so the rebalance still
// converges with nothing lost or doubled.
func TestRingSourceCrashAfterCut(t *testing.T) {
	shards := []string{"s1", "s2"}
	c := deployShardCluster(t, netsim.Config{Seed: 6}, shards...)
	c.bootstrapRing(shards...)

	rt := c.router()
	defer rt.Close()
	var accounts []string
	for i := 0; i < 16; i++ {
		a := fmt.Sprintf("acct-%03d", i)
		accounts = append(accounts, a)
		rep, err := rt.Call(a, "open", a)
		mustOK(t, rep, err, "open "+a)
		rep, err = rt.Call(a, "deposit", a, int64(50))
		mustOK(t, rep, err, "seed "+a)
	}

	cut := make(chan struct{}, 1)
	bank.SetShardHooks("s1", bank.ShardHooks{AfterCut: func(string) {
		select {
		case cut <- struct{}{}:
		default:
		}
	}})
	defer bank.SetShardHooks("s1", bank.ShardHooks{})

	// s3 joins; s1 will cut ranges toward it. Crash s1 at its first cut.
	m3 := c.addShard("s3")
	joinErr := make(chan error, 1)
	pr, ns := c.driver()
	go func() {
		_, err := bank.Join(pr, c.ringNm, m3, bank.RebalanceOptions{NS: ns})
		joinErr <- err
	}()

	select {
	case <-cut:
		c.nodes["s1"].Crash()
		if err := c.nodes["s1"].Restart(); err != nil {
			t.Fatalf("restart s1: %v", err)
		}
	case err := <-joinErr:
		// The join finished before s1 cut anything toward s3 — possible
		// but placement makes it vanishingly unlikely; treat as setup
		// failure so the test does not silently stop covering the crash.
		t.Fatalf("join finished before any s1 cut (err=%v)", err)
	}
	if err := <-joinErr; err != nil {
		t.Fatalf("join after source crash: %v", err)
	}

	pr2, ns2 := c.driver()
	rs, err := ns2.RingGet(c.ringNm, shardTestTimeout)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ring.Unmarshal(rs.Committed)
	if err != nil || r2.Epoch != 2 {
		t.Fatalf("committed ring after crash-recovery join: %v err=%v", r2, err)
	}
	_ = pr2
	if total := c.auditPlacement(r2, []string{"s1", "s2", "s3"}, accounts); total != 16*50 {
		t.Errorf("conservation: total %d after crash-recovery handoff, want %d", total, 16*50)
	}
	for _, a := range accounts {
		rep, err := rt.Call(a, "balance", a)
		if err != nil || rep.Command != "balance_is" || rep.Int(0) != 50 {
			t.Fatalf("balance %s after recovery: %v %v", a, rep, err)
		}
	}
}
