package bank

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/guardian"
	"repro/internal/netsim"
	"repro/internal/xrep"
)

const testTimeout = 5 * time.Second

// client drives a bank from a node.
type client struct {
	proc  *guardian.Process
	reply *guardian.Port
}

func newClient(t *testing.T, n *guardian.Node) *client {
	t.Helper()
	g, proc, err := n.NewDriver("teller")
	if err != nil {
		t.Fatal(err)
	}
	reply, err := g.NewPort(ClientReplyType, 16)
	if err != nil {
		t.Fatal(err)
	}
	return &client{proc: proc, reply: reply}
}

func (c *client) call(t *testing.T, port xrep.PortName, cmd string, args ...any) *guardian.Message {
	t.Helper()
	if err := c.proc.SendReplyTo(port, c.reply.Name(), cmd, args...); err != nil {
		t.Fatal(err)
	}
	m, st := c.proc.Receive(testTimeout, c.reply)
	if st != guardian.RecvOK {
		t.Fatalf("%s: receive status %v", cmd, st)
	}
	return m
}

func deployBank(t *testing.T, netCfg netsim.Config) (*guardian.World, xrep.PortName, xrep.PortName, *client) {
	t.Helper()
	w := guardian.NewWorld(guardian.Config{Net: netCfg})
	if err := w.Register(BranchDef()); err != nil {
		t.Fatal(err)
	}
	na := w.MustAddNode("branch-a")
	nb := w.MustAddNode("branch-b")
	nc := w.MustAddNode("teller-node")
	ca, err := na.Bootstrap(BranchDefName)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := nb.Bootstrap(BranchDefName)
	if err != nil {
		t.Fatal(err)
	}
	return w, ca.Ports[0], cb.Ports[0], newClient(t, nc)
}

func TestOpenDepositWithdrawBalance(t *testing.T) {
	_, a, _, c := deployBank(t, netsim.Config{})
	if m := c.call(t, a, "open", "alice"); m.Command != OutcomeOK {
		t.Fatalf("open: %v", m.Command)
	}
	if m := c.call(t, a, "open", "alice"); m.Command != OutcomeExists {
		t.Fatalf("re-open: %v", m.Command)
	}
	if m := c.call(t, a, "deposit", "alice", int64(100), "op1"); m.Command != OutcomeOK {
		t.Fatalf("deposit: %v", m.Command)
	}
	if m := c.call(t, a, "withdraw", "alice", int64(30), "op2"); m.Command != OutcomeOK {
		t.Fatalf("withdraw: %v", m.Command)
	}
	if m := c.call(t, a, "balance", "alice"); m.Command != "balance_is" || m.Int(0) != 70 {
		t.Fatalf("balance: %v %v", m.Command, m.Args)
	}
	if m := c.call(t, a, "withdraw", "alice", int64(1000), "op3"); m.Command != OutcomeInsufficient {
		t.Fatalf("overdraw: %v", m.Command)
	}
	if m := c.call(t, a, "balance", "bob"); m.Command != OutcomeNoAccount {
		t.Fatalf("unknown account: %v", m.Command)
	}
}

func TestOperationsIdempotentByOpID(t *testing.T) {
	_, a, _, c := deployBank(t, netsim.Config{})
	c.call(t, a, "open", "alice")
	for i := 0; i < 3; i++ {
		if m := c.call(t, a, "deposit", "alice", int64(50), "dup-op"); m.Command != OutcomeOK {
			t.Fatalf("deposit %d: %v", i, m.Command)
		}
	}
	if m := c.call(t, a, "balance", "alice"); m.Int(0) != 50 {
		t.Fatalf("balance = %d after duplicate deposits, want 50", m.Int(0))
	}
	// A failed op replays its failure, not a retry-success.
	if m := c.call(t, a, "withdraw", "alice", int64(500), "w1"); m.Command != OutcomeInsufficient {
		t.Fatal("withdraw should fail")
	}
	c.call(t, a, "deposit", "alice", int64(500), "d2")
	if m := c.call(t, a, "withdraw", "alice", int64(500), "w1"); m.Command != OutcomeInsufficient {
		t.Fatalf("replayed op changed outcome: %v", m.Command)
	}
}

func TestCrossBranchTransfer(t *testing.T) {
	_, a, b, c := deployBank(t, netsim.Config{})
	c.call(t, a, "open", "alice")
	c.call(t, b, "open", "bob")
	c.call(t, a, "deposit", "alice", int64(100), "seed")

	// The reply to transfer_out comes from branch B, not branch A.
	m := c.call(t, a, "transfer_out", "alice", int64(60), "t1", b, "bob")
	if m.Command != OutcomeOK {
		t.Fatalf("transfer: %v", m.Command)
	}
	if m.SrcNode != "branch-b" {
		t.Fatalf("transfer reply from %s, want branch-b (different-guardian response pattern)", m.SrcNode)
	}
	if m := c.call(t, a, "balance", "alice"); m.Int(0) != 40 {
		t.Fatalf("alice = %d", m.Int(0))
	}
	if m := c.call(t, b, "balance", "bob"); m.Int(0) != 60 {
		t.Fatalf("bob = %d", m.Int(0))
	}
}

func TestTransferInsufficientAnsweredByA(t *testing.T) {
	_, a, b, c := deployBank(t, netsim.Config{})
	c.call(t, a, "open", "alice")
	c.call(t, b, "open", "bob")
	m := c.call(t, a, "transfer_out", "alice", int64(10), "t2", b, "bob")
	if m.Command != OutcomeInsufficient {
		t.Fatalf("transfer: %v", m.Command)
	}
	if m.SrcNode != "branch-a" {
		t.Fatalf("failure reply from %s, want branch-a", m.SrcNode)
	}
}

func TestTransferRetryDoesNotDoubleApply(t *testing.T) {
	// Lose the first transfer_in reply; retrying the whole transfer_out
	// must neither double-debit nor double-credit.
	w, a, b, c := deployBank(t, netsim.Config{})
	c.call(t, a, "open", "alice")
	c.call(t, b, "open", "bob")
	c.call(t, a, "deposit", "alice", int64(100), "seed")
	// Sever B → teller so the credit happens but the reply is lost.
	w.Net().SetLink("branch-b", "teller-node", &netsim.Config{LossRate: 1.0})
	if err := c.proc.SendReplyTo(a, c.reply.Name(), "transfer_out", "alice", int64(60), "t3", b, "bob"); err != nil {
		t.Fatal(err)
	}
	if _, st := c.proc.Receive(300*time.Millisecond, c.reply); st != guardian.RecvTimeout {
		t.Fatalf("expected lost reply, got %v", st)
	}
	w.Net().SetLink("branch-b", "teller-node", nil)
	// Retry with the same op id.
	m := c.call(t, a, "transfer_out", "alice", int64(60), "t3", b, "bob")
	if m.Command != OutcomeOK {
		t.Fatalf("retry: %v", m.Command)
	}
	if m := c.call(t, a, "balance", "alice"); m.Int(0) != 40 {
		t.Fatalf("alice = %d (double debit?)", m.Int(0))
	}
	if m := c.call(t, b, "balance", "bob"); m.Int(0) != 60 {
		t.Fatalf("bob = %d (double credit?)", m.Int(0))
	}
}

func TestBranchRecoversAfterCrash(t *testing.T) {
	w, a, _, c := deployBank(t, netsim.Config{})
	c.call(t, a, "open", "alice")
	c.call(t, a, "deposit", "alice", int64(75), "d1")
	c.call(t, a, "withdraw", "alice", int64(25), "w1")
	na, _ := w.Node("branch-a")
	na.Crash()
	if err := na.Restart(); err != nil {
		t.Fatal(err)
	}
	if m := c.call(t, a, "balance", "alice"); m.Command != "balance_is" || m.Int(0) != 50 {
		t.Fatalf("recovered balance: %v %v", m.Command, m.Args)
	}
	// Idempotency memory also recovers: replaying w1 does not re-debit.
	if m := c.call(t, a, "withdraw", "alice", int64(25), "w1"); m.Command != OutcomeOK {
		t.Fatalf("replay w1: %v", m.Command)
	}
	if m := c.call(t, a, "balance", "alice"); m.Int(0) != 50 {
		t.Fatalf("balance after replayed op = %d, want 50", m.Int(0))
	}
}

func TestAuditConservationUnderTransfers(t *testing.T) {
	// Money is conserved across any interleaving of transfers between two
	// branches.
	w, a, b, c := deployBank(t, netsim.Config{})
	_ = w
	for i := 0; i < 4; i++ {
		acct := fmt.Sprintf("acct%d", i)
		c.call(t, a, "open", acct)
		c.call(t, b, "open", acct)
		c.call(t, a, "deposit", acct, int64(100), fmt.Sprintf("seed-a-%d", i))
		c.call(t, b, "deposit", acct, int64(100), fmt.Sprintf("seed-b-%d", i))
	}
	for i := 0; i < 20; i++ {
		src, dst := a, b
		if i%2 == 1 {
			src, dst = b, a
		}
		acct := fmt.Sprintf("acct%d", i%4)
		m := c.call(t, src, "transfer_out", acct, int64(10), fmt.Sprintf("t%d", i), dst, acct)
		if m.Command != OutcomeOK {
			t.Fatalf("transfer %d: %v", i, m.Command)
		}
	}
	ma := c.call(t, a, "audit")
	mb := c.call(t, b, "audit")
	total := ma.Int(1) + mb.Int(1)
	if total != 800 {
		t.Fatalf("total money = %d, want 800 (conservation violated)", total)
	}
}

func TestSnapshotOwnerSide(t *testing.T) {
	w, a, _, c := deployBank(t, netsim.Config{})
	c.call(t, a, "open", "alice")
	c.call(t, a, "deposit", "alice", int64(10), "d1")
	na, _ := w.Node("branch-a")
	var branch *guardian.Guardian
	for _, id := range na.Guardians() {
		if g, ok := na.GuardianByID(id); ok && g.DefName() == BranchDefName {
			branch = g
		}
	}
	if branch == nil {
		t.Fatal("branch guardian not found")
	}
	snap, err := Snapshot(branch)
	if err != nil {
		t.Fatal(err)
	}
	if snap["alice"] != 10 {
		t.Fatalf("snapshot = %v", snap)
	}
	// Snapshot of a non-branch guardian fails cleanly.
	drv, _, err := na.NewDriver("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Snapshot(drv); err == nil {
		t.Fatal("Snapshot accepted a non-branch guardian")
	}
}
