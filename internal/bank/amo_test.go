package bank_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/amo"
	"repro/internal/bank"
	"repro/internal/guardian"
	"repro/internal/netsim"
	"repro/internal/sendprim"
)

// The acceptance workload: 10 concurrent tellers, 50 transfers each,
// through a network losing 20% and duplicating 20% of all packets. Each
// teller owns a disjoint account pair, so the exact final balance of every
// account is computable from the replies the teller received.
const (
	amoClients       = 10
	amoCallsPerTller = 50
	amoSeedFunds     = 1_000_000
)

type amoRun struct {
	ok       int64            // transfers whose reply said ok
	applies  int64            // mutating executions the branch performed
	balances map[string]int64 // actual final account table
	expected map[string]int64 // implied by the replies received
}

// runAMOWorkload drives the workload against a branch with (raw=false) or
// without (raw=true) the at-most-once filter on its amo port.
func runAMOWorkload(t *testing.T, raw bool, met *amo.Metrics) *amoRun {
	t.Helper()
	w := guardian.NewWorld(guardian.Config{Net: netsim.Config{
		Seed:        20260806,
		LossRate:    0.20,
		DupRate:     0.20,
		BaseLatency: 300 * time.Microsecond,
	}})
	w.MustRegister(bank.BranchDef())
	branchNode := w.MustAddNode("branch")
	var created *guardian.Created
	var err error
	if raw {
		created, err = branchNode.Bootstrap(bank.BranchDefName, "raw")
	} else {
		created, err = branchNode.Bootstrap(bank.BranchDefName)
	}
	if err != nil {
		t.Fatal(err)
	}
	nativePort, amoPort := created.Ports[0], created.Ports[1]
	tellers := w.MustAddNode("tellers")

	run := &amoRun{expected: make(map[string]int64)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < amoClients; i++ {
		g, proc, err := tellers.NewDriver(fmt.Sprintf("teller-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, g *guardian.Guardian, proc *guardian.Process) {
			defer wg.Done()
			acctA, acctB := fmt.Sprintf("c%d-a", i), fmt.Sprintf("c%d-b", i)

			// Set up the account pair over the native idempotent port:
			// re-opening reports account_exists and the funding deposit
			// carries an op_id, so blind retries are safe here.
			callOpts := sendprim.CallOptions{
				Timeout: 50 * time.Millisecond,
				Retries: 20,
				Backoff: 2 * time.Millisecond,
			}
			for _, acct := range []string{acctA, acctB} {
				m, err := sendprim.Call(proc, nativePort, bank.ClientReplyType, callOpts, "open", acct)
				if err != nil {
					t.Errorf("teller %d: open %s: %v", i, acct, err)
					return
				}
				if m.Command != bank.OutcomeOK && m.Command != bank.OutcomeExists {
					t.Errorf("teller %d: open %s: %s", i, acct, m.Command)
					return
				}
			}
			m, err := sendprim.Call(proc, nativePort, bank.ClientReplyType, callOpts,
				"deposit", acctA, int64(amoSeedFunds), fmt.Sprintf("fund-%d", i))
			if err != nil || m.Command != bank.OutcomeOK {
				t.Errorf("teller %d: funding: %v %v", i, m, err)
				return
			}

			caller, err := amo.NewCaller(proc, amo.CallerOptions{
				Timeout: 25 * time.Millisecond,
				Retries: 20,
				Backoff: amo.BackoffPolicy{Base: 2 * time.Millisecond, Jitter: 0.5},
				Metrics: met,
			})
			if err != nil {
				t.Errorf("teller %d: caller: %v", i, err)
				return
			}
			expA, expB := int64(amoSeedFunds), int64(0)
			var ok int64
			for j := 0; j < amoCallsPerTller; j++ {
				amount := int64(1 + j%7)
				r, err := caller.Call(amoPort, "transfer", acctA, acctB, amount)
				if err != nil {
					t.Errorf("teller %d: transfer %d: %v", i, j, err)
					return
				}
				if r.Command != bank.OutcomeOK {
					t.Errorf("teller %d: transfer %d: %s", i, j, r.Command)
					return
				}
				expA, expB = expA-amount, expB+amount
				ok++
			}
			mu.Lock()
			run.ok += ok
			run.expected[acctA] = expA
			run.expected[acctB] = expB
			mu.Unlock()
		}(i, g, proc)
	}
	wg.Wait()
	// Let in-flight duplicates land and drain before auditing: a raw
	// branch can still double-apply after the last reply was accepted.
	w.Quiesce()
	time.Sleep(20 * time.Millisecond)

	bg, ok := branchNode.GuardianByID(created.GuardianID)
	if !ok {
		t.Fatal("branch guardian vanished")
	}
	run.balances, err = bank.Snapshot(bg)
	if err != nil {
		t.Fatal(err)
	}
	run.applies, err = bank.Applies(bg)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestAMOTransfersExactlyOnce is the tentpole's acceptance claim: under
// 20% loss AND 20% duplication, every transfer through the at-most-once
// layer is applied exactly once — the branch's execution count equals the
// logical call count and every balance matches what the replies implied.
func TestAMOTransfersExactlyOnce(t *testing.T) {
	met := &amo.Metrics{}
	// The branch's Dedup filter reports into the package-wide default
	// metrics; sample them around the run to observe the server side.
	dedup0, replay0 := amo.Default.CallsDeduped.Load(), amo.Default.RepliesReplayed.Load()
	run := runAMOWorkload(t, false, met)
	deduped := amo.Default.CallsDeduped.Load() - dedup0
	replayed := amo.Default.RepliesReplayed.Load() - replay0
	if t.Failed() {
		t.FailNow()
	}
	want := int64(amoClients * amoCallsPerTller)
	if run.ok != want {
		t.Fatalf("ok transfers = %d, want %d", run.ok, want)
	}
	if run.applies != want {
		t.Fatalf("branch executed %d transfers for %d logical calls", run.applies, want)
	}
	for acct, exp := range run.expected {
		if got := run.balances[acct]; got != exp {
			t.Errorf("account %s: balance %d, want %d", acct, got, exp)
		}
	}
	// Sanity: the faults actually fired — a clean run proves nothing. At
	// 20% duplication over ~1200 request packets, zero suppressed
	// duplicates means the filter (or the fault injector) is broken.
	if met.Retries.Load() == 0 {
		t.Fatal("no retries under 20% loss")
	}
	if deduped == 0 {
		t.Fatal("no duplicates suppressed under 20% dup")
	}
	t.Logf("500 transfers: applies=%d retries=%d deduped=%d replayed=%d backoff=%v",
		run.applies, met.Retries.Load(), deduped, replayed,
		time.Duration(met.RetryBackoffTotal.Load()).Round(time.Millisecond))
}

// TestBareCallsDoubleApply is the control arm: the identical workload
// against a branch whose amo port executes every delivery (no dedup
// filter) demonstrably over-applies — the §3.5 "performed any number of
// times" hazard made measurable.
func TestBareCallsDoubleApply(t *testing.T) {
	met := &amo.Metrics{}
	run := runAMOWorkload(t, true, met)
	if t.Failed() {
		t.FailNow()
	}
	if run.applies <= run.ok {
		t.Fatalf("raw branch executed %d ≤ %d ok transfers; expected over-application", run.applies, run.ok)
	}
	deviating := 0
	for acct, exp := range run.expected {
		if run.balances[acct] != exp {
			deviating++
		}
	}
	if deviating == 0 {
		t.Fatalf("no account deviated despite %d extra applications", run.applies-run.ok)
	}
	t.Logf("raw: ok=%d applies=%d (%d double-applied), %d/%d accounts deviate",
		run.ok, run.applies, run.applies-run.ok, deviating, len(run.expected))
}
