package bank_test

import (
	"testing"
	"time"

	"repro/internal/amo"
	"repro/internal/bank"
	"repro/internal/guardian"
	"repro/internal/transport"
)

// TestTransfersExactlyOnceOverLossyUDP is the real-wire variant of the
// at-most-once acceptance claim: two guardian worlds that share no memory
// and no simulator, joined only by UDP datagrams on loopback, with a fault
// wrapper around each socket losing 20% and duplicating 20% of outbound
// packets. Every transfer the teller world's replies confirm must have
// been applied exactly once by the branch world — the same audit the
// simulator runs, now across an actual kernel socket pair. The cross-OS-
// process version of this claim lives in cmd/node's test; this one keeps
// both ends in-test so it can read the branch's applies counter directly.
func TestTransfersExactlyOnceOverLossyUDP(t *testing.T) {
	const transfers = 60

	newEnd := func(seed int64, local transport.Addr) (*transport.UDP, *transport.Wrapper) {
		u, err := transport.NewUDP(transport.UDPConfig{
			Peers: map[transport.Addr]string{local: "127.0.0.1:0"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return u, transport.Wrap(u, transport.WrapperConfig{
			Seed:     seed,
			LossRate: 0.20,
			DupRate:  0.20,
		})
	}
	branchUDP, branchTr := newEnd(1, "branch")
	tellerUDP, tellerTr := newEnd(2, "tellers")

	branchWorld := guardian.NewWorld(guardian.Config{Transport: branchTr})
	defer branchWorld.Close()
	tellerWorld := guardian.NewWorld(guardian.Config{Transport: tellerTr})
	defer tellerWorld.Close()

	branchWorld.MustRegister(bank.BranchDef())
	branchNode := branchWorld.MustAddNode("branch")
	created, err := branchNode.Bootstrap(bank.BranchDefName)
	if err != nil {
		t.Fatal(err)
	}
	amoPort := created.Ports[1]

	tellerNode := tellerWorld.MustAddNode("tellers")
	// The teller world is configured with the branch's socket address — the
	// one piece of static wiring a real deployment needs. The branch world
	// gets no peer table at all: it learns the teller's return address from
	// the first verified frame it receives (transport.Learn), exactly how
	// cmd/node servers route replies to unannounced clients.
	if err := tellerUDP.SetPeer("branch", branchUDP.LocalAddr("branch")); err != nil {
		t.Fatal(err)
	}

	_, proc, err := tellerNode.NewDriver("teller")
	if err != nil {
		t.Fatal(err)
	}
	met := &amo.Metrics{}
	dedup0 := amo.Default.CallsDeduped.Load()
	caller, err := amo.NewCaller(proc, amo.CallerOptions{
		Timeout: 40 * time.Millisecond,
		Retries: 30,
		Backoff: amo.BackoffPolicy{Base: 5 * time.Millisecond, Jitter: 0.5},
		Metrics: met,
	})
	if err != nil {
		t.Fatal(err)
	}

	mustOK := func(cmd string, args ...any) {
		t.Helper()
		r, err := caller.Call(amoPort, cmd, args...)
		if err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		if r.Command != bank.OutcomeOK {
			t.Fatalf("%s: outcome %s", cmd, r.Command)
		}
	}
	mustOK("open", "alice")
	mustOK("open", "bob")
	mustOK("deposit", "alice", int64(10_000), "seed-funds")
	var moved int64
	for i := 0; i < transfers; i++ {
		amount := int64(1 + i%9)
		mustOK("transfer", "alice", "bob", amount)
		moved += amount
	}

	// Drain: wrapper-delayed copies first, then straggler loopback
	// datagrams the kernel still holds. The branch's counters are stable
	// once two consecutive observations agree.
	tellerTr.Quiesce()
	branchTr.Quiesce()
	bg, ok := branchNode.GuardianByID(created.GuardianID)
	if !ok {
		t.Fatal("branch guardian vanished")
	}
	applies, err := bank.Applies(bg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		time.Sleep(10 * time.Millisecond)
		again, err := bank.Applies(bg)
		if err != nil {
			t.Fatal(err)
		}
		if again == applies {
			break
		}
		applies = again
	}

	// 3 setup calls + the transfers, each applied exactly once.
	want := int64(3 + transfers)
	if applies != want {
		t.Fatalf("branch executed %d mutations for %d logical calls", applies, want)
	}
	balances, err := bank.Snapshot(bg)
	if err != nil {
		t.Fatal(err)
	}
	if balances["alice"] != 10_000-moved || balances["bob"] != moved {
		t.Fatalf("balances alice=%d bob=%d, want %d/%d",
			balances["alice"], balances["bob"], 10_000-moved, moved)
	}

	// The claim is vacuous unless the faults really fired on the wire.
	ts, bs := tellerTr.InjectedStats(), branchTr.InjectedStats()
	if ts.Lost == 0 || bs.Lost == 0 {
		t.Fatalf("loss injector idle: teller=%+v branch=%+v", ts, bs)
	}
	if ts.Duplicated == 0 || bs.Duplicated == 0 {
		t.Fatalf("dup injector idle: teller=%+v branch=%+v", ts, bs)
	}
	if met.Retries.Load() == 0 {
		t.Fatal("no retries under 20% loss")
	}
	if amo.Default.CallsDeduped.Load() == dedup0 {
		t.Fatal("no duplicates suppressed under 20% dup")
	}
	t.Logf("udp: applies=%d retries=%d teller-faults{lost=%d dup=%d} branch-faults{lost=%d dup=%d} recv=%d bytes",
		applies, met.Retries.Load(), ts.Lost, ts.Duplicated, bs.Lost, bs.Duplicated,
		tellerUDP.Stats().BytesRecv)
}
