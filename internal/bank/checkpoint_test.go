package bank

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/amo"
	"repro/internal/durable"
	"repro/internal/guardian"
	"repro/internal/ring"
	"repro/internal/sendprim"
)

// walBankWorld builds a world whose branch node keeps its storage in an
// on-disk WAL under root, so closing the world and opening a second one
// over the same root models killing and restarting the hosting OS process.
// The teller node stays on a simulated disk: it is a stateless client, and
// a persistent store would advance its guardian-id catalog across restarts
// (ids are never reused), breaking the deterministic client identity the
// dedup test below relies on.
func walBankWorld(t *testing.T, root string) *guardian.World {
	t.Helper()
	w := guardian.NewWorld(guardian.Config{
		Store: func(node string) (durable.Store, error) {
			if node != "branch" {
				return nil, nil
			}
			return durable.OpenWAL(filepath.Join(root, node), durable.WALConfig{})
		},
	})
	if err := w.Register(BranchDef()); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestCheckpointCompactsAndRecoversAcrossProcessDeath drives a branch
// created with a checkpoint cadence, verifies the log actually compacts,
// then restarts the whole world over the same data directory and checks
// that both the account table and the idempotency memory come back — the
// applied-op table must be restored FROM THE CHECKPOINT, because the
// records it folded in are gone from the log.
func TestCheckpointCompactsAndRecoversAcrossProcessDeath(t *testing.T) {
	root := t.TempDir()

	w1 := walBankWorld(t, root)
	nb := w1.MustAddNode("branch")
	nt := w1.MustAddNode("teller-node")
	created, err := nb.Bootstrap(BranchDefName, 3) // checkpoint every 3 mutations
	if err != nil {
		t.Fatal(err)
	}
	a := created.Ports[0]
	c := newClient(t, nt)

	c.call(t, a, "open", "alice")
	c.call(t, a, "deposit", "alice", int64(100), "d1")
	// This withdraw fails. After the later deposits a re-execution WOULD
	// succeed, so its replayed outcome discriminates a restored applied-op
	// table from a lost one.
	if m := c.call(t, a, "withdraw", "alice", int64(250), "w-big"); m.Command != OutcomeInsufficient {
		t.Fatalf("withdraw: %v", m.Command)
	}
	c.call(t, a, "deposit", "alice", int64(400), "d2")
	c.call(t, a, "deposit", "alice", int64(50), "d3")

	// Five mutations at cadence 3: a checkpoint fired, folding the early
	// records away. Without it the log would hold all five op records plus
	// the open.
	bg, ok := nb.GuardianByID(created.GuardianID)
	if !ok {
		t.Fatal("branch guardian vanished")
	}
	log := bg.Log()
	cp, _, err := log.Recover()
	if err != nil {
		t.Fatalf("live recover: %v", err)
	}
	if len(cp) == 0 {
		t.Fatal("no checkpoint taken after 5 mutations at cadence 3")
	}
	if n := log.DurableLen(); n > 3 {
		t.Fatalf("log holds %d records after checkpoint, want <= 3 (not compacted?)", n)
	}

	if err := w1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// "Restart the process": a fresh world over the same directories. The
	// node catalog re-creates the branch (same id, same ports, same
	// checkpoint cadence) and its recovery replays checkpoint + tail.
	w2 := walBankWorld(t, root)
	defer w2.Close()
	w2.MustAddNode("branch")
	nt2 := w2.MustAddNode("teller-node")
	c2 := newClient(t, nt2)

	if m := c2.call(t, a, "balance", "alice"); m.Command != "balance_is" || m.Int(0) != 550 {
		t.Fatalf("recovered balance: %v %v", m.Command, m.Args)
	}
	// The failed withdraw's op id must replay its ORIGINAL outcome even
	// though the balance now covers it; OutcomeOK here means the applied-op
	// table the checkpoint carried was lost.
	if m := c2.call(t, a, "withdraw", "alice", int64(250), "w-big"); m.Command != OutcomeInsufficient {
		t.Fatalf("replayed w-big: %v, want %v", m.Command, OutcomeInsufficient)
	}
	if m := c2.call(t, a, "balance", "alice"); m.Int(0) != 550 {
		t.Fatalf("balance moved to %d after replayed op", m.Int(0))
	}
	// And the recovered branch still takes new ops.
	if m := c2.call(t, a, "withdraw", "alice", int64(50), "w-new"); m.Command != OutcomeOK {
		t.Fatalf("fresh withdraw: %v", m.Command)
	}
	if m := c2.call(t, a, "balance", "alice"); m.Int(0) != 500 {
		t.Fatalf("final balance: %d", m.Int(0))
	}
}

// TestCheckpointCoversDedupSnapshot checks the subtlest piece of branch
// checkpointing: the at-most-once filter's cached-reply table rides in the
// checkpoint. After a checkpoint folds a dedup record away and the process
// dies, a duplicate of that request must STILL be answered from the cache
// — the only place it can come from is the checkpoint's snapshot.
func TestCheckpointCoversDedupSnapshot(t *testing.T) {
	root := t.TempDir()
	callerOpts := amo.CallerOptions{
		Timeout: 200 * time.Millisecond,
		Retries: 10,
	}

	w1 := walBankWorld(t, root)
	nb := w1.MustAddNode("branch")
	nt := w1.MustAddNode("teller-node")
	created, err := nb.Bootstrap(BranchDefName, 1) // checkpoint at every handler entry
	if err != nil {
		t.Fatal(err)
	}
	a, amoPort := created.Ports[0], created.Ports[1]

	// The caller's at-most-once client id is derived from its node,
	// guardian, and reply-port ids. Re-creating the driver and caller in
	// the same order in the second world yields the SAME client id with its
	// sequence numbers starting over — a deliberate stand-in for a client
	// that retries a request across the server's death.
	c := newClient(t, nt)
	caller, err := amo.NewCaller(c.proc, callerOpts)
	if err != nil {
		t.Fatal(err)
	}

	c.call(t, a, "open", "alice")
	r, err := caller.Call(amoPort, "deposit", "alice", int64(100))
	if err != nil || r.Command != OutcomeOK {
		t.Fatalf("amo deposit: %v %v", r, err)
	}
	// One more native mutation so the cadence-1 checkpoint at its entry
	// folds the deposit's dedup record out of the log.
	c.call(t, a, "deposit", "alice", int64(50), "d-extra")

	if err := w1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2 := walBankWorld(t, root)
	defer w2.Close()
	w2.MustAddNode("branch")
	nt2 := w2.MustAddNode("teller-node")
	c2 := newClient(t, nt2)
	caller2, err := amo.NewCaller(c2.proc, callerOpts)
	if err != nil {
		t.Fatal(err)
	}
	if caller2.Client() != caller.Client() {
		t.Fatalf("caller identity drifted: %s vs %s — test setup no longer deterministic", caller2.Client(), caller.Client())
	}

	// Same client, same seq 1, DIFFERENT command: at-most-once means the
	// cached reply of the original deposit comes back and the withdraw is
	// never executed. If the snapshot was lost, the withdraw runs and the
	// balance drops.
	r2, err := caller2.Call(amoPort, "withdraw", "alice", int64(100))
	if err != nil {
		t.Fatalf("replayed call: %v", err)
	}
	if r2.Command != OutcomeOK {
		t.Fatalf("replayed call outcome: %v", r2.Command)
	}
	if m := c2.call(t, a, "balance", "alice"); m.Int(0) != 150 {
		t.Fatalf("balance = %d: duplicate executed after recovery (dedup snapshot lost)", m.Int(0))
	}
}

// TestShardCheckpointRoundTrip is the pure-data half of shard-mode
// checkpointing: everything checkpointField captures must come back
// identical through decode + restoreCheckpoint — the adopted ring,
// installed handoffs, cut outbound handoffs (retained and acked), and
// escrow transactions with their derived holds. Volatile pre-cut copy
// state and the retained cut tail are deliberately NOT durable: a
// recovered source must never re-serve a tail it cannot prove unapplied.
func TestShardCheckpointRoundTrip(t *testing.T) {
	r1 := ring.New("accounts", 0, ring.Member{Name: "s1"}, ring.Member{Name: "s2"})
	r2, err := r1.WithJoin(ring.Member{Name: "s3"})
	if err != nil {
		t.Fatal(err)
	}
	blob := r2.Marshal()

	core := newShardCore("s1")
	core.adopt(r2)
	core.installed["accounts/1/s2->s1"] = true
	core.out["accounts/2/s1->s3"] = &outboundHandoff{
		hid: "accounts/2/s1->s3", dest: "s3", ring: r2, blob: blob,
		cut: true, gen: 4, cutGen: 3,
		cutTail:  []journalOp{{kind: "deposit", acct: "a", amount: 7}},
		final:    map[string]int64{"a": 57, "b": 50},
		finalOrd: []string{"a", "b"},
	}
	core.out["accounts/2/s1->s4"] = &outboundHandoff{
		hid: "accounts/2/s1->s4", dest: "s4", blob: blob,
		cut: true, acked: true,
	}
	// A pre-cut handoff is volatile by design and must not be captured.
	core.out["accounts/3/s1->s5"] = &outboundHandoff{
		hid: "accounts/3/s1->s5", dest: "s5", gen: 9,
		copied: map[string]int64{"c": 1}, order: []string{"c"},
	}
	core.txns["cli/tx1"] = &shardTxn{phase: "prepared", kind: "debit", acct: "d", amount: 25}
	core.txns["cli/tx2"] = &shardTxn{phase: "committed", kind: "credit", acct: "e", amount: 10}

	st := &branchState{
		accounts: map[string]int64{"d": 100, "e": 20},
		applied:  map[string]string{"op1": OutcomeOK},
	}
	st.hold("d", 25)

	buf := encodeCheckpoint(st, nil, core)
	st2 := &branchState{accounts: make(map[string]int64), applied: make(map[string]string)}
	_, shardState, err := decodeCheckpoint(buf, st2)
	if err != nil {
		t.Fatal(err)
	}
	if shardState == nil {
		t.Fatal("checkpoint carried no shard state")
	}
	core2 := newShardCore("s1")
	if err := core2.restoreCheckpoint(st2, shardState); err != nil {
		t.Fatal(err)
	}

	if core2.ring == nil || core2.ring.Epoch != r2.Epoch {
		t.Fatalf("restored ring %v, want epoch %d", core2.ring, r2.Epoch)
	}
	if !core2.installed["accounts/1/s2->s1"] {
		t.Fatal("installed handoff lost")
	}
	o := core2.out["accounts/2/s1->s3"]
	if o == nil || !o.cut || o.acked || o.dest != "s3" {
		t.Fatalf("retained cut handoff came back as %+v", o)
	}
	if !reflect.DeepEqual(o.final, map[string]int64{"a": 57, "b": 50}) ||
		!reflect.DeepEqual(o.finalOrd, []string{"a", "b"}) {
		t.Fatalf("retained final = %v / %v", o.final, o.finalOrd)
	}
	if o.cutGen != 0 || o.cutTail != nil {
		t.Fatalf("cut tail survived recovery (cutGen=%d, %d ops): a re-pull could double-apply it", o.cutGen, len(o.cutTail))
	}
	oa := core2.out["accounts/2/s1->s4"]
	if oa == nil || !oa.acked || oa.final != nil {
		t.Fatalf("acked handoff came back as %+v", oa)
	}
	if _, leaked := core2.out["accounts/3/s1->s5"]; leaked {
		t.Fatal("volatile pre-cut handoff leaked into the checkpoint")
	}
	if !reflect.DeepEqual(core2.txns, core.txns) {
		t.Fatalf("txns = %v, want %v", core2.txns, core.txns)
	}
	if st2.holds["d"] != 25 {
		t.Fatalf("prepared debit hold = %d, want 25", st2.holds["d"])
	}
	if st2.accounts["d"] != 100 || st2.applied["op1"] != OutcomeOK {
		t.Fatalf("branch state lost: %v %v", st2.accounts, st2.applied)
	}
	// The restored core must re-encode to the identical field: a lossy
	// round trip would drift a little more on every checkpoint cycle.
	if !reflect.DeepEqual(core2.checkpointField(), core.checkpointField()) {
		t.Fatalf("re-encoded shard state differs:\n  got  %v\n  want %v", core2.checkpointField(), core.checkpointField())
	}
}

// TestShardCheckpointCompactsAndRecovers pins the liveness half: a branch
// that has adopted a ring (a shard record in its log) must KEEP taking
// checkpoints — an earlier build latched a dirty flag on the first shard
// record and silently stopped compacting forever — and a restart over the
// compacted log must restore the adopted epoch from the checkpoint,
// because the ring record it folded away is gone.
func TestShardCheckpointCompactsAndRecovers(t *testing.T) {
	root := t.TempDir()

	w1 := walBankWorld(t, root)
	nb := w1.MustAddNode("branch")
	nt := w1.MustAddNode("teller-node")
	created, err := nb.Bootstrap(BranchDefName, 3, ShardArg("s1")) // checkpoint every 3 mutations
	if err != nil {
		t.Fatal(err)
	}
	a := created.Ports[0]
	c := newClient(t, nt)

	r := ring.New("accounts", 0, ring.Member{Name: "s1", Native: a, Amo: created.Ports[1]})
	rm, err := sendprim.Call(c.proc, a, MigrateReplyType,
		sendprim.CallOptions{Timeout: time.Second}, "ring_update", string(r.Marshal()))
	if err != nil || rm.Command != "ring_ok" || rm.Int(0) != 1 {
		t.Fatalf("ring_update: %v %v", rm, err)
	}

	c.call(t, a, "open", "alice")
	for i, amt := range []int64{100, 400, 50, 25} {
		if m := c.call(t, a, "deposit", "alice", amt, fmt.Sprintf("d%d", i)); m.Command != OutcomeOK {
			t.Fatalf("deposit %d: %v", i, m.Command)
		}
	}

	bg, ok := nb.GuardianByID(created.GuardianID)
	if !ok {
		t.Fatal("branch guardian vanished")
	}
	cp, _, err := bg.Log().Recover()
	if err != nil {
		t.Fatalf("live recover: %v", err)
	}
	if len(cp) == 0 {
		t.Fatal("no checkpoint after 5 mutations at cadence 3: shard mode stopped compacting")
	}
	if n := bg.Log().DurableLen(); n > 3 {
		t.Fatalf("log holds %d records after checkpoint, want <= 3 (not compacted?)", n)
	}

	if err := w1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2 := walBankWorld(t, root)
	defer w2.Close()
	nb2 := w2.MustAddNode("branch")
	nt2 := w2.MustAddNode("teller-node")
	c2 := newClient(t, nt2)
	if m := c2.call(t, a, "balance", "alice"); m.Command != "balance_is" || m.Int(0) != 575 {
		t.Fatalf("recovered balance: %v %v", m.Command, m.Args)
	}
	bg2, ok := nb2.GuardianByID(created.GuardianID)
	if !ok {
		t.Fatal("recovered branch guardian missing")
	}
	member, epoch, _, ok := ShardSnapshot(bg2)
	if !ok || member != "s1" || epoch != 1 {
		t.Fatalf("recovered shard state member=%q epoch=%d ok=%v, want s1/1 (ring lost with the compacted record?)", member, epoch, ok)
	}
}
