package bank

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/amo"
	"repro/internal/durable"
	"repro/internal/guardian"
)

// walBankWorld builds a world whose branch node keeps its storage in an
// on-disk WAL under root, so closing the world and opening a second one
// over the same root models killing and restarting the hosting OS process.
// The teller node stays on a simulated disk: it is a stateless client, and
// a persistent store would advance its guardian-id catalog across restarts
// (ids are never reused), breaking the deterministic client identity the
// dedup test below relies on.
func walBankWorld(t *testing.T, root string) *guardian.World {
	t.Helper()
	w := guardian.NewWorld(guardian.Config{
		Store: func(node string) (durable.Store, error) {
			if node != "branch" {
				return nil, nil
			}
			return durable.OpenWAL(filepath.Join(root, node), durable.WALConfig{})
		},
	})
	if err := w.Register(BranchDef()); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestCheckpointCompactsAndRecoversAcrossProcessDeath drives a branch
// created with a checkpoint cadence, verifies the log actually compacts,
// then restarts the whole world over the same data directory and checks
// that both the account table and the idempotency memory come back — the
// applied-op table must be restored FROM THE CHECKPOINT, because the
// records it folded in are gone from the log.
func TestCheckpointCompactsAndRecoversAcrossProcessDeath(t *testing.T) {
	root := t.TempDir()

	w1 := walBankWorld(t, root)
	nb := w1.MustAddNode("branch")
	nt := w1.MustAddNode("teller-node")
	created, err := nb.Bootstrap(BranchDefName, 3) // checkpoint every 3 mutations
	if err != nil {
		t.Fatal(err)
	}
	a := created.Ports[0]
	c := newClient(t, nt)

	c.call(t, a, "open", "alice")
	c.call(t, a, "deposit", "alice", int64(100), "d1")
	// This withdraw fails. After the later deposits a re-execution WOULD
	// succeed, so its replayed outcome discriminates a restored applied-op
	// table from a lost one.
	if m := c.call(t, a, "withdraw", "alice", int64(250), "w-big"); m.Command != OutcomeInsufficient {
		t.Fatalf("withdraw: %v", m.Command)
	}
	c.call(t, a, "deposit", "alice", int64(400), "d2")
	c.call(t, a, "deposit", "alice", int64(50), "d3")

	// Five mutations at cadence 3: a checkpoint fired, folding the early
	// records away. Without it the log would hold all five op records plus
	// the open.
	bg, ok := nb.GuardianByID(created.GuardianID)
	if !ok {
		t.Fatal("branch guardian vanished")
	}
	log := bg.Log()
	cp, _, err := log.Recover()
	if err != nil {
		t.Fatalf("live recover: %v", err)
	}
	if len(cp) == 0 {
		t.Fatal("no checkpoint taken after 5 mutations at cadence 3")
	}
	if n := log.DurableLen(); n > 3 {
		t.Fatalf("log holds %d records after checkpoint, want <= 3 (not compacted?)", n)
	}

	if err := w1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// "Restart the process": a fresh world over the same directories. The
	// node catalog re-creates the branch (same id, same ports, same
	// checkpoint cadence) and its recovery replays checkpoint + tail.
	w2 := walBankWorld(t, root)
	defer w2.Close()
	w2.MustAddNode("branch")
	nt2 := w2.MustAddNode("teller-node")
	c2 := newClient(t, nt2)

	if m := c2.call(t, a, "balance", "alice"); m.Command != "balance_is" || m.Int(0) != 550 {
		t.Fatalf("recovered balance: %v %v", m.Command, m.Args)
	}
	// The failed withdraw's op id must replay its ORIGINAL outcome even
	// though the balance now covers it; OutcomeOK here means the applied-op
	// table the checkpoint carried was lost.
	if m := c2.call(t, a, "withdraw", "alice", int64(250), "w-big"); m.Command != OutcomeInsufficient {
		t.Fatalf("replayed w-big: %v, want %v", m.Command, OutcomeInsufficient)
	}
	if m := c2.call(t, a, "balance", "alice"); m.Int(0) != 550 {
		t.Fatalf("balance moved to %d after replayed op", m.Int(0))
	}
	// And the recovered branch still takes new ops.
	if m := c2.call(t, a, "withdraw", "alice", int64(50), "w-new"); m.Command != OutcomeOK {
		t.Fatalf("fresh withdraw: %v", m.Command)
	}
	if m := c2.call(t, a, "balance", "alice"); m.Int(0) != 500 {
		t.Fatalf("final balance: %d", m.Int(0))
	}
}

// TestCheckpointCoversDedupSnapshot checks the subtlest piece of branch
// checkpointing: the at-most-once filter's cached-reply table rides in the
// checkpoint. After a checkpoint folds a dedup record away and the process
// dies, a duplicate of that request must STILL be answered from the cache
// — the only place it can come from is the checkpoint's snapshot.
func TestCheckpointCoversDedupSnapshot(t *testing.T) {
	root := t.TempDir()
	callerOpts := amo.CallerOptions{
		Timeout: 200 * time.Millisecond,
		Retries: 10,
	}

	w1 := walBankWorld(t, root)
	nb := w1.MustAddNode("branch")
	nt := w1.MustAddNode("teller-node")
	created, err := nb.Bootstrap(BranchDefName, 1) // checkpoint at every handler entry
	if err != nil {
		t.Fatal(err)
	}
	a, amoPort := created.Ports[0], created.Ports[1]

	// The caller's at-most-once client id is derived from its node,
	// guardian, and reply-port ids. Re-creating the driver and caller in
	// the same order in the second world yields the SAME client id with its
	// sequence numbers starting over — a deliberate stand-in for a client
	// that retries a request across the server's death.
	c := newClient(t, nt)
	caller, err := amo.NewCaller(c.proc, callerOpts)
	if err != nil {
		t.Fatal(err)
	}

	c.call(t, a, "open", "alice")
	r, err := caller.Call(amoPort, "deposit", "alice", int64(100))
	if err != nil || r.Command != OutcomeOK {
		t.Fatalf("amo deposit: %v %v", r, err)
	}
	// One more native mutation so the cadence-1 checkpoint at its entry
	// folds the deposit's dedup record out of the log.
	c.call(t, a, "deposit", "alice", int64(50), "d-extra")

	if err := w1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2 := walBankWorld(t, root)
	defer w2.Close()
	w2.MustAddNode("branch")
	nt2 := w2.MustAddNode("teller-node")
	c2 := newClient(t, nt2)
	caller2, err := amo.NewCaller(c2.proc, callerOpts)
	if err != nil {
		t.Fatal(err)
	}
	if caller2.Client() != caller.Client() {
		t.Fatalf("caller identity drifted: %s vs %s — test setup no longer deterministic", caller2.Client(), caller.Client())
	}

	// Same client, same seq 1, DIFFERENT command: at-most-once means the
	// cached reply of the original deposit comes back and the withdraw is
	// never executed. If the snapshot was lost, the withdraw runs and the
	// balance drops.
	r2, err := caller2.Call(amoPort, "withdraw", "alice", int64(100))
	if err != nil {
		t.Fatalf("replayed call: %v", err)
	}
	if r2.Command != OutcomeOK {
		t.Fatalf("replayed call outcome: %v", r2.Command)
	}
	if m := c2.call(t, a, "balance", "alice"); m.Int(0) != 150 {
		t.Fatalf("balance = %d: duplicate executed after recovery (dedup snapshot lost)", m.Int(0))
	}
}
