// Package bank implements the second application domain the paper's
// object-oriented view targets ("banking systems", §1.2): branch guardians
// that guard account data, with durable, idempotent operations and a
// cross-branch transfer protocol.
//
// The transfer protocol exercises the paper's second message-exchange
// pattern (§3): "the response comes from a different process than the
// original recipient of the request message". A client asks branch A to
// transfer_out; A debits durably and forwards a transfer_in to branch B,
// passing along the client's reply port; B credits and answers the client
// directly. Operation identifiers make every step idempotent, so retries
// after timeouts are safe — exactly the §3.5 discipline.
package bank

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/amo"
	"repro/internal/durable"
	"repro/internal/guardian"
	"repro/internal/stable"
	"repro/internal/wire"
	"repro/internal/xrep"
)

// BranchDefName is the library name of the branch guardian definition.
const BranchDefName = "bank_branch"

// Outcome command identifiers.
const (
	OutcomeOK           = "ok"
	OutcomeInsufficient = "insufficient"
	OutcomeNoAccount    = "no_account"
	OutcomeExists       = "account_exists"
)

// BranchPortType describes a branch guardian's port. Every mutating
// message carries a client-chosen operation id (op_id) making it
// idempotent: re-performing a completed operation is a no-op that reports
// the original outcome.
var BranchPortType = guardian.NewPortType("bank_branch_port").
	Msg("open", xrep.KindString).
	Replies("open", OutcomeOK, OutcomeExists).
	Msg("deposit", xrep.KindString, xrep.KindInt, xrep.KindString).
	Replies("deposit", OutcomeOK, OutcomeNoAccount).
	Msg("withdraw", xrep.KindString, xrep.KindInt, xrep.KindString).
	Replies("withdraw", OutcomeOK, OutcomeInsufficient, OutcomeNoAccount).
	Msg("balance", xrep.KindString).
	Replies("balance", "balance_is", OutcomeNoAccount).
	Msg("transfer_out", xrep.KindString, xrep.KindInt, xrep.KindString, xrep.KindPortName, xrep.KindString).
	Replies("transfer_out", OutcomeOK, OutcomeInsufficient, OutcomeNoAccount).
	Msg("transfer_in", xrep.KindString, xrep.KindInt, xrep.KindString).
	Replies("transfer_in", OutcomeOK, OutcomeNoAccount).
	Msg("audit").
	Replies("audit", "audit_info").
	// Shard-mode vocabulary (shard.go): ring adoption, bulk seeding, the
	// destination-pull handoff protocol, and 2PC escrow participation.
	Msg("ring_update", xrep.KindString).
	Replies("ring_update", "ring_ok").
	Msg("seed", xrep.KindString, xrep.KindInt, xrep.KindInt).
	Replies("seed", "seeded").
	Msg("handoff_pull", xrep.KindString, xrep.KindString, xrep.KindPortName).
	Replies("handoff_pull", "pull_ok", "pull_denied").
	Msg("handoff_status", xrep.KindString).
	Replies("handoff_status", "handoff_state").
	Msg("handoff_fail", xrep.KindString).
	Msg("handoff_stage", xrep.KindString, xrep.KindSeq).
	Replies("handoff_stage", "staged").
	Msg("handoff_install", xrep.KindString, xrep.KindString, xrep.KindSeq, guardian.AnyKind).
	Replies("handoff_install", "installed", "install_denied").
	Msg("migrate_snap", xrep.KindString, xrep.KindString, xrep.KindString).
	Replies("migrate_snap", "snap_meta", "migrate_denied").
	Msg("migrate_part", xrep.KindString, xrep.KindInt, xrep.KindInt).
	Replies("migrate_part", "snap_part", "migrate_denied").
	Msg("migrate_cut", xrep.KindString, xrep.KindInt).
	Replies("migrate_cut", "cut_done", "cut_busy", "migrate_denied").
	Msg("migrate_ack", xrep.KindString).
	Replies("migrate_ack", "ack_ok").
	Msg("prepare", xrep.KindString, guardian.AnyKind).
	Replies("prepare", "vote_yes", "vote_no").
	Msg("commit", xrep.KindString).
	Replies("commit", "ack_commit").
	Msg("abort", xrep.KindString).
	Replies("abort", "ack_abort")

// ClientReplyType receives every branch reply.
var ClientReplyType = guardian.NewPortType("bank_client_port").
	Msg(OutcomeOK).
	Msg(OutcomeExists).
	Msg(OutcomeInsufficient).
	Msg(OutcomeNoAccount).
	Msg("balance_is", xrep.KindInt).
	Msg("audit_info", xrep.KindInt, xrep.KindInt)

// branchState is the guardian's objects: accounts and the set of applied
// operation ids.
type branchState struct {
	accounts map[string]int64
	// applied maps op_id → outcome command, for idempotent replay and
	// duplicate suppression.
	applied map[string]string
	// holds is the aggregate 2PC debit escrow per account (shard mode):
	// balance checks subtract it, so a prepared-but-undecided debit can
	// never be overdrawn by a concurrent withdrawal.
	holds map[string]int64
	// shard is the shard-mode runtime, nil-safe to ignore elsewhere.
	shard *shardRuntime
	// applies counts mutating executions taken through the at-most-once
	// port — the ground truth a double-apply audit compares against the
	// number of logical operations clients issued. Atomic because tests
	// read it while the guardian runs.
	applies atomic.Int64
}

// hold adjusts the debit escrow against one account.
func (st *branchState) hold(acct string, delta int64) {
	if st.holds == nil {
		st.holds = make(map[string]int64)
	}
	st.holds[acct] += delta
	if st.holds[acct] <= 0 {
		delete(st.holds, acct)
	}
}

// BranchDef returns the branch guardian definition.
//
// The branch serves two ports: its native idempotent port (every mutating
// message carries an op_id) and an at-most-once port, where the amo layer
// supplies the duplicate suppression instead and commands carry NO op_id.
// Creation arguments, in any order:
//
//   - the string "raw" disables the at-most-once filter on the second
//     port — the control arm experiment E10 uses to demonstrate double
//     application under duplication;
//   - an integer N > 0 makes the branch checkpoint its state (accounts,
//     applied-op table, dedup snapshot) every N mutating messages,
//     compacting the log — without it the log only ever grows.
func BranchDef() *guardian.GuardianDef {
	return &guardian.GuardianDef{
		TypeName: BranchDefName,
		Provides: []*guardian.PortType{BranchPortType, amo.ReqType},
		Init:     branchMain,
		Recover:  branchMain,
	}
}

// Applies reports how many mutating operations the branch has executed
// through its at-most-once port. Owner-side audit facility.
func Applies(g *guardian.Guardian) (int64, error) {
	st, ok := g.State().(*branchState)
	if !ok {
		return 0, fmt.Errorf("bank: guardian %d is not a branch", g.ID())
	}
	return st.applies.Load(), nil
}

// opRecord encodes one durable operation.
func opRecord(kind, acct string, amount int64, opID string) []byte {
	b, err := wire.MarshalValue(xrep.Seq{xrep.Str(kind), xrep.Str(acct), xrep.Int(amount), xrep.Str(opID)})
	if err != nil {
		panic(err)
	}
	return b
}

// decodeOpRecord is opRecord's inverse. ok is false for foreign records —
// the branch's log is shared with its dedup filter, whose records are
// xrep.Rec values and simply skipped here.
func decodeOpRecord(data []byte) (kind, acct string, amount int64, opID string, ok bool) {
	v, err := wire.UnmarshalValue(data)
	if err != nil {
		return "", "", 0, "", false
	}
	seq, isSeq := v.(xrep.Seq)
	if !isSeq || len(seq) != 4 {
		return "", "", 0, "", false
	}
	k, ok1 := seq[0].(xrep.Str)
	a, ok2 := seq[1].(xrep.Str)
	n, ok3 := seq[2].(xrep.Int)
	id, ok4 := seq[3].(xrep.Str)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return "", "", 0, "", false
	}
	return string(k), string(a), int64(n), string(id), true
}

// checkpointRec names the record a branch's checkpoint state marshals to.
const checkpointRec = "bank/checkpoint"

// encodeCheckpoint marshals the branch's whole durable state — accounts,
// the applied-op table, the dedup filter's snapshot, and the shard core
// (adopted ring, handoffs, escrow) — so the log records it folds in can
// be compacted away. Maps are emitted in sorted order: the same state
// always checkpoints to the same bytes.
func encodeCheckpoint(st *branchState, dedup *amo.Dedup, core *shardCore) []byte {
	accts := make([]string, 0, len(st.accounts))
	for a := range st.accounts {
		accts = append(accts, a)
	}
	sort.Strings(accts)
	accounts := make(xrep.Seq, 0, len(accts))
	for _, a := range accts {
		accounts = append(accounts, xrep.Seq{xrep.Str(a), xrep.Int(st.accounts[a])})
	}
	ops := make([]string, 0, len(st.applied))
	for id := range st.applied {
		ops = append(ops, id)
	}
	sort.Strings(ops)
	applied := make(xrep.Seq, 0, len(ops))
	for _, id := range ops {
		applied = append(applied, xrep.Seq{xrep.Str(id), xrep.Str(st.applied[id])})
	}
	var dsnap xrep.Value = xrep.Seq{}
	if dedup != nil {
		dsnap = dedup.Snapshot()
	}
	rec := xrep.Rec{Name: checkpointRec, Fields: xrep.Seq{accounts, applied, dsnap, core.checkpointField()}}
	buf, err := wire.MarshalValue(rec)
	if err != nil {
		panic(fmt.Errorf("bank: marshal checkpoint: %v", err))
	}
	return buf
}

// decodeCheckpoint is encodeCheckpoint's inverse: it loads accounts and
// applied ops into st and returns the dedup snapshot for the amo layer
// and the shard-state field for shardCore.restoreCheckpoint (nil for a
// checkpoint written before the format carried shard state).
func decodeCheckpoint(data []byte, st *branchState) (dedupSnap, shardState xrep.Value, err error) {
	v, err := wire.UnmarshalValue(data)
	if err != nil {
		return nil, nil, err
	}
	rec, ok := v.(xrep.Rec)
	if !ok || rec.Name != checkpointRec || len(rec.Fields) < 3 || len(rec.Fields) > 4 {
		return nil, nil, fmt.Errorf("not a %s record", checkpointRec)
	}
	accounts, ok0 := rec.Fields[0].(xrep.Seq)
	applied, ok1 := rec.Fields[1].(xrep.Seq)
	if !ok0 || !ok1 {
		return nil, nil, fmt.Errorf("malformed %s record", checkpointRec)
	}
	for _, av := range accounts {
		pair, ok := av.(xrep.Seq)
		if !ok || len(pair) != 2 {
			return nil, nil, fmt.Errorf("malformed account entry")
		}
		name, ok0 := pair[0].(xrep.Str)
		bal, ok1 := pair[1].(xrep.Int)
		if !ok0 || !ok1 {
			return nil, nil, fmt.Errorf("malformed account entry")
		}
		st.accounts[string(name)] = int64(bal)
	}
	for _, ov := range applied {
		pair, ok := ov.(xrep.Seq)
		if !ok || len(pair) != 2 {
			return nil, nil, fmt.Errorf("malformed applied-op entry")
		}
		id, ok0 := pair[0].(xrep.Str)
		outcome, ok1 := pair[1].(xrep.Str)
		if !ok0 || !ok1 {
			return nil, nil, fmt.Errorf("malformed applied-op entry")
		}
		st.applied[string(id)] = string(outcome)
	}
	if len(rec.Fields) == 4 {
		shardState = rec.Fields[3]
	}
	return rec.Fields[2], shardState, nil
}

// ReplayAccounts rebuilds a branch's account table by replaying durable
// operation records through the same deterministic apply used online,
// skipping foreign (e.g. dedup-table) records. It is the independent
// reference a recovery checker compares a restarted branch against: if the
// live recovery path and this pure replay disagree, recovery lost or
// invented an effect.
func ReplayAccounts(records []stable.Record) map[string]int64 {
	st := &branchState{accounts: make(map[string]int64), applied: make(map[string]string)}
	replayInto(st, newShardCore(""), records)
	return st.accounts
}

// replayInto folds records into st in log order: shard records (ring
// flips, seeds, migrations, escrow) through the deterministic shard fold,
// everything else through the op-record apply. Foreign records (dedup
// table entries) are skipped by both decoders.
func replayInto(st *branchState, core *shardCore, records []stable.Record) {
	for _, r := range records {
		if v, err := wire.UnmarshalValue(r.Data); err == nil {
			if _, ok := core.fold(st, v); ok {
				continue
			}
		}
		if kind, acct, amount, opID, ok := decodeOpRecord(r.Data); ok {
			st.apply(kind, acct, amount, opID)
		}
	}
}

// ReplayAccountsFrom is ReplayAccounts for a checkpointing branch: the
// account table and shard state are seeded from the checkpoint (nil means
// none) and the post-checkpoint records are replayed on top — the exact
// reconstruction a recovery or a replica takeover performs.
func ReplayAccountsFrom(checkpoint []byte, records []stable.Record) (map[string]int64, error) {
	st := &branchState{accounts: make(map[string]int64), applied: make(map[string]string)}
	core := newShardCore("")
	if len(checkpoint) > 0 {
		_, shardState, err := decodeCheckpoint(checkpoint, st)
		if err != nil {
			return nil, err
		}
		if shardState != nil {
			if err := core.restoreCheckpoint(st, shardState); err != nil {
				return nil, err
			}
		}
	}
	replayInto(st, core, records)
	return st.accounts, nil
}

// apply performs one operation against the state; deterministic, so
// recovery replays the log through it. It returns the outcome command.
func (st *branchState) apply(kind, acct string, amount int64, opID string) string {
	if opID != "" {
		if prev, dup := st.applied[opID]; dup {
			return prev
		}
	}
	outcome := func() string {
		switch kind {
		case "open":
			if _, dup := st.accounts[acct]; dup {
				return OutcomeExists
			}
			st.accounts[acct] = 0
			return OutcomeOK
		case "deposit", "transfer_in":
			if _, ok := st.accounts[acct]; !ok {
				return OutcomeNoAccount
			}
			st.accounts[acct] += amount
			return OutcomeOK
		case "withdraw", "transfer_out":
			bal, ok := st.accounts[acct]
			if !ok {
				return OutcomeNoAccount
			}
			// Escrowed debits (shard-mode 2PC holds) are unavailable; the
			// map is nil outside shard mode and reads as zero.
			if bal-st.holds[acct] < amount {
				return OutcomeInsufficient
			}
			st.accounts[acct] = bal - amount
			return OutcomeOK
		default:
			return OutcomeNoAccount
		}
	}()
	if opID != "" {
		st.applied[opID] = outcome
	}
	return outcome
}

func branchMain(ctx *guardian.Ctx) {
	st := &branchState{
		accounts: make(map[string]int64),
		applied:  make(map[string]string),
	}
	ctx.G.SetState(st)
	log := ctx.G.Log()

	raw := false
	cpEvery := 0
	member := ""
	for _, a := range ctx.Args {
		switch v := a.(type) {
		case xrep.Str:
			if string(v) == "raw" {
				raw = true
			}
		case xrep.Int:
			cpEvery = int(v)
		case xrep.Rec:
			if name, ok := shardMember(v); ok {
				member = name
			}
		}
	}

	var dedup *amo.Dedup
	if !raw {
		// The dedup table shares the guardian's own log: its log-then-reply
		// sync is what commits the volatile op records appendOp leaves
		// behind, making op and dedup record durable atomically (one forced
		// write).
		dedup = amo.NewDedup(amo.DedupOptions{Log: log})
	}

	// Every branch carries the shard runtime; with no ShardArg the member
	// is "" and the ownership filter stays uninstalled, so the shard
	// vocabulary still answers (a plain branch accepts seed and escrow)
	// while routing behavior is unchanged.
	sh := newShardRuntime(member, st, log, dedup, ctx.G, ctx.Ports[0].Name())
	st.shard = sh

	if ctx.Recovering {
		cp, recs, err := log.Recover()
		if err != nil && err != durable.ErrNoCheckpoint {
			// Fail-stop: running a bank on recovery data known to be
			// damaged would silently forget acknowledged money movements.
			panic(fmt.Errorf("bank: branch %d: unrecoverable log: %w", ctx.G.ID(), err))
		}
		var cpDedup xrep.Value
		if len(cp) > 0 {
			snap, shardState, derr := decodeCheckpoint(cp, st)
			if derr != nil {
				panic(fmt.Errorf("bank: branch %d: bad checkpoint: %w", ctx.G.ID(), derr))
			}
			cpDedup = snap
			// Shard state restores BEFORE the tail replay, so tail records
			// (acks, commits) find the handoffs and txns they refer to.
			if shardState != nil {
				if err := sh.restoreCheckpoint(st, shardState); err != nil {
					panic(fmt.Errorf("bank: branch %d: bad checkpoint: %w", ctx.G.ID(), err))
				}
			}
		}
		for _, r := range recs {
			if sh.replayData(r.Data) {
				continue
			}
			if kind, acct, amount, opID, ok := decodeOpRecord(r.Data); ok {
				st.apply(kind, acct, amount, opID)
			}
		}
		if dedup != nil {
			if cpDedup != nil {
				if err := dedup.Restore(cpDedup); err != nil {
					panic(fmt.Errorf("bank: branch %d: bad dedup snapshot: %w", ctx.G.ID(), err))
				}
			}
			// Fold in dedup records written after the checkpoint was taken.
			if _, err := dedup.Recover(); err != nil {
				panic(err)
			}
		}
		// Merge the dedup snapshots replayed install records carried, after
		// Restore/Recover so the merge lands on the rebuilt table.
		sh.afterRecover()
	}

	// maybeCheckpoint folds the branch's whole state into a checkpoint
	// every cpEvery mutating messages. It MUST run at handler entry, when
	// the volatile tail is provably empty (every handler path ends in a
	// sync): a checkpoint taken mid-handler would capture effects whose
	// dedup records are not durable yet, and a crash would then let a
	// client retry re-execute an effect the checkpoint already holds.
	opsSinceCP := 0
	maybeCheckpoint := func() {
		if cpEvery <= 0 {
			return
		}
		opsSinceCP++
		if opsSinceCP < cpEvery {
			return
		}
		opsSinceCP = 0
		// The checkpoint captures shard state too (ring, handoffs, escrow),
		// so compaction keeps running in shard mode; only the volatile
		// pre-cut copy state is omitted — a recovery would not have it
		// either, and the puller re-snaps.
		log.Checkpoint(encodeCheckpoint(st, dedup, sh.shardCore), log.LastDurableSeq())
	}

	// mutate logs then applies (log-then-ack) and reports the outcome.
	mutate := func(pr *guardian.Process, m *guardian.Message, kind, acct string, amount int64, opID string, replyTo xrep.PortName) string {
		maybeCheckpoint()
		// Duplicate of an applied op: answer from memory without relogging.
		if opID != "" {
			if prev, dup := st.applied[opID]; dup {
				if !replyTo.IsZero() {
					_ = pr.Send(replyTo, prev)
				}
				return prev
			}
		}
		log.AppendSync(opRecord(kind, acct, amount, opID))
		outcome := st.apply(kind, acct, amount, opID)
		if outcome == OutcomeOK {
			sh.journal(kind, acct, amount)
		}
		if !replyTo.IsZero() {
			_ = pr.Send(replyTo, outcome)
		}
		return outcome
	}

	// appendOp makes one amo-port op record durable. With the dedup filter
	// on (the normal mode), the record is only appended here — volatile —
	// and committed by the filter's own log-then-reply AppendSync on the
	// SAME shared log, so the op and its dedup record become durable in one
	// forced write: there is no crash window in which the op is durable but
	// the dedup table has forgotten it, which would let a post-recovery
	// retry re-execute the op. The raw control arm has no filter, so it
	// must sync here.
	appendOp := func(data []byte) {
		if raw {
			log.AppendSync(data)
		} else {
			log.Append(data)
		}
	}

	// amoExec executes one command arriving on the at-most-once port.
	// These carry NO op_id: duplicate suppression is the amo layer's job
	// (or, in raw mode, deliberately nobody's). Effects are logged to the
	// same op log with an empty op_id, so recovery replays them as-is.
	amoExec := func(pr *guardian.Process, req *amo.Request) (string, xrep.Seq) {
		str := func(i int) string {
			if i < len(req.Args) {
				if s, ok := req.Args[i].(xrep.Str); ok {
					return string(s)
				}
			}
			return ""
		}
		num := func(i int) int64 {
			if i < len(req.Args) {
				if n, ok := req.Args[i].(xrep.Int); ok {
					return int64(n)
				}
			}
			return 0
		}
		simple := func(kind string) (string, xrep.Seq) {
			maybeCheckpoint()
			appendOp(opRecord(kind, str(0), num(1), ""))
			outcome := st.apply(kind, str(0), num(1), "")
			if outcome == OutcomeOK {
				st.applies.Add(1)
				sh.journal(kind, str(0), num(1))
			}
			return outcome, nil
		}
		switch req.Command {
		case "open", "deposit", "withdraw":
			return simple(req.Command)
		case "transfer":
			// Intra-branch move: both legs or neither, so the sufficiency
			// check precedes any logging.
			maybeCheckpoint()
			from, to, amount := str(0), str(1), num(2)
			// An account absent here but owned by another shard makes this
			// a cross-shard pair: answer split (the Router re-plans through
			// 2PC) rather than a false no_account.
			bal, ok := st.accounts[from]
			if !ok {
				if sh.member != "" && !sh.owned(from) {
					return amo.OutcomeSplit, nil
				}
				return OutcomeNoAccount, nil
			}
			if _, ok := st.accounts[to]; !ok {
				if sh.member != "" && !sh.owned(to) {
					return amo.OutcomeSplit, nil
				}
				return OutcomeNoAccount, nil
			}
			if bal-st.holds[from] < amount {
				return OutcomeInsufficient, nil
			}
			log.Append(opRecord("withdraw", from, amount, ""))
			appendOp(opRecord("deposit", to, amount, ""))
			st.apply("withdraw", from, amount, "")
			st.apply("deposit", to, amount, "")
			st.applies.Add(1)
			sh.journal("withdraw", from, amount)
			sh.journal("deposit", to, amount)
			return OutcomeOK, nil
		case "balance":
			bal, ok := st.accounts[str(0)]
			if !ok {
				return OutcomeNoAccount, nil
			}
			return "balance_is", xrep.Seq{xrep.Int(bal)}
		}
		return OutcomeNoAccount, nil
	}

	recv := guardian.NewReceiver(ctx.Ports[0], ctx.Ports[1])
	if member != "" {
		// Ring ownership filter, installed BEFORE the dedup hook so a
		// misrouted request is redirected without touching the dedup
		// table; requests it declines fall through and execute normally.
		recv.Intercept(sh.ownershipHook(), amo.ReqCommand)
	}
	if raw {
		// Control arm: execute every delivery, duplicates included — the
		// bare remote-transaction-send behavior of §3.5.
		recv.Intercept(func(pr *guardian.Process, m *guardian.Message) bool {
			req, _ := amo.ParseRequest(m)
			outcome, out := amoExec(pr, req)
			amo.SendReply(pr, m, outcome, out)
			return true
		}, amo.ReqCommand)
	} else {
		recv.Intercept(dedup.Hook(amoExec), amo.ReqCommand)
	}

	recv.
		When("open", func(pr *guardian.Process, m *guardian.Message) {
			mutate(pr, m, "open", m.Str(0), 0, "", m.ReplyTo)
		}).
		When("deposit", func(pr *guardian.Process, m *guardian.Message) {
			mutate(pr, m, "deposit", m.Str(0), m.Int(1), m.Str(2), m.ReplyTo)
		}).
		When("withdraw", func(pr *guardian.Process, m *guardian.Message) {
			mutate(pr, m, "withdraw", m.Str(0), m.Int(1), m.Str(2), m.ReplyTo)
		}).
		When("balance", func(pr *guardian.Process, m *guardian.Message) {
			if m.ReplyTo.IsZero() {
				return
			}
			bal, ok := st.accounts[m.Str(0)]
			if !ok {
				_ = pr.Send(m.ReplyTo, OutcomeNoAccount)
				return
			}
			_ = pr.Send(m.ReplyTo, "balance_is", bal)
		}).
		When("transfer_out", func(pr *guardian.Process, m *guardian.Message) {
			acct, amount, opID := m.Str(0), m.Int(1), m.Str(2)
			destPort, destAcct := m.Port(3), m.Str(4)
			// Debit durably. On failure the client is answered directly;
			// on success the credit request is forwarded carrying the
			// client's reply port, so the response to the client comes
			// from the destination branch — the different-guardian
			// response pattern.
			outcome := mutate(pr, m, "transfer_out", acct, amount, opID+"/out", xrep.PortName{})
			if outcome != OutcomeOK {
				if !m.ReplyTo.IsZero() {
					_ = pr.Send(m.ReplyTo, outcome)
				}
				return
			}
			_ = pr.SendReplyTo(destPort, m.ReplyTo, "transfer_in", destAcct, amount, opID+"/in")
		}).
		When("transfer_in", func(pr *guardian.Process, m *guardian.Message) {
			mutate(pr, m, "transfer_in", m.Str(0), m.Int(1), m.Str(2), m.ReplyTo)
		}).
		When("audit", func(pr *guardian.Process, m *guardian.Message) {
			if m.ReplyTo.IsZero() {
				return
			}
			// Escrowed holds are still part of this branch's money; the
			// audit total includes them (they are not yet applied).
			var total int64
			for _, b := range st.accounts {
				total += b
			}
			_ = pr.Send(m.ReplyTo, "audit_info", int64(len(st.accounts)), total)
		}).
		WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
			// §3.4 failure arm: a discarded transfer_in named this port as
			// its replyto — the peer branch's port vanished or overflowed.
			// The at-most-once retry loop re-sends until acknowledged.
		})
	sh.installArms(recv)
	recv.Loop(ctx.Proc, nil)
}

// Snapshot reads a branch's account table. Owner-side test facility.
func Snapshot(g *guardian.Guardian) (map[string]int64, error) {
	st, ok := g.State().(*branchState)
	if !ok {
		return nil, fmt.Errorf("bank: guardian %d is not a branch", g.ID())
	}
	out := make(map[string]int64, len(st.accounts))
	for k, v := range st.accounts {
		out[k] = v
	}
	return out, nil
}
