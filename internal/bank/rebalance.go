package bank

// The rebalance driver: the one party that moves a ring from epoch E to
// epoch E+1. The sequence is crash-recoverable at every step because each
// step is idempotent and the driver derives everything from durable state
// (the nameserver's staged ring, the shards' handoff records):
//
//	1. stage the next ring at the nameserver (ring_propose, epoch E+1);
//	2. for every move in ring.Plan(old, next): tell the destination to
//	   pull (handoff_pull), poll handoff_status until installed, then
//	   ack the source (migrate_ack) so it can drop the retained range;
//	3. commit the epoch (ring_commit) — only now can a client resolve
//	   E+1, so every range it names has already moved;
//	4. broadcast ring_update so sources that lost no range also adopt
//	   E+1 and start redirecting stale traffic.
//
// A driver that crashes mid-way re-runs Rebalance with the same target:
// re-proposing the staged epoch restages it, pulls of installed handoffs
// answer immediately, acks are idempotent, and re-committing the live
// epoch is a no-op.

import (
	"fmt"
	"time"

	"repro/internal/guardian"
	"repro/internal/nameserv"
	"repro/internal/ring"
	"repro/internal/sendprim"
	"repro/internal/xrep"
)

// RebalanceOptions tunes the driver.
type RebalanceOptions struct {
	// NS is the nameserver hosting the ring. Required.
	NS *nameserv.Client
	// Timeout bounds each nameserver interaction. Zero means 500ms.
	Timeout time.Duration
	// Call tunes each shard interaction. Zero values mean a 4×heartbeat
	// timeout with 8 retries.
	Call sendprim.CallOptions
	// PollInterval spaces handoff_status polls. Zero means one heartbeat.
	PollInterval time.Duration
	// PollBudget bounds the status polls per move. Zero means 400.
	PollBudget int
	// NSAttempts is the retry budget per nameserver interaction: the
	// nameserv client is single-attempt (one send, one receive), so the
	// driver owns resilience against a lost request or reply. Zero
	// means 5.
	NSAttempts int
}

func (o RebalanceOptions) withDefaults(pr *guardian.Process) RebalanceOptions {
	hb := pr.Guardian().Node().World().Tuning().HeartbeatInterval
	if o.Timeout <= 0 {
		o.Timeout = 500 * time.Millisecond
	}
	if o.Call.Timeout <= 0 {
		o.Call.Timeout = 4 * hb
	}
	if o.Call.Retries == 0 {
		o.Call.Retries = 8
	}
	if o.Call.Backoff <= 0 {
		o.Call.Backoff = hb / 4
	}
	if o.PollInterval <= 0 {
		o.PollInterval = hb
	}
	if o.PollBudget <= 0 {
		o.PollBudget = 400
	}
	if o.NSAttempts <= 0 {
		o.NSAttempts = 5
	}
	return o
}

// nsTry retries one nameserver interaction. Every ring operation is
// idempotent at the service, so re-sending after a timeout converges; a
// late reply consumed by the wrong attempt surfaces as an outcome error
// and the next attempt realigns. ErrRingStale is semantic (wrong epoch),
// not transient, and passes straight through.
func nsTry(pr *guardian.Process, opts RebalanceOptions, f func() error) error {
	var err error
	for i := 0; i < opts.NSAttempts; i++ {
		if err = f(); err == nil || err == nameserv.ErrRingStale {
			return err
		}
		if !pr.Pause(opts.PollInterval) {
			return guardian.ErrKilled
		}
	}
	return err
}

// Bootstrap commits epoch 1 of a ring and tells every member about it.
// Safe to re-run: a ring already at or past epoch 1 is left alone.
func Bootstrap(pr *guardian.Process, r *ring.Ring, opts RebalanceOptions) error {
	opts = opts.withDefaults(pr)
	if r.Epoch != 1 {
		return fmt.Errorf("bank: bootstrap wants an epoch-1 ring, got %d", r.Epoch)
	}
	err := nsTry(pr, opts, func() error {
		_, e := opts.NS.RingPropose(r.Name, 1, r.Marshal(), opts.Timeout)
		return e
	})
	if err != nil {
		if err == nameserv.ErrRingStale {
			return nil // already bootstrapped (and possibly rebalanced since)
		}
		return err
	}
	if err := nsTry(pr, opts, func() error {
		return opts.NS.RingCommit(r.Name, 1, opts.Timeout)
	}); err != nil {
		return err
	}
	return broadcastRing(pr, r, opts)
}

// Rebalance drives the flip from the committed ring to next, migrating
// every affected range. next must be exactly one epoch ahead.
func Rebalance(pr *guardian.Process, next *ring.Ring, opts RebalanceOptions) error {
	opts = opts.withDefaults(pr)
	var rs nameserv.RingState
	err := nsTry(pr, opts, func() error {
		var e error
		rs, e = opts.NS.RingGet(next.Name, opts.Timeout)
		return e
	})
	if err != nil {
		return err
	}
	if rs.CommittedEpoch >= next.Epoch {
		return nil // a previous run finished the flip
	}
	if rs.CommittedEpoch != next.Epoch-1 {
		return fmt.Errorf("bank: rebalance to epoch %d but committed is %d", next.Epoch, rs.CommittedEpoch)
	}
	old, err := ring.Unmarshal(rs.Committed)
	if err != nil {
		return fmt.Errorf("bank: committed ring: %w", err)
	}
	if err := nsTry(pr, opts, func() error {
		_, e := opts.NS.RingPropose(next.Name, next.Epoch, next.Marshal(), opts.Timeout)
		return e
	}); err != nil {
		return err
	}

	blob := string(next.Marshal())
	for _, mv := range ring.Plan(old, next) {
		src, okS := next.Member(mv.From)
		if !okS {
			src, okS = old.Member(mv.From) // a leaver is only on the old ring
		}
		dst, okD := next.Member(mv.To)
		if !okS || !okD {
			return fmt.Errorf("bank: move %s>%s names unknown members", mv.From, mv.To)
		}
		hid := HandoffID(next.Name, next.Epoch, mv.From, mv.To)
		if err := driveMove(pr, hid, blob, src, dst, opts); err != nil {
			return fmt.Errorf("bank: handoff %s: %w", hid, err)
		}
	}

	if err := nsTry(pr, opts, func() error {
		return opts.NS.RingCommit(next.Name, next.Epoch, opts.Timeout)
	}); err != nil {
		return err
	}
	return broadcastRing(pr, next, opts)
}

// Join flips the committed ring to one with m added; Leave to one with
// the named member removed. Both re-fetch the live ring so drivers can be
// re-run after any crash.
func Join(pr *guardian.Process, ringName string, m ring.Member, opts RebalanceOptions) (*ring.Ring, error) {
	old, err := committedRing(pr, ringName, opts)
	if err != nil {
		return nil, err
	}
	next, err := old.WithJoin(m)
	if err != nil {
		return nil, err
	}
	return next, Rebalance(pr, next, opts)
}

// Leave removes a member from the ring, migrating its ranges out first.
func Leave(pr *guardian.Process, ringName, member string, opts RebalanceOptions) (*ring.Ring, error) {
	old, err := committedRing(pr, ringName, opts)
	if err != nil {
		return nil, err
	}
	next, err := old.WithLeave(member)
	if err != nil {
		return nil, err
	}
	return next, Rebalance(pr, next, opts)
}

// committedRing fetches and parses the live ring.
func committedRing(pr *guardian.Process, ringName string, opts RebalanceOptions) (*ring.Ring, error) {
	opts = opts.withDefaults(pr)
	var rs nameserv.RingState
	err := nsTry(pr, opts, func() error {
		var e error
		rs, e = opts.NS.RingGet(ringName, opts.Timeout)
		return e
	})
	if err != nil {
		return nil, err
	}
	if rs.CommittedEpoch == 0 {
		return nil, fmt.Errorf("bank: ring %q not bootstrapped", ringName)
	}
	return ring.Unmarshal(rs.Committed)
}

// driveMove runs one source→destination handoff to completion: pull,
// poll, ack.
func driveMove(pr *guardian.Process, hid, blob string, src, dst ring.Member, opts RebalanceOptions) error {
	for poll := 0; poll < opts.PollBudget; poll++ {
		sm, err := sendprim.Call(pr, dst.Native, MigrateReplyType, opts.Call, "handoff_status", hid)
		if err != nil {
			return err
		}
		switch sm.Str(0) {
		case "installed":
			am, err := sendprim.Call(pr, src.Native, MigrateReplyType, opts.Call, "migrate_ack", hid)
			if err != nil {
				return err
			}
			if am.Command != "ack_ok" {
				return fmt.Errorf("unexpected ack reply %s", am.Command)
			}
			return nil
		case "pulling":
			// In flight; wait a beat.
		default:
			// Unknown: (re)issue the pull. Also covers a destination that
			// crashed mid-pull and recovered amnesiac.
			pm, err := sendprim.Call(pr, dst.Native, MigrateReplyType, opts.Call, "handoff_pull", hid, blob, src.Native)
			if err != nil {
				return err
			}
			if pm.Command == "pull_denied" {
				return fmt.Errorf("pull denied: %s", pm.Str(0))
			}
		}
		if !pr.Pause(opts.PollInterval) {
			return guardian.ErrKilled
		}
	}
	return fmt.Errorf("handoff %s did not install within the poll budget", hid)
}

// broadcastRing pushes the ring to every member. Best effort with
// retries; a member that misses it still converges on first contact with
// a migration or a redirect, so an error here is reported but the flip is
// already durable.
func broadcastRing(pr *guardian.Process, r *ring.Ring, opts RebalanceOptions) error {
	blob := string(r.Marshal())
	var firstErr error
	for _, m := range r.Members {
		if _, err := sendprim.Call(pr, m.Native, MigrateReplyType, opts.Call, "ring_update", blob); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("bank: ring_update %s: %w", m.Name, err)
		}
	}
	return firstErr
}

// Marshal helper kept close to the driver: the zero value has no members
// and cannot be marshaled, so guard misuse loudly.
var _ = xrep.Str("")
