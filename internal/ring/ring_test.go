package ring

import (
	"fmt"
	"testing"

	"repro/internal/xrep"
)

func member(name string) Member {
	return Member{
		Name:   name,
		Amo:    xrep.PortName{Node: name, Guardian: 1, Port: 2},
		Native: xrep.PortName{Node: name, Guardian: 1, Port: 1},
	}
}

func TestOwnerDeterministic(t *testing.T) {
	a := New("accts", 64, member("s1"), member("s2"), member("s3"))
	b := New("accts", 64, member("s3"), member("s1"), member("s2")) // any order
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("acct-%d", i)
		ma, ok := a.Owner(key)
		mb, _ := b.Owner(key)
		if !ok || ma.Name != mb.Name {
			t.Fatalf("key %q: owner %q vs %q", key, ma.Name, mb.Name)
		}
	}
}

func TestOwnerDistribution(t *testing.T) {
	r := New("accts", 64, member("s1"), member("s2"), member("s3"), member("s4"))
	counts := make(map[string]int)
	const n = 20000
	for i := 0; i < n; i++ {
		m, ok := r.Owner(fmt.Sprintf("acct-%07d", i))
		if !ok {
			t.Fatal("empty ring")
		}
		counts[m.Name]++
	}
	for name, c := range counts {
		frac := float64(c) / n
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("member %s owns %.1f%% of keys — virtual nodes not spreading load: %v",
				name, frac*100, counts)
		}
	}
}

func TestOwnersDistinct(t *testing.T) {
	r := New("accts", 16, member("s1"), member("s2"), member("s3"))
	for i := 0; i < 100; i++ {
		ms := r.Owners(fmt.Sprintf("k%d", i), 2)
		if len(ms) != 2 || ms[0].Name == ms[1].Name {
			t.Fatalf("Owners(2) = %v", ms)
		}
	}
	if got := r.Owners("k", 9); len(got) != 3 {
		t.Fatalf("Owners capped at member count: got %d", len(got))
	}
}

// TestJoinMovesOnlyIntoJoiner is the consistent-hashing contract: adding a
// member may move keys only onto the joiner; every other key keeps its
// owner.
func TestJoinMovesOnlyIntoJoiner(t *testing.T) {
	old := New("accts", 64, member("s1"), member("s2"), member("s3"))
	next, err := old.WithJoin(member("s4"))
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch != old.Epoch+1 {
		t.Fatalf("epoch not bumped: %d", next.Epoch)
	}
	moved := 0
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("acct-%07d", i)
		a, _ := old.Owner(key)
		b, _ := next.Owner(key)
		if a.Name != b.Name {
			moved++
			if b.Name != "s4" {
				t.Fatalf("key %q moved %s→%s, not onto the joiner", key, a.Name, b.Name)
			}
		}
	}
	if moved == 0 {
		t.Fatal("join moved no keys")
	}
	if frac := float64(moved) / 10000; frac > 0.45 {
		t.Fatalf("join moved %.1f%% of keys — expected ~1/4", frac*100)
	}
}

func TestLeaveMovesOnlyFromLeaver(t *testing.T) {
	old := New("accts", 64, member("s1"), member("s2"), member("s3"), member("s4"))
	next, err := old.WithLeave("s2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("acct-%07d", i)
		a, _ := old.Owner(key)
		b, _ := next.Owner(key)
		if a.Name != b.Name && a.Name != "s2" {
			t.Fatalf("key %q moved %s→%s though its owner stayed", key, a.Name, b.Name)
		}
		if b.Name == "s2" {
			t.Fatalf("key %q still owned by the leaver", key)
		}
	}
}

func TestPlanCoversExactlyTheChangedRanges(t *testing.T) {
	old := New("accts", 64, member("s1"), member("s2"), member("s3"))
	next, _ := old.WithJoin(member("s4"))
	moves := Plan(old, next)
	if len(moves) == 0 {
		t.Fatal("empty plan for a join")
	}
	for _, mv := range moves {
		if mv.To != "s4" {
			t.Fatalf("join plan has a move not into the joiner: %+v", mv)
		}
	}
	// The plan must name every (from,to) pair some key actually crosses.
	want := make(map[Move]bool)
	for i := 0; i < 20000; i++ {
		key := fmt.Sprintf("acct-%07d", i)
		a, _ := old.Owner(key)
		b, _ := next.Owner(key)
		if a.Name != b.Name {
			want[Move{From: a.Name, To: b.Name}] = true
		}
	}
	have := make(map[Move]bool)
	for _, mv := range moves {
		have[mv] = true
	}
	for mv := range want {
		if !have[mv] {
			t.Fatalf("plan misses observed move %+v (plan %v)", mv, moves)
		}
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	r := New("accts", 32, member("s1"), member("s2"))
	r2, err := Unmarshal(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Name != r.Name || r2.Epoch != r.Epoch || r2.VNodes != r.VNodes || len(r2.Members) != 2 {
		t.Fatalf("roundtrip mismatch: %+v", r2)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		a, _ := r.Owner(key)
		b, _ := r2.Owner(key)
		if a.Name != b.Name || a.Amo != b.Amo || a.Native != b.Native {
			t.Fatalf("key %q: %+v vs %+v", key, a, b)
		}
	}
}

func TestGuards(t *testing.T) {
	r := New("accts", 8, member("s1"))
	if _, err := r.WithJoin(member("s1")); err == nil {
		t.Fatal("duplicate join allowed")
	}
	if _, err := r.WithLeave("s1"); err == nil {
		t.Fatal("removing the last member allowed")
	}
	if _, err := r.WithLeave("nope"); err == nil {
		t.Fatal("removing a stranger allowed")
	}
	empty := &Ring{Name: "e", VNodes: 8}
	if _, ok := empty.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
}
