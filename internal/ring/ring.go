// Package ring implements consistent hashing with virtual nodes: the
// scale-out layer that shards millions of accounts across many branch
// guardians. A Ring is a versioned (epoch-stamped) placement function from
// string keys to members; the nameserver serves the current ring (package
// nameserv's ring_* messages), branch guardians enforce it (package bank's
// shard mode), and the Router (router.go) resolves account → shard
// guardian through it.
//
// Placement is deterministic and stdlib-only: every member contributes
// VNodes points to the circle at fnv64a(name + "#" + i), and a key is
// owned by the member whose point follows fnv64a(key) clockwise. The same
// members and vnode count always produce the same ring, so any two
// parties holding the same epoch agree on every key's owner without
// talking to each other.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"repro/internal/wire"
	"repro/internal/xrep"
)

// Member is one shard guardian on the ring: its stable name plus the two
// ports a client or peer needs — the at-most-once port ops travel on and
// the native port the migration and 2PC protocols use.
type Member struct {
	Name   string
	Amo    xrep.PortName
	Native xrep.PortName
}

// DefaultVNodes is the virtual-node count used when a ring is built with
// vnodes <= 0. 64 points per member keeps the expected load imbalance
// under ~15% for small clusters while a lookup stays one binary search;
// see DESIGN.md §14 for the trade-off.
const DefaultVNodes = 64

// Ring is one epoch of the placement function. Members are kept sorted by
// name; the point table is derived, never serialized.
type Ring struct {
	Name    string
	Epoch   int64
	VNodes  int
	Members []Member

	points []point
}

// point is one virtual node: a position on the hash circle owned by a
// member (indexed into Members).
type point struct {
	pos    uint64
	member int
}

// Hash places a key on the circle: fnv64a with a splitmix64 finalizer.
// Bare FNV avalanches poorly on short, similar keys ("s1#0", "s1#1", …)
// and clumps the virtual nodes; the finalizer spreads them. Exported so
// invariant checkers can reason about placement without a Ring in hand.
func Hash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New builds epoch-1 of a named ring. vnodes <= 0 means DefaultVNodes.
func New(name string, vnodes int, members ...Member) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{Name: name, Epoch: 1, VNodes: vnodes, Members: append([]Member(nil), members...)}
	r.normalize()
	return r
}

// normalize sorts members and rebuilds the point table.
func (r *Ring) normalize() {
	sort.Slice(r.Members, func(i, j int) bool { return r.Members[i].Name < r.Members[j].Name })
	r.points = r.points[:0]
	for mi, m := range r.Members {
		for v := 0; v < r.VNodes; v++ {
			r.points = append(r.points, point{pos: Hash(m.Name + "#" + strconv.Itoa(v)), member: mi})
		}
	}
	// Ties (hash collisions between vnodes) break by member order so the
	// table is a pure function of the member set.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.points[i].member < r.points[j].member
	})
}

// Member returns the member with the given name.
func (r *Ring) Member(name string) (Member, bool) {
	for _, m := range r.Members {
		if m.Name == name {
			return m, true
		}
	}
	return Member{}, false
}

// Owner returns the member owning key: the first virtual node at or after
// the key's position, wrapping at the top of the circle. ok is false only
// for an empty ring.
func (r *Ring) Owner(key string) (Member, bool) {
	ms := r.Owners(key, 1)
	if len(ms) == 0 {
		return Member{}, false
	}
	return ms[0], true
}

// Owners returns up to n distinct members for key, in successor order:
// the owner first, then the members whose virtual nodes follow — the
// replica set for a replication factor of n. Configurable replication of
// key ranges rides this; the bank's shard mode serves with n = 1 and
// delegates intra-shard durability to internal/replica.
func (r *Ring) Owners(key string, n int) []Member {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.Members) {
		n = len(r.Members)
	}
	pos := Hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	out := make([]Member, 0, n)
	seen := make(map[int]bool, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.Members[p.member])
		}
	}
	return out
}

// WithJoin returns the next epoch: the same ring with m added.
func (r *Ring) WithJoin(m Member) (*Ring, error) {
	if _, dup := r.Member(m.Name); dup {
		return nil, fmt.Errorf("ring: member %q already on ring %q", m.Name, r.Name)
	}
	next := &Ring{Name: r.Name, Epoch: r.Epoch + 1, VNodes: r.VNodes,
		Members: append(append([]Member(nil), r.Members...), m)}
	next.normalize()
	return next, nil
}

// WithLeave returns the next epoch: the same ring with the named member
// removed.
func (r *Ring) WithLeave(name string) (*Ring, error) {
	if _, ok := r.Member(name); !ok {
		return nil, fmt.Errorf("ring: member %q not on ring %q", name, r.Name)
	}
	if len(r.Members) == 1 {
		return nil, fmt.Errorf("ring: cannot remove the last member of ring %q", r.Name)
	}
	next := &Ring{Name: r.Name, Epoch: r.Epoch + 1, VNodes: r.VNodes}
	for _, m := range r.Members {
		if m.Name != name {
			next.Members = append(next.Members, m)
		}
	}
	next.normalize()
	return next, nil
}

// Move is one leg of a rebalance plan: every key range that member From
// owns under the old epoch and member To owns under the new one.
type Move struct {
	From, To string
}

// Plan computes the member-to-member handoffs a flip from old to next
// requires, in deterministic order. Consistent hashing keeps the plan
// minimal: a join only pulls ranges into the joiner, a leave only pushes
// the leaver's ranges out — unrelated ranges never appear.
func Plan(old, next *Ring) []Move {
	type pair struct{ from, to string }
	seen := make(map[pair]bool)
	var moves []Move
	// Walk the arc boundaries of both rings: between two adjacent
	// boundary positions the owner is constant in both epochs, so
	// sampling each arc once covers every key.
	var cuts []uint64
	for _, p := range old.points {
		cuts = append(cuts, p.pos)
	}
	for _, p := range next.points {
		cuts = append(cuts, p.pos)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	for _, pos := range cuts {
		a, okA := old.ownerAt(pos)
		b, okB := next.ownerAt(pos)
		if !okA || !okB || a.Name == b.Name {
			continue
		}
		p := pair{a.Name, b.Name}
		if !seen[p] {
			seen[p] = true
			moves = append(moves, Move{From: a.Name, To: b.Name})
		}
	}
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].From != moves[j].From {
			return moves[i].From < moves[j].From
		}
		return moves[i].To < moves[j].To
	})
	return moves
}

// ownerAt is Owner for a raw circle position.
func (r *Ring) ownerAt(pos uint64) (Member, bool) {
	if len(r.points) == 0 {
		return Member{}, false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	return r.Members[r.points[i%len(r.points)].member], true
}

// ringRec names the external representation of a Ring.
const ringRec = "ring/ring"

// Value renders the ring as an xrep value, the transmissible form rings
// take inside nameserver blobs, handoff messages, and durable records.
func (r *Ring) Value() xrep.Value {
	members := make(xrep.Seq, 0, len(r.Members))
	for _, m := range r.Members {
		members = append(members, xrep.Seq{xrep.Str(m.Name), m.Amo, m.Native})
	}
	return xrep.Rec{Name: ringRec, Fields: xrep.Seq{
		xrep.Str(r.Name), xrep.Int(r.Epoch), xrep.Int(r.VNodes), members,
	}}
}

// FromValue is Value's inverse.
func FromValue(v xrep.Value) (*Ring, error) {
	rec, ok := v.(xrep.Rec)
	if !ok || rec.Name != ringRec || len(rec.Fields) != 4 {
		return nil, fmt.Errorf("ring: not a %s record", ringRec)
	}
	name, ok0 := rec.Fields[0].(xrep.Str)
	epoch, ok1 := rec.Fields[1].(xrep.Int)
	vnodes, ok2 := rec.Fields[2].(xrep.Int)
	members, ok3 := rec.Fields[3].(xrep.Seq)
	if !ok0 || !ok1 || !ok2 || !ok3 {
		return nil, fmt.Errorf("ring: malformed %s record", ringRec)
	}
	r := &Ring{Name: string(name), Epoch: int64(epoch), VNodes: int(vnodes)}
	for _, mv := range members {
		triple, ok := mv.(xrep.Seq)
		if !ok || len(triple) != 3 {
			return nil, fmt.Errorf("ring: malformed member entry")
		}
		mname, ok0 := triple[0].(xrep.Str)
		amo, ok1 := triple[1].(xrep.PortName)
		native, ok2 := triple[2].(xrep.PortName)
		if !ok0 || !ok1 || !ok2 {
			return nil, fmt.Errorf("ring: malformed member entry")
		}
		r.Members = append(r.Members, Member{Name: string(mname), Amo: amo, Native: native})
	}
	r.normalize()
	return r, nil
}

// Marshal renders the ring as bytes (the opaque blob the nameserver
// versions without parsing).
func (r *Ring) Marshal() []byte {
	b, err := wire.MarshalValue(r.Value())
	if err != nil {
		panic(fmt.Errorf("ring: marshal: %v", err))
	}
	return b
}

// Unmarshal is Marshal's inverse.
func Unmarshal(data []byte) (*Ring, error) {
	v, err := wire.UnmarshalValue(data)
	if err != nil {
		return nil, fmt.Errorf("ring: unmarshal: %w", err)
	}
	return FromValue(v)
}
