package replica_test

import (
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/guardian"
	"repro/internal/netsim"
	"repro/internal/replica"
	"repro/internal/stable"
	"repro/internal/vtime"
	"repro/internal/xrep"
)

// soloWorld boots a world holding only member m1 of a three-member
// group, returning the member store and the inner store it wraps (so a
// test can model kill -9 by re-running NewStore over the same disk).
func soloWorld(t *testing.T, mode replica.Mode) (*guardian.World, *replica.Store, durable.Store, replica.Config) {
	t.Helper()
	inner := durable.NewSim(stable.NewDisk(vtime.NewReal(), stable.DiskConfig{}))
	cfg := replica.Config{
		Group:   "gq",
		Self:    "m1",
		Members: []string{"m1", "m2", "m3"},
		Mode:    mode,
	}
	var st *replica.Store
	w := guardian.NewWorld(guardian.Config{
		Tuning: guardian.Tuning{HeartbeatInterval: hb},
		Store: func(node string) (durable.Store, error) {
			if node != "m1" {
				return nil, nil
			}
			s, err := replica.NewStore(inner, cfg)
			if err != nil {
				return nil, err
			}
			st = s
			return s, nil
		},
	})
	t.Cleanup(func() { _ = w.Close() })
	w.MustRegister(replica.Def())
	n := w.MustAddNode("m1")
	if _, err := n.Bootstrap(replica.DefName); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "m1 to assume initial leadership", func() bool {
		_, _, isSelf := st.Leader()
		return isSelf
	})
	return w, st, inner, cfg
}

// TestRiskMarkerQuarantinesRestartedPrimary is the review's high-severity
// scenario: a primary killed with locally durable records that never
// reached the group (the before-ship window, modeled here by a member
// whose peers do not exist) must restart QUARANTINED, not eligible —
// otherwise it can later win an election and serve records the group
// never committed. The fence must come from the disk alone: the restart
// is modeled by building a brand-new Store over the same inner store,
// exactly what a real process restart does.
func TestRiskMarkerQuarantinesRestartedPrimary(t *testing.T) {
	_, st, inner, cfg := soloWorld(t, replica.ModeAsync)

	l, err := st.OpenLog("app-q")
	if err != nil {
		t.Fatal(err)
	}
	l.AppendSync([]byte("unshipped"))
	if st.Diverged() {
		t.Fatal("live leader quarantined itself before any deposition")
	}

	// kill -9: no Close, no Crash — just a fresh Store over the same disk.
	st2, err := replica.NewStore(inner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Diverged() {
		t.Fatal("restarted primary is eligible despite unacknowledged durable records: " +
			"the risk marker did not survive the crash")
	}
}

// TestCleanCloseKeepsEligibility is the contrast case: an orderly close
// of a leader whose reign left nothing at risk must NOT quarantine it.
func TestCleanCloseKeepsEligibility(t *testing.T) {
	w, _, inner, cfg := soloWorld(t, replica.ModeAsync)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := replica.NewStore(inner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Diverged() {
		t.Fatal("clean close of an idle leader quarantined it")
	}
}

// TestForkQuarantineAndCheckpointHeal drives the full quarantine
// lifecycle through the public surface:
//
//  1. the leader m1 is partitioned away and writes a record only it
//     holds (a true fork: the group elects m2/m3 and moves on),
//  2. on rejoining, the deposed m1 finds its reign's records were never
//     quorum-held and quarantines itself — it must not stand again, and
//     its acks must not count toward quorum,
//  3. the group keeps committing without m1 (quarantine costs one
//     member, never availability at n=3),
//  4. the new leader's checkpoint eventually supersedes m1's forked log
//     wholesale, which is the only sound heal for a true fork (logs
//     never truncate), and m1 regains candidacy.
func TestForkQuarantineAndCheckpointHeal(t *testing.T) {
	// cpEvery=2: the bank branch folds its state into a checkpoint every
	// two mutating ops, so the heal path gets exercised quickly.
	h := deploy(t, replica.ModeQuorum, xrep.Int(2))
	svc, _ := h.resolveService()
	c := h.caller()
	mustOK(t, c, svc, "open", "alice")
	mustOK(t, c, svc, "deposit", "alice", int64(100))

	st1 := h.stores["m1"]
	seqBefore := bankSeq(st1)
	if seqBefore == 0 {
		t.Fatal("primary logged nothing")
	}

	// Isolate the leader, then write through its replicated log: the
	// record becomes locally durable before the quorum wait, which never
	// resolves — the before-ship/after-ship crash windows in miniature.
	h.w.Net().Partition(
		[]netsim.Addr{"m1"},
		[]netsim.Addr{"m2", "m3", "registry", "app"},
	)
	l, err := st1.OpenLog(bankLogName(st1))
	if err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	go func() {
		l.AppendSync([]byte("orphan")) // blocks until the fence closes
		close(released)
	}()
	waitUntil(t, "the orphan record to become locally durable", func() bool {
		return bankSeq(st1) == seqBefore+1
	})

	// currentLeader can't be used here: the partitioned m1 still believes
	// it leads until it hears the new term. Ask the majority side only.
	waitUntil(t, "the majority side to elect a new leader", func() bool {
		for _, m := range []string{"m2", "m3"} {
			lst := h.stores[m]
			if _, _, isSelf := lst.Leader(); isSelf &&
				lst.AppGuardian() != nil && lst.AppGuardian().Alive() {
				return true
			}
		}
		return false
	})

	h.w.Net().Heal()

	// Rejoining, m1 hears the higher term, is deposed, finds the orphan
	// was never quorum-held, and quarantines itself.
	waitUntil(t, "the deposed leader to quarantine itself", func() bool {
		return st1.Diverged()
	})
	select {
	case <-released:
	case <-time.After(waitFor):
		t.Fatal("deposition did not release the fenced Sync")
	}
	if s := st1.ReplStats(); s.ForksDetected == 0 {
		t.Fatalf("quarantine not counted: %+v", s)
	}

	// The group must keep committing with m1 sidelined, and the new
	// leader's checkpoints must eventually supersede m1's forked log —
	// the heal. Every deposit advances the leader's log and, at
	// cpEvery=2, rolls a fresh checkpoint for the replicator to ship.
	newSvc, _ := h.resolveService()
	deadline := time.Now().Add(waitFor)
	healed := false
	for time.Now().Before(deadline) {
		mustOK(t, c, newSvc, "deposit", "alice", int64(1))
		if !st1.Diverged() {
			healed = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !healed {
		t.Fatalf("quarantined member never healed: %+v", st1.ReplStats())
	}
	if s := st1.ReplStats(); s.Heals == 0 {
		t.Fatalf("heal not counted: %+v", s)
	}

	// Healed means converged: the forked record is gone, replaced by the
	// group's history.
	_, lst := h.currentLeader()
	waitUntil(t, "the healed member to converge on the group's log", func() bool {
		return lst != nil && bankSeq(st1) == bankSeq(lst)
	})
}
