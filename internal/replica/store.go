package replica

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/durable"
	"repro/internal/guardian"
	"repro/internal/xrep"
)

// Store wraps a member node's durable.Store so that every Sync of an
// application log is replicated to the group. It is installed from
// guardian.Config.Store:
//
//	cfg.Store = func(node string) (durable.Store, error) {
//		inner := durable.NewSim(stable.NewDisk(...))
//		if rc, ok := groups[node]; ok {
//			return replica.NewStore(inner, rc)
//		}
//		return inner, nil
//	}
//
// Reserved logs — names starting with "_", which includes the runtime's
// guardian catalog and the group's own term log — pass through
// unreplicated: they are per-node bookkeeping, not application state.
type Store struct {
	inner durable.Store
	rt    *Runtime

	mu   sync.Mutex
	logs map[string]*repLog
}

// reservedLog reports whether name is per-node bookkeeping that must not
// be replicated.
func reservedLog(name string) bool { return strings.HasPrefix(name, "_") }

// NewStore wraps inner for membership in cfg's replica group. It replays
// the group's term log from inner, so a restarted member rejoins with
// its persisted term and vote.
func NewStore(inner durable.Store, cfg Config) (*Store, error) {
	if cfg.Group == "" || cfg.Self == "" || len(cfg.Members) == 0 {
		return nil, fmt.Errorf("replica: config needs Group, Self and Members")
	}
	if !cfg.IsMember(cfg.Self) {
		return nil, fmt.Errorf("replica: node %q is not a member of group %q", cfg.Self, cfg.Group)
	}
	s := &Store{inner: inner, logs: make(map[string]*repLog)}
	rt, err := newRuntime(s, cfg)
	if err != nil {
		return nil, err
	}
	s.rt = rt
	return s, nil
}

// OpenLog returns the named log; application logs come back wrapped so
// their Syncs replicate.
func (s *Store) OpenLog(name string) (durable.Log, error) {
	inner, err := s.inner.OpenLog(name)
	if err != nil || reservedLog(name) {
		return inner, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.logs[name]
	if !ok {
		l = &repLog{st: s, name: name, inner: inner}
		s.logs[name] = l
	}
	return l, nil
}

// innerLog opens the named log on the wrapped store directly, bypassing
// replication — the follower apply path, which must not re-replicate.
func (s *Store) innerLog(name string) (durable.Log, error) {
	return s.inner.OpenLog(name)
}

// LogNames reports the wrapped store's log names.
func (s *Store) LogNames() []string { return s.inner.LogNames() }

// Persistent reports the wrapped store's persistence.
func (s *Store) Persistent() bool { return s.inner.Persistent() }

// Crash loses volatile state — including not-yet-shipped pending
// batches — and resets the replication runtime to a blank follower (the
// persisted term survives, leadership does not).
func (s *Store) Crash() {
	s.mu.Lock()
	for _, l := range s.logs {
		l.crashReset()
	}
	s.mu.Unlock()
	s.inner.Crash()
	s.rt.reset()
}

// SyncCount reports the wrapped store's forced-write count.
func (s *Store) SyncCount() int64 { return s.inner.SyncCount() }

// Close releases the runtime's waiters and the wrapped store. Unlike
// Crash, a close is orderly: a leader gets to resolve its reign's
// outcome precisely and persist it, so a member whose every record was
// quorum-held restarts eligible instead of conservatively quarantined.
func (s *Store) Close() error {
	s.rt.shutdown()
	return s.inner.Close()
}

// Inner returns the wrapped store.
func (s *Store) Inner() durable.Store { return s.inner }

// Adopt records the application guardian the initial primary created
// with guardian.Node.Bootstrap/Create, so the replicator can heartbeat
// its log name to followers (a follower that never received a record
// still learns which log to take over) and register its service port.
func (s *Store) Adopt(n *guardian.Node, c *guardian.Created) {
	g, ok := n.GuardianByID(c.GuardianID)
	if !ok {
		return
	}
	s.rt.adoptApp(g, c.Ports)
}

// Leader reports the member's current view: leader node name, term, and
// whether this member is that leader.
func (s *Store) Leader() (leader string, term uint64, isSelf bool) {
	return s.rt.leaderInfo()
}

// AppGuardian returns the locally served application guardian (nil on
// followers).
func (s *Store) AppGuardian() *guardian.Guardian { return s.rt.appGuardian() }

// AppPorts returns the served application guardian's port names (nil on
// followers).
func (s *Store) AppPorts() []xrep.PortName { return s.rt.appPortNames() }

// ReplStats returns a snapshot of the member's replication counters.
func (s *Store) ReplStats() Stats { return s.rt.statsSnapshot() }

// Diverged reports whether this member is quarantined: it may hold
// locally durable records the group never committed (it led with records
// of unknown group fate, or a log-matching check found a conflict). A
// quarantined member cannot stand for election and its acks do not count
// toward quorum, until its logs are proven to derive from the current
// leader's — log-matching at its tail, or wholesale checkpoint
// supersession — at which point it heals (see DESIGN §12).
func (s *Store) Diverged() bool { return s.rt.isDiverged() }

// Group returns the member's group configuration.
func (s *Store) Group() Config { return s.rt.cfg }

// shippable snapshots the wrapped store's application log names.
func (s *Store) shippable() []string {
	var out []string
	for _, n := range s.inner.LogNames() {
		if !reservedLog(n) {
			out = append(out, n)
		}
	}
	return out
}

// repLog intercepts the durability boundary: records are volatile until
// Sync, and Sync is where the batch becomes both locally durable and —
// in quorum mode — group-durable before returning. Tracking the pending
// batch here (not re-reading the log) keeps the replicate path
// allocation-light and immune to concurrent readers.
type repLog struct {
	st    *Store
	name  string
	inner durable.Log

	mu      sync.Mutex
	pending []durable.Record
}

// Append stages the record locally and remembers it for the next ship.
func (l *repLog) Append(data []byte) uint64 {
	seq := l.inner.Append(data)
	cp := make([]byte, len(data))
	copy(cp, data)
	l.mu.Lock()
	l.pending = append(l.pending, durable.Record{Seq: seq, Data: cp})
	l.mu.Unlock()
	return seq
}

// Sync forces the batch locally, then replicates it. In quorum mode this
// blocks until a majority holds the batch or this member is fenced. On
// the leader, preSync persists the risk marker and the batch's term
// attribution BEFORE the records become durable — the ordering that
// guarantees a process killed in any later window restarts quarantined
// rather than eligible to lead with records the group never committed.
func (l *repLog) Sync() {
	l.mu.Lock()
	var firstSeq uint64
	if len(l.pending) > 0 {
		firstSeq = l.pending[0].Seq
	}
	l.mu.Unlock()
	if firstSeq > 0 {
		l.st.rt.preSync(l.name, firstSeq)
	}
	l.inner.Sync()
	l.mu.Lock()
	batch := l.pending
	l.pending = nil
	l.mu.Unlock()
	l.st.rt.replicate(l.name, batch)
}

// AppendSync is log-then-ack in one call: like the wrapped backends it
// forces every pending record, not just this one.
func (l *repLog) AppendSync(data []byte) uint64 {
	seq := l.Append(data)
	l.Sync()
	return seq
}

// Checkpoint compacts locally and remembers the checkpoint for follower
// catch-up.
func (l *repLog) Checkpoint(state []byte, upTo uint64) {
	l.inner.Checkpoint(state, upTo)
	l.st.rt.noteCheckpoint(l.name, state, upTo)
}

// Recover passes through to the wrapped log.
func (l *repLog) Recover() ([]byte, []durable.Record, error) { return l.inner.Recover() }

// DurableLen passes through to the wrapped log.
func (l *repLog) DurableLen() int { return l.inner.DurableLen() }

// VolatileLen passes through to the wrapped log.
func (l *repLog) VolatileLen() int { return l.inner.VolatileLen() }

// LastDurableSeq passes through to the wrapped log.
func (l *repLog) LastDurableSeq() uint64 { return l.inner.LastDurableSeq() }

// SkipTo passes through to the wrapped log's Skipper, if any.
func (l *repLog) SkipTo(seq uint64) { durable.SkipTo(l.inner, seq) }

// crashReset drops the volatile pending batch, mirroring the wrapped
// log's loss of its volatile tail.
func (l *repLog) crashReset() {
	l.mu.Lock()
	l.pending = nil
	l.mu.Unlock()
}
